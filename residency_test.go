package flexpath

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// residencyCorpus writes n FXP3 snapshots of distinct articles documents
// into a temp dir and returns their (name, path) pairs. Each document's
// article ids carry the document number, so rankings across the corpus
// are distinguishable.
func residencyCorpus(t *testing.T, n int) [](struct{ name, path string }) {
	t.Helper()
	dir := t.TempDir()
	out := make([]struct{ name, path string }, n)
	for i := range out {
		xml := strings.ReplaceAll(articlesXML, `id="a`, fmt.Sprintf(`id="d%d-a`, i))
		doc, err := LoadString(xml)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("doc%02d.fxp3", i))
		if err := doc.SaveFXP3SnapshotFile(path); err != nil {
			t.Fatal(err)
		}
		out[i] = struct{ name, path string }{fmt.Sprintf("doc%02d", i), path}
	}
	return out
}

func renderCollectionAnswers(answers []CollectionAnswer) string {
	var b strings.Builder
	for i, a := range answers {
		fmt.Fprintf(&b, "%d|%s|%s|%s|%.9f|%.9f|%d|%q\n",
			i, a.DocName, a.Path, a.ID, a.Structural, a.Keyword, a.Relaxations, a.Snippet(60))
	}
	return b.String()
}

// TestColdCollectionByteIdentity serves a corpus under a residency cap
// far below its size and checks the merged ranking — ids, scores,
// snippets — is identical to an unconstrained in-memory collection.
func TestColdCollectionByteIdentity(t *testing.T) {
	corpus := residencyCorpus(t, 6)
	q := MustParseQuery(paperQ1)
	opts := SearchOptions{K: 20, Algorithm: Hybrid, NoCache: true}

	hot := NewCollection()
	for _, c := range corpus {
		doc, err := LoadFXP3SnapshotFile(c.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := hot.Add(c.name, doc); err != nil {
			t.Fatal(err)
		}
	}
	want, err := hot.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference search found nothing")
	}

	cold := NewCollection()
	defer cold.Close() //nolint:errcheck
	for _, c := range corpus {
		if err := cold.AddSnapshotFile(c.name, c.path); err != nil {
			t.Fatal(err)
		}
	}
	cold.SetResidency(2)
	if s := cold.ResidencyStats(); s.Cold != 6 || s.Resident != 0 {
		t.Fatalf("before first search: %+v, want 6 cold", s)
	}

	got, err := cold.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if renderCollectionAnswers(got) != renderCollectionAnswers(want) {
		t.Fatalf("cold ranking differs from in-memory:\n%s\nvs\n%s",
			renderCollectionAnswers(got), renderCollectionAnswers(want))
	}

	s := cold.ResidencyStats()
	if s.Resident > 2 {
		t.Fatalf("residency cap violated: %+v", s)
	}
	if s.Faults != 6 {
		t.Fatalf("faults = %d, want 6 (every document searched)", s.Faults)
	}
	if s.Evictions < 4 {
		t.Fatalf("evictions = %d, want >= 4 under cap 2", s.Evictions)
	}

	// A repeat search re-faults evicted documents and stays identical.
	again, err := cold.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if renderCollectionAnswers(again) != renderCollectionAnswers(want) {
		t.Fatal("ranking drifted across eviction and re-fault")
	}
}

func TestResidencyLRUAndShrink(t *testing.T) {
	corpus := residencyCorpus(t, 3)
	c := NewCollection()
	defer c.Close() //nolint:errcheck
	for _, m := range corpus {
		if err := c.AddSnapshotFile(m.name, m.path); err != nil {
			t.Fatal(err)
		}
	}
	// Unbounded: fault all three in.
	for _, m := range corpus {
		if _, ok := c.Document(m.name); !ok {
			t.Fatalf("document %s not served", m.name)
		}
	}
	if s := c.ResidencyStats(); s.Resident != 3 || s.Faults != 3 {
		t.Fatalf("after faulting all: %+v", s)
	}

	// Shrinking the cap evicts the least recently used members: doc00
	// and doc01 were touched before doc02.
	c.SetResidency(1)
	s := c.ResidencyStats()
	if s.Resident != 1 || s.Evictions != 2 {
		t.Fatalf("after shrink to 1: %+v", s)
	}
	for _, mi := range c.Members() {
		wantResident := mi.Name == "doc02"
		if mi.Resident != wantResident {
			t.Errorf("member %s resident=%v, want %v (LRU should keep the last-used)",
				mi.Name, mi.Resident, wantResident)
		}
		if mi.Pinned {
			t.Errorf("snapshot member %s reported pinned", mi.Name)
		}
		if mi.Nodes <= 0 || mi.SourceBytes <= 0 {
			t.Errorf("member %s missing meta: %+v", mi.Name, mi)
		}
	}

	// Touching an evicted member re-faults it and evicts the resident.
	if _, ok := c.Document("doc00"); !ok {
		t.Fatal("evicted document not re-served")
	}
	s = c.ResidencyStats()
	if s.Resident != 1 || s.Faults != 4 {
		t.Fatalf("after re-fault: %+v", s)
	}
}

func TestResidencyPinnedExempt(t *testing.T) {
	corpus := residencyCorpus(t, 2)
	c := NewCollection()
	defer c.Close() //nolint:errcheck
	pinned, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("pinned", pinned); err != nil {
		t.Fatal(err)
	}
	for _, m := range corpus {
		if err := c.AddSnapshotFile(m.name, m.path); err != nil {
			t.Fatal(err)
		}
	}
	c.SetResidency(1)
	// Search everything: the pinned member must stay while the snapshot
	// members cycle through the single residency slot.
	if _, err := c.Search(MustParseQuery(paperQ1), SearchOptions{K: 20, Algorithm: Hybrid, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	s := c.ResidencyStats()
	if s.Pinned != 1 || s.Resident > 1 {
		t.Fatalf("stats %+v, want 1 pinned and <= 1 resident", s)
	}
	for _, mi := range c.Members() {
		if mi.Name == "pinned" && (!mi.Resident || !mi.Pinned) {
			t.Fatalf("pinned member demoted: %+v", mi)
		}
	}
}

// TestEvictionKeepsAnswersAlive holds answers from a faulted-in document
// across its eviction: the answer strings alias the snapshot mapping, so
// eviction must drop only decoded heap state, never the mapping.
func TestEvictionKeepsAnswersAlive(t *testing.T) {
	corpus := residencyCorpus(t, 2)
	c := NewCollection()
	defer c.Close() //nolint:errcheck
	for _, m := range corpus {
		if err := c.AddSnapshotFile(m.name, m.path); err != nil {
			t.Fatal(err)
		}
	}
	c.SetResidency(1)
	q := MustParseQuery(paperQ1)
	held, err := c.Search(q, SearchOptions{K: 5, Algorithm: Hybrid, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	before := renderCollectionAnswers(held)

	// Force evictions: cycle the other documents through the slot.
	for i := 0; i < 3; i++ {
		for _, m := range corpus {
			if _, ok := c.Document(m.name); !ok {
				t.Fatal("document lost")
			}
		}
	}
	if s := c.ResidencyStats(); s.Evictions == 0 {
		t.Fatalf("no evictions exercised: %+v", s)
	}
	// The held answers — paths, ids, snippets — must read back
	// unchanged: their backing mapping is still open.
	if after := renderCollectionAnswers(held); after != before {
		t.Fatalf("held answers changed after eviction:\n%s\nvs\n%s", after, before)
	}
}

func TestHasAndMembersDoNotFault(t *testing.T) {
	corpus := residencyCorpus(t, 2)
	c := NewCollection()
	defer c.Close() //nolint:errcheck
	for _, m := range corpus {
		if err := c.AddSnapshotFile(m.name, m.path); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Has("doc00") || c.Has("nope") {
		t.Fatal("Has wrong")
	}
	if n := c.Nodes(); n <= 0 {
		t.Fatalf("Nodes = %d", n)
	}
	if got := len(c.Members()); got != 2 {
		t.Fatalf("Members = %d", got)
	}
	if s := c.ResidencyStats(); s.Resident != 0 || s.Faults != 0 {
		t.Fatalf("status inspection faulted documents in: %+v", s)
	}
}

func TestAddSnapshotFileRejectsDuplicates(t *testing.T) {
	corpus := residencyCorpus(t, 1)
	c := NewCollection()
	defer c.Close() //nolint:errcheck
	if err := c.AddSnapshotFile("dup", corpus[0].path); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSnapshotFile("dup", corpus[0].path); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after rejected duplicate", c.Len())
	}
}

// TestResidencyConcurrentStress hammers a capped collection from many
// goroutines — searches, single-document lookups, cap changes — under
// the race detector. Every search must return the same ranking the
// unconstrained collection does.
func TestResidencyConcurrentStress(t *testing.T) {
	corpus := residencyCorpus(t, 4)
	c := NewCollection()
	defer c.Close() //nolint:errcheck
	ref := NewCollection()
	for _, m := range corpus {
		if err := c.AddSnapshotFile(m.name, m.path); err != nil {
			t.Fatal(err)
		}
		doc, err := LoadFXP3SnapshotFile(m.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Add(m.name, doc); err != nil {
			t.Fatal(err)
		}
	}
	c.SetResidency(1)
	q := MustParseQuery(paperQ1)
	opts := SearchOptions{K: 20, Algorithm: Hybrid, NoCache: true}
	want, err := ref.Search(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantS := renderCollectionAnswers(want)

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				switch rng.Intn(3) {
				case 0:
					got, err := c.SearchContext(context.Background(), q, opts)
					if err != nil {
						errs <- err
						return
					}
					if s := renderCollectionAnswers(got); s != wantS {
						errs <- fmt.Errorf("worker %d iter %d: ranking diverged", w, i)
						return
					}
				case 1:
					name := corpus[rng.Intn(len(corpus))].name
					if _, ok := c.Document(name); !ok {
						errs <- fmt.Errorf("document %s lost", name)
						return
					}
				default:
					c.SetResidency(1 + rng.Intn(2))
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := c.ResidencyStats()
	if s.Faults == 0 || s.Evictions == 0 {
		t.Fatalf("stress did not exercise fault/evict cycling: %+v", s)
	}
	t.Logf("stress: %+v", s)
}
