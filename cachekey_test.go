package flexpath

import "testing"

// Regression: hierarchyKey/searchCacheKey used to join user-controlled
// names with bare '>'/';' separators, so adversarial tag or hierarchy
// names could alias two distinct searches onto one cache entry (the
// second search would be served the first one's ranking). The encoding
// is now length-prefixed, hence injective.
func TestHierarchyKeyCollisionResistance(t *testing.T) {
	cases := []struct {
		name string
		a, b map[string]string
	}{
		{
			// One pair whose subtype embeds the pair separator vs. a
			// genuine two-pair map: both rendered "a>b;c>d" before.
			name: "pair separator in name",
			a:    map[string]string{"a": "b;c>d"},
			b:    map[string]string{"a": "b", "c": "d"},
		},
		{
			// '>' inside the tag vs. inside the supertype: both rendered
			// "a>b>c" before.
			name: "edge separator in name",
			a:    map[string]string{"a>b": "c"},
			b:    map[string]string{"a": "b>c"},
		},
		{
			name: "boundary shift",
			a:    map[string]string{"ab": "c"},
			b:    map[string]string{"a": "b>c"},
		},
	}
	for _, tc := range cases {
		ka, kb := hierarchyKey(tc.a), hierarchyKey(tc.b)
		if ka == kb {
			t.Errorf("%s: hierarchies %v and %v share key %q", tc.name, tc.a, tc.b, ka)
		}
	}
}

func TestSearchCacheKeyCollisionResistance(t *testing.T) {
	q := MustParseQuery(`//article[./section]`)
	k1 := searchCacheKey(q, SearchOptions{K: 10, Hierarchy: map[string]string{"a": "b;c>d"}})
	k2 := searchCacheKey(q, SearchOptions{K: 10, Hierarchy: map[string]string{"a": "b", "c": "d"}})
	if k1 == k2 {
		t.Errorf("distinct searches share cache key %q", k1)
	}
	// End-to-end: with a colliding key, the second search would be served
	// the first hierarchy's cached ranking.
	doc, err := LoadString(collDocA)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetCache(16)
	h1 := map[string]string{"a": "b;c>d"}
	h2 := map[string]string{"a": "b", "c": "d"}
	if _, err := doc.Search(q, SearchOptions{K: 5, Hierarchy: h1}); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Search(q, SearchOptions{K: 5, Hierarchy: h2}); err != nil {
		t.Fatal(err)
	}
	cs, ok := doc.CacheStats()
	if !ok {
		t.Fatal("no cache stats")
	}
	if cs.Misses != 2 || cs.Hits != 0 {
		t.Errorf("cache counters = %+v: distinct hierarchies must not share an entry", cs)
	}
}
