package flexpath

import (
	"bytes"
	"fmt"
	"io"

	"flexpath/internal/fxp3"
	"flexpath/internal/ir"
	"flexpath/internal/mmapio"
	"flexpath/internal/stats"
	"flexpath/internal/wal"
	"flexpath/internal/xmltree"
)

// FXP3 is the mmap-friendly successor to the FXP2 indexed snapshot: a
// checksummed section directory over offset-based, fixed-width columns
// that the tree, statistics and index layers decode zero-copy from a
// mapped file (see internal/fxp3). Two properties matter operationally:
//
//   - Opening costs pages, not the file. fxp3.Parse touches only the
//     header and directory; each section's checksum runs on first
//     access, which over mmap is what faults its pages in.
//
//   - A loaded document's bulk — text bytes, node columns, postings —
//     stays file-backed. The pages are clean and the kernel reclaims
//     them under pressure, so a collection larger than RAM serves from
//     whatever working set fits (see Collection.SetResidency).
//
// The cost of the aliasing is a lifetime rule: answers, snippets and
// the document's own strings point into the mapping, so the mapping
// must stay open as long as anything derived from the document is
// reachable. Document.Close releases it; the residency layer never
// unmaps on eviction for exactly this reason.

// SaveFXP3Snapshot writes an FXP3 snapshot of the document.
func (d *Document) SaveFXP3Snapshot(w io.Writer) error {
	sections := []fxp3.Section{
		{ID: fxp3.SectionMeta, Data: encodeFXP3Meta(d)},
		{ID: fxp3.SectionTree, Data: d.tree.EncodeColumnar()},
		{ID: fxp3.SectionStats, Data: d.stats.EncodeColumnar()},
		{ID: fxp3.SectionIndex, Data: d.index.EncodeColumnar()},
	}
	return fxp3.Write(w, sections)
}

// SaveFXP3SnapshotFile writes an FXP3 snapshot to path atomically (temp
// file, fsync, rename), so a crash mid-save never corrupts an existing
// snapshot.
func (d *Document) SaveFXP3SnapshotFile(path string) error {
	return wal.WriteFileAtomic(path, d.SaveFXP3Snapshot)
}

// SnapshotMeta is the small FXP3 meta section: enough to describe a
// document for listings, logs and admission decisions without decoding
// (or faulting in) the tree, statistics or index sections.
type SnapshotMeta struct {
	// Nodes is the number of element nodes in the tree.
	Nodes int
	// Tags is the number of distinct element tags.
	Tags int
	// SourceBytes is the size of the XML source the snapshot was built
	// from.
	SourceBytes int64
	// BM25 reports whether the index uses BM25 term weighting.
	BM25 bool
}

func encodeFXP3Meta(d *Document) []byte {
	e := &fxp3.Enc{}
	e.U64(uint64(d.tree.Len()))
	e.U64(uint64(d.tree.NumTags()))
	e.U64(uint64(d.tree.SourceBytes()))
	var bm25 uint64
	if d.index.IsBM25() {
		bm25 = 1
	}
	e.U64(bm25)
	return e.Finish()
}

func decodeFXP3Meta(payload []byte) (SnapshotMeta, error) {
	dec := fxp3.NewDec(payload)
	m := SnapshotMeta{
		Nodes:       int(dec.U64()),
		Tags:        int(dec.U64()),
		SourceBytes: int64(dec.U64()),
	}
	m.BM25 = dec.U64() != 0
	if err := dec.Err(); err != nil {
		return SnapshotMeta{}, fmt.Errorf("%w: meta section: %w", ErrCorruptSnapshot, err)
	}
	return m, nil
}

// ReadFXP3Meta reads only the meta section of the FXP3 snapshot at
// path: the header, directory and one small section — the tree, stats
// and postings are neither decoded nor faulted in. This is what a cold
// collection member costs at open.
func ReadFXP3Meta(path string) (SnapshotMeta, error) {
	m, err := mmapio.Open(path)
	if err != nil {
		return SnapshotMeta{}, err
	}
	defer m.Close()
	f, err := fxp3.Parse(m.Bytes())
	if err != nil {
		return SnapshotMeta{}, wrapSnapshotPath(path, corrupt(err))
	}
	payload, err := f.Section(fxp3.SectionMeta)
	if err != nil {
		return SnapshotMeta{}, wrapSnapshotPath(path, corrupt(err))
	}
	meta, err := decodeFXP3Meta(payload)
	if err != nil {
		return SnapshotMeta{}, wrapSnapshotPath(path, err)
	}
	return meta, nil
}

// corrupt folds lower-layer corruption sentinels (fxp3.ErrCorrupt, the
// codec layers' validation errors) into ErrCorruptSnapshot, so callers
// test one sentinel regardless of which layer caught the damage.
func corrupt(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
}

// documentFromFXP3 decodes all three data sections of a parsed FXP3
// container into a searchable document. On little-endian hosts the
// decoded structures alias data's backing memory; the caller owns
// keeping that memory alive (and attaching the mapping to the document
// via mp, when there is one).
func documentFromFXP3(f *fxp3.File, o DocumentOptions) (*Document, error) {
	treeB, err := f.Section(fxp3.SectionTree)
	if err != nil {
		return nil, corrupt(err)
	}
	tree, err := xmltree.DecodeColumnar(treeB)
	if err != nil {
		return nil, corrupt(err)
	}
	statsB, err := f.Section(fxp3.SectionStats)
	if err != nil {
		return nil, corrupt(err)
	}
	st, err := stats.DecodeColumnar(tree, statsB)
	if err != nil {
		return nil, corrupt(err)
	}
	ixB, err := f.Section(fxp3.SectionIndex)
	if err != nil {
		return nil, corrupt(err)
	}
	ix, err := ir.DecodeColumnar(tree, ixB)
	if err != nil {
		return nil, corrupt(err)
	}
	_ = o
	return assembleDocument(tree, st, ix), nil
}

// LoadFXP3Snapshot restores a document from an FXP3 snapshot stream.
// The stream is buffered in memory; prefer LoadFXP3SnapshotFile, which
// maps the file and lets the kernel own the bytes.
func LoadFXP3Snapshot(r io.Reader) (*Document, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, fmt.Errorf("flexpath: snapshot: %w", err)
	}
	f, err := fxp3.Parse(buf.Bytes())
	if err != nil {
		return nil, corrupt(err)
	}
	return documentFromFXP3(f, DocumentOptions{})
}

// LoadFXP3SnapshotFile restores a document from the FXP3 snapshot at
// path by mapping it: the decoded document aliases the mapping, whose
// pages stay file-backed and kernel-reclaimable. The mapping is owned
// by the returned document; Document.Close releases it. Load errors
// name the file.
func LoadFXP3SnapshotFile(path string) (*Document, error) {
	m, err := mmapio.Open(path)
	if err != nil {
		return nil, err
	}
	d, err := documentFromMapping(m)
	if err != nil {
		m.Close()
		return nil, wrapSnapshotPath(path, err)
	}
	return d, nil
}

// documentFromMapping parses and decodes an open mapping into a
// document that owns it. On error the caller closes the mapping.
func documentFromMapping(m *mmapio.Mapping) (*Document, error) {
	f, err := fxp3.Parse(m.Bytes())
	if err != nil {
		return nil, corrupt(err)
	}
	d, err := documentFromFXP3(f, DocumentOptions{})
	if err != nil {
		return nil, err
	}
	d.mp = m
	return d, nil
}

// Close releases the file mapping backing a document loaded with
// LoadFXP3SnapshotFile. After Close, every string, answer and snippet
// derived from the document is invalid — call it only when nothing
// derived from the document is reachable. Documents that own no
// mapping (XML loads, FXP2 snapshots, big-endian FXP3 loads, which
// decode-copy) ignore Close. Close is idempotent.
func (d *Document) Close() error {
	if d.mp == nil {
		return nil
	}
	return d.mp.Close()
}
