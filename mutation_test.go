package flexpath

import (
	"fmt"
	"sync"
	"testing"
)

// Remove drops a member: accessors forget it and searches stop covering
// it, while in-flight holders of the *Document stay valid.
func TestCollectionRemove(t *testing.T) {
	c := testCollection(t)
	if err := c.Remove("zzz"); err == nil {
		t.Error("removing a phantom document succeeded")
	}
	if err := c.Remove("a.xml"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d after remove, want 1", c.Len())
	}
	if _, ok := c.Document("a.xml"); ok {
		t.Error("removed document still resolvable")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "b.xml" {
		t.Errorf("Names = %v", names)
	}
	answers, err := c.Search(MustParseQuery(paperQ1), SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if a.DocName == "a.xml" {
			t.Errorf("answer from removed document: %+v", a)
		}
	}
	if err := c.Remove("a.xml"); err == nil {
		t.Error("double remove succeeded")
	}
}

// Replace swaps the document behind a name in place.
func TestCollectionReplace(t *testing.T) {
	c := testCollection(t)
	repl, err := LoadString(`<journal><article id="new1"><section><algorithm>z</algorithm>
	  <paragraph>XML streaming rewrite</paragraph></section></article></journal>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replace("zzz", repl); err == nil {
		t.Error("replacing a phantom document succeeded")
	}
	if err := c.Replace("a.xml", repl); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d after replace, want 2", c.Len())
	}
	got, ok := c.Document("a.xml")
	if !ok || got != repl {
		t.Fatal("a.xml does not resolve to the replacement document")
	}
	answers, err := c.Search(MustParseQuery(paperQ1), SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	seenNew := false
	for _, a := range answers {
		if a.DocName == "a.xml" {
			if a.ID == "j1" {
				t.Error("answer from the replaced (old) document content")
			}
			if a.ID == "new1" {
				seenNew = true
			}
		}
	}
	if !seenNew {
		t.Error("replacement document contributed no answers")
	}
}

// Mutations must invalidate the collection cache (a cached merged ranking
// covers a corpus that no longer exists) and the departing document's own
// cache.
func TestCollectionCacheInvalidatedOnMutation(t *testing.T) {
	c := testCollection(t)
	c.SetCache(16)
	c.SetDocumentCaches(16)
	q := MustParseQuery(paperQ1)
	if _, err := c.Search(q, SearchOptions{K: 10}); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Document("a.xml")
	if cs, ok := old.CacheStats(); !ok || cs.Entries == 0 {
		t.Fatalf("document cache not populated before remove: %+v", cs)
	}
	if err := c.Remove("a.xml"); err != nil {
		t.Fatal(err)
	}
	// The stale merged ranking must not be served.
	answers, err := c.Search(q, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if a.DocName == "a.xml" {
			t.Errorf("cache served an answer from a removed document: %+v", a)
		}
	}
	// The departed document's cache entries are released.
	if cs, ok := old.CacheStats(); !ok || cs.Entries != 0 {
		t.Errorf("removed document's cache not purged: %+v", cs)
	}

	// Replace likewise: the old ranking for b.xml must not survive.
	repl, err := LoadString(`<proceedings><article id="r1"><section><algorithm>q</algorithm>
	  <paragraph>XML streaming replacement</paragraph></section></article></proceedings>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replace("b.xml", repl); err != nil {
		t.Fatal(err)
	}
	answers, err = c.Search(q, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if a.DocName == "b.xml" && a.ID != "r1" {
			t.Errorf("cache served stale content for replaced document: %+v", a)
		}
	}
}

// Regression: SetDocumentCaches used to configure only the documents
// present at call time, so later Adds silently ran uncached and
// DocumentCacheStats underreported the live corpus.
func TestDocumentCachesApplyToLateAdds(t *testing.T) {
	c := NewCollection()
	a, err := LoadString(collDocA)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("a.xml", a); err != nil {
		t.Fatal(err)
	}
	c.SetDocumentCaches(16)

	late, err := LoadString(collDocB)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("late.xml", late); err != nil {
		t.Fatal(err)
	}
	if _, ok := late.CacheStats(); !ok {
		t.Fatal("document added after SetDocumentCaches has no cache")
	}
	q := MustParseQuery(paperQ1)
	for i := 0; i < 2; i++ {
		if _, err := c.Search(q, SearchOptions{K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	ds, ok := c.DocumentCacheStats()
	if !ok {
		t.Fatal("no document cache stats")
	}
	// Both members served the second search from cache.
	if ds.Hits != 2 || ds.Misses != 2 {
		t.Errorf("doc cache counters = %+v, want 2 hits / 2 misses across both members", ds)
	}

	// Replace applies the remembered configuration too.
	repl, err := LoadString(collDocB)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replace("late.xml", repl); err != nil {
		t.Fatal(err)
	}
	if _, ok := repl.CacheStats(); !ok {
		t.Error("document swapped in by Replace has no cache")
	}

	// An explicit disable applies to future members as well.
	c.SetDocumentCaches(0)
	another, err := LoadString(collDocA)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("another.xml", another); err != nil {
		t.Fatal(err)
	}
	if _, ok := another.CacheStats(); ok {
		t.Error("document added after disabling caches got one anyway")
	}
}

// Concurrent searches and membership mutations must neither race (run
// under -race) nor corrupt the collection.
func TestConcurrentMutateSearchStress(t *testing.T) {
	c := testCollection(t)
	c.SetCache(32)
	c.SetDocumentCaches(8)
	q := MustParseQuery(paperQ1)

	extraA, err := LoadString(collDocA)
	if err != nil {
		t.Fatal(err)
	}
	extraB, err := LoadString(collDocB)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Search(q, SearchOptions{K: 5}); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			name := fmt.Sprintf("extra%d.xml", m)
			for i := 0; i < 30; i++ {
				if err := c.Add(name, extraA); err != nil {
					errc <- err
					return
				}
				if err := c.Replace(name, extraB); err != nil {
					errc <- err
					return
				}
				if err := c.Remove(name); err != nil {
					errc <- err
					return
				}
			}
		}(m)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d after stress, want 2", c.Len())
	}
	if _, err := c.Search(q, SearchOptions{K: 5}); err != nil {
		t.Errorf("search after stress: %v", err)
	}
}
