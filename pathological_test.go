package flexpath

import (
	"fmt"
	"strings"
	"testing"

	"flexpath/internal/xmark"
)

// TestPathologicalQueries runs shapes that stress corner cases of the
// chain builder and plan evaluator through the whole public API: every
// query must run under every algorithm without error, return consistent
// answer counts across algorithms, and respect K.
func TestPathologicalQueries(t *testing.T) {
	tree, err := xmark.Build(xmark.Config{TargetBytes: 96 << 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDocument(tree)

	queries := []string{
		// Single node, contains only: no structural relaxation possible.
		`//item[.contains("gold")]`,
		// Single node, no predicates at all.
		`//item`,
		// Deep pure chain.
		`//site/regions/africa/item/description/parlist/listitem`,
		// Wide star: many independent branches.
		`//item[./name and ./incategory and ./payment and ./shipping and ./quantity and ./location]`,
		// Repeated tags at different positions.
		`//parlist[./listitem/parlist/listitem]`,
		// Multiple contains on one node.
		`//item[.contains("gold") and .contains("silver")]`,
		// contains at several levels of one path.
		`//item[./description[.contains("rare")] and .contains("gold")]`,
		// Descendant-only edges.
		`//site[.//listitem and .//keyword]`,
		// Mixed content predicate and attribute predicate.
		`//item[./quantity < 3 and @id != "item1"]`,
		// Distinguished node deep in the main path with branches.
		`//site/regions//item[./name]/description`,
	}
	for _, src := range queries {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		counts := map[Algorithm]int{}
		for _, algo := range []Algorithm{DPO, SSO, Hybrid} {
			answers, err := doc.Search(q, SearchOptions{K: 15, Algorithm: algo})
			if err != nil {
				t.Fatalf("%s via %v: %v", src, algo, err)
			}
			if len(answers) > 15 {
				t.Errorf("%s via %v: %d answers > K", src, algo, len(answers))
			}
			counts[algo] = len(answers)
		}
		if counts[SSO] != counts[Hybrid] {
			t.Errorf("%s: SSO %d vs Hybrid %d answers", src, counts[SSO], counts[Hybrid])
		}
		if counts[DPO] != counts[SSO] {
			t.Errorf("%s: DPO %d vs SSO %d answers", src, counts[DPO], counts[SSO])
		}
	}
}

// TestRootContainsNeverRelaxed: a query that is only a root contains has
// an empty relaxation chain — the loosest interpretation keeps the
// full-text search.
func TestRootContainsNeverRelaxed(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := doc.Relaxations(MustParseQuery(`//article[.contains("xml")]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("root-contains query has %d relaxation steps, want 0: %+v", len(steps), steps)
	}
}

// TestDeepChainRelaxation: a 8-level pure path query relaxes without
// error and its chain ends at the root-only query.
func TestDeepChainRelaxation(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<l0>")
	for i := 1; i < 8; i++ {
		fmt.Fprintf(&sb, "<l%d>", i)
	}
	sb.WriteString("needle words")
	for i := 7; i >= 1; i-- {
		fmt.Fprintf(&sb, "</l%d>", i)
	}
	sb.WriteString("</l0>")
	doc, err := LoadString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//l0/l1/l2/l3/l4/l5/l6/l7[.contains("needle")]`)
	steps, err := doc.Relaxations(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no relaxations for deep chain")
	}
	answers, err := doc.Search(q, SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Relaxations != 0 {
		t.Errorf("deep chain search: %+v", answers)
	}
}

// TestNoMatchesAnywhere: a query whose keywords appear nowhere returns no
// answers from any algorithm (relaxation never invents matches).
func TestNoMatchesAnywhere(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//article[./section[.contains("zzzmissingterm")]]`)
	for _, algo := range []Algorithm{DPO, SSO, Hybrid} {
		answers, err := doc.Search(q, SearchOptions{K: 5, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(answers) != 0 {
			t.Errorf("%v: %d answers for impossible query", algo, len(answers))
		}
	}
}

// TestUnknownTagsEverywhere: tags absent from the document yield empty
// results, not errors.
func TestUnknownTagsEverywhere(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//widget[./gadget and .contains("xml")]`)
	for _, algo := range []Algorithm{DPO, SSO, Hybrid} {
		answers, err := doc.Search(q, SearchOptions{K: 5, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(answers) != 0 {
			t.Errorf("%v: matched unknown tags", algo)
		}
	}
}
