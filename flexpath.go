// Package flexpath is a Go implementation of FleXPath (Amer-Yahia,
// Lakshmanan, Pandit; SIGMOD 2004): flexible structure and full-text
// querying for XML.
//
// FleXPath treats the structural part of an XPath query as a template
// rather than a hard constraint. A tree pattern query with full-text
// contains predicates is evaluated against the space of its relaxations —
// parent-child edges generalized to ancestor-descendant, subtrees promoted
// past intermediate nodes, optional leaves deleted, contains predicates
// promoted to wider contexts — and answers are ranked by how much of the
// original structure they preserve (structural score) together with their
// full-text relevance (keyword score).
//
// Basic use:
//
//	doc, err := flexpath.LoadFile("articles.xml")
//	q, err := flexpath.ParseQuery(
//	    `//article[./section[./paragraph and .contains("XML" and "streaming")]]`)
//	answers, err := doc.Search(q, flexpath.SearchOptions{K: 10})
//
// The paper's three top-K algorithms are provided: DPO evaluates
// increasingly relaxed queries one at a time, while SSO and Hybrid encode
// a statically chosen set of relaxations into a single scored join plan
// (Hybrid additionally avoids SSO's score resorting via predicate-set
// buckets). All three return the same answers; they differ in evaluation
// cost. A fourth strategy, DataRelaxation, reproduces the baseline the
// paper's related work dismisses.
package flexpath

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"flexpath/internal/core"
	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/mmapio"
	"flexpath/internal/obs"
	"flexpath/internal/plancache"
	"flexpath/internal/planner"
	"flexpath/internal/qcache"
	"flexpath/internal/rank"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
	"flexpath/internal/wal"
	"flexpath/internal/xmltree"
)

// Algorithm selects the top-K evaluation algorithm.
type Algorithm int

const (
	// Auto is the default: a cost-based planner predicts the evaluation
	// cost of DPO, SSO and Hybrid for each query and dispatches to the
	// winner, calibrating its model from observed run times. The answers
	// are identical to any fixed choice; Metrics.Algorithm reports which
	// algorithm ran, and PlannerStats exposes the planner's state.
	Auto Algorithm = iota
	// Hybrid is SSO's single-plan evaluation with bucketized (never
	// resorted) intermediate answers.
	Hybrid
	// SSO encodes estimator-chosen relaxations into a single plan with
	// score-sorted intermediate answers.
	SSO
	// DPO evaluates one relaxation at a time until K answers accumulate.
	DPO
	// DataRelaxation is the baseline strategy the paper surveys (§7,
	// APPROXML): materialize the document's shortcut-edge closure and
	// evaluate the original query over it. It fails on large documents
	// (the materialization exceeds its budget), reproducing the
	// behavior the paper reports for this strategy. Auto never picks it.
	DataRelaxation
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Hybrid:
		return "Hybrid"
	case SSO:
		return "SSO"
	case DPO:
		return "DPO"
	case DataRelaxation:
		return "DataRelaxation"
	default:
		return "Auto"
	}
}

// ParseAlgorithm parses an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "auto":
		return Auto, nil
	case "hybrid":
		return Hybrid, nil
	case "sso":
		return SSO, nil
	case "dpo":
		return DPO, nil
	case "datarelaxation", "datarelax", "data":
		return DataRelaxation, nil
	}
	return 0, fmt.Errorf("flexpath: unknown algorithm %q", s)
}

// Scheme selects how structural and keyword scores combine (§4.3 of the
// paper).
type Scheme int

const (
	// StructureFirst ranks by (structural, keyword) lexicographically.
	StructureFirst Scheme = iota
	// KeywordFirst ranks by (keyword, structural) lexicographically.
	KeywordFirst
	// Combined ranks by the sum of the two scores.
	Combined
)

// String implements fmt.Stringer.
func (s Scheme) String() string { return s.rank().String() }

func (s Scheme) rank() rank.Scheme {
	switch s {
	case KeywordFirst:
		return rank.KeywordFirst
	case Combined:
		return rank.Combined
	default:
		return rank.StructureFirst
	}
}

// ParseScheme parses a scheme name ("structure-first", "keyword-first",
// "combined").
func ParseScheme(s string) (Scheme, error) {
	r, err := rank.ParseScheme(s)
	if err != nil {
		return 0, err
	}
	switch r {
	case rank.KeywordFirst:
		return KeywordFirst, nil
	case rank.Combined:
		return Combined, nil
	default:
		return StructureFirst, nil
	}
}

// Weights assigns predicate weights for scoring. The zero value means
// uniform unit weights, the assignment used throughout the paper.
type Weights struct {
	// Structural is the weight of each structural predicate (default 1).
	Structural float64
	// Contains is the weight of each contains predicate (default 1, the
	// paper's fixed choice).
	Contains float64
}

func (w Weights) rank() rank.Weights {
	rw := rank.UniformWeights()
	if w.Structural > 0 {
		rw.Structural = w.Structural
	}
	if w.Contains > 0 {
		rw.Contains = w.Contains
	}
	return rw
}

// Query is a compiled tree pattern query.
type Query struct {
	q   *tpq.Query
	src string
}

// ParseQuery compiles a query in the mini-XPath syntax, e.g.
//
//	//article[.//algorithm and ./section[./paragraph and
//	          .contains("XML" and "streaming")]]
//
// Predicates are combined with "and"; ".contains(expr)" performs full-text
// search (supporting "a" and "b", or, quoted phrases, and near(a b, 5)
// proximity); "@attr op value" compares attributes. Answers are matches of
// the last step of the outer path.
func ParseQuery(src string) (*Query, error) {
	q, err := tpq.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{q: q, src: src}, nil
}

// MustParseQuery is ParseQuery but panics on error.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Minimize returns the unique minimal equivalent query (the core of the
// query's closure, Theorem 1 of the paper): redundant structural and
// contains predicates are removed. Minimization never changes a query's
// answers.
func (q *Query) Minimize() (*Query, error) {
	minimal, err := tpq.Minimize(q.q)
	if err != nil {
		return nil, err
	}
	return &Query{q: minimal, src: q.src}, nil
}

// String returns the parsed query rendered back to query syntax.
func (q *Query) String() string { return q.q.String() }

// Vars returns the number of query variables.
func (q *Query) Vars() int { return q.q.Size() }

// Document is a queryable XML document: the parsed tree plus the full-text
// index and the statistics the ranking and estimation layers need. It is
// safe for concurrent searches.
type Document struct {
	tree  *xmltree.Document
	index *ir.Index
	stats *stats.Stats
	est   *stats.Estimator
	ev    *exec.Evaluator
	// pl is the document's cost-based planner: Auto searches consult it
	// and feed their observed run times back into its calibrator.
	pl *planner.Planner

	// pc is the plan-template cache: a bounded, sharded LRU mapping the
	// normalized (query, weights, hierarchy) triple to a core.Template
	// (relaxation chain + memoized join plans + memoized prefix levels),
	// with single-flight construction so concurrent misses on one shape
	// build it exactly once. Enabled with DefaultPlanCacheCapacity by
	// default; see SetPlanCache. Nil means disabled (every search builds
	// a fresh template).
	pc atomic.Pointer[plancache.Cache]

	// qc, when set, caches finished top-K result sets keyed by the
	// normalized query and search options; see SetCache.
	qc atomic.Pointer[qcache.Cache]

	// mp, when the document was loaded from an mmap'd FXP3 snapshot,
	// is the file mapping the document's columns and strings alias.
	// It must stay open while the document (or anything derived from
	// it — answers, snippets) is reachable; Close releases it.
	mp *mmapio.Mapping
}

// Load parses an XML document from r and builds its indexes.
func Load(r io.Reader) (*Document, error) {
	t, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return NewDocument(t), nil
}

// LoadString parses an XML document held in a string.
func LoadString(s string) (*Document, error) {
	t, err := xmltree.ParseString(s)
	if err != nil {
		return nil, err
	}
	return NewDocument(t), nil
}

// LoadFile parses the XML document at path.
func LoadFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SaveSnapshot writes a binary snapshot of the parsed document. Restoring
// a snapshot with LoadSnapshot skips XML parsing, the dominant cost of
// loading large documents; the search indexes are rebuilt on load.
func (d *Document) SaveSnapshot(w io.Writer) error {
	return d.tree.WriteBinary(w)
}

// SaveSnapshotFile writes a binary snapshot to path, atomically: a crash
// mid-save never corrupts an existing snapshot at path.
func (d *Document) SaveSnapshotFile(path string) error {
	return wal.WriteFileAtomic(path, d.SaveSnapshot)
}

// LoadSnapshot restores a document from a SaveSnapshot stream.
func LoadSnapshot(r io.Reader) (*Document, error) {
	t, err := xmltree.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return NewDocument(t), nil
}

// LoadSnapshotFile restores a document from a snapshot file. Load
// errors name the file.
func LoadSnapshotFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := LoadSnapshot(f)
	if err != nil {
		return nil, wrapSnapshotPath(path, err)
	}
	return d, nil
}

// LoadAuto loads path as a plain or indexed binary snapshot when it
// carries a snapshot magic, and as XML otherwise.
func LoadAuto(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// io.ReadFull, not Read: a plain Read may legally return fewer than 4
	// bytes without an error even on a longer file, which would misroute
	// a genuine snapshot to the XML parser. Files shorter than the magic
	// (ErrUnexpectedEOF, or EOF for an empty file) cannot be snapshots
	// and fall through to XML parsing, which reports its own error.
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch {
	case n == 4 && string(magic[:]) == "FXT1":
		return LoadSnapshot(f)
	case n == 4 && string(magic[:]) == "FXP2":
		return LoadIndexedSnapshot(f)
	case n == 4 && string(magic[:]) == "FXP3":
		// Reopen via the mmap path so the document serves file-backed.
		return LoadFXP3SnapshotFile(path)
	}
	return Load(f)
}

// DocumentOptions configures index construction.
type DocumentOptions struct {
	// BM25 selects Okapi BM25 term weighting for keyword scores instead
	// of the default tf-idf. Match sets are identical; only keyword
	// scores (and thus keyword-first / combined rankings) differ.
	BM25 bool
}

// LoadWithOptions is Load with explicit index options.
func LoadWithOptions(r io.Reader, o DocumentOptions) (*Document, error) {
	t, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return newDocument(t, o), nil
}

// NewDocument wraps an already-parsed tree (e.g. one produced by the
// xmark generator's Build) with the indexes searching needs.
func NewDocument(t *xmltree.Document) *Document {
	return newDocument(t, DocumentOptions{})
}

func newDocument(t *xmltree.Document, o DocumentOptions) *Document {
	iopt := ir.IndexOptions{}
	if o.BM25 {
		iopt.Scoring = ir.ScoringBM25
	}
	ix := ir.NewIndexOptions(t, iopt)
	st := stats.Collect(t)
	est := stats.NewEstimator(st, ix)
	d := &Document{
		tree:  t,
		index: ix,
		stats: st,
		est:   est,
		pl:    planner.New(est),
		ev:    exec.NewEvaluator(t, ix),
	}
	d.pc.Store(plancache.New(DefaultPlanCacheCapacity))
	return d
}

// Nodes returns the number of element nodes.
func (d *Document) Nodes() int { return d.tree.Len() }

// Tree exposes the underlying document tree (read-only).
func (d *Document) Tree() *xmltree.Document { return d.tree }

// Answer is one ranked search result.
type Answer struct {
	// Path is the root-to-answer tag path, e.g. "/site/regions/asia/item".
	Path string
	// Tag is the answer element's tag.
	Tag string
	// ID is the answer element's id attribute, when present.
	ID string
	// Structural and Keyword are the answer's two score components.
	Structural float64
	Keyword    float64
	// Relaxations is the relaxation level that admitted the answer
	// (0 = exact match of the original query).
	Relaxations int
	// Relaxed describes the relaxations this answer needed (why it is
	// not an exact match), cheapest first. Populated by the SSO and
	// Hybrid algorithms; DPO reports only the level.
	Relaxed []string

	node xmltree.NodeID
	doc  *Document
	expr ir.Expr
}

// Snippet returns up to n bytes of the answer subtree's text, centered
// on the first occurrence of the query's full-text terms when the query
// has a contains predicate. n <= 0 asks for no text and returns ""
// (both snippet paths agree on this; neither emits a bare ellipsis).
// Truncation never splits a multi-byte UTF-8 rune (a split rune would
// be mangled to U+FFFD by JSON encoding).
func (a Answer) Snippet(n int) string {
	if n <= 0 {
		return ""
	}
	if a.expr != nil {
		return a.doc.index.Snippet(a.node, a.expr, n)
	}
	s := a.doc.tree.SubtreeText(a.node)
	if len(s) > n {
		s = s[:ir.SnapRuneDown(s, n)] + "…"
	}
	return s
}

// XML serializes the answer element.
func (a Answer) XML() string {
	var sb strings.Builder
	_ = a.doc.tree.WriteXML(&sb, a.node)
	return sb.String()
}

// Metrics reports the work a search performed; see the paper's §6 for how
// these counters separate the algorithms.
type Metrics struct {
	QueriesEvaluated   int
	PlansRun           int
	RelaxationsEncoded int
	Restarts           int
	TuplesGenerated    int
	TuplesPruned       int
	SortedTuples       int
	Buckets            int
	PairsMaterialized  int
	// Algorithm names the algorithm that evaluated the search — under
	// Auto, the planner's per-query choice; otherwise the requested
	// algorithm. Collection searches whose member documents chose
	// differently report "mixed". Cache hits report the algorithm that
	// produced the cached result.
	Algorithm string
	// AlgoReason explains an Auto choice (the planner's predicted level,
	// costs and reason key); empty for fixed algorithms.
	AlgoReason string
}

// SearchOptions configures Search. The zero value asks for the top 10
// answers with the Auto algorithm (cost-based per-query choice among
// DPO, SSO and Hybrid) under the structure-first scheme.
type SearchOptions struct {
	K int
	// Offset skips the first Offset answers of the ranking (pagination):
	// the returned slice covers ranks Offset+1 .. Offset+K.
	Offset    int
	Algorithm Algorithm
	Scheme    Scheme
	Weights   Weights
	// Parallel fans join-plan execution out over this many goroutines;
	// 0 or 1 runs sequentially. Results are identical either way.
	Parallel int
	// Workers bounds how many documents a Collection.Search evaluates
	// concurrently: 0 uses GOMAXPROCS, 1 forces sequential evaluation.
	// The merged ranking is identical at every setting (per-document
	// results are combined in insertion order with deterministic
	// tie-breaking). Document.Search ignores this field.
	Workers int
	// NoCache bypasses any query-result cache enabled with SetCache for
	// this call: the search is evaluated from scratch and its result is
	// not stored. Benchmarks measuring algorithm cost set this.
	NoCache bool
	// Hierarchy maps tags to their supertype (§3.4 of the paper). When
	// set, a query node constrained to a tag also matches elements whose
	// tag is any transitive subtype: querying //publication[...] with
	// {"article": "publication"} matches article elements too.
	Hierarchy map[string]string
	// Metrics, when non-nil, receives work counters.
	Metrics *Metrics
}

// Search returns the top-K answers of q over the document under the
// paper's relaxation semantics: exact matches first, then answers of
// increasingly relaxed versions of the query, ranked by the selected
// scheme.
func (d *Document) Search(q *Query, opts SearchOptions) ([]Answer, error) {
	return d.SearchContext(context.Background(), q, opts)
}

// SearchContext is Search with cancellation: the evaluation loops of all
// algorithms (join pipelines, DPO's per-relaxation loop) poll ctx and
// abandon the search once it is cancelled or times out, returning
// ctx.Err(). Cancelled searches are never cached.
func (d *Document) SearchContext(ctx context.Context, q *Query, opts SearchOptions) ([]Answer, error) {
	if opts.K <= 0 {
		opts.K = 10
	}
	if opts.Offset < 0 {
		opts.Offset = 0
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The observability span (if the caller started one) rides the
	// context; every use below is nil-guarded so an uninstrumented
	// search pays only this lookup.
	span := obs.SpanFrom(ctx)

	qc := d.qc.Load()
	useCache := qc != nil && !opts.NoCache
	var key string
	if useCache {
		key = searchCacheKey(q, opts)
		var tCache time.Time
		if span != nil {
			tCache = time.Now()
		}
		v, ok := qc.Get(key)
		if span != nil {
			span.Rec(obs.StageCache, time.Since(tCache))
		}
		if ok {
			span.MarkCacheHit()
			cs := v.(cachedSearch)
			// A hit performs no evaluation work, so the work counters
			// report zero (cache effectiveness is reported via
			// CacheStats); the algorithm that produced the cached result
			// is still named.
			if opts.Metrics != nil {
				*opts.Metrics = Metrics{Algorithm: cs.algo, AlgoReason: cs.reason}
			}
			return d.buildAnswers(q, cs.results, opts), nil
		}
	}

	var tChain time.Time
	if span != nil {
		tChain = time.Now()
	}
	// The StageChain span prices template acquisition: on a plan-cache hit
	// it collapses to a cache lookup, which is the point of the cache.
	tmpl, err := d.template(q, opts.Weights, opts.Hierarchy)
	if span != nil {
		span.Rec(obs.StageChain, time.Since(tChain))
	}
	if err != nil {
		return nil, err
	}
	chain := tmpl.Chain
	topts := topkOptions(ctx, opts)
	topts.opts.Template = tmpl
	var results []topkResult
	algoName, algoReason := opts.Algorithm.String(), ""
	switch opts.Algorithm {
	case Hybrid:
		results = runHybrid(d, chain, topts)
	case DPO:
		results = runDPO(d, chain, topts)
	case SSO:
		results = runSSO(d, chain, topts)
	case DataRelaxation:
		results, err = runDataRelax(d, chain, topts)
		if err != nil {
			return nil, err
		}
	default: // Auto
		var choice planner.Choice
		results, choice = runAuto(d, chain, topts)
		algoName, algoReason = choice.Algo.String(), choice.Explain
	}
	// A cancelled run returns truncated results; surface the error
	// instead of caching or reporting them.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	span.SetRelaxations(topts.opts.Metrics.RelaxationsEncoded)
	if opts.Metrics != nil {
		*opts.Metrics = topts.export()
		opts.Metrics.Algorithm = algoName
		opts.Metrics.AlgoReason = algoReason
	}
	if useCache {
		qc.Put(key, cachedSearch{results: results, algo: algoName, reason: algoReason})
	}
	return d.buildAnswers(q, results, opts), nil
}

// cachedSearch is a document-cache entry: the result set plus the
// algorithm that produced it, so cache hits can still name it.
type cachedSearch struct {
	results []topkResult
	algo    string
	reason  string
}

// PlannerStats snapshots the cost-based planner behind Auto searches:
// per-algorithm choice and reason counters, the calibrated
// nanoseconds-per-unit scales with their current calibration error, and
// the restart-rate EWMA feeding the guard that demotes plan-based
// choices to DPO. See internal/planner for the model.
type PlannerStats struct {
	Choices          map[string]uint64  `json:"choices"`
	Reasons          map[string]uint64  `json:"reasons"`
	NsPerUnit        map[string]float64 `json:"ns_per_unit"`
	CalibrationError map[string]float64 `json:"calibration_error"`
	RestartRate      float64            `json:"restart_rate"`
	Observations     uint64             `json:"observations"`
}

// PlannerStats reports the document's planner state. All-empty maps and
// zero counters mean no Auto search has run yet.
func (d *Document) PlannerStats() PlannerStats {
	return plannerStatsFrom(d.pl.Snapshot())
}

func plannerStatsFrom(s planner.Stats) PlannerStats {
	return PlannerStats{
		Choices:          s.Choices,
		Reasons:          s.Reasons,
		NsPerUnit:        s.NsPerUnit,
		CalibrationError: s.CalibrationError,
		RestartRate:      s.RestartRate,
		Observations:     s.Observations,
	}
}

// buildAnswers converts internal results into public answers, applying
// pagination. Cached result slices are never mutated: the offset is taken
// by re-slicing, each call allocates fresh Answer values, and the Missed
// slices shared with the cache are copied before they are handed out as
// Answer.Relaxed — a caller mutating Relaxed must not poison later cache
// hits.
func (d *Document) buildAnswers(q *Query, results []topkResult, opts SearchOptions) []Answer {
	if opts.Offset > 0 {
		if opts.Offset >= len(results) {
			results = nil
		} else {
			results = results[opts.Offset:]
		}
	}
	var snippetExpr ir.Expr
	for i := range q.q.Nodes {
		if len(q.q.Nodes[i].Contains) > 0 {
			snippetExpr = q.q.Nodes[i].Contains[0]
			break
		}
	}
	answers := make([]Answer, len(results))
	for i, r := range results {
		id, _ := d.tree.Attr(r.Node, "id")
		var relaxed []string
		if len(r.Missed) > 0 {
			relaxed = append([]string(nil), r.Missed...)
		}
		answers[i] = Answer{
			Path:        d.tree.Path(r.Node),
			Tag:         d.tree.TagName(r.Node),
			ID:          id,
			Structural:  r.Score.SS,
			Keyword:     r.Score.KS,
			Relaxations: r.Relaxations,
			Relaxed:     relaxed,
			node:        r.Node,
			doc:         d,
			expr:        snippetExpr,
		}
	}
	return answers
}

// SetCache enables an in-memory query-result cache holding up to
// capacity result sets; capacity <= 0 disables caching. The cache is
// sharded and safe for concurrent searches. Keys cover everything that
// determines a result set (normalized query, algorithm, scheme, K,
// offset, weights, hierarchy), so differently-shaped requests never
// collide; Parallel and Workers do not affect answers and are excluded.
// Documents are immutable, so entries never go stale.
func (d *Document) SetCache(capacity int) {
	if capacity <= 0 {
		d.qc.Store(nil)
		return
	}
	d.qc.Store(qcache.New(capacity))
}

// purgeCache discards the document's cache entries — result sets and
// plan templates — keeping both caches enabled and their counters
// intact. Collections call this when the document leaves the corpus, so
// a long-gone member doesn't pin result sets or join plans.
func (d *Document) purgeCache() {
	if qc := d.qc.Load(); qc != nil {
		qc.Purge()
	}
	if pc := d.pc.Load(); pc != nil {
		pc.Purge()
	}
}

// CacheStats reports the document cache's hit/miss/eviction counters;
// ok is false when no cache is enabled.
func (d *Document) CacheStats() (s CacheStats, ok bool) {
	qc := d.qc.Load()
	if qc == nil {
		return CacheStats{}, false
	}
	return cacheStatsFrom(qc.Stats()), true
}

// CacheStats is a snapshot of a query-result cache's counters.
type CacheStats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// displaced by the LRU policy.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Entries is the current size; Capacity the effective maximum: the
	// configured capacity rounded up to a whole number of entries per
	// cache shard (see qcache.New).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

func cacheStatsFrom(s qcache.Stats) CacheStats {
	return CacheStats{
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		Capacity:  s.Capacity,
	}
}

func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Capacity += o.Capacity
}

// searchCacheKey normalizes the aspects of a search that determine its
// result set. The query is keyed by its canonical serialization, so
// syntactic variants of the same pattern share an entry. User-controlled
// components (the query text and the hierarchy map) are length-prefixed:
// a bare separator would let adversarial tag or hierarchy names alias
// two distinct searches onto one cache entry, poisoning every later hit.
func searchCacheKey(q *Query, opts SearchOptions) string {
	rw := opts.Weights.rank()
	canon := q.q.Canon()
	h := hierarchyKey(opts.Hierarchy)
	return fmt.Sprintf("%d:%s|%s|%s|k=%d|o=%d|w=%g,%g|h=%d:%s",
		len(canon), canon, opts.Algorithm, opts.Scheme, opts.K, opts.Offset,
		rw.Structural, rw.Contains, len(h), h)
}

// hierarchyKey canonicalizes a type-hierarchy map (order-independent).
// Each name is length-prefixed so names containing the pair and list
// separators ('>', ';') cannot make two different maps render the same
// key: the encoding is unambiguously parseable, hence injective.
func hierarchyKey(hierarchy map[string]string) string {
	if len(hierarchy) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(hierarchy))
	for t, s := range hierarchy {
		pairs = append(pairs, fmt.Sprintf("%d:%s>%d:%s", len(t), t, len(s), s))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ";")
}

// RelaxationStep describes one level of a query's relaxation chain.
type RelaxationStep struct {
	// Level is the 1-based chain position.
	Level int
	// Description names the relaxation operator applied, e.g.
	// "generalize edge description/parlist".
	Description string
	// Penalty is the structural score lost by this relaxation.
	Penalty float64
	// Score is the structural score of answers first admitted here.
	Score float64
	// Query is the relaxed query.
	Query string
}

// RelaxationsOpts configures Relaxations the same way SearchOptions
// configures Search: the chain a search evaluates depends on both, so an
// inspection of the chain must be able to match the search exactly. The
// zero value means uniform unit weights and no type hierarchy.
type RelaxationsOpts struct {
	// Weights assigns the predicate weights the penalties and scores are
	// computed under (the same field as SearchOptions.Weights).
	Weights Weights
	// Hierarchy maps tags to their supertype; see SearchOptions.Hierarchy.
	Hierarchy map[string]string
}

// Relaxations returns the query's full relaxation chain over this
// document: the ordered sequence of structure/contains relaxations, from
// cheapest to most drastic, with their penalties. Level 0 (the exact
// query) is not included. Penalties and scores use uniform unit weights;
// use RelaxationsWith to inspect the chain a weighted search evaluates.
func (d *Document) Relaxations(q *Query) ([]RelaxationStep, error) {
	return d.RelaxationsWithContext(context.Background(), q, RelaxationsOpts{})
}

// RelaxationsContext is Relaxations with cancellation: the context is
// checked before and after the (potentially expensive) chain build, so
// a timed-out request releases its worker instead of formatting a chain
// nobody will read.
func (d *Document) RelaxationsContext(ctx context.Context, q *Query) ([]RelaxationStep, error) {
	return d.RelaxationsWithContext(ctx, q, RelaxationsOpts{})
}

// RelaxationsWith is Relaxations under explicit weights and hierarchy,
// so the reported penalties and scores match what a Search with the same
// options ranks by.
func (d *Document) RelaxationsWith(q *Query, opts RelaxationsOpts) ([]RelaxationStep, error) {
	return d.RelaxationsWithContext(context.Background(), q, opts)
}

// RelaxationsWithContext is RelaxationsWith with cancellation; see
// RelaxationsContext.
func (d *Document) RelaxationsWithContext(ctx context.Context, q *Query, opts RelaxationsOpts) ([]RelaxationStep, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tmpl, err := d.template(q, opts.Weights, opts.Hierarchy)
	if err != nil {
		return nil, err
	}
	chain := tmpl.Chain
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	steps := make([]RelaxationStep, len(chain.Steps))
	for i, s := range chain.Steps {
		steps[i] = RelaxationStep{
			Level:       i + 1,
			Description: s.Desc,
			Penalty:     s.Penalty,
			Score:       s.SS,
			Query:       s.Query.String(),
		}
	}
	return steps, nil
}

// ExplainPlan returns a human-readable description of the evaluation SSO
// and Hybrid would perform for the query under the given options: which
// relaxations the selectivity estimator decides to encode and the shape
// of the scored join plan.
func (d *Document) ExplainPlan(q *Query, opts SearchOptions) (string, error) {
	return d.ExplainPlanContext(context.Background(), q, opts)
}

// ExplainPlanContext is ExplainPlan with cancellation; see
// RelaxationsContext.
func (d *Document) ExplainPlanContext(ctx context.Context, q *Query, opts SearchOptions) (string, error) {
	if opts.K <= 0 {
		opts.K = 10
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	tmpl, err := d.template(q, opts.Weights, opts.Hierarchy)
	if err != nil {
		return "", err
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	b := topkOptions(ctx, opts)
	b.opts.Template = tmpl
	return explainPlan(d, tmpl.Chain, b)
}

// AnalyzePlan executes the plan the Hybrid algorithm would run for the
// query and returns a per-join-step trace: candidate list sizes,
// intermediate tuple counts, pruning and bucket activity (an EXPLAIN
// ANALYZE for flexible queries).
func (d *Document) AnalyzePlan(q *Query, opts SearchOptions) (string, error) {
	if opts.K <= 0 {
		opts.K = 10
	}
	tmpl, err := d.template(q, opts.Weights, opts.Hierarchy)
	if err != nil {
		return "", err
	}
	b := topkOptions(context.Background(), opts)
	b.opts.Template = tmpl
	return analyzePlan(d, tmpl.Chain, b)
}

// DefaultPlanCacheCapacity is the plan-template cache capacity a new
// Document starts with; see SetPlanCache. Entries are heavyweight (a
// relaxation chain plus memoized join plans with their candidate lists),
// so the default favors boundedness over reach.
const DefaultPlanCacheCapacity = 256

// SetPlanCache resizes the document's plan-template cache to hold up to
// capacity templates; capacity <= 0 disables it (every search then
// builds its chain and plans from scratch). Resizing installs a fresh
// cache, discarding current entries and counters. Answers are identical
// at every setting; the cache only amortizes chain building, relaxation
// enumeration and plan construction across searches of the same shape.
func (d *Document) SetPlanCache(capacity int) {
	if capacity <= 0 {
		d.pc.Store(nil)
		return
	}
	d.pc.Store(plancache.New(capacity))
}

// PlanCacheStats reports the plan-template cache counters; ok is false
// when the cache has been disabled with SetPlanCache(0).
func (d *Document) PlanCacheStats() (s PlanCacheStats, ok bool) {
	pc := d.pc.Load()
	if pc == nil {
		return PlanCacheStats{}, false
	}
	return planCacheStatsFrom(pc.Stats()), true
}

// PlanCacheStats is a snapshot of a plan-template cache's counters.
type PlanCacheStats struct {
	// Hits and Misses count template lookups; Evictions counts templates
	// displaced by the LRU policy; Dedups counts lookups that coalesced
	// onto another goroutine's in-flight build instead of building again
	// (N concurrent misses on one query shape = 1 miss + N-1 dedups).
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Dedups    uint64 `json:"dedups"`
	// Entries is the current size; Capacity the effective maximum (the
	// configured capacity rounded up to whole entries per shard).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

func planCacheStatsFrom(s plancache.Stats) PlanCacheStats {
	return PlanCacheStats{
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Dedups:    s.Dedups,
		Entries:   s.Entries,
		Capacity:  s.Capacity,
	}
}

func (s *PlanCacheStats) add(o PlanCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Dedups += o.Dedups
	s.Entries += o.Entries
	s.Capacity += o.Capacity
}

// templateKey is the plan-template cache key: everything that determines
// a chain (and hence its plans). The canon is length-prefixed like
// searchCacheKey's: a quoted term containing '|' must not alias two
// different (query, weights, hierarchy) triples onto one template.
func templateKey(q *Query, rw rank.Weights, hierarchy map[string]string) string {
	canon := q.q.Canon()
	return fmt.Sprintf("%d:%s|%g|%g|%s", len(canon), canon, rw.Structural, rw.Contains, hierarchyKey(hierarchy))
}

// template returns the plan template for (q, w, hierarchy): the
// relaxation chain plus memoized per-level plans and prefix levels.
// With the plan cache enabled the template is shared across searches of
// the same shape and built exactly once even under concurrent misses
// (single-flight); with it disabled a fresh template is built per call
// (still deduplicating work within the one search that holds it).
func (d *Document) template(q *Query, w Weights, hierarchy map[string]string) (*core.Template, error) {
	rw := w.rank()
	build := func() (any, error) {
		var h *tpq.Hierarchy
		if len(hierarchy) > 0 {
			h = tpq.NewHierarchy(hierarchy)
		}
		c, err := core.BuildChainH(d.tree, d.index, d.stats, rw, q.q, h)
		if err != nil {
			return nil, err
		}
		return core.NewTemplate(c), nil
	}
	if pc := d.pc.Load(); pc != nil {
		v, err := pc.Do(templateKey(q, rw, hierarchy), build)
		if err != nil {
			return nil, err
		}
		return v.(*core.Template), nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	return v.(*core.Template), nil
}

// chain returns the relaxation chain for (q, w); kept for callers that
// need only the chain (benchmarks, Relaxations).
func (d *Document) chain(q *Query, w Weights) (*core.Chain, error) {
	t, err := d.template(q, w, nil)
	if err != nil {
		return nil, err
	}
	return t.Chain, nil
}
