module flexpath

go 1.22
