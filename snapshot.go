package flexpath

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/plancache"
	"flexpath/internal/planner"
	"flexpath/internal/stats"
	"flexpath/internal/wal"
	"flexpath/internal/xmltree"
)

// Indexed snapshots persist the parsed tree, the inverted index and the
// document statistics together, so restoring skips XML parsing, index
// construction and the statistics collection pass — the three load
// costs, in order. Plain snapshots (SaveSnapshot) persist the tree only.
//
// Container layout: magic "FXP2", then three length-prefixed sections
// (tree, statistics, index), each in its own self-describing format.
// The mmap-friendly successor format is FXP3; see snapshot_fxp3.go.
var indexedMagic = [4]byte{'F', 'X', 'P', '2'}

// ErrCorruptSnapshot reports a snapshot that is structurally invalid,
// truncated, or checksum-failing. Every load path (FXP2 and FXP3) wraps
// corruption in it, so callers can distinguish a damaged file from an
// I/O failure with errors.Is and react (quarantine, fall back to XML,
// refuse to serve) without string matching. A snapshot that fails with
// ErrCorruptSnapshot was not partially loaded: no Document is returned.
var ErrCorruptSnapshot = errors.New("flexpath: corrupt snapshot")

// maxSectionBytes caps a section's declared length when the total input
// size is unknown (stream loads). Any genuine section is far smaller; a
// larger declaration can only come from corruption, and rejecting it up
// front keeps a corrupt length field from driving unbounded buffering.
const maxSectionBytes = int64(1) << 40

// SaveIndexedSnapshot writes a snapshot including the search indexes.
func (d *Document) SaveIndexedSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(indexedMagic[:]); err != nil {
		return err
	}
	sections := []func(io.Writer) error{
		d.tree.WriteBinary,
		d.stats.WriteBinary,
		d.index.WriteBinary,
	}
	var buf bytes.Buffer
	for _, write := range sections {
		buf.Reset()
		if err := write(&buf); err != nil {
			return err
		}
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(buf.Len()))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveIndexedSnapshotFile writes an indexed snapshot to path. The write
// is atomic: the snapshot goes to a temp file that is fsync'd and then
// renamed over path, so a crash mid-save never corrupts an existing
// snapshot.
func (d *Document) SaveIndexedSnapshotFile(path string) error {
	return wal.WriteFileAtomic(path, d.SaveIndexedSnapshot)
}

// LoadIndexedSnapshot restores a document with its indexes from a
// SaveIndexedSnapshot stream. Corrupt or truncated input fails with an
// error wrapping ErrCorruptSnapshot; a partial index is never returned.
func LoadIndexedSnapshot(r io.Reader) (*Document, error) {
	return loadIndexedSnapshot(r, -1)
}

// countingReader counts bytes consumed from the underlying reader, so
// section lengths can be validated against the input size when known.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// loadIndexedSnapshot does the work of LoadIndexedSnapshot. total is the
// input's byte size when known (file loads), or -1 for streams; with it,
// a section length exceeding the remaining input is rejected before any
// parsing, not discovered as a confusing EOF deep inside a section.
func loadIndexedSnapshot(r io.Reader, total int64) (*Document, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: shorter than the magic", ErrCorruptSnapshot)
		}
		return nil, fmt.Errorf("flexpath: snapshot: %w", err)
	}
	if magic != indexedMagic {
		return nil, fmt.Errorf("%w: not an indexed snapshot (bad magic)", ErrCorruptSnapshot)
	}
	section := func(name string) (*io.LimitedReader, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: truncated before the %s section", ErrCorruptSnapshot, name)
			}
			return nil, fmt.Errorf("flexpath: snapshot: %w", err)
		}
		// Position of the section body in the input: bytes consumed from
		// the source minus what the buffer still holds.
		pos := cr.n - int64(br.Buffered())
		if n > uint64(maxSectionBytes) {
			return nil, fmt.Errorf("%w: %s section declares an implausible %d bytes", ErrCorruptSnapshot, name, n)
		}
		if total >= 0 && int64(n) > total-pos {
			return nil, fmt.Errorf("%w: %s section declares %d bytes with only %d remaining",
				ErrCorruptSnapshot, name, n, total-pos)
		}
		return &io.LimitedReader{R: br, N: int64(n)}, nil
	}
	// drain consumes any bytes a section parser left unread (the parsers
	// buffer internally and may stop short of the section boundary) and
	// verifies the input actually contained the declared section length:
	// io.Copy returns nil at EOF, so without the N check a truncated
	// section whose parser happened to finish early would load silently.
	drain := func(name string, sec *io.LimitedReader) error {
		if _, err := io.Copy(io.Discard, sec); err != nil {
			return fmt.Errorf("flexpath: snapshot: %s section: %w", name, err)
		}
		if sec.N > 0 {
			return fmt.Errorf("%w: %s section truncated (%d declared bytes missing)",
				ErrCorruptSnapshot, name, sec.N)
		}
		return nil
	}
	sec, err := section("tree")
	if err != nil {
		return nil, err
	}
	tree, err := xmltree.ReadBinary(sec)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
	}
	if err := drain("tree", sec); err != nil {
		return nil, err
	}
	sec, err = section("stats")
	if err != nil {
		return nil, err
	}
	st, err := stats.ReadStatsBinary(tree, sec)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
	}
	if err := drain("stats", sec); err != nil {
		return nil, err
	}
	sec, err = section("index")
	if err != nil {
		return nil, err
	}
	ix, err := ir.ReadIndexBinary(tree, sec)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptSnapshot, err)
	}
	if err := drain("index", sec); err != nil {
		return nil, err
	}
	return assembleDocument(tree, st, ix), nil
}

// assembleDocument wires restored tree/stats/index into a searchable
// Document, the shared tail of every snapshot load path.
func assembleDocument(tree *xmltree.Document, st *stats.Stats, ix *ir.Index) *Document {
	est := stats.NewEstimator(st, ix)
	d := &Document{
		tree:  tree,
		index: ix,
		stats: st,
		est:   est,
		pl:    planner.New(est),
		ev:    exec.NewEvaluator(tree, ix),
	}
	d.pc.Store(plancache.New(DefaultPlanCacheCapacity))
	return d
}

// wrapSnapshotPath adds the file path to a snapshot load error, so a
// failure during a multi-snapshot collection load names the file that
// broke instead of leaving the operator to bisect the directory.
func wrapSnapshotPath(path string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("flexpath: snapshot %s: %w", path, err)
}

// LoadIndexedSnapshotFile restores an indexed snapshot from path. Load
// errors name the file.
func LoadIndexedSnapshotFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, wrapSnapshotPath(path, err)
	}
	d, err := loadIndexedSnapshot(f, fi.Size())
	if err != nil {
		return nil, wrapSnapshotPath(path, err)
	}
	return d, nil
}
