package flexpath

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/plancache"
	"flexpath/internal/planner"
	"flexpath/internal/stats"
	"flexpath/internal/wal"
	"flexpath/internal/xmltree"
)

// Indexed snapshots persist the parsed tree, the inverted index and the
// document statistics together, so restoring skips XML parsing, index
// construction and the statistics collection pass — the three load
// costs, in order. Plain snapshots (SaveSnapshot) persist the tree only.
//
// Container layout: magic "FXP2", then three length-prefixed sections
// (tree, statistics, index), each in its own self-describing format.
var indexedMagic = [4]byte{'F', 'X', 'P', '2'}

// SaveIndexedSnapshot writes a snapshot including the search indexes.
func (d *Document) SaveIndexedSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(indexedMagic[:]); err != nil {
		return err
	}
	sections := []func(io.Writer) error{
		d.tree.WriteBinary,
		d.stats.WriteBinary,
		d.index.WriteBinary,
	}
	var buf bytes.Buffer
	for _, write := range sections {
		buf.Reset()
		if err := write(&buf); err != nil {
			return err
		}
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(buf.Len()))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveIndexedSnapshotFile writes an indexed snapshot to path. The write
// is atomic: the snapshot goes to a temp file that is fsync'd and then
// renamed over path, so a crash mid-save never corrupts an existing
// snapshot.
func (d *Document) SaveIndexedSnapshotFile(path string) error {
	return wal.WriteFileAtomic(path, d.SaveIndexedSnapshot)
}

// LoadIndexedSnapshot restores a document with its indexes from a
// SaveIndexedSnapshot stream.
func LoadIndexedSnapshot(r io.Reader) (*Document, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("flexpath: snapshot: %w", err)
	}
	if magic != indexedMagic {
		return nil, errors.New("flexpath: not an indexed snapshot (bad magic)")
	}
	section := func() (*io.LimitedReader, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("flexpath: snapshot: %w", err)
		}
		return &io.LimitedReader{R: br, N: int64(n)}, nil
	}
	sec, err := section()
	if err != nil {
		return nil, err
	}
	tree, err := xmltree.ReadBinary(sec)
	if err != nil {
		return nil, err
	}
	if err := drain(sec); err != nil {
		return nil, err
	}
	sec, err = section()
	if err != nil {
		return nil, err
	}
	st, err := stats.ReadStatsBinary(tree, sec)
	if err != nil {
		return nil, err
	}
	if err := drain(sec); err != nil {
		return nil, err
	}
	sec, err = section()
	if err != nil {
		return nil, err
	}
	ix, err := ir.ReadIndexBinary(tree, sec)
	if err != nil {
		return nil, err
	}
	est := stats.NewEstimator(st, ix)
	d := &Document{
		tree:  tree,
		index: ix,
		stats: st,
		est:   est,
		pl:    planner.New(est),
		ev:    exec.NewEvaluator(tree, ix),
	}
	d.pc.Store(plancache.New(DefaultPlanCacheCapacity))
	return d, nil
}

// drain consumes any bytes a section reader left unread (the section
// parsers buffer internally and may stop short of the section boundary).
func drain(r *io.LimitedReader) error {
	_, err := io.Copy(io.Discard, r)
	return err
}

// LoadIndexedSnapshotFile restores an indexed snapshot from path.
func LoadIndexedSnapshotFile(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadIndexedSnapshot(f)
}
