package flexpath

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSearchStress hammers one shared Document (with a result
// cache) and one shared Collection from many goroutines running a mix of
// queries, algorithms and schemes, and checks every result against a
// sequentially precomputed expectation. Run under -race this covers the
// cache shards, the chain cache, and the collection worker pool.
func TestConcurrentSearchStress(t *testing.T) {
	doc := xmarkDoc(t, 120, 11)
	doc.SetCache(32)

	coll := NewCollection()
	for i := 0; i < 4; i++ {
		if err := coll.Add(fmt.Sprintf("d%d.xml", i), xmarkDoc(t, 40, int64(20+i))); err != nil {
			t.Fatal(err)
		}
	}
	coll.SetCache(32)
	coll.SetDocumentCaches(16)

	queries := []*Query{
		MustParseQuery(`//item[./description/parlist]`),
		MustParseQuery(`//item[./description/parlist and ./mailbox/mail/text]`),
		MustParseQuery(`//item[./name and ./incategory]`),
	}
	algos := []Algorithm{Hybrid, SSO, DPO}
	schemes := []Scheme{StructureFirst, Combined}

	type combo struct {
		qi, ai, si int
	}
	var combos []combo
	wantDoc := map[combo]string{}
	wantColl := map[combo]string{}
	for qi := range queries {
		for ai := range algos {
			for si := range schemes {
				cb := combo{qi, ai, si}
				combos = append(combos, cb)
				opts := SearchOptions{K: 8, Algorithm: algos[ai], Scheme: schemes[si]}
				da, err := doc.Search(queries[qi], opts)
				if err != nil {
					t.Fatal(err)
				}
				wantDoc[cb] = renderRanking(da)
				ca, err := coll.Search(queries[qi], opts)
				if err != nil {
					t.Fatal(err)
				}
				wantColl[cb] = renderCollRanking(ca)
			}
		}
	}

	const goroutines = 16
	const iters = 30
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cb := combos[(g*7+i)%len(combos)]
				opts := SearchOptions{K: 8, Algorithm: algos[cb.ai], Scheme: schemes[cb.si]}
				// Odd iterations bypass the caches so cached and
				// uncached evaluations race against each other.
				opts.NoCache = i%2 == 1
				if g%2 == 0 {
					a, err := doc.SearchContext(context.Background(), queries[cb.qi], opts)
					if err != nil {
						errCh <- err
						return
					}
					if got := renderRanking(a); got != wantDoc[cb] {
						errCh <- fmt.Errorf("goroutine %d: document ranking diverged for %+v", g, cb)
						return
					}
				} else {
					a, err := coll.SearchContext(context.Background(), queries[cb.qi], opts)
					if err != nil {
						errCh <- err
						return
					}
					if got := renderCollRanking(a); got != wantColl[cb] {
						errCh <- fmt.Errorf("goroutine %d: collection ranking diverged for %+v", g, cb)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestCollectionParallelMatchesSequential verifies the tentpole
// determinism contract: the merged ranking is byte-identical at every
// worker count.
func TestCollectionParallelMatchesSequential(t *testing.T) {
	coll := NewCollection()
	for i := 0; i < 8; i++ {
		if err := coll.Add(fmt.Sprintf("d%d.xml", i), xmarkDoc(t, 30, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	queries := []*Query{
		MustParseQuery(`//item[./description/parlist]`),
		MustParseQuery(`//item[./description/parlist and ./mailbox/mail/text]`),
	}
	for _, q := range queries {
		for _, algo := range []Algorithm{Hybrid, SSO, DPO} {
			var want string
			for _, workers := range []int{1, 2, 3, 8, 0} {
				var m Metrics
				a, err := coll.Search(q, SearchOptions{
					K: 12, Algorithm: algo, Workers: workers, Metrics: &m,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := renderCollRanking(a)
				if workers == 1 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%v workers=%d: ranking differs from sequential\n%s\nvs\n%s",
						algo, workers, got, want)
				}
				if m.PlansRun == 0 && m.QueriesEvaluated == 0 {
					t.Errorf("%v workers=%d: metrics empty", algo, workers)
				}
			}
		}
	}
}

func TestSearchContextPreCancelled(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := MustParseQuery(paperQ1)
	if _, err := doc.SearchContext(ctx, q, SearchOptions{K: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("document search on cancelled ctx: err = %v", err)
	}
	c := testCollection(t)
	if _, err := c.SearchContext(ctx, q, SearchOptions{K: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("collection search on cancelled ctx: err = %v", err)
	}
}

func TestSearchContextExpiredDeadline(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, algo := range []Algorithm{Hybrid, SSO, DPO, DataRelaxation} {
		_, err := doc.SearchContext(ctx, MustParseQuery(paperQ1), SearchOptions{K: 3, Algorithm: algo})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%v: err = %v, want deadline exceeded", algo, err)
		}
	}
}

// TestSearchContextTimeoutMidRun checks that a deadline firing while the
// join loops are running aborts the search promptly instead of letting
// it run to completion. The workload is sized so evaluation normally
// takes far longer than the timeout; if the machine finishes it inside
// the deadline anyway, the test has nothing to observe and passes.
func TestSearchContextTimeoutMidRun(t *testing.T) {
	doc := xmarkDoc(t, 600, 13)
	q := MustParseQuery(`//item[./description/parlist/listitem and ` +
		`./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]`)
	// Warm the relaxation chain so the timeout lands in evaluation.
	if _, err := doc.Search(q, SearchOptions{K: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := doc.SearchContext(ctx, q, SearchOptions{K: 600, Algorithm: DPO, Scheme: KeywordFirst})
	elapsed := time.Since(start)
	if err == nil {
		t.Logf("search completed inside the %v deadline; nothing to observe", 2*time.Millisecond)
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Generous bound: cancellation is polled every join step and every
	// 64 tuples, so an aborted search must return well under a second.
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestSearchContextBackgroundUnaffected pins the zero-cost path: a
// background context must not change results.
func TestSearchContextBackgroundUnaffected(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	plain, err := doc.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := doc.SearchContext(context.Background(), q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if renderRanking(plain) != renderRanking(withCtx) {
		t.Error("background context changed the ranking")
	}
}
