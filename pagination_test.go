package flexpath

import (
	"fmt"
	"testing"
)

// pagingCollection builds a corpus where the global ranking interleaves
// documents, so any per-document offset handling is observable.
func pagingCollection(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection()
	for d := 0; d < 4; d++ {
		// Three articles per document at varying relaxation depths: one
		// exact match, one missing the algorithm, one missing the
		// paragraph terms.
		xml := fmt.Sprintf(`<journal>
  <article id="d%[1]d-exact"><section><algorithm>x</algorithm>
    <paragraph>XML streaming methods</paragraph></section></article>
  <article id="d%[1]d-noalgo"><section>
    <paragraph>XML streaming text</paragraph></section></article>
  <article id="d%[1]d-noterms"><section><algorithm>y</algorithm>
    <paragraph>unrelated prose</paragraph></section></article>
</journal>`, d)
		doc, err := LoadString(xml)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Add(fmt.Sprintf("doc%d.xml", d), doc); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func collAnswerKey(a CollectionAnswer) string {
	return fmt.Sprintf("%s/%s/%s/%d/%g/%g", a.DocName, a.Path, a.ID, a.Relaxations, a.Structural, a.Keyword)
}

// Regression: Collection searches used to forward Offset to every member
// document, so each document dropped its *own* top-Offset answers before
// the merge — with Offset=o over n documents, up to n*o wrong answers
// were skipped. Pagination must instead window the merged global ranking:
// page (Offset=o, K=k) equals ranks o..o+k of the unpaged ranking.
func TestCollectionGlobalPagination(t *testing.T) {
	c := pagingCollection(t)
	q := MustParseQuery(paperQ1)

	// Sanity: the corpus produces a multi-document interleaved ranking
	// (the exact and no-algorithm articles are admitted in every
	// document), so per-document offset handling is observable.
	if full, err := c.Search(q, SearchOptions{K: 100}); err != nil {
		t.Fatal(err)
	} else if len(full) < 8 {
		t.Fatalf("full ranking has %d answers, want at least 8", len(full))
	}

	for _, tc := range []struct{ offset, k int }{
		{1, 3}, {2, 5}, {3, 4}, {5, 3}, {7, 4}, {10, 5}, {20, 3},
	} {
		// The page (Offset=o, K=k) must equal ranks o..o+k of the
		// unpaged ranking evaluated at the same depth K=o+k (answer
		// scores depend on the evaluated K: the estimator encodes
		// relaxations per requested depth). The algorithm is pinned
		// because DPO and SSO accumulate float penalties in different
		// orders, so their scores differ by an ulp and Auto may pick
		// either.
		full, err := c.Search(q, SearchOptions{K: tc.offset + tc.k, Algorithm: SSO})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Search(q, SearchOptions{K: tc.k, Offset: tc.offset, Algorithm: SSO})
		if err != nil {
			t.Fatal(err)
		}
		want := []CollectionAnswer{}
		if tc.offset < len(full) {
			want = full[tc.offset:]
		}
		if len(got) != len(want) {
			t.Errorf("offset=%d k=%d: got %d answers, want %d", tc.offset, tc.k, len(got), len(want))
			continue
		}
		for i := range got {
			if collAnswerKey(got[i]) != collAnswerKey(want[i]) {
				t.Errorf("offset=%d k=%d rank %d: got %s, want %s",
					tc.offset, tc.k, i, collAnswerKey(got[i]), collAnswerKey(want[i]))
			}
		}
	}
}

// Paged and unpaged searches must agree when served through caches too:
// the collection cache keys on (K, Offset) and each member document is
// asked for the same Offset+K prefix regardless of the page.
func TestCollectionPaginationWithCaches(t *testing.T) {
	c := pagingCollection(t)
	c.SetCache(32)
	c.SetDocumentCaches(32)
	q := MustParseQuery(paperQ1)

	full, err := c.Search(q, SearchOptions{K: 7, NoCache: true, Algorithm: SSO})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // second round is cache-served
		got, err := c.Search(q, SearchOptions{K: 4, Offset: 3, Algorithm: SSO})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 4 {
			t.Fatalf("round %d: got %d answers, want 4", round, len(got))
		}
		for i := range got {
			if collAnswerKey(got[i]) != collAnswerKey(full[3+i]) {
				t.Errorf("round %d rank %d: got %s, want %s",
					round, i, collAnswerKey(got[i]), collAnswerKey(full[3+i]))
			}
		}
	}
}
