package flexpath_test

import (
	"fmt"
	"log"

	"flexpath"
)

const exampleXML = `
<library>
  <book id="exact">
    <chapter><section><para>streaming xml pipelines</para></section></chapter>
  </book>
  <book id="promoted">
    <chapter><abstract>xml streaming overview</abstract><section><para>other</para></section></chapter>
  </book>
  <book id="keyword-only">
    <title>xml streaming</title>
    <chapter><section><para>unrelated</para></section></chapter>
  </book>
</library>`

// Example demonstrates a flexible search: one book matches the structure
// exactly; the others are admitted by relaxations with lower structural
// scores.
func Example() {
	doc, err := flexpath.LoadString(exampleXML)
	if err != nil {
		log.Fatal(err)
	}
	q, err := flexpath.ParseQuery(
		`//book[./chapter/section/para[.contains("xml" and "streaming")]]`)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := doc.Search(q, flexpath.SearchOptions{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range answers {
		fmt.Printf("%d. %s (relaxations: %d)\n", i+1, a.ID, a.Relaxations)
	}
	// Output:
	// 1. exact (relaxations: 0)
	// 2. promoted (relaxations: 2)
	// 3. keyword-only (relaxations: 3)
}

// ExampleDocument_Relaxations lists the relaxation chain of a query: the
// cheapest structural concessions first.
func ExampleDocument_Relaxations() {
	doc, err := flexpath.LoadString(exampleXML)
	if err != nil {
		log.Fatal(err)
	}
	q, err := flexpath.ParseQuery(`//book[./chapter/para[.contains("xml")]]`)
	if err != nil {
		log.Fatal(err)
	}
	steps, err := doc.Relaxations(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps[:3] {
		fmt.Printf("%d. %s\n", s.Level, s.Description)
	}
	// Output:
	// 1. generalize edge chapter/para
	// 2. promote para above chapter
	// 3. delete para
}

// ExampleCollection_Search merges rankings across documents.
func ExampleCollection_Search() {
	a, err := flexpath.LoadString(`<j><book id="j1"><chapter><section><para>xml streaming</para></section></chapter></book></j>`)
	if err != nil {
		log.Fatal(err)
	}
	b, err := flexpath.LoadString(`<p><book id="p1"><title>xml streaming</title><chapter><section><para>x</para></section></chapter></book></p>`)
	if err != nil {
		log.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("journal.xml", a); err != nil {
		log.Fatal(err)
	}
	if err := coll.Add("proceedings.xml", b); err != nil {
		log.Fatal(err)
	}
	q, err := flexpath.ParseQuery(`//book[./chapter/section/para[.contains("xml" and "streaming")]]`)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := coll.Search(q, flexpath.SearchOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, ans := range answers {
		fmt.Printf("%s from %s\n", ans.ID, ans.DocName)
	}
	// Output:
	// j1 from journal.xml
	// p1 from proceedings.xml
}
