package flexpath

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flexpath/internal/obs"
)

// TestPlanCacheStampedeBuildsOnce is the regression test for the old
// chain memo's check-then-build race: N goroutines missing the same
// query shape at once must coalesce onto exactly one template build.
// Run under -race this also exercises the single-flight handoff.
func TestPlanCacheStampedeBuildsOnce(t *testing.T) {
	doc := xmarkDoc(t, 200, 7)
	q := MustParseQuery(`//item[./description/parlist and ./mailbox/mail/text]`)
	const n = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, n)
	rankings := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			answers, err := doc.Search(q, SearchOptions{K: 10, Algorithm: Hybrid})
			errs[i], rankings[i] = err, renderRanking(answers)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
		if rankings[i] != rankings[0] {
			t.Errorf("goroutine %d ranking differs:\n%s\nvs\n%s", i, rankings[i], rankings[0])
		}
	}
	st, ok := doc.PlanCacheStats()
	if !ok {
		t.Fatal("PlanCacheStats reported no cache")
	}
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (one build for %d concurrent searches)", st.Misses, n)
	}
	if st.Hits+st.Dedups != n-1 {
		t.Errorf("Hits+Dedups = %d+%d, want %d", st.Hits, st.Dedups, n-1)
	}
}

// TestPlanCacheAnswersIdentical is the correctness contract of the plan
// cache: for every algorithm and scheme, a template hit (and the
// template-disabled path) return exactly the same ranking.
func TestPlanCacheAnswersIdentical(t *testing.T) {
	cached := xmarkDoc(t, 200, 7)
	uncached := xmarkDoc(t, 200, 7)
	uncached.SetPlanCache(0)
	q := MustParseQuery(`//item[./description/parlist and ./mailbox/mail/text]`)
	for _, algo := range []Algorithm{Auto, Hybrid, SSO, DPO} {
		for _, scheme := range []Scheme{StructureFirst, KeywordFirst, Combined} {
			opts := SearchOptions{K: 15, Algorithm: algo, Scheme: scheme}
			cold, err := uncached.Search(q, opts)
			if err != nil {
				t.Fatalf("%v/%v uncached: %v", algo, scheme, err)
			}
			if _, err := cached.Search(q, opts); err != nil { // populates the template
				t.Fatalf("%v/%v prime: %v", algo, scheme, err)
			}
			warm, err := cached.Search(q, opts) // template hit
			if err != nil {
				t.Fatalf("%v/%v warm: %v", algo, scheme, err)
			}
			render := renderRanking
			if algo == Auto {
				// Auto's algorithm choice depends on its timing-calibrated
				// cost model, so the two documents may legitimately dispatch
				// differently — and DPO reports relaxation levels without
				// the per-answer Relaxed detail plan-based runs attach. The
				// ranking itself (nodes, scores, levels) must still match.
				render = renderRankingNoDetail
			}
			if render(cold) != render(warm) {
				t.Errorf("%v/%v: template-hit ranking differs from uncached evaluation\nuncached:\n%swarm:\n%s",
					algo, scheme, render(cold), render(warm))
			}
		}
	}
	if _, ok := uncached.PlanCacheStats(); ok {
		t.Error("PlanCacheStats ok after SetPlanCache(0)")
	}
	st, ok := cached.PlanCacheStats()
	if !ok || st.Hits == 0 {
		t.Errorf("cached document recorded no template hits: %+v (ok=%v)", st, ok)
	}
}

// TestPlanCacheBounded feeds far more distinct query shapes than the
// configured capacity: the cache must stay within its bound and account
// for every displaced template, where the old unbounded memo grew
// without limit.
func TestPlanCacheBounded(t *testing.T) {
	doc := xmarkDoc(t, 64, 3)
	doc.SetPlanCache(16)
	const shapes = 500
	for i := 0; i < shapes; i++ {
		// Distinct K values produce distinct contains terms, hence
		// distinct canonical queries and distinct template keys.
		q := MustParseQuery(fmt.Sprintf(`//item[./name and .contains("term%d")]`, i))
		if _, err := doc.Search(q, SearchOptions{K: 3, Algorithm: Hybrid}); err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
	}
	st, ok := doc.PlanCacheStats()
	if !ok {
		t.Fatal("PlanCacheStats reported no cache")
	}
	if st.Entries > st.Capacity {
		t.Errorf("Entries = %d exceeds Capacity = %d", st.Entries, st.Capacity)
	}
	if st.Capacity < 16 || st.Capacity >= 2*16 {
		t.Errorf("Capacity = %d, want within [16, 32)", st.Capacity)
	}
	if st.Misses != shapes {
		t.Errorf("Misses = %d, want %d (every shape distinct)", st.Misses, shapes)
	}
	if got, want := st.Evictions, uint64(shapes-st.Entries); got != want {
		t.Errorf("Evictions = %d, want %d (misses - retained entries)", got, want)
	}
}

// TestPlanCacheSkipsChainAndPlanStages asserts the observable point of
// the template cache: a hit skips chain construction and (under Auto)
// plan construction, so the StageChain and StagePlan spans collapse to
// lookups.
func TestPlanCacheSkipsChainAndPlanStages(t *testing.T) {
	doc := xmarkDoc(t, 200, 7)
	q := MustParseQuery(`//item[./description/parlist and ./mailbox/mail/text]`)
	search := func() obs.SlowEntry {
		t.Helper()
		reg := obs.NewRegistry(4, 0)
		span := reg.StartSpan(q.String(), "Auto", "structure-first", 10)
		ctx := obs.WithSpan(context.Background(), span)
		if _, err := doc.SearchContext(ctx, q, SearchOptions{K: 10}); err != nil {
			t.Fatal(err)
		}
		span.Finish("ok")
		top := reg.SlowLog().Top(1)
		if len(top) != 1 {
			t.Fatalf("slowlog entries = %d, want 1", len(top))
		}
		return top[0]
	}
	search() // cold: builds chain, levels and plans into the template
	warm := search()
	st, ok := doc.PlanCacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("no template hit recorded: %+v (ok=%v)", st, ok)
	}
	// A hit's chain stage is one cache lookup and its plan stage memoized
	// arithmetic; generous absolute bounds keep this stable on loaded
	// machines while still catching a rebuild (which costs much more).
	const budget = 5 * time.Millisecond
	if d := warm.Stages[obs.StageChain]; d > budget {
		t.Errorf("template hit spent %v in StageChain, want ~zero (<= %v)", d, budget)
	}
	if d := warm.Stages[obs.StagePlan]; d > budget {
		t.Errorf("template hit spent %v in StagePlan, want ~zero (<= %v)", d, budget)
	}
}

// TestLoadAutoShortFiles covers the magic-sniff fix: files shorter than
// the 4-byte magic must fall through to XML parsing (reporting an XML
// error, not an I/O error), and a 4-byte XML document must still load.
func TestLoadAutoShortFiles(t *testing.T) {
	dir := t.TempDir()
	for n := 0; n <= 3; n++ {
		path := filepath.Join(dir, fmt.Sprintf("short%d.xml", n))
		if err := os.WriteFile(path, []byte("<a/>"[:n]), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadAuto(path); err == nil {
			t.Errorf("%d-byte file loaded as a document", n)
		}
	}
	path := filepath.Join(dir, "tiny.xml")
	if err := os.WriteFile(path, []byte("<a/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := LoadAuto(path)
	if err != nil {
		t.Fatalf("4-byte XML document: %v", err)
	}
	if doc.Nodes() != 1 {
		t.Errorf("Nodes = %d, want 1", doc.Nodes())
	}
}

// TestAnswerSnippetNonPositive pins the n <= 0 contract on both snippet
// paths: the full-text path (query with a contains predicate) and the
// structure-only path must return "", not a bare ellipsis.
func TestAnswerSnippetNonPositive(t *testing.T) {
	doc, err := LoadString(`<collection><article id="a1"><section><paragraph>` +
		`plenty of XML streaming text to force truncation at any positive budget` +
		`</paragraph></section></article></collection>`)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`//article[./section/paragraph[.contains("streaming")]]`, // full-text path
		`//article[./section/paragraph]`,                         // structure-only path
	}
	for _, src := range queries {
		answers, err := doc.Search(MustParseQuery(src), SearchOptions{K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) != 1 {
			t.Fatalf("%s: answers = %d, want 1", src, len(answers))
		}
		for _, n := range []int{0, -1, -100} {
			if s := answers[0].Snippet(n); s != "" {
				t.Errorf("%s: Snippet(%d) = %q, want \"\"", src, n, s)
			}
		}
		if s := answers[0].Snippet(10); s == "" {
			t.Errorf("%s: Snippet(10) returned nothing", src)
		}
	}
}

// TestRelaxationsWithWeights is the regression test for Relaxations
// ignoring weights: the reported penalties must scale with the weights
// exactly as a weighted search's scores do.
func TestRelaxationsWithWeights(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	uniform, err := doc.Relaxations(q)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := doc.RelaxationsWith(q, RelaxationsOpts{Weights: Weights{Structural: 2, Contains: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(uniform) == 0 || len(uniform) != len(weighted) {
		t.Fatalf("step counts: uniform=%d weighted=%d", len(uniform), len(weighted))
	}
	changed := false
	for i := range uniform {
		if weighted[i].Penalty != uniform[i].Penalty {
			changed = true
		}
		// Doubling every predicate weight must exactly double each step's
		// penalty (penalties are sums of relaxed predicates' weights).
		if got, want := weighted[i].Penalty, 2*uniform[i].Penalty; got != want {
			t.Errorf("step %d: weighted penalty = %g, want %g", i+1, got, want)
		}
	}
	if !changed {
		t.Error("weights had no effect on any penalty")
	}
	for i := range uniform {
		// Step scores are the exact-match score minus accumulated
		// penalties, so they double with the weights too.
		if got, want := weighted[i].Score, 2*uniform[i].Score; got != want {
			t.Errorf("step %d: weighted score = %g, want %g", i+1, got, want)
		}
	}

	// Search under the same weights must rank by the same doubled scale:
	// every weighted answer's structural score is exactly double its
	// uniform counterpart's.
	wopts := SearchOptions{K: 5, Algorithm: Hybrid, Weights: Weights{Structural: 2, Contains: 2}}
	uopts := SearchOptions{K: 5, Algorithm: Hybrid}
	wAnswers, err := doc.Search(q, wopts)
	if err != nil {
		t.Fatal(err)
	}
	uAnswers, err := doc.Search(q, uopts)
	if err != nil {
		t.Fatal(err)
	}
	if len(wAnswers) != len(uAnswers) {
		t.Fatalf("answer counts: weighted=%d uniform=%d", len(wAnswers), len(uAnswers))
	}
	for i := range wAnswers {
		if got, want := wAnswers[i].Structural, 2*uAnswers[i].Structural; got != want {
			t.Errorf("answer %d: weighted structural score = %g, want %g", i, got, want)
		}
	}
}

// renderRankingNoDetail is renderRanking without the Relaxed strings,
// for comparisons across runs that may dispatch to different algorithms.
func renderRankingNoDetail(answers []Answer) string {
	var sb strings.Builder
	for i, a := range answers {
		fmt.Fprintf(&sb, "%d|%s|%s|%.12f|%.12f|%d\n",
			i, a.Path, a.ID, a.Structural, a.Keyword, a.Relaxations)
	}
	return sb.String()
}
