package flexpath

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden fixtures instead of checking against them")

const goldenSnapshotPath = "testdata/golden_indexed.fxp2"

// TestGoldenIndexedSnapshot pins the FXP2 on-disk format: the
// checked-in fixture was written by an earlier build, and
// LoadIndexedSnapshot must keep reading it byte for byte. A format
// change that can still read old snapshots updates the fixture with
//
//	go test -run TestGoldenIndexedSnapshot -update-golden .
//
// A format change that cannot read it needs a new magic, not a fixture
// refresh.
func TestGoldenIndexedSnapshot(t *testing.T) {
	if *updateGolden {
		doc, err := LoadString(articlesXML)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenSnapshotPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := doc.SaveIndexedSnapshotFile(goldenSnapshotPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenSnapshotPath)
		return
	}
	doc, err := LoadIndexedSnapshotFile(goldenSnapshotPath)
	if err != nil {
		t.Fatalf("cannot read golden snapshot (format broke?): %v", err)
	}
	if doc.Nodes() == 0 {
		t.Fatal("golden snapshot restored an empty document")
	}
	// The restored document must be fully queryable: indexes, statistics
	// and the planner all come off the snapshot path.
	answers, err := doc.Search(MustParseQuery(paperQ1), SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(answers))
	}
	if answers[0].ID != "a1" || answers[0].Relaxations != 0 {
		t.Errorf("top answer: %+v", answers[0])
	}
	// And it must search identically to a fresh parse of the same XML.
	fresh, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Search(MustParseQuery(paperQ1), SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderAutoRanking(answers), renderAutoRanking(want); got != want {
		t.Errorf("snapshot search differs from fresh parse:\n%s\nvs\n%s", got, want)
	}
}
