package flexpath

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexpath/internal/wal"
)

func TestSnapshotRoundTrip(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Nodes() != doc.Nodes() {
		t.Fatalf("nodes %d != %d", restored.Nodes(), doc.Nodes())
	}
	// Searches against the restored document produce identical results.
	q := MustParseQuery(paperQ1)
	a, err := doc.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("answers %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Structural != b[i].Structural || a[i].Keyword != b[i].Keyword {
			t.Errorf("answer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadAuto(t *testing.T) {
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(xmlPath, []byte(articlesXML), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := LoadAuto(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "doc.fxt")
	if err := doc.SaveSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadAuto(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Nodes() != doc.Nodes() {
		t.Errorf("auto-loaded snapshot has %d nodes, want %d", snap.Nodes(), doc.Nodes())
	}
	if _, err := LoadAuto(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	// A tiny non-XML non-snapshot file must fail cleanly.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAuto(junk); err == nil {
		t.Error("junk accepted")
	}
}

func TestLoadSnapshotRejectsXML(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte(articlesXML))); err == nil {
		t.Error("XML accepted as snapshot")
	}
}

func TestIndexedSnapshotRoundTrip(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.SaveIndexedSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadIndexedSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	a, err := doc.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("answers %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Structural != b[i].Structural || a[i].Keyword != b[i].Keyword {
			t.Errorf("answer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Relaxation chains (penalties need stats + index) agree too.
	sa, err := doc.Relaxations(q)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := restored.Relaxations(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(sb) {
		t.Fatalf("chains differ in length: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Description != sb[i].Description || sa[i].Penalty != sb[i].Penalty {
			t.Errorf("chain step %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestIndexedSnapshotFileAndAuto(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.fxp")
	if err := doc.SaveIndexedSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	auto, err := LoadAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Nodes() != doc.Nodes() {
		t.Errorf("auto-loaded indexed snapshot: %d nodes, want %d", auto.Nodes(), doc.Nodes())
	}
	if _, err := LoadIndexedSnapshotFile("/nonexistent"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestIndexedSnapshotRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOPE9999"),
		"plain tree": []byte("FXT1whatever"),
		"truncated":  []byte("FXP2\x05abc"),
	} {
		if _, err := LoadIndexedSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestIndexedSnapshotRejectsTruncationAtEveryOffset cuts a valid FXP2
// snapshot at every possible length: no prefix may load. Regression
// test for the loader trusting section length prefixes — a length
// pointing past the remaining bytes used to surface as a silent short
// read, and a snapshot cut between sections decoded
// cleanly with missing data.
func TestIndexedSnapshotRejectsTruncationAtEveryOffset(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.SaveIndexedSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		if _, err := LoadIndexedSnapshot(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded", n, len(data))
		}
	}
	// File loads see the same rejection, with the path in the error.
	path := filepath.Join(t.TempDir(), "cut.fxp2")
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndexedSnapshotFile(path); err == nil {
		t.Fatal("truncated snapshot file loaded")
	} else if !strings.Contains(err.Error(), "cut.fxp2") {
		t.Errorf("error does not name the file: %v", err)
	}
}

// A section length prefix that lies beyond the file must be rejected up
// front (ErrCorruptSnapshot), not discovered as a short read.
func TestIndexedSnapshotRejectsLyingSectionLength(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.SaveIndexedSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The first section's uvarint length starts right after the 4-byte
	// magic. 0xff 0xff 0xff 0xff 0x7f declares a ~2^35-byte section: far
	// beyond the file, so a file load (which knows the total size) must
	// reject the declaration before parsing a single tree byte.
	lied := append([]byte{}, data[:4]...)
	lied = append(lied, 0xff, 0xff, 0xff, 0xff, 0x7f)
	lied = append(lied, data[5:]...)
	path := filepath.Join(t.TempDir(), "lied.fxp2")
	if err := os.WriteFile(path, lied, 0o644); err != nil {
		t.Fatal(err)
	}
	err = nil
	if _, err = LoadIndexedSnapshotFile(path); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
	if !strings.Contains(err.Error(), "remaining") {
		t.Errorf("lying length not rejected up front: %v", err)
	}
	// Stream loads can't know the total, but a declaration beyond any
	// plausible section size is still rejected before buffering.
	absurd := append([]byte{}, data[:4]...)
	absurd = append(absurd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := LoadIndexedSnapshot(bytes.NewReader(absurd)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("absurd length: err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestIndexedSnapshotBM25Preserved(t *testing.T) {
	doc, err := LoadWithOptions(strings.NewReader(articlesXML), DocumentOptions{BM25: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.SaveIndexedSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadIndexedSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	a, _ := doc.Search(q, SearchOptions{K: 3, Scheme: KeywordFirst})
	b, _ := restored.Search(q, SearchOptions{K: 3, Scheme: KeywordFirst})
	for i := range a {
		if a[i].Keyword != b[i].Keyword {
			t.Errorf("BM25 scores drifted after restore: %f vs %f", a[i].Keyword, b[i].Keyword)
		}
	}
}

// TestSnapshotFilePartialWriteSafe simulates a save that dies midway —
// a crash, a full disk — and checks the previously saved snapshot at the
// same path stays loadable. SaveIndexedSnapshotFile writes through
// wal.WriteFileAtomic, so the partial bytes only ever land in a temp
// file that gets cleaned up, never over the visible file.
func TestSnapshotFilePartialWriteSafe(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.fxp2")
	if err := doc.SaveIndexedSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted save: emit a prefix of real snapshot bytes, then fail,
	// exactly like a process killed mid-write.
	boom := errors.New("simulated crash mid-save")
	saveErr := wal.WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(good[:len(good)/2]); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(saveErr, boom) {
		t.Fatalf("partial save error not propagated: %v", saveErr)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, good) {
		t.Fatal("visible snapshot file changed after interrupted save")
	}
	if _, err := LoadAuto(path); err != nil {
		t.Fatalf("snapshot unloadable after interrupted save: %v", err)
	}
	// No temp litter left behind for operators to trip over.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "doc.fxp2" {
			t.Fatalf("unexpected file left in snapshot dir: %s", e.Name())
		}
	}

	// A successful re-save replaces the file atomically.
	if err := doc.SaveIndexedSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndexedSnapshotFile(path); err != nil {
		t.Fatalf("re-saved snapshot unloadable: %v", err)
	}
}
