package flexpath

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func durableDoc(i, rev int) []byte {
	return []byte(fmt.Sprintf(
		"<journal><article id='d%d'><section><algorithm>rev%d</algorithm><paragraph>XML streaming methods %d</paragraph></section></article></journal>",
		i, rev, i))
}

var durableQuery = MustParseQuery(`//article[./section[./paragraph and .contains("XML" and "streaming")]]`)

// searchKey flattens a ranking into a comparable signature.
func searchKey(t *testing.T, c *Collection) string {
	t.Helper()
	answers, err := c.Search(durableQuery, SearchOptions{K: 50})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	var sb strings.Builder
	for _, a := range answers {
		fmt.Fprintf(&sb, "%s|%s|%g|%g|%d\n", a.DocName, a.Path, a.Structural, a.Keyword, a.Relaxations)
	}
	return sb.String()
}

func TestDurableRecoverFromLogOnly(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := dc.Add(fmt.Sprintf("doc%d.xml", i), durableDoc(i, 1)); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if err := dc.Replace("doc2.xml", durableDoc(2, 2)); err != nil {
		t.Fatalf("replace: %v", err)
	}
	if err := dc.Remove("doc4.xml"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	want := searchKey(t, dc.Collection())
	wantNames := dc.Collection().Names()
	// No Close: simulate a crash by abandoning the handle (records are
	// durable the moment each mutation returned).
	dc2, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer dc2.Close()
	if s := dc2.Stats(); s.ReplayedRecords != 7 {
		t.Fatalf("replayed %d records, want 7", s.ReplayedRecords)
	}
	if got := dc2.Collection().Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("recovered names %v, want %v", got, wantNames)
	}
	if got := searchKey(t, dc2.Collection()); got != want {
		t.Fatalf("recovered ranking differs:\n%s\nvs\n%s", got, want)
	}
}

func TestDurableRecoverFromCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := dc.Add(fmt.Sprintf("doc%d.xml", i), durableDoc(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if s := dc.Stats(); s.Checkpoints != 1 || s.LogSegments != 1 {
		t.Fatalf("after checkpoint: %+v, want 1 checkpoint and only the active segment", s)
	}
	// Tail mutations after the checkpoint.
	if err := dc.Replace("doc1.xml", durableDoc(1, 9)); err != nil {
		t.Fatal(err)
	}
	if err := dc.Add("doc9.xml", durableDoc(9, 1)); err != nil {
		t.Fatal(err)
	}
	want := searchKey(t, dc.Collection())

	dc2, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer dc2.Close()
	s := dc2.Stats()
	if s.CheckpointLSN == 0 {
		t.Fatal("recovery did not boot from the checkpoint")
	}
	if s.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want only the 2 post-checkpoint ones", s.ReplayedRecords)
	}
	if got := searchKey(t, dc2.Collection()); got != want {
		t.Fatalf("recovered ranking differs:\n%s\nvs\n%s", got, want)
	}
}

func TestDurableAutomaticCheckpointAndPrune(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := dc.Add(fmt.Sprintf("doc%d.xml", i), durableDoc(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	if n := dc.Stats().Checkpoints; n == 0 {
		t.Fatal("no automatic checkpoint ran")
	}
	want := searchKey(t, dc.Collection())
	dc2, err := OpenDurableCollection(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer dc2.Close()
	if got := searchKey(t, dc2.Collection()); got != want {
		t.Fatal("recovered ranking differs after automatic checkpoints")
	}
}

func TestDurableTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := dc.Add(fmt.Sprintf("doc%d.xml", i), durableDoc(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	dc.Close()
	// Chop bytes off the single segment's tail: the last record becomes
	// torn, recovery must keep the first two documents.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			seg = filepath.Join(dir, e.Name())
		}
	}
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	dc2, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	defer dc2.Close()
	s := dc2.Stats()
	if s.ReplayedRecords != 2 || s.TornBytesTruncated == 0 {
		t.Fatalf("stats = %+v, want 2 replayed with torn bytes counted", s)
	}
	if got := dc2.Collection().Names(); !reflect.DeepEqual(got, []string{"doc0.xml", "doc1.xml"}) {
		t.Fatalf("recovered names %v, want the first two docs", got)
	}
}

func TestDurablePreconditionErrors(t *testing.T) {
	dc, err := OpenDurableCollection(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if err := dc.Add("a.xml", durableDoc(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := dc.Add("a.xml", durableDoc(0, 2)); !errors.Is(err, ErrDocumentExists) {
		t.Fatalf("duplicate add: %v, want ErrDocumentExists", err)
	}
	if err := dc.Replace("missing.xml", durableDoc(1, 1)); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("replace missing: %v, want ErrNoDocument", err)
	}
	if err := dc.Remove("missing.xml"); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("remove missing: %v, want ErrNoDocument", err)
	}
	if err := dc.Add("bad.xml", []byte("<unclosed")); err == nil {
		t.Fatal("malformed XML accepted")
	}
	// Failed mutations must not have been logged: recovery sees one doc.
	appended := dc.Stats().AppendedRecords
	if appended != 1 {
		t.Fatalf("appended %d records, want 1 (failures must not log)", appended)
	}
	// Idempotent variants.
	if err := dc.Upsert("a.xml", durableDoc(0, 3)); err != nil {
		t.Fatalf("upsert existing: %v", err)
	}
	if err := dc.Upsert("b.xml", durableDoc(2, 1)); err != nil {
		t.Fatalf("upsert new: %v", err)
	}
	if removed, err := dc.RemoveIfPresent("b.xml"); err != nil || !removed {
		t.Fatalf("RemoveIfPresent(b) = %v, %v", removed, err)
	}
	if removed, err := dc.RemoveIfPresent("b.xml"); err != nil || removed {
		t.Fatalf("second RemoveIfPresent(b) = %v, %v, want no-op", removed, err)
	}
}

func TestDurableSeedOnlyOnce(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDurableCollection(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Seed("seed.xml", durableDoc(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Durably mutate the seeded document, then "restart" and re-seed: the
	// mutation must win over the seed file.
	if err := dc.Replace("seed.xml", durableDoc(0, 2)); err != nil {
		t.Fatal(err)
	}
	want := searchKey(t, dc.Collection())
	dc.Close()
	dc2, err := OpenDurableCollection(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dc2.Close()
	if err := dc2.Seed("seed.xml", durableDoc(0, 1)); err != nil {
		t.Fatal(err)
	}
	if got := searchKey(t, dc2.Collection()); got != want {
		t.Fatal("re-seeding overwrote a durable mutation")
	}
	// Seeding a binary snapshot works too (magic-routed).
	doc, err := LoadString("<lib><book id='s1'><chapter><para>snapshot seeded text</para></chapter></book></lib>")
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "s.fxp2")
	if err := doc.SaveIndexedSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := dc2.Seed("snap.fxp2", raw); err != nil {
		t.Fatalf("seeding snapshot bytes: %v", err)
	}
	if _, ok := dc2.Collection().Document("snap.fxp2"); !ok {
		t.Fatal("snapshot seed not added")
	}
}

// TestDurableMutateWhileCheckpointing is the -race stress test: searches,
// mutations and forced checkpoints all running concurrently, then a
// recovery that must land on exactly the final acknowledged state.
func TestDurableMutateWhileCheckpointing(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDurableCollection(dir, DurableOptions{CheckpointEvery: 5, SyncWindow: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := dc.Add(fmt.Sprintf("doc%d.xml", i), durableDoc(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	const (
		mutators = 4
		rounds   = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, mutators+2)
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				name := fmt.Sprintf("doc%d.xml", m)
				if err := dc.Upsert(name, durableDoc(m, r)); err != nil {
					errCh <- fmt.Errorf("mutator %d round %d: %w", m, r, err)
					return
				}
				extra := fmt.Sprintf("extra-%d.xml", m)
				if r%2 == 0 {
					if err := dc.Upsert(extra, durableDoc(100+m, r)); err != nil {
						errCh <- err
						return
					}
				} else {
					if _, err := dc.RemoveIfPresent(extra); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(m)
	}
	wg.Add(1)
	go func() { // searches racing the mutations
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := dc.Collection().Search(durableQuery, SearchOptions{K: 10}); err != nil {
				errCh <- fmt.Errorf("search: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // explicit checkpoints racing the automatic ones
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := dc.Checkpoint(); err != nil {
				errCh <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want := searchKey(t, dc.Collection())
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	dc2, err := OpenDurableCollection(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer dc2.Close()
	if got := searchKey(t, dc2.Collection()); got != want {
		t.Fatalf("recovered ranking differs from pre-crash state:\n%s\nvs\n%s", got, want)
	}
}

func TestDurableClosedRejectsMutations(t *testing.T) {
	dc, err := OpenDurableCollection(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dc.Add("a.xml", durableDoc(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dc.Add("b.xml", durableDoc(1, 1)); err == nil {
		t.Fatal("mutation accepted after Close")
	}
	// Searches keep working on the closed collection.
	if _, err := dc.Collection().Search(durableQuery, SearchOptions{K: 5}); err != nil {
		t.Fatalf("search after close: %v", err)
	}
}
