package flexpath

// Benchmarks regenerating the FleXPath paper's experiments (§6). One
// benchmark group per figure; cmd/flexbench runs the same sweeps at the
// paper's full scales and prints the series. Document sizes here are kept
// small so `go test -bench=.` completes quickly; see EXPERIMENTS.md for
// the shapes at 1-100 MB.

import (
	"fmt"
	"sync"
	"testing"

	"flexpath/internal/xmark"
)

// Experiment queries (§6, "Dataset and Queries").
const (
	benchXQ1 = `//item[./description/parlist]`
	benchXQ2 = `//item[./description/parlist and ./mailbox/mail/text]`
	benchXQ3 = `//item[./description/parlist/listitem and ` +
		`./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]`
)

var (
	benchDocs   = map[int64]*Document{}
	benchDocsMu sync.Mutex
)

func benchDoc(b *testing.B, kb int64) *Document {
	b.Helper()
	benchDocsMu.Lock()
	defer benchDocsMu.Unlock()
	if d, ok := benchDocs[kb]; ok {
		return d
	}
	tree, err := xmark.Build(xmark.Config{TargetBytes: kb << 10, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	d := NewDocument(tree)
	benchDocs[kb] = d
	return d
}

func benchSearch(b *testing.B, d *Document, query string, algo Algorithm, k int) {
	b.Helper()
	q := MustParseQuery(query)
	opts := SearchOptions{K: k, Algorithm: algo}
	if _, err := d.Search(q, opts); err != nil { // warm up chain + IR caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Search(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig09 — Figure 9: DPO vs SSO while the number of admissible
// relaxations grows (XQ1 < XQ2 < XQ3), 1 MB document, K=50.
func BenchmarkFig09(b *testing.B) {
	d := benchDoc(b, 1<<10)
	for _, w := range []struct{ name, q string }{
		{"XQ1", benchXQ1}, {"XQ2", benchXQ2}, {"XQ3", benchXQ3},
	} {
		for _, algo := range []Algorithm{DPO, SSO} {
			b.Run(fmt.Sprintf("%s/%v", w.name, algo), func(b *testing.B) {
				benchSearch(b, d, w.q, algo, 50)
			})
		}
	}
}

// BenchmarkFig10 — Figure 10: DPO vs SSO as K grows, XQ3.
func BenchmarkFig10(b *testing.B) {
	d := benchDoc(b, 4<<10)
	for _, k := range []int{50, 200, 600} {
		for _, algo := range []Algorithm{DPO, SSO} {
			b.Run(fmt.Sprintf("K=%d/%v", k, algo), func(b *testing.B) {
				benchSearch(b, d, benchXQ3, algo, k)
			})
		}
	}
}

// BenchmarkFig11 — Figure 11: DPO vs SSO across document sizes at small K
// (XQ2, K=12); the algorithms should be close.
func BenchmarkFig11(b *testing.B) {
	for _, kb := range []int64{512, 1 << 10, 2 << 10, 4 << 10} {
		d := benchDoc(b, kb)
		for _, algo := range []Algorithm{DPO, SSO} {
			b.Run(fmt.Sprintf("%dKB/%v", kb, algo), func(b *testing.B) {
				benchSearch(b, d, benchXQ2, algo, 12)
			})
		}
	}
}

// BenchmarkFig12 — Figure 12: DPO vs SSO across document sizes at large K
// (XQ2, K=500); SSO should win and the gap grow with size.
func BenchmarkFig12(b *testing.B) {
	for _, kb := range []int64{512, 1 << 10, 2 << 10, 4 << 10} {
		d := benchDoc(b, kb)
		for _, algo := range []Algorithm{DPO, SSO} {
			b.Run(fmt.Sprintf("%dKB/%v", kb, algo), func(b *testing.B) {
				benchSearch(b, d, benchXQ2, algo, 500)
			})
		}
	}
}

// BenchmarkFig13 — Figure 13: SSO vs Hybrid while the number of
// relaxations grows (K=500).
func BenchmarkFig13(b *testing.B) {
	d := benchDoc(b, 4<<10)
	for _, w := range []struct{ name, q string }{
		{"XQ1", benchXQ1}, {"XQ2", benchXQ2}, {"XQ3", benchXQ3},
	} {
		for _, algo := range []Algorithm{SSO, Hybrid} {
			b.Run(fmt.Sprintf("%s/%v", w.name, algo), func(b *testing.B) {
				benchSearch(b, d, w.q, algo, 500)
			})
		}
	}
}

// BenchmarkFig14 — Figure 14: SSO vs Hybrid across document sizes (XQ3,
// K=500).
func BenchmarkFig14(b *testing.B) {
	for _, kb := range []int64{512, 1 << 10, 2 << 10, 4 << 10} {
		d := benchDoc(b, kb)
		for _, algo := range []Algorithm{SSO, Hybrid} {
			b.Run(fmt.Sprintf("%dKB/%v", kb, algo), func(b *testing.B) {
				benchSearch(b, d, benchXQ3, algo, 500)
			})
		}
	}
}

// BenchmarkFig15 — Figure 15: SSO vs Hybrid as K grows (medium document,
// XQ3).
func BenchmarkFig15(b *testing.B) {
	d := benchDoc(b, 4<<10)
	for _, k := range []int{50, 200, 600} {
		for _, algo := range []Algorithm{SSO, Hybrid} {
			b.Run(fmt.Sprintf("K=%d/%v", k, algo), func(b *testing.B) {
				benchSearch(b, d, benchXQ3, algo, k)
			})
		}
	}
}

// BenchmarkFig16 — Figure 16: SSO vs Hybrid as K grows on the large
// document (XQ3).
func BenchmarkFig16(b *testing.B) {
	d := benchDoc(b, 8<<10)
	for _, k := range []int{50, 200, 600} {
		for _, algo := range []Algorithm{SSO, Hybrid} {
			b.Run(fmt.Sprintf("K=%d/%v", k, algo), func(b *testing.B) {
				benchSearch(b, d, benchXQ3, algo, k)
			})
		}
	}
}

// BenchmarkAblationDPOSemijoin quantifies how much of DPO's cost comes
// from materializing full match tuples per level: the semijoin variant
// evaluates the same relaxation chain with existential two-pass joins.
// (Not a paper figure; see DESIGN.md, ablations.)
func BenchmarkAblationDPOSemijoin(b *testing.B) {
	d := benchDoc(b, 2<<10)
	q := MustParseQuery(benchXQ3)
	chain, err := d.chain(q, Weights{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plan-DPO", func(b *testing.B) {
		benchSearch(b, d, benchXQ3, DPO, 200)
	})
	b.Run("semijoin-DPO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runDPOSemijoin(d, chain, 200)
		}
	})
}

// BenchmarkAblationBestOnly measures the dominated-extension optimization
// for optional variables: with it disabled, every optional match
// multiplies the tuple stream. (Design-choice ablation; see DESIGN.md.)
func BenchmarkAblationBestOnly(b *testing.B) {
	d := benchDoc(b, 1<<10)
	q := MustParseQuery(benchXQ3)
	chain, err := d.chain(q, Weights{})
	if err != nil {
		b.Fatal(err)
	}
	// A moderate prefix: the unoptimized variant is exponential in the
	// number of optional variables, so the full chain is unrunnable —
	// which is the point of the optimization.
	steps := 10
	if chain.Len() < steps {
		steps = chain.Len()
	}
	plan, err := chain.PlanAt(steps)
	if err != nil {
		b.Fatal(err)
	}
	for _, disabled := range []bool{false, true} {
		name := "bestOnly"
		if disabled {
			name = "materializeAll"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runPlanAblation(d, plan, 200, disabled)
			}
		})
	}
}

// BenchmarkAblationParallel measures join-step fan-out on the encoded
// XQ3 plan.
func BenchmarkAblationParallel(b *testing.B) {
	d := benchDoc(b, 4<<10)
	q := MustParseQuery(benchXQ3)
	opts := SearchOptions{K: 500, Algorithm: Hybrid}
	if _, err := d.Search(q, opts); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := opts
			o.Parallel = workers
			for i := 0; i < b.N; i++ {
				if _, err := d.Search(q, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubstrates measures the building blocks: parsing, indexing,
// statistics collection and chain construction on a 1 MB document.
func BenchmarkSubstrates(b *testing.B) {
	cfg := xmark.Config{TargetBytes: 1 << 20, Seed: 42}
	b.Run("xmark-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmark.Build(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	tree, err := xmark.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("index+stats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewDocument(tree)
		}
	})
	d := NewDocument(tree)
	b.Run("chain-build", func(b *testing.B) {
		q := MustParseQuery(benchXQ3)
		for i := 0; i < b.N; i++ {
			// Bypass the cache by varying weights marginally.
			w := Weights{Structural: 1 + float64(i%7)*1e-9, Contains: 1}
			if _, err := d.chain(q, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIRFirstCrossover compares structure-first and IR-first exact
// evaluation (§5.1 leaves this comparison open). IR-first starts from
// inverted-index witnesses and should win when keywords are selective;
// structure-first scans tag lists and should win when keywords are
// common.
func BenchmarkIRFirstCrossover(b *testing.B) {
	d := benchDoc(b, 4<<10)
	cases := []struct{ name, query string }{
		// A phrase (adjacent bigram) is rare on this corpus: few
		// witnesses, so starting from the inverted index pays off.
		{"selective", `//item[./description[.contains("gold silver")]]`},
		// A hot single term has thousands of witnesses: walking their
		// ancestor chains costs more than scanning the tag list.
		{"common", `//item[./description[.contains("xml")]]`},
	}
	for _, c := range cases {
		q := MustParseQuery(c.query)
		b.Run(c.name+"/structure-first", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runEvaluate(d, q, false)
			}
		})
		b.Run(c.name+"/ir-first", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runEvaluate(d, q, true)
			}
		})
	}
}
