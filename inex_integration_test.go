package flexpath

import (
	"testing"

	"flexpath/internal/inex"
)

// inexDoc builds the heterogeneous article corpus once.
func inexDoc(t testing.TB, articles int, seed int64) *Document {
	t.Helper()
	tree, err := inex.Build(inex.Config{Articles: articles, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewDocument(tree)
}

const inexQ1 = `//article[./section[./algorithm and ./paragraph[.contains("xml" and "streaming")]]]`

// TestInexLadderPartition reproduces the paper's introduction on a
// synthetic INEX-like corpus: the Q1..Q6 ladder admits strictly growing
// answer sets, and FleXPath's single flexible query covers the whole
// ladder with decreasing structural scores.
func TestInexLadderPartition(t *testing.T) {
	doc := inexDoc(t, 300, 42)
	ladder := []string{
		inexQ1,
		`//article[./section[./algorithm and ./paragraph and .contains("xml" and "streaming")]]`,
		`//article[.//algorithm and ./section[./paragraph[.contains("xml" and "streaming")]]]`,
		`//article[.//algorithm and ./section[./paragraph and .contains("xml" and "streaming")]]`,
		`//article[./section[./paragraph and .contains("xml" and "streaming")]]`,
		`//article[.contains("xml" and "streaming")]`,
	}
	var counts []int
	prevSets := map[string]map[string]bool{}
	_ = prevSets
	var prev map[string]bool
	for li, src := range ladder {
		q := MustParseQuery(src)
		answers, err := doc.Search(q, SearchOptions{K: 400})
		if err != nil {
			t.Fatal(err)
		}
		exact := map[string]bool{}
		for _, a := range answers {
			if a.Relaxations == 0 {
				exact[a.ID] = true
			}
		}
		counts = append(counts, len(exact))
		// Containment between comparable ladder members: Q1 ⊆ Q2 ⊆ Q4 ⊆
		// Q5 ⊆ Q6 and Q1 ⊆ Q3 ⊆ Q4; adjacent steps here are comparable
		// except Q2→Q3.
		if li > 0 && li != 2 {
			for id := range prev {
				if !exact[id] {
					t.Errorf("ladder %d lost answer %s of ladder %d", li, id, li-1)
				}
			}
		}
		if li != 1 { // after Q2, switch comparison base for the Q3 branch
			prev = exact
		}
	}
	if !(counts[0] < counts[3] && counts[3] <= counts[4] && counts[4] < counts[5]) {
		t.Errorf("ladder counts not strictly growing where expected: %v", counts)
	}
	t.Logf("ladder exact counts: %v", counts)

	// One flexible Q1 search covers the ladder.
	answers, err := doc.Search(MustParseQuery(inexQ1), SearchOptions{K: counts[5]})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < counts[5] {
		t.Errorf("flexible search found %d answers, ladder end has %d", len(answers), counts[5])
	}
	maxLevel := 0
	for _, a := range answers {
		if a.Relaxations > maxLevel {
			maxLevel = a.Relaxations
		}
	}
	if maxLevel < 2 {
		t.Errorf("flexible search used at most %d relaxation levels; heterogeneity lost", maxLevel)
	}
}

// TestInexAlgorithmsAgree: SSO and Hybrid agree exactly on the
// heterogeneous corpus across schemes; DPO's answer sets match level by
// level.
func TestInexAlgorithmsAgree(t *testing.T) {
	doc := inexDoc(t, 200, 7)
	q := MustParseQuery(inexQ1)
	for _, scheme := range []Scheme{StructureFirst, KeywordFirst, Combined} {
		sso, err := doc.Search(q, SearchOptions{K: 30, Algorithm: SSO, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := doc.Search(q, SearchOptions{K: 30, Algorithm: Hybrid, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		if len(sso) != len(hyb) {
			t.Fatalf("%v: SSO %d vs Hybrid %d answers", scheme, len(sso), len(hyb))
		}
		for i := range sso {
			if sso[i].Structural != hyb[i].Structural || sso[i].Keyword != hyb[i].Keyword {
				t.Errorf("%v: rank %d scores differ: %+v vs %+v", scheme, i, sso[i], hyb[i])
			}
		}
	}
	// DPO under structure-first: same per-level answer sets as SSO.
	dpo, err := doc.Search(q, SearchOptions{K: 30, Algorithm: DPO})
	if err != nil {
		t.Fatal(err)
	}
	sso, err := doc.Search(q, SearchOptions{K: 30, Algorithm: SSO})
	if err != nil {
		t.Fatal(err)
	}
	dpoIDs := map[string]int{}
	for _, a := range dpo {
		dpoIDs[a.ID] = a.Relaxations
	}
	for _, a := range sso {
		if lvl, ok := dpoIDs[a.ID]; ok && lvl != a.Relaxations {
			t.Errorf("answer %s: DPO level %d, SSO level %d", a.ID, lvl, a.Relaxations)
		}
	}
}

// TestInexHierarchyExtension: querying for a supertype finds subtype
// elements on the INEX corpus.
func TestInexHierarchyExtension(t *testing.T) {
	doc := inexDoc(t, 100, 3)
	// subsection is (by our synthetic hierarchy) a subtype of section.
	q := MustParseQuery(`//article[./section/subsection]`)
	plain, err := doc.Search(q, SearchOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	// With "subsection" a subtype of "section", //article[./section/section]
	// style queries widen. Here: ask for articles with a section inside a
	// section — impossible without the hierarchy.
	q2 := MustParseQuery(`//article[./section/section]`)
	without, err := doc.Search(q2, SearchOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	withoutExact := 0
	for _, a := range without {
		if a.Relaxations == 0 {
			withoutExact++
		}
	}
	if withoutExact != 0 {
		t.Fatalf("section/section matched exactly without hierarchy")
	}
	with, err := doc.Search(q2, SearchOptions{
		K:         100,
		Hierarchy: map[string]string{"subsection": "section"},
	})
	if err != nil {
		t.Fatal(err)
	}
	withExact := 0
	for _, a := range with {
		if a.Relaxations == 0 {
			withExact++
		}
	}
	if withExact == 0 {
		t.Error("hierarchy did not widen matching")
	}
	_ = plain
}
