package flexpath

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

const collDocA = `
<journal>
  <article id="j1"><section><algorithm>x</algorithm>
    <paragraph>xml streaming methods</paragraph></section></article>
</journal>`

const collDocB = `
<proceedings>
  <article id="p1"><section>
    <title>xml streaming</title><algorithm>y</algorithm>
    <paragraph>unrelated</paragraph></section></article>
  <article id="p2"><section>
    <paragraph>more xml streaming text</paragraph></section></article>
</proceedings>`

func testCollection(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection()
	a, err := LoadString(collDocA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadString(collDocB)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("a.xml", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("b.xml", b); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCollectionSearchMerges(t *testing.T) {
	c := testCollection(t)
	q := MustParseQuery(paperQ1)
	answers, err := c.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("got %d answers", len(answers))
	}
	// j1 is the only exact match across the corpus and must rank first.
	if answers[0].ID != "j1" || answers[0].DocName != "a.xml" {
		t.Errorf("top answer = %s from %s", answers[0].ID, answers[0].DocName)
	}
	// Global ordering is by score across documents.
	for i := 1; i < len(answers); i++ {
		if answers[i].Structural > answers[i-1].Structural+1e-9 {
			t.Errorf("merged ranking out of order at %d", i)
		}
	}
	seenDocs := map[string]bool{}
	for _, a := range answers {
		seenDocs[a.DocName] = true
	}
	if !seenDocs["a.xml"] || !seenDocs["b.xml"] {
		t.Errorf("answers not merged across documents: %v", seenDocs)
	}
}

func TestCollectionDuplicateName(t *testing.T) {
	c := NewCollection()
	d, _ := LoadString(collDocA)
	if err := c.Add("x", d); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("x", d); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestCollectionAccessors(t *testing.T) {
	c := testCollection(t)
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Nodes() == 0 {
		t.Error("Nodes = 0")
	}
	if _, ok := c.Document("a.xml"); !ok {
		t.Error("a.xml not found")
	}
	if _, ok := c.Document("zzz"); ok {
		t.Error("phantom document found")
	}
}

func TestCollectionMetricsAccumulate(t *testing.T) {
	c := testCollection(t)
	var m Metrics
	if _, err := c.Search(MustParseQuery(paperQ1), SearchOptions{
		K: 3, Algorithm: SSO, Metrics: &m,
	}); err != nil {
		t.Fatal(err)
	}
	if m.PlansRun < 2 {
		t.Errorf("expected plans from both documents, got %+v", m)
	}
}

func TestLoadCollectionDir(t *testing.T) {
	dir := t.TempDir()
	for i, src := range []string{collDocA, collDocB} {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("d%d.xml", i)), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-XML file must be skipped.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Extension matching is case-insensitive: .XML must load (regression
	// for the suffix check that only accepted lowercase ".xml").
	if err := os.WriteFile(filepath.Join(dir, "UPPER.XML"), []byte(collDocA), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCollectionDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Errorf("loaded %d documents, want 3", c.Len())
	}
	if _, ok := c.Document(filepath.Join(dir, "UPPER.XML")); !ok {
		t.Errorf("UPPER.XML not loaded; names: %v", c.Names())
	}
	if _, err := LoadCollectionDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := LoadCollectionDir("/nonexistent"); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestLoadCollectionFiles(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.xml")
	if err := os.WriteFile(p, []byte(collDocA), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCollectionFiles(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if _, err := LoadCollectionFiles(p, "/missing.xml"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCollectionWithAdvancedOptions(t *testing.T) {
	c := testCollection(t)
	q := MustParseQuery(paperQ1)
	// Hierarchy + parallel + keyword-first through the collection path.
	answers, err := c.Search(q, SearchOptions{
		K:         3,
		Scheme:    KeywordFirst,
		Parallel:  3,
		Hierarchy: map[string]string{"subsection": "section"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("answers = %d", len(answers))
	}
	// keyword-first ordering respected across documents.
	for i := 1; i < len(answers); i++ {
		if answers[i].Keyword > answers[i-1].Keyword+1e-9 {
			t.Errorf("keyword-first merge out of order at %d", i)
		}
	}
}

func TestCollectionSearchError(t *testing.T) {
	c := testCollection(t)
	// DataRelaxation with an impossible budget is the easiest way to make
	// a per-document search fail; the collection must surface the error
	// with the document name.
	_, err := c.Search(MustParseQuery(`//article[./section/paragraph]`), SearchOptions{
		K: 3, Algorithm: DataRelaxation,
	})
	// The default budget is large, so this succeeds; force failure via a
	// query with enormous pair counts is impractical here — instead check
	// the success path returns merged results.
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
