package flexpath

import (
	"testing"

	"flexpath/internal/xmark"
)

// articlesXML is a small document in the shape of the paper's running
// example (Figure 1): articles with sections, algorithms and paragraphs.
const articlesXML = `
<collection>
  <article id="a1">
    <title>streaming evaluation</title>
    <section>
      <title>intro</title>
      <algorithm>stack merge</algorithm>
      <paragraph>we process XML via streaming passes</paragraph>
    </section>
  </article>
  <article id="a2">
    <title>storage</title>
    <section>
      <title>XML streaming layouts</title>
      <algorithm>page split</algorithm>
      <paragraph>disk layout of records</paragraph>
    </section>
  </article>
  <article id="a3">
    <title>joins</title>
    <section>
      <paragraph>structural joins over XML streaming inputs</paragraph>
    </section>
    <appendix>
      <algorithm>twig join</algorithm>
    </appendix>
  </article>
  <article id="a4">
    <title>surveys</title>
    <section>
      <paragraph>a survey of query languages</paragraph>
    </section>
  </article>
</collection>`

// paperQ1 is query Q1 of Figure 1.
const paperQ1 = `//article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]`

func TestSmokeSearch(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	q, err := ParseQuery(paperQ1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	for _, algo := range []Algorithm{DPO, SSO, Hybrid} {
		answers, err := doc.Search(q, SearchOptions{K: 3, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(answers) == 0 {
			t.Fatalf("%v: no answers", algo)
		}
		// a1 matches Q1 exactly and must rank first.
		if answers[0].ID != "a1" {
			t.Errorf("%v: top answer = %q, want a1 (answers: %+v)", algo, answers[0].ID, answers)
		}
		if answers[0].Relaxations != 0 {
			t.Errorf("%v: exact answer reported %d relaxations", algo, answers[0].Relaxations)
		}
		// a2 (keywords in the section title, not the paragraph) and a3
		// (algorithm outside the section) should be admitted by
		// relaxations with lower structural scores.
		for _, a := range answers[1:] {
			if a.Structural >= answers[0].Structural {
				t.Errorf("%v: relaxed answer %s has ss %.3f >= exact %.3f",
					algo, a.ID, a.Structural, answers[0].Structural)
			}
		}
	}
}

func TestSmokeRelaxations(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	steps, err := doc.Relaxations(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no relaxation steps")
	}
	prev := 1e18
	for _, s := range steps {
		if s.Score > prev+1e-9 {
			t.Errorf("structural score increased at level %d: %.3f -> %.3f", s.Level, prev, s.Score)
		}
		prev = s.Score
		t.Logf("level %d: %-45s penalty=%.3f ss=%.3f", s.Level, s.Description, s.Penalty, s.Score)
	}
}

func TestSmokeXMark(t *testing.T) {
	tree, err := xmark.Build(xmark.Config{TargetBytes: 200 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDocument(tree)
	q := MustParseQuery(`//item[./description/parlist and ./mailbox/mail/text]`)
	for _, algo := range []Algorithm{DPO, SSO, Hybrid} {
		var m Metrics
		answers, err := doc.Search(q, SearchOptions{K: 20, Algorithm: algo, Metrics: &m})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(answers) != 20 {
			t.Fatalf("%v: got %d answers, want 20", algo, len(answers))
		}
		t.Logf("%v: metrics=%+v first=%+v", algo, m, answers[0].Path)
	}
}
