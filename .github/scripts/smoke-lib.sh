#!/usr/bin/env bash
# Shared preamble for the CI smoke jobs (serve-smoke, router-smoke,
# crash-recovery, ingest-bench): build binaries, wait for /healthz,
# generate the small journal corpus, normalize search responses for
# byte-identity diffs. Source this file, then call the helpers — each
# workflow `run:` block is its own shell, so source it in every step
# that needs one.
set -euo pipefail

# build_bins CMD... — build each named command into ./CMD.
build_bins() {
  local cmd
  for cmd in "$@"; do
    go build -o "$cmd" "./cmd/$cmd"
  done
}

# wait_healthy PORT... — poll each port's /healthz until it answers
# (up to ~5s per port), failing if one never comes up.
wait_healthy() {
  local port i
  for port in "$@"; do
    for i in $(seq 1 50); do
      curl -sf "http://127.0.0.1:$port/healthz" >/dev/null && break
      sleep 0.1
    done
    curl -sf "http://127.0.0.1:$port/healthz" >/dev/null || {
      echo "port $port never became healthy"
      return 1
    }
  done
}

# make_corpus DIR — write the six-document journal corpus the smoke jobs
# query: three relaxation levels, so merged rankings have real structure
# to get wrong.
make_corpus() {
  local dir=$1 i body
  mkdir -p "$dir"
  for i in 0 1 2 3 4 5; do
    case $((i % 3)) in
      0) body='<section><algorithm>x</algorithm><paragraph>XML streaming methods</paragraph></section>' ;;
      1) body='<section><paragraph>XML streaming text</paragraph></section>' ;;
      2) body='<section><algorithm>y</algorithm><paragraph>unrelated prose</paragraph></section>' ;;
    esac
    printf '<journal><article id="d%d">%s</article></journal>\n' "$i" "$body" > "$dir/doc$i.xml"
  done
}

# answers BASE_URL PARAMS QUERY OUT — fetch a search and reduce the
# response to just its answers array (elapsed_ms is wall time and may
# not be diffed).
answers() {
  curl -sf --get "$1/search?$2" --data-urlencode "q=$3" |
    python3 -c 'import json,sys; json.dump(json.load(sys.stdin)["answers"], sys.stdout, indent=1)' > "$4"
}

# answers_normdoc BASE_URL PARAMS QUERY OUT — like answers, but reduce
# each answer's document name to its extensionless basename, so a server
# seeded from doc0.xml diffs cleanly against one serving doc0.fxp3.
answers_normdoc() {
  curl -sf --get "$1/search?$2" --data-urlencode "q=$3" |
    python3 -c '
import json, os, sys
ans = json.load(sys.stdin)["answers"]
for a in ans:
    a["doc"] = os.path.splitext(os.path.basename(a["doc"]))[0]
json.dump(ans, sys.stdout, indent=1)' > "$4"
}
