package exec

import (
	"sync"

	"flexpath/internal/ir"
	"flexpath/internal/xmltree"
)

// arenaChunk is the minimum size of a node-buffer chunk. Large enough
// that typical searches carve every intermediate list from one chunk,
// small enough that a pooled idle arena stays cheap.
const arenaChunk = 1 << 14

// Arena is a per-search scratch allocator for the execution core. Join
// kernels, candidate filters and the tuple pipeline carve their
// intermediate buffers from it instead of allocating per call; Reset
// recycles everything at once between relaxation levels or plan restarts.
//
// Contract: buffers carved from an arena are only valid until the next
// Reset (or PutArena). Nothing carved from an arena may be returned to a
// caller that outlives the search — results that escape (answers, result
// blocks) are always copied into ordinary heap slices. An Arena is NOT
// safe for concurrent use; parallel join workers fall back to private
// heap allocation.
//
// A nil *Arena is valid everywhere and degrades to plain allocation, so
// oracle and test paths run the exact same code without an arena.
type Arena struct {
	// node is the current chunk; its length is the high-water mark of
	// carved space. Exhausted chunks park in full (still referenced by
	// outstanding buffers) until Reset.
	node []xmltree.NodeID
	full [][]xmltree.NodeID

	// Typed scratch reused across join steps and relaxation levels.
	tups [][]tuple    // free-list of tuple buffers for the join pipeline
	keys []float64    // ModeSorted score keys
	idx  []int        // ModeSorted order permutation
	res  []*ir.Result // contains-predicate result scratch (eval paths)
}

// NewArena returns an empty arena. Most callers should prefer GetArena /
// PutArena, which recycle arenas through a pool.
func NewArena() *Arena { return &Arena{} }

var arenaPool = sync.Pool{New: func() interface{} { return &Arena{} }}

// GetArena returns a reset arena from the pool.
func GetArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.Reset()
	return a
}

// PutArena returns an arena to the pool. The caller must not use any
// buffer carved from it afterwards.
func PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	// Drop dangling binding pointers held by recycled tuple buffers so a
	// pooled idle arena does not pin a past search's binding blocks.
	for _, t := range a.tups {
		clear(t[:cap(t)])
	}
	arenaPool.Put(a)
}

// Reset recycles all carved node buffers at once. Only the largest chunk
// is kept, so a search that once ballooned does not pin its peak
// footprint forever.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for _, c := range a.full {
		if cap(c) > cap(a.node) {
			a.node = c
		}
	}
	a.full = a.full[:0]
	a.node = a.node[:0]
}

// Nodes carves a NodeID buffer with length 0 and capacity n. Appending
// within n never allocates; appending beyond n falls off the arena into
// an ordinary heap slice (correct, just unamortized). Nil-safe.
func (a *Arena) Nodes(n int) []xmltree.NodeID {
	if a == nil {
		return make([]xmltree.NodeID, 0, n)
	}
	if cap(a.node)-len(a.node) < n {
		c := arenaChunk
		if c < n {
			c = n
		}
		a.full = append(a.full, a.node)
		a.node = make([]xmltree.NodeID, 0, c)
	}
	off := len(a.node)
	a.node = a.node[:off+n]
	return a.node[off : off : off+n]
}

// nodesN carves a zeroed-length-n NodeID buffer (Nodes, pre-extended).
func (a *Arena) nodesN(n int) []xmltree.NodeID {
	b := a.Nodes(n)[:n]
	if a != nil {
		// Arena memory is recycled, not zeroed; callers of nodesN expect
		// to overwrite every element, but clear anyway when carving from
		// the arena so a missed write fails loudly (InvalidNode is -1,
		// zero is the root — both deterministic).
		clear(b)
	}
	return b
}

// tupleBuf pops a recycled tuple buffer (length 0), or nil when none is
// free; append grows nil slices normally. recycleTuples returns a buffer
// once the pipeline no longer reads it.
func (a *Arena) tupleBuf() []tuple {
	if a == nil || len(a.tups) == 0 {
		return nil
	}
	t := a.tups[len(a.tups)-1]
	a.tups = a.tups[:len(a.tups)-1]
	return t[:0]
}

func (a *Arena) recycleTuples(t []tuple) {
	if a == nil || cap(t) == 0 {
		return
	}
	a.tups = append(a.tups, t)
}

// sortScratch returns reusable keys/idx buffers of length n for the
// ModeSorted resort.
func (a *Arena) sortScratch(n int) ([]float64, []int) {
	if a == nil {
		return make([]float64, n), make([]int, n)
	}
	if cap(a.keys) < n {
		a.keys = make([]float64, n)
		a.idx = make([]int, n)
	}
	return a.keys[:n], a.idx[:n]
}

// results returns a reusable *ir.Result scratch slice of length 0.
func (a *Arena) results() []*ir.Result {
	if a == nil {
		return nil
	}
	return a.res[:0]
}

func (a *Arena) keepResults(r []*ir.Result) {
	if a != nil && cap(r) > cap(a.res) {
		a.res = r
	}
}
