package exec

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	plan, _ := buildParallelPlan(t)
	out := plan.Explain()
	for _, want := range []string{
		"plan: 4 vars (2 required)",
		"$1 book  [root scan]",
		"child-of #0",
		"OPTIONAL under #1",
		"bonus: pc with #1",
		"contains (optional, regain 0.2500)",
		"*", // distinguished marker
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
