package exec

import (
	"strings"
	"testing"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

// buildParallelPlan assembles a small plan with optional variables and
// bonuses directly (avoiding an import cycle with internal/core).
func buildParallelPlan(t *testing.T) (*Plan, *xmltree.Document) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 120; i++ {
		sb.WriteString("<book><chapter>")
		if i%3 != 0 {
			sb.WriteString("<para>gold text here</para>")
		}
		if i%2 == 0 {
			sb.WriteString("<note>silver margin</note>")
		}
		sb.WriteString("</chapter></book>")
	}
	sb.WriteString("</lib>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	ix := ir.NewIndex(doc)
	plan := &Plan{
		Doc: doc,
		Vars: []VarSpec{
			{VarID: 1, Tag: "book", Rel: RelRoot},
			{VarID: 2, Tag: "chapter", Rel: RelParent, Anchor: 0},
			{VarID: 3, Tag: "para", Rel: RelOptional, Anchor: 1,
				Bonus:    []BonusPred{{Other: 1, OtherIsAncestor: true, Parent: true, Penalty: 0.5, Bit: 0}},
				Contains: []ContainsSpec{{Res: ix.Eval(ir.MustParseExpr("gold")), Penalty: 0.25, Bit: 1}},
			},
			{VarID: 4, Tag: "note", Rel: RelOptional, Anchor: 1,
				Bonus: []BonusPred{{Other: 1, OtherIsAncestor: true, Parent: true, Penalty: 0.5, Bit: 2}},
			},
		},
		DistVar:        0,
		Base:           3,
		DroppedPenalty: 1.25,
		NumBits:        3,
		FirstOptional:  2,
	}
	_ = tpq.Child // keep the import meaningful if specs grow value preds
	return plan, doc
}

// TestParallelDeterministic: parallel execution returns exactly the
// sequential results for every mode and worker count.
func TestParallelDeterministic(t *testing.T) {
	plan, _ := buildParallelPlan(t)
	for _, mode := range []Mode{ModeExhaustive, ModeSorted, ModeBuckets} {
		seq := Run(plan, Options{K: 10, Mode: mode})
		for _, workers := range []int{2, 3, 8} {
			par := Run(plan, Options{K: 10, Mode: mode, Parallel: workers})
			if len(par) != len(seq) {
				t.Fatalf("mode %v workers %d: %d answers vs %d", mode, workers, len(par), len(seq))
			}
			for i := range seq {
				if seq[i] != par[i] {
					t.Errorf("mode %v workers %d: answer %d differs: %+v vs %+v",
						mode, workers, i, par[i], seq[i])
				}
			}
		}
	}
}

func TestParallelScores(t *testing.T) {
	plan, _ := buildParallelPlan(t)
	answers := Run(plan, Options{Mode: ModeExhaustive, Parallel: 4})
	if len(answers) != 120 {
		t.Fatalf("answers = %d, want 120 books", len(answers))
	}
	// Books with both para(gold) and note regain everything.
	if answers[0].Score.SS != 3 {
		t.Errorf("top score %f, want full base 3", answers[0].Score.SS)
	}
	// Books with neither stay at the floor.
	last := answers[len(answers)-1]
	if last.Score.SS != 3-1.25 {
		t.Errorf("bottom score %f, want %f", last.Score.SS, 3-1.25)
	}
}

// TestWitnessFirstLeafEquivalence: the adaptive witness-first leaf path
// must produce exactly the candidates the tag-scan path produces, for
// both rare and common predicates (forcing each path).
func TestWitnessFirstLeafEquivalence(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<lib>")
	for i := 0; i < 400; i++ {
		sb.WriteString("<book><para>common words everywhere")
		if i%97 == 0 {
			sb.WriteString(" rareterm")
		}
		sb.WriteString("</para></book>")
	}
	sb.WriteString("</lib>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	ix := ir.NewIndex(doc)
	for _, term := range []string{"rareterm", "common"} {
		res := ix.Eval(ir.MustParseExpr(term))
		v := &VarSpec{Tag: "para", Contains: []ContainsSpec{{Res: res, Required: true}}}
		got := evaluateLeaf(doc, v)
		// Reference: tag scan + Satisfies filter.
		var want []xmltree.NodeID
		for _, n := range doc.NodesWithTag("para") {
			if res.Satisfies(n) {
				want = append(want, n)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d candidates, want %d", term, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: candidate %d differs", term, i)
			}
		}
	}
}
