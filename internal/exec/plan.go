package exec

import (
	"context"
	"slices"
	"sync"

	"flexpath/internal/ir"
	"flexpath/internal/rank"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

// Rel is the required structural relationship between a plan variable and
// its anchor variable.
type Rel int8

const (
	// RelRoot marks the pattern root: candidates are all nodes with the
	// variable's tag.
	RelRoot Rel = iota
	// RelParent requires the binding to be a child of the anchor binding.
	RelParent
	// RelAncestor requires the binding to be a descendant of the anchor
	// binding (possibly a non-parent ancestor after subtree promotion).
	RelAncestor
	// RelOptional allows the variable to stay unbound (its connecting
	// predicates were all dropped, i.e. the node was deleted by
	// relaxation); when bound it must be a descendant of the anchor.
	RelOptional
)

// BonusPred is a dropped structural predicate that, when satisfied by a
// tuple's bindings, earns its penalty back. It is attached to whichever of
// its two variables joins later; Other indexes the earlier one.
type BonusPred struct {
	Other           int
	OtherIsAncestor bool
	Parent          bool // parent-child check (pc); otherwise ancestor (ad)
	Penalty         float64
	Bit             uint
}

// ContainsSpec is one contains predicate evaluated at a plan variable.
// Required specs filter candidates and contribute to the keyword score;
// optional specs (dropped by contains promotion or node deletion) earn
// their penalty back when still satisfied.
type ContainsSpec struct {
	Res      *ir.Result
	Required bool
	Weight   float64 // keyword-score weight (required specs)
	Penalty  float64 // structural regain (optional specs)
	Bit      uint
}

// StructCheck is a required structural predicate against an
// earlier-joined variable that is not implied by the candidate scope (it
// arises when a variable keeps ad predicates to several ancestors whose
// bindings need not nest, e.g. after a promotion higher up the pattern).
type StructCheck struct {
	Other  int  // plan-variable index of the ancestor side
	Parent bool // parent-child check; otherwise ancestor-descendant
}

// VarSpec is one variable of a scored join plan.
type VarSpec struct {
	VarID int
	Tag   string
	// Tags, when non-empty, lists alternative tags the variable matches
	// (the tag plus its subtypes under a type hierarchy); it overrides
	// Tag for candidate selection.
	Tags     []string
	Values   []tpq.ValuePred
	Anchor   int // plan-variable index of the anchor; -1 for the root
	Rel      Rel
	Checks   []StructCheck
	Bonus    []BonusPred
	Contains []ContainsSpec
}

// Plan is a left-deep scored join plan: the original query with a chosen
// set of relaxations encoded as weakened or optional predicates (§5.2.1,
// Figure 8). Variables are ordered required-first, ancestors before
// descendants, so anchors always precede their dependents.
type Plan struct {
	Doc  *xmltree.Document
	Vars []VarSpec
	// DistVar indexes the distinguished variable (always required).
	DistVar int
	// Base is the structural score of an exact answer; DroppedPenalty is
	// the sum of all encoded relaxations' penalties. A tuple's structural
	// score is Base - DroppedPenalty + (penalties earned back).
	Base           float64
	DroppedPenalty float64
	// NumBits is the number of distinct signature bits in use.
	NumBits int
	// FirstOptional is the index of the first optional variable; all
	// variables from it onward are optional.
	FirstOptional int

	// leafOnce/leafLists memoize the per-variable candidate lists. A plan
	// shared across searches by the plan-template cache pays leaf
	// evaluation once; later runs of the same plan reuse the lists. The
	// memo is sound because a plan is immutable once built, the document
	// is immutable, and Run never mutates the lists (joins only read
	// them). Plans must not be copied by value once used.
	leafOnce  sync.Once
	leafLists [][]xmltree.NodeID
}

// leaves returns the memoized per-variable candidate lists, evaluating
// them on first use (the evaluateLeaf of the paper's Hybrid pseudo-code:
// the sorted nodes satisfying each variable's tag, value and required
// contains predicates).
func (p *Plan) leaves() [][]xmltree.NodeID {
	p.leafOnce.Do(func() {
		ls := make([][]xmltree.NodeID, len(p.Vars))
		for vi := range p.Vars {
			ls[vi] = evaluateLeaf(p.Doc, &p.Vars[vi])
		}
		p.leafLists = ls
	})
	return p.leafLists
}

// MinSS returns the lowest structural score any answer of this plan can
// have (all encoded relaxations unsatisfied).
func (p *Plan) MinSS() float64 { return p.Base - p.DroppedPenalty }

// Mode selects the intermediate-result organization, the axis along which
// SSO and Hybrid differ (§5.2.2-5.2.3).
type Mode int8

const (
	// ModeSorted keeps the intermediate tuple list sorted by score after
	// every join, as SSO does; the sort cost is SSO's bottleneck.
	ModeSorted Mode = iota
	// ModeBuckets groups intermediate tuples into buckets keyed by the
	// set of satisfied predicates, as Hybrid does; no score sorting is
	// ever performed.
	ModeBuckets
	// ModeExhaustive disables threshold pruning (for exactness tests).
	ModeExhaustive
)

// PipelineStats reports work counters from a plan execution.
type PipelineStats struct {
	JoinSteps       int
	TuplesGenerated int
	TuplesPruned    int
	SortOps         int
	SortedTuples    int
	Buckets         int
}

// StepTrace records what one join step of a plan execution did, for
// EXPLAIN ANALYZE style introspection.
type StepTrace struct {
	// Var describes the variable joined at this step.
	Var string
	// Candidates is the size of the variable's leaf (candidate list).
	Candidates int
	// TuplesIn/TuplesOut are the intermediate sizes around the join.
	TuplesIn  int
	TuplesOut int
	// Pruned counts tuples dropped by the score threshold at this step.
	Pruned int
	// Sorted reports whether the step re-sorted intermediates (SSO);
	// Buckets is the number of distinct signatures grouped (Hybrid).
	Sorted  bool
	Buckets int
}

// Options controls plan execution.
type Options struct {
	// Ctx, when non-nil, is observed by the join loops: execution stops
	// early (returning a truncated, possibly nil answer set) once the
	// context is cancelled. Callers that pass a context must check its
	// Err after Run to distinguish cancellation from an empty result.
	Ctx context.Context
	// K enables threshold pruning against the K-th best completable
	// answer; 0 disables pruning.
	K      int
	Scheme rank.Scheme
	Mode   Mode
	// Parallel fans each join step out over this many goroutines
	// (<= 1 runs sequentially). Results are deterministic: worker output
	// is concatenated in input order.
	Parallel int
	// DisableBestOnly turns off the dominated-extension optimization for
	// optional variables (every match is materialized instead of only the
	// best per tuple). Answers are unchanged; this exists to measure the
	// optimization (ablation benchmarks).
	DisableBestOnly bool
	// Exclude drops candidates for the distinguished variable before they
	// join: DPO passes the answers of previous relaxation levels here so
	// that each level only computes new answers (the paper's §5.2.2
	// avoid-recomputation device, lifted to the distinguished node).
	Exclude map[xmltree.NodeID]bool
	// Stats, when non-nil, accumulates work counters.
	Stats *PipelineStats
	// Trace, when non-nil, receives one StepTrace per join step.
	Trace *[]StepTrace
	// Arena, when non-nil, supplies the scratch memory for intermediate
	// candidate lists, tuple buffers and binding blocks; Run only carves
	// from it and never resets it, so one arena can serve many Run calls
	// (the caller resets between relaxation levels / restarts). When nil,
	// Run borrows a pooled arena for the duration of the call.
	Arena *Arena
}

// Answer is a scored query answer: a binding of the distinguished variable
// together with the best score over all matches producing it, and the
// signature of satisfied optional predicates of that best match.
type Answer struct {
	Node  xmltree.NodeID
	Score rank.Score
	Sig   uint64
}

type tuple struct {
	bind     []xmltree.NodeID
	regained float64
	ks       float64
	sig      uint64
}

// Run executes the plan and returns the distinct distinguished-node
// answers, best score first under the chosen scheme.
func Run(p *Plan, opts Options) []Answer {
	doc := p.Doc
	nv := len(p.Vars)
	st := opts.Stats
	if st == nil {
		st = &PipelineStats{}
	}
	// Hot loops index the document columns directly instead of calling
	// accessors per node.
	ends, parentCol := doc.Ends(), doc.Parents()
	ar := opts.Arena
	if ar == nil {
		ar = GetArena()
		defer PutArena(ar)
	}

	// Cancellation: a nil Done channel makes the select below a cheap
	// no-op, so searches without a context pay (almost) nothing.
	var done <-chan struct{}
	if opts.Ctx != nil {
		done = opts.Ctx.Done()
	}
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	// Per-variable maximum future gains, for threshold pruning.
	ssGain := make([]float64, nv+1)
	ksGain := make([]float64, nv+1)
	for i := nv - 1; i >= 0; i-- {
		v := &p.Vars[i]
		ss, ks := 0.0, 0.0
		for _, b := range v.Bonus {
			ss += b.Penalty
		}
		for _, c := range v.Contains {
			if c.Required {
				ks += c.Weight
			} else {
				ss += c.Penalty
			}
		}
		ssGain[i] = ssGain[i+1] + ss
		ksGain[i] = ksGain[i+1] + ks
	}
	growth := func(nextVar int) float64 {
		switch opts.Scheme {
		case rank.StructureFirst:
			return ssGain[nextVar]
		case rank.KeywordFirst:
			return ksGain[nextVar]
		default:
			return ssGain[nextVar] + ksGain[nextVar]
		}
	}

	baseSS := p.Base - p.DroppedPenalty
	total := func(t *tuple) float64 {
		s := rank.Score{SS: baseSS + t.regained, KS: t.ks}
		return s.Total(opts.Scheme)
	}

	// An optional variable whose binding no later variable refers to only
	// contributes its own score gains; among the matches for one tuple,
	// every extension except the best-scoring one is dominated, so only
	// the best is kept. Variables referenced by later bonus predicates or
	// checks must keep all their bindings.
	refLater := make([]bool, nv)
	hasRelax := false
	for vi := range p.Vars {
		v := &p.Vars[vi]
		for _, b := range v.Bonus {
			refLater[b.Other] = true
			hasRelax = true
		}
		for _, c := range v.Checks {
			refLater[c.Other] = true
		}
		if v.Rel == RelOptional {
			hasRelax = true
		}
		for _, c := range v.Contains {
			if !c.Required {
				hasRelax = true
			}
		}
	}

	// The candidate lists are memoized on the plan (see Plan.leaves):
	// the first run of a template-cached plan evaluates them, later runs
	// start joining immediately.
	if cancelled() {
		return nil
	}
	leaves := p.leaves()

	tuples := []tuple{{bind: unboundBindings(nv)}}
	for vi := 0; vi < nv; vi++ {
		v := &p.Vars[vi]
		bestOnly := v.Rel == RelOptional && !refLater[vi] && !opts.DisableBestOnly
		st.JoinSteps++
		tuplesIn := len(tuples)
		excludeHere := vi == p.DistVar && len(opts.Exclude) > 0
		// joinChunk extends every tuple of chunk by the step variable,
		// appending to out. chunkAr, when non-nil, supplies the binding
		// blocks; parallel workers pass nil (an Arena is single-owner) and
		// fall back to private heap blocks.
		joinChunk := func(chunk, out []tuple, chunkAr *Arena) []tuple {
			// Bindings for this chunk's output tuples are carved out of
			// block allocations instead of one slice per tuple; binding
			// slices are immutable once created, so sharing blocks is
			// safe.
			var block []xmltree.NodeID
			newBind := func(src []xmltree.NodeID) []xmltree.NodeID {
				if len(block) < nv {
					if chunkAr != nil {
						block = chunkAr.Nodes(1024 * nv)
						block = block[:cap(block)]
					} else {
						block = make([]xmltree.NodeID, 1024*nv)
					}
				}
				b := block[:nv:nv]
				block = block[nv:]
				copy(b, src)
				return b
			}
			for ti := range chunk {
				// Join loops can run millions of iterations; polling the
				// context every 64 tuples bounds cancellation latency
				// without measurable per-tuple cost.
				if ti&63 == 0 && cancelled() {
					return nil
				}
				t := &chunk[ti]
				matched := false
				var best tuple
				// The parent filter of RelParent steps is applied inline
				// against the Parent column; no filtered candidate list is
				// ever materialized.
				cands, parentAnchor := candidatesFor(doc, v, leaves[vi], t)
				for _, m := range cands {
					if parentAnchor != xmltree.InvalidNode && parentCol[m] != parentAnchor {
						continue
					}
					if excludeHere && opts.Exclude[m] {
						continue
					}
					if !checksOK(parentCol, ends, v, t, m) {
						continue
					}
					nt := extend(parentCol, ends, v, t, vi, m, newBind)
					if bestOnly {
						if !matched || better(&nt, &best, opts.Scheme) {
							best = nt
						}
						matched = true
						continue
					}
					out = append(out, nt)
					matched = true
				}
				if bestOnly && matched {
					out = append(out, best)
				}
				if !matched && v.Rel == RelOptional {
					nt := tuple{bind: newBind(t.bind),
						regained: t.regained, ks: t.ks, sig: t.sig}
					out = append(out, nt)
				}
			}
			return out
		}
		var next []tuple
		if workers := opts.Parallel; workers > 1 && len(tuples) >= 4*workers {
			parts := make([][]tuple, workers)
			var wg sync.WaitGroup
			chunk := (len(tuples) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if lo >= len(tuples) {
					break
				}
				if hi > len(tuples) {
					hi = len(tuples)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					parts[w] = joinChunk(tuples[lo:hi], nil, nil)
				}(w, lo, hi)
			}
			wg.Wait()
			next = ar.tupleBuf()
			for _, p := range parts {
				next = append(next, p...)
			}
		} else {
			next = joinChunk(tuples, ar.tupleBuf(), ar)
		}
		if cancelled() {
			return nil
		}
		st.TuplesGenerated += len(next)
		// The step's input buffer is dead: recycle it for a later step's
		// output (the bootstrap one-tuple literal is recycled too, which
		// is harmless).
		ar.recycleTuples(tuples)
		tuples = next
		trace := StepTrace{
			Var:        "$" + itoa(v.VarID) + " " + v.Tag,
			Candidates: len(leaves[vi]),
			TuplesIn:   tuplesIn,
			TuplesOut:  len(tuples),
		}
		if len(tuples) == 0 {
			if opts.Trace != nil {
				*opts.Trace = append(*opts.Trace, trace)
			}
			return nil
		}

		// Threshold pruning: once every required variable is bound, each
		// tuple is guaranteed to complete into an answer, so the K-th best
		// current score over distinct distinguished nodes is a valid lower
		// bound for the final top-K cut-off.
		pruneActive := opts.K > 0 && opts.Mode != ModeExhaustive && vi+1 >= p.FirstOptional && vi+1 < nv
		if pruneActive {
			threshold, ok := kthBest(tuples, p.DistVar, opts.K, total)
			if ok {
				g := growth(vi + 1)
				kept := tuples[:0]
				for ti := range tuples {
					if total(&tuples[ti])+g < threshold {
						st.TuplesPruned++
						trace.Pruned++
						continue
					}
					kept = append(kept, tuples[ti])
				}
				tuples = kept
			}
		}

		// SSO keeps intermediate answers sorted on score whenever the
		// plan encodes relaxations (scores vary, so the K-th score must
		// be tracked for pruning, §5.2.2); this resort at every join is
		// the cost Hybrid's buckets avoid. A plan with no relaxations
		// encoded has nothing to sort or group for either algorithm.
		organize := opts.K > 0 && hasRelax && vi+1 < nv
		switch {
		case opts.Mode == ModeSorted && organize:
			keys, idx := ar.sortScratch(len(tuples))
			for i := range tuples {
				keys[i] = total(&tuples[i])
				idx[i] = i
			}
			// Score-descending; ties break on input position so the resort
			// is deterministic (sort.Slice here was unstable).
			slices.SortFunc(idx, func(a, b int) int {
				switch {
				case keys[a] > keys[b]:
					return -1
				case keys[a] < keys[b]:
					return 1
				default:
					return a - b
				}
			})
			sorted := ar.tupleBuf()
			if cap(sorted) < len(tuples) {
				ar.recycleTuples(sorted)
				sorted = make([]tuple, 0, len(tuples))
			}
			sorted = sorted[:len(tuples)]
			for pos, i := range idx {
				sorted[pos] = tuples[i]
			}
			ar.recycleTuples(tuples)
			tuples = sorted
			st.SortOps++
			st.SortedTuples += len(tuples)
			trace.Sorted = true
		case opts.Mode == ModeBuckets && organize:
			// Hybrid groups tuples into buckets keyed by their
			// satisfied-predicate signature. Each tuple already carries
			// its signature, and a bucket's structural score is a pure
			// function of the signature, so the buckets are implicit: no
			// physical reordering and no comparison sort ever happens —
			// the organization cost is one counting pass (§5.2.3).
			sigIdx := make(map[uint64]struct{}, 16)
			for ti := range tuples {
				sigIdx[tuples[ti].sig] = struct{}{}
			}
			st.Buckets += len(sigIdx)
			trace.Buckets = len(sigIdx)
		}
		if opts.Trace != nil {
			trace.TuplesOut = len(tuples)
			*opts.Trace = append(*opts.Trace, trace)
		}
	}

	// Aggregate per distinguished node, best score wins.
	best := make(map[xmltree.NodeID]Answer, len(tuples))
	for ti := range tuples {
		t := &tuples[ti]
		n := t.bind[p.DistVar]
		sc := rank.Score{SS: baseSS + t.regained, KS: t.ks}
		if prev, ok := best[n]; !ok || sc.Compare(prev.Score, opts.Scheme) > 0 {
			best[n] = Answer{Node: n, Score: sc, Sig: t.sig}
		}
	}
	out := make([]Answer, 0, len(best))
	for _, a := range best {
		out = append(out, a)
	}
	slices.SortFunc(out, func(x, y Answer) int {
		if c := x.Score.Compare(y.Score, opts.Scheme); c != 0 {
			return -c
		}
		return int(x.Node) - int(y.Node)
	})
	return out
}

func unboundBindings(n int) []xmltree.NodeID {
	b := make([]xmltree.NodeID, n)
	for i := range b {
		b[i] = xmltree.InvalidNode
	}
	return b
}

// evaluateLeaf computes the sorted candidate list for one plan variable:
// nodes with one of its tags that satisfy its value predicates and
// required contains predicates.
//
// When the variable carries a required contains predicate whose witness
// set is much smaller than the tag occurrence list, candidates are built
// by walking up from the inverted-index witnesses instead of scanning the
// tag list — the "tighter integration of structure and keyword indices"
// the paper's conclusion names as future work. Both paths produce the
// same sorted list.
func evaluateLeaf(doc *xmltree.Document, v *VarSpec) []xmltree.NodeID {
	var base []xmltree.NodeID
	if len(v.Tags) <= 1 {
		tag := v.Tag
		if len(v.Tags) == 1 {
			tag = v.Tags[0]
		}
		base = doc.NodesWithTag(tag)
	} else {
		lists := make([][]xmltree.NodeID, 0, len(v.Tags))
		for _, t := range v.Tags {
			if l := doc.NodesWithTag(t); len(l) > 0 {
				lists = append(lists, l)
			}
		}
		base = mergeSorted(lists)
	}
	var smallest *ir.Result
	for i := range v.Contains {
		if c := &v.Contains[i]; c.Required {
			if smallest == nil || c.Res.Len() < smallest.Len() {
				smallest = c.Res
			}
		}
	}
	// Witness-first leaf construction: profitable when walking every
	// witness ancestor chain touches fewer nodes than scanning the tag
	// list (the factor 16 over-approximates typical document depth).
	if smallest != nil && smallest.Len()*16 < len(base) {
		base = contextsOf(doc, smallest, v)
	}
	needFilter := len(v.Values) > 0
	for _, c := range v.Contains {
		if c.Required {
			needFilter = true
		}
	}
	if !needFilter {
		return base
	}
	out := make([]xmltree.NodeID, 0, len(base))
candidates:
	for _, m := range base {
		for _, vp := range v.Values {
			if !EvalValuePred(doc, m, vp) {
				continue candidates
			}
		}
		for _, c := range v.Contains {
			if c.Required && !c.Res.Satisfies(m) {
				continue candidates
			}
		}
		out = append(out, m)
	}
	return out
}

// mergeSorted merges sorted NodeID lists into one sorted list.
func mergeSorted(lists [][]xmltree.NodeID) []xmltree.NodeID {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]xmltree.NodeID, 0, total)
	idx := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best == -1 || l[idx[i]] < lists[best][idx[best]] {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
}

// candidatesFor returns the slice of the variable's leaf that can bind it
// given the tuple's anchor binding, plus a parent filter: when
// parentAnchor is not InvalidNode the caller must additionally require
// Parent(m) == parentAnchor. Returning the filter instead of a filtered
// copy keeps this allocation-free — the join loop applies it inline
// against the Parent column.
func candidatesFor(doc *xmltree.Document, v *VarSpec, leaf []xmltree.NodeID, t *tuple) (cands []xmltree.NodeID, parentAnchor xmltree.NodeID) {
	switch v.Rel {
	case RelRoot:
		return leaf, xmltree.InvalidNode
	case RelParent:
		anchor := t.bind[v.Anchor]
		return DescendantsInRange(doc, leaf, anchor), anchor
	default: // RelAncestor, RelOptional
		return DescendantsInRange(doc, leaf, t.bind[v.Anchor]), xmltree.InvalidNode
	}
}

// better orders two candidate extensions of the same tuple: higher
// (regained, ks) under the scheme's primary component first.
func better(a, b *tuple, scheme rank.Scheme) bool {
	sa := rank.Score{SS: a.regained, KS: a.ks}
	sb := rank.Score{SS: b.regained, KS: b.ks}
	return sa.Compare(sb, scheme) > 0
}

// checksOK evaluates the variable's structural checks against the columns
// directly (a < n && n <= ends[a] is the interval-containment test).
func checksOK(parents, ends []xmltree.NodeID, v *VarSpec, t *tuple, m xmltree.NodeID) bool {
	for _, c := range v.Checks {
		o := t.bind[c.Other]
		if o == xmltree.InvalidNode {
			return false
		}
		if c.Parent {
			if parents[m] != o {
				return false
			}
		} else if !(o < m && m <= ends[o]) {
			return false
		}
	}
	return true
}

func extend(parents, ends []xmltree.NodeID, v *VarSpec, t *tuple, vi int, m xmltree.NodeID, newBind func([]xmltree.NodeID) []xmltree.NodeID) tuple {
	bind := newBind(t.bind)
	bind[vi] = m
	nt := tuple{bind: bind, regained: t.regained, ks: t.ks, sig: t.sig}
	for _, b := range v.Bonus {
		o := t.bind[b.Other]
		if o == xmltree.InvalidNode {
			continue
		}
		anc, desc := m, o
		if b.OtherIsAncestor {
			anc, desc = o, m
		}
		var ok bool
		if b.Parent {
			ok = parents[desc] == anc
		} else {
			ok = anc < desc && desc <= ends[anc]
		}
		if ok {
			nt.regained += b.Penalty
			nt.sig |= 1 << b.Bit
		}
	}
	for _, c := range v.Contains {
		if c.Required {
			nt.ks += c.Weight * c.Res.ScoreWithin(m)
		} else if c.Res.Satisfies(m) {
			nt.regained += c.Penalty
			nt.sig |= 1 << c.Bit
		}
	}
	return nt
}

// kthBest returns the K-th best current total over distinct distinguished
// bindings, or ok=false when fewer than K distinct bindings exist.
func kthBest(tuples []tuple, distVar, k int, total func(*tuple) float64) (float64, bool) {
	bestPer := make(map[xmltree.NodeID]float64, len(tuples))
	for ti := range tuples {
		t := &tuples[ti]
		n := t.bind[distVar]
		if n == xmltree.InvalidNode {
			continue
		}
		v := total(t)
		if prev, ok := bestPer[n]; !ok || v > prev {
			bestPer[n] = v
		}
	}
	if len(bestPer) < k {
		return 0, false
	}
	vals := make([]float64, 0, len(bestPer))
	for _, v := range bestPer {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals[len(vals)-k], true
}

// contextsOf collects the distinct ancestors-or-self of the result's
// witnesses that carry one of the variable's tags, sorted in document
// order.
func contextsOf(doc *xmltree.Document, r *ir.Result, v *VarSpec) []xmltree.NodeID {
	want := map[xmltree.TagID]bool{}
	if len(v.Tags) == 0 {
		if id := doc.TagByName(v.Tag); id != xmltree.InvalidTag {
			want[id] = true
		}
	} else {
		for _, t := range v.Tags {
			if id := doc.TagByName(t); id != xmltree.InvalidTag {
				want[id] = true
			}
		}
	}
	if len(want) == 0 {
		return nil
	}
	scratch := acquireScratch(doc.Len())
	var out []xmltree.NodeID
	for wi := 0; wi < r.Len(); wi++ {
		for a := r.Node(wi); a != xmltree.InvalidNode; a = doc.Parent(a) {
			if scratch.epoch[a] == scratch.cur {
				break
			}
			scratch.epoch[a] = scratch.cur
			if want[doc.Tag(a)] {
				out = append(out, a)
			}
		}
	}
	walkPool.Put(scratch)
	slices.Sort(out)
	return out
}

// itoa is strconv.Itoa without the import churn in this hot file.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
