package exec

import (
	"math/rand"
	"testing"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

func benchTree(b *testing.B) *xmltree.Document {
	b.Helper()
	bld := xmltree.NewBuilder()
	r := rand.New(rand.NewSource(7))
	bld.Open("root")
	for i := 0; i < 3000; i++ {
		bld.Open("a")
		for j := 0; j < 1+r.Intn(3); j++ {
			bld.Open("b")
			if r.Intn(2) == 0 {
				bld.Open("c")
				bld.Text("gold words")
				bld.Close()
			}
			bld.Close()
		}
		bld.Close()
	}
	bld.Close()
	d, err := bld.Document()
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkSemiJoinHasDescendant(b *testing.B) {
	d := benchTree(b)
	outer := d.NodesWithTag("a")
	inner := d.NodesWithTag("c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiJoinHasDescendant(d, outer, inner)
	}
}

func BenchmarkSemiJoinHasChild(b *testing.B) {
	d := benchTree(b)
	outer := d.NodesWithTag("a")
	inner := d.NodesWithTag("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiJoinHasChild(d, outer, inner)
	}
}

func BenchmarkEvaluateExact(b *testing.B) {
	d := benchTree(b)
	ev := NewEvaluator(d, ir.NewIndex(d))
	q := tpq.MustParse(`//a[./b[./c[.contains("gold")]]]`)
	ev.Evaluate(q) // warm the IR cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Evaluate(q)
	}
}

func BenchmarkEvaluateIRFirst(b *testing.B) {
	d := benchTree(b)
	ev := NewEvaluator(d, ir.NewIndex(d))
	q := tpq.MustParse(`//a[./b[./c[.contains("gold")]]]`)
	ev.EvaluateIRFirst(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateIRFirst(q)
	}
}
