package exec

import (
	"math/rand"
	"testing"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

func benchTree(b *testing.B) *xmltree.Document {
	b.Helper()
	bld := xmltree.NewBuilder()
	r := rand.New(rand.NewSource(7))
	bld.Open("root")
	for i := 0; i < 3000; i++ {
		bld.Open("a")
		for j := 0; j < 1+r.Intn(3); j++ {
			bld.Open("b")
			if r.Intn(2) == 0 {
				bld.Open("c")
				bld.Text("gold words")
				bld.Close()
			}
			bld.Close()
		}
		bld.Close()
	}
	bld.Close()
	d, err := bld.Document()
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkSemiJoinHasDescendant(b *testing.B) {
	d := benchTree(b)
	outer := d.NodesWithTag("a")
	inner := d.NodesWithTag("c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiJoinHasDescendant(d, outer, inner)
	}
}

func BenchmarkSemiJoinHasChild(b *testing.B) {
	d := benchTree(b)
	outer := d.NodesWithTag("a")
	inner := d.NodesWithTag("b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiJoinHasChild(d, outer, inner)
	}
}

func BenchmarkEvaluateExact(b *testing.B) {
	d := benchTree(b)
	ev := NewEvaluator(d, ir.NewIndex(d))
	q := tpq.MustParse(`//a[./b[./c[.contains("gold")]]]`)
	ev.Evaluate(q) // warm the IR cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Evaluate(q)
	}
}

func BenchmarkEvaluateIRFirst(b *testing.B) {
	d := benchTree(b)
	ev := NewEvaluator(d, ir.NewIndex(d))
	q := tpq.MustParse(`//a[./b[./c[.contains("gold")]]]`)
	ev.EvaluateIRFirst(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateIRFirst(q)
	}
}

// benchKernels compares each batched kernel (wrapper and arena-Into form)
// against its retained scalar oracle on one (outer, inner) pair. Run with
// -benchmem: the into/ variants should report 0 allocs/op once the arena
// chunk is warm.
func benchKernels(b *testing.B, d *xmltree.Document, outer, inner []xmltree.NodeID) {
	a := NewArena()
	for _, kc := range kernelCases {
		b.Run("scalar/"+kc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kc.scalar(d, outer, inner)
			}
		})
		b.Run("batch/"+kc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kc.batch(d, outer, inner)
			}
		})
		b.Run("into/"+kc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Reset()
				kc.into(a, a.Nodes(len(outer)), d, outer, inner)
			}
		})
	}
}

func BenchmarkJoinKernels(b *testing.B) {
	d := benchTree(b)
	benchKernels(b, d, d.NodesWithTag("a"), d.NodesWithTag("b"))
}

// BenchmarkJoinKernelsSkewed joins a short outer list against a long
// inner list — the regime where galloping's logarithmic probes beat both
// the scalar per-element binary search and a plain linear merge.
func BenchmarkJoinKernelsSkewed(b *testing.B) {
	d := benchTree(b)
	all := make([]xmltree.NodeID, d.Len())
	for i := range all {
		all[i] = xmltree.NodeID(i)
	}
	outer := d.NodesWithTag("a")
	short := outer[:len(outer)/64]
	benchKernels(b, d, short, all)
}

func BenchmarkDescendantsInRange(b *testing.B) {
	d := benchTree(b)
	list := d.NodesWithTag("b")
	anchors := d.NodesWithTag("a")
	// narrow: each anchor's subtree holds a handful of list nodes — the
	// regime where the old linear upper-bound scan was already cheap.
	b.Run("narrow/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scalarDescendantsInRange(d, list, anchors[i%len(anchors)])
		}
	})
	b.Run("narrow/gallop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DescendantsInRange(d, list, anchors[i%len(anchors)])
		}
	})
	// wide: the anchor is the document root, so the linear scan walks the
	// entire list while the galloped upper bound stays logarithmic.
	root := xmltree.NodeID(0)
	b.Run("wide/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scalarDescendantsInRange(d, list, root)
		}
	})
	b.Run("wide/gallop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DescendantsInRange(d, list, root)
		}
	})
}
