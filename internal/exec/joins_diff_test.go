package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmark"
	"flexpath/internal/xmltree"
)

// This file is the differential suite for the columnar block kernels: on
// every input, each batched kernel (both the allocating wrapper and the
// arena-backed Into form) must return output byte-identical to the
// retained scalar oracle in joins_scalar.go, and arena reuse must never
// alias or corrupt results that were copied out before a Reset.

type kernelCase struct {
	name   string
	scalar func(*xmltree.Document, []xmltree.NodeID, []xmltree.NodeID) []xmltree.NodeID
	batch  func(*xmltree.Document, []xmltree.NodeID, []xmltree.NodeID) []xmltree.NodeID
	into   func(*Arena, []xmltree.NodeID, *xmltree.Document, []xmltree.NodeID, []xmltree.NodeID) []xmltree.NodeID
}

var kernelCases = []kernelCase{
	{"HasDescendant", scalarSemiJoinHasDescendant, SemiJoinHasDescendant, SemiJoinHasDescendantInto},
	{"HasChild", scalarSemiJoinHasChild, SemiJoinHasChild, SemiJoinHasChildInto},
	{"DescendantOf", scalarSemiJoinDescendantOf, SemiJoinDescendantOf, SemiJoinDescendantOfInto},
	{"ChildOf", scalarSemiJoinChildOf, SemiJoinChildOf, SemiJoinChildOfInto},
}

func sameNodes(a, b []xmltree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkKernels runs every kernel in wrapper and arena form against its
// scalar oracle on one (outer, inner) pair. Returns false on divergence.
func checkKernels(t testing.TB, d *xmltree.Document, a *Arena, outer, inner []xmltree.NodeID) bool {
	ok := true
	for _, kc := range kernelCases {
		want := kc.scalar(d, outer, inner)
		if got := kc.batch(d, outer, inner); !sameNodes(got, want) {
			t.Logf("%s wrapper: got %v want %v (outer=%v inner=%v)", kc.name, got, want, outer, inner)
			ok = false
		}
		if got := kc.into(a, a.Nodes(len(outer)), d, outer, inner); !sameNodes(got, want) {
			t.Logf("%s into: got %v want %v (outer=%v inner=%v)", kc.name, got, want, outer, inner)
			ok = false
		}
	}
	for _, n := range outer {
		want := scalarDescendantsInRange(d, inner, n)
		if got := DescendantsInRange(d, inner, n); !sameNodes(got, want) {
			t.Logf("DescendantsInRange(%d): got %v want %v (list=%v)", n, got, want, inner)
			ok = false
		}
	}
	return ok
}

func TestDifferentialKernelsRandom(t *testing.T) {
	a := NewArena()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		a.Reset()
		outer := randomSortedNodes(r, d)
		inner := randomSortedNodes(r, d)
		return checkKernels(t, d, a, outer, inner)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialKernelsXMark replays the differential check over real
// tag lists of an XMark document — the exact list shapes (long runs of
// siblings, recursive parlists) the galloping cursors exploit.
func TestDifferentialKernelsXMark(t *testing.T) {
	d, err := xmark.Build(xmark.Config{TargetBytes: 96 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tags := []string{"item", "description", "parlist", "listitem", "text",
		"keyword", "person", "name", "open_auction", "annotation"}
	lists := make([][]xmltree.NodeID, 0, len(tags))
	for _, tag := range tags {
		if l := d.NodesWithTag(tag); len(l) > 0 {
			lists = append(lists, l)
		}
	}
	if len(lists) < 4 {
		t.Fatalf("xmark doc unexpectedly sparse: %d non-empty tag lists", len(lists))
	}
	a := GetArena()
	defer PutArena(a)
	for i, outer := range lists {
		for j, inner := range lists {
			a.Reset()
			if !checkKernels(t, d, a, outer, inner) {
				t.Fatalf("kernel divergence on xmark tag lists %d x %d", i, j)
			}
		}
	}
}

// FuzzDifferentialJoins drives the kernels with fuzzer-chosen documents
// and membership masks. The masks select arbitrary sorted sublists, so
// the fuzzer explores cursor patterns (dense runs, single elements, empty
// lists) the random tests may miss.
func FuzzDifferentialJoins(f *testing.F) {
	f.Add(int64(1), uint64(0x5555), uint64(0xaaaa))
	f.Add(int64(42), uint64(0), uint64(^uint64(0)))
	f.Add(int64(-7), uint64(1), uint64(1<<63))
	a := NewArena()
	f.Fuzz(func(t *testing.T, seed int64, outerMask, innerMask uint64) {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		a.Reset()
		pick := func(mask uint64) []xmltree.NodeID {
			var out []xmltree.NodeID
			for n := 0; n < d.Len(); n++ {
				if mask&(1<<(n%64)) != 0 {
					out = append(out, xmltree.NodeID(n))
				}
			}
			return out
		}
		if !checkKernels(t, d, a, pick(outerMask), pick(innerMask)) {
			t.Fatal("batched kernel diverged from scalar oracle")
		}
	})
}

// TestArenaResultsNoAliasing: results computed through an arena and then
// copied out must survive later carving, a Reset, and a full re-run on
// the recycled arena. A violation means a kernel handed out memory that a
// later carve re-used.
func TestArenaResultsNoAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var d *xmltree.Document
	var q *tpq.Query
	var ix *ir.Index
	for {
		d = randomDoc(r)
		ix = ir.NewIndex(d)
		q = tpq.MustParse(`//a[./b and .//c]`)
		if NewEvaluator(d, ix).Evaluate(q) != nil {
			break
		}
	}
	ev := NewEvaluator(d, ix)

	a := GetArena()
	defer PutArena(a)
	first := ev.EvaluateFullArena(q, a)
	if first == nil {
		t.Fatal("expected matches")
	}
	snapshot := make([][]xmltree.NodeID, len(first))
	for i, l := range first {
		snapshot[i] = append([]xmltree.NodeID(nil), l...)
	}
	// More work on the same arena (no Reset) must not disturb the lists
	// already handed out.
	for i := 0; i < 10; i++ {
		ev.EvaluateFullArena(q, a)
	}
	for i := range first {
		if !sameNodes(first[i], snapshot[i]) {
			t.Fatalf("list %d changed under later carving: %v vs %v", i, first[i], snapshot[i])
		}
	}
	// After Reset the arena memory is recycled; a fresh evaluation must
	// reproduce the snapshot exactly on the recycled chunks.
	a.Reset()
	again := ev.EvaluateFullArena(q, a)
	for i := range again {
		if !sameNodes(again[i], snapshot[i]) {
			t.Fatalf("list %d differs after arena recycle: %v vs %v", i, again[i], snapshot[i])
		}
	}
	// And the arena path must agree with the plain-allocation path.
	plain := ev.EvaluateFull(q)
	for i := range plain {
		if !sameNodes(plain[i], again[i]) {
			t.Fatalf("arena vs plain mismatch at %d: %v vs %v", i, again[i], plain[i])
		}
	}
}

// TestRunArenaByteIdentical: Run with a caller-supplied arena — including
// a reused, reset one — returns exactly the answers of an arena-less run,
// for every mode. Run under -race this also exercises the pooled-arena
// path against parallel workers.
func TestRunArenaByteIdentical(t *testing.T) {
	plan, _ := buildParallelPlan(t)
	for _, mode := range []Mode{ModeExhaustive, ModeSorted, ModeBuckets} {
		want := Run(plan, Options{K: 10, Mode: mode})
		a := GetArena()
		for i := 0; i < 3; i++ {
			a.Reset()
			got := Run(plan, Options{K: 10, Mode: mode, Arena: a})
			if len(got) != len(want) {
				t.Fatalf("mode %v run %d: %d answers vs %d", mode, i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("mode %v run %d answer %d: %+v vs %+v", mode, i, j, got[j], want[j])
				}
			}
			// Parallel workers must not touch the shared arena.
			par := Run(plan, Options{K: 10, Mode: mode, Arena: a, Parallel: 4})
			for j := range want {
				if par[j] != want[j] {
					t.Fatalf("mode %v parallel answer %d: %+v vs %+v", mode, j, par[j], want[j])
				}
			}
		}
		PutArena(a)
	}
}

// TestArenaConcurrentSearches runs independent arena-backed evaluations
// concurrently (each goroutine with its own pooled arena); meaningful
// under -race, where any cross-arena sharing shows up as a data race.
func TestArenaConcurrentSearches(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := randomDoc(r)
	ix := ir.NewIndex(d)
	ev := NewEvaluator(d, ix)
	q := tpq.MustParse(`//a[./b]`)
	want := ev.Evaluate(q)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				a := GetArena()
				full := ev.EvaluateFullArena(q, a)
				var got []xmltree.NodeID
				if full != nil {
					got = full[q.Dist]
				}
				if !sameNodes(got, want) {
					PutArena(a)
					done <- &mismatchError{}
					return
				}
				PutArena(a)
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal("concurrent arena evaluation diverged")
		}
	}
}

type mismatchError struct{}

func (*mismatchError) Error() string { return "mismatch" }
