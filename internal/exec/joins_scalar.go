package exec

import (
	"sort"

	"flexpath/internal/xmltree"
)

// This file retains the pre-columnar scalar join kernels, verbatim, as
// differential-test oracles for the block kernels in joins.go: every
// batched kernel must return byte-identical output to its scalar twin on
// any pair of sorted input lists. They process one node at a time through
// Document accessor calls and allocate per call — exactly the costs the
// block kernels remove — and are referenced only by tests and benchmarks.

// scalarSemiJoinHasDescendant is the retained scalar oracle for
// SemiJoinHasDescendant.
func scalarSemiJoinHasDescendant(doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	if len(outer) == 0 || len(inner) == 0 {
		return nil
	}
	out := outer[:0:0]
	for _, a := range outer {
		i := sort.Search(len(inner), func(i int) bool { return inner[i] > a })
		if i < len(inner) && inner[i] <= doc.End(a) {
			out = append(out, a)
		}
	}
	return out
}

// scalarSemiJoinHasChild is the retained scalar oracle for
// SemiJoinHasChild.
func scalarSemiJoinHasChild(doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	if len(outer) == 0 || len(inner) == 0 {
		return nil
	}
	// Collect the distinct parents of inner, then merge with outer.
	parents := make([]xmltree.NodeID, 0, len(inner))
	for _, d := range inner {
		if p := doc.Parent(d); p != xmltree.InvalidNode {
			parents = append(parents, p)
		}
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	out := outer[:0:0]
	j := 0
	for _, a := range outer {
		for j < len(parents) && parents[j] < a {
			j++
		}
		if j < len(parents) && parents[j] == a {
			out = append(out, a)
		}
	}
	return out
}

// scalarSemiJoinDescendantOf is the retained scalar oracle for
// SemiJoinDescendantOf.
func scalarSemiJoinDescendantOf(doc *xmltree.Document, nodes, ancestors []xmltree.NodeID) []xmltree.NodeID {
	if len(nodes) == 0 || len(ancestors) == 0 {
		return nil
	}
	maxEnd := make([]xmltree.NodeID, len(ancestors))
	cur := xmltree.NodeID(-1)
	for i, a := range ancestors {
		if e := doc.End(a); e > cur {
			cur = e
		}
		maxEnd[i] = cur
	}
	out := nodes[:0:0]
	for _, n := range nodes {
		i := sort.Search(len(ancestors), func(i int) bool { return ancestors[i] >= n })
		if i > 0 && maxEnd[i-1] >= n {
			out = append(out, n)
		}
	}
	return out
}

// scalarSemiJoinChildOf is the retained scalar oracle for SemiJoinChildOf.
func scalarSemiJoinChildOf(doc *xmltree.Document, nodes, parents []xmltree.NodeID) []xmltree.NodeID {
	if len(nodes) == 0 || len(parents) == 0 {
		return nil
	}
	out := nodes[:0:0]
	for _, n := range nodes {
		p := doc.Parent(n)
		if p == xmltree.InvalidNode {
			continue
		}
		i := sort.Search(len(parents), func(i int) bool { return parents[i] >= p })
		if i < len(parents) && parents[i] == p {
			out = append(out, n)
		}
	}
	return out
}

// scalarDescendantsInRange is the retained scalar oracle for
// DescendantsInRange (linear upper-bound scan).
func scalarDescendantsInRange(doc *xmltree.Document, nodes []xmltree.NodeID, a xmltree.NodeID) []xmltree.NodeID {
	lo := sort.Search(len(nodes), func(i int) bool { return nodes[i] > a })
	end := doc.End(a)
	hi := lo
	for hi < len(nodes) && nodes[hi] <= end {
		hi++
	}
	return nodes[lo:hi]
}
