package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

func parseDoc(src string) (*xmltree.Document, error) {
	return xmltree.ParseString(src)
}

// TestIRFirstMatchesStructureFirst: both strategies compute identical
// answer sets on random documents and queries.
func TestIRFirstMatchesStructureFirst(t *testing.T) {
	queries := []string{
		`//a[./b[.contains("alpha")]]`,
		`//a[.//c[.contains("alpha" and "beta")] and ./b]`,
		`//a[.contains("gamma") and ./b[.contains("beta")]]`,
		`//a[./b[.contains("alpha") and @v < 3]]`,
		`//a[./b]`, // no contains: falls back to tag scan
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		ix := ir.NewIndex(d)
		ev := NewEvaluator(d, ix)
		for _, src := range queries {
			q := tpq.MustParse(src)
			a := ev.Evaluate(q)
			b := ev.EvaluateIRFirst(q)
			if len(a) != len(b) {
				t.Logf("seed %d %s: %d vs %d answers", seed, src, len(a), len(b))
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					t.Logf("seed %d %s: answer %d differs", seed, src, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestIRFirstHierarchy: the IR-first path honors type hierarchies.
func TestIRFirstHierarchy(t *testing.T) {
	d, err := parseDoc(`<r>
	  <pub><sec>gold here</sec></pub>
	  <article><sec>gold too</sec></article>
	</r>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := ir.NewIndex(d)
	h := tpq.NewHierarchy(map[string]string{"article": "pub"})
	ev := NewEvaluator(d, ix).WithHierarchy(h)
	q := tpq.MustParse(`//pub[./sec[.contains("gold")]]`)
	a := ev.Evaluate(q)
	b := ev.EvaluateIRFirst(q)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("hierarchy answers: structure-first %d, ir-first %d, want 2", len(a), len(b))
	}
}
