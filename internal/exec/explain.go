package exec

import (
	"fmt"
	"strings"
)

// Explain renders the plan as an indented description of its join
// pipeline, in the spirit of the paper's Figure 8 join plans: one line per
// variable with its scope predicate, required checks, bonus (relaxed)
// predicates and contains predicates.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %d vars (%d required), base=%.3f dropped=%.3f\n",
		len(p.Vars), p.FirstOptional, p.Base, p.DroppedPenalty)
	for i := range p.Vars {
		v := &p.Vars[i]
		marker := " "
		if i == p.DistVar {
			marker = "*"
		}
		fmt.Fprintf(&sb, "%s %2d. $%d %s", marker, i, v.VarID, v.Tag)
		if len(v.Tags) > 1 {
			fmt.Fprintf(&sb, " (or subtypes: %s)", strings.Join(v.Tags[1:], ", "))
		}
		switch v.Rel {
		case RelRoot:
			sb.WriteString("  [root scan]")
		case RelParent:
			fmt.Fprintf(&sb, "  child-of #%d ($%d)", v.Anchor, p.Vars[v.Anchor].VarID)
		case RelAncestor:
			fmt.Fprintf(&sb, "  descendant-of #%d ($%d)", v.Anchor, p.Vars[v.Anchor].VarID)
		case RelOptional:
			fmt.Fprintf(&sb, "  OPTIONAL under #%d ($%d)", v.Anchor, p.Vars[v.Anchor].VarID)
		}
		sb.WriteByte('\n')
		for _, vp := range v.Values {
			fmt.Fprintf(&sb, "        value: %s\n", vp.String())
		}
		for _, c := range v.Checks {
			rel := "descendant-of"
			if c.Parent {
				rel = "child-of"
			}
			fmt.Fprintf(&sb, "        check: %s #%d ($%d)\n", rel, c.Other, p.Vars[c.Other].VarID)
		}
		for _, b := range v.Bonus {
			rel := "ad"
			if b.Parent {
				rel = "pc"
			}
			side := "ancestor"
			if !b.OtherIsAncestor {
				side = "descendant"
			}
			fmt.Fprintf(&sb, "        bonus: %s with #%d ($%d, %s side) regain %.4f\n",
				rel, b.Other, p.Vars[b.Other].VarID, side, b.Penalty)
		}
		for _, c := range v.Contains {
			if c.Required {
				fmt.Fprintf(&sb, "        contains (required, ks weight %.2f)\n", c.Weight)
			} else {
				fmt.Fprintf(&sb, "        contains (optional, regain %.4f)\n", c.Penalty)
			}
		}
	}
	return sb.String()
}
