package exec

import (
	"strconv"
	"strings"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

// Evaluator evaluates exact tree pattern queries against one document.
type Evaluator struct {
	doc *xmltree.Document
	ix  *ir.Index
	h   *tpq.Hierarchy
}

// NewEvaluator builds an exact evaluator over a document and its full-text
// index.
func NewEvaluator(doc *xmltree.Document, ix *ir.Index) *Evaluator {
	return &Evaluator{doc: doc, ix: ix}
}

// WithHierarchy returns an evaluator that interprets tag constraints
// against the given type hierarchy: a node constrained to tag t matches
// elements carrying t or any of its subtypes (§3.4 of the paper).
func (ev *Evaluator) WithHierarchy(h *tpq.Hierarchy) *Evaluator {
	out := *ev
	out.h = h
	return &out
}

// Doc returns the evaluator's document.
func (ev *Evaluator) Doc() *xmltree.Document { return ev.doc }

// Index returns the evaluator's full-text index.
func (ev *Evaluator) Index() *ir.Index { return ev.ix }

// Candidates returns the document nodes that satisfy query node i's local
// predicates: tag, value-based predicates, and contains predicates. The
// result is in document order and must not be modified unless it was
// filtered (in which case it is a fresh slice).
func (ev *Evaluator) Candidates(q *tpq.Query, i int) []xmltree.NodeID {
	return ev.candidatesArena(q, i, nil)
}

// candidatesArena is Candidates with the filtered list and the
// contains-result scratch carved from an arena (nil falls back to plain
// allocation). Filtered lists carved from an arena are only valid until
// its next Reset.
func (ev *Evaluator) candidatesArena(q *tpq.Query, i int, a *Arena) []xmltree.NodeID {
	n := &q.Nodes[i]
	var base []xmltree.NodeID
	if ev.h == nil {
		base = ev.doc.NodesWithTag(n.Tag)
	} else {
		var lists [][]xmltree.NodeID
		for _, t := range ev.h.Subtypes(n.Tag) {
			if l := ev.doc.NodesWithTag(t); len(l) > 0 {
				lists = append(lists, l)
			}
		}
		base = mergeSorted(lists)
	}
	if len(n.Values) == 0 && len(n.Contains) == 0 {
		return base
	}
	results := a.results()
	for _, e := range n.Contains {
		results = append(results, ev.ix.Eval(e))
	}
	out := a.Nodes(len(base))
candidates:
	for _, c := range base {
		for _, v := range n.Values {
			if !EvalValuePred(ev.doc, c, v) {
				continue candidates
			}
		}
		for _, r := range results {
			if !r.Satisfies(c) {
				continue candidates
			}
		}
		out = append(out, c)
	}
	a.keepResults(results)
	return out
}

// Evaluate returns the exact answers of q: the matches of the
// distinguished node, in document order.
func (ev *Evaluator) Evaluate(q *tpq.Query) []xmltree.NodeID {
	ok := ev.EvaluateFull(q)
	if ok == nil {
		return nil
	}
	return ok[q.Dist]
}

// EvaluateFull evaluates q and returns, for every query node, the data
// nodes that participate in at least one full match (answers are the
// distinguished node's list). It returns nil when the query has no match.
// It runs the classical two-pass semijoin evaluation: a bottom-up pass
// computing, for each query node, the data nodes whose subtree matches
// the sub-pattern, then a top-down pass keeping only nodes reachable from
// a match of the parent.
func (ev *Evaluator) EvaluateFull(q *tpq.Query) [][]xmltree.NodeID {
	return ev.evaluateFullWith(q, nil, (*Evaluator).candidatesArena)
}

// EvaluateFullArena is EvaluateFull with every intermediate list — and the
// returned per-node lists themselves — carved from the arena. The results
// are only valid until the arena's next Reset; callers (the DPO level
// loop) must consume them before recycling. A nil arena behaves exactly
// like EvaluateFull.
func (ev *Evaluator) EvaluateFullArena(q *tpq.Query, a *Arena) [][]xmltree.NodeID {
	return ev.evaluateFullWith(q, a, (*Evaluator).candidatesArena)
}

// EvalValuePred evaluates a value-based predicate against a node's
// attribute, or against its own text content when the predicate names no
// attribute ($i.content, e.g. ./quantity < 3). The comparison is numeric
// when both sides parse as numbers, lexicographic otherwise. A missing
// attribute or empty content fails every comparison.
func EvalValuePred(doc *xmltree.Document, n xmltree.NodeID, v tpq.ValuePred) bool {
	var got string
	if v.Attr == "" {
		got = strings.TrimSpace(doc.Text(n))
		if got == "" {
			return false
		}
	} else {
		var ok bool
		got, ok = doc.Attr(n, v.Attr)
		if !ok {
			return false
		}
	}
	var cmp int
	if a, errA := strconv.ParseFloat(got, 64); errA == nil {
		if b, errB := strconv.ParseFloat(v.Value, 64); errB == nil {
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
			return applyCmp(cmp, v.Op)
		}
	}
	switch {
	case got < v.Value:
		cmp = -1
	case got > v.Value:
		cmp = 1
	}
	return applyCmp(cmp, v.Op)
}

func applyCmp(cmp int, op tpq.CmpOp) bool {
	switch op {
	case tpq.OpEq:
		return cmp == 0
	case tpq.OpNe:
		return cmp != 0
	case tpq.OpLt:
		return cmp < 0
	case tpq.OpLe:
		return cmp <= 0
	case tpq.OpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}
