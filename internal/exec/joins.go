// Package exec is FleXPath's query execution engine. It provides the
// structural (semi)join primitives of Al-Khalifa et al. (ICDE 2002) over
// sorted node lists, an exact tree-pattern evaluator used by the DPO
// algorithm and by the test oracles, and a scored left-deep join pipeline
// that evaluates a query with relaxations encoded as optional predicates —
// the machinery behind the SSO and Hybrid algorithms (§5.2 of the paper).
package exec

import (
	"sort"

	"flexpath/internal/xmltree"
)

// SemiJoinHasDescendant keeps the nodes of outer whose subtree contains at
// least one node of inner. Both lists must be sorted in document order;
// the result is sorted.
func SemiJoinHasDescendant(doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	if len(outer) == 0 || len(inner) == 0 {
		return nil
	}
	out := outer[:0:0]
	for _, a := range outer {
		i := sort.Search(len(inner), func(i int) bool { return inner[i] > a })
		if i < len(inner) && inner[i] <= doc.End(a) {
			out = append(out, a)
		}
	}
	return out
}

// SemiJoinHasChild keeps the nodes of outer that have at least one child
// in inner. Both lists must be sorted; the result is sorted.
func SemiJoinHasChild(doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	if len(outer) == 0 || len(inner) == 0 {
		return nil
	}
	// Collect the distinct parents of inner, then merge with outer.
	parents := make([]xmltree.NodeID, 0, len(inner))
	for _, d := range inner {
		if p := doc.Parent(d); p != xmltree.InvalidNode {
			parents = append(parents, p)
		}
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	out := outer[:0:0]
	j := 0
	for _, a := range outer {
		for j < len(parents) && parents[j] < a {
			j++
		}
		if j < len(parents) && parents[j] == a {
			out = append(out, a)
		}
	}
	return out
}

// SemiJoinDescendantOf keeps the nodes that are proper descendants of at
// least one node in ancestors. Both lists must be sorted; the result is
// sorted.
func SemiJoinDescendantOf(doc *xmltree.Document, nodes, ancestors []xmltree.NodeID) []xmltree.NodeID {
	if len(nodes) == 0 || len(ancestors) == 0 {
		return nil
	}
	// maxEnd[i] = max interval end among ancestors[0..i]; a node n has a
	// containing ancestor iff some a < n has end(a) >= n, i.e. the max end
	// among ancestors strictly before n reaches n.
	maxEnd := make([]xmltree.NodeID, len(ancestors))
	cur := xmltree.NodeID(-1)
	for i, a := range ancestors {
		if e := doc.End(a); e > cur {
			cur = e
		}
		maxEnd[i] = cur
	}
	out := nodes[:0:0]
	for _, n := range nodes {
		i := sort.Search(len(ancestors), func(i int) bool { return ancestors[i] >= n })
		if i > 0 && maxEnd[i-1] >= n {
			out = append(out, n)
		}
	}
	return out
}

// SemiJoinChildOf keeps the nodes whose parent is in parents. Both lists
// must be sorted; the result is sorted.
func SemiJoinChildOf(doc *xmltree.Document, nodes, parents []xmltree.NodeID) []xmltree.NodeID {
	if len(nodes) == 0 || len(parents) == 0 {
		return nil
	}
	out := nodes[:0:0]
	for _, n := range nodes {
		p := doc.Parent(n)
		if p == xmltree.InvalidNode {
			continue
		}
		i := sort.Search(len(parents), func(i int) bool { return parents[i] >= p })
		if i < len(parents) && parents[i] == p {
			out = append(out, n)
		}
	}
	return out
}

// DescendantsInRange returns the sub-slice of the sorted list nodes that
// lies strictly inside a's subtree: (a, end(a)].
func DescendantsInRange(doc *xmltree.Document, nodes []xmltree.NodeID, a xmltree.NodeID) []xmltree.NodeID {
	lo := sort.Search(len(nodes), func(i int) bool { return nodes[i] > a })
	end := doc.End(a)
	hi := lo
	for hi < len(nodes) && nodes[hi] <= end {
		hi++
	}
	return nodes[lo:hi]
}
