// Package exec is FleXPath's query execution engine. It provides the
// structural (semi)join primitives of Al-Khalifa et al. (ICDE 2002) over
// sorted node lists, an exact tree-pattern evaluator used by the DPO
// algorithm and by the test oracles, and a scored left-deep join pipeline
// that evaluates a query with relaxations encoded as optional predicates —
// the machinery behind the SSO and Hybrid algorithms (§5.2 of the paper).
//
// The semijoin kernels are columnar and block-at-a-time: they index the
// document's End/Parent columns directly (no per-node accessor calls),
// write into caller-supplied output buffers (typically carved from an
// Arena), and advance a shared cursor over the inner list by galloping —
// exponential probe followed by binary search inside the probed window.
// Galloping makes each semijoin a near-linear merge when the two lists
// are comparably sized, while degrading gracefully to O(n log m) when one
// list is much shorter. The pre-refactor scalar kernels are retained
// (unexported, in joins_scalar.go) as differential-test oracles.
package exec

import (
	"slices"

	"flexpath/internal/xmltree"
)

// joinBlock is the number of outer-list elements a kernel processes per
// block. Blocks keep the working set of one iteration small and give the
// kernels a natural point to notice an exhausted inner cursor and stop.
const joinBlock = 512

// gallopGT returns the smallest index i in [from, len(xs)) with
// xs[i] > v, galloping: probe exponentially from `from`, then binary
// search the probed window. Cost is O(log d) where d is the distance
// advanced, so a sequence of monotone calls over xs is near-linear.
func gallopGT(xs []xmltree.NodeID, from int, v xmltree.NodeID) int {
	if from >= len(xs) || xs[from] > v {
		return from
	}
	// Invariant: xs[i] <= v; window (i, i+step] may contain the answer.
	i, step := from, 1
	for i+step < len(xs) && xs[i+step] <= v {
		i += step
		step <<= 1
	}
	lo, hi := i+1, i+step
	if hi > len(xs) {
		hi = len(xs)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopGE is gallopGT for the first index with xs[i] >= v.
func gallopGE(xs []xmltree.NodeID, from int, v xmltree.NodeID) int {
	if from >= len(xs) || xs[from] >= v {
		return from
	}
	i, step := from, 1
	for i+step < len(xs) && xs[i+step] < v {
		i += step
		step <<= 1
	}
	lo, hi := i+1, i+step
	if hi > len(xs) {
		hi = len(xs)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SemiJoinHasDescendant keeps the nodes of outer whose subtree contains
// at least one node of inner. Both lists must be sorted in document
// order; the result is sorted. Allocating wrapper over the Into kernel.
func SemiJoinHasDescendant(doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	return SemiJoinHasDescendantInto(nil, nil, doc, outer, inner)
}

// SemiJoinHasDescendantInto is the block kernel behind
// SemiJoinHasDescendant: it appends the result to dst[:0] and returns it.
// dst is typically carved from a (the arena is otherwise unused here);
// both may be nil.
func SemiJoinHasDescendantInto(a *Arena, dst []xmltree.NodeID, doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	dst = dst[:0]
	if len(outer) == 0 || len(inner) == 0 {
		return dst
	}
	ends := doc.Ends()
	j := 0
	for lo := 0; lo < len(outer); lo += joinBlock {
		hi := lo + joinBlock
		if hi > len(outer) {
			hi = len(outer)
		}
		for _, x := range outer[lo:hi] {
			// First inner node after x in document order; x matches iff
			// that node still lies inside x's subtree. The probe target is
			// monotone in x, so the cursor only moves forward.
			j = gallopGT(inner, j, x)
			if j >= len(inner) {
				return dst
			}
			if inner[j] <= ends[x] {
				dst = append(dst, x)
			}
		}
	}
	return dst
}

// SemiJoinHasChild keeps the nodes of outer that have at least one child
// in inner. Both lists must be sorted; the result is sorted. Allocating
// wrapper over the Into kernel.
func SemiJoinHasChild(doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	return SemiJoinHasChildInto(nil, nil, doc, outer, inner)
}

// SemiJoinHasChildInto is the block kernel behind SemiJoinHasChild. The
// distinct parents of inner are collected into arena scratch, sorted with
// a typed sort, and deduplicated on the fly during a single galloped
// merge against outer — no per-call allocation when an arena is supplied.
func SemiJoinHasChildInto(a *Arena, dst []xmltree.NodeID, doc *xmltree.Document, outer, inner []xmltree.NodeID) []xmltree.NodeID {
	dst = dst[:0]
	if len(outer) == 0 || len(inner) == 0 {
		return dst
	}
	parentCol := doc.Parents()
	parents := a.Nodes(len(inner))
	for _, d := range inner {
		if p := parentCol[d]; p != xmltree.InvalidNode {
			parents = append(parents, p)
		}
	}
	slices.Sort(parents)
	j := 0
	for lo := 0; lo < len(outer); lo += joinBlock {
		hi := lo + joinBlock
		if hi > len(outer) {
			hi = len(outer)
		}
		for _, x := range outer[lo:hi] {
			// Galloping to the first parent >= x skips duplicate parent
			// runs in one jump: the merge pass is also the dedup pass.
			j = gallopGE(parents, j, x)
			if j >= len(parents) {
				return dst
			}
			if parents[j] == x {
				dst = append(dst, x)
			}
		}
	}
	return dst
}

// SemiJoinDescendantOf keeps the nodes that are proper descendants of at
// least one node in ancestors. Both lists must be sorted; the result is
// sorted. Allocating wrapper over the Into kernel.
func SemiJoinDescendantOf(doc *xmltree.Document, nodes, ancestors []xmltree.NodeID) []xmltree.NodeID {
	return SemiJoinDescendantOfInto(nil, nil, doc, nodes, ancestors)
}

// SemiJoinDescendantOfInto is the block kernel behind
// SemiJoinDescendantOf. The running-max interval-end prefix lives in
// arena scratch; the ancestor cursor advances by galloping.
func SemiJoinDescendantOfInto(a *Arena, dst []xmltree.NodeID, doc *xmltree.Document, nodes, ancestors []xmltree.NodeID) []xmltree.NodeID {
	dst = dst[:0]
	if len(nodes) == 0 || len(ancestors) == 0 {
		return dst
	}
	ends := doc.Ends()
	// maxEnd[i] = max interval end among ancestors[0..i]; a node n has a
	// containing ancestor iff some a < n has end(a) >= n, i.e. the max end
	// among ancestors strictly before n reaches n.
	maxEnd := a.nodesN(len(ancestors))
	cur := xmltree.NodeID(-1)
	for i, an := range ancestors {
		if e := ends[an]; e > cur {
			cur = e
		}
		maxEnd[i] = cur
	}
	j := 0
	for lo := 0; lo < len(nodes); lo += joinBlock {
		hi := lo + joinBlock
		if hi > len(nodes) {
			hi = len(nodes)
		}
		for _, n := range nodes[lo:hi] {
			j = gallopGE(ancestors, j, n)
			if j > 0 && maxEnd[j-1] >= n {
				dst = append(dst, n)
			}
		}
	}
	return dst
}

// SemiJoinChildOf keeps the nodes whose parent is in parents. Both lists
// must be sorted; the result is sorted. Allocating wrapper over the Into
// kernel.
func SemiJoinChildOf(doc *xmltree.Document, nodes, parents []xmltree.NodeID) []xmltree.NodeID {
	return SemiJoinChildOfInto(nil, nil, doc, nodes, parents)
}

// SemiJoinChildOfInto is the block kernel behind SemiJoinChildOf. A
// node's parent is not monotone in document order, so instead of a
// forward-only cursor the kernel exploits local coherence: consecutive
// nodes are usually siblings, so it first re-tests the previous hit, then
// gallops from the last position in whichever direction the new parent
// lies.
func SemiJoinChildOfInto(a *Arena, dst []xmltree.NodeID, doc *xmltree.Document, nodes, parents []xmltree.NodeID) []xmltree.NodeID {
	dst = dst[:0]
	if len(nodes) == 0 || len(parents) == 0 {
		return dst
	}
	parentCol := doc.Parents()
	j := 0
	for lo := 0; lo < len(nodes); lo += joinBlock {
		hi := lo + joinBlock
		if hi > len(nodes) {
			hi = len(nodes)
		}
		for _, n := range nodes[lo:hi] {
			p := parentCol[n]
			if p == xmltree.InvalidNode {
				continue
			}
			// Sibling fast path: the previous node's parent position is
			// very often this node's too.
			if j < len(parents) && parents[j] == p {
				dst = append(dst, n)
				continue
			}
			if j < len(parents) && parents[j] < p {
				j = gallopGE(parents, j, p)
			} else {
				// Parent lies at or before the cursor — including the case
				// where the cursor ran off the end on an earlier, larger
				// parent (the input is NOT parent-monotone): gallop
				// backwards for the window, then settle with the same
				// forward search.
				k := j
				if k > len(parents)-1 {
					k = len(parents) - 1
				}
				back := 1
				for k-back >= 0 && parents[k-back] >= p {
					k -= back
					back <<= 1
				}
				from := k - back
				if from < 0 {
					from = 0
				}
				j = gallopGE(parents, from, p)
			}
			if j < len(parents) && parents[j] == p {
				dst = append(dst, n)
			}
		}
	}
	return dst
}

// DescendantsInRange returns the sub-slice of the sorted list nodes that
// lies strictly inside a's subtree: (a, end(a)]. Both bounds are found by
// galloping binary search, so cost is logarithmic in the list size (the
// scalar version scanned linearly for the upper bound).
func DescendantsInRange(doc *xmltree.Document, nodes []xmltree.NodeID, a xmltree.NodeID) []xmltree.NodeID {
	lo := gallopGT(nodes, 0, a)
	hi := gallopGT(nodes, lo, doc.End(a))
	return nodes[lo:hi]
}
