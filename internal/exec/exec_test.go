package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

func randomDoc(r *rand.Rand) *xmltree.Document {
	tags := []string{"a", "b", "c", "d"}
	words := []string{"alpha", "beta", "gamma"}
	b := xmltree.NewBuilder()
	var build func(depth int)
	build = func(depth int) {
		b.Open(tags[r.Intn(len(tags))], xmltree.Attr{Name: "v", Value: string(rune('0' + r.Intn(5)))})
		if r.Intn(2) == 0 {
			b.Text(words[r.Intn(len(words))])
		}
		if depth < 5 {
			for i := 0; i < r.Intn(3); i++ {
				build(depth + 1)
			}
		}
		b.Close()
	}
	build(0)
	d, err := b.Document()
	if err != nil {
		panic(err)
	}
	return d
}

func randomSortedNodes(r *rand.Rand, d *xmltree.Document) []xmltree.NodeID {
	var out []xmltree.NodeID
	for n := xmltree.NodeID(0); int(n) < d.Len(); n++ {
		if r.Intn(2) == 0 {
			out = append(out, n)
		}
	}
	return out
}

func TestPropertySemiJoins(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		outer := randomSortedNodes(r, d)
		inner := randomSortedNodes(r, d)

		check := func(got []xmltree.NodeID, keep func(a xmltree.NodeID) bool) bool {
			var want []xmltree.NodeID
			for _, a := range outer {
				if keep(a) {
					want = append(want, a)
				}
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}

		ok := check(SemiJoinHasDescendant(d, outer, inner), func(a xmltree.NodeID) bool {
			for _, x := range inner {
				if d.IsAncestor(a, x) {
					return true
				}
			}
			return false
		})
		ok = ok && check(SemiJoinHasChild(d, outer, inner), func(a xmltree.NodeID) bool {
			for _, x := range inner {
				if d.Parent(x) == a {
					return true
				}
			}
			return false
		})
		ok = ok && check(SemiJoinDescendantOf(d, outer, inner), func(a xmltree.NodeID) bool {
			for _, x := range inner {
				if d.IsAncestor(x, a) {
					return true
				}
			}
			return false
		})
		ok = ok && check(SemiJoinChildOf(d, outer, inner), func(a xmltree.NodeID) bool {
			for _, x := range inner {
				if d.Parent(a) == x {
					return true
				}
			}
			return false
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDescendantsInRange(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := randomDoc(r)
	all := make([]xmltree.NodeID, d.Len())
	for i := range all {
		all[i] = xmltree.NodeID(i)
	}
	for n := xmltree.NodeID(0); int(n) < d.Len(); n++ {
		got := DescendantsInRange(d, all, n)
		var want []xmltree.NodeID
		for _, m := range all {
			if d.IsAncestor(n, m) {
				want = append(want, m)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: got %d descendants, want %d", n, len(got), len(want))
		}
	}
}

// naiveMatches enumerates all matches of q in d by brute force and
// returns the distinct distinguished-node bindings.
func naiveMatches(d *xmltree.Document, ix *ir.Index, q *tpq.Query) []xmltree.NodeID {
	results := map[xmltree.NodeID]bool{}
	bind := make([]xmltree.NodeID, len(q.Nodes))
	var rec func(i int) // assign query node i
	rec = func(i int) {
		if i == len(q.Nodes) {
			results[bind[q.Dist]] = true
			return
		}
		qn := &q.Nodes[i]
		for n := xmltree.NodeID(0); int(n) < d.Len(); n++ {
			if d.TagName(n) != qn.Tag {
				continue
			}
			if qn.Parent != -1 {
				p := bind[qn.Parent]
				if qn.Axis == tpq.Child {
					if d.Parent(n) != p {
						continue
					}
				} else if !d.IsAncestor(p, n) {
					continue
				}
			}
			okLocal := true
			for _, v := range qn.Values {
				if !EvalValuePred(d, n, v) {
					okLocal = false
					break
				}
			}
			for _, e := range qn.Contains {
				if !ix.Eval(e).Satisfies(n) {
					okLocal = false
					break
				}
			}
			if !okLocal {
				continue
			}
			bind[i] = n
			rec(i + 1)
		}
	}
	rec(0)
	out := make([]xmltree.NodeID, 0, len(results))
	for n := range results {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var testQueries = []string{
	`//a[./b]`,
	`//a[.//b]`,
	`//a[./b and ./c]`,
	`//a[./b[./c]]`,
	`//a[.//b[./c and .//d]]`,
	`//a/b/c`,
	`//a[./b and .contains("alpha")]`,
	`//a[./b[.contains("alpha" and "beta")]]`,
	`//a[@v = 1]`,
	`//a[@v < 3 and ./b]`,
	`//a[./b = "alpha"]`,
	`//a[. = "gamma"]`,
	`//a[./b/c < "beta"]`,
}

func TestPropertyEvaluateMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		ix := ir.NewIndex(d)
		ev := NewEvaluator(d, ix)
		for _, src := range testQueries {
			q := tpq.MustParse(src)
			got := ev.Evaluate(q)
			want := naiveMatches(d, ix, q)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateFullConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := randomDoc(r)
	ix := ir.NewIndex(d)
	ev := NewEvaluator(d, ix)
	q := tpq.MustParse(`//a[./b and .//c]`)
	full := ev.EvaluateFull(q)
	if full == nil {
		t.Skip("no matches in this random doc")
	}
	// Every node in every list participates in some full match: verify
	// via the naive matcher per query variable.
	for qi := range q.Nodes {
		seen := map[xmltree.NodeID]bool{}
		var bind = make([]xmltree.NodeID, len(q.Nodes))
		var rec func(i int)
		rec = func(i int) {
			if i == len(q.Nodes) {
				seen[bind[qi]] = true
				return
			}
			qn := &q.Nodes[i]
			for n := xmltree.NodeID(0); int(n) < d.Len(); n++ {
				if d.TagName(n) != qn.Tag {
					continue
				}
				if qn.Parent != -1 {
					p := bind[qn.Parent]
					if qn.Axis == tpq.Child && d.Parent(n) != p {
						continue
					}
					if qn.Axis == tpq.Descendant && !d.IsAncestor(p, n) {
						continue
					}
				}
				bind[i] = n
				rec(i + 1)
			}
		}
		rec(0)
		if len(full[qi]) != len(seen) {
			t.Errorf("var %d: EvaluateFull has %d nodes, naive %d", qi, len(full[qi]), len(seen))
		}
		for _, n := range full[qi] {
			if !seen[n] {
				t.Errorf("var %d: node %d not part of any match", qi, n)
			}
		}
	}
}

func TestEvalValuePred(t *testing.T) {
	d, err := xmltree.ParseString(`<a price="10" name="abc"><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pred tpq.ValuePred
		want bool
	}{
		{tpq.ValuePred{Attr: "price", Op: tpq.OpEq, Value: "10"}, true},
		{tpq.ValuePred{Attr: "price", Op: tpq.OpEq, Value: "10.0"}, true}, // numeric compare
		{tpq.ValuePred{Attr: "price", Op: tpq.OpLt, Value: "9"}, false},
		{tpq.ValuePred{Attr: "price", Op: tpq.OpLt, Value: "11"}, true},
		{tpq.ValuePred{Attr: "price", Op: tpq.OpGe, Value: "10"}, true},
		{tpq.ValuePred{Attr: "price", Op: tpq.OpNe, Value: "3"}, true},
		{tpq.ValuePred{Attr: "name", Op: tpq.OpEq, Value: "abc"}, true},
		{tpq.ValuePred{Attr: "name", Op: tpq.OpLt, Value: "abd"}, true}, // lexicographic
		{tpq.ValuePred{Attr: "missing", Op: tpq.OpEq, Value: "x"}, false},
	}
	for _, c := range cases {
		if got := EvalValuePred(d, 0, c.pred); got != c.want {
			t.Errorf("%+v = %v, want %v", c.pred, got, c.want)
		}
	}
}
