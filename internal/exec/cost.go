package exec

import "math"

// CostEstimate summarizes the statically knowable cost drivers of a
// plan, before any join runs. The cost-based planner combines it with
// selectivity estimates to price the plan-based algorithms.
type CostEstimate struct {
	// Candidates is the summed per-variable candidate-list size bound:
	// nodes carrying the variable's tag (or any hierarchy subtype),
	// capped by the cheapest required contains predicate — the same
	// witness-first bound evaluateLeaf exploits.
	Candidates float64
	// MergeUnits prices the structural joins under the galloping block
	// kernels: joining a variable against its anchor costs one galloped
	// merge, near-linear in the variable's own list plus a logarithmic
	// probe into the anchor's list per element — n_v + log2(1+n_anchor)
	// per variable. This replaces the old implicit assumption that a join
	// step costs its full candidate count in binary searches.
	MergeUnits float64
	// Vars counts plan variables; OptionalVars counts the optional tail
	// (variables whose connecting predicates were all relaxed away).
	Vars         int
	OptionalVars int
}

// EstimateCost computes a plan's static cost inputs.
func EstimateCost(p *Plan) CostEstimate {
	ce := CostEstimate{Vars: len(p.Vars), OptionalVars: len(p.Vars) - p.FirstOptional}
	sizes := make([]float64, len(p.Vars))
	for i := range p.Vars {
		v := &p.Vars[i]
		n := 0
		if len(v.Tags) > 0 {
			for _, t := range v.Tags {
				n += len(p.Doc.NodesWithTag(t))
			}
		} else {
			n = len(p.Doc.NodesWithTag(v.Tag))
		}
		for _, c := range v.Contains {
			if c.Required && c.Res.Len() < n {
				n = c.Res.Len()
			}
		}
		sizes[i] = float64(n)
		ce.Candidates += float64(n)
	}
	for i := range p.Vars {
		anchor := sizes[i] // the root merges against its own list
		if a := p.Vars[i].Anchor; a >= 0 {
			anchor = sizes[a]
		}
		ce.MergeUnits += sizes[i] + math.Log2(1+anchor)
	}
	return ce
}
