package exec

// CostEstimate summarizes the statically knowable cost drivers of a
// plan, before any join runs. The cost-based planner combines it with
// selectivity estimates to price the plan-based algorithms.
type CostEstimate struct {
	// Candidates is the summed per-variable candidate-list size bound:
	// nodes carrying the variable's tag (or any hierarchy subtype),
	// capped by the cheapest required contains predicate — the same
	// witness-first bound evaluateLeaf exploits.
	Candidates float64
	// Vars counts plan variables; OptionalVars counts the optional tail
	// (variables whose connecting predicates were all relaxed away).
	Vars         int
	OptionalVars int
}

// EstimateCost computes a plan's static cost inputs.
func EstimateCost(p *Plan) CostEstimate {
	ce := CostEstimate{Vars: len(p.Vars), OptionalVars: len(p.Vars) - p.FirstOptional}
	for i := range p.Vars {
		v := &p.Vars[i]
		n := 0
		if len(v.Tags) > 0 {
			for _, t := range v.Tags {
				n += len(p.Doc.NodesWithTag(t))
			}
		} else {
			n = len(p.Doc.NodesWithTag(v.Tag))
		}
		for _, c := range v.Contains {
			if c.Required && c.Res.Len() < n {
				n = c.Res.Len()
			}
		}
		ce.Candidates += float64(n)
	}
	return ce
}
