package exec

import (
	"slices"
	"sync"

	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

// walkScratch is a reusable visited-marking buffer for ancestor walks.
// Epoch counters avoid clearing the array between uses; the pool makes
// concurrent evaluations safe.
type walkScratch struct {
	epoch []int32
	cur   int32
}

var walkPool = sync.Pool{New: func() interface{} { return &walkScratch{} }}

func acquireScratch(n int) *walkScratch {
	s := walkPool.Get().(*walkScratch)
	if len(s.epoch) < n {
		s.epoch = make([]int32, n)
		s.cur = 0
	}
	s.cur++
	if s.cur == 0 { // wrapped: clear and restart
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.cur = 1
	}
	return s
}

// EvaluateIRFirst evaluates an exact tree pattern query starting from the
// full-text index rather than from tag lists: for every query node with a
// contains predicate, its candidate list is built by walking up from the
// predicate's witnesses (the inverted-index postings) instead of scanning
// and filtering all nodes with the node's tag.
//
// This is the alternative §5.1 of the paper mentions and leaves open:
// "first use an inverted index to evaluate the contains predicates and
// filter out potential answers, and then match structural predicates. The
// efficiency of each approach depends on the types of queries." Both
// strategies compute identical answers (tested); BenchmarkIRFirst
// measures the crossover: IR-first wins when keywords are selective,
// structure-first wins when they are common.
func (ev *Evaluator) EvaluateIRFirst(q *tpq.Query) []xmltree.NodeID {
	ok := ev.evaluateFullWith(q, nil, (*Evaluator).irFirstCandidates)
	if ok == nil {
		return nil
	}
	return ok[q.Dist]
}

// irFirstCandidates builds node i's candidate list from contains-predicate
// witnesses when possible, falling back to the tag-scan path otherwise.
// Scratch (the contains-result list and the filtered output) is carved
// from the arena when one is supplied.
func (ev *Evaluator) irFirstCandidates(q *tpq.Query, i int, a *Arena) []xmltree.NodeID {
	n := &q.Nodes[i]
	if len(n.Contains) == 0 {
		return ev.candidatesArena(q, i, a)
	}
	// Anchor on the most selective contains predicate (fewest witnesses).
	best := ev.ix.Eval(n.Contains[0])
	for _, e := range n.Contains[1:] {
		if r := ev.ix.Eval(e); r.Len() < best.Len() {
			best = r
		}
	}
	// Contexts = distinct ancestors-or-self of witnesses carrying the
	// node's tag. Deduplicate with a seen-set; walking stops at an
	// already-seen ancestor because its chain is complete.
	wantTags := map[xmltree.TagID]bool{}
	if ev.h == nil {
		if id := ev.doc.TagByName(n.Tag); id != xmltree.InvalidTag {
			wantTags[id] = true
		}
	} else {
		for _, t := range ev.h.Subtypes(n.Tag) {
			if id := ev.doc.TagByName(t); id != xmltree.InvalidTag {
				wantTags[id] = true
			}
		}
	}
	if len(wantTags) == 0 {
		return nil
	}
	scratch := acquireScratch(ev.doc.Len())
	var out []xmltree.NodeID
	for wi := 0; wi < best.Len(); wi++ {
		for a := best.Node(wi); a != xmltree.InvalidNode; a = ev.doc.Parent(a) {
			if scratch.epoch[a] == scratch.cur {
				break
			}
			scratch.epoch[a] = scratch.cur
			if wantTags[ev.doc.Tag(a)] {
				out = append(out, a)
			}
		}
	}
	walkPool.Put(scratch)
	slices.Sort(out)
	// Remaining local predicates still apply: other contains predicates
	// and value-based predicates.
	results := a.results()
	for _, e := range n.Contains {
		results = append(results, ev.ix.Eval(e))
	}
	filtered := out[:0]
candidates:
	for _, c := range out {
		for _, v := range n.Values {
			if !EvalValuePred(ev.doc, c, v) {
				continue candidates
			}
		}
		for _, r := range results {
			if !r.Satisfies(c) {
				continue candidates
			}
		}
		filtered = append(filtered, c)
	}
	a.keepResults(results)
	return filtered
}

// evaluateFullWith is EvaluateFull parameterized by the candidate source
// and the scratch arena (nil for plain allocation). Every semijoin writes
// into a buffer carved from the arena, so one pass allocates nothing
// beyond the down/ok spines once the arena's chunk is warm.
func (ev *Evaluator) evaluateFullWith(q *tpq.Query, a *Arena, cands func(*Evaluator, *tpq.Query, int, *Arena) []xmltree.NodeID) [][]xmltree.NodeID {
	n := len(q.Nodes)
	down := make([][]xmltree.NodeID, n)
	children := make([][]int, n)
	for i := 1; i < n; i++ {
		p := q.Nodes[i].Parent
		children[p] = append(children[p], i)
	}
	for i := n - 1; i >= 0; i-- {
		cur := cands(ev, q, i, a)
		for _, c := range children[i] {
			if q.Nodes[c].Axis == tpq.Child {
				cur = SemiJoinHasChildInto(a, a.Nodes(len(cur)), ev.doc, cur, down[c])
			} else {
				cur = SemiJoinHasDescendantInto(a, a.Nodes(len(cur)), ev.doc, cur, down[c])
			}
			if len(cur) == 0 {
				return nil
			}
		}
		down[i] = cur
	}
	ok := make([][]xmltree.NodeID, n)
	ok[0] = down[0]
	for i := 1; i < n; i++ {
		p := q.Nodes[i].Parent
		if q.Nodes[i].Axis == tpq.Child {
			ok[i] = SemiJoinChildOfInto(a, a.Nodes(len(down[i])), ev.doc, down[i], ok[p])
		} else {
			ok[i] = SemiJoinDescendantOfInto(a, a.Nodes(len(down[i])), ev.doc, down[i], ok[p])
		}
		if len(ok[i]) == 0 {
			return nil
		}
	}
	return ok
}
