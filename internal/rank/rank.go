// Package rank implements FleXPath's ranking machinery (§4 of the paper):
// predicate weights, the penalties incurred by dropping predicates during
// relaxation, per-answer structural and keyword scores, and the three
// ranking schemes (structure first, keyword first, combined).
//
// Scores are computed from the multiset of predicate weights/penalties an
// answer satisfies, never from the order in which relaxations were
// applied, so every scheme here is order invariant by the construction of
// Theorem 3 and satisfies the Relevance Scoring property (structural
// scores never increase along a relaxation chain, because each additional
// dropped predicate subtracts a non-negative penalty).
package rank

import (
	"fmt"

	"flexpath/internal/ir"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
)

// Scheme selects how structural and keyword scores combine into a total
// order (§4.3).
type Scheme int

const (
	// StructureFirst orders answers by (ss, ks) lexicographically.
	StructureFirst Scheme = iota
	// KeywordFirst orders answers by (ks, ss) lexicographically.
	KeywordFirst
	// Combined orders answers by ss + ks.
	Combined
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case StructureFirst:
		return "structure-first"
	case KeywordFirst:
		return "keyword-first"
	default:
		return "combined"
	}
}

// ParseScheme parses a scheme name as printed by String.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "structure-first", "structure", "ss":
		return StructureFirst, nil
	case "keyword-first", "keyword", "ks":
		return KeywordFirst, nil
	case "combined", "sum":
		return Combined, nil
	}
	return 0, fmt.Errorf("rank: unknown scheme %q", s)
}

// Score is an answer's pair of structural score (ss) and keyword score
// (ks).
type Score struct {
	SS float64
	KS float64
}

// Compare orders two scores under a scheme. It returns >0 when s ranks
// strictly above o, <0 when below, 0 on ties.
func (s Score) Compare(o Score, scheme Scheme) int {
	switch scheme {
	case StructureFirst:
		if c := cmpFloat(s.SS, o.SS); c != 0 {
			return c
		}
		return cmpFloat(s.KS, o.KS)
	case KeywordFirst:
		if c := cmpFloat(s.KS, o.KS); c != 0 {
			return c
		}
		return cmpFloat(s.SS, o.SS)
	default:
		return cmpFloat(s.SS+s.KS, o.SS+o.KS)
	}
}

// Total returns the scheme's scalar projection of the score, used for
// threshold pruning. For the lexicographic schemes this is the primary
// component; for Combined it is the sum.
func (s Score) Total(scheme Scheme) float64 {
	switch scheme {
	case StructureFirst:
		return s.SS
	case KeywordFirst:
		return s.KS
	default:
		return s.SS + s.KS
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a > b:
		return 1
	case a < b:
		return -1
	default:
		return 0
	}
}

// Weights assigns a weight to each predicate of a query's closure
// (§4.3.1). The paper fixes the contains weight at 1 and lets structural
// weights be user-specified or uniform; PerPred overrides by canonical
// predicate key.
type Weights struct {
	Structural float64
	Contains   float64
	PerPred    map[string]float64
}

// UniformWeights assigns unit weight to every predicate, the assignment
// used throughout the paper's examples and experiments.
func UniformWeights() Weights {
	return Weights{Structural: 1, Contains: 1}
}

// Of returns the weight of predicate p.
func (w Weights) Of(p tpq.Pred) float64 {
	if v, ok := w.PerPred[p.Key()]; ok {
		return v
	}
	if p.Kind == tpq.PredContains {
		return w.Contains
	}
	return w.Structural
}

// Penalizer computes the penalty π(p) of dropping each predicate of a
// query's closure, using document statistics (§4.3.1). A penalty measures
// the context an answer loses by not satisfying the predicate: the higher
// the fraction of data already satisfying the stronger form, the closer
// the penalty is to the predicate's full weight.
type Penalizer struct {
	st *stats.Stats
	ix *ir.Index
	w  Weights
	// tagOf and parentOf describe the original query's variables by
	// stable ID, required by the pc/ad/contains penalty formulas.
	tagOf    map[int]string
	parentOf map[int]int
}

// NewPenalizer builds a Penalizer for the original query q.
func NewPenalizer(st *stats.Stats, ix *ir.Index, w Weights, q *tpq.Query) *Penalizer {
	p := &Penalizer{
		st: st, ix: ix, w: w,
		tagOf:    make(map[int]string, len(q.Nodes)),
		parentOf: make(map[int]int, len(q.Nodes)),
	}
	for i := range q.Nodes {
		n := &q.Nodes[i]
		p.tagOf[n.ID] = n.Tag
		if n.Parent == -1 {
			p.parentOf[n.ID] = -1
		} else {
			p.parentOf[n.ID] = q.Nodes[n.Parent].ID
		}
	}
	return p
}

// Penalty returns π(p) for dropping predicate p:
//
//	π(pc(i,j))       = #pc(ti,tj) / #ad(ti,tj) · w(p)
//	π(ad(i,j))       = #ad(ti,tj) / (#(ti) · #(tj)) · w(p)
//	π(contains(i,e)) = #contains(ti,e) / #contains(tl,e) · w(p),
//	                   l the query parent of i
//
// Ratios with zero denominators degrade to the full weight (dropping a
// predicate that the data cannot weaken loses the whole context).
func (p *Penalizer) Penalty(pred tpq.Pred) float64 {
	w := p.w.Of(pred)
	switch pred.Kind {
	case tpq.PredPC:
		ti, tj := p.tagOf[pred.X], p.tagOf[pred.Y]
		num, den := p.st.PC(ti, tj), p.st.AD(ti, tj)
		return ratio(num, den) * w
	case tpq.PredAD:
		ti, tj := p.tagOf[pred.X], p.tagOf[pred.Y]
		num := p.st.AD(ti, tj)
		den := p.st.Count(ti) * p.st.Count(tj)
		return ratio(num, den) * w
	case tpq.PredContains:
		ti := p.tagOf[pred.X]
		parent, ok := p.parentOf[pred.X]
		if !ok || parent == -1 {
			// The root's contains predicate is never dropped; a defensive
			// full-weight penalty keeps scores monotone if it ever is.
			return w
		}
		tl := p.tagOf[parent]
		num := p.ix.CountSatisfyingWithTag(ti, pred.Expr)
		den := p.ix.CountSatisfyingWithTag(tl, pred.Expr)
		return ratio(num, den) * w
	default:
		return w
	}
}

func ratio(num, den int) float64 {
	if den <= 0 || num > den {
		return 1
	}
	return float64(num) / float64(den)
}

// BaseScore returns the structural score of an exact answer to the
// original query: the sum of the weights of the structural predicates
// present in the query (its tree edges), per §4.3.2.
func (p *Penalizer) BaseScore(q *tpq.Query) float64 {
	total := 0.0
	for _, pr := range tpq.Logical(q).List() {
		if pr.Kind == tpq.PredPC || pr.Kind == tpq.PredAD {
			total += p.w.Of(pr)
		}
	}
	return total
}

// Weights returns the weight assignment in use.
func (p *Penalizer) Weights() Weights { return p.w }
