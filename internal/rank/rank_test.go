package rank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpath/internal/ir"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

const penaltyXML = `<lib>
  <shelf>
    <book><title>gold atlas</title><chapter><para>gold maps</para></chapter></book>
    <book><title>lead atlas</title><chapter><para>plain maps</para></chapter></book>
    <book><wrapper><chapter><para>gold deep</para></chapter></wrapper></book>
  </shelf>
</lib>`

func fixture(t testing.TB) (*xmltree.Document, *stats.Stats, *ir.Index) {
	t.Helper()
	doc, err := xmltree.ParseString(penaltyXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc, stats.Collect(doc), ir.NewIndex(doc)
}

func TestSchemeCompare(t *testing.T) {
	a := Score{SS: 3, KS: 0.2}
	b := Score{SS: 2, KS: 0.9}
	if a.Compare(b, StructureFirst) <= 0 {
		t.Error("structure-first must prefer higher ss")
	}
	if a.Compare(b, KeywordFirst) >= 0 {
		t.Error("keyword-first must prefer higher ks")
	}
	if a.Compare(b, Combined) <= 0 { // 3.2 vs 2.9
		t.Error("combined must prefer higher sum")
	}
	// Lexicographic tiebreak.
	c := Score{SS: 3, KS: 0.5}
	if a.Compare(c, StructureFirst) >= 0 {
		t.Error("equal ss must fall back to ks")
	}
	if a.Compare(a, StructureFirst) != 0 || a.Compare(a, Combined) != 0 {
		t.Error("self-comparison not zero")
	}
}

func TestSchemeTotal(t *testing.T) {
	s := Score{SS: 2, KS: 0.5}
	if s.Total(StructureFirst) != 2 || s.Total(KeywordFirst) != 0.5 || s.Total(Combined) != 2.5 {
		t.Errorf("Total projections wrong: %v %v %v",
			s.Total(StructureFirst), s.Total(KeywordFirst), s.Total(Combined))
	}
}

func TestParseScheme(t *testing.T) {
	for _, s := range []Scheme{StructureFirst, KeywordFirst, Combined} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v failed: %v %v", s, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("accepted bogus scheme")
	}
}

func TestPenaltyFormulas(t *testing.T) {
	doc, st, ix := fixture(t)
	_ = doc
	q := tpq.MustParse(`//book[./chapter[./para[.contains("gold")]]]`)
	pen := NewPenalizer(st, ix, UniformWeights(), q)

	// π(pc(book,chapter)) = #pc/#ad * w = 2/3.
	got := pen.Penalty(tpq.Pred{Kind: tpq.PredPC, X: 1, Y: 2})
	if want := 2.0 / 3.0; !close(got, want) {
		t.Errorf("pc penalty = %f, want %f", got, want)
	}

	// π(ad(book,chapter)) = #ad / (#book * #chapter) = 3/(3*3) = 1/3.
	got = pen.Penalty(tpq.Pred{Kind: tpq.PredAD, X: 1, Y: 2})
	if want := 1.0 / 3.0; !close(got, want) {
		t.Errorf("ad penalty = %f, want %f", got, want)
	}

	// π(contains(para)) = #contains(para,gold)/#contains(chapter,gold) =
	// 2/2 = 1 (every chapter containing gold has a para containing it).
	e := q.Nodes[2].Contains[0]
	got = pen.Penalty(tpq.Pred{Kind: tpq.PredContains, X: 3, Expr: e})
	if want := 1.0; !close(got, want) {
		t.Errorf("contains penalty = %f, want %f", got, want)
	}
}

func TestPenaltyZeroDenominator(t *testing.T) {
	_, st, ix := fixture(t)
	q := tpq.MustParse(`//book[./nosuch]`)
	pen := NewPenalizer(st, ix, UniformWeights(), q)
	// Tags that never co-occur degrade to the full weight.
	if got := pen.Penalty(tpq.Pred{Kind: tpq.PredPC, X: 1, Y: 2}); got != 1 {
		t.Errorf("degenerate pc penalty = %f, want 1", got)
	}
	// #nosuch = 0 makes the denominator 0, so the penalty degrades to the
	// full weight.
	if got := pen.Penalty(tpq.Pred{Kind: tpq.PredAD, X: 1, Y: 2}); got != 1 {
		t.Errorf("degenerate ad penalty = %f, want 1", got)
	}
}

func TestPenaltiesInUnitInterval(t *testing.T) {
	_, st, ix := fixture(t)
	q := tpq.MustParse(`//book[./chapter[./para[.contains("gold")]] and ./title]`)
	pen := NewPenalizer(st, ix, UniformWeights(), q)
	for _, p := range tpq.ClosureOf(q).List() {
		if p.Kind == tpq.PredTag || p.Kind == tpq.PredValue {
			continue
		}
		got := pen.Penalty(p)
		if got < 0 || got > 1+1e-9 {
			t.Errorf("penalty(%s) = %f outside [0,1]", p.Key(), got)
		}
	}
}

func TestBaseScore(t *testing.T) {
	_, st, ix := fixture(t)
	q := tpq.MustParse(`//book[./chapter[./para] and .//title]`)
	pen := NewPenalizer(st, ix, UniformWeights(), q)
	// Three edges, uniform weight 1.
	if got := pen.BaseScore(q); got != 3 {
		t.Errorf("BaseScore = %f, want 3", got)
	}
	w := UniformWeights()
	w.Structural = 2
	pen = NewPenalizer(st, ix, w, q)
	if got := pen.BaseScore(q); got != 6 {
		t.Errorf("BaseScore with weight 2 = %f, want 6", got)
	}
}

func TestPerPredWeightOverride(t *testing.T) {
	w := UniformWeights()
	p := tpq.Pred{Kind: tpq.PredPC, X: 1, Y: 2}
	w.PerPred = map[string]float64{p.Key(): 5}
	if got := w.Of(p); got != 5 {
		t.Errorf("override weight = %f", got)
	}
	if got := w.Of(tpq.Pred{Kind: tpq.PredPC, X: 1, Y: 3}); got != 1 {
		t.Errorf("non-overridden weight = %f", got)
	}
}

// TestOrderInvariance (Theorem 3): the score of an answer depends only on
// the multiset of satisfied predicates, never on relaxation order. We
// verify the contract directly: summing weights/penalties over a shuffled
// predicate multiset yields identical scores.
func TestOrderInvariance(t *testing.T) {
	_, st, ix := fixture(t)
	q := tpq.MustParse(`//book[./chapter[./para[.contains("gold")]] and ./title]`)
	pen := NewPenalizer(st, ix, UniformWeights(), q)
	preds := tpq.ClosureOf(q).List()
	var droppable []tpq.Pred
	for _, p := range preds {
		if p.Kind == tpq.PredPC || p.Kind == tpq.PredAD || p.Kind == tpq.PredContains {
			droppable = append(droppable, p)
		}
	}
	score := func(order []int, k int) float64 {
		ss := pen.BaseScore(q)
		for _, i := range order[:k] {
			ss -= pen.Penalty(droppable[i])
		}
		return ss
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(len(droppable))
		orderA := r.Perm(len(droppable))[:k]
		// Same subset, different order.
		orderB := append([]int(nil), orderA...)
		r.Shuffle(len(orderB), func(i, j int) { orderB[i], orderB[j] = orderB[j], orderB[i] })
		return close(score(orderA, k), score(orderB, k))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
