package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// collect returns an apply func appending into *out.
func collect(out *[]Record) func(Record) error {
	return func(r Record) error {
		*out = append(*out, r)
		return nil
	}
}

// testRecords is a varied workload: different ops, name lengths and doc
// sizes (including empty docs and one large enough to span buffer
// flushes).
func testRecords() []Record {
	docs := [][]byte{
		[]byte("<a/>"),
		[]byte("<doc><p>hello world</p></doc>"),
		nil,
		bytes.Repeat([]byte("<x>padding</x>"), 400),
		[]byte("<b attr='1'/>"),
		nil,
		[]byte(strings.Repeat("z", 3)),
		[]byte("<final/>"),
	}
	ops := []Op{OpAdd, OpReplace, OpRemove, OpAdd, OpReplace, OpRemove, OpAdd, OpReplace}
	recs := make([]Record, len(docs))
	for i := range docs {
		recs[i] = Record{Op: ops[i], Name: fmt.Sprintf("doc-%d.xml", i), Doc: docs[i]}
	}
	return recs
}

// writeLog appends recs to a fresh log in dir and closes it, returning
// the assigned LSNs.
func writeLog(t *testing.T, dir string, recs []Record) []uint64 {
	t.Helper()
	l, rec, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.Scanned != 0 {
		t.Fatalf("fresh log scanned %d records", rec.Scanned)
	}
	lsns := make([]uint64, len(recs))
	for i, r := range recs {
		lsn, err := l.Append(r.Op, r.Name, r.Doc)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		lsns[i] = lsn
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("WaitDurable %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return lsns
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	lsns := writeLog(t, dir, recs)

	var got []Record
	l, rec, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if rec.Replayed != len(recs) || rec.Scanned != len(recs) || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want %d replayed, 0 torn", rec, len(recs))
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		want := recs[i]
		if r.LSN != lsns[i] || r.Op != want.Op || r.Name != want.Name || !bytes.Equal(r.Doc, want.Doc) {
			t.Fatalf("record %d = %+v, want op=%v name=%q lsn=%d", i, r, want.Op, want.Name, lsns[i])
		}
	}
	// Appending after recovery continues the LSN sequence.
	lsn, err := l.Append(OpAdd, "after.xml", []byte("<y/>"))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if want := lsns[len(lsns)-1] + 1; lsn != want {
		t.Fatalf("post-recovery LSN = %d, want %d", lsn, want)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
}

func TestAfterLSNSkipsCheckpointedRecords(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	lsns := writeLog(t, dir, recs)

	after := lsns[4]
	var got []Record
	l, rec, err := Open(dir, Options{AfterLSN: after}, collect(&got))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if rec.Scanned != len(recs) {
		t.Fatalf("scanned %d, want %d", rec.Scanned, len(recs))
	}
	if want := len(recs) - 5; rec.Replayed != want || len(got) != want {
		t.Fatalf("replayed %d (%d collected), want %d", rec.Replayed, len(got), want)
	}
	for _, r := range got {
		if r.LSN <= after {
			t.Fatalf("replayed record lsn=%d <= AfterLSN=%d", r.LSN, after)
		}
	}
}

// TestTornTailProperty is the crash-safety property test: a valid log
// truncated at EVERY byte offset must recover exactly the records whose
// frames fit in the prefix, truncate the garbage tail, never panic, and
// accept new appends afterwards.
func TestTornTailProperty(t *testing.T) {
	base := t.TempDir()
	recs := testRecords()
	full := writeLog(t, base, recs)
	segName := fmt.Sprintf(segPattern, uint64(1))
	raw, err := os.ReadFile(filepath.Join(base, segName))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}

	// Frame boundaries: prefix length after each complete record.
	bounds := []int64{0}
	{
		var recsSeen []Record
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		l, _, err := Open(dir, Options{}, collect(&recsSeen))
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
		off := int64(0)
		for _, r := range recsSeen {
			off += frameHeader + int64(len(appendPayload(nil, r.LSN, r.Op, r.Name, r.Doc)))
			bounds = append(bounds, off)
		}
		if bounds[len(bounds)-1] != int64(len(raw)) {
			t.Fatalf("frame arithmetic does not cover the file: %d vs %d", bounds[len(bounds)-1], len(raw))
		}
	}
	// wantRecords(cut) = number of complete frames within the prefix.
	wantRecords := func(cut int64) int {
		n := 0
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= cut {
				n = i
			}
		}
		return n
	}

	for cut := 0; cut <= len(raw); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, segName)
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		l, rec, err := Open(dir, Options{}, collect(&got))
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		want := wantRecords(int64(cut))
		if len(got) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), want)
		}
		if wantTorn := int64(cut) - bounds[want]; rec.TornBytes != wantTorn {
			t.Fatalf("cut=%d: torn bytes = %d, want %d", cut, rec.TornBytes, wantTorn)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() != bounds[want] {
			t.Fatalf("cut=%d: file size %v (err %v), want truncation to %d", cut, fi, err, bounds[want])
		}
		// The log must remain appendable and the new record recoverable.
		lsn, err := l.Append(OpAdd, "post-torn.xml", []byte("<p/>"))
		if err != nil {
			t.Fatalf("cut=%d: append: %v", cut, err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatalf("cut=%d: sync: %v", cut, err)
		}
		if want > 0 && lsn != full[want-1]+1 {
			t.Fatalf("cut=%d: post-recovery lsn=%d, want %d", cut, lsn, full[want-1]+1)
		}
		l.Close()
		var again []Record
		l2, _, err := Open(dir, Options{}, collect(&again))
		if err != nil {
			t.Fatalf("cut=%d: second open: %v", cut, err)
		}
		l2.Close()
		if len(again) != want+1 {
			t.Fatalf("cut=%d: second recovery saw %d records, want %d", cut, len(again), want+1)
		}
	}
}

// TestCorruptTailCRC flips a byte in the last record: replay must stop
// before it and truncate.
func TestCorruptTailCRC(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	writeLog(t, dir, recs)
	path := filepath.Join(dir, fmt.Sprintf(segPattern, uint64(1)))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []Record
	l, rec, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if len(got) != len(recs)-1 {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs)-1)
	}
	if rec.TornBytes == 0 {
		t.Fatal("corrupt tail record not counted as torn")
	}
}

// TestGroupCommitBatching: many concurrent writers inside one sync
// window must share fsyncs instead of paying one each.
func TestGroupCommitBatching(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncWindow: 40 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(OpAdd, fmt.Sprintf("w%d.xml", i), []byte("<w/>"))
			if err == nil {
				err = l.WaitDurable(lsn)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	s := l.Stats()
	if s.AppendedRecords != writers || s.FsyncedRecords != writers {
		t.Fatalf("stats = %+v, want %d appended and fsynced", s, writers)
	}
	if s.Fsyncs >= writers {
		t.Fatalf("no batching: %d fsyncs for %d records", s.Fsyncs, writers)
	}
}

func TestRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lsn, err := l.Append(OpAdd, fmt.Sprintf("a%d.xml", i), []byte("<a/>"))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	lastLSN, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if lastLSN != 3 {
		t.Fatalf("Rotate lastLSN = %d, want 3", lastLSN)
	}
	lsn, err := l.Append(OpAdd, "b.xml", []byte("<b/>"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Segments != 2 {
		t.Fatalf("segments = %d, want 2", s.Segments)
	}
	if err := l.RemoveSealedSegments(); err != nil {
		t.Fatalf("RemoveSealedSegments: %v", err)
	}
	if s := l.Stats(); s.Segments != 1 {
		t.Fatalf("segments after prune = %d, want 1", s.Segments)
	}
	l.Close()

	// Only the record after the rotation survives on disk; with
	// AfterLSN covering the pruned prefix, replay yields exactly it.
	var got []Record
	l2, rec, err := Open(dir, Options{AfterLSN: lastLSN}, collect(&got))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(got) != 1 || got[0].Name != "b.xml" || got[0].LSN != 4 {
		t.Fatalf("replayed %+v, want just b.xml at lsn 4", got)
	}
	if rec.LastLSN != 4 {
		t.Fatalf("LastLSN = %d, want 4", rec.LastLSN)
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpAdd, "x", nil); err != ErrClosed {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); err != ErrClosed {
		t.Fatalf("Rotate on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestMultiSegmentReplayOrder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for seg := 0; seg < 3; seg++ {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("s%d-r%d.xml", seg, i)
			want = append(want, name)
			lsn, err := l.Append(OpAdd, name, []byte("<r/>"))
			if err != nil {
				t.Fatal(err)
			}
			if err := l.WaitDurable(lsn); err != nil {
				t.Fatal(err)
			}
		}
		if seg < 2 {
			if _, err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	l.Close()
	var got []Record
	l2, rec, err := Open(dir, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Replayed != len(want) {
		t.Fatalf("replayed %d, want %d", rec.Replayed, len(want))
	}
	for i, r := range got {
		if r.Name != want[i] || r.LSN != uint64(i+1) {
			t.Fatalf("record %d = %q lsn=%d, want %q lsn=%d", i, r.Name, r.LSN, want[i], i+1)
		}
	}
}
