package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	docs := []CheckpointDoc{
		{Name: "a.xml", Data: []byte("blob-a")},
		{Name: "dir/b.xml", Data: bytes.Repeat([]byte{0xAB}, 5000)},
		{Name: "empty.xml", Data: nil},
	}
	if err := WriteCheckpoint(dir, 42, docs); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	lsn, got, found, err := ReadLatestCheckpoint(dir)
	if err != nil || !found {
		t.Fatalf("ReadLatestCheckpoint: found=%v err=%v", found, err)
	}
	if lsn != 42 || len(got) != len(docs) {
		t.Fatalf("lsn=%d docs=%d, want 42/%d", lsn, len(got), len(docs))
	}
	for i := range docs {
		if got[i].Name != docs[i].Name || !bytes.Equal(got[i].Data, docs[i].Data) {
			t.Fatalf("doc %d = %+v, want %+v", i, got[i], docs[i])
		}
	}
}

func TestCheckpointNewestWinsAndPrunesOlder(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 10, []CheckpointDoc{{Name: "old.xml", Data: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, 20, []CheckpointDoc{{Name: "new.xml", Data: []byte("new")}}); err != nil {
		t.Fatal(err)
	}
	lsn, docs, found, err := ReadLatestCheckpoint(dir)
	if err != nil || !found || lsn != 20 || len(docs) != 1 || docs[0].Name != "new.xml" {
		t.Fatalf("got lsn=%d docs=%v found=%v err=%v, want the lsn-20 checkpoint", lsn, docs, found, err)
	}
	// Writing lsn-20 pruned the lsn-10 file.
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf(ckptPattern, uint64(10)))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("older checkpoint not pruned: %v", err)
	}
}

func TestCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 10, []CheckpointDoc{{Name: "good.xml", Data: []byte("good")}}); err != nil {
		t.Fatal(err)
	}
	// Plant a newer, damaged checkpoint by hand (WriteCheckpoint would
	// have pruned the good one, so write the file directly).
	bad := filepath.Join(dir, fmt.Sprintf(ckptPattern, uint64(99)))
	raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf(ckptPattern, uint64(10))))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	lsn, docs, found, err := ReadLatestCheckpoint(dir)
	if err != nil || !found || lsn != 10 || len(docs) != 1 || docs[0].Name != "good.xml" {
		t.Fatalf("fallback failed: lsn=%d docs=%v found=%v err=%v", lsn, docs, found, err)
	}
}

func TestCheckpointAllCorruptIsError(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, fmt.Sprintf(ckptPattern, uint64(7)))
	if err := os.WriteFile(bad, []byte("FXPCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, found, err := ReadLatestCheckpoint(dir)
	if !found || err == nil {
		t.Fatalf("corrupt-only checkpoint dir: found=%v err=%v, want found with error", found, err)
	}
}

func TestCheckpointEmptyDir(t *testing.T) {
	_, _, found, err := ReadLatestCheckpoint(t.TempDir())
	if found || err != nil {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}
}

func TestWriteFileAtomicPreservesOldOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.fxp2")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good contents")
		return err
	}); err != nil {
		t.Fatalf("initial write: %v", err)
	}
	// A writer that fails midway — after emitting partial bytes, like a
	// crashed snapshot save — must leave the visible file untouched.
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "partial gar"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "good contents" {
		t.Fatalf("visible file corrupted: %q err=%v", got, err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	for _, content := range []string{"one", "two longer contents", "3"} {
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("got %q err=%v, want %q", got, err, content)
		}
	}
}
