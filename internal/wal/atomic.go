package wal

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that path never holds a partial
// state: the content goes to a temp file in the same directory, is
// fsync'd, and only then renamed over path, with the directory fsync'd
// so the rename itself survives a crash. On any error the temp file is
// removed and the previous contents of path (if any) are untouched. The
// checkpointer and snapshot saving share this helper: a crash mid-write
// must never leave a truncated, unloadable file where a good one was.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()           //nolint:errcheck // already failing
			os.Remove(tmp.Name()) //nolint:errcheck // best effort
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so recent renames and creations in it are
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
