package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint container ("FXPC"): a point-in-time image of the whole
// corpus that bounds WAL replay. The payload is opaque to this package —
// callers store one blob per document (in practice an FXP2 indexed
// snapshot) plus its name; the container adds the covered LSN and a
// trailing CRC32C so a damaged checkpoint is detected rather than
// half-loaded.
//
// Layout: magic "FXPC", then (uvarint lsn, uvarint count, count x
// (uvarint name length, name, uvarint blob length, blob)), then a 4-byte
// little-endian CRC32C of everything between the magic and the CRC.
//
// Checkpoints are written atomically (WriteFileAtomic) under names
// embedding the covered LSN, so recovery can pick the newest and fall
// back to an older one if the newest fails verification.
var checkpointMagic = [4]byte{'F', 'X', 'P', 'C'}

const (
	ckptPrefix  = "checkpoint-"
	ckptSuffix  = ".fxpc"
	ckptPattern = ckptPrefix + "%016x" + ckptSuffix
)

// CheckpointDoc is one named document blob inside a checkpoint.
type CheckpointDoc struct {
	Name string
	Data []byte
}

// WriteCheckpoint atomically writes a checkpoint covering every record
// with LSN <= lsn, then deletes older checkpoint files (best effort —
// the newest valid one is all recovery needs).
func WriteCheckpoint(dir string, lsn uint64, docs []CheckpointDoc) error {
	path := filepath.Join(dir, fmt.Sprintf(ckptPattern, lsn))
	err := WriteFileAtomic(path, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 1<<16)
		crc := crc32.New(castagnoli)
		mw := io.MultiWriter(bw, crc)
		if _, err := bw.Write(checkpointMagic[:]); err != nil {
			return err
		}
		var buf [binary.MaxVarintLen64]byte
		putUvarint := func(v uint64) error {
			n := binary.PutUvarint(buf[:], v)
			_, err := mw.Write(buf[:n])
			return err
		}
		if err := putUvarint(lsn); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(docs))); err != nil {
			return err
		}
		for _, d := range docs {
			if err := putUvarint(uint64(len(d.Name))); err != nil {
				return err
			}
			if _, err := io.WriteString(mw, d.Name); err != nil {
				return err
			}
			if err := putUvarint(uint64(len(d.Data))); err != nil {
				return err
			}
			if _, err := mw.Write(d.Data); err != nil {
				return err
			}
		}
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
		if _, err := bw.Write(sum[:]); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		return err
	}
	for _, c := range listCheckpoints(dir) {
		if c.lsn < lsn {
			os.Remove(filepath.Join(dir, c.name)) //nolint:errcheck // best effort
		}
	}
	return nil
}

// ReadLatestCheckpoint loads the newest checkpoint in dir that verifies,
// falling back to older ones if the newest is damaged. found is false
// when dir holds no checkpoint at all; a checkpoint that exists but
// cannot be verified (and has no older fallback) is an error, because
// the WAL records it covered may already be pruned.
func ReadLatestCheckpoint(dir string) (lsn uint64, docs []CheckpointDoc, found bool, err error) {
	cks := listCheckpoints(dir)
	if len(cks) == 0 {
		return 0, nil, false, nil
	}
	var lastErr error
	for i := len(cks) - 1; i >= 0; i-- {
		lsn, docs, err := readCheckpoint(filepath.Join(dir, cks[i].name))
		if err == nil {
			return lsn, docs, true, nil
		}
		lastErr = fmt.Errorf("wal: checkpoint %s: %w", cks[i].name, err)
	}
	return 0, nil, true, lastErr
}

func readCheckpoint(path string) (uint64, []CheckpointDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(raw) < len(checkpointMagic)+4 || string(raw[:4]) != string(checkpointMagic[:]) {
		return 0, nil, errors.New("bad magic")
	}
	body, sum := raw[4:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(sum) {
		return 0, nil, errors.New("checksum mismatch")
	}
	p := body
	take := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, errors.New("truncated varint")
		}
		p = p[n:]
		return v, nil
	}
	lsn, err := take()
	if err != nil {
		return 0, nil, err
	}
	count, err := take()
	if err != nil {
		return 0, nil, err
	}
	docs := make([]CheckpointDoc, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := take()
		if err != nil {
			return 0, nil, err
		}
		if uint64(len(p)) < nameLen {
			return 0, nil, errors.New("truncated name")
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		blobLen, err := take()
		if err != nil {
			return 0, nil, err
		}
		if uint64(len(p)) < blobLen {
			return 0, nil, errors.New("truncated blob")
		}
		docs = append(docs, CheckpointDoc{Name: name, Data: append([]byte(nil), p[:blobLen]...)})
		p = p[blobLen:]
	}
	if len(p) != 0 {
		return 0, nil, errors.New("trailing bytes")
	}
	return lsn, docs, nil
}

type checkpointFile struct {
	name string
	lsn  uint64
}

// listCheckpoints returns checkpoint files sorted by covered LSN.
func listCheckpoints(dir string) []checkpointFile {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var cks []checkpointFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		lsn, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		cks = append(cks, checkpointFile{name: name, lsn: lsn})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].lsn < cks[j].lsn })
	return cks
}
