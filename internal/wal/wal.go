// Package wal implements the durable-ingest substrate beneath a live
// flexpath corpus: an append-only, CRC32C-framed write-ahead log of
// document mutations with group-commit fsync batching, segment rotation
// for checkpoint truncation, torn-tail recovery on boot, and the
// atomic-write and checkpoint-container helpers the checkpointer shares
// with snapshot saving.
//
// The log stores mutations, not index state: each record carries the
// operation, the document name and (for add/replace) the raw document
// bytes, and replay re-applies the mutation through the same code path
// a live request takes. Periodic checkpoints (see checkpoint.go) bound
// replay time; after a checkpoint covering LSN L is durable, every
// sealed segment (all of whose records have LSN <= L) can be deleted.
//
// Durability protocol: Append writes a record into the buffered active
// segment and returns its LSN without waiting; WaitDurable(lsn) blocks
// until an fsync covers that LSN. Callers apply the mutation to memory
// between the two calls and acknowledge only after WaitDurable — so the
// on-disk record order always precedes the in-memory apply order, and a
// crash can only lose mutations that were never acknowledged. Concurrent
// waiters batch naturally: one fsync covers every record buffered before
// it, and an optional group-commit window (Options.SyncWindow) delays
// the sync slightly so more appends join the batch.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies a logged mutation.
type Op byte

// The mutation operations a record can carry. OpAdd and OpReplace carry
// document bytes; OpRemove carries only the name.
const (
	OpAdd     Op = 1
	OpRemove  Op = 2
	OpReplace Op = 3
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpReplace:
		return "replace"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Record is one logged mutation.
type Record struct {
	// LSN is the record's log sequence number: strictly monotone across
	// the whole log, assigned by Append, never reused.
	LSN  uint64
	Op   Op
	Name string
	// Doc holds the raw document bytes for OpAdd/OpReplace (empty for
	// OpRemove). Replay re-parses them; the log never stores index state.
	Doc []byte
}

// Options configures Open.
type Options struct {
	// SyncWindow is the group-commit window: WaitDurable sleeps this long
	// before syncing so concurrent appends share one fsync. 0 syncs
	// immediately (every acknowledged mutation costs its own fsync unless
	// another waiter got there first).
	SyncWindow time.Duration
	// AfterLSN suppresses replay of records at or below it (they are
	// covered by a checkpoint): such records are still parsed and
	// validated, but not handed to apply.
	AfterLSN uint64
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Replayed counts records handed to apply (LSN > AfterLSN).
	Replayed int
	// Scanned counts all valid records parsed, including skipped ones.
	Scanned int
	// TornBytes is how many trailing bytes of the final segment were
	// discarded as a torn (partially written) record.
	TornBytes int64
	// LastLSN is the highest LSN seen (0 when the log was empty).
	LastLSN uint64
}

// Frame layout: 4-byte little-endian payload length, 4-byte CRC32C
// (Castagnoli) of the payload, then the payload (uvarint LSN, op byte,
// uvarint name length, name, uvarint doc length, doc).
const frameHeader = 8

// maxRecordLen bounds a frame's payload so a garbage length field in a
// torn tail cannot drive a giant allocation. It comfortably exceeds the
// 64 MB admin upload cap.
const maxRecordLen = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	segPattern = segPrefix + "%016x" + segSuffix
)

// Log is an open write-ahead log: one active append segment plus any
// sealed segments not yet released by a checkpoint.
type Log struct {
	dir    string
	window time.Duration

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seg      uint64 // active segment sequence number
	nextLSN  uint64
	appended uint64 // highest LSN written into the buffer
	scratch  []byte
	err      error // sticky write/sync failure: the log is poisoned
	closed   bool

	// synced is the highest LSN known durable; read lock-free by the
	// WaitDurable fast path, written under mu.
	synced atomic.Uint64

	// Counters for Stats.
	nAppended atomic.Uint64
	nFsyncs   atomic.Uint64
	nFsynced  atomic.Uint64
	bytes     atomic.Int64 // on-disk bytes across all segments
	segments  atomic.Int64
}

// Open opens (creating as needed) the log in dir, replays every valid
// record through apply in LSN order, truncates a torn tail record from
// the final segment, and returns the log positioned to append after the
// last valid record. Records with LSN <= opts.AfterLSN are validated but
// not replayed. A torn record anywhere but the tail of the final segment
// is corruption (sealed segments were fsync'd) and fails Open.
func Open(dir string, opts Options, apply func(Record) error) (*Log, Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, Recovery{}, err
	}
	l := &Log{dir: dir, window: opts.SyncWindow}
	var rec Recovery
	for i, seg := range segs {
		last := i == len(segs)-1
		res, err := replaySegment(filepath.Join(dir, seg.name), last, opts.AfterLSN, rec.LastLSN, apply)
		if err != nil {
			return nil, rec, fmt.Errorf("wal: segment %s: %w", seg.name, err)
		}
		rec.Replayed += res.replayed
		rec.Scanned += res.scanned
		rec.TornBytes += res.torn
		if res.lastLSN > rec.LastLSN {
			rec.LastLSN = res.lastLSN
		}
		l.bytes.Add(res.valid)
	}
	l.nextLSN = rec.LastLSN + 1
	if opts.AfterLSN >= l.nextLSN-1 {
		l.nextLSN = opts.AfterLSN + 1
	}
	l.synced.Store(l.nextLSN - 1) // everything on disk is durable
	l.appended = l.nextLSN - 1

	if len(segs) > 0 {
		// Reopen the final segment for appending (its torn tail, if any,
		// was truncated by replaySegment).
		last := segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, rec, err
		}
		l.f, l.seg = f, last.seq
	} else {
		if err := l.newSegmentLocked(1); err != nil {
			return nil, rec, err
		}
	}
	l.segments.Store(int64(len(segs)))
	if len(segs) == 0 {
		l.segments.Store(1)
	}
	l.w = bufio.NewWriterSize(l.f, 1<<16)
	return l, rec, nil
}

// newSegmentLocked creates segment seq exclusively and fsyncs the
// directory so the new name survives a crash. Caller holds mu (or is
// Open, pre-publication).
func (l *Log) newSegmentLocked(seq uint64) error {
	name := fmt.Sprintf(segPattern, seq)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.seg = f, seq
	return nil
}

// Append frames and buffers one record, returning its LSN. The record is
// not durable until WaitDurable(lsn) returns; callers must not
// acknowledge the mutation before then.
func (l *Log) Append(op Op, name string, doc []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	lsn := l.nextLSN
	l.scratch = appendPayload(l.scratch[:0], lsn, op, name, doc)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(l.scratch)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(l.scratch, castagnoli))
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.err = err
		return 0, err
	}
	if _, err := l.w.Write(l.scratch); err != nil {
		l.err = err
		return 0, err
	}
	l.nextLSN++
	l.appended = lsn
	l.nAppended.Add(1)
	l.bytes.Add(int64(frameHeader + len(l.scratch)))
	return lsn, nil
}

// WaitDurable blocks until every record up to and including lsn is
// fsync'd, syncing itself if no concurrent waiter has already covered
// it. With a group-commit window configured it first sleeps the window
// so concurrent appends share the fsync.
func (l *Log) WaitDurable(lsn uint64) error {
	if l.synced.Load() >= lsn {
		return nil
	}
	if l.window > 0 {
		time.Sleep(l.window)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.synced.Load() >= lsn {
		// A waiter that reached the lock first synced a batch that covers
		// this record too — the group commit.
		return nil
	}
	return l.syncLocked()
}

// syncLocked flushes the buffer and fsyncs the active segment, advancing
// the durable horizon to every appended record. Caller holds mu.
func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		l.err = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return err
	}
	prev := l.synced.Load()
	l.synced.Store(l.appended)
	l.nFsyncs.Add(1)
	l.nFsynced.Add(l.appended - prev)
	return nil
}

// Rotate seals the active segment (flushing and fsyncing it) and starts
// a new one. It returns the LSN of the last record in the sealed
// segment: once the caller's checkpoint covering that LSN is durable,
// RemoveSealedSegments may delete everything but the new active segment.
func (l *Log) Rotate() (lastLSN uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		l.err = err
		return 0, err
	}
	lastLSN = l.nextLSN - 1
	if err := l.newSegmentLocked(l.seg + 1); err != nil {
		l.err = err
		return 0, err
	}
	l.w = bufio.NewWriterSize(l.f, 1<<16)
	l.segments.Add(1)
	return lastLSN, nil
}

// RemoveSealedSegments deletes every segment except the active one. Call
// only after a checkpoint covering the last Rotate's returned LSN is
// durable; sealed segments hold nothing newer.
func (l *Log) RemoveSealedSegments() error {
	l.mu.Lock()
	active := l.seg
	dir := l.dir
	l.mu.Unlock()
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, s := range segs {
		if s.seq == active {
			continue
		}
		p := filepath.Join(dir, s.name)
		if fi, err := os.Stat(p); err == nil {
			if err := os.Remove(p); err == nil || errors.Is(err, os.ErrNotExist) {
				l.bytes.Add(-fi.Size())
				l.segments.Add(-1)
			} else if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Close flushes, fsyncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.err == nil {
		if err := l.w.Flush(); err == nil {
			l.f.Sync() //nolint:errcheck // best effort on shutdown
		}
	}
	return l.f.Close()
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// AppendedRecords counts records accepted by Append this process.
	AppendedRecords uint64
	// Fsyncs counts fsync calls on the active segment; FsyncedRecords
	// counts the records those fsyncs made durable. Their ratio is the
	// group-commit batching factor.
	Fsyncs         uint64
	FsyncedRecords uint64
	// Bytes is the on-disk size of all live segments; Segments counts
	// them (sealed + active).
	Bytes    int64
	Segments int64
}

// Stats returns the current counters.
func (l *Log) Stats() Stats {
	return Stats{
		AppendedRecords: l.nAppended.Load(),
		Fsyncs:          l.nFsyncs.Load(),
		FsyncedRecords:  l.nFsynced.Load(),
		Bytes:           l.bytes.Load(),
		Segments:        l.segments.Load(),
	}
}

// appendPayload encodes a record payload (everything the CRC covers).
func appendPayload(buf []byte, lsn uint64, op Op, name string, doc []byte) []byte {
	buf = binary.AppendUvarint(buf, lsn)
	buf = append(buf, byte(op))
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(doc)))
	buf = append(buf, doc...)
	return buf
}

// decodePayload is the inverse of appendPayload.
func decodePayload(p []byte) (Record, error) {
	var r Record
	lsn, n := binary.Uvarint(p)
	if n <= 0 {
		return r, errors.New("bad lsn")
	}
	p = p[n:]
	if len(p) < 1 {
		return r, errors.New("missing op")
	}
	r.LSN, r.Op = lsn, Op(p[0])
	p = p[1:]
	nameLen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < nameLen {
		return r, errors.New("bad name length")
	}
	r.Name = string(p[n : n+int(nameLen)])
	p = p[n+int(nameLen):]
	docLen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) != docLen {
		return r, errors.New("bad doc length")
	}
	if docLen > 0 {
		r.Doc = append([]byte(nil), p[n:]...)
	}
	return r, nil
}

type segment struct {
	name string
	seq  uint64
}

// listSegments returns the log's segments sorted by sequence number.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segment{name: name, seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

type replayResult struct {
	valid    int64 // bytes of the segment holding valid records
	scanned  int
	replayed int
	torn     int64
	lastLSN  uint64
}

// replaySegment parses one segment, applying records with LSN >
// afterLSN. A torn tail (short frame, bad CRC, garbage length,
// non-monotone LSN — anything pure truncation or a crashed write can
// leave) is truncated off the final segment; in a sealed segment it is
// corruption and an error. prevLSN is the highest LSN of earlier
// segments, extending the monotonicity check across segment boundaries.
func replaySegment(path string, last bool, afterLSN, prevLSN uint64, apply func(Record) error) (replayResult, error) {
	var res replayResult
	f, err := os.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	lastLSN := prevLSN
	var off int64
	torn := func() (replayResult, error) {
		fi, err := f.Stat()
		if err != nil {
			return res, err
		}
		res.torn = fi.Size() - res.valid
		res.lastLSN = lastLSN
		if !last {
			return res, fmt.Errorf("torn record at offset %d of sealed segment", res.valid)
		}
		if res.torn > 0 {
			if err := os.Truncate(path, res.valid); err != nil {
				return res, err
			}
		}
		return res, nil
	}
	for {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				res.lastLSN = lastLSN
				return res, nil // clean end
			}
			return torn() // partial header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordLen {
			return torn()
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return torn() // partial payload
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return torn()
		}
		rec, err := decodePayload(payload)
		if err != nil || rec.LSN <= lastLSN {
			// CRC-valid but undecodable or out of order: treat as the
			// start of garbage, not a fatal error — recover the prefix.
			return torn()
		}
		off += frameHeader + int64(n)
		res.valid = off
		res.scanned++
		lastLSN = rec.LSN
		if rec.LSN > afterLSN && apply != nil {
			if err := apply(rec); err != nil {
				return res, fmt.Errorf("replay record lsn=%d: %w", rec.LSN, err)
			}
			res.replayed++
		}
	}
}
