package tpq

import (
	"sort"
	"testing"
)

func testHierarchy() *Hierarchy {
	return NewHierarchy(map[string]string{
		"article":   "publication",
		"book":      "publication",
		"thesis":    "book",
		"paragraph": "block",
	})
}

func TestHierarchyBasics(t *testing.T) {
	h := testHierarchy()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if s, ok := h.Supertype("article"); !ok || s != "publication" {
		t.Errorf("Supertype(article) = %q, %v", s, ok)
	}
	if _, ok := h.Supertype("publication"); ok {
		t.Error("publication should have no supertype")
	}
	cases := []struct {
		a, b string
		want bool
	}{
		{"article", "article", true},
		{"article", "publication", true},
		{"thesis", "publication", true}, // transitive
		{"thesis", "book", true},
		{"publication", "article", false}, // wrong direction
		{"article", "book", false},        // siblings
		{"unknown", "publication", false},
	}
	for _, c := range cases {
		if got := h.IsSubtypeOf(c.a, c.b); got != c.want {
			t.Errorf("IsSubtypeOf(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHierarchySubtypes(t *testing.T) {
	h := testHierarchy()
	got := h.Subtypes("publication")
	sort.Strings(got)
	want := []string{"article", "book", "publication", "thesis"}
	if len(got) != len(want) {
		t.Fatalf("Subtypes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subtypes = %v, want %v", got, want)
		}
	}
	if got := h.Subtypes("article"); len(got) != 1 || got[0] != "article" {
		t.Errorf("Subtypes(article) = %v", got)
	}
}

func TestHierarchyNil(t *testing.T) {
	var h *Hierarchy
	if !h.IsSubtypeOf("a", "a") {
		t.Error("nil hierarchy should still treat equal tags as subtypes")
	}
	if h.IsSubtypeOf("a", "b") {
		t.Error("nil hierarchy related distinct tags")
	}
	if got := h.Subtypes("a"); len(got) != 1 {
		t.Errorf("nil Subtypes = %v", got)
	}
}

func TestHierarchyCycle(t *testing.T) {
	h := NewHierarchy(map[string]string{"a": "b", "b": "c", "c": "a"})
	if err := h.Validate(); err == nil {
		t.Error("cycle not detected")
	}
}

// TestContainedInWith: the tag-relaxed query (supertype) contains the
// original (subtype).
func TestContainedInWith(t *testing.T) {
	h := testHierarchy()
	sub := MustParse(`//article[./section]`)
	super := MustParse(`//publication[./section]`)
	if !ContainedInWith(sub, super, h) {
		t.Error("//article should be contained in //publication under the hierarchy")
	}
	if ContainedInWith(super, sub, h) {
		t.Error("//publication must not be contained in //article")
	}
	// Without the hierarchy, no containment either way.
	if ContainedInWith(sub, super, nil) {
		t.Error("containment without hierarchy should fail")
	}
	// Reduces to ContainedIn for nil hierarchies.
	a := MustParse(`//a[./b]`)
	b := MustParse(`//a[.//b]`)
	if ContainedInWith(a, b, nil) != ContainedIn(a, b) {
		t.Error("nil-hierarchy ContainedInWith disagrees with ContainedIn")
	}
}
