// Package tpq implements tree pattern queries (TPQs), the XPath fragment
// FleXPath operates on (§2.1 of the paper).
//
// A TPQ is a rooted tree whose nodes are query variables carrying a tag
// constraint, optional value-based predicates and optional contains
// (full-text) predicates; edges are parent-child (pc) or
// ancestor-descendant (ad); one node is distinguished and identifies the
// answers. The package provides:
//
//   - the query model and a parser for a mini-XPath syntax;
//   - the logical predicate form, its closure under the paper's three
//     inference rules (Figure 3), and the unique minimal core (Theorem 1);
//   - query containment via homomorphism, sound and complete for this
//     wildcard-free fragment;
//   - exact evaluation hooks used by the relaxation and ranking layers.
package tpq

import (
	"fmt"
	"sort"
	"strings"

	"flexpath/internal/ir"
)

// Axis is the structural relationship between a query node and its parent.
type Axis int8

const (
	// Child is the parent-child (pc) axis, written "/".
	Child Axis = iota
	// Descendant is the ancestor-descendant (ad) axis, written "//".
	Descendant
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// CmpOp is a comparison operator of a value-based predicate.
type CmpOp int8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var cmpNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

// String implements fmt.Stringer.
func (op CmpOp) String() string { return cmpNames[op] }

// ValuePred is a value-based predicate $i.attr relOp value (§2.1). An
// empty Attr compares the element's own text content ($i.content, the
// paper's footnote example "$i.content > 5"). The comparison is numeric
// when both sides parse as numbers, lexicographic otherwise.
type ValuePred struct {
	Attr  string
	Op    CmpOp
	Value string
}

// String implements fmt.Stringer.
func (v ValuePred) String() string {
	if v.Attr == "" {
		return fmt.Sprintf(". %s %q", v.Op, v.Value)
	}
	return fmt.Sprintf("@%s %s %q", v.Attr, v.Op, v.Value)
}

// Node is one query variable. ID is the variable's stable identity: it is
// assigned at parse time and preserved by every relaxation operation, so
// that predicates of the original query's closure can be tracked across
// relaxed queries.
type Node struct {
	ID       int
	Tag      string
	Contains []ir.Expr
	Values   []ValuePred
	// Parent is the index (not ID) of the parent node in Query.Nodes, or
	// -1 for the root. Axis is the edge type from the parent.
	Parent int
	Axis   Axis
	// Weight is the user-specified weight of the edge from the parent
	// (§4.1: "this weight may be user-specified"); 0 means the ranking
	// scheme's default. Written `tag^2.5` in query syntax.
	Weight float64
}

// Query is an immutable tree pattern query. Nodes[0] is the root and nodes
// are stored in pre-order (operations re-normalize). Dist indexes the
// distinguished node.
type Query struct {
	Nodes []Node
	Dist  int
}

// Clone returns a deep copy of q.
func (q *Query) Clone() *Query {
	out := &Query{Nodes: make([]Node, len(q.Nodes)), Dist: q.Dist}
	copy(out.Nodes, q.Nodes)
	for i := range out.Nodes {
		out.Nodes[i].Contains = append([]ir.Expr(nil), q.Nodes[i].Contains...)
		out.Nodes[i].Values = append([]ValuePred(nil), q.Nodes[i].Values...)
	}
	return out
}

// Root returns the index of the root node (always 0 in normalized form).
func (q *Query) Root() int { return 0 }

// Children returns the indexes of i's children, ordered as stored.
func (q *Query) Children(i int) []int {
	var out []int
	for j := range q.Nodes {
		if q.Nodes[j].Parent == i {
			out = append(out, j)
		}
	}
	return out
}

// IsLeaf reports whether node i has no children.
func (q *Query) IsLeaf(i int) bool {
	for j := range q.Nodes {
		if q.Nodes[j].Parent == i {
			return false
		}
	}
	return true
}

// NodeByID returns the index of the node with the given stable ID, or -1.
func (q *Query) NodeByID(id int) int {
	for i := range q.Nodes {
		if q.Nodes[i].ID == id {
			return i
		}
	}
	return -1
}

// Size returns the number of query variables.
func (q *Query) Size() int { return len(q.Nodes) }

// Validate checks the tree-pattern invariants: exactly one root at index
// 0, acyclic parent links, pre-order layout, a valid distinguished node,
// and unique stable IDs.
func (q *Query) Validate() error {
	if len(q.Nodes) == 0 {
		return fmt.Errorf("tpq: empty query")
	}
	if q.Nodes[0].Parent != -1 {
		return fmt.Errorf("tpq: node 0 is not the root")
	}
	ids := make(map[int]bool, len(q.Nodes))
	for i, n := range q.Nodes {
		if i > 0 && (n.Parent < 0 || n.Parent >= i) {
			return fmt.Errorf("tpq: node %d has invalid parent %d (not pre-order)", i, n.Parent)
		}
		if i > 0 && n.Parent == -1 {
			return fmt.Errorf("tpq: multiple roots")
		}
		if ids[n.ID] {
			return fmt.Errorf("tpq: duplicate variable id $%d", n.ID)
		}
		ids[n.ID] = true
		if n.Tag == "" {
			return fmt.Errorf("tpq: node $%d has no tag", n.ID)
		}
	}
	if q.Dist < 0 || q.Dist >= len(q.Nodes) {
		return fmt.Errorf("tpq: invalid distinguished node %d", q.Dist)
	}
	return nil
}

// Normalize rewrites Nodes into pre-order with children ordered by stable
// ID, preserving the distinguished node. It must be called after any
// structural edit.
func (q *Query) Normalize() { q.normalize() }

func (q *Query) normalize() {
	rootIdx := -1
	for i := range q.Nodes {
		if q.Nodes[i].Parent == -1 {
			rootIdx = i
			break
		}
	}
	if rootIdx == -1 {
		return
	}
	children := make(map[int][]int, len(q.Nodes))
	for i := range q.Nodes {
		if p := q.Nodes[i].Parent; p != -1 {
			children[p] = append(children[p], i)
		}
	}
	for _, cs := range children {
		sort.Slice(cs, func(a, b int) bool { return q.Nodes[cs[a]].ID < q.Nodes[cs[b]].ID })
	}
	order := make([]int, 0, len(q.Nodes))
	var visit func(int)
	visit = func(i int) {
		order = append(order, i)
		for _, c := range children[i] {
			visit(c)
		}
	}
	visit(rootIdx)
	oldToNew := make(map[int]int, len(order))
	for newIdx, oldIdx := range order {
		oldToNew[oldIdx] = newIdx
	}
	newNodes := make([]Node, len(order))
	for newIdx, oldIdx := range order {
		n := q.Nodes[oldIdx]
		if n.Parent != -1 {
			n.Parent = oldToNew[n.Parent]
		}
		newNodes[newIdx] = n
	}
	q.Nodes = newNodes
	q.Dist = oldToNew[q.Dist]
}

// String renders the query in the paper's XPath-like syntax.
func (q *Query) String() string {
	var render func(i int) string
	render = func(i int) string {
		n := q.Nodes[i]
		var sb strings.Builder
		sb.WriteString(n.Tag)
		var preds []string
		for _, v := range n.Values {
			preds = append(preds, fmt.Sprintf("@%s %s %s", v.Attr, v.Op, v.Value))
		}
		for _, e := range n.Contains {
			preds = append(preds, ".contains("+e.Canon()+")")
		}
		for _, c := range q.Children(i) {
			preds = append(preds, "."+q.Nodes[c].Axis.String()+render(c))
		}
		if len(preds) > 0 {
			sb.WriteString("[" + strings.Join(preds, " and ") + "]")
		}
		return sb.String()
	}
	s := "//" + render(0)
	if q.Dist != 0 {
		s += fmt.Sprintf(" (answers: $%d)", q.Nodes[q.Dist].ID)
	}
	return s
}

// Canon returns a canonical serialization of the query, independent of
// node storage order and of variable IDs' numeric values. Two queries with
// the same Canon are isomorphic (same shape, tags, axes, predicates and
// distinguished position).
func (q *Query) Canon() string {
	var render func(i int) string
	render = func(i int) string {
		n := q.Nodes[i]
		var sb strings.Builder
		if n.Parent != -1 {
			// The root's axis is meaningless (it has no parent) and must
			// not distinguish otherwise-identical queries.
			sb.WriteString(n.Axis.String())
		}
		sb.WriteString(n.Tag)
		if n.Weight > 0 {
			fmt.Fprintf(&sb, "^%g", n.Weight)
		}
		var preds []string
		for _, v := range n.Values {
			preds = append(preds, "v:"+v.String())
		}
		for _, e := range n.Contains {
			preds = append(preds, "c:"+e.Canon())
		}
		sort.Strings(preds)
		if i == q.Dist {
			preds = append(preds, "!dist")
		}
		var kids []string
		for _, c := range q.Children(i) {
			kids = append(kids, render(c))
		}
		sort.Strings(kids)
		sb.WriteString("[" + strings.Join(preds, ";") + "]")
		sb.WriteString("(" + strings.Join(kids, "") + ")")
		return sb.String()
	}
	return render(0)
}

// HasContains reports whether any node carries a contains predicate.
func (q *Query) HasContains() bool {
	for i := range q.Nodes {
		if len(q.Nodes[i].Contains) > 0 {
			return true
		}
	}
	return false
}

// NumContains returns the total number of contains predicates, the "m" of
// the Combined-scheme pruning rule in §5.1.
func (q *Query) NumContains() int {
	n := 0
	for i := range q.Nodes {
		n += len(q.Nodes[i].Contains)
	}
	return n
}

// AncestorOf reports whether node a is a proper ancestor of node b (by
// index).
func (q *Query) AncestorOf(a, b int) bool {
	for p := q.Nodes[b].Parent; p != -1; p = q.Nodes[p].Parent {
		if p == a {
			return true
		}
	}
	return false
}
