package tpq

import "testing"

// FuzzParse: the query parser must never panic; accepted queries must
// validate, have a computable closure and a stable canonical form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`//a`, `//a/b/c`, `//a[./b and .//c]`,
		`//a[.contains("x" and "y")]`, `//a[@p < 10]`, `//a[./b < 3]`,
		`//a[./b^2.5]`, `//a[`, `//`, `a]b[`, `//a[./b[./c[./d]]]`,
		`//a[. = "x"]`, `//a[contains(., x)]`, `//ä[./ü]`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted invalid query %q: %v", src, err)
		}
		if q.Canon() != q.Clone().Canon() {
			t.Fatalf("canon not stable for %q", src)
		}
		cl := ClosureOf(q)
		if cl.Len() < Logical(q).Len() {
			t.Fatalf("closure smaller than logical form for %q", src)
		}
		// Minimization must succeed on everything the parser accepts.
		m, err := Minimize(q)
		if err != nil {
			t.Fatalf("minimize failed for %q: %v", src, err)
		}
		if !Equivalent(q, m) {
			t.Fatalf("minimize changed semantics of %q", src)
		}
	})
}
