package tpq

import (
	"testing"
)

// The six queries of the paper's Figure 1. Variable numbering matches the
// paper: $1=article, $2=section, $3=algorithm, $4=paragraph.
const (
	srcQ1 = `//article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]`
	srcQ2 = `//article[./section[./algorithm and ./paragraph and .contains("XML" and "streaming")]]`
	srcQ3 = `//article[.//algorithm and ./section[./paragraph[.contains("XML" and "streaming")]]]`
	srcQ4 = `//article[.//algorithm and ./section[./paragraph and .contains("XML" and "streaming")]]`
	srcQ5 = `//article[./section[./paragraph and .contains("XML" and "streaming")]]`
	srcQ6 = `//article[.contains("XML" and "streaming")]`
)

func TestParseQ1Shape(t *testing.T) {
	q := MustParse(srcQ1)
	if q.Size() != 4 {
		t.Fatalf("Q1 has %d nodes, want 4", q.Size())
	}
	if q.Nodes[0].Tag != "article" || q.Dist != 0 {
		t.Fatalf("root/distinguished wrong: %+v dist=%d", q.Nodes[0], q.Dist)
	}
	tags := map[string]bool{}
	for _, n := range q.Nodes {
		tags[n.Tag] = true
	}
	for _, want := range []string{"article", "section", "algorithm", "paragraph"} {
		if !tags[want] {
			t.Errorf("missing node %q", want)
		}
	}
	// paragraph carries the contains predicate.
	pi := -1
	for i, n := range q.Nodes {
		if n.Tag == "paragraph" {
			pi = i
		}
	}
	if pi < 0 || len(q.Nodes[pi].Contains) != 1 {
		t.Fatalf("paragraph contains predicates wrong")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMainPathDistinguished(t *testing.T) {
	q := MustParse(`//site/regions//item[./name]`)
	if q.Nodes[q.Dist].Tag != "item" {
		t.Errorf("distinguished = %s, want item", q.Nodes[q.Dist].Tag)
	}
	if q.Size() != 4 {
		t.Errorf("size = %d", q.Size())
	}
}

func TestParseAxes(t *testing.T) {
	q := MustParse(`//a[.//b and ./c]`)
	for _, n := range q.Nodes[1:] {
		switch n.Tag {
		case "b":
			if n.Axis != Descendant {
				t.Error("b should be //")
			}
		case "c":
			if n.Axis != Child {
				t.Error("c should be /")
			}
		}
	}
}

func TestParseValuePredicates(t *testing.T) {
	q := MustParse(`//book[@price < 100 and @lang = "en" and ./title]`)
	root := q.Nodes[0]
	if len(root.Values) != 2 {
		t.Fatalf("value preds = %d, want 2", len(root.Values))
	}
	if root.Values[0].Attr != "price" || root.Values[0].Op != OpLt || root.Values[0].Value != "100" {
		t.Errorf("first value pred = %+v", root.Values[0])
	}
	if root.Values[1].Attr != "lang" || root.Values[1].Op != OpEq || root.Values[1].Value != "en" {
		t.Errorf("second value pred = %+v", root.Values[1])
	}
}

func TestParseContainsVariants(t *testing.T) {
	a := MustParse(`//p[.contains("xml")]`)
	b := MustParse(`//p[contains(., "xml")]`)
	if a.Canon() != b.Canon() {
		t.Errorf(".contains and contains(.,) differ: %q vs %q", a.Canon(), b.Canon())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`article`,        // missing axis
		`//`,             // missing name
		`//a[`,           // unclosed predicate
		`//a[./]`,        // empty step
		`//a[@]`,         // missing attribute
		`//a[@p ~ 3]`,    // bad operator
		`//a[.contains(`, // unterminated contains
		`//a] trailing`,  // trailing junk
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestClosureFigure4 checks the closure of Q1 against the paper's Figure 4
// predicate by predicate.
func TestClosureFigure4(t *testing.T) {
	q := MustParse(srcQ1)
	cl := ClosureOf(q)
	e := q.Nodes[qIndex(q, "paragraph")].Contains[0]
	want := []Pred{
		{Kind: PredPC, X: 1, Y: 2},
		{Kind: PredPC, X: 2, Y: 3},
		{Kind: PredPC, X: 2, Y: 4},
		{Kind: PredTag, X: 1, Tag: "article"},
		{Kind: PredTag, X: 2, Tag: "section"},
		{Kind: PredTag, X: 3, Tag: "algorithm"},
		{Kind: PredTag, X: 4, Tag: "paragraph"},
		{Kind: PredContains, X: 4, Expr: e},
		{Kind: PredAD, X: 1, Y: 2},
		{Kind: PredAD, X: 2, Y: 3},
		{Kind: PredAD, X: 2, Y: 4},
		{Kind: PredAD, X: 1, Y: 3},
		{Kind: PredAD, X: 1, Y: 4},
		{Kind: PredContains, X: 2, Expr: e},
		{Kind: PredContains, X: 1, Expr: e},
	}
	if cl.Len() != len(want) {
		t.Errorf("closure has %d predicates, want %d:\n%s", cl.Len(), len(want), cl)
	}
	for _, p := range want {
		if !cl.Has(p) {
			t.Errorf("closure missing %s", p.Key())
		}
	}
}

func qIndex(q *Query, tag string) int {
	for i := range q.Nodes {
		if q.Nodes[i].Tag == tag {
			return i
		}
	}
	return -1
}

func TestClosureIdempotent(t *testing.T) {
	for _, src := range []string{srcQ1, srcQ3, srcQ5, srcQ6} {
		cl := ClosureOf(MustParse(src))
		again := Closure(cl)
		if !cl.Equal(again) {
			t.Errorf("closure of %s not idempotent", src)
		}
	}
}

func TestDerivable(t *testing.T) {
	q := MustParse(srcQ1)
	cl := ClosureOf(q)
	e := q.Nodes[qIndex(q, "paragraph")].Contains[0]
	derivable := []Pred{
		{Kind: PredAD, X: 1, Y: 2}, // from pc(1,2)
		{Kind: PredAD, X: 1, Y: 3}, // from ad(1,2), ad(2,3)
		{Kind: PredContains, X: 1, Expr: e},
		{Kind: PredContains, X: 2, Expr: e},
	}
	for _, p := range derivable {
		if !Derivable(cl, p) {
			t.Errorf("%s should be derivable", p.Key())
		}
	}
	notDerivable := []Pred{
		{Kind: PredPC, X: 1, Y: 2},
		{Kind: PredPC, X: 2, Y: 3},
		{Kind: PredContains, X: 4, Expr: e},
		{Kind: PredTag, X: 1, Tag: "article"},
	}
	for _, p := range notDerivable {
		if Derivable(cl, p) {
			t.Errorf("%s should not be derivable", p.Key())
		}
	}
}

// TestCoreFigure5 reproduces §3.3: the core of closure(Q1) minus
// {pc($2,$3), ad($2,$3)} is exactly query Q3 of Figure 1 (Figure 5 lists
// its predicates).
func TestCoreFigure5(t *testing.T) {
	q := MustParse(srcQ1)
	cl := ClosureOf(q)
	reduced := cl.Minus(
		Pred{Kind: PredPC, X: 2, Y: 3},
		Pred{Kind: PredAD, X: 2, Y: 3},
	)
	core := Core(reduced)
	e := q.Nodes[qIndex(q, "paragraph")].Contains[0]
	wantPresent := []Pred{
		{Kind: PredPC, X: 1, Y: 2},
		{Kind: PredPC, X: 2, Y: 4},
		{Kind: PredAD, X: 1, Y: 3},
		{Kind: PredContains, X: 4, Expr: e},
	}
	for _, p := range wantPresent {
		if !core.Has(p) {
			t.Errorf("core missing %s:\n%s", p.Key(), core)
		}
	}
	wantAbsent := []Pred{
		{Kind: PredAD, X: 1, Y: 2},
		{Kind: PredAD, X: 1, Y: 4},
		{Kind: PredAD, X: 2, Y: 4},
		{Kind: PredContains, X: 1, Expr: e},
		{Kind: PredContains, X: 2, Expr: e},
	}
	for _, p := range wantAbsent {
		if core.Has(p) {
			t.Errorf("core should not contain %s", p.Key())
		}
	}
	// Rebuilding the tree yields Q3.
	got, err := TreeFromPreds(core, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Canon() != MustParse(srcQ3).Canon() {
		t.Errorf("rebuilt query = %s\nwant shape of %s", got, srcQ3)
	}
}

// TestNonRelaxation reproduces the §3.3 negative example: dropping only
// ad($1,$3) from closure(Q1) yields an equivalent query (it is derivable),
// so it is not a relaxation.
func TestNonRelaxation(t *testing.T) {
	q := MustParse(srcQ1)
	cl := ClosureOf(q)
	p := Pred{Kind: PredAD, X: 1, Y: 3}
	if !Derivable(cl, p) {
		t.Fatal("ad($1,$3) should be derivable from the rest of the closure")
	}
	reduced := cl.Minus(p)
	got, err := TreeFromPreds(Core(reduced), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(got, q) {
		t.Error("dropping a derivable predicate changed the query")
	}
}

func TestTreeFromPredsErrors(t *testing.T) {
	// Missing tag.
	s := NewPredSet()
	s.Add(Pred{Kind: PredPC, X: 1, Y: 2})
	s.Add(Pred{Kind: PredTag, X: 1, Tag: "a"})
	if _, err := TreeFromPreds(s, 1); err == nil {
		t.Error("accepted variable without tag")
	}
	// Two roots (disconnected).
	s = NewPredSet()
	s.Add(Pred{Kind: PredTag, X: 1, Tag: "a"})
	s.Add(Pred{Kind: PredTag, X: 2, Tag: "b"})
	if _, err := TreeFromPreds(s, 1); err == nil {
		t.Error("accepted two roots")
	}
	// Two incoming edges.
	s = NewPredSet()
	s.Add(Pred{Kind: PredTag, X: 1, Tag: "a"})
	s.Add(Pred{Kind: PredTag, X: 2, Tag: "b"})
	s.Add(Pred{Kind: PredTag, X: 3, Tag: "c"})
	s.Add(Pred{Kind: PredPC, X: 1, Y: 2})
	s.Add(Pred{Kind: PredPC, X: 1, Y: 3})
	s.Add(Pred{Kind: PredAD, X: 2, Y: 3})
	if _, err := TreeFromPreds(s, 1); err == nil {
		t.Error("accepted DAG (two incoming edges)")
	}
	// Missing distinguished variable.
	s = NewPredSet()
	s.Add(Pred{Kind: PredTag, X: 1, Tag: "a"})
	if _, err := TreeFromPreds(s, 9); err == nil {
		t.Error("accepted missing distinguished variable")
	}
}

func TestCanonInvariance(t *testing.T) {
	// Same pattern written with branches in different orders.
	a := MustParse(`//a[./b and ./c]`)
	b := MustParse(`//a[./c and ./b]`)
	if a.Canon() != b.Canon() {
		t.Errorf("canon differs for reordered branches:\n%s\n%s", a.Canon(), b.Canon())
	}
	c := MustParse(`//a[.//b and ./c]`)
	if a.Canon() == c.Canon() {
		t.Error("canon ignores axes")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse(srcQ1)
	c := q.Clone()
	c.Nodes[0].Tag = "changed"
	c.Nodes[qIndex(c, "paragraph")].Contains = nil
	if q.Nodes[0].Tag != "article" {
		t.Error("clone shares node storage")
	}
	if len(q.Nodes[qIndex(q, "paragraph")].Contains) != 1 {
		t.Error("clone shares contains storage")
	}
}

func TestStringRendering(t *testing.T) {
	q := MustParse(srcQ1)
	s := q.String()
	for _, frag := range []string{"article", "section", "algorithm", "paragraph", "contains"} {
		if !contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
