package tpq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFigure1Lattice verifies the containment relationships the paper
// states for Figure 1: Q1 ⊂ Q2, Q1 ⊂ Q3, Q2 ⊂ Q4, Q3 ⊂ Q4, Q4 ⊂ Q5, and
// Q6 contains all of them.
func TestFigure1Lattice(t *testing.T) {
	q := map[string]*Query{
		"Q1": MustParse(srcQ1), "Q2": MustParse(srcQ2), "Q3": MustParse(srcQ3),
		"Q4": MustParse(srcQ4), "Q5": MustParse(srcQ5), "Q6": MustParse(srcQ6),
	}
	strict := [][2]string{
		{"Q1", "Q2"}, {"Q1", "Q3"}, {"Q2", "Q4"}, {"Q3", "Q4"}, {"Q4", "Q5"},
		{"Q1", "Q6"}, {"Q2", "Q6"}, {"Q3", "Q6"}, {"Q4", "Q6"}, {"Q5", "Q6"},
	}
	for _, pair := range strict {
		a, b := q[pair[0]], q[pair[1]]
		if !ContainedIn(a, b) {
			t.Errorf("%s should be contained in %s", pair[0], pair[1])
		}
		if ContainedIn(b, a) {
			t.Errorf("%s should NOT be contained in %s", pair[1], pair[0])
		}
	}
	// Q2 and Q3 are incomparable.
	if ContainedIn(q["Q2"], q["Q3"]) || ContainedIn(q["Q3"], q["Q2"]) {
		t.Error("Q2 and Q3 should be incomparable")
	}
}

func TestSelfContainment(t *testing.T) {
	for _, src := range []string{srcQ1, srcQ2, srcQ3, srcQ4, srcQ5, srcQ6} {
		qq := MustParse(src)
		if !ContainedIn(qq, qq) {
			t.Errorf("%s not contained in itself", src)
		}
		if !Equivalent(qq, qq.Clone()) {
			t.Errorf("%s not equivalent to its clone", src)
		}
	}
}

func TestContainmentAxis(t *testing.T) {
	pc := MustParse(`//a[./b]`)
	ad := MustParse(`//a[.//b]`)
	if !StrictlyContainedIn(pc, ad) {
		t.Error("//a[./b] should be strictly contained in //a[.//b]")
	}
}

func TestContainmentDistinguished(t *testing.T) {
	// Same shape, different distinguished node: no containment.
	a := MustParse(`//a/b`)    // answers: b
	b := MustParse(`//a[./b]`) // answers: a
	if ContainedIn(a, b) || ContainedIn(b, a) {
		t.Error("queries with different distinguished tags must be incomparable")
	}
}

func TestContainmentContains(t *testing.T) {
	with := MustParse(`//a[./b[.contains("gold")]]`)
	promoted := MustParse(`//a[./b and .contains("gold")]`)
	without := MustParse(`//a[./b]`)
	if !StrictlyContainedIn(with, promoted) {
		t.Error("contains promotion must strictly contain the original")
	}
	if !StrictlyContainedIn(with, without) {
		t.Error("dropping contains must contain the original")
	}
	if ContainedIn(without, with) {
		t.Error("query without contains cannot be contained in one with it")
	}
}

func TestContainmentValuePreds(t *testing.T) {
	a := MustParse(`//a[@x = 1 and ./b]`)
	b := MustParse(`//a[./b]`)
	if !StrictlyContainedIn(a, b) {
		t.Error("dropping a value predicate must relax")
	}
}

// randomQuery builds a small random TPQ over a tiny tag alphabet.
func randomQuery(r *rand.Rand) *Query {
	tags := []string{"a", "b", "c"}
	n := 2 + r.Intn(4)
	q := &Query{}
	for i := 0; i < n; i++ {
		node := Node{ID: i + 1, Tag: tags[r.Intn(len(tags))], Parent: -1}
		if i > 0 {
			node.Parent = r.Intn(i)
			if r.Intn(2) == 0 {
				node.Axis = Descendant
			}
		}
		q.Nodes = append(q.Nodes, node)
	}
	q.Dist = 0
	q.Normalize()
	return q
}

// TestPropertyContainmentReflexiveTransitive samples random query triples
// and checks reflexivity plus transitivity of the containment test.
func TestPropertyContainmentReflexiveTransitive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomQuery(r), randomQuery(r), randomQuery(r)
		if !ContainedIn(a, a) {
			return false
		}
		if ContainedIn(a, b) && ContainedIn(b, c) && !ContainedIn(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCoreUnique removes redundant predicates in random orders and
// checks the result is always the same set (Theorem 1).
func TestPropertyCoreUnique(t *testing.T) {
	coreRandomOrder := func(s *PredSet, r *rand.Rand) *PredSet {
		cur := Closure(s)
		for {
			preds := cur.List()
			r.Shuffle(len(preds), func(i, j int) { preds[i], preds[j] = preds[j], preds[i] })
			removed := false
			for _, p := range preds {
				if p.Kind != PredPC && p.Kind != PredAD && p.Kind != PredContains {
					continue
				}
				if Derivable(cur, p) {
					cur.Remove(p)
					removed = true
					break
				}
			}
			if !removed {
				return cur
			}
		}
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		want := CoreOf(q)
		for trial := 0; trial < 4; trial++ {
			got := coreRandomOrder(Logical(q), r)
			if !got.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyClosureEquivalence: a query rebuilt from the core of its
// closure is equivalent to the original.
func TestPropertyClosureEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		rebuilt, err := TreeFromPreds(CoreOf(q), q.Nodes[q.Dist].ID)
		if err != nil {
			return false
		}
		return Equivalent(q, rebuilt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMinimize: node-level minimization prunes homomorphism-redundant
// branches (Flesca et al.); minimization preserves equivalence.
func TestMinimize(t *testing.T) {
	cases := []struct {
		src  string
		vars int
	}{
		{`//a[./b and .//b]`, 2},                // .//b implied by ./b
		{`//a[./b/c and ./b]`, 3},               // bare ./b implied by ./b/c
		{`//a[./b and ./c]`, 3},                 // nothing redundant
		{`//a[.//b[./c] and .//b]`, 3},          // second .//b implied
		{`//a[./b[.contains("x")] and ./b]`, 2}, // plain ./b implied by the constrained one
	}
	for _, c := range cases {
		q := MustParse(c.src)
		m, err := Minimize(q)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if m.Size() != c.vars {
			t.Errorf("%s minimized to %d vars, want %d: %s", c.src, m.Size(), c.vars, m)
		}
		if !Equivalent(q, m) {
			t.Errorf("%s: minimization changed semantics: %s", c.src, m)
		}
	}
}

// TestMinimizeKeepsDistinguished: branches containing the distinguished
// node are never pruned even when structurally redundant.
func TestMinimizeKeepsDistinguished(t *testing.T) {
	q := MustParse(`//a[.//b]/b`) // distinguished b; .//b branch is implied by /b
	m, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes[m.Dist].Tag != "b" {
		t.Fatalf("distinguished lost: %s", m)
	}
	if !Equivalent(q, m) {
		t.Error("semantics changed")
	}
}

// TestPropertyMinimizeIdempotentAndEquivalent on random queries.
func TestPropertyMinimizeIdempotentAndEquivalent(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		m, err := Minimize(q)
		if err != nil {
			return false
		}
		if !Equivalent(q, m) {
			return false
		}
		m2, err := Minimize(m)
		if err != nil {
			return false
		}
		return m2.Size() == m.Size() && Equivalent(m, m2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
