package tpq

import (
	"fmt"
	"sort"
	"strings"

	"flexpath/internal/ir"
)

// PredKind identifies the kind of a logical predicate.
type PredKind int8

// Predicate kinds. PC and AD are the structural predicates; Tag, Contains
// and Value are value-based.
const (
	PredPC PredKind = iota
	PredAD
	PredTag
	PredContains
	PredValue
)

// Pred is one predicate of a query's logical form (§2.1, Figure 2). X and
// Y refer to variables by their stable IDs, so predicates remain
// meaningful across relaxations of the same original query.
type Pred struct {
	Kind PredKind
	X    int // subject variable
	Y    int // object variable, for PC/AD
	Tag  string
	Expr ir.Expr
	VP   ValuePred
}

// Key returns a canonical identity string for the predicate.
func (p Pred) Key() string {
	switch p.Kind {
	case PredPC:
		return fmt.Sprintf("pc($%d,$%d)", p.X, p.Y)
	case PredAD:
		return fmt.Sprintf("ad($%d,$%d)", p.X, p.Y)
	case PredTag:
		return fmt.Sprintf("tag($%d)=%s", p.X, p.Tag)
	case PredContains:
		return fmt.Sprintf("contains($%d,%s)", p.X, p.Expr.Canon())
	default:
		return fmt.Sprintf("value($%d,%s)", p.X, p.VP.String())
	}
}

// String implements fmt.Stringer.
func (p Pred) String() string { return p.Key() }

// PredSet is a set of predicates keyed by canonical identity.
type PredSet struct {
	m map[string]Pred
}

// NewPredSet returns an empty predicate set.
func NewPredSet() *PredSet { return &PredSet{m: make(map[string]Pred)} }

// Add inserts p; it reports whether p was new.
func (s *PredSet) Add(p Pred) bool {
	k := p.Key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = p
	return true
}

// Has reports whether p is in the set.
func (s *PredSet) Has(p Pred) bool {
	_, ok := s.m[p.Key()]
	return ok
}

// HasKey reports whether a predicate with the given key is in the set.
func (s *PredSet) HasKey(key string) bool {
	_, ok := s.m[key]
	return ok
}

// Remove deletes p from the set.
func (s *PredSet) Remove(p Pred) { delete(s.m, p.Key()) }

// Len returns the number of predicates.
func (s *PredSet) Len() int { return len(s.m) }

// Clone returns a copy of the set.
func (s *PredSet) Clone() *PredSet {
	out := NewPredSet()
	for k, v := range s.m {
		out.m[k] = v
	}
	return out
}

// List returns the predicates sorted by canonical key, for deterministic
// iteration.
func (s *PredSet) List() []Pred {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Pred, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	return out
}

// Equal reports whether two sets contain the same predicates.
func (s *PredSet) Equal(o *PredSet) bool {
	if len(s.m) != len(o.m) {
		return false
	}
	for k := range s.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// Minus returns s with the given predicates removed (the C - S of
// Definition 1).
func (s *PredSet) Minus(drop ...Pred) *PredSet {
	out := s.Clone()
	for _, p := range drop {
		out.Remove(p)
	}
	return out
}

// String implements fmt.Stringer.
func (s *PredSet) String() string {
	preds := s.List()
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.Key()
	}
	return strings.Join(parts, " ^ ")
}

// Logical returns the logical form of a query: its structural predicates
// (one pc or ad predicate per tree edge) conjoined with its tag, value and
// contains predicates (Figure 2 of the paper).
func Logical(q *Query) *PredSet {
	s := NewPredSet()
	for i := range q.Nodes {
		n := &q.Nodes[i]
		s.Add(Pred{Kind: PredTag, X: n.ID, Tag: n.Tag})
		for _, e := range n.Contains {
			s.Add(Pred{Kind: PredContains, X: n.ID, Expr: e})
		}
		for _, v := range n.Values {
			s.Add(Pred{Kind: PredValue, X: n.ID, VP: v})
		}
		if n.Parent != -1 {
			kind := PredPC
			if n.Axis == Descendant {
				kind = PredAD
			}
			s.Add(Pred{Kind: kind, X: q.Nodes[n.Parent].ID, Y: n.ID})
		}
	}
	return s
}

// Closure saturates a predicate set under the paper's inference rules
// (Figure 3):
//
//	pc(x,y)                       |- ad(x,y)
//	ad(x,y), ad(y,z)              |- ad(x,z)
//	ad(x,y), contains(y, FTExp)   |- contains(x, FTExp)
//
// The input set is not modified.
func Closure(s *PredSet) *PredSet {
	out := s.Clone()
	for {
		changed := false
		preds := out.List()
		// Rule 1: pc |- ad.
		for _, p := range preds {
			if p.Kind == PredPC {
				if out.Add(Pred{Kind: PredAD, X: p.X, Y: p.Y}) {
					changed = true
				}
			}
		}
		preds = out.List()
		// Rule 2: ad transitivity.
		for _, p := range preds {
			if p.Kind != PredAD {
				continue
			}
			for _, r := range preds {
				if r.Kind == PredAD && r.X == p.Y {
					if out.Add(Pred{Kind: PredAD, X: p.X, Y: r.Y}) {
						changed = true
					}
				}
			}
		}
		preds = out.List()
		// Rule 3: contains propagates to ancestors.
		for _, p := range preds {
			if p.Kind != PredAD {
				continue
			}
			for _, r := range preds {
				if r.Kind == PredContains && r.X == p.Y {
					if out.Add(Pred{Kind: PredContains, X: p.X, Expr: r.Expr}) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return out
		}
	}
}

// ClosureOf returns the closure of a query's logical form.
func ClosureOf(q *Query) *PredSet { return Closure(Logical(q)) }

// Derivable reports whether p can be derived from s \ {p} using the
// inference rules; such a predicate is redundant (§3.2).
func Derivable(s *PredSet, p Pred) bool {
	rest := s.Minus(p)
	return Closure(rest).Has(p)
}

// Core returns the unique minimal predicate set equivalent to s (§3.2,
// Theorem 1): the closure of s with every redundant predicate removed.
// Removal proceeds in canonical key order; Theorem 1 guarantees the result
// is order-independent (the property tests verify this empirically).
func Core(s *PredSet) *PredSet {
	cur := Closure(s)
	for {
		removed := false
		for _, p := range cur.List() {
			if p.Kind != PredPC && p.Kind != PredAD && p.Kind != PredContains {
				continue // tag and value predicates are never derivable
			}
			if Derivable(cur, p) {
				cur.Remove(p)
				removed = true
			}
		}
		if !removed {
			return cur
		}
	}
}

// CoreOf returns the core of a query's closure.
func CoreOf(q *Query) *PredSet { return Core(ClosureOf(q)) }

// TreeFromPreds reconstructs a tree pattern query from a minimal predicate
// set (typically a Core result). distID is the stable ID of the
// distinguished variable. It fails when the predicates do not form a tree
// pattern: a variable without a tag, a variable with several incoming
// structural edges, multiple roots, or a missing distinguished variable
// (these are exactly the conditions under which dropping predicates does
// not yield a valid structural relaxation, §3.3).
func TreeFromPreds(s *PredSet, distID int) (*Query, error) {
	type varInfo struct {
		tag      string
		contains []ir.Expr
		values   []ValuePred
		parent   int // variable ID, -1 unknown
		axis     Axis
		incoming int
	}
	vars := map[int]*varInfo{}
	get := func(id int) *varInfo {
		if v, ok := vars[id]; ok {
			return v
		}
		v := &varInfo{parent: -1}
		vars[id] = v
		return v
	}
	for _, p := range s.List() {
		switch p.Kind {
		case PredTag:
			get(p.X).tag = p.Tag
		case PredContains:
			v := get(p.X)
			v.contains = append(v.contains, p.Expr)
		case PredValue:
			v := get(p.X)
			v.values = append(v.values, p.VP)
		case PredPC, PredAD:
			get(p.X)
			v := get(p.Y)
			v.incoming++
			v.parent = p.X
			if p.Kind == PredPC {
				v.axis = Child
			} else {
				v.axis = Descendant
			}
		}
	}
	// pc(x,y) and ad(x,y) together count as one edge: pc dominates.
	for id, v := range vars {
		if v.incoming == 2 &&
			s.HasKey(Pred{Kind: PredPC, X: v.parent, Y: id}.Key()) &&
			s.HasKey(Pred{Kind: PredAD, X: v.parent, Y: id}.Key()) {
			v.incoming = 1
			v.axis = Child
		}
	}
	roots := 0
	for id, v := range vars {
		if v.tag == "" {
			return nil, fmt.Errorf("tpq: variable $%d has no tag predicate", id)
		}
		switch v.incoming {
		case 0:
			roots++
		case 1:
		default:
			return nil, fmt.Errorf("tpq: variable $%d has %d incoming structural edges", id, v.incoming)
		}
	}
	if roots != 1 {
		return nil, fmt.Errorf("tpq: predicate set has %d roots, want 1", roots)
	}
	if _, ok := vars[distID]; !ok {
		return nil, fmt.Errorf("tpq: distinguished variable $%d not present", distID)
	}
	// Assemble in ID order; normalize fixes pre-order. Detect cycles while
	// resolving parents.
	ids := make([]int, 0, len(vars))
	for id := range vars {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idxOf := make(map[int]int, len(ids))
	q := &Query{}
	for _, id := range ids {
		idxOf[id] = len(q.Nodes)
		q.Nodes = append(q.Nodes, Node{ID: id})
	}
	for _, id := range ids {
		v := vars[id]
		n := &q.Nodes[idxOf[id]]
		n.Tag = v.tag
		n.Contains = v.contains
		n.Values = v.values
		n.Axis = v.axis
		if v.parent == -1 {
			n.Parent = -1
		} else {
			n.Parent = idxOf[v.parent]
		}
	}
	// Cycle check: walk up from each node.
	for i := range q.Nodes {
		seen := map[int]bool{}
		for j := i; j != -1; j = q.Nodes[j].Parent {
			if seen[j] {
				return nil, fmt.Errorf("tpq: predicate set contains a cycle")
			}
			seen[j] = true
		}
	}
	q.Dist = idxOf[distID]
	q.normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
