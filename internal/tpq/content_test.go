package tpq

import "testing"

func TestParseContentPredicates(t *testing.T) {
	// Trailing comparison on a path step.
	q := MustParse(`//item[./quantity < 3]`)
	qi := qIndex(q, "quantity")
	if qi < 0 {
		t.Fatal("quantity step missing")
	}
	vp := q.Nodes[qi].Values
	if len(vp) != 1 || vp[0].Attr != "" || vp[0].Op != OpLt || vp[0].Value != "3" {
		t.Fatalf("content pred = %+v", vp)
	}

	// Bare-dot comparison applies to the context node.
	q = MustParse(`//item[. = "gold"]`)
	vp = q.Nodes[0].Values
	if len(vp) != 1 || vp[0].Attr != "" || vp[0].Op != OpEq || vp[0].Value != "gold" {
		t.Fatalf("bare-dot pred = %+v", vp)
	}

	// Deep path with comparison.
	q = MustParse(`//item[./description/price >= 10.5 and ./name]`)
	pi := qIndex(q, "price")
	if pi < 0 || len(q.Nodes[pi].Values) != 1 || q.Nodes[pi].Values[0].Value != "10.5" {
		t.Fatalf("deep content pred wrong: %+v", q.Nodes[pi])
	}
	if qIndex(q, "name") < 0 {
		t.Error("sibling branch lost")
	}
}

func TestParseContentPredicateErrors(t *testing.T) {
	for _, src := range []string{
		`//item[.]`,     // bare dot without comparison or path
		`//item[./a <]`, // missing literal
		`//item[. >]`,   // missing literal after bare dot
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestContentPredCanonAndString(t *testing.T) {
	a := MustParse(`//item[./q < 3]`)
	b := MustParse(`//item[./q < 4]`)
	if a.Canon() == b.Canon() {
		t.Error("different content predicates share canon")
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}
