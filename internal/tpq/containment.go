package tpq

import (
	"fmt"

	"flexpath/internal/ir"
)

// ContainedIn reports whether q is contained in qPrime: for every document
// D, q(D) ⊆ qPrime(D). For the wildcard-free tree pattern fragment used
// here, containment holds exactly when there is a homomorphism from
// qPrime into q that maps qPrime's distinguished node onto q's, preserves
// tags, maps pc edges onto pc predicates and ad edges onto ad predicates
// of q's closure, and maps every contains/value predicate onto one implied
// by q's closure (Miklau & Suciu, PODS 2002; homomorphism is complete in
// the absence of wildcards).
func ContainedIn(q, qPrime *Query) bool {
	cl := ClosureOf(q)
	// cand[i] = set of q node indexes that qPrime node i can map to, such
	// that the whole subtree of i can be consistently mapped.
	cand := make([]map[int]bool, len(qPrime.Nodes))

	localOK := func(pi, qi int) bool {
		pn := &qPrime.Nodes[pi]
		qn := &q.Nodes[qi]
		if pn.Tag != qn.Tag {
			return false
		}
		if pi == qPrime.Dist && qi != q.Dist {
			return false
		}
		for _, e := range pn.Contains {
			if !cl.HasKey((Pred{Kind: PredContains, X: qn.ID, Expr: e}).Key()) {
				return false
			}
		}
		for _, v := range pn.Values {
			if !cl.HasKey((Pred{Kind: PredValue, X: qn.ID, VP: v}).Key()) {
				return false
			}
		}
		return true
	}

	edgeOK := func(axis Axis, parentQI, childQI int) bool {
		px, cy := q.Nodes[parentQI].ID, q.Nodes[childQI].ID
		if axis == Child {
			return cl.HasKey((Pred{Kind: PredPC, X: px, Y: cy}).Key())
		}
		return cl.HasKey((Pred{Kind: PredAD, X: px, Y: cy}).Key())
	}

	// Process qPrime nodes children-first (reverse pre-order).
	for pi := len(qPrime.Nodes) - 1; pi >= 0; pi-- {
		cand[pi] = map[int]bool{}
		children := qPrime.Children(pi)
		for qi := range q.Nodes {
			if !localOK(pi, qi) {
				continue
			}
			ok := true
			for _, c := range children {
				found := false
				for qc := range cand[c] {
					if edgeOK(qPrime.Nodes[c].Axis, qi, qc) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				cand[pi][qi] = true
			}
		}
	}
	return len(cand[0]) > 0
}

// Equivalent reports whether two queries return the same answers on every
// document.
func Equivalent(a, b *Query) bool {
	return ContainedIn(a, b) && ContainedIn(b, a)
}

// StrictlyContainedIn reports whether q ⊂ qPrime (containment without
// equivalence); this is the relationship every valid relaxation must have
// to its original query.
func StrictlyContainedIn(q, qPrime *Query) bool {
	return ContainedIn(q, qPrime) && !ContainedIn(qPrime, q)
}

// MustTreeFromPreds is TreeFromPreds but panics on error; for tests.
func MustTreeFromPreds(s *PredSet, distID int) *Query {
	q, err := TreeFromPreds(s, distID)
	if err != nil {
		panic(fmt.Sprintf("tpq: %v", err))
	}
	return q
}

// Minimize returns the unique minimal query equivalent to q (Theorem 1;
// Flesca et al., VLDB 2003): first the predicate-level core of the
// closure removes redundant derived predicates, then subtrees whose
// removal leaves an equivalent query are pruned (a branch is redundant
// when a homomorphism maps it into another branch, e.g. .//b next to
// ./b). The distinguished node's subtree is never pruned.
func Minimize(q *Query) (*Query, error) {
	cur, err := TreeFromPreds(CoreOf(q), q.Nodes[q.Dist].ID)
	if err != nil {
		return nil, err
	}
	for {
		pruned := false
		for i := 1; i < len(cur.Nodes); i++ {
			if i == cur.Dist || cur.AncestorOf(i, cur.Dist) {
				continue
			}
			cand := removeSubtree(cur, i)
			if cand == nil {
				continue
			}
			if Equivalent(cand, cur) {
				cur = cand
				pruned = true
				break
			}
		}
		if !pruned {
			return cur, nil
		}
	}
}

// removeSubtree returns q without the subtree rooted at node index i, or
// nil when removal is impossible (i is the root).
func removeSubtree(q *Query, i int) *Query {
	if i <= 0 {
		return nil
	}
	drop := map[int]bool{i: true}
	for j := i + 1; j < len(q.Nodes); j++ {
		if drop[q.Nodes[j].Parent] {
			drop[j] = true
		}
	}
	if drop[q.Dist] {
		return nil
	}
	out := &Query{}
	oldToNew := make(map[int]int, len(q.Nodes))
	for j := range q.Nodes {
		if drop[j] {
			continue
		}
		n := q.Nodes[j]
		if n.Parent != -1 {
			n.Parent = oldToNew[n.Parent]
		}
		n.Contains = append([]ir.Expr(nil), n.Contains...)
		n.Values = append([]ValuePred(nil), n.Values...)
		oldToNew[j] = len(out.Nodes)
		out.Nodes = append(out.Nodes, n)
	}
	out.Dist = oldToNew[q.Dist]
	out.Normalize()
	return out
}
