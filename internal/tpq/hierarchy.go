package tpq

// Hierarchy is a type hierarchy over element tags (§3.4 of the paper):
// each tag may name one supertype, e.g. article -> publication. A query
// node constrained to a tag t matches elements whose tag is t or any
// (transitive) subtype of t.
//
// Hierarchies enable the tag-relaxation extension: replacing a node's tag
// with its supertype is a relaxation, because the supertype matches a
// superset of elements.
type Hierarchy struct {
	super map[string]string
	subs  map[string][]string
}

// NewHierarchy builds a hierarchy from tag -> supertype pairs. Cycles are
// rejected by Validate; construction itself accepts any map.
func NewHierarchy(super map[string]string) *Hierarchy {
	h := &Hierarchy{
		super: make(map[string]string, len(super)),
		subs:  make(map[string][]string),
	}
	for t, s := range super {
		h.super[t] = s
		h.subs[s] = append(h.subs[s], t)
	}
	return h
}

// Validate reports whether the hierarchy is acyclic.
func (h *Hierarchy) Validate() error {
	for t := range h.super {
		seen := map[string]bool{t: true}
		for s, ok := h.super[t]; ok; s, ok = h.super[s] {
			if seen[s] {
				return &cycleError{tag: t}
			}
			seen[s] = true
		}
	}
	return nil
}

type cycleError struct{ tag string }

func (e *cycleError) Error() string {
	return "tpq: type hierarchy has a cycle through " + e.tag
}

// Supertype returns the immediate supertype of t, if any.
func (h *Hierarchy) Supertype(t string) (string, bool) {
	if h == nil {
		return "", false
	}
	s, ok := h.super[t]
	return s, ok
}

// IsSubtypeOf reports whether a is b or a (transitive) subtype of b. A
// nil hierarchy means plain tag equality.
func (h *Hierarchy) IsSubtypeOf(a, b string) bool {
	if a == b {
		return true
	}
	if h == nil {
		return false
	}
	for s, ok := h.super[a]; ok; s, ok = h.super[s] {
		if s == b {
			return true
		}
	}
	return false
}

// Subtypes returns t plus all transitive subtypes of t, the tags an
// element may carry to satisfy the constraint "tag = t".
func (h *Hierarchy) Subtypes(t string) []string {
	out := []string{t}
	if h == nil {
		return out
	}
	for i := 0; i < len(out); i++ {
		out = append(out, h.subs[out[i]]...)
	}
	return out
}

// ContainedInWith is ContainedIn generalized to a type hierarchy: a
// homomorphism may map a query node with tag t onto a node whose tag is a
// subtype of t (the subtype query asks for less-general elements, so the
// subtype-constrained query is contained in the supertype-constrained
// one). Passing a nil hierarchy reduces to ContainedIn.
func ContainedInWith(q, qPrime *Query, h *Hierarchy) bool {
	cl := ClosureOf(q)
	cand := make([]map[int]bool, len(qPrime.Nodes))

	localOK := func(pi, qi int) bool {
		pn := &qPrime.Nodes[pi]
		qn := &q.Nodes[qi]
		if !h.IsSubtypeOf(qn.Tag, pn.Tag) {
			return false
		}
		if pi == qPrime.Dist && qi != q.Dist {
			return false
		}
		for _, e := range pn.Contains {
			if !cl.HasKey((Pred{Kind: PredContains, X: qn.ID, Expr: e}).Key()) {
				return false
			}
		}
		for _, v := range pn.Values {
			if !cl.HasKey((Pred{Kind: PredValue, X: qn.ID, VP: v}).Key()) {
				return false
			}
		}
		return true
	}

	edgeOK := func(axis Axis, parentQI, childQI int) bool {
		px, cy := q.Nodes[parentQI].ID, q.Nodes[childQI].ID
		if axis == Child {
			return cl.HasKey((Pred{Kind: PredPC, X: px, Y: cy}).Key())
		}
		return cl.HasKey((Pred{Kind: PredAD, X: px, Y: cy}).Key())
	}

	for pi := len(qPrime.Nodes) - 1; pi >= 0; pi-- {
		cand[pi] = map[int]bool{}
		children := qPrime.Children(pi)
		for qi := range q.Nodes {
			if !localOK(pi, qi) {
				continue
			}
			ok := true
			for _, c := range children {
				found := false
				for qc := range cand[c] {
					if edgeOK(qPrime.Nodes[c].Axis, qi, qc) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				cand[pi][qi] = true
			}
		}
	}
	return len(cand[0]) > 0
}
