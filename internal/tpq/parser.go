package tpq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"flexpath/internal/ir"
)

// Parse parses a tree pattern query from a mini-XPath syntax:
//
//	query   := ("/" | "//") step ( ("/" | "//") step )*
//	step    := NAME [ "[" pred ( "and" pred )* "]" ]
//	pred    := ".contains(" FTEXPR ")"
//	         | "contains(.," FTEXPR ")"
//	         | "@" NAME op literal
//	         | "." ( ("/"|"//") step )+        -- a relative branch
//	op      := "=" | "!=" | "<" | "<=" | ">" | ">="
//	literal := quoted string or bare number/word
//
// The distinguished node (whose matches are the query answers) is the last
// step of the top-level path, matching the convention of the paper's
// Figure 1 queries, e.g.
//
//	//article[.//algorithm and ./section[./paragraph and
//	          .contains("XML" and "streaming")]]
//
// Variables are numbered $1, $2, ... in the order their steps appear.
func Parse(src string) (*Query, error) {
	p := &parser{src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("tpq: parse %q: %w", src, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src    string
	pos    int
	nextID int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf(format+" (at offset %d)", append(args, p.pos)...)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) eat(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) parseAxis() (Axis, bool) {
	p.skipSpace()
	if p.eat("//") {
		return Descendant, true
	}
	if p.eat("/") {
		return Child, true
	}
	return Child, false
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == ':'
}

func (p *parser) parseName() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	axis, ok := p.parseAxis()
	if !ok {
		return nil, p.errf("query must start with / or //")
	}
	last, err := p.parseStep(q, -1, axis)
	if err != nil {
		return nil, err
	}
	for {
		axis, ok := p.parseAxis()
		if !ok {
			break
		}
		last, err = p.parseStep(q, last, axis)
		if err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input %q", p.src[p.pos:])
	}
	q.Dist = last
	q.normalize()
	return q, nil
}

// parseStep parses one step (tag plus optional predicate list) and returns
// the index of the created node.
func (p *parser) parseStep(q *Query, parent int, axis Axis) (int, error) {
	name := p.parseName()
	if name == "" {
		return 0, p.errf("expected element name")
	}
	p.nextID++
	idx := len(q.Nodes)
	node := Node{ID: p.nextID, Tag: name, Parent: parent, Axis: axis}
	// Optional user weight on the step's edge: tag^2.5 (§4.1).
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		w, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil || w <= 0 {
			return 0, p.errf("invalid step weight %q", p.src[start:p.pos])
		}
		node.Weight = w
	}
	q.Nodes = append(q.Nodes, node)
	if p.eat("[") {
		for {
			if err := p.parsePred(q, idx); err != nil {
				return 0, err
			}
			if p.eat("and") {
				continue
			}
			break
		}
		if !p.eat("]") {
			return 0, p.errf("expected ] or 'and'")
		}
	}
	return idx, nil
}

func (p *parser) parsePred(q *Query, ctx int) error {
	p.skipSpace()
	switch {
	case strings.HasPrefix(p.src[p.pos:], ".contains("):
		p.pos += len(".contains(")
		return p.parseContainsTail(q, ctx)
	case strings.HasPrefix(p.src[p.pos:], "contains("):
		p.pos += len("contains(")
		p.skipSpace()
		if !p.eat(".") {
			return p.errf("contains() predicate must apply to '.'")
		}
		if !p.eat(",") {
			return p.errf("expected , in contains(., expr)")
		}
		return p.parseContainsTail(q, ctx)
	case p.peek() == '@':
		p.pos++
		return p.parseValuePred(q, ctx)
	case p.peek() == '.':
		p.pos++
		last := ctx
		for {
			axis, ok := p.parseAxis()
			if !ok {
				break
			}
			var err error
			last, err = p.parseStep(q, last, axis)
			if err != nil {
				return err
			}
		}
		// An optional trailing comparison makes this a content predicate
		// on the path's last step (or on the context node for a bare
		// "."): ./quantity < 3, . = "gold".
		if op, ok := p.tryCmpOp(); ok {
			val, err := p.parseLiteral()
			if err != nil {
				return err
			}
			q.Nodes[last].Values = append(q.Nodes[last].Values, ValuePred{Op: op, Value: val})
			return nil
		}
		if last == ctx {
			return p.errf("expected / or // after '.'")
		}
		return nil
	default:
		return p.errf("expected predicate")
	}
}

// parseContainsTail consumes a full-text expression up to the matching
// close paren and attaches the contains predicate to node ctx.
func (p *parser) parseContainsTail(q *Query, ctx int) error {
	depth := 1
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				raw := p.src[start:p.pos]
				p.pos++
				e, err := ir.ParseExpr(raw)
				if err != nil {
					return err
				}
				q.Nodes[ctx].Contains = append(q.Nodes[ctx].Contains, e)
				return nil
			}
		case '"', '\'':
			quote := c
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != quote {
				p.pos++
			}
		}
		p.pos++
	}
	return p.errf("unterminated contains(")
}

func (p *parser) parseValuePred(q *Query, ctx int) error {
	attr := p.parseName()
	if attr == "" {
		return p.errf("expected attribute name after @")
	}
	op, ok := p.tryCmpOp()
	if !ok {
		return p.errf("expected comparison operator")
	}
	val, err := p.parseLiteral()
	if err != nil {
		return err
	}
	q.Nodes[ctx].Values = append(q.Nodes[ctx].Values, ValuePred{Attr: attr, Op: op, Value: val})
	return nil
}

// tryCmpOp consumes a comparison operator if one is next.
func (p *parser) tryCmpOp() (CmpOp, bool) {
	p.skipSpace()
	switch {
	case p.eat("!="):
		return OpNe, true
	case p.eat("<="):
		return OpLe, true
	case p.eat(">="):
		return OpGe, true
	case p.eat("="):
		return OpEq, true
	case p.eat("<"):
		return OpLt, true
	case p.eat(">"):
		return OpGt, true
	}
	return 0, false
}

// parseLiteral parses a quoted string or a bare number/word literal.
func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	if c := p.peek(); c == '"' || c == '\'' {
		quote := c
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated string literal")
		}
		val := p.src[start:p.pos]
		p.pos++
		return val, nil
	}
	start := p.pos
	for p.pos < len(p.src) && (isNameByte(p.src[p.pos]) || p.src[p.pos] == '.') {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected literal value")
	}
	return p.src[start:p.pos], nil
}
