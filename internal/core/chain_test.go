package core

import (
	"testing"

	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/rank"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
	"flexpath/internal/xmark"
	"flexpath/internal/xmltree"
)

const articlesXML = `
<collection>
  <article><title>streaming xml</title>
    <section><algorithm>merge</algorithm><paragraph>xml streaming passes</paragraph></section>
  </article>
  <article><title>layouts</title>
    <section><title>xml streaming storage</title><algorithm>split</algorithm><paragraph>pages</paragraph></section>
  </article>
  <article><title>joins</title>
    <section><paragraph>xml streaming joins</paragraph></section>
    <appendix><algorithm>twig</algorithm></appendix>
  </article>
  <article><title>other</title>
    <section><paragraph>nothing relevant</paragraph></section>
  </article>
</collection>`

type fixture struct {
	doc *xmltree.Document
	ix  *ir.Index
	st  *stats.Stats
	ev  *exec.Evaluator
	est *stats.Estimator
}

func newFixture(t testing.TB, xml string) *fixture {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return fixtureFor(doc)
}

func fixtureFor(doc *xmltree.Document) *fixture {
	ix := ir.NewIndex(doc)
	st := stats.Collect(doc)
	return &fixture{
		doc: doc, ix: ix, st: st,
		ev:  exec.NewEvaluator(doc, ix),
		est: stats.NewEstimator(st, ix),
	}
}

func xmarkFixture(t testing.TB, bytes int64, seed int64) *fixture {
	t.Helper()
	doc, err := xmark.Build(xmark.Config{TargetBytes: bytes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return fixtureFor(doc)
}

func (f *fixture) chain(t testing.TB, src string) *Chain {
	t.Helper()
	c, err := BuildChain(f.doc, f.ix, f.st, rank.UniformWeights(), tpq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainMonotone(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	if c.Len() == 0 {
		t.Fatal("empty chain")
	}
	prevSS := c.Base
	prev := c.Original
	for j := 1; j <= c.Len(); j++ {
		s := c.Steps[j-1]
		if s.Penalty < 0 {
			t.Errorf("step %d: negative penalty %f", j, s.Penalty)
		}
		if s.SS > prevSS+1e-9 {
			t.Errorf("step %d: ss increased %f -> %f", j, prevSS, s.SS)
		}
		if err := s.Query.Validate(); err != nil {
			t.Errorf("step %d: invalid query: %v", j, err)
		}
		if !tpq.ContainedIn(prev, s.Query) {
			t.Errorf("step %d: previous level not contained in %s", j, s.Query)
		}
		if tpq.ContainedIn(s.Query, prev) {
			t.Errorf("step %d: no strict relaxation (equivalent to previous)", j)
		}
		prevSS = s.SS
		prev = s.Query
	}
}

func TestChainEndsAtLoosest(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	last := c.QueryAt(c.Len())
	// The loosest interpretation keeps only the root with the full-text
	// predicate: //article[.contains("XML" and "streaming")] (= Q6).
	if last.Canon() != tpq.MustParse(srcQ6).Canon() {
		t.Errorf("chain ends at %s, want Q6", last)
	}
}

func TestChainAnswerMonotone(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	prev := map[xmltree.NodeID]bool{}
	for j := 0; j <= c.Len(); j++ {
		answers := f.ev.Evaluate(c.QueryAt(j))
		got := map[xmltree.NodeID]bool{}
		for _, a := range answers {
			got[a] = true
		}
		for a := range prev {
			if !got[a] {
				t.Errorf("level %d lost answer %d of level %d", j, a, j-1)
			}
		}
		prev = got
	}
	// The loosest level admits exactly the articles containing both
	// keywords anywhere: articles 1-3.
	if len(prev) != 3 {
		t.Errorf("loosest level has %d answers, want 3", len(prev))
	}
}

func TestChainNeverDropsRootContains(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	rootID := c.Original.Nodes[0].ID
	for _, s := range c.Steps {
		for _, p := range s.Dropped {
			if p.Kind == tpq.PredContains && p.X == rootID {
				t.Fatalf("chain dropped the root contains predicate: %s", p.Key())
			}
		}
	}
}

func TestChainDistMoves(t *testing.T) {
	// When the distinguished leaf is deleted, its parent takes over.
	f := newFixture(t, articlesXML)
	c := f.chain(t, `//article/section/paragraph[.contains("xml")]`)
	sawMove := false
	for j := 1; j <= c.Len(); j++ {
		q := c.QueryAt(j)
		if q.Nodes[q.Dist].Tag != "paragraph" {
			sawMove = true
		}
	}
	if !sawMove {
		t.Log("distinguished node never moved (paragraph was never deleted); chain:")
		t.Log(c.String())
	}
}

func TestPlanExactMatchesEvaluator(t *testing.T) {
	f := newFixture(t, articlesXML)
	for _, src := range []string{srcQ1, srcQ3, srcQ5, `//article[./section/paragraph]`} {
		c := f.chain(t, src)
		plan, err := c.PlanAt(0)
		if err != nil {
			t.Fatal(err)
		}
		answers := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive})
		exact := f.ev.Evaluate(c.Original)
		if len(answers) != len(exact) {
			t.Fatalf("%s: plan found %d answers, evaluator %d", src, len(answers), len(exact))
		}
		got := map[xmltree.NodeID]bool{}
		for _, a := range answers {
			got[a.Node] = true
			if a.Score.SS != c.Base {
				t.Errorf("%s: exact answer has ss %f, want base %f", src, a.Score.SS, c.Base)
			}
		}
		for _, n := range exact {
			if !got[n] {
				t.Errorf("%s: plan missed exact answer %d", src, n)
			}
		}
	}
}

// TestPlanLevelsMatchEvaluator: for every chain prefix, the plan's answer
// set (exhaustive mode) equals the exact evaluation of the relaxed query
// at that level.
func TestPlanLevelsMatchEvaluator(t *testing.T) {
	f := newFixture(t, articlesXML)
	for _, src := range []string{srcQ1, `//article[./section[./algorithm and ./paragraph]]`} {
		c := f.chain(t, src)
		for j := 0; j <= c.Len(); j++ {
			plan, err := c.PlanAt(j)
			if err != nil {
				t.Fatalf("%s level %d: %v", src, j, err)
			}
			answers := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive})
			exact := f.ev.Evaluate(c.QueryAt(j))
			if len(answers) != len(exact) {
				t.Errorf("%s level %d: plan %d answers, evaluator %d\nquery: %s",
					src, j, len(answers), len(exact), c.QueryAt(j))
				continue
			}
			got := map[xmltree.NodeID]bool{}
			for _, a := range answers {
				got[a.Node] = true
			}
			for _, n := range exact {
				if !got[n] {
					t.Errorf("%s level %d: plan missed %d", src, j, n)
				}
			}
		}
	}
}

// TestPlanScoresBounded: per-answer structural scores lie between the
// level's uniform score (all encoded relaxations unsatisfied) and the
// base (all satisfied), and exact answers keep the base score.
func TestPlanScoresBounded(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	j := c.Len()
	plan, err := c.PlanAt(j)
	if err != nil {
		t.Fatal(err)
	}
	answers := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive})
	exact := map[xmltree.NodeID]bool{}
	for _, n := range f.ev.Evaluate(c.Original) {
		exact[n] = true
	}
	for _, a := range answers {
		if a.Score.SS < c.SSAt(j)-1e-9 || a.Score.SS > c.Base+1e-9 {
			t.Errorf("answer %d ss %f outside [%f, %f]", a.Node, a.Score.SS, c.SSAt(j), c.Base)
		}
		if exact[a.Node] && a.Score.SS < c.Base-1e-9 {
			t.Errorf("exact answer %d scored %f < base %f", a.Node, a.Score.SS, c.Base)
		}
		if !exact[a.Node] && a.Score.SS > c.Base-1e-9 {
			t.Errorf("relaxed answer %d scored full base %f", a.Node, a.Score.SS)
		}
		if a.Score.KS < 0 || a.Score.KS > float64(c.Original.NumContains())+1e-9 {
			t.Errorf("answer %d ks %f out of range", a.Node, a.Score.KS)
		}
	}
}

func TestChainOnXMark(t *testing.T) {
	f := xmarkFixture(t, 128<<10, 13)
	for _, src := range []string{
		`//item[./description/parlist]`,
		`//item[./description/parlist and ./mailbox/mail/text]`,
	} {
		c := f.chain(t, src)
		if c.Len() == 0 {
			t.Fatalf("%s: empty chain", src)
		}
		// Penalties must be sorted ascending only within validity
		// constraints; at minimum the first step picks the global
		// cheapest droppable predicate.
		first := c.Steps[0]
		if first.Penalty < 0 {
			t.Errorf("%s: first penalty %f", src, first.Penalty)
		}
		// Every level gains answers or keeps them (monotone).
		prev := -1
		for j := 0; j <= c.Len(); j++ {
			n := len(f.ev.Evaluate(c.QueryAt(j)))
			if n < prev {
				t.Errorf("%s: level %d has %d answers, fewer than %d", src, j, n, prev)
			}
			prev = n
		}
	}
}

func TestChainCaching(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	// Plans at all levels build without error and stay consistent.
	for j := 0; j <= c.Len(); j++ {
		plan, err := c.PlanAt(j)
		if err != nil {
			t.Fatalf("PlanAt(%d): %v", j, err)
		}
		if plan.FirstOptional < 1 || plan.FirstOptional > len(plan.Vars) {
			t.Errorf("PlanAt(%d): FirstOptional=%d of %d", j, plan.FirstOptional, len(plan.Vars))
		}
		if plan.DistVar < 0 || plan.DistVar >= plan.FirstOptional {
			t.Errorf("PlanAt(%d): distinguished var %d not required", j, plan.DistVar)
		}
		for i, v := range plan.Vars {
			if v.Anchor >= i {
				t.Errorf("PlanAt(%d): var %d anchored to later var %d", j, i, v.Anchor)
			}
		}
	}
	if _, err := c.PlanAt(-1); err == nil {
		t.Error("PlanAt(-1) accepted")
	}
	if _, err := c.PlanAt(c.Len() + 1); err == nil {
		t.Error("PlanAt(Len+1) accepted")
	}
}

// TestChainStepsWithinOperatorSpace cross-checks the two faces of
// Theorem 2: the chain generates relaxations by dropping closure
// predicates, the operator set generates them by applying γ/λ/σ/κ — every
// chain level must therefore appear in the operator-enumerated space.
func TestChainStepsWithinOperatorSpace(t *testing.T) {
	f := newFixture(t, articlesXML)
	for _, src := range []string{
		srcQ1,
		`//article[./section/paragraph[.contains("xml")]]`,
		`//article[.//algorithm and ./section]`,
	} {
		c := f.chain(t, src)
		space := EnumerateRelaxations(tpq.MustParse(src), -1)
		canon := make(map[string]bool, len(space))
		for _, r := range space {
			canon[r.Query.Canon()] = true
		}
		for j := 1; j <= c.Len(); j++ {
			if !canon[c.QueryAt(j).Canon()] {
				t.Errorf("%s: chain level %d (%s) not in the operator space",
					src, j, c.QueryAt(j))
			}
		}
	}
}

// TestOperatorPredicateCorrespondence: each single operator application
// corresponds to dropping predicates from the closure (the equivalence
// the paper leans on when describing the algorithms via "the next
// predicate dropped"). Concretely: the relaxed query's closure must be a
// strict subset of the original's closure, modulo re-derivation.
func TestOperatorPredicateCorrespondence(t *testing.T) {
	q := tpq.MustParse(srcQ1)
	clQ := tpq.ClosureOf(q)
	for _, op := range ApplicableOps(q) {
		relaxed, err := op.Apply(q)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		clR := tpq.ClosureOf(relaxed)
		// Every predicate of the relaxed closure must already hold in
		// the original closure (dropping only ever removes constraints)…
		for _, p := range clR.List() {
			if p.Kind == tpq.PredTag || p.Kind == tpq.PredValue {
				continue
			}
			if !clQ.Has(p) {
				t.Errorf("%v introduced predicate %s", op, p.Key())
			}
		}
		// …and at least one predicate must be gone.
		dropped := 0
		for _, p := range clQ.List() {
			if !clR.Has(p) {
				dropped++
			}
		}
		if dropped == 0 {
			t.Errorf("%v dropped nothing (not a strict relaxation)", op)
		}
	}
}

// TestChainAccessors covers the chain's introspection surface.
func TestChainAccessors(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	if c.Weights().Structural != 1 || c.Weights().Contains != 1 {
		t.Errorf("weights: %+v", c.Weights())
	}
	if c.Index() != f.ix || c.Doc() != f.doc {
		t.Error("index/doc accessors wrong")
	}
	if c.Hierarchy() != nil {
		t.Error("hierarchy should be nil")
	}
	s := c.String()
	if s == "" || len(c.Steps) > 0 && !containsStr(s, c.Steps[0].Desc) {
		t.Errorf("String() = %q", s)
	}
	// PenaltyOfPC falls back to the structural weight for unknown pairs.
	if got := c.PenaltyOfPC(99, 100); got != 1 {
		t.Errorf("fallback penalty = %f", got)
	}
	// StepBits: each step's mask is non-zero and disjoint masks cover the
	// chain's bit space.
	var all uint64
	for j := 1; j <= c.Len(); j++ {
		m := c.StepBits(j)
		if m == 0 {
			t.Errorf("step %d has empty bit mask", j)
		}
		if all&m != 0 && c.Len() < 64 {
			t.Errorf("step %d mask overlaps earlier steps", j)
		}
		all |= m
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEncodingMoreRelaxationsInvariants: across encoded prefixes, answer
// sets only grow, no score ever exceeds the base, and an answer's score
// may drift per prefix only within the penalty budget of the newly
// dropped predicates. (A strict per-answer monotonicity does NOT hold:
// a deeper relaxation can free a variable to bind where it regains a
// more valuable optional predicate than the one just dropped — scores
// are relative to the chosen encoding, as §5.2.1 describes. SSO/Hybrid
// always use a single encoding per query, so ranking consistency within
// one search is unaffected.)
func TestEncodingMoreRelaxationsInvariants(t *testing.T) {
	f := xmarkFixture(t, 64<<10, 11)
	c := f.chain(t, `//item[./description/parlist and ./mailbox/mail/text]`)
	prev := map[xmltree.NodeID]float64{}
	for j := 0; j <= c.Len(); j++ {
		plan, err := c.PlanAt(j)
		if err != nil {
			t.Fatal(err)
		}
		var stepPenalty float64
		if j > 0 {
			stepPenalty = c.Steps[j-1].Penalty
		}
		answers := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive})
		cur := map[xmltree.NodeID]float64{}
		for _, a := range answers {
			if a.Score.SS > c.Base+1e-9 {
				t.Errorf("level %d: answer %d above base: %f", j, a.Node, a.Score.SS)
			}
			cur[a.Node] = a.Score.SS
		}
		for n, ss := range prev {
			now, ok := cur[n]
			if !ok {
				t.Errorf("level %d lost answer %d", j, n)
				continue
			}
			// The score may move, but only within what this step's
			// dropped predicates and re-binding freedom allow: never by
			// more than the total penalty moved at this step.
			if now > ss+stepPenalty+1e-9 {
				t.Errorf("level %d: answer %d rose %f -> %f beyond step penalty %f",
					j, n, ss, now, stepPenalty)
			}
		}
		prev = cur
	}
}
