package core

import (
	"flexpath/internal/tpq"
)

// Relaxation is one member of a query's relaxation space: a relaxed query
// together with a shortest operator sequence producing it.
type Relaxation struct {
	Query *tpq.Query
	// Ops is one shortest sequence of operator applications producing
	// Query from the original (empty for the original itself).
	Ops []Op
	// Depth is the number of operator applications.
	Depth int
}

// EnumerateRelaxations explores the space of relaxations of q (§3.5)
// breadth-first, applying every applicable operator at every node and
// deduplicating by canonical form. maxDepth bounds the number of composed
// operator applications (pass a negative value for the full space; it is
// finite because every operator strictly shrinks the query's predicate
// content). The original query is returned first; results are in BFS
// order, so shallower (less relaxed) queries come first.
func EnumerateRelaxations(q *tpq.Query, maxDepth int) []Relaxation {
	seen := map[string]bool{q.Canon(): true}
	out := []Relaxation{{Query: q.Clone()}}
	frontier := []Relaxation{out[0]}
	depth := 0
	for len(frontier) > 0 && (maxDepth < 0 || depth < maxDepth) {
		depth++
		var next []Relaxation
		for _, r := range frontier {
			for _, op := range ApplicableOps(r.Query) {
				nq, err := op.Apply(r.Query)
				if err != nil {
					continue
				}
				key := nq.Canon()
				if seen[key] {
					continue
				}
				seen[key] = true
				nr := Relaxation{
					Query: nq,
					Ops:   append(append([]Op(nil), r.Ops...), op),
					Depth: depth,
				}
				out = append(out, nr)
				next = append(next, nr)
			}
		}
		frontier = next
	}
	return out
}

// ApplicableOps lists every operator application that is legal on q.
func ApplicableOps(q *tpq.Query) []Op {
	var ops []Op
	for i := 1; i < len(q.Nodes); i++ {
		n := &q.Nodes[i]
		if n.Axis == tpq.Child {
			ops = append(ops, Op{Kind: OpAxisGeneralize, VarID: n.ID})
		}
		if q.IsLeaf(i) {
			ops = append(ops, Op{Kind: OpDeleteLeaf, VarID: n.ID})
		}
		if n.Parent != -1 && q.Nodes[n.Parent].Parent != -1 {
			ops = append(ops, Op{Kind: OpPromoteSubtree, VarID: n.ID})
		}
		for e := range n.Contains {
			ops = append(ops, Op{Kind: OpPromoteContains, VarID: n.ID, ExprIdx: e})
		}
	}
	return ops
}
