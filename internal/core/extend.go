package core

import (
	"fmt"
	"strconv"

	"flexpath/internal/tpq"
)

// This file implements the "other relaxations" of §3.4 of the paper,
// which are orthogonal to the four core operators: tag relaxation along a
// type hierarchy (replace article with publication) and value-predicate
// weakening (price <= 98 becomes price <= 100). Both strictly enlarge the
// answer set, so composing them with the core operators preserves the
// containment property of relaxations.

// RelaxTag replaces node i's tag with its supertype in h. It fails when
// the node has no supertype. The result strictly contains the original
// whenever any element carries a different subtype of the supertype.
func RelaxTag(q *tpq.Query, i int, h *tpq.Hierarchy) (*tpq.Query, error) {
	if i < 0 || i >= len(q.Nodes) {
		return nil, fmt.Errorf("core: node %d out of range", i)
	}
	super, ok := h.Supertype(q.Nodes[i].Tag)
	if !ok {
		return nil, fmt.Errorf("core: tag %q has no supertype", q.Nodes[i].Tag)
	}
	out := q.Clone()
	out.Nodes[i].Tag = super
	return out, nil
}

// WeakenValue replaces the predIdx-th value predicate of node i with a
// strictly weaker comparison against newValue. Only inequality operators
// can be weakened: < and <= weaken by raising the bound, > and >= by
// lowering it (numerically when both values are numbers, lexicographically
// otherwise). Equality and inequality predicates cannot be weakened this
// way; drop them with leaf deletion semantics instead.
func WeakenValue(q *tpq.Query, i, predIdx int, newValue string) (*tpq.Query, error) {
	if i < 0 || i >= len(q.Nodes) {
		return nil, fmt.Errorf("core: node %d out of range", i)
	}
	if predIdx < 0 || predIdx >= len(q.Nodes[i].Values) {
		return nil, fmt.Errorf("core: node $%d has no value predicate %d", q.Nodes[i].ID, predIdx)
	}
	vp := q.Nodes[i].Values[predIdx]
	cmp, comparable := compareLiterals(vp.Value, newValue)
	if !comparable {
		return nil, fmt.Errorf("core: cannot compare %q and %q", vp.Value, newValue)
	}
	switch vp.Op {
	case tpq.OpLt, tpq.OpLe:
		if cmp >= 0 {
			return nil, fmt.Errorf("core: %q does not weaken %s %q", newValue, vp.Op, vp.Value)
		}
	case tpq.OpGt, tpq.OpGe:
		if cmp <= 0 {
			return nil, fmt.Errorf("core: %q does not weaken %s %q", newValue, vp.Op, vp.Value)
		}
	default:
		return nil, fmt.Errorf("core: %s predicates cannot be weakened", vp.Op)
	}
	out := q.Clone()
	out.Nodes[i].Values[predIdx].Value = newValue
	return out, nil
}

// compareLiterals compares old against new the way value predicates do:
// numerically when both parse as numbers, lexicographically otherwise.
// It returns old-vs-new as -1/0/1 and whether the values were comparable.
func compareLiterals(oldV, newV string) (int, bool) {
	a, errA := strconv.ParseFloat(oldV, 64)
	b, errB := strconv.ParseFloat(newV, 64)
	if errA == nil && errB == nil {
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if errA != nil && errB != nil {
		switch {
		case oldV < newV:
			return -1, true
		case oldV > newV:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// ApplicableTagOps lists the tag relaxations h enables on q.
func ApplicableTagOps(q *tpq.Query, h *tpq.Hierarchy) []int {
	var out []int
	for i := range q.Nodes {
		if _, ok := h.Supertype(q.Nodes[i].Tag); ok {
			out = append(out, i)
		}
	}
	return out
}
