// Package core implements the FleXPath framework itself: the four
// relaxation operators of §3.5 (axis generalization, leaf deletion,
// subtree promotion, contains promotion), enumeration of the relaxation
// space they span (Theorem 2), and the penalty-ordered relaxation chain
// with its scored evaluation plans that the top-K algorithms of §5 are
// built on.
package core

import (
	"fmt"

	"flexpath/internal/tpq"
)

// AxisGeneralize is the γ operator (§3.5.1): it replaces the pc edge from
// node i's parent to i with an ad edge. It fails when i is the root or the
// edge is already ancestor-descendant.
func AxisGeneralize(q *tpq.Query, i int) (*tpq.Query, error) {
	if i <= 0 || i >= len(q.Nodes) {
		return nil, fmt.Errorf("core: axis generalization needs a non-root node")
	}
	if q.Nodes[i].Axis != tpq.Child {
		return nil, fmt.Errorf("core: edge to $%d is already //", q.Nodes[i].ID)
	}
	out := q.Clone()
	out.Nodes[i].Axis = tpq.Descendant
	return out, nil
}

// DeleteLeaf is the λ operator (§3.5.2): it removes leaf node i and all
// its value-based predicates. If i is the distinguished node, its parent
// becomes distinguished. It fails when i is the root or not a leaf.
func DeleteLeaf(q *tpq.Query, i int) (*tpq.Query, error) {
	if i <= 0 || i >= len(q.Nodes) {
		return nil, fmt.Errorf("core: cannot delete the root")
	}
	if !q.IsLeaf(i) {
		return nil, fmt.Errorf("core: $%d is not a leaf", q.Nodes[i].ID)
	}
	out := q.Clone()
	if out.Dist == i {
		out.Dist = out.Nodes[i].Parent
	}
	if out.Dist > i {
		out.Dist--
	}
	for j := range out.Nodes {
		if out.Nodes[j].Parent > i {
			out.Nodes[j].Parent--
		}
	}
	out.Nodes = append(out.Nodes[:i], out.Nodes[i+1:]...)
	out.Normalize()
	return out, nil
}

// PromoteSubtree is the σ operator (§3.5.3): the subtree rooted at node i
// is re-hung under i's grandparent with an ad edge. It fails when i is the
// root or a child of the root.
func PromoteSubtree(q *tpq.Query, i int) (*tpq.Query, error) {
	if i <= 0 || i >= len(q.Nodes) {
		return nil, fmt.Errorf("core: cannot promote the root")
	}
	p := q.Nodes[i].Parent
	if p == -1 || q.Nodes[p].Parent == -1 {
		return nil, fmt.Errorf("core: $%d has no grandparent", q.Nodes[i].ID)
	}
	out := q.Clone()
	out.Nodes[i].Parent = q.Nodes[p].Parent
	out.Nodes[i].Axis = tpq.Descendant
	out.Normalize()
	return out, nil
}

// PromoteContains is the κ operator (§3.5.4): the exprIdx-th contains
// predicate of node i moves to i's parent. It fails when i is the root or
// the index is out of range.
func PromoteContains(q *tpq.Query, i, exprIdx int) (*tpq.Query, error) {
	if i <= 0 || i >= len(q.Nodes) {
		return nil, fmt.Errorf("core: cannot promote contains from the root")
	}
	if exprIdx < 0 || exprIdx >= len(q.Nodes[i].Contains) {
		return nil, fmt.Errorf("core: $%d has no contains predicate %d", q.Nodes[i].ID, exprIdx)
	}
	out := q.Clone()
	e := out.Nodes[i].Contains[exprIdx]
	out.Nodes[i].Contains = append(out.Nodes[i].Contains[:exprIdx], out.Nodes[i].Contains[exprIdx+1:]...)
	p := out.Nodes[i].Parent
	// Avoid duplicating an identical predicate already on the parent.
	for _, pe := range out.Nodes[p].Contains {
		if pe.Canon() == e.Canon() {
			return out, nil
		}
	}
	out.Nodes[p].Contains = append(out.Nodes[p].Contains, e)
	return out, nil
}

// OpKind identifies a relaxation operator.
type OpKind int8

// The four relaxation operators.
const (
	OpAxisGeneralize OpKind = iota
	OpDeleteLeaf
	OpPromoteSubtree
	OpPromoteContains
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAxisGeneralize:
		return "axis-generalize"
	case OpDeleteLeaf:
		return "delete-leaf"
	case OpPromoteSubtree:
		return "promote-subtree"
	default:
		return "promote-contains"
	}
}

// Op is one operator application, identified by the stable variable ID it
// applies to (so descriptions survive re-normalization).
type Op struct {
	Kind    OpKind
	VarID   int
	ExprIdx int // for OpPromoteContains
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if o.Kind == OpPromoteContains {
		return fmt.Sprintf("%s($%d,#%d)", o.Kind, o.VarID, o.ExprIdx)
	}
	return fmt.Sprintf("%s($%d)", o.Kind, o.VarID)
}

// Apply applies the operator to q, addressing the node by stable ID.
func (o Op) Apply(q *tpq.Query) (*tpq.Query, error) {
	i := q.NodeByID(o.VarID)
	if i < 0 {
		return nil, fmt.Errorf("core: variable $%d not in query", o.VarID)
	}
	switch o.Kind {
	case OpAxisGeneralize:
		return AxisGeneralize(q, i)
	case OpDeleteLeaf:
		return DeleteLeaf(q, i)
	case OpPromoteSubtree:
		return PromoteSubtree(q, i)
	default:
		return PromoteContains(q, i, o.ExprIdx)
	}
}
