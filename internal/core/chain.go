package core

import (
	"fmt"
	"sort"
	"strings"

	"flexpath/internal/ir"
	"flexpath/internal/rank"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

// Step is one link of a relaxation chain: the predicates dropped from the
// query closure (one chosen predicate plus the value-based predicates
// automatically dropped when a variable disappears, §3.3), the penalty
// paid, and the resulting relaxed query.
type Step struct {
	// Dropped lists the closure predicates this step drops; Dropped[0] is
	// the chosen (lowest-penalty) predicate.
	Dropped []tpq.Pred
	// Penalty is the total penalty of the step's dropped predicates.
	Penalty float64
	// Query is the relaxed query after this step (the core of the
	// remaining predicate set).
	Query *tpq.Query
	// SS is the uniform structural score of answers first admitted at
	// this relaxation level (Base minus all penalties so far).
	SS float64
	// DistID is the stable ID of the distinguished variable after this
	// step (leaf deletion may move it to the parent).
	DistID int
	// Desc is a human-readable description of the relaxation operator
	// this predicate drop corresponds to.
	Desc string
}

// Chain is the penalty-ordered sequence of relaxations of a query (§5.1):
// starting from the query's closure, it repeatedly drops the remaining
// droppable predicate with the lowest penalty whose removal yields a valid
// relaxation. DPO walks the chain one step at a time; SSO and Hybrid
// choose a prefix with selectivity estimates and encode it into a single
// plan.
type Chain struct {
	Original *tpq.Query
	Closure  *tpq.PredSet
	// Base is the structural score of exact answers.
	Base  float64
	Steps []Step

	doc       *xmltree.Document
	ix        *ir.Index
	pen       *rank.Penalizer
	weights   rank.Weights
	hierarchy *tpq.Hierarchy
	penaltyOf map[string]float64
	bitOf     map[string]uint
	numBits   int
	tagOf     map[int]string
}

// BuildChain computes the full relaxation chain of q over the given
// document, index and statistics.
func BuildChain(doc *xmltree.Document, ix *ir.Index, st *stats.Stats, w rank.Weights, q *tpq.Query) (*Chain, error) {
	return BuildChainH(doc, ix, st, w, q, nil)
}

// BuildChainH is BuildChain with a type hierarchy (§3.4 extension): plans
// built from the chain match each tag constraint against the tag or any
// of its subtypes. The hierarchy does not change the chain's relaxation
// steps or penalties — it widens matching only.
func BuildChainH(doc *xmltree.Document, ix *ir.Index, st *stats.Stats, w rank.Weights, q *tpq.Query, h *tpq.Hierarchy) (*Chain, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if h != nil {
		if err := h.Validate(); err != nil {
			return nil, err
		}
	}
	w = foldQueryWeights(w, q)
	pen := rank.NewPenalizer(st, ix, w, q)
	c := &Chain{
		Original:  q.Clone(),
		hierarchy: h,
		Closure:   tpq.ClosureOf(q),
		Base:      pen.BaseScore(q),
		doc:       doc,
		ix:        ix,
		pen:       pen,
		weights:   w,
		penaltyOf: make(map[string]float64),
		bitOf:     make(map[string]uint),
		tagOf:     make(map[int]string),
	}
	for i := range q.Nodes {
		c.tagOf[q.Nodes[i].ID] = q.Nodes[i].Tag
	}
	rootID := q.Nodes[0].ID
	for _, p := range c.Closure.List() {
		if droppable(p, rootID) {
			c.penaltyOf[p.Key()] = pen.Penalty(p)
		}
	}

	cur := c.Closure.Clone()
	curQuery := q.Clone()
	distID := q.Nodes[q.Dist].ID
	ss := c.Base
	for {
		step, ok := c.nextStep(cur, curQuery, distID, rootID)
		if !ok {
			break
		}
		for _, p := range step.Dropped {
			cur.Remove(p)
		}
		ss -= step.Penalty
		step.SS = ss
		distID = step.DistID
		curQuery = step.Query
		c.Steps = append(c.Steps, step)
	}
	// Assign signature bits to dropped predicates in chain order; queries
	// large enough to exceed 64 tracked predicates share the last bit
	// (merging buckets, which is harmless).
	for _, s := range c.Steps {
		for _, p := range s.Dropped {
			if p.Kind == tpq.PredTag || p.Kind == tpq.PredValue {
				continue
			}
			bit := uint(c.numBits)
			if bit > 63 {
				bit = 63
			} else {
				c.numBits++
			}
			c.bitOf[p.Key()] = bit
		}
	}
	if c.numBits > 63 {
		c.numBits = 64
	}
	return c, nil
}

// foldQueryWeights merges user-specified per-edge weights from the query
// syntax (tag^2.5) into the weight assignment: the edge's pc and ad
// predicates both carry the user weight.
func foldQueryWeights(w rank.Weights, q *tpq.Query) rank.Weights {
	var per map[string]float64
	for i := range q.Nodes {
		n := &q.Nodes[i]
		if n.Weight <= 0 || n.Parent == -1 {
			continue
		}
		if per == nil {
			per = make(map[string]float64)
			for k, v := range w.PerPred {
				per[k] = v
			}
		}
		pid := q.Nodes[n.Parent].ID
		per[(tpq.Pred{Kind: tpq.PredPC, X: pid, Y: n.ID}).Key()] = n.Weight
		per[(tpq.Pred{Kind: tpq.PredAD, X: pid, Y: n.ID}).Key()] = n.Weight
	}
	if per != nil {
		w.PerPred = per
	}
	return w
}

func droppable(p tpq.Pred, rootID int) bool {
	switch p.Kind {
	case tpq.PredPC, tpq.PredAD:
		return true
	case tpq.PredContains:
		// The root's contains predicate is never dropped: the loosest
		// interpretation keeps the full-text search itself (§1, §3.5.4).
		return p.X != rootID
	default:
		return false
	}
}

// nextStep finds the lowest-penalty droppable predicate whose removal is a
// valid relaxation of the current predicate set, per Definition 1/2.
func (c *Chain) nextStep(cur *tpq.PredSet, curQuery *tpq.Query, distID, rootID int) (Step, bool) {
	type cand struct {
		p       tpq.Pred
		penalty float64
	}
	var cands []cand
	for _, p := range cur.List() {
		if !droppable(p, rootID) {
			continue
		}
		cands = append(cands, cand{p: p, penalty: c.penaltyOf[p.Key()]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].penalty != cands[j].penalty {
			return cands[i].penalty < cands[j].penalty
		}
		return cands[i].p.Key() < cands[j].p.Key()
	})
	for _, cd := range cands {
		p := cd.p
		// Dropping a derivable predicate yields an equivalent query, not
		// a relaxation (Definition 1(i)); it may become meaningful after
		// other predicates are dropped, so it is retried each round.
		if tpq.Derivable(cur, p) {
			continue
		}
		tentative := cur.Minus(p)
		dropped := []tpq.Pred{p}
		penalty := cd.penalty
		newDist := distID
		orphaned := -1
		if p.Kind == tpq.PredPC || p.Kind == tpq.PredAD {
			y := p.Y
			if !hasIncoming(tentative, y) {
				// y disappears: only valid when it has no structural
				// children left (leaf deletion, §3.5.2).
				if hasOutgoing(tentative, y) {
					continue
				}
				orphaned = y
				for _, r := range tentative.List() {
					if r.Kind != tpq.PredPC && r.Kind != tpq.PredAD && r.X == y {
						tentative.Remove(r)
						dropped = append(dropped, r)
						if r.Kind == tpq.PredContains {
							penalty += c.pen.Penalty(r)
						}
					}
				}
				if y == distID {
					// λ moves the distinguished node to the parent.
					i := curQuery.NodeByID(y)
					if i <= 0 {
						continue
					}
					newDist = curQuery.Nodes[curQuery.Nodes[i].Parent].ID
				}
			}
		}
		relaxed, err := tpq.TreeFromPreds(tpq.Core(tentative), newDist)
		if err != nil {
			continue
		}
		return Step{
			Dropped: dropped,
			Penalty: penalty,
			Query:   relaxed,
			DistID:  newDist,
			Desc:    c.describe(p, tentative, orphaned),
		}, true
	}
	return Step{}, false
}

func hasIncoming(s *tpq.PredSet, y int) bool {
	for _, p := range s.List() {
		if (p.Kind == tpq.PredPC || p.Kind == tpq.PredAD) && p.Y == y {
			return true
		}
	}
	return false
}

func hasOutgoing(s *tpq.PredSet, x int) bool {
	for _, p := range s.List() {
		if (p.Kind == tpq.PredPC || p.Kind == tpq.PredAD) && p.X == x {
			return true
		}
	}
	return false
}

func (c *Chain) describe(p tpq.Pred, after *tpq.PredSet, orphaned int) string {
	tag := func(id int) string {
		if t, ok := c.tagOf[id]; ok {
			return t
		}
		return fmt.Sprintf("$%d", id)
	}
	switch p.Kind {
	case tpq.PredPC:
		return fmt.Sprintf("generalize edge %s/%s", tag(p.X), tag(p.Y))
	case tpq.PredAD:
		if orphaned == p.Y {
			return fmt.Sprintf("delete %s", tag(p.Y))
		}
		return fmt.Sprintf("promote %s above %s", tag(p.Y), tag(p.X))
	case tpq.PredContains:
		return fmt.Sprintf("promote contains from %s", tag(p.X))
	default:
		return p.Key()
	}
}

// Len returns the number of relaxation steps in the chain.
func (c *Chain) Len() int { return len(c.Steps) }

// QueryAt returns the relaxed query after j steps (j = 0 is the original).
func (c *Chain) QueryAt(j int) *tpq.Query {
	if j == 0 {
		return c.Original
	}
	return c.Steps[j-1].Query
}

// SSAt returns the uniform structural score of answers first admitted at
// relaxation level j.
func (c *Chain) SSAt(j int) float64 {
	if j == 0 {
		return c.Base
	}
	return c.Steps[j-1].SS
}

// DistIDAt returns the stable ID of the distinguished variable after j
// steps.
func (c *Chain) DistIDAt(j int) int {
	if j == 0 {
		return c.Original.Nodes[c.Original.Dist].ID
	}
	return c.Steps[j-1].DistID
}

// DroppedUpTo returns the set of predicates dropped by steps 1..j.
func (c *Chain) DroppedUpTo(j int) *tpq.PredSet {
	s := tpq.NewPredSet()
	for i := 0; i < j; i++ {
		for _, p := range c.Steps[i].Dropped {
			s.Add(p)
		}
	}
	return s
}

// Weights returns the weight assignment the chain was built with.
func (c *Chain) Weights() rank.Weights { return c.weights }

// Index returns the full-text index the chain was built against.
func (c *Chain) Index() *ir.Index { return c.ix }

// Doc returns the document the chain was built against.
func (c *Chain) Doc() *xmltree.Document { return c.doc }

// Hierarchy returns the type hierarchy the chain matches tags against
// (nil for plain tag equality).
func (c *Chain) Hierarchy() *tpq.Hierarchy { return c.hierarchy }

// String summarizes the chain for diagnostics.
func (c *Chain) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chain base=%.3f steps=%d\n", c.Base, len(c.Steps))
	for i, s := range c.Steps {
		fmt.Fprintf(&sb, "  %2d. %-40s penalty=%.4f ss=%.4f\n", i+1, s.Desc, s.Penalty, s.SS)
	}
	return sb.String()
}

// PenaltyOfPC returns the penalty of dropping the pc predicate between
// variables x and y of the original query (by stable ID), or the full
// structural weight when no such predicate exists. The data-relaxation
// baseline scores shortcut matches with it.
func (c *Chain) PenaltyOfPC(x, y int) float64 {
	if p, ok := c.penaltyOf[(tpq.Pred{Kind: tpq.PredPC, X: x, Y: y}).Key()]; ok {
		return p
	}
	return c.weights.Structural
}

// StepBits returns the signature bit mask of the predicates dropped by
// chain step j (1-based). An answer whose plan signature has all of a
// step's bits set satisfies everything that step dropped.
func (c *Chain) StepBits(j int) uint64 {
	var mask uint64
	for _, p := range c.Steps[j-1].Dropped {
		if bit, ok := c.bitOf[p.Key()]; ok {
			mask |= 1 << bit
		}
	}
	return mask
}
