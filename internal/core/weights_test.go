package core

import (
	"testing"

	"flexpath/internal/exec"
	"flexpath/internal/rank"
	"flexpath/internal/tpq"
)

// TestUserEdgeWeights: a ^weight annotation on a query step scales both
// the base structural score and the penalties of relaxing that edge
// (§4.1: weights may be user-specified).
func TestUserEdgeWeights(t *testing.T) {
	f := newFixture(t, articlesXML)

	plain := f.chain(t, `//article[./section and ./title]`)
	weighted := f.chain(t, `//article[./section^3 and ./title]`)

	// Base: 1 + 1 = 2 vs 3 + 1 = 4.
	if plain.Base != 2 {
		t.Fatalf("plain base = %f", plain.Base)
	}
	if weighted.Base != 4 {
		t.Fatalf("weighted base = %f, want 4", weighted.Base)
	}

	// Relaxing the weighted edge must cost three times the plain edge's
	// penalty at the corresponding step.
	findPenalty := func(c *Chain, desc string) float64 {
		for _, s := range c.Steps {
			if s.Desc == desc {
				return s.Penalty
			}
		}
		t.Fatalf("step %q not in chain:\n%s", desc, c)
		return 0
	}
	pPlain := findPenalty(plain, "generalize edge article/section")
	pWeighted := findPenalty(weighted, "generalize edge article/section")
	if pPlain <= 0 {
		t.Fatalf("plain penalty %f", pPlain)
	}
	if got, want := pWeighted/pPlain, 3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("weighted/plain penalty ratio = %f, want 3", got)
	}
}

func TestWeightAnnotationParsing(t *testing.T) {
	q := tpq.MustParse(`//a[./b^2.5 and .//c]`)
	bi := nodeByTag(q, "b")
	if q.Nodes[bi].Weight != 2.5 {
		t.Errorf("weight = %f", q.Nodes[bi].Weight)
	}
	if q.Nodes[nodeByTag(q, "c")].Weight != 0 {
		t.Error("unweighted step has weight")
	}
	// Weight is part of the canonical form (it changes ranking).
	if tpq.MustParse(`//a[./b^2]`).Canon() == tpq.MustParse(`//a[./b]`).Canon() {
		t.Error("weight not reflected in Canon")
	}
	for _, bad := range []string{`//a[./b^]`, `//a[./b^0]`, `//a[./b^x]`} {
		if _, err := tpq.Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

// TestWeightsAffectRanking: boosting one branch reorders relaxed answers.
func TestWeightsAffectRanking(t *testing.T) {
	// Two candidate answers: one misses the "b" branch, one misses "c".
	doc := `<r>
	  <x id="hasB"><b/><other/></x>
	  <x id="hasC"><c/><other/></x>
	</r>`
	f := newFixture(t, doc)

	run := func(src string) []string {
		c := f.chain(t, src)
		plan, err := c.PlanAt(c.Len())
		if err != nil {
			t.Fatal(err)
		}
		answers := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive, Scheme: rank.StructureFirst})
		var ids []string
		for _, a := range answers {
			id, _ := f.doc.Attr(a.Node, "id")
			ids = append(ids, id)
		}
		return ids
	}

	boostB := run(`//x[./b^5 and ./c]`)
	boostC := run(`//x[./b and ./c^5]`)
	if len(boostB) != 2 || len(boostC) != 2 {
		t.Fatalf("answers: %v / %v", boostB, boostC)
	}
	if boostB[0] != "hasB" {
		t.Errorf("boosting b should rank hasB first, got %v", boostB)
	}
	if boostC[0] != "hasC" {
		t.Errorf("boosting c should rank hasC first, got %v", boostC)
	}
}
