package core

import (
	"testing"

	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/rank"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

func extHierarchy() *tpq.Hierarchy {
	return tpq.NewHierarchy(map[string]string{
		"article": "publication",
		"book":    "publication",
	})
}

func TestRelaxTag(t *testing.T) {
	h := extHierarchy()
	q := tpq.MustParse(`//article[./section]`)
	relaxed, err := RelaxTag(q, 0, h)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Nodes[0].Tag != "publication" {
		t.Errorf("tag = %q", relaxed.Nodes[0].Tag)
	}
	// Soundness under the hierarchy: original contained in relaxed.
	if !tpq.ContainedInWith(q, relaxed, h) {
		t.Error("tag relaxation is not a containment under the hierarchy")
	}
	if _, err := RelaxTag(q, 1, h); err == nil {
		t.Error("relaxed a tag without supertype")
	}
	if _, err := RelaxTag(q, 9, h); err == nil {
		t.Error("accepted out-of-range node")
	}
}

func TestApplicableTagOps(t *testing.T) {
	h := extHierarchy()
	q := tpq.MustParse(`//article[./book and ./section]`)
	ops := ApplicableTagOps(q, h)
	if len(ops) != 2 {
		t.Fatalf("ApplicableTagOps = %v, want two (article, book)", ops)
	}
}

func TestWeakenValue(t *testing.T) {
	q := tpq.MustParse(`//item[@price <= 98 and @qty > 5]`)
	w, err := WeakenValue(q, 0, 0, "100")
	if err != nil {
		t.Fatal(err)
	}
	if w.Nodes[0].Values[0].Value != "100" {
		t.Errorf("value = %q", w.Nodes[0].Values[0].Value)
	}
	// Weakening must strictly enlarge: tightening is rejected.
	if _, err := WeakenValue(q, 0, 0, "90"); err == nil {
		t.Error("accepted a tightening of <=")
	}
	if _, err := WeakenValue(q, 0, 0, "98"); err == nil {
		t.Error("accepted a no-op")
	}
	// > weakens downward.
	if _, err := WeakenValue(q, 0, 1, "3"); err != nil {
		t.Errorf("weakening > downward failed: %v", err)
	}
	if _, err := WeakenValue(q, 0, 1, "7"); err == nil {
		t.Error("accepted a tightening of >")
	}
	// Equality cannot be weakened.
	qe := tpq.MustParse(`//item[@lang = "en"]`)
	if _, err := WeakenValue(qe, 0, 0, "fr"); err == nil {
		t.Error("weakened an equality predicate")
	}
	// Lexicographic weakening for non-numeric literals.
	ql := tpq.MustParse(`//item[@name < "m"]`)
	if _, err := WeakenValue(ql, 0, 0, "z"); err != nil {
		t.Errorf("lexicographic weakening failed: %v", err)
	}
}

// TestWeakenValueSoundness: answers of the weakened query include the
// original's on a concrete document.
func TestWeakenValueSoundness(t *testing.T) {
	doc, err := xmltree.ParseString(`<r>
	  <item price="95"/><item price="99"/><item price="105"/>
	</r>`)
	if err != nil {
		t.Fatal(err)
	}
	ev := exec.NewEvaluator(doc, ir.NewIndex(doc))
	q := tpq.MustParse(`//item[@price <= 98]`)
	w, err := WeakenValue(q, 0, 0, "100")
	if err != nil {
		t.Fatal(err)
	}
	orig := ev.Evaluate(q)
	weak := ev.Evaluate(w)
	if len(orig) != 1 || len(weak) != 2 {
		t.Fatalf("orig=%d weak=%d, want 1 and 2", len(orig), len(weak))
	}
}

// TestHierarchySearchEndToEnd: a chain built with a hierarchy matches
// subtype elements.
func TestHierarchySearchEndToEnd(t *testing.T) {
	doc, err := xmltree.ParseString(`<lib>
	  <publication><section><p>gold coins</p></section></publication>
	  <article><section><p>gold rings</p></section></article>
	  <book><section><p>silver</p></section></book>
	</lib>`)
	if err != nil {
		t.Fatal(err)
	}
	f := fixtureFor(doc)
	q := tpq.MustParse(`//publication[./section[.contains("gold")]]`)

	plain, err := BuildChain(f.doc, f.ix, f.st, rank.UniformWeights(), q)
	if err != nil {
		t.Fatal(err)
	}
	planP, err := plain.PlanAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(exec.Run(planP, exec.Options{Mode: exec.ModeExhaustive})); got != 1 {
		t.Fatalf("plain search found %d answers, want 1", got)
	}

	withH, err := BuildChainH(f.doc, f.ix, f.st, rank.UniformWeights(), q, extHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	planH, err := withH.PlanAt(0)
	if err != nil {
		t.Fatal(err)
	}
	answers := exec.Run(planH, exec.Options{Mode: exec.ModeExhaustive})
	if len(answers) != 2 {
		t.Fatalf("hierarchy search found %d answers, want 2 (publication + article)", len(answers))
	}

	// The semijoin evaluator agrees.
	evH := exec.NewEvaluator(f.doc, f.ix).WithHierarchy(extHierarchy())
	if got := len(evH.Evaluate(q)); got != 2 {
		t.Errorf("hierarchy evaluator found %d answers, want 2", got)
	}
}

func TestBuildChainHRejectsCyclicHierarchy(t *testing.T) {
	f := newFixture(t, articlesXML)
	h := tpq.NewHierarchy(map[string]string{"a": "b", "b": "a"})
	if _, err := BuildChainH(f.doc, f.ix, f.st, rank.UniformWeights(), tpq.MustParse(srcQ1), h); err == nil {
		t.Error("accepted cyclic hierarchy")
	}
}
