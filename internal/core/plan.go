package core

import (
	"fmt"

	"flexpath/internal/exec"
	"flexpath/internal/tpq"
)

// PlanAt builds the scored join plan that encodes the first j steps of the
// relaxation chain into a single query (§5.2.1): every predicate dropped
// by those steps becomes optional — it no longer filters, but an answer
// that still satisfies it earns the predicate's penalty back — and
// variables that lost all their structural predicates become optional
// joins. PlanAt(0) is the exact query.
func (c *Chain) PlanAt(j int) (*exec.Plan, error) {
	if j < 0 || j > len(c.Steps) {
		return nil, fmt.Errorf("core: plan index %d out of range [0,%d]", j, len(c.Steps))
	}
	dropped := c.DroppedUpTo(j)
	cur := c.Closure.Clone()
	for _, p := range dropped.List() {
		cur.Remove(p)
	}

	orig := c.Original
	rootID := orig.Nodes[0].ID

	// Original-query variable metadata in pre-order.
	type varMeta struct {
		id      int
		tag     string
		node    *tpq.Node
		parent  int // variable ID, -1 for root
		depth   int
		present bool
	}
	metas := make([]varMeta, len(orig.Nodes))
	metaByID := make(map[int]*varMeta, len(orig.Nodes))
	for i := range orig.Nodes {
		n := &orig.Nodes[i]
		m := varMeta{id: n.ID, tag: n.Tag, node: n, parent: -1}
		if n.Parent != -1 {
			m.parent = orig.Nodes[n.Parent].ID
			m.depth = metas[n.Parent].depth + 1
		}
		m.present = n.ID == rootID || hasIncoming(cur, n.ID)
		metas[i] = m
		metaByID[n.ID] = &metas[i]
	}

	// Join order: present variables in pre-order, then optional ones.
	var order []*varMeta
	for i := range metas {
		if metas[i].present {
			order = append(order, &metas[i])
		}
	}
	firstOptional := len(order)
	for i := range metas {
		if !metas[i].present {
			order = append(order, &metas[i])
		}
	}
	planIdx := make(map[int]int, len(order))
	for i, m := range order {
		planIdx[m.id] = i
	}

	vars := make([]exec.VarSpec, len(order))
	// guard[i] = set of plan variables whose binding's subtree is
	// guaranteed to contain variable i's binding (its anchor chain); used
	// to elide implied ad checks.
	guard := make([]map[int]bool, len(order))
	for i, m := range order {
		v := exec.VarSpec{
			VarID:  m.id,
			Tag:    m.tag,
			Values: m.node.Values,
			Anchor: -1,
		}
		if c.hierarchy != nil {
			v.Tags = c.hierarchy.Subtypes(m.tag)
		}
		guard[i] = map[int]bool{}
		switch {
		case m.parent == -1:
			v.Rel = exec.RelRoot
		case !m.present:
			// Deleted variable: optional match under the nearest present
			// original ancestor.
			anc := m.parent
			for anc != -1 && !metaByID[anc].present {
				anc = metaByID[anc].parent
			}
			if anc == -1 {
				anc = rootID
			}
			v.Rel = exec.RelOptional
			v.Anchor = planIdx[anc]
		default:
			// Present variable: scope by the strongest remaining incoming
			// predicate (pc to the parent if kept, else the deepest kept
			// ad ancestor); any other kept incoming ad predicates that the
			// anchor chain does not imply become explicit checks.
			var incoming []tpq.Pred
			for _, p := range cur.List() {
				if (p.Kind == tpq.PredPC || p.Kind == tpq.PredAD) && p.Y == m.id {
					incoming = append(incoming, p)
				}
			}
			scopeX := -1
			if cur.HasKey((tpq.Pred{Kind: tpq.PredPC, X: m.parent, Y: m.id}).Key()) {
				v.Rel = exec.RelParent
				v.Anchor = planIdx[m.parent]
				scopeX = m.parent
			} else {
				best := -1
				for _, p := range incoming {
					if p.Kind != tpq.PredAD {
						continue
					}
					if best == -1 || metaByID[p.X].depth > metaByID[best].depth {
						best = p.X
					}
				}
				if best == -1 {
					return nil, fmt.Errorf("core: present variable $%d has no incoming predicate", m.id)
				}
				v.Rel = exec.RelAncestor
				v.Anchor = planIdx[best]
				scopeX = best
			}
			guard[i][v.Anchor] = true
			for g := range guard[v.Anchor] {
				guard[i][g] = true
			}
			for _, p := range incoming {
				if p.X == scopeX {
					continue
				}
				if p.Kind == tpq.PredAD && guard[i][planIdx[p.X]] {
					continue // implied by the anchor chain
				}
				v.Checks = append(v.Checks, exec.StructCheck{
					Other:  planIdx[p.X],
					Parent: p.Kind == tpq.PredPC,
				})
			}
		}
		vars[i] = v
	}

	// Keyword-score locations: each of the original query's contains
	// predicates contributes its IR score at the deepest variable (from
	// the original context upward) whose contains predicate survives.
	type ce struct {
		id    int
		canon string
	}
	ksWeight := map[ce]float64{}
	for _, p := range tpq.Logical(orig).List() {
		if p.Kind != tpq.PredContains {
			continue
		}
		loc := p.X
		for loc != -1 {
			if cur.HasKey((tpq.Pred{Kind: tpq.PredContains, X: loc, Expr: p.Expr}).Key()) {
				break
			}
			loc = metaByID[loc].parent
		}
		if loc == -1 {
			loc = rootID
		}
		ksWeight[ce{loc, p.Expr.Canon()}] += c.weights.Contains
	}

	// Required contains specs (surviving predicates) and optional ones
	// (dropped predicates, which earn penalties back when still
	// satisfied).
	for _, p := range cur.List() {
		if p.Kind != tpq.PredContains {
			continue
		}
		i := planIdx[p.X]
		vars[i].Contains = append(vars[i].Contains, exec.ContainsSpec{
			Res:      c.ix.Eval(p.Expr),
			Required: true,
			Weight:   ksWeight[ce{p.X, p.Expr.Canon()}],
		})
	}
	for _, p := range dropped.List() {
		switch p.Kind {
		case tpq.PredContains:
			i := planIdx[p.X]
			vars[i].Contains = append(vars[i].Contains, exec.ContainsSpec{
				Res:     c.ix.Eval(p.Expr),
				Penalty: c.penaltyOf[p.Key()],
				Bit:     c.bitOf[p.Key()],
			})
		case tpq.PredPC, tpq.PredAD:
			xi, yi := planIdx[p.X], planIdx[p.Y]
			at, other := yi, xi
			otherIsAncestor := true
			if xi > yi {
				at, other = xi, yi
				otherIsAncestor = false
			}
			vars[at].Bonus = append(vars[at].Bonus, exec.BonusPred{
				Other:           other,
				OtherIsAncestor: otherIsAncestor,
				Parent:          p.Kind == tpq.PredPC,
				Penalty:         c.penaltyOf[p.Key()],
				Bit:             c.bitOf[p.Key()],
			})
		}
	}

	distID := c.DistIDAt(j)
	di, ok := planIdx[distID]
	if !ok || !metaByID[distID].present {
		return nil, fmt.Errorf("core: distinguished variable $%d is not present in plan", distID)
	}
	return &exec.Plan{
		Doc:            c.doc,
		Vars:           vars,
		DistVar:        di,
		Base:           c.Base,
		DroppedPenalty: c.Base - c.SSAt(j),
		NumBits:        c.numBits,
		FirstOptional:  firstOptional,
	}, nil
}

// ExactPlanAt builds an ordinary (non-scored) join plan for the relaxed
// query after j chain steps: every remaining predicate is required and
// all answers carry the level's uniform structural score. This is the
// plan shape DPO evaluates at each step of its rewriting loop (§5.1.1,
// Figure 8): the same left-deep structural join machinery as SSO/Hybrid,
// but one full pass per relaxation level.
func (c *Chain) ExactPlanAt(j int) (*exec.Plan, error) {
	if j < 0 || j > len(c.Steps) {
		return nil, fmt.Errorf("core: plan index %d out of range [0,%d]", j, len(c.Steps))
	}
	q := c.QueryAt(j)

	// Keyword-score locations relative to this level: each original
	// contains predicate scores at the deepest variable still carrying
	// it.
	cur := c.Closure.Clone()
	for _, p := range c.DroppedUpTo(j).List() {
		cur.Remove(p)
	}
	orig := c.Original
	parentOf := make(map[int]int, len(orig.Nodes))
	for i := range orig.Nodes {
		if orig.Nodes[i].Parent == -1 {
			parentOf[orig.Nodes[i].ID] = -1
		} else {
			parentOf[orig.Nodes[i].ID] = orig.Nodes[orig.Nodes[i].Parent].ID
		}
	}
	type ce struct {
		id    int
		canon string
	}
	ksWeight := map[ce]float64{}
	for _, p := range tpq.Logical(orig).List() {
		if p.Kind != tpq.PredContains {
			continue
		}
		loc := p.X
		for loc != -1 {
			if cur.HasKey((tpq.Pred{Kind: tpq.PredContains, X: loc, Expr: p.Expr}).Key()) {
				break
			}
			loc = parentOf[loc]
		}
		if loc == -1 {
			loc = orig.Nodes[0].ID
		}
		ksWeight[ce{loc, p.Expr.Canon()}] += c.weights.Contains
	}

	vars := make([]exec.VarSpec, len(q.Nodes))
	for i := range q.Nodes {
		n := &q.Nodes[i]
		v := exec.VarSpec{
			VarID:  n.ID,
			Tag:    n.Tag,
			Values: n.Values,
			Anchor: n.Parent,
		}
		if c.hierarchy != nil {
			v.Tags = c.hierarchy.Subtypes(n.Tag)
		}
		switch {
		case n.Parent == -1:
			v.Rel = exec.RelRoot
		case n.Axis == tpq.Child:
			v.Rel = exec.RelParent
		default:
			v.Rel = exec.RelAncestor
		}
		for _, e := range n.Contains {
			v.Contains = append(v.Contains, exec.ContainsSpec{
				Res:      c.ix.Eval(e),
				Required: true,
				Weight:   ksWeight[ce{n.ID, e.Canon()}],
			})
		}
		vars[i] = v
	}
	return &exec.Plan{
		Doc:           c.doc,
		Vars:          vars,
		DistVar:       q.Dist,
		Base:          c.SSAt(j),
		NumBits:       0,
		FirstOptional: len(vars),
	}, nil
}
