package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpath/internal/tpq"
)

const (
	srcQ1 = `//article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]`
	srcQ2 = `//article[./section[./algorithm and ./paragraph and .contains("XML" and "streaming")]]`
	srcQ3 = `//article[.//algorithm and ./section[./paragraph[.contains("XML" and "streaming")]]]`
	srcQ4 = `//article[.//algorithm and ./section[./paragraph and .contains("XML" and "streaming")]]`
	srcQ5 = `//article[./section[./paragraph and .contains("XML" and "streaming")]]`
	srcQ6 = `//article[.contains("XML" and "streaming")]`
)

func nodeByTag(q *tpq.Query, tag string) int {
	for i := range q.Nodes {
		if q.Nodes[i].Tag == tag {
			return i
		}
	}
	return -1
}

// TestOperatorLadder reproduces the paper's Figure 1 derivations:
// κ(paragraph) turns Q1 into Q2; σ(algorithm) turns Q1 into Q3; applying
// both yields Q4; deleting algorithm from Q2 yields Q5; and repeated
// operators reach Q6.
func TestOperatorLadder(t *testing.T) {
	q1 := tpq.MustParse(srcQ1)

	q2, err := PromoteContains(q1, nodeByTag(q1, "paragraph"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Canon() != tpq.MustParse(srcQ2).Canon() {
		t.Errorf("κ(Q1) = %s, want Q2", q2)
	}

	q3, err := PromoteSubtree(q1, nodeByTag(q1, "algorithm"))
	if err != nil {
		t.Fatal(err)
	}
	if q3.Canon() != tpq.MustParse(srcQ3).Canon() {
		t.Errorf("σ(Q1) = %s, want Q3", q3)
	}

	q4, err := PromoteContains(q3, nodeByTag(q3, "paragraph"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if q4.Canon() != tpq.MustParse(srcQ4).Canon() {
		t.Errorf("κ(σ(Q1)) = %s, want Q4", q4)
	}

	q5, err := DeleteLeaf(q2, nodeByTag(q2, "algorithm"))
	if err != nil {
		t.Fatal(err)
	}
	if q5.Canon() != tpq.MustParse(srcQ5).Canon() {
		t.Errorf("λ(κ(Q1)) = %s, want Q5", q5)
	}

	// Q6: promote contains to the root and delete everything else.
	q6, err := PromoteContains(q5, nodeByTag(q5, "section"), 0)
	if err != nil {
		t.Fatal(err)
	}
	q6, err = DeleteLeaf(q6, nodeByTag(q6, "paragraph"))
	if err != nil {
		t.Fatal(err)
	}
	q6, err = DeleteLeaf(q6, nodeByTag(q6, "section"))
	if err != nil {
		t.Fatal(err)
	}
	if q6.Canon() != tpq.MustParse(srcQ6).Canon() {
		t.Errorf("relaxed to %s, want Q6", q6)
	}
}

func TestOperatorErrors(t *testing.T) {
	q := tpq.MustParse(srcQ1)
	if _, err := AxisGeneralize(q, 0); err == nil {
		t.Error("γ accepted the root")
	}
	if _, err := DeleteLeaf(q, 0); err == nil {
		t.Error("λ accepted the root")
	}
	if _, err := DeleteLeaf(q, nodeByTag(q, "section")); err == nil {
		t.Error("λ accepted a non-leaf")
	}
	if _, err := PromoteSubtree(q, nodeByTag(q, "section")); err == nil {
		t.Error("σ accepted a child of the root")
	}
	if _, err := PromoteContains(q, 0, 0); err == nil {
		t.Error("κ accepted the root")
	}
	if _, err := PromoteContains(q, nodeByTag(q, "algorithm"), 0); err == nil {
		t.Error("κ accepted a node without contains")
	}
	g, err := AxisGeneralize(q, nodeByTag(q, "section"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AxisGeneralize(g, nodeByTag(g, "section")); err == nil {
		t.Error("γ accepted an ad edge")
	}
}

// TestDeleteDistinguishedLeaf: λ on the distinguished node makes its
// parent distinguished.
func TestDeleteDistinguishedLeaf(t *testing.T) {
	q := tpq.MustParse(`//a/b/c`)
	if q.Nodes[q.Dist].Tag != "c" {
		t.Fatal("setup: distinguished should be c")
	}
	out, err := DeleteLeaf(q, q.Dist)
	if err != nil {
		t.Fatal(err)
	}
	if out.Nodes[out.Dist].Tag != "b" {
		t.Errorf("distinguished after λ = %s, want b", out.Nodes[out.Dist].Tag)
	}
}

// TestSoundness (Theorem 2, first half): every operator application
// yields a query that strictly contains the original.
func TestSoundness(t *testing.T) {
	queries := []string{srcQ1, srcQ2, srcQ3, srcQ4, srcQ5,
		`//item[./description/parlist and ./mailbox/mail/text]`,
		`//a/b[./c[.contains("gold")] and .//d]`,
	}
	for _, src := range queries {
		q := tpq.MustParse(src)
		for _, op := range ApplicableOps(q) {
			relaxed, err := op.Apply(q)
			if err != nil {
				t.Errorf("%s on %s: %v", op, src, err)
				continue
			}
			if err := relaxed.Validate(); err != nil {
				t.Errorf("%s on %s: invalid result: %v", op, src, err)
				continue
			}
			if !tpq.ContainedIn(q, relaxed) {
				t.Errorf("%s on %s: original not contained in relaxation", op, src)
			}
			// Deleting the distinguished node changes the answer tag, so
			// strictness holds trivially; for all others the relaxed
			// query must not be contained back.
			if tpq.ContainedIn(relaxed, q) {
				t.Errorf("%s on %s: relaxation is equivalent, not strict", op, src)
			}
		}
	}
}

// TestPropertySoundnessRandom applies random operator sequences to random
// queries and checks containment is preserved transitively.
func TestPropertySoundnessRandom(t *testing.T) {
	tags := []string{"a", "b", "c", "d"}
	randomQuery := func(r *rand.Rand) *tpq.Query {
		n := 2 + r.Intn(4)
		q := &tpq.Query{}
		for i := 0; i < n; i++ {
			node := tpq.Node{ID: i + 1, Tag: tags[r.Intn(len(tags))], Parent: -1}
			if i > 0 {
				node.Parent = r.Intn(i)
				if r.Intn(3) == 0 {
					node.Axis = tpq.Descendant
				}
			}
			q.Nodes = append(q.Nodes, node)
		}
		q.Dist = 0
		q.Normalize()
		return q
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := randomQuery(r)
		cur := orig
		for step := 0; step < 4; step++ {
			ops := ApplicableOps(cur)
			if len(ops) == 0 {
				break
			}
			next, err := ops[r.Intn(len(ops))].Apply(cur)
			if err != nil {
				return false
			}
			if !tpq.ContainedIn(orig, next) || !tpq.ContainedIn(cur, next) {
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEnumerateCoversFigure1 (completeness direction of Theorem 2 on the
// paper's example): the enumerated space of Q1 includes Q2..Q6.
func TestEnumerateCoversFigure1(t *testing.T) {
	space := EnumerateRelaxations(tpq.MustParse(srcQ1), -1)
	have := map[string]bool{}
	for _, r := range space {
		have[r.Query.Canon()] = true
	}
	for name, src := range map[string]string{
		"Q2": srcQ2, "Q3": srcQ3, "Q4": srcQ4, "Q5": srcQ5, "Q6": srcQ6,
	} {
		if !have[tpq.MustParse(src).Canon()] {
			t.Errorf("relaxation space of Q1 misses %s", name)
		}
	}
	// BFS order: the original comes first at depth 0.
	if space[0].Depth != 0 || space[0].Query.Canon() != tpq.MustParse(srcQ1).Canon() {
		t.Error("space does not start with the original query")
	}
	for i := 1; i < len(space); i++ {
		if space[i].Depth < space[i-1].Depth {
			t.Error("space not in BFS order")
			break
		}
		if len(space[i].Ops) != space[i].Depth {
			t.Errorf("ops length %d != depth %d", len(space[i].Ops), space[i].Depth)
		}
	}
}

// TestEnumerateDepthBound: depth-limited enumeration is a prefix of the
// full space.
func TestEnumerateDepthBound(t *testing.T) {
	q := tpq.MustParse(srcQ1)
	d1 := EnumerateRelaxations(q, 1)
	full := EnumerateRelaxations(q, -1)
	if len(d1) >= len(full) {
		t.Fatalf("depth-1 space (%d) not smaller than full (%d)", len(d1), len(full))
	}
	for i, r := range d1 {
		if r.Query.Canon() != full[i].Query.Canon() {
			t.Fatalf("depth-limited space diverges at %d", i)
		}
	}
}

// TestSpaceAllValid: every enumerated relaxation strictly contains the
// original and is a valid TPQ.
func TestSpaceAllValid(t *testing.T) {
	q := tpq.MustParse(srcQ1)
	for _, r := range EnumerateRelaxations(q, -1)[1:] {
		if err := r.Query.Validate(); err != nil {
			t.Errorf("invalid relaxation %s: %v", r.Query, err)
		}
		if !tpq.ContainedIn(q, r.Query) {
			t.Errorf("Q1 not contained in %s (ops %v)", r.Query, r.Ops)
		}
	}
}
