package core

import (
	"sync"

	"flexpath/internal/exec"
	"flexpath/internal/rank"
)

// LevelKey identifies one estimator-chosen relaxation prefix: the prefix
// depends only on K and the ranking scheme once the chain is fixed.
type LevelKey struct {
	K      int
	Scheme rank.Scheme
}

// Template is a reusable evaluation skeleton for one (query, weights,
// hierarchy) triple over one document: the relaxation chain plus lazily
// memoized join plans and estimator-chosen prefix levels. A template hit
// in the plan cache therefore skips not just the chain build but the
// relaxation enumeration (the per-level estimator loop shared by the
// plan-based algorithms and the cost planner) and the join-plan
// construction — and, via the plan's own candidate-list memo (exec.Run),
// the leaf evaluation of the shared plans.
//
// All memoized state is safe for concurrent searches: chains and plans
// are never mutated by execution (exec.Run keeps its per-run state in
// locals), and the memo maps are guarded by a mutex. Documents are
// immutable, so nothing here ever goes stale.
type Template struct {
	// Chain is the query's relaxation chain; it is fixed at construction.
	Chain *Chain

	mu sync.Mutex
	// plans memoizes Chain.PlanAt (the scored SSO/Hybrid plan per encoded
	// prefix); exact memoizes Chain.ExactPlanAt (DPO's per-level plans).
	plans map[int]*exec.Plan
	exact map[int]*exec.Plan
	// levels memoizes the admitting relaxation level per (K, scheme).
	// It is seeded by the estimator loop and overwritten with the final
	// level after a plan-based run restarts past the estimate, so later
	// searches with the same K start at the level that actually produced
	// K answers instead of repeating the restarts.
	levels map[LevelKey]int
}

// NewTemplate wraps a built chain in an empty template.
func NewTemplate(c *Chain) *Template {
	return &Template{
		Chain:  c,
		plans:  make(map[int]*exec.Plan),
		exact:  make(map[int]*exec.Plan),
		levels: make(map[LevelKey]int),
	}
}

// PlanAt returns the memoized scored plan encoding the first j chain
// steps, building it on first use. Errors are not memoized.
func (t *Template) PlanAt(j int) (*exec.Plan, error) {
	return t.plan(t.plans, j, t.Chain.PlanAt)
}

// ExactPlanAt returns the memoized exact-evaluation plan for level j,
// building it on first use.
func (t *Template) ExactPlanAt(j int) (*exec.Plan, error) {
	return t.plan(t.exact, j, t.Chain.ExactPlanAt)
}

func (t *Template) plan(memo map[int]*exec.Plan, j int, build func(int) (*exec.Plan, error)) (*exec.Plan, error) {
	t.mu.Lock()
	if p, ok := memo[j]; ok {
		t.mu.Unlock()
		return p, nil
	}
	t.mu.Unlock()
	// Build outside the lock: plan construction is the expensive step,
	// and concurrent searches at different levels must not serialize.
	p, err := build(j)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if prev, ok := memo[j]; ok {
		// A concurrent build won the race; share its plan so every run
		// benefits from the same memoized candidate lists.
		p = prev
	} else {
		memo[j] = p
	}
	t.mu.Unlock()
	return p, nil
}

// Level returns the memoized admitting level for key, if known.
func (t *Template) Level(key LevelKey) (int, bool) {
	t.mu.Lock()
	j, ok := t.levels[key]
	t.mu.Unlock()
	return j, ok
}

// SetLevel records the admitting level for key, overwriting any earlier
// (estimate-only) value.
func (t *Template) SetLevel(key LevelKey, j int) {
	t.mu.Lock()
	t.levels[key] = j
	t.mu.Unlock()
}
