package topk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flexpath/internal/core"
	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/rank"
	"flexpath/internal/tpq"
)

// randomTPQ builds a random tree pattern over the xmark tag vocabulary:
// random shape, axes, and contains predicates. The patterns need not be
// schema-conformant — relaxation semantics must hold regardless.
func randomTPQ(r *rand.Rand) *tpq.Query {
	tags := []string{"item", "description", "parlist", "listitem",
		"mailbox", "mail", "text", "bold", "keyword", "name", "incategory"}
	words := []string{"gold", "silver", "xml", "vintage", "rare"}
	n := 2 + r.Intn(4)
	q := &tpq.Query{}
	for i := 0; i < n; i++ {
		node := tpq.Node{ID: i + 1, Tag: tags[r.Intn(len(tags))], Parent: -1}
		if i == 0 {
			node.Tag = "item"
		} else {
			node.Parent = r.Intn(i)
			if r.Intn(3) == 0 {
				node.Axis = tpq.Descendant
			}
		}
		q.Nodes = append(q.Nodes, node)
	}
	// One contains predicate on a random node.
	ci := r.Intn(n)
	var expr string
	if r.Intn(2) == 0 {
		expr = words[r.Intn(len(words))]
	} else {
		expr = words[r.Intn(len(words))] + " and " + words[r.Intn(len(words))]
	}
	if parsed, err := ir.ParseExpr(expr); err == nil {
		q.Nodes[ci].Contains = append(q.Nodes[ci].Contains, parsed)
	}
	q.Dist = 0
	q.Normalize()
	return q
}

// TestFuzzAlgorithmsConsistent cross-checks the three algorithms and the
// pruning machinery on random queries over a small xmark document.
func TestFuzzAlgorithmsConsistent(t *testing.T) {
	f := xmarkFixture(t, 48<<10, 99)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomTPQ(r)
		if q.Validate() != nil {
			return true // skip malformed
		}
		chain, err := core.BuildChain(f.doc, f.ix, f.st, rank.UniformWeights(), q)
		if err != nil {
			t.Logf("seed %d: chain: %v", seed, err)
			return false
		}
		k := 1 + r.Intn(20)
		scheme := []rank.Scheme{rank.StructureFirst, rank.KeywordFirst, rank.Combined}[r.Intn(3)]
		opts := func() Options { return Options{K: k, Scheme: scheme} }

		sso := SSO(chain, f.est, opts())
		hyb := Hybrid(chain, f.est, opts())
		if len(sso) != len(hyb) {
			t.Logf("seed %d q=%s: SSO %d vs Hybrid %d", seed, q, len(sso), len(hyb))
			return false
		}
		for i := range sso {
			if sso[i].Node != hyb[i].Node || sso[i].Score != hyb[i].Score {
				t.Logf("seed %d q=%s: rank %d differs", seed, q, i)
				return false
			}
		}

		// Pruned top-K scores match the exhaustive run of the full plan.
		plan, err := chain.PlanAt(chain.Len())
		if err != nil {
			t.Logf("seed %d: plan: %v", seed, err)
			return false
		}
		full := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive, Scheme: scheme})
		pruned := exec.Run(plan, exec.Options{K: k, Scheme: scheme, Mode: exec.ModeSorted})
		limit := k
		if limit > len(full) {
			limit = len(full)
		}
		if len(pruned) < limit {
			t.Logf("seed %d q=%s: pruned %d < %d", seed, q, len(pruned), limit)
			return false
		}
		for i := 0; i < limit; i++ {
			if math.Abs(full[i].Score.SS-pruned[i].Score.SS) > 1e-9 ||
				math.Abs(full[i].Score.KS-pruned[i].Score.KS) > 1e-9 {
				t.Logf("seed %d q=%s: pruning changed rank-%d score (%v vs %v)",
					seed, q, i, pruned[i].Score, full[i].Score)
				return false
			}
		}

		// Every DPO answer's level is the minimal admitting level.
		dpo := DPO(f.ev, chain, opts())
		for _, res := range dpo {
			min := -1
			for j := 0; j <= chain.Len() && min < 0; j++ {
				for _, n := range f.ev.Evaluate(chain.QueryAt(j)) {
					if n == res.Node {
						min = j
						break
					}
				}
			}
			if min != res.Relaxations {
				t.Logf("seed %d q=%s: node %d DPO level %d, minimal %d",
					seed, q, res.Node, res.Relaxations, min)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzExactAnswersKeepBaseScore: on random queries, every exact
// answer returned by any algorithm carries the full base score.
func TestFuzzExactAnswersKeepBaseScore(t *testing.T) {
	f := xmarkFixture(t, 48<<10, 5)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomTPQ(r)
		if q.Validate() != nil {
			return true
		}
		chain, err := core.BuildChain(f.doc, f.ix, f.st, rank.UniformWeights(), q)
		if err != nil {
			return false
		}
		exact := map[int64]bool{}
		for _, n := range f.ev.Evaluate(q) {
			exact[int64(n)] = true
		}
		// Exact answers carry the full base score; all answers stay at or
		// below it. (The converse — non-exact strictly below base — does
		// not hold in general: relaxing a predicate the data never
		// satisfies in its strong form costs a zero penalty under the
		// paper's formulas, e.g. π(pc) = #pc/#ad = 0 when no
		// parent-child pair of those tags exists.)
		for _, res := range Hybrid(chain, f.est, Options{K: 50, Scheme: rank.StructureFirst}) {
			if exact[int64(res.Node)] && math.Abs(res.Score.SS-chain.Base) > 1e-9 {
				t.Logf("seed %d q=%s: exact answer %d scored %f, base %f",
					seed, q, res.Node, res.Score.SS, chain.Base)
				return false
			}
			if res.Score.SS > chain.Base+1e-9 {
				t.Logf("seed %d q=%s: answer %d above base score", seed, q, res.Node)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
