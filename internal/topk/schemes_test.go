package topk

import (
	"math"
	"testing"

	"flexpath/internal/exec"
	"flexpath/internal/rank"
)

// TestKeywordFirstGlobal: under keyword-first, the pruned SSO result must
// equal the brute-force ranking of the maximally relaxed plan (an answer
// with the worst structural score might still top the ranking, §5.1).
func TestKeywordFirstGlobal(t *testing.T) {
	f := xmarkFixture(t, 96<<10, 21)
	for _, src := range []string{
		`//item[./description/parlist and .contains("gold")]`,
		`//item[./mailbox/mail/text[.contains("xml" and "streaming")]]`,
	} {
		c := f.chain(t, src)
		plan, err := c.PlanAt(c.Len())
		if err != nil {
			t.Fatal(err)
		}
		full := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive, Scheme: rank.KeywordFirst})
		for _, k := range []int{1, 5, 20} {
			got := SSO(c, f.est, Options{K: k, Scheme: rank.KeywordFirst})
			limit := k
			if limit > len(full) {
				limit = len(full)
			}
			if len(got) < limit {
				t.Fatalf("%s k=%d: got %d answers, want >= %d", src, k, len(got), limit)
			}
			for i := 0; i < limit; i++ {
				if math.Abs(got[i].Score.KS-full[i].Score.KS) > 1e-9 {
					t.Errorf("%s k=%d rank %d: ks %f, brute force %f",
						src, k, i, got[i].Score.KS, full[i].Score.KS)
				}
			}
		}
	}
}

// TestCombinedPruningRule: DPO's §5.1 stop rule (ignore relaxations whose
// structural score drops below ss(i) - m) must not lose any top-K answer
// compared with walking the whole chain.
func TestCombinedPruningRule(t *testing.T) {
	f := xmarkFixture(t, 64<<10, 33)
	for _, src := range []string{
		`//item[./description/parlist and .contains("gold")]`,
		`//item[./description/parlist/listitem and ./name and .contains("rare")]`,
	} {
		c := f.chain(t, src)
		// Brute force: force DPO through every level by asking for more
		// answers than exist.
		brute := DPO(f.ev, c, Options{K: 1 << 20, Scheme: rank.Combined})
		for _, k := range []int{1, 3, 10} {
			got := DPO(f.ev, c, Options{K: k, Scheme: rank.Combined})
			limit := k
			if limit > len(brute) {
				limit = len(brute)
			}
			if len(got) < limit {
				t.Fatalf("%s k=%d: got %d, want >= %d", src, k, len(got), limit)
			}
			for i := 0; i < limit; i++ {
				gotTotal := got[i].Score.SS + got[i].Score.KS
				wantTotal := brute[i].Score.SS + brute[i].Score.KS
				if math.Abs(gotTotal-wantTotal) > 1e-9 {
					t.Errorf("%s k=%d rank %d: combined %f, brute force %f",
						src, k, i, gotTotal, wantTotal)
				}
			}
		}
	}
}

// TestStructureFirstTieRule: DPO must continue through zero-penalty
// (score-tied) levels after reaching K, or it could return a worse
// same-score answer set.
func TestStructureFirstTieRule(t *testing.T) {
	f := xmarkFixture(t, 64<<10, 33)
	c := f.chain(t, `//item[./description/parlist and ./name]`)
	brute := DPO(f.ev, c, Options{K: 1 << 20, Scheme: rank.StructureFirst})
	for _, k := range []int{2, 8} {
		got := DPO(f.ev, c, Options{K: k, Scheme: rank.StructureFirst})
		limit := k
		if limit > len(brute) {
			limit = len(brute)
		}
		for i := 0; i < limit; i++ {
			if math.Abs(got[i].Score.SS-brute[i].Score.SS) > 1e-9 {
				t.Errorf("k=%d rank %d: ss %f vs brute %f", k, i, got[i].Score.SS, brute[i].Score.SS)
			}
		}
	}
}
