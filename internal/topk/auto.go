package topk

import (
	"time"

	"flexpath/internal/core"
	"flexpath/internal/exec"
	"flexpath/internal/obs"
	"flexpath/internal/planner"
	"flexpath/internal/stats"
)

// Auto dispatches one search to DPO, SSO or Hybrid — whichever the
// cost-based planner predicts cheapest for this query and K — and feeds
// the observed run time and restart count back into the planner's
// calibrator. The answers are identical to those of any fixed algorithm;
// only the evaluation cost (and the DPO-vs-plan difference in per-answer
// relaxation detail) depends on the choice. Planning time is recorded
// under obs.StagePlan.
func Auto(ev *exec.Evaluator, chain *core.Chain, est *stats.Estimator, pl *planner.Planner, opts Options) ([]Result, planner.Choice) {
	tPlan := time.Now()
	choice := pl.Choose(chain, opts.Template, opts.K, opts.Scheme)
	opts.Span.Rec(obs.StagePlan, time.Since(tPlan))

	start := time.Now()
	var results []Result
	switch choice.Algo {
	case planner.DPO:
		results = DPO(ev, chain, opts)
	case planner.SSO:
		results = SSO(chain, est, opts)
	default:
		results = Hybrid(chain, est, opts)
	}
	// A cancelled run is truncated: its wall time says nothing about the
	// algorithm's true cost, so it must not calibrate the model.
	if !opts.cancelled() {
		pl.Observe(choice, time.Since(start), opts.metrics().Restarts)
	}
	return results, choice
}
