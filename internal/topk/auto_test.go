package topk

import (
	"testing"

	"flexpath/internal/planner"
	"flexpath/internal/rank"
)

// TestAutoMatchesChosenAlgorithm: Auto must return exactly what the
// algorithm it dispatched to would have returned.
func TestAutoMatchesChosenAlgorithm(t *testing.T) {
	fixtures := map[string]*fixture{
		"articles": newFixture(t, articlesXML),
		"xmark":    xmarkFixture(t, 96<<10, 5),
	}
	queries := map[string][]string{
		"articles": {srcQ1, `//article[./section/paragraph[.contains("xml")]]`},
		"xmark": {
			`//item[./description/parlist]`,
			`//item[./description/parlist and ./mailbox/mail/text]`,
		},
	}
	for name, f := range fixtures {
		for _, src := range queries[name] {
			c := f.chain(t, src)
			for _, scheme := range schemes() {
				for _, k := range []int{1, 5, 25} {
					// A fresh planner per run keeps the choice static: no
					// calibration drift between Auto and the replay below.
					pl := planner.New(f.est)
					got, choice := Auto(f.ev, c, f.est, pl, Options{K: k, Scheme: scheme})
					var want []Result
					switch choice.Algo {
					case planner.DPO:
						want = DPO(f.ev, c, Options{K: k, Scheme: scheme})
					case planner.SSO:
						want = SSO(c, f.est, Options{K: k, Scheme: scheme})
					default:
						want = Hybrid(c, f.est, Options{K: k, Scheme: scheme})
					}
					if len(got) != len(want) {
						t.Fatalf("%s %s k=%d %v [%v]: Auto %d results, %v %d",
							name, src, k, scheme, choice.Algo, len(got), choice.Algo, len(want))
					}
					for i := range got {
						if got[i].Node != want[i].Node || got[i].Score != want[i].Score {
							t.Errorf("%s %s k=%d %v [%v]: result %d differs: %+v vs %+v",
								name, src, k, scheme, choice.Algo, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestAutoObservesRuns: Auto must feed completed runs back into the
// planner's calibrator.
func TestAutoObservesRuns(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	pl := planner.New(f.est)
	for i := 0; i < 3; i++ {
		Auto(f.ev, c, f.est, pl, Options{K: 3, Scheme: rank.StructureFirst})
	}
	s := pl.Snapshot()
	if s.Observations != 3 {
		t.Errorf("observations = %d, want 3", s.Observations)
	}
	total := uint64(0)
	for _, n := range s.Choices {
		total += n
	}
	if total != 3 {
		t.Errorf("choices = %v, want 3 total", s.Choices)
	}
}

// TestDPOVariantCountersAgree: plan-based and semijoin DPO walk the same
// relaxation chain level by level, so their work counters must agree —
// the same number of per-level queries evaluated and no restarts (DPO
// never restarts; it stops at the admitting level). A past regression
// had the plan-based variant counting a level as evaluated before plan
// construction could fail.
func TestDPOVariantCountersAgree(t *testing.T) {
	fixtures := map[string]*fixture{
		"articles": newFixture(t, articlesXML),
		"xmark":    xmarkFixture(t, 96<<10, 5),
	}
	queries := map[string][]string{
		"articles": {srcQ1, `//article[./section/paragraph[.contains("xml")]]`},
		"xmark": {
			`//item[./description/parlist]`,
			`//item[./description/parlist and ./mailbox/mail/text]`,
		},
	}
	for name, f := range fixtures {
		for _, src := range queries[name] {
			c := f.chain(t, src)
			for _, scheme := range schemes() {
				for _, k := range []int{1, 5, 40} {
					var ma, mb Metrics
					DPO(f.ev, c, Options{K: k, Scheme: scheme, Metrics: &ma})
					DPOSemijoin(f.ev, c, Options{K: k, Scheme: scheme, Metrics: &mb})
					if ma.QueriesEvaluated != mb.QueriesEvaluated {
						t.Errorf("%s %s k=%d %v: QueriesEvaluated %d (plan) vs %d (semijoin)",
							name, src, k, scheme, ma.QueriesEvaluated, mb.QueriesEvaluated)
					}
					if ma.RelaxationsEncoded != mb.RelaxationsEncoded {
						t.Errorf("%s %s k=%d %v: RelaxationsEncoded %d (plan) vs %d (semijoin)",
							name, src, k, scheme, ma.RelaxationsEncoded, mb.RelaxationsEncoded)
					}
					if ma.Restarts != 0 || mb.Restarts != 0 {
						t.Errorf("%s %s k=%d %v: DPO reported restarts: %d (plan), %d (semijoin)",
							name, src, k, scheme, ma.Restarts, mb.Restarts)
					}
				}
			}
		}
	}
}
