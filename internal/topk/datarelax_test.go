package topk

import (
	"strings"
	"testing"

	"flexpath/internal/rank"
	"flexpath/internal/xmltree"
)

func TestDataRelaxBasics(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	var m Metrics
	results, err := DataRelax(c, Options{K: 10, Scheme: rank.StructureFirst, Metrics: &m}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if m.PairsMaterialized == 0 {
		t.Error("no pairs materialized")
	}
	// The exact match must rank first with the full base score.
	exact := f.ev.Evaluate(c.Original)
	if len(exact) != 1 || results[0].Node != exact[0] {
		t.Errorf("top data-relaxation answer %d, want exact %v", results[0].Node, exact)
	}
	if results[0].Score.SS != c.Base {
		t.Errorf("exact answer ss %f, want %f", results[0].Score.SS, c.Base)
	}
	// Every answer must be an answer of the all-edges-generalized query.
	loose := map[xmltree.NodeID]bool{}
	for _, n := range f.ev.Evaluate(c.QueryAt(0)) {
		loose[n] = true
	}
	_ = loose
}

// TestDataRelaxMatchesEdgeGeneralization: data relaxation evaluates the
// query with every edge treated as ancestor-descendant, so its answer set
// equals the all-axes-generalized query's.
func TestDataRelaxMatchesEdgeGeneralization(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	results, err := DataRelax(c, Options{K: 100, Scheme: rank.StructureFirst}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got := map[xmltree.NodeID]bool{}
	for _, r := range results {
		got[r.Node] = true
	}
	// Build the fully axis-generalized query by textual substitution.
	gen := f.chain(t, strings.ReplaceAll(srcQ1, "./", ".//"))
	want := f.ev.Evaluate(gen.Original)
	if len(got) != len(want) {
		t.Fatalf("data relaxation found %d answers, generalized query %d", len(got), len(want))
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("missing answer %d", n)
		}
	}
}

func TestDataRelaxBudget(t *testing.T) {
	f := xmarkFixture(t, 128<<10, 7)
	c := f.chain(t, `//item[./description/parlist and ./mailbox/mail/text]`)
	if _, err := DataRelax(c, Options{K: 10, Scheme: rank.StructureFirst}, 10); err == nil {
		t.Error("tiny budget did not fail")
	}
	results, err := DataRelax(c, Options{K: 10, Scheme: rank.StructureFirst}, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("no results within budget")
	}
}

// TestDataRelaxGrowth: the number of materialized pairs grows
// superlinearly relative to answers, which is why the strategy fails at
// scale.
func TestDataRelaxGrowth(t *testing.T) {
	query := `//item[./description//parlist]`
	var prevPairs int
	for _, kb := range []int64{64, 256} {
		f := xmarkFixture(t, kb<<10, 7)
		c := f.chain(t, query)
		var m Metrics
		if _, err := DataRelax(c, Options{K: 10, Scheme: rank.StructureFirst, Metrics: &m}, 1<<26); err != nil {
			t.Fatal(err)
		}
		if m.PairsMaterialized <= prevPairs {
			t.Errorf("pairs did not grow with document size: %d then %d", prevPairs, m.PairsMaterialized)
		}
		prevPairs = m.PairsMaterialized
	}
}
