package topk

import (
	"fmt"
	"time"

	"flexpath/internal/core"
	"flexpath/internal/ir"
	"flexpath/internal/obs"
	"flexpath/internal/rank"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

// DataRelax implements the third evaluation strategy for approximate XML
// queries that the paper surveys (§7): data relaxation, as in APPROXML
// [Damiani et al., EDBT 2002]. Instead of rewriting the query (DPO) or
// encoding relaxations into the plan (SSO/Hybrid), the *document* is
// relaxed: the ancestor-descendant closure of the data — "shortcut edges
// between each pair of nodes in the same path" — is materialized, and the
// original query is evaluated over the closed graph, so every structural
// edge matches through any ancestor path. Answers are scored with the same
// penalty machinery as the other algorithms (full score when the original
// pc/ad relationship holds, penalty otherwise).
//
// The paper notes this strategy "was shown to quickly fail with large
// databases", and this implementation reproduces why: the closure is
// quadratic-ish in path depth and tag frequency. MaxPairs bounds the
// materialization; when exceeded, DataRelax fails, which is the observable
// behavior of the original system at scale.
func DataRelax(chain *core.Chain, opts Options, maxPairs int) ([]Result, error) {
	// The closure materialization and the evaluation over it are this
	// strategy's whole cost; charge both to the join stage.
	if opts.Span != nil {
		start := time.Now()
		defer func() { opts.Span.Rec(obs.StageJoin, time.Since(start)) }()
	}
	m := opts.metrics()
	q := chain.Original
	doc := chain.Doc()

	// Materialize the shortcut-edge closure restricted to the query's tag
	// pairs: for each query edge, every (ancestor, descendant) node pair
	// with the right tags.
	type edgeKey struct{ parent, child int } // node indexes in q
	pairs := make(map[edgeKey]map[xmltree.NodeID][]xmltree.NodeID)
	total := 0
	for i := 1; i < len(q.Nodes); i++ {
		if opts.cancelled() {
			return nil, opts.Ctx.Err()
		}
		key := edgeKey{q.Nodes[i].Parent, i}
		byAnc := make(map[xmltree.NodeID][]xmltree.NodeID)
		childTag := q.Nodes[i].Tag
		for _, d := range doc.NodesWithTag(childTag) {
			for a := doc.Parent(d); a != xmltree.InvalidNode; a = doc.Parent(a) {
				if doc.TagName(a) == q.Nodes[key.parent].Tag {
					byAnc[a] = append(byAnc[a], d)
					total++
					if total > maxPairs {
						return nil, fmt.Errorf(
							"topk: data relaxation exceeded the %d-pair budget materializing %s//%s",
							maxPairs, q.Nodes[key.parent].Tag, childTag)
					}
				}
			}
		}
		pairs[key] = byAnc
	}
	m.PairsMaterialized = total

	// Evaluate the original query over the closed graph: every edge is
	// satisfied by any materialized shortcut pair. Tuples are built in
	// query pre-order.
	contains := make([][]*ir.Result, len(q.Nodes))
	for i := range q.Nodes {
		for _, e := range q.Nodes[i].Contains {
			contains[i] = append(contains[i], chain.Index().Eval(e))
		}
	}
	type pt struct {
		bind []xmltree.NodeID
		ss   float64
		ks   float64
	}
	pen := chain.PenaltyOfPC
	tuples := []pt{{bind: make([]xmltree.NodeID, len(q.Nodes)), ss: chain.Base}}
	for i := range q.Nodes {
		if opts.cancelled() {
			return nil, opts.Ctx.Err()
		}
		var next []pt
		for _, t := range tuples {
			var cands []xmltree.NodeID
			if i == 0 {
				cands = doc.NodesWithTag(q.Nodes[0].Tag)
			} else {
				cands = pairs[edgeKey{q.Nodes[i].Parent, i}][t.bind[q.Nodes[i].Parent]]
			}
		candidate:
			for _, n := range cands {
				for _, c := range contains[i] {
					if !c.Satisfies(n) {
						continue candidate
					}
				}
				nt := pt{bind: append(append([]xmltree.NodeID(nil), t.bind[:i]...), n), ss: t.ss, ks: t.ks}
				for len(nt.bind) < len(q.Nodes) {
					nt.bind = append(nt.bind, xmltree.InvalidNode)
				}
				// Penalize shortcut matches that break the original pc
				// constraint.
				if i > 0 && q.Nodes[i].Axis == tpq.Child &&
					doc.Parent(n) != nt.bind[q.Nodes[i].Parent] {
					nt.ss -= pen(q.Nodes[q.Nodes[i].Parent].ID, q.Nodes[i].ID)
				}
				for _, c := range contains[i] {
					nt.ks += c.ScoreWithin(n)
				}
				next = append(next, nt)
			}
		}
		tuples = next
		m.Pipeline.TuplesGenerated += len(next)
		if len(tuples) == 0 {
			return nil, nil
		}
	}

	best := make(map[xmltree.NodeID]Result, len(tuples))
	for _, t := range tuples {
		n := t.bind[q.Dist]
		sc := rank.Score{SS: t.ss, KS: t.ks}
		if prev, ok := best[n]; !ok || sc.Compare(prev.Score, opts.Scheme) > 0 {
			best[n] = Result{Node: n, Score: sc}
		}
	}
	results := make([]Result, 0, len(best))
	for _, r := range best {
		results = append(results, r)
	}
	sortResults(results, opts.Scheme)
	if opts.K > 0 && len(results) > opts.K {
		results = results[:opts.K]
	}
	return results, nil
}
