// Package topk implements the three top-K query evaluation algorithms of
// FleXPath (§5 of the paper):
//
//   - DPO (Dynamic Penalty Order) walks the relaxation chain one query at
//     a time over off-the-shelf engines, stopping as soon as K answers are
//     accumulated; results append in score blocks, so no sorting is
//     needed, but each step re-evaluates a (larger) query.
//   - SSO (Static Selectivity Order) uses selectivity estimates to decide
//     up front which relaxations to encode into a single scored join plan,
//     pruning intermediate answers with score thresholds; it keeps
//     intermediate answers sorted on score, paying a resort at every join.
//   - Hybrid runs the same encoded plan but organizes intermediate answers
//     into buckets keyed by the set of satisfied predicates, eliminating
//     SSO's resorting while keeping its pruning.
package topk

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"flexpath/internal/core"
	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/obs"
	"flexpath/internal/rank"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

// Result is one top-K answer.
type Result struct {
	Node  xmltree.NodeID
	Score rank.Score
	// Relaxations is the relaxation level at which the answer was
	// admitted: 0 for exact matches of the original query.
	Relaxations int
	// Missed describes the relaxation steps whose predicates this answer
	// does not satisfy (why it is not an exact match). Populated by the
	// plan-based algorithms, which track per-answer predicate
	// satisfaction; DPO knows only the admitting level and leaves it nil.
	Missed []string

	// sig carries the answer's predicate-satisfaction bits between the
	// ranking pass and the deferred Missed materialization in toResults.
	sig uint64
}

// Metrics reports the work an algorithm performed.
type Metrics struct {
	// QueriesEvaluated counts exact query evaluations (DPO).
	QueriesEvaluated int
	// PlansRun counts scored plan executions (SSO/Hybrid, including
	// restarts).
	PlansRun int
	// RelaxationsEncoded is the number of chain steps the final plan
	// encoded (SSO/Hybrid) or the deepest level DPO evaluated.
	RelaxationsEncoded int
	// Restarts counts SSO/Hybrid re-executions after an estimate
	// undershot K.
	Restarts int
	// EstimatorCalls counts selectivity estimations.
	EstimatorCalls int
	// PairsMaterialized counts shortcut edges materialized by the
	// data-relaxation baseline.
	PairsMaterialized int
	// Pipeline accumulates join-pipeline counters.
	Pipeline exec.PipelineStats
}

// Options configures a top-K run.
type Options struct {
	K      int
	Scheme rank.Scheme
	// Ctx, when non-nil, cancels the run: DPO checks it before each
	// relaxation level, SSO/Hybrid before each plan (re-)execution, and
	// the join pipeline polls it inside its loops. A cancelled run
	// returns a truncated (possibly nil) result; callers must consult
	// Ctx.Err to tell cancellation from a genuinely small answer set.
	Ctx context.Context
	// Parallel fans plan execution out over this many goroutines
	// (<= 1 runs sequentially); results are unaffected.
	Parallel int
	// Metrics, when non-nil, accumulates work counters.
	Metrics *Metrics
	// Span, when non-nil, receives per-stage latency: the algorithms
	// record join/plan execution time under obs.StageJoin. A nil span
	// costs one pointer check per plan run.
	Span *obs.Span
	// Template, when non-nil, memoizes the per-level join plans and the
	// estimator-chosen prefix levels across runs of the same (query,
	// weights, hierarchy) triple (see core.Template). Answers are
	// identical with or without it; only repeated work disappears.
	Template *core.Template
}

// planAt returns the scored plan for prefix j, through the template's
// memo when one is attached.
func (o *Options) planAt(chain *core.Chain, j int) (*exec.Plan, error) {
	if o.Template != nil {
		return o.Template.PlanAt(j)
	}
	return chain.PlanAt(j)
}

// exactPlanAt returns the exact-evaluation plan for level j, through the
// template's memo when one is attached.
func (o *Options) exactPlanAt(chain *core.Chain, j int) (*exec.Plan, error) {
	if o.Template != nil {
		return o.Template.ExactPlanAt(j)
	}
	return chain.ExactPlanAt(j)
}

// timeJoin runs fn, charging its duration to the span's join stage.
func (o *Options) timeJoin(fn func()) {
	if o.Span == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	o.Span.Rec(obs.StageJoin, time.Since(start))
}

func (o *Options) metrics() *Metrics {
	if o.Metrics == nil {
		o.Metrics = &Metrics{}
	}
	return o.Metrics
}

// cancelled reports whether the run's context has been cancelled.
func (o *Options) cancelled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// DPO runs the Dynamic Penalty Order algorithm (§5.1.1): evaluate the
// original query; while fewer than K answers have been found, drop the
// next lowest-penalty predicate and evaluate the relaxed query, keeping
// only answers not seen before. Every answer admitted at level j gets the
// level's uniform structural score, so blocks append already ordered
// under the structure-first scheme.
//
// As in the paper, each relaxed query is evaluated with the same
// left-deep structural join plans SSO and Hybrid use (Figure 8) — DPO's
// cost is one full plan pass per relaxation level. DPOSemijoin is a
// faster existential-semijoin variant provided as an ablation.
func DPO(ev *exec.Evaluator, chain *core.Chain, opts Options) []Result {
	return dpo(ev, chain, opts, false)
}

// DPOSemijoin is DPO with each relaxed query evaluated by the two-pass
// existential semijoin algorithm instead of full join plans. It computes
// the same answers; it exists to quantify (ablation) how much of DPO's
// cost in the paper's experiments comes from materializing full match
// tuples at every relaxation level.
func DPOSemijoin(ev *exec.Evaluator, chain *core.Chain, opts Options) []Result {
	return dpo(ev, chain, opts, true)
}

func dpo(ev *exec.Evaluator, chain *core.Chain, opts Options, semijoin bool) []Result {
	m := opts.metrics()
	k := opts.K
	var results []Result
	seen := make(map[xmltree.NodeID]bool)

	// One scratch arena serves every relaxation level: each level's
	// intermediate lists, tuple buffers and binding blocks are carved from
	// it and recycled wholesale by the Reset below once the level's
	// answers have been copied into results.
	arena := exec.GetArena()
	defer exec.PutArena(arena)

	stopLevel := chain.Len()
	reachedAt := -1
	m0 := chain.Original.NumContains()
	for level := 0; level <= stopLevel; level++ {
		// DPO's per-relaxation loop is the algorithm's dominant cost;
		// observe cancellation between levels so a timed-out request
		// stops re-evaluating ever larger relaxed queries.
		if opts.cancelled() {
			return nil
		}
		arena.Reset()
		q := chain.QueryAt(level)
		var block []Result
		ss := chain.SSAt(level)
		var plan *exec.Plan
		if !semijoin {
			var err error
			plan, err = opts.exactPlanAt(chain, level)
			if err != nil {
				// A level whose plan cannot be built was never evaluated:
				// bail before touching the work counters, so DPO and
				// DPOSemijoin report identical QueriesEvaluated for the
				// levels both actually ran.
				return nil
			}
		}
		m.QueriesEvaluated++
		m.RelaxationsEncoded = level
		if semijoin {
			var ok [][]xmltree.NodeID
			opts.timeJoin(func() { ok = ev.EvaluateFullArena(q, arena) })
			if ok != nil {
				scorer := newKSScorer(chain, level, q, ok)
				for _, n := range ok[q.Dist] {
					if seen[n] {
						continue
					}
					seen[n] = true
					block = append(block, Result{
						Node:        n,
						Score:       rank.Score{SS: ss, KS: scorer.ks(n)},
						Relaxations: level,
					})
				}
			}
		} else {
			// Answers found at previous levels are excluded inside the
			// plan (not just post-hoc), so each level's pass only
			// explores data that can still produce new answers —
			// the paper's avoid-recomputation device (§5.2.2).
			var levelAnswers []exec.Answer
			opts.timeJoin(func() {
				levelAnswers = exec.Run(plan, exec.Options{
					Mode: exec.ModeExhaustive, Scheme: opts.Scheme,
					Parallel: opts.Parallel, Stats: &m.Pipeline,
					Exclude: seen, Ctx: opts.Ctx, Arena: arena,
				})
			})
			for _, a := range levelAnswers {
				if seen[a.Node] {
					continue
				}
				seen[a.Node] = true
				block = append(block, Result{
					Node:        a.Node,
					Score:       rank.Score{SS: ss, KS: a.Score.KS},
					Relaxations: level,
				})
			}
		}
		// Within a block all answers share ss; order by the secondary
		// component so the block appends in final order.
		sortResults(block, opts.Scheme)
		results = append(results, block...)

		if len(results) >= k && reachedAt < 0 {
			reachedAt = level
			switch opts.Scheme {
			case rank.StructureFirst:
				// Later levels have strictly lower structural scores
				// except for zero-penalty steps; keep going through ties.
				j := level
				for j < chain.Len() && chain.SSAt(j+1) >= chain.SSAt(level) {
					j++
				}
				stopLevel = j
			case rank.Combined:
				// §5.1 pruning rule: with m contains predicates, answers
				// of relaxations whose ss drops below ss(i) - m cannot
				// reach the top-K.
				j := level
				for j < chain.Len() && chain.SSAt(j+1) > chain.SSAt(level)-float64(m0) {
					j++
				}
				stopLevel = j
			case rank.KeywordFirst:
				// An answer with the worst structural score might still
				// make the top-K: all relaxations must be evaluated.
				stopLevel = chain.Len()
			}
		}
	}
	sortResults(results, opts.Scheme)
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// SSO runs the Static Selectivity Order algorithm (§5.1.2): estimate how
// many relaxations are needed to produce K answers, encode exactly those
// into one plan, and execute it with threshold pruning and score-sorted
// intermediate lists. If the estimate undershoots, it extends the prefix
// and restarts.
func SSO(chain *core.Chain, est *stats.Estimator, opts Options) []Result {
	return planBased(chain, est, opts, exec.ModeSorted)
}

// Hybrid runs the Hybrid algorithm (§5.2.3): identical relaxation choice
// and pruning as SSO, but intermediate answers live in buckets keyed by
// their satisfied-predicate signature, so they are never resorted.
func Hybrid(chain *core.Chain, est *stats.Estimator, opts Options) []Result {
	return planBased(chain, est, opts, exec.ModeBuckets)
}

func planBased(chain *core.Chain, est *stats.Estimator, opts Options, mode exec.Mode) []Result {
	m := opts.metrics()
	k := opts.K
	j := choosePrefix(chain, est, opts, m)
	// One arena serves the initial run and any restarts; each restart
	// re-executes a larger plan from scratch, so everything the previous
	// round carved is recycled by the Reset below.
	arena := exec.GetArena()
	defer exec.PutArena(arena)
	for {
		if opts.cancelled() {
			return nil
		}
		arena.Reset()
		plan, err := opts.planAt(chain, j)
		if err != nil {
			return nil
		}
		m.PlansRun++
		m.RelaxationsEncoded = j
		var answers []exec.Answer
		opts.timeJoin(func() {
			answers = exec.Run(plan, exec.Options{
				K:        k,
				Scheme:   opts.Scheme,
				Mode:     mode,
				Parallel: opts.Parallel,
				Stats:    &m.Pipeline,
				Ctx:      opts.Ctx,
				Arena:    arena,
			})
		})
		if opts.cancelled() {
			return nil
		}
		if len(answers) >= k || j >= chain.Len() {
			// Remember the level that actually produced K answers: a
			// later search with the same K skips the restarts (the final
			// round's plan run fully determines the output, so answers
			// are unchanged).
			if opts.Template != nil {
				opts.Template.SetLevel(core.LevelKey{K: k, Scheme: opts.Scheme}, j)
			}
			return toResults(chain, answers, opts, k)
		}
		// Selectivity estimate was too optimistic: drop more predicates
		// and restart (§5.1.2, lines 11-12).
		m.Restarts++
		j++
	}
}

// Explain returns a description of the scored join plan SSO and Hybrid
// would execute for the given options: the estimator-chosen relaxation
// prefix and the per-variable join pipeline.
func Explain(chain *core.Chain, est *stats.Estimator, opts Options) (string, error) {
	m := opts.metrics()
	j := choosePrefix(chain, est, opts, m)
	plan, err := opts.planAt(chain, j)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "relaxations encoded: %d of %d (scheme %v, K=%d)\n",
		j, chain.Len(), opts.Scheme, opts.K)
	for i := 1; i <= j; i++ {
		fmt.Fprintf(&sb, "  %2d. %s (penalty %.4f)\n", i, chain.Steps[i-1].Desc, chain.Steps[i-1].Penalty)
	}
	sb.WriteString(plan.Explain())
	return sb.String(), nil
}

// Analyze runs the plan SSO/Hybrid would execute and returns both the
// plan description and a per-join-step execution trace (EXPLAIN
// ANALYZE).
func Analyze(chain *core.Chain, est *stats.Estimator, opts Options) (string, error) {
	m := opts.metrics()
	j := choosePrefix(chain, est, opts, m)
	plan, err := opts.planAt(chain, j)
	if err != nil {
		return "", err
	}
	var traces []exec.StepTrace
	answers := exec.Run(plan, exec.Options{
		K: opts.K, Scheme: opts.Scheme, Mode: exec.ModeBuckets,
		Parallel: opts.Parallel, Stats: &m.Pipeline, Trace: &traces,
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "relaxations encoded: %d of %d; answers: %d\n", j, chain.Len(), len(answers))
	fmt.Fprintf(&sb, "%-24s %10s %10s %10s %8s %8s\n",
		"step", "candidates", "tuples-in", "tuples-out", "pruned", "buckets")
	for _, t := range traces {
		fmt.Fprintf(&sb, "%-24s %10d %10d %10d %8d %8d\n",
			t.Var, t.Candidates, t.TuplesIn, t.TuplesOut, t.Pruned, t.Buckets)
	}
	return sb.String(), nil
}

// choosePrefix picks how many relaxation steps to encode: the shortest
// prefix whose relaxed query is estimated to produce at least K answers
// (structure-first), extended per the §5.1 rule for the combined scheme;
// the keyword-first scheme requires encoding the whole chain. With a
// template attached, the chosen level is memoized per (K, scheme), so
// only the first search of a shape pays the per-level estimator loop —
// and a restart-corrected level recorded by planBased is reused in
// preference to re-deriving the (undershooting) estimate.
func choosePrefix(chain *core.Chain, est *stats.Estimator, opts Options, m *Metrics) int {
	key := core.LevelKey{K: opts.K, Scheme: opts.Scheme}
	if opts.Template != nil {
		if j, ok := opts.Template.Level(key); ok {
			return j
		}
	}
	j := chain.Len()
	if opts.Scheme != rank.KeywordFirst {
		j = 0
		for ; j <= chain.Len(); j++ {
			m.EstimatorCalls++
			if est.Estimate(chain.QueryAt(j)) >= float64(opts.K) {
				break
			}
		}
		if j > chain.Len() {
			j = chain.Len()
		}
		if opts.Scheme == rank.Combined {
			mC := float64(chain.Original.NumContains())
			base := chain.SSAt(j)
			for j < chain.Len() && chain.SSAt(j+1) > base-mC {
				j++
			}
		}
	}
	if opts.Template != nil {
		opts.Template.SetLevel(key, j)
	}
	return j
}

func toResults(chain *core.Chain, answers []exec.Answer, opts Options, k int) []Result {
	// Precompute per-step signature masks: an answer's minimal admitting
	// relaxation level is the deepest chain step with an unsatisfied
	// dropped predicate.
	encoded := opts.metrics().RelaxationsEncoded
	masks := make([]uint64, encoded+1)
	for j := 1; j <= encoded; j++ {
		masks[j] = chain.StepBits(j)
	}
	results := make([]Result, 0, len(answers))
	for _, a := range answers {
		level := 0
		for j := encoded; j >= 1; j-- {
			if a.Sig&masks[j] != masks[j] {
				level = j
				break
			}
		}
		results = append(results, Result{Node: a.Node, Score: a.Score, Relaxations: level, sig: a.Sig})
	}
	sortResults(results, opts.Scheme)
	if len(results) > k {
		results = results[:k]
	}
	// Materialize the missed-predicate descriptions only for the K
	// survivors: the candidate set can be an order of magnitude larger
	// than K, and Missed is the lone per-answer allocation of this path.
	for i := range results {
		if results[i].Relaxations == 0 {
			continue
		}
		var missed []string
		for j := 1; j <= encoded; j++ {
			if results[i].sig&masks[j] != masks[j] {
				missed = append(missed, chain.Steps[j-1].Desc)
			}
		}
		results[i].Missed = missed
	}
	return results
}

func sortResults(rs []Result, scheme rank.Scheme) {
	slices.SortFunc(rs, func(a, b Result) int {
		if c := a.Score.Compare(b.Score, scheme); c != 0 {
			return -c
		}
		return int(a.Node) - int(b.Node)
	})
}

// ksScorer computes DPO's per-answer keyword scores: for each contains
// predicate of the original query, the IR score of its current context
// (the deepest surviving contains location) restricted to the answer.
type ksScorer struct {
	chain *core.Chain
	doc   *xmltree.Document
	parts []ksPart
}

type ksPart struct {
	res      *ir.Result
	weight   float64
	matches  []xmltree.NodeID
	matchSet map[xmltree.NodeID]bool
	isDist   bool
}

func newKSScorer(chain *core.Chain, level int, q *tpq.Query, ok [][]xmltree.NodeID) *ksScorer {
	s := &ksScorer{chain: chain, doc: chain.Doc()}
	w := chain.Weights()
	cur := chain.Closure.Clone()
	for _, p := range chain.DroppedUpTo(level).List() {
		cur.Remove(p)
	}
	orig := chain.Original
	parentOf := make(map[int]int, len(orig.Nodes))
	for i := range orig.Nodes {
		if orig.Nodes[i].Parent == -1 {
			parentOf[orig.Nodes[i].ID] = -1
		} else {
			parentOf[orig.Nodes[i].ID] = orig.Nodes[orig.Nodes[i].Parent].ID
		}
	}
	for _, p := range tpq.Logical(orig).List() {
		if p.Kind != tpq.PredContains {
			continue
		}
		loc := p.X
		for loc != -1 {
			if cur.HasKey((tpq.Pred{Kind: tpq.PredContains, X: loc, Expr: p.Expr}).Key()) {
				break
			}
			loc = parentOf[loc]
		}
		if loc == -1 {
			loc = orig.Nodes[0].ID
		}
		idx := q.NodeByID(loc)
		if idx < 0 {
			continue
		}
		part := ksPart{
			res:     chain.Index().Eval(p.Expr),
			weight:  w.Contains,
			matches: ok[idx],
			isDist:  idx == q.Dist,
		}
		if !part.isDist {
			part.matchSet = make(map[xmltree.NodeID]bool, len(part.matches))
			for _, n := range part.matches {
				part.matchSet[n] = true
			}
		}
		s.parts = append(s.parts, part)
	}
	return s
}

func (s *ksScorer) ks(answer xmltree.NodeID) float64 {
	total := 0.0
	for i := range s.parts {
		p := &s.parts[i]
		if p.isDist {
			total += p.weight * p.res.ScoreWithin(answer)
			continue
		}
		best := 0.0
		for _, m := range exec.DescendantsInRange(s.doc, p.matches, answer) {
			if sc := p.res.ScoreWithin(m); sc > best {
				best = sc
			}
		}
		if best == 0 {
			// The context may be an ancestor of the answer (e.g. a
			// contains promoted above the distinguished node): use the
			// tightest containing context.
			for a := answer; a != xmltree.InvalidNode; a = s.doc.Parent(a) {
				if p.matchSet[a] {
					best = p.res.ScoreWithin(a)
					break
				}
			}
		}
		total += p.weight * best
	}
	return total
}
