package topk

import (
	"math"
	"testing"

	"flexpath/internal/core"
	"flexpath/internal/exec"
	"flexpath/internal/ir"
	"flexpath/internal/rank"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
	"flexpath/internal/xmark"
	"flexpath/internal/xmltree"
)

const articlesXML = `
<collection>
  <article><title>streaming xml</title>
    <section><algorithm>merge</algorithm><paragraph>xml streaming passes</paragraph></section>
  </article>
  <article><title>layouts</title>
    <section><title>xml streaming storage</title><algorithm>split</algorithm><paragraph>pages</paragraph></section>
  </article>
  <article><title>joins</title>
    <section><paragraph>xml streaming joins</paragraph></section>
    <appendix><algorithm>twig</algorithm></appendix>
  </article>
  <article><title>other</title>
    <section><paragraph>nothing relevant</paragraph></section>
  </article>
</collection>`

const srcQ1 = `//article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]`

type fixture struct {
	doc *xmltree.Document
	ix  *ir.Index
	st  *stats.Stats
	ev  *exec.Evaluator
	est *stats.Estimator
}

func newFixture(t testing.TB, xml string) *fixture {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return fixtureFor(doc)
}

func fixtureFor(doc *xmltree.Document) *fixture {
	ix := ir.NewIndex(doc)
	st := stats.Collect(doc)
	return &fixture{doc: doc, ix: ix, st: st,
		ev: exec.NewEvaluator(doc, ix), est: stats.NewEstimator(st, ix)}
}

func xmarkFixture(t testing.TB, bytes, seed int64) *fixture {
	t.Helper()
	doc, err := xmark.Build(xmark.Config{TargetBytes: bytes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return fixtureFor(doc)
}

func (f *fixture) chain(t testing.TB, src string) *core.Chain {
	t.Helper()
	c, err := core.BuildChain(f.doc, f.ix, f.st, rank.UniformWeights(), tpq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func schemes() []rank.Scheme {
	return []rank.Scheme{rank.StructureFirst, rank.KeywordFirst, rank.Combined}
}

// TestSSOHybridAgree: SSO and Hybrid must return identical results (same
// nodes, same scores, same order) — they run the same plan and pruning
// and differ only in intermediate-result organization.
func TestSSOHybridAgree(t *testing.T) {
	fixtures := map[string]*fixture{
		"articles": newFixture(t, articlesXML),
		"xmark":    xmarkFixture(t, 96<<10, 5),
	}
	queries := map[string][]string{
		"articles": {srcQ1, `//article[./section/paragraph[.contains("xml")]]`},
		"xmark": {
			`//item[./description/parlist]`,
			`//item[./description/parlist and ./mailbox/mail/text]`,
		},
	}
	for name, f := range fixtures {
		for _, src := range queries[name] {
			c := f.chain(t, src)
			for _, scheme := range schemes() {
				for _, k := range []int{1, 5, 25} {
					a := SSO(c, f.est, Options{K: k, Scheme: scheme})
					b := Hybrid(c, f.est, Options{K: k, Scheme: scheme})
					if len(a) != len(b) {
						t.Fatalf("%s %s k=%d %v: SSO %d results, Hybrid %d",
							name, src, k, scheme, len(a), len(b))
					}
					for i := range a {
						if a[i].Node != b[i].Node || a[i].Score != b[i].Score {
							t.Errorf("%s %s k=%d %v: result %d differs: %+v vs %+v",
								name, src, k, scheme, i, a[i], b[i])
						}
					}
				}
			}
		}
	}
}

// TestPruningCorrect: threshold pruning must not change the top-K compared
// to an exhaustive run of the maximally relaxed plan.
func TestPruningCorrect(t *testing.T) {
	f := xmarkFixture(t, 64<<10, 9)
	for _, src := range []string{
		`//item[./description/parlist]`,
		`//item[./description/parlist and ./mailbox/mail/text]`,
	} {
		c := f.chain(t, src)
		plan, err := c.PlanAt(c.Len())
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range schemes() {
			full := exec.Run(plan, exec.Options{Mode: exec.ModeExhaustive, Scheme: scheme})
			for _, k := range []int{1, 3, 10, 50} {
				pruned := exec.Run(plan, exec.Options{K: k, Scheme: scheme, Mode: exec.ModeSorted})
				limit := k
				if limit > len(full) {
					limit = len(full)
				}
				if len(pruned) < limit {
					t.Fatalf("%s %v k=%d: pruned run returned %d answers, want >= %d",
						src, scheme, k, len(pruned), limit)
				}
				for i := 0; i < limit; i++ {
					// Scores must agree position by position (nodes may
					// swap on exact score ties).
					if math.Abs(full[i].Score.SS-pruned[i].Score.SS) > 1e-9 ||
						math.Abs(full[i].Score.KS-pruned[i].Score.KS) > 1e-9 {
						t.Errorf("%s %v k=%d: rank %d score %+v (pruned) vs %+v (full)",
							src, scheme, k, i, pruned[i].Score, full[i].Score)
					}
				}
			}
		}
	}
}

// TestDPOLevels: every DPO result's relaxation level is the minimal chain
// level admitting that node.
func TestDPOLevels(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	// Only three articles contain both keywords anywhere, so the whole
	// relaxation space yields exactly three answers.
	results := DPO(f.ev, c, Options{K: 3, Scheme: rank.StructureFirst})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		min := -1
		for j := 0; j <= c.Len(); j++ {
			for _, n := range f.ev.Evaluate(c.QueryAt(j)) {
				if n == r.Node {
					min = j
					break
				}
			}
			if min >= 0 {
				break
			}
		}
		if min != r.Relaxations {
			t.Errorf("node %d: reported level %d, minimal admitting level %d", r.Node, r.Relaxations, min)
		}
		if r.Score.SS != c.SSAt(r.Relaxations) {
			t.Errorf("node %d: ss %f != uniform level score %f", r.Node, r.Score.SS, c.SSAt(r.Relaxations))
		}
	}
	// Structure-first: results ordered by non-increasing ss.
	for i := 1; i < len(results); i++ {
		if results[i].Score.SS > results[i-1].Score.SS+1e-9 {
			t.Errorf("results not ordered by ss: %f after %f", results[i].Score.SS, results[i-1].Score.SS)
		}
	}
}

// TestExactAnswersFirst: with K equal to the number of exact matches, all
// algorithms return exactly the exact matches under structure-first.
func TestExactAnswersFirst(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	exact := f.ev.Evaluate(c.Original)
	if len(exact) != 1 {
		t.Fatalf("setup: %d exact answers, want 1", len(exact))
	}
	run := func(name string, results []Result) {
		if len(results) != 1 {
			t.Fatalf("%s: %d results", name, len(results))
		}
		if results[0].Node != exact[0] {
			t.Errorf("%s: top answer %d, want %d", name, results[0].Node, exact[0])
		}
		if results[0].Score.SS != c.Base {
			t.Errorf("%s: ss %f, want base %f", name, results[0].Score.SS, c.Base)
		}
	}
	opt := Options{K: 1, Scheme: rank.StructureFirst}
	run("DPO", DPO(f.ev, c, opt))
	run("SSO", SSO(c, f.est, opt))
	run("Hybrid", Hybrid(c, f.est, opt))
}

// TestLargeKAllAgree: with K larger than the loosest level's answer
// count, all three algorithms return the same set of nodes.
func TestLargeKAllAgree(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	opt := Options{K: 100, Scheme: rank.StructureFirst}
	sets := map[string]map[xmltree.NodeID]bool{}
	for name, results := range map[string][]Result{
		"DPO":    DPO(f.ev, c, opt),
		"SSO":    SSO(c, f.est, Options{K: 100, Scheme: rank.StructureFirst}),
		"Hybrid": Hybrid(c, f.est, Options{K: 100, Scheme: rank.StructureFirst}),
	} {
		s := map[xmltree.NodeID]bool{}
		for _, r := range results {
			s[r.Node] = true
		}
		sets[name] = s
	}
	loosest := f.ev.Evaluate(c.QueryAt(c.Len()))
	if len(loosest) == 0 {
		t.Fatal("loosest level empty")
	}
	for name, s := range sets {
		if len(s) != len(loosest) {
			t.Errorf("%s returned %d nodes, loosest level has %d", name, len(s), len(loosest))
		}
		for _, n := range loosest {
			if !s[n] {
				t.Errorf("%s missing answer %d", name, n)
			}
		}
	}
}

// TestKeywordFirstEncodesEverything: under keyword-first, SSO must encode
// the full chain (§5.1: an answer with the worst structural score might
// make the top-K).
func TestKeywordFirstEncodesEverything(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	var m Metrics
	SSO(c, f.est, Options{K: 1, Scheme: rank.KeywordFirst, Metrics: &m})
	if m.RelaxationsEncoded != c.Len() {
		t.Errorf("keyword-first encoded %d relaxations, want full chain %d", m.RelaxationsEncoded, c.Len())
	}
}

// TestMetricsSeparateAlgorithms: DPO evaluates multiple queries while
// SSO/Hybrid run one plan; SSO sorts tuples while Hybrid buckets them.
func TestMetricsSeparateAlgorithms(t *testing.T) {
	f := xmarkFixture(t, 96<<10, 5)
	c := f.chain(t, `//item[./description/parlist and ./mailbox/mail/text]`)
	k := 60

	var md, ms, mh Metrics
	DPO(f.ev, c, Options{K: k, Scheme: rank.StructureFirst, Metrics: &md})
	SSO(c, f.est, Options{K: k, Scheme: rank.StructureFirst, Metrics: &ms})
	Hybrid(c, f.est, Options{K: k, Scheme: rank.StructureFirst, Metrics: &mh})

	if md.QueriesEvaluated < 2 {
		t.Errorf("DPO evaluated %d queries, expected several (relaxations needed)", md.QueriesEvaluated)
	}
	if ms.PlansRun < 1 || mh.PlansRun < 1 {
		t.Error("SSO/Hybrid did not run a plan")
	}
	if ms.Pipeline.SortOps == 0 {
		t.Error("SSO never sorted intermediate results")
	}
	if mh.Pipeline.SortOps != 0 {
		t.Error("Hybrid sorted intermediate results")
	}
	if mh.Pipeline.Buckets == 0 {
		t.Error("Hybrid created no buckets")
	}
}

// TestSSORestart: feed SSO an estimator that overestimates wildly so its
// first prefix is too short, and verify it restarts and still returns K
// answers.
func TestSSORestart(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	var m Metrics
	// K=3 requires relaxations; the real estimator may or may not be
	// accurate on this tiny document, so force the situation by asking
	// for more answers than the exact query has.
	results := SSO(c, f.est, Options{K: 3, Scheme: rank.StructureFirst, Metrics: &m})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	t.Logf("restarts=%d encoded=%d", m.Restarts, m.RelaxationsEncoded)
}

func TestResultOrderingSchemes(t *testing.T) {
	f := newFixture(t, articlesXML)
	c := f.chain(t, srcQ1)
	for _, scheme := range schemes() {
		for name, results := range map[string][]Result{
			"DPO":    DPO(f.ev, c, Options{K: 4, Scheme: scheme}),
			"SSO":    SSO(c, f.est, Options{K: 4, Scheme: scheme}),
			"Hybrid": Hybrid(c, f.est, Options{K: 4, Scheme: scheme}),
		} {
			for i := 1; i < len(results); i++ {
				if results[i].Score.Compare(results[i-1].Score, scheme) > 0 {
					t.Errorf("%s %v: results out of order at %d", name, scheme, i)
				}
			}
		}
	}
}

// TestDPOVariantsAgree: plan-based DPO (with intra-plan exclusion of
// previous answers) and semijoin DPO must return identical results —
// same nodes, same levels, same structural scores.
func TestDPOVariantsAgree(t *testing.T) {
	f := xmarkFixture(t, 96<<10, 5)
	for _, src := range []string{
		`//item[./description/parlist]`,
		`//item[./description/parlist and ./mailbox/mail/text]`,
	} {
		c := f.chain(t, src)
		for _, k := range []int{5, 40} {
			a := DPO(f.ev, c, Options{K: k, Scheme: rank.StructureFirst})
			b := DPOSemijoin(f.ev, c, Options{K: k, Scheme: rank.StructureFirst})
			if len(a) != len(b) {
				t.Fatalf("%s k=%d: %d vs %d results", src, k, len(a), len(b))
			}
			for i := range a {
				if a[i].Node != b[i].Node || a[i].Relaxations != b[i].Relaxations ||
					a[i].Score.SS != b[i].Score.SS {
					t.Errorf("%s k=%d rank %d: %+v vs %+v", src, k, i, a[i], b[i])
				}
			}
		}
	}
}
