// Package xmark generates synthetic auction-site XML documents in the
// shape of the XMark benchmark (Schmidt et al., VLDB 2002), which the
// FleXPath paper uses for all experiments.
//
// The generator is a substitution for the original C xmlgen tool. It
// preserves the three DTD properties the paper's experiments exploit:
//
//   - recursive nodes (parlist inside listitem inside parlist), which
//     enable axis generalization;
//   - optional nodes (incategory, text inside mail), which enable leaf
//     deletion; and
//   - shared nodes (text occurs under listitem, mail, mailbox and
//     description), which enable subtree promotion.
//
// It deliberately deviates from the strict XMark DTD in one respect: the
// content models are probabilistic rather than fixed, so that every
// relaxation of the paper's workload queries is productive (admits answers
// the strict query misses). For example, a description may contain a
// parlist directly, behind an intermediate par element, or not at all, so
// relaxing ./description/parlist to ./description//parlist genuinely
// broadens the result.
//
// Generation is deterministic: the same Config produces byte-identical
// output, and Build produces exactly the document that Parse(Generate)
// would.
package xmark

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"flexpath/internal/xmltree"
)

// Config controls document generation.
type Config struct {
	// TargetBytes is the approximate size of the serialized document.
	// The generator stops opening new top-level entities once the running
	// byte count passes section budgets derived from this value; actual
	// output is within a few percent of the target.
	TargetBytes int64
	// Seed selects the pseudo-random stream. Equal seeds give equal
	// documents.
	Seed int64
}

// DefaultConfig returns a 1 MB, seed-42 configuration.
func DefaultConfig() Config {
	return Config{TargetBytes: 1 << 20, Seed: 42}
}

// Generate writes an XMark-shaped document of roughly cfg.TargetBytes to w.
func Generate(w io.Writer, cfg Config) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &writerSink{w: bw}
	emit(s, cfg)
	if s.err != nil {
		return s.err
	}
	return bw.Flush()
}

// Build constructs the generated document directly as an xmltree.Document,
// bypassing XML serialization and re-parsing. Build(cfg) is equivalent to
// Parse(Generate(cfg)) but much faster.
func Build(cfg Config) (*xmltree.Document, error) {
	s := &builderSink{b: xmltree.NewBuilder()}
	emit(s, cfg)
	d, err := s.b.Document()
	if err != nil {
		return nil, fmt.Errorf("xmark: %w", err)
	}
	return d, nil
}

// sink abstracts the two output targets. Both count serialized bytes the
// same way so that size-driven generation decisions are identical.
type sink interface {
	open(tag string)
	openAttr(tag, attrName, attrValue string)
	text(s string)
	close(tag string)
	bytes() int64
}

type writerSink struct {
	w   *bufio.Writer
	n   int64
	err error
}

func (s *writerSink) write(str string) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.WriteString(str)
	s.n += int64(len(str))
}

func (s *writerSink) open(tag string) { s.write("<" + tag + ">") }
func (s *writerSink) openAttr(tag, an, av string) {
	s.write("<" + tag + " " + an + `="` + av + `">`)
}
func (s *writerSink) text(t string)    { s.write(t) }
func (s *writerSink) close(tag string) { s.write("</" + tag + ">") }
func (s *writerSink) bytes() int64     { return s.n }

type builderSink struct {
	b *xmltree.Builder
	n int64
}

func (s *builderSink) open(tag string) {
	s.b.Open(tag)
	s.n += int64(len(tag)) + 2
}

func (s *builderSink) openAttr(tag, an, av string) {
	s.b.Open(tag, xmltree.Attr{Name: an, Value: av})
	s.n += int64(len(tag)+len(an)+len(av)) + 6
}

func (s *builderSink) text(t string) {
	s.b.Text(t)
	s.n += int64(len(t))
}

func (s *builderSink) close(tag string) {
	s.b.Close()
	s.n += int64(len(tag)) + 3
}

func (s *builderSink) bytes() int64 { return s.n }

// textMarkupProb is the probability of each inline markup child
// (bold/keyword/emph) inside any text element.
const textMarkupProb = 0.8

var regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// vocabulary supplies the textual content. The first few words are "hot":
// they appear with elevated frequency so that full-text predicates have
// selective but non-empty results.
var vocabulary = []string{
	"xml", "streaming", "algorithm", "query", "relaxation",
	"gold", "silver", "vintage", "rare", "antique", "auction", "bid",
	"price", "ship", "mint", "condition", "original", "signed", "limited",
	"edition", "collector", "estate", "market", "value", "appraisal",
	"certificate", "authentic", "restored", "pristine", "damaged", "worn",
	"fragile", "heavy", "light", "large", "small", "medium", "ornate",
	"plain", "carved", "painted", "glazed", "ceramic", "porcelain", "brass",
	"copper", "bronze", "iron", "steel", "wooden", "oak", "maple", "walnut",
	"leather", "silk", "cotton", "wool", "linen", "velvet", "crystal",
	"glass", "stone", "marble", "granite", "jade", "pearl", "amber",
	"ivory", "enamel", "lacquer", "gilt", "engraved", "embossed", "etched",
	"stamped", "numbered", "dated", "museum", "quality", "provenance",
	"documented", "catalog", "reference", "dealer", "private", "collection",
	"imported", "domestic", "handmade", "factory", "workshop", "studio",
	"artist", "maker", "mark", "label", "tag", "box", "case", "frame",
	"stand", "base", "lid", "handle", "spout", "rim", "foot", "neck",
	"body", "panel", "door", "drawer", "shelf", "mirror", "clock", "watch",
	"ring", "brooch", "pendant", "necklace", "bracelet", "coin", "medal",
	"stamp", "book", "manuscript", "map", "print", "poster", "painting",
	"drawing", "sculpture", "figurine", "vase", "bowl", "plate", "cup",
	"saucer", "teapot", "tray", "lamp", "chandelier", "candlestick", "rug",
	"tapestry", "quilt", "chair", "table", "desk", "cabinet", "chest",
	"wardrobe", "bed", "bench", "stool", "sofa", "garden", "ornament",
	"fountain", "urn", "gate", "fence", "tool", "instrument", "violin",
	"piano", "flute", "drum", "guitar", "camera", "lens", "radio",
	"phonograph", "typewriter", "telephone", "toy", "doll", "train",
	"model", "game", "puzzle", "card", "dice", "board", "sport", "ball",
	"bat", "glove", "racket", "club", "fishing", "reel", "rod", "knife",
	"sword", "shield", "armor", "helmet", "uniform", "badge", "button",
	"buckle", "textile", "sample", "pattern", "design",
}

var firstNames = []string{
	"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
	"ivan", "judy", "karl", "laura", "mike", "nina", "oscar", "peggy",
	"quinn", "rita", "sam", "tina", "ursula", "victor", "wendy", "xavier",
	"yara", "zeno",
}

var lastNames = []string{
	"smith", "jones", "taylor", "brown", "wilson", "evans", "thomas",
	"johnson", "roberts", "walker", "wright", "green", "hall", "wood",
	"clarke", "hughes", "edwards", "turner", "moore", "parker",
}

// gen carries generation state.
type gen struct {
	s       sink
	r       *rand.Rand
	itemSeq int
	catSeq  int
	perSeq  int
	aucSeq  int
	nItems  int
	nPeople int
	nCats   int
}

func emit(s sink, cfg Config) {
	if cfg.TargetBytes <= 0 {
		cfg.TargetBytes = 64 << 10
	}
	g := &gen{s: s, r: rand.New(rand.NewSource(cfg.Seed))}

	s.open("site")

	// Regions (items) get ~62% of the byte budget; the remaining sections
	// share the rest, mirroring XMark's proportions.
	itemBudget := cfg.TargetBytes * 62 / 100
	s.open("regions")
	for _, reg := range regions {
		s.open(reg)
		regionBudget := itemBudget / int64(len(regions))
		regionStart := s.bytes()
		for s.bytes()-regionStart < regionBudget {
			g.item()
		}
		s.close(reg)
	}
	s.close("regions")

	s.open("people")
	peopleBudget := cfg.TargetBytes * 74 / 100
	for s.bytes() < peopleBudget {
		g.person()
	}
	s.close("people")

	s.open("open_auctions")
	openBudget := cfg.TargetBytes * 85 / 100
	for s.bytes() < openBudget {
		g.openAuction()
	}
	s.close("open_auctions")

	s.open("closed_auctions")
	closedBudget := cfg.TargetBytes * 93 / 100
	for s.bytes() < closedBudget {
		g.closedAuction()
	}
	s.close("closed_auctions")

	s.open("categories")
	for s.bytes() < cfg.TargetBytes || g.nCats == 0 {
		g.category()
	}
	s.close("categories")

	s.close("site")
}

func (g *gen) words(n int) string {
	buf := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		var w string
		// 18% of draws come from the small "hot" prefix of the
		// vocabulary so query terms are plentiful but not universal.
		if g.r.Float64() < 0.18 {
			w = vocabulary[g.r.Intn(8)]
		} else {
			w = vocabulary[g.r.Intn(len(vocabulary))]
		}
		buf = append(buf, w...)
	}
	return string(buf)
}

func (g *gen) element(tag, text string) {
	g.s.open(tag)
	g.s.text(text)
	g.s.close(tag)
}

// textBlock emits a text element containing words and, with probability
// markupProb each, inline bold/keyword/emph children. These three
// children are what query XQ3 branches on. As in XMark's DTD, text
// elements have the same content model in every context (inside
// listitems, descriptions, mailboxes and mails alike); keeping the markup
// probability uniform across contexts is what makes tag-level statistics
// (and hence SSO's selectivity estimates) accurate.
func (g *gen) textBlock(markupProb float64) {
	g.s.open("text")
	g.s.text(g.words(15 + g.r.Intn(21)))
	markup := false
	for _, tag := range [...]string{"bold", "keyword", "emph"} {
		if g.r.Float64() < markupProb {
			g.element(tag, g.words(1+g.r.Intn(3)))
			markup = true
		}
	}
	// A trailing run only follows inline markup; two adjacent text calls
	// would serialize as one character-data run but build as two.
	if markup && g.r.Float64() < 0.5 {
		g.s.text(g.words(2 + g.r.Intn(8)))
	}
	g.s.close("text")
}

// parlist emits a parlist with 1..4 listitems; listitems recurse into
// nested parlists with decreasing probability (recursive DTD node).
func (g *gen) parlist(depth int) {
	g.s.open("parlist")
	n := 1 + g.r.Intn(4)
	for i := 0; i < n; i++ {
		g.s.open("listitem")
		switch {
		case depth < 3 && g.r.Float64() < 0.25:
			g.parlist(depth + 1)
		default:
			g.textBlock(textMarkupProb)
		}
		g.s.close("listitem")
	}
	g.s.close("parlist")
}

// description emits one of three shapes: a direct parlist child (10%), a
// parlist behind an intermediate par element (20%, making
// description//parlist strictly broader than description/parlist), or
// plain text (70%). The selectivities are calibrated so that the paper's
// workload queries run in the same regime as on XMark: XQ1 has fewer than
// 50 exact matches per MB and each relaxation level adds answers.
func (g *gen) description() {
	g.s.open("description")
	switch p := g.r.Float64(); {
	case p < 0.10:
		g.parlist(0)
	case p < 0.30: // nolint: kept distinct from the direct case above
		g.s.open("par")
		g.parlist(0)
		g.s.close("par")
	default:
		g.textBlock(textMarkupProb)
	}
	g.s.close("description")
}

// mailbox emits mails for 25% of items (1..3 each); a mail carries a text
// with probability 0.55 (optional node), and the mailbox itself may carry
// a direct text annotation (shared node enabling promotion of text from
// mail to mailbox).
func (g *gen) mailbox() {
	g.s.open("mailbox")
	if g.r.Float64() < 0.15 {
		g.textBlock(textMarkupProb)
	}
	n := 0
	if g.r.Float64() < 0.25 {
		n = 1 + g.r.Intn(3)
	}
	for i := 0; i < n; i++ {
		g.s.open("mail")
		g.element("from", g.name())
		g.element("to", g.name())
		g.element("date", g.date())
		if g.r.Float64() < 0.55 {
			g.textBlock(textMarkupProb)
		}
		g.s.close("mail")
	}
	g.s.close("mailbox")
}

func (g *gen) name() string {
	return firstNames[g.r.Intn(len(firstNames))] + " " + lastNames[g.r.Intn(len(lastNames))]
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.r.Intn(12), 1+g.r.Intn(28), 1998+g.r.Intn(6))
}

func (g *gen) item() {
	g.itemSeq++
	g.nItems++
	g.s.openAttr("item", "id", fmt.Sprintf("item%d", g.itemSeq))
	g.element("location", regions[g.r.Intn(len(regions))])
	g.element("quantity", fmt.Sprintf("%d", 1+g.r.Intn(5)))
	g.element("name", g.words(2+g.r.Intn(3)))
	g.element("payment", "creditcard")
	g.element("shipping", "worldwide")
	// incategory is optional (20% of items have none): leaf deletion on
	// ./incategory is productive.
	nc := 0
	if g.r.Float64() >= 0.20 {
		nc = 1 + g.r.Intn(3)
	}
	for i := 0; i < nc; i++ {
		g.s.openAttr("incategory", "category", fmt.Sprintf("category%d", 1+g.r.Intn(50)))
		g.s.close("incategory")
	}
	g.description()
	g.mailbox()
	g.s.close("item")
}

func (g *gen) person() {
	g.perSeq++
	g.nPeople++
	g.s.openAttr("person", "id", fmt.Sprintf("person%d", g.perSeq))
	g.element("name", g.name())
	g.element("emailaddress", fmt.Sprintf("mailto:%s%d@example.com", firstNames[g.r.Intn(len(firstNames))], g.perSeq))
	if g.r.Float64() < 0.5 {
		g.element("phone", fmt.Sprintf("+1 (%d) %d", 100+g.r.Intn(900), 1000000+g.r.Intn(9000000)))
	}
	if g.r.Float64() < 0.4 {
		g.s.open("address")
		g.element("street", fmt.Sprintf("%d %s st", 1+g.r.Intn(99), lastNames[g.r.Intn(len(lastNames))]))
		g.element("city", lastNames[g.r.Intn(len(lastNames))])
		g.element("country", "united states")
		g.s.close("address")
	}
	if g.r.Float64() < 0.6 {
		g.s.open("profile")
		g.element("interest", g.words(1+g.r.Intn(2)))
		g.element("education", "graduate school")
		g.s.close("profile")
	}
	g.s.close("person")
}

func (g *gen) openAuction() {
	g.aucSeq++
	g.s.openAttr("open_auction", "id", fmt.Sprintf("open_auction%d", g.aucSeq))
	g.element("initial", fmt.Sprintf("%d.%02d", 1+g.r.Intn(300), g.r.Intn(100)))
	nb := g.r.Intn(4)
	for i := 0; i < nb; i++ {
		g.s.open("bidder")
		g.element("date", g.date())
		g.element("increase", fmt.Sprintf("%d.%02d", 1+g.r.Intn(30), g.r.Intn(100)))
		g.s.close("bidder")
	}
	g.s.open("annotation")
	g.description()
	g.s.close("annotation")
	g.element("itemref", fmt.Sprintf("item%d", 1+g.r.Intn(max(g.itemSeq, 1))))
	g.s.close("open_auction")
}

func (g *gen) closedAuction() {
	g.aucSeq++
	g.s.openAttr("closed_auction", "id", fmt.Sprintf("closed_auction%d", g.aucSeq))
	g.element("price", fmt.Sprintf("%d.%02d", 1+g.r.Intn(500), g.r.Intn(100)))
	g.element("date", g.date())
	g.s.open("annotation")
	g.description()
	g.s.close("annotation")
	g.element("itemref", fmt.Sprintf("item%d", 1+g.r.Intn(max(g.itemSeq, 1))))
	g.s.close("closed_auction")
}

func (g *gen) category() {
	g.catSeq++
	g.nCats++
	g.s.openAttr("category", "id", fmt.Sprintf("category%d", g.catSeq))
	g.element("name", g.words(1+g.r.Intn(2)))
	g.description()
	g.s.close("category")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
