package xmark

import (
	"bytes"
	"strings"
	"testing"

	"flexpath/internal/xmltree"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{TargetBytes: 64 << 10, Seed: 11}
	var a, b bytes.Buffer
	if err := Generate(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Generate(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same config produced different documents")
	}
	var c bytes.Buffer
	if err := Generate(&c, Config{TargetBytes: 64 << 10, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestSizeTargeting(t *testing.T) {
	for _, target := range []int64{32 << 10, 256 << 10, 1 << 20} {
		var buf bytes.Buffer
		if err := Generate(&buf, Config{TargetBytes: target, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		got := int64(buf.Len())
		// Within 15% of the target: generation stops at section budgets,
		// so overshoot is bounded by one entity's size.
		if got < target*85/100 || got > target*115/100 {
			t.Errorf("target %d produced %d bytes (%.1f%%)", target, got, 100*float64(got)/float64(target))
		}
	}
}

func TestBuildMatchesGenerate(t *testing.T) {
	cfg := Config{TargetBytes: 96 << 10, Seed: 21}
	var buf bytes.Buffer
	if err := Generate(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	parsed, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatalf("generated document does not parse: %v", err)
	}
	built, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != built.Len() {
		t.Fatalf("Build has %d nodes, Parse(Generate) has %d", built.Len(), parsed.Len())
	}
	for n := xmltree.NodeID(0); int(n) < built.Len(); n++ {
		if built.TagName(n) != parsed.TagName(n) {
			t.Fatalf("node %d: tag %q != %q", n, built.TagName(n), parsed.TagName(n))
		}
		if built.Parent(n) != parsed.Parent(n) {
			t.Fatalf("node %d: parent mismatch", n)
		}
		if strings.TrimSpace(built.Text(n)) != strings.TrimSpace(parsed.Text(n)) {
			t.Fatalf("node %d: text %q != %q", n, built.Text(n), parsed.Text(n))
		}
	}
}

// TestRelaxationEnablers verifies the three DTD properties the paper's
// experiments rely on (§6): recursion, optionality, and sharing.
func TestRelaxationEnablers(t *testing.T) {
	d, err := Build(Config{TargetBytes: 512 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Recursive parlist: some parlist nested inside another parlist.
	nestedParlist := 0
	for _, p := range d.NodesWithTag("parlist") {
		for a := d.Parent(p); a != xmltree.InvalidNode; a = d.Parent(a) {
			if d.TagName(a) == "parlist" {
				nestedParlist++
				break
			}
		}
	}
	if nestedParlist == 0 {
		t.Error("no recursive parlist (edge generalization would be vacuous)")
	}

	// description//parlist strictly broader than description/parlist.
	directPairs, deepPairs := 0, 0
	for _, p := range d.NodesWithTag("parlist") {
		parent := d.Parent(p)
		if d.TagName(parent) == "description" {
			directPairs++
		}
		for a := parent; a != xmltree.InvalidNode; a = d.Parent(a) {
			if d.TagName(a) == "description" {
				deepPairs++
				break
			}
		}
	}
	if deepPairs <= directPairs {
		t.Errorf("description//parlist (%d) not broader than description/parlist (%d)", deepPairs, directPairs)
	}

	// Optional incategory: some items lack it.
	withoutCat := 0
	for _, it := range d.NodesWithTag("item") {
		has := false
		for _, c := range d.Children(it) {
			if d.TagName(c) == "incategory" {
				has = true
				break
			}
		}
		if !has {
			withoutCat++
		}
	}
	if withoutCat == 0 {
		t.Error("every item has incategory (leaf deletion would be vacuous)")
	}

	// Shared text: text occurs directly under mailbox (not only mail),
	// making contains/text promotion productive.
	mailboxText, mailText := 0, 0
	for _, x := range d.NodesWithTag("text") {
		switch d.TagName(d.Parent(x)) {
		case "mailbox":
			mailboxText++
		case "mail":
			mailText++
		}
	}
	if mailboxText == 0 || mailText == 0 {
		t.Errorf("text sharing absent: mailbox=%d mail=%d", mailboxText, mailText)
	}
}

func TestVocabularyPresence(t *testing.T) {
	d, err := Build(Config{TargetBytes: 128 << 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	text := d.SubtreeText(d.Root())
	for _, hot := range []string{"xml", "streaming", "gold"} {
		if !strings.Contains(text, hot) {
			t.Errorf("hot term %q absent from generated text", hot)
		}
	}
}

func TestSectionsPresent(t *testing.T) {
	d, err := Build(Config{TargetBytes: 128 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"site", "regions", "item", "people", "person",
		"open_auctions", "open_auction", "closed_auctions", "closed_auction",
		"categories", "category", "description", "mailbox", "name"} {
		if len(d.NodesWithTag(tag)) == 0 {
			t.Errorf("tag %q absent", tag)
		}
	}
	if got := len(d.NodesWithTag("site")); got != 1 {
		t.Errorf("site count = %d", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TargetBytes != 1<<20 || cfg.Seed != 42 {
		t.Errorf("unexpected default config %+v", cfg)
	}
	// Zero target falls back to a small document rather than nothing.
	d, err := Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Error("zero-config document is empty")
	}
}
