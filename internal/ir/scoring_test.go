package ir

import (
	"testing"

	"flexpath/internal/xmltree"
)

const scoringXML = `<docs>
  <short>gold</short>
  <long>gold filler filler filler filler filler filler filler filler filler
        filler filler filler filler filler filler filler filler filler</long>
  <twice>gold words gold</twice>
</docs>`

func TestBM25SameMatchesDifferentScores(t *testing.T) {
	doc, err := xmltree.ParseString(scoringXML)
	if err != nil {
		t.Fatal(err)
	}
	tfidf := NewIndex(doc)
	bm25 := NewIndexOptions(doc, IndexOptions{Scoring: ScoringBM25})
	e := MustParseExpr("gold")
	a, b := tfidf.Eval(e), bm25.Eval(e)
	if a.Len() != b.Len() {
		t.Fatalf("match sets differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Node(i) != b.Node(i) {
			t.Fatalf("witness %d differs", i)
		}
	}
}

// TestBM25LengthNormalization: with equal term frequency, BM25 prefers
// the shorter element; plain tf-idf scores them identically.
func TestBM25LengthNormalization(t *testing.T) {
	doc, err := xmltree.ParseString(scoringXML)
	if err != nil {
		t.Fatal(err)
	}
	short := doc.NodesWithTag("short")[0]
	long := doc.NodesWithTag("long")[0]
	e := MustParseExpr("gold")

	bm25 := NewIndexOptions(doc, IndexOptions{Scoring: ScoringBM25})
	rb := bm25.Eval(e)
	if !(rb.ScoreWithin(short) > rb.ScoreWithin(long)) {
		t.Errorf("BM25: short %f !> long %f", rb.ScoreWithin(short), rb.ScoreWithin(long))
	}

	tfidf := NewIndex(doc)
	rt := tfidf.Eval(e)
	if rt.ScoreWithin(short) != rt.ScoreWithin(long) {
		t.Errorf("tf-idf: short %f != long %f", rt.ScoreWithin(short), rt.ScoreWithin(long))
	}
}

// TestBM25TermFrequencySaturates: a second occurrence helps, but the
// scores stay within [0,1] after normalization and tf gains saturate.
func TestBM25TermFrequencySaturates(t *testing.T) {
	doc, err := xmltree.ParseString(scoringXML)
	if err != nil {
		t.Fatal(err)
	}
	bm25 := NewIndexOptions(doc, IndexOptions{Scoring: ScoringBM25})
	r := bm25.Eval(MustParseExpr("gold"))
	twice := doc.NodesWithTag("twice")[0]
	short := doc.NodesWithTag("short")[0]
	if !(r.ScoreWithin(twice) > r.ScoreWithin(short)*0.9) {
		t.Errorf("twice %f not comparable to short %f", r.ScoreWithin(twice), r.ScoreWithin(short))
	}
	for i := 0; i < r.Len(); i++ {
		if r.Score(i) < 0 || r.Score(i) > 1 {
			t.Errorf("score %f out of range", r.Score(i))
		}
	}
}
