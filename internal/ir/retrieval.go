package ir

import (
	"slices"
	"unicode/utf8"

	"flexpath/internal/xmltree"
)

// Match is one ranked full-text retrieval result.
type Match struct {
	Node  xmltree.NodeID
	Score float64
}

// TopMatches returns the best-scoring most-specific elements satisfying
// the expression, at most limit of them (limit <= 0 means all). This is
// the ranked (node, score) list the FleXPath architecture's IR engine
// hands to the combination step (Figure 7 of the paper); it is also
// usable standalone as a keyword-search API.
func (ix *Index) TopMatches(e Expr, limit int) []Match {
	r := ix.Eval(e)
	out := make([]Match, r.Len())
	for i := range out {
		out[i] = Match{Node: r.Node(i), Score: r.Score(i)}
	}
	slices.SortStableFunc(out, compareMatches)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// TopContexts returns the best-scoring elements with the given tag whose
// subtree satisfies the expression, at most limit of them. This is the
// "contains predicate with a tag-typed context" view the FleXPath plans
// consume.
func (ix *Index) TopContexts(tag string, e Expr, limit int) []Match {
	r := ix.Eval(e)
	var out []Match
	for _, n := range ix.doc.NodesWithTag(tag) {
		if s := r.ScoreWithin(n); s > 0 || r.Satisfies(n) {
			out = append(out, Match{Node: n, Score: s})
		}
	}
	slices.SortStableFunc(out, compareMatches)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// compareMatches orders matches score-descending with document order as
// the tie break; the typed comparator avoids sort.SliceStable's
// per-comparison reflection (see BenchmarkTopMatchesSort).
func compareMatches(a, b Match) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	default:
		return int(a.Node) - int(b.Node)
	}
}

// Snippet returns a fragment of the node's subtree text of at most max
// bytes, centered on the first occurrence of any of the expression's
// terms, with the document's own casing preserved. Fragment bounds are
// snapped to rune boundaries so a multi-byte UTF-8 rune is never split
// (a split rune turns into U+FFFD under JSON encoding). It backs result
// presentation in the CLI, the HTTP API and examples.
func (ix *Index) Snippet(n xmltree.NodeID, e Expr, max int) string {
	// A non-positive budget asks for no text: return "" rather than the
	// bare ellipses the truncation paths below would degenerate to.
	if max <= 0 {
		return ""
	}
	text := ix.doc.SubtreeText(n)
	if len(text) <= max {
		return text
	}
	terms := Terms(e)
	pos := -1
	toks := Tokenize(text)
	// Find the byte offset of the first matching token by re-scanning.
	if len(terms) > 0 && len(toks) > 0 {
		termSet := make(map[string]bool, len(terms))
		for _, t := range terms {
			termSet[t] = true
		}
		off := 0
		for off < len(text) {
			start, end := nextWord(text, off)
			if start < 0 {
				break
			}
			if termSet[Stem(lower(text[start:end]))] {
				pos = start
				break
			}
			off = end
		}
	}
	if pos < 0 {
		return text[:SnapRuneDown(text, max)] + "…"
	}
	lo := pos - max/3
	if lo < 0 {
		lo = 0
	}
	// Snapping lo forward and hi backward keeps hi-lo <= max while
	// landing both bounds on rune starts.
	lo = snapRuneUp(text, lo)
	hi := lo + max
	if hi >= len(text) {
		hi = len(text)
		lo = snapRuneUp(text, hi-max)
	} else {
		hi = SnapRuneDown(text, hi)
	}
	s := text[lo:hi]
	if lo > 0 {
		s = "…" + s
	}
	if hi < len(text) {
		s += "…"
	}
	return s
}

// SnapRuneDown returns the largest index j <= i that is a UTF-8 rune
// boundary of s; i is clamped to [0, len(s)]. On invalid UTF-8 it gives
// up after utf8.UTFMax-1 continuation bytes and returns the position
// reached (slicing invalid text cannot make it more invalid).
func SnapRuneDown(s string, i int) int {
	if i >= len(s) {
		return len(s)
	}
	if i < 0 {
		return 0
	}
	for k := 0; k < utf8.UTFMax-1 && i > 0; k++ {
		if utf8.RuneStart(s[i]) {
			return i
		}
		i--
	}
	return i
}

// snapRuneUp returns the smallest index j >= i that is a rune boundary
// of s; i is clamped to [0, len(s)].
func snapRuneUp(s string, i int) int {
	if i <= 0 {
		return 0
	}
	for k := 0; k < utf8.UTFMax-1 && i < len(s); k++ {
		if utf8.RuneStart(s[i]) {
			return i
		}
		i++
	}
	if i > len(s) {
		return len(s)
	}
	return i
}

func nextWord(s string, from int) (int, int) {
	i := from
	for i < len(s) && !isAlnumByte(s[i]) {
		i++
	}
	if i >= len(s) {
		return -1, -1
	}
	j := i
	for j < len(s) && isAlnumByte(s[j]) {
		j++
	}
	return i, j
}

func isAlnumByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
