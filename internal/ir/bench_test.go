package ir

import (
	"slices"
	"sort"
	"strings"
	"testing"

	"flexpath/internal/xmltree"
)

func benchIndex(b *testing.B) (*xmltree.Document, *Index) {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<lib>")
	words := []string{"gold", "silver", "vintage", "rare", "antique", "maple",
		"walnut", "crystal", "marble", "bronze"}
	for i := 0; i < 3000; i++ {
		sb.WriteString("<book><para>")
		for j := 0; j < 12; j++ {
			sb.WriteString(words[(i*7+j*3)%len(words)])
			sb.WriteByte(' ')
		}
		sb.WriteString("</para></book>")
	}
	sb.WriteString("</lib>")
	d, err := xmltree.ParseString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return d, NewIndex(d)
}

func BenchmarkIndexBuild(b *testing.B) {
	d, _ := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(d)
	}
}

func BenchmarkEvalTerm(b *testing.B) {
	_, ix := benchIndex(b)
	e := MustParseExpr("gold")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.mu.Lock()
		ix.cache = map[string]*Result{} // force re-evaluation
		ix.mu.Unlock()
		ix.Eval(e)
	}
}

func BenchmarkEvalConjunction(b *testing.B) {
	_, ix := benchIndex(b)
	e := MustParseExpr("gold and silver")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.mu.Lock()
		ix.cache = map[string]*Result{}
		ix.mu.Unlock()
		ix.Eval(e)
	}
}

func BenchmarkEvalPhrase(b *testing.B) {
	_, ix := benchIndex(b)
	e := MustParseExpr(`"gold silver"`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.mu.Lock()
		ix.cache = map[string]*Result{}
		ix.mu.Unlock()
		ix.Eval(e)
	}
}

func BenchmarkSatisfies(b *testing.B) {
	d, ix := benchIndex(b)
	r := ix.Eval(MustParseExpr("gold"))
	books := d.NodesWithTag("book")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Satisfies(books[i%len(books)])
	}
}

// BenchmarkTopMatchesSort isolates the match-list sort that TopMatches
// and TopContexts run, comparing the typed slices.SortStableFunc
// comparator now in retrieval.go against the reflective sort.SliceStable
// it replaced. Run with -benchmem: the typed variant also drops the
// closure/interface allocations reflection needs.
func BenchmarkTopMatchesSort(b *testing.B) {
	_, ix := benchIndex(b)
	r := ix.Eval(MustParseExpr("gold"))
	src := make([]Match, r.Len())
	for i := range src {
		src[i] = Match{Node: r.Node(i), Score: r.Score(i)}
	}
	scratch := make([]Match, len(src))
	b.Run("typed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, src)
			slices.SortStableFunc(scratch, compareMatches)
		}
	})
	b.Run("reflect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, src)
			sort.SliceStable(scratch, func(i, j int) bool {
				if scratch[i].Score != scratch[j].Score {
					return scratch[i].Score > scratch[j].Score
				}
				return scratch[i].Node < scratch[j].Node
			})
		}
	})
}
