package ir

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello World", []string{"hello", "world"}},
		{"the cat and the dog", []string{"cat", "dog"}},
		{"XML-based streaming!", []string{"xml", "bas", "stream"}},
		{"", nil},
		{"   ", nil},
		{"a an the of", nil},
		{"state of the art", []string{"state", "art"}},
		{"item42 x9", []string{"item42", "x9"}},
		{"don't stop", []string{"don", "t", "stop"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"streaming":  "stream",
		"algorithms": "algorithm",
		"queries":    "query",
		"glasses":    "glass",
		"painted":    "paint",
		"boxes":      "box",
		"glass":      "glass", // -ss preserved
		"xml":        "xml",
		"its":        "its", // too short for -s
		"axes":       "axe",
		"sing":       "sing", // too short for -ing
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenizeStemConsistency(t *testing.T) {
	// A query word must tokenize to the same term as the document word it
	// should match.
	doc := Tokenize("streams streaming streamed")
	for _, term := range doc {
		if term != "stream" {
			t.Errorf("inconsistent stemming: %v", doc)
		}
	}
}

// TestStemIdempotent: stemming must be a fixpoint, or canonical
// expression forms would drift under re-parsing (found by fuzzing).
func TestStemIdempotent(t *testing.T) {
	words := []string{
		"a00sing", "streaming", "processings", "classes", "caresses",
		"singings", "edited", "seeds", "bases", "axes", "queries",
	}
	for _, w := range words {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not idempotent: %q -> %q -> %q", w, once, twice)
		}
	}
}
