package ir

import (
	"math"
	"sort"
	"sync"

	"flexpath/internal/xmltree"
)

// posting records one token occurrence: the element that directly owns the
// text and the token's global position (ordinal over all index terms in
// document order, used for phrase and proximity matching).
type posting struct {
	node xmltree.NodeID
	pos  int32
}

// Scoring selects the term-weighting function for witness scores. All
// scoring functions produce the same match (witness) sets; only scores —
// and thus keyword-score rankings — differ. The FleXPath paper treats the
// IR scoring function as a black box ("Numerous algorithms have been
// proposed in the IR community"), so both classical choices are offered.
type Scoring int8

const (
	// ScoringTFIDF weights a witness by idf(t)·(1+log tf), the default.
	ScoringTFIDF Scoring = iota
	// ScoringBM25 weights a witness by the Okapi BM25 formula with
	// k1=1.2, b=0.75, using the element's own token count as document
	// length.
	ScoringBM25
)

// IndexOptions configures index construction.
type IndexOptions struct {
	Scoring Scoring
}

// Index is an element-level inverted index over a document. It is built
// once and safe for concurrent readers; expression evaluations are cached
// by canonical form.
type Index struct {
	doc       *xmltree.Document
	post      map[string][]posting
	df        map[string]int
	nodeLen   map[xmltree.NodeID]int32
	avgLen    float64
	textNodes int
	scoring   Scoring

	mu    sync.Mutex
	cache map[string]*Result
}

// NewIndex tokenizes the direct text of every element and builds the
// inverted index with default (tf-idf) scoring.
func NewIndex(doc *xmltree.Document) *Index {
	return NewIndexOptions(doc, IndexOptions{})
}

// NewIndexOptions is NewIndex with explicit options.
func NewIndexOptions(doc *xmltree.Document, opt IndexOptions) *Index {
	ix := &Index{
		doc:     doc,
		post:    make(map[string][]posting),
		df:      make(map[string]int),
		nodeLen: make(map[xmltree.NodeID]int32),
		scoring: opt.Scoring,
		cache:   make(map[string]*Result),
	}
	pos := int32(0)
	lastOwner := make(map[string]xmltree.NodeID)
	totalTokens := 0
	for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
		text := doc.Text(n)
		if text == "" {
			continue
		}
		ix.textNodes++
		toks := Tokenize(text)
		ix.nodeLen[n] = int32(len(toks))
		totalTokens += len(toks)
		for _, tok := range toks {
			ix.post[tok] = append(ix.post[tok], posting{node: n, pos: pos})
			if last, ok := lastOwner[tok]; !ok || last != n {
				ix.df[tok]++
				lastOwner[tok] = n
			}
			pos++
		}
	}
	if ix.textNodes > 0 {
		ix.avgLen = float64(totalTokens) / float64(ix.textNodes)
	}
	return ix
}

// termScore weights one term's occurrences in a node under the configured
// scoring function.
func (ix *Index) termScore(term string, node xmltree.NodeID, tf int) float64 {
	idf := ix.idf(term)
	if ix.scoring == ScoringBM25 {
		const k1, b = 1.2, 0.75
		norm := 1 - b + b*float64(ix.nodeLen[node])/math.Max(ix.avgLen, 1)
		return idf * (float64(tf) * (k1 + 1)) / (float64(tf) + k1*norm)
	}
	return idf * (1 + math.Log(float64(tf)))
}

// Doc returns the indexed document.
func (ix *Index) Doc() *xmltree.Document { return ix.doc }

// IsBM25 reports whether the index uses BM25 term weighting.
func (ix *Index) IsBM25() bool { return ix.scoring == ScoringBM25 }

// Result is the outcome of evaluating a full-text expression: the most
// specific elements satisfying it (in document order) with scores
// normalized to [0, 1]. A context node satisfies the expression iff its
// subtree contains at least one witness.
type Result struct {
	doc    *xmltree.Document
	nodes  []xmltree.NodeID
	scores []float64
}

// Len returns the number of witness elements.
func (r *Result) Len() int { return len(r.nodes) }

// Node returns the i-th witness in document order.
func (r *Result) Node(i int) xmltree.NodeID { return r.nodes[i] }

// Score returns the normalized score of the i-th witness.
func (r *Result) Score(i int) float64 { return r.scores[i] }

// firstWithin returns the index of the first witness >= x, for interval
// queries against the sorted witness list.
func (r *Result) firstWithin(x xmltree.NodeID) int {
	return sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i] >= x })
}

// Satisfies reports whether context node x satisfies the expression, i.e.
// whether x's subtree contains a witness.
func (r *Result) Satisfies(x xmltree.NodeID) bool {
	i := r.firstWithin(x)
	return i < len(r.nodes) && r.nodes[i] <= r.doc.End(x)
}

// ScoreWithin returns the keyword score of context node x: the maximum
// witness score within x's subtree, or 0 if x does not satisfy the
// expression.
func (r *Result) ScoreWithin(x xmltree.NodeID) float64 {
	end := r.doc.End(x)
	best := 0.0
	for i := r.firstWithin(x); i < len(r.nodes) && r.nodes[i] <= end; i++ {
		if r.scores[i] > best {
			best = r.scores[i]
		}
	}
	return best
}

// CountWithin returns the number of witnesses inside x's subtree. This is
// the #contains(x, FTExp) statistic of the paper's penalty formulas.
func (r *Result) CountWithin(x xmltree.NodeID) int {
	end := r.doc.End(x)
	i := r.firstWithin(x)
	j := i
	for j < len(r.nodes) && r.nodes[j] <= end {
		j++
	}
	return j - i
}

// Eval evaluates a full-text expression, returning its witness set.
// Results are cached per canonical form.
func (ix *Index) Eval(e Expr) *Result {
	key := e.Canon()
	ix.mu.Lock()
	if r, ok := ix.cache[key]; ok {
		ix.mu.Unlock()
		return r
	}
	ix.mu.Unlock()

	w := ix.eval(e)
	w = minimalFilter(ix.doc, w)
	normalize(w)
	r := &Result{doc: ix.doc}
	r.nodes = make([]xmltree.NodeID, len(w))
	r.scores = make([]float64, len(w))
	for i, x := range w {
		r.nodes[i] = x.node
		r.scores[i] = x.score
	}

	ix.mu.Lock()
	ix.cache[key] = r
	ix.mu.Unlock()
	return r
}

// CountSatisfyingWithTag counts the elements with the given tag that
// satisfy e. It backs the #contains statistics used in contains-promotion
// penalties.
func (ix *Index) CountSatisfyingWithTag(tag string, e Expr) int {
	r := ix.Eval(e)
	count := 0
	for _, n := range ix.doc.NodesWithTag(tag) {
		if r.Satisfies(n) {
			count++
		}
	}
	return count
}

// witness is an unnormalized (node, score) pair during evaluation.
type witness struct {
	node  xmltree.NodeID
	score float64
}

func (ix *Index) idf(term string) float64 {
	return math.Log(1 + float64(ix.textNodes)/float64(1+ix.df[term]))
}

func (ix *Index) eval(e Expr) []witness {
	switch t := e.(type) {
	case Term:
		return ix.evalTerm(t.Word)
	case Phrase:
		return ix.evalPhrase(t.Words)
	case Near:
		return ix.evalNear(t.Words, t.Window)
	case And:
		var cur []witness
		for i, c := range t.Exprs {
			w := minimalFilter(ix.doc, ix.eval(c))
			if i == 0 {
				cur = w
			} else {
				cur = ix.slca(cur, w)
			}
			if len(cur) == 0 {
				return nil
			}
		}
		return cur
	case Or:
		var all []witness
		for _, c := range t.Exprs {
			all = append(all, ix.eval(c)...)
		}
		sortWitnesses(all)
		return dedupMax(all)
	case AndNot:
		pos := minimalFilter(ix.doc, ix.eval(t.Pos))
		neg := minimalFilter(ix.doc, ix.eval(t.Neg))
		out := pos[:0:0]
		for _, p := range pos {
			if !anyWithin(ix.doc, neg, p.node) {
				out = append(out, p)
			}
		}
		return out
	default:
		return nil
	}
}

func (ix *Index) evalTerm(word string) []witness {
	posts := ix.post[word]
	if len(posts) == 0 {
		return nil
	}
	var out []witness
	i := 0
	for i < len(posts) {
		n := posts[i].node
		tf := 0
		for i < len(posts) && posts[i].node == n {
			tf++
			i++
		}
		out = append(out, witness{node: n, score: ix.termScore(word, n, tf)})
	}
	sortWitnesses(out)
	return out
}

func (ix *Index) evalPhrase(words []string) []witness {
	if len(words) == 0 {
		return nil
	}
	first := ix.post[words[0]]
	idfSum := 0.0
	for _, w := range words {
		idfSum += ix.idf(w)
	}
	var out []witness
	for _, p := range first {
		ok := true
		for off := 1; off < len(words); off++ {
			if !hasPos(ix.post[words[off]], p.pos+int32(off)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, witness{node: p.node, score: idfSum})
		}
	}
	sortWitnesses(out)
	return dedupMax(out)
}

func (ix *Index) evalNear(words []string, window int) []witness {
	if len(words) == 0 {
		return nil
	}
	idfSum := 0.0
	for _, w := range words {
		idfSum += ix.idf(w)
	}
	// Every token participating in a qualifying window yields a witness
	// at its owning element, so a context containing any participant
	// satisfies the expression.
	var out []witness
	for _, anchor := range words {
		for _, p := range ix.post[anchor] {
			ok := true
			for _, w := range words {
				if w == anchor {
					continue
				}
				if !hasPosInRange(ix.post[w], p.pos-int32(window), p.pos+int32(window)) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, witness{node: p.node, score: idfSum})
			}
		}
	}
	sortWitnesses(out)
	return dedupMax(out)
}

func hasPos(posts []posting, pos int32) bool {
	i := sort.Search(len(posts), func(i int) bool { return posts[i].pos >= pos })
	return i < len(posts) && posts[i].pos == pos
}

func hasPosInRange(posts []posting, lo, hi int32) bool {
	i := sort.Search(len(posts), func(i int) bool { return posts[i].pos >= lo })
	return i < len(posts) && posts[i].pos <= hi
}

// slca computes the smallest lowest common ancestors of one witness from
// each input (Xu & Papakonstantinou-style): for each witness of the
// smaller set, pair it with its nearest neighbors in the other set and
// take LCAs, then keep the minimal ones.
func (ix *Index) slca(a, b []witness) []witness {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	var cands []witness
	for _, s := range small {
		i := sort.Search(len(large), func(i int) bool { return large[i].node >= s.node })
		if i < len(large) {
			l := large[i]
			cands = append(cands, witness{node: ix.lca(s.node, l.node), score: s.score + l.score})
		}
		if i > 0 {
			l := large[i-1]
			cands = append(cands, witness{node: ix.lca(s.node, l.node), score: s.score + l.score})
		}
	}
	sortWitnesses(cands)
	cands = dedupMax(cands)
	return minimalFilter(ix.doc, cands)
}

func (ix *Index) lca(a, b xmltree.NodeID) xmltree.NodeID {
	d := ix.doc
	for d.Level(a) > d.Level(b) {
		a = d.Parent(a)
	}
	for d.Level(b) > d.Level(a) {
		b = d.Parent(b)
	}
	for a != b {
		a = d.Parent(a)
		b = d.Parent(b)
	}
	return a
}

func sortWitnesses(w []witness) {
	sort.Slice(w, func(i, j int) bool { return w[i].node < w[j].node })
}

// dedupMax collapses duplicate nodes in a sorted witness list, keeping the
// maximum score.
func dedupMax(w []witness) []witness {
	if len(w) == 0 {
		return w
	}
	out := w[:1]
	for _, x := range w[1:] {
		if x.node == out[len(out)-1].node {
			if x.score > out[len(out)-1].score {
				out[len(out)-1].score = x.score
			}
		} else {
			out = append(out, x)
		}
	}
	return out
}

// minimalFilter keeps only witnesses with no other witness inside their
// subtree. In a list sorted by start position, a node's descendants are
// contiguous immediately after it, so it suffices to test the next entry.
func minimalFilter(doc *xmltree.Document, w []witness) []witness {
	if len(w) <= 1 {
		return w
	}
	out := w[:0:0]
	for i := range w {
		if i+1 < len(w) && w[i+1].node <= doc.End(w[i].node) {
			continue
		}
		out = append(out, w[i])
	}
	return out
}

func anyWithin(doc *xmltree.Document, w []witness, x xmltree.NodeID) bool {
	i := sort.Search(len(w), func(i int) bool { return w[i].node >= x })
	return i < len(w) && w[i].node <= doc.End(x)
}

func normalize(w []witness) {
	maxScore := 0.0
	for _, x := range w {
		if x.score > maxScore {
			maxScore = x.score
		}
	}
	if maxScore <= 0 {
		for i := range w {
			w[i].score = 1
		}
		return
	}
	for i := range w {
		w[i].score /= maxScore
	}
}
