package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a full-text search expression (the FTExp of the paper's
// contains($i, FTExp) predicate). Expressions are immutable; Canon gives a
// canonical string form used for equality and map keys.
type Expr interface {
	// Canon returns a canonical, parseable representation.
	Canon() string
	exprNode()
}

// Term matches a single (stemmed) word anywhere in the context subtree.
type Term struct{ Word string }

// Phrase matches the words in order at consecutive token positions.
type Phrase struct{ Words []string }

// And matches contexts satisfying every operand.
type And struct{ Exprs []Expr }

// Or matches contexts satisfying at least one operand.
type Or struct{ Exprs []Expr }

// Near matches when all words occur within a window of Window token
// positions.
type Near struct {
	Words  []string
	Window int
}

// AndNot matches the most specific elements satisfying Pos whose subtrees
// contain no match of Neg. Negation is scoped to the most-specific match
// so that the match set stays upward-closed within ancestor chains (a
// requirement of the relaxation framework's contains inference rule).
type AndNot struct {
	Pos Expr
	Neg Expr
}

func (Term) exprNode()   {}
func (Phrase) exprNode() {}
func (And) exprNode()    {}
func (Or) exprNode()     {}
func (Near) exprNode()   {}
func (AndNot) exprNode() {}

// Canon implements Expr.
func (t Term) Canon() string { return quoteWord(t.Word) }

// Canon implements Expr.
func (p Phrase) Canon() string { return `"` + strings.Join(p.Words, " ") + `"` }

// Canon implements Expr.
func (a And) Canon() string { return canonList(a.Exprs, " and ") }

// Canon implements Expr.
func (o Or) Canon() string { return canonList(o.Exprs, " or ") }

// Canon implements Expr.
func (n Near) Canon() string {
	parts := make([]string, len(n.Words))
	for i, w := range n.Words {
		parts[i] = quoteWord(w)
	}
	return fmt.Sprintf("near(%s, %d)", strings.Join(parts, " "), n.Window)
}

// Canon implements Expr.
func (an AndNot) Canon() string {
	return "(" + an.Pos.Canon() + " and not " + an.Neg.Canon() + ")"
}

func quoteWord(w string) string { return `"` + w + `"` }

func canonList(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.Canon()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Terms returns the distinct stemmed words an expression refers to.
func Terms(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Expr)
	add := func(w string) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	walk = func(e Expr) {
		switch t := e.(type) {
		case Term:
			add(t.Word)
		case Phrase:
			for _, w := range t.Words {
				add(w)
			}
		case Near:
			for _, w := range t.Words {
				add(w)
			}
		case And:
			for _, c := range t.Exprs {
				walk(c)
			}
		case Or:
			for _, c := range t.Exprs {
				walk(c)
			}
		case AndNot:
			walk(t.Pos)
			walk(t.Neg)
		}
	}
	walk(e)
	return out
}

// ParseExpr parses the full-text expression grammar:
//
//	expr    := orExpr
//	orExpr  := andExpr ( "or" andExpr )*
//	andExpr := unary ( "and" unary )*
//	unary   := "not" unary | primary
//	primary := "(" expr ")"
//	         | "near" "(" word+ "," INT ")"
//	         | QUOTED            // one word: term; several: phrase
//	         | WORD              // bare term
//
// "not" may only appear as the right-hand side of a conjunction ("x and
// not y"); a top-level bare negation has no monotone semantics and is
// rejected. Words are normalized with the same tokenizer used at indexing
// time, so "Streaming" parses to the term "stream".
func ParseExpr(s string) (Expr, error) {
	p := &exprParser{src: s}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("ir: unexpected %q at offset %d", p.lit, p.off)
	}
	return e, nil
}

// MustParseExpr is ParseExpr but panics on error; for tests and constants.
func MustParseExpr(s string) Expr {
	e, err := ParseExpr(s)
	if err != nil {
		panic(err)
	}
	return e
}

type exprToken int

const (
	tokEOF exprToken = iota
	tokWord
	tokQuoted
	tokLParen
	tokRParen
	tokComma
	tokInt
)

type exprParser struct {
	src string
	pos int
	off int
	tok exprToken
	lit string
}

func (p *exprParser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	p.off = p.pos
	if p.pos >= len(p.src) {
		p.tok = tokEOF
		p.lit = ""
		return
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok, p.lit = tokLParen, "("
	case c == ')':
		p.pos++
		p.tok, p.lit = tokRParen, ")"
	case c == ',':
		p.pos++
		p.tok, p.lit = tokComma, ","
	case c == '"' || c == '\'':
		quote := c
		end := p.pos + 1
		for end < len(p.src) && p.src[end] != quote {
			end++
		}
		if end >= len(p.src) {
			p.tok, p.lit = tokQuoted, p.src[p.pos+1:]
			p.pos = len(p.src)
			return
		}
		p.tok, p.lit = tokQuoted, p.src[p.pos+1:end]
		p.pos = end + 1
	case c >= '0' && c <= '9':
		end := p.pos
		for end < len(p.src) && p.src[end] >= '0' && p.src[end] <= '9' {
			end++
		}
		p.tok, p.lit = tokInt, p.src[p.pos:end]
		p.pos = end
	default:
		end := p.pos
		for end < len(p.src) && !strings.ContainsRune(`(),"' `, rune(p.src[end])) && !unicode.IsSpace(rune(p.src[end])) {
			end++
		}
		p.tok, p.lit = tokWord, p.src[p.pos:end]
		p.pos = end
	}
}

func (p *exprParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Expr{left}
	for p.tok == tokWord && strings.EqualFold(p.lit, "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Or{Exprs: parts}, nil
}

func (p *exprParser) parseAnd() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	cur := left
	for p.tok == tokWord && strings.EqualFold(p.lit, "and") {
		p.next()
		if p.tok == tokWord && strings.EqualFold(p.lit, "not") {
			p.next()
			neg, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			cur = AndNot{Pos: cur, Neg: neg}
			continue
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if a, ok := cur.(And); ok {
			a.Exprs = append(a.Exprs, right)
			cur = a
		} else {
			cur = And{Exprs: []Expr{cur, right}}
		}
	}
	return cur, nil
}

func (p *exprParser) parsePrimary() (Expr, error) {
	switch p.tok {
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("ir: missing ) at offset %d", p.off)
		}
		p.next()
		return e, nil
	case tokQuoted:
		words := Tokenize(p.lit)
		p.next()
		if len(words) == 0 {
			return nil, fmt.Errorf("ir: quoted expression contains no index terms")
		}
		if len(words) == 1 {
			return Term{Word: words[0]}, nil
		}
		return Phrase{Words: words}, nil
	case tokWord:
		if strings.EqualFold(p.lit, "not") {
			return nil, fmt.Errorf("ir: bare negation is not supported; use \"x and not y\"")
		}
		if strings.EqualFold(p.lit, "near") {
			return p.parseNear()
		}
		words := Tokenize(p.lit)
		p.next()
		if len(words) == 0 {
			return nil, fmt.Errorf("ir: word is a stopword and cannot be searched alone")
		}
		return Term{Word: words[0]}, nil
	default:
		return nil, fmt.Errorf("ir: unexpected %q at offset %d", p.lit, p.off)
	}
}

func (p *exprParser) parseNear() (Expr, error) {
	p.next() // consume "near"
	if p.tok != tokLParen {
		return nil, fmt.Errorf("ir: near requires ( at offset %d", p.off)
	}
	p.next()
	var words []string
	for p.tok == tokWord || p.tok == tokQuoted {
		words = append(words, Tokenize(p.lit)...)
		p.next()
	}
	if p.tok != tokComma {
		return nil, fmt.Errorf("ir: near requires a trailing window, e.g. near(a b, 5)")
	}
	p.next()
	if p.tok != tokInt {
		return nil, fmt.Errorf("ir: near window must be an integer at offset %d", p.off)
	}
	window, err := strconv.Atoi(p.lit)
	if err != nil || window < 1 {
		return nil, fmt.Errorf("ir: invalid near window %q", p.lit)
	}
	p.next()
	if p.tok != tokRParen {
		return nil, fmt.Errorf("ir: missing ) after near at offset %d", p.off)
	}
	p.next()
	if len(words) < 2 {
		return nil, fmt.Errorf("ir: near requires at least two terms")
	}
	return Near{Words: words, Window: window}, nil
}
