// Package ir is the full-text search engine used by FleXPath to evaluate
// contains predicates. It provides a tokenizer with stopword removal and
// light stemming, a full-text expression language (conjunction,
// disjunction, negation, phrases, proximity), and an element-level
// inverted index over an xmltree.Document.
//
// The FleXPath paper treats the IR engine as a black box that, given a
// full-text expression, returns a ranked list of (node, score) pairs for
// the most specific elements satisfying the expression, with scores
// normalized to [0, 1] (see §5.1 of the paper, and XRANK / nearest-concept
// queries [20, 29] for the most-specific-element semantics). This package
// satisfies exactly that contract.
package ir

import "strings"

// stopwords is a small English stopword list. Stopwords are dropped at
// indexing and at query parsing.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"he": true, "in": true, "is": true, "it": true, "its": true, "of": true,
	"on": true, "or": true, "that": true, "the": true, "to": true,
	"was": true, "were": true, "will": true, "with": true,
}

// Stem applies a light suffix-stripping stemmer. It is intentionally
// simpler than Porter's algorithm but handles the inflections that matter
// for matching query keywords against generated text (e.g. "streaming" →
// "stream", "algorithms" → "algorithm"). Stripping runs to a fixpoint so
// that stemming is idempotent — Stem(Stem(w)) == Stem(w) — which keeps
// canonical expression forms stable under re-parsing.
func Stem(w string) string {
	for {
		next := stemOnce(w)
		if next == w {
			return w
		}
		w = next
	}
}

func stemOnce(w string) string {
	n := len(w)
	switch {
	case n > 5 && strings.HasSuffix(w, "ing"):
		return w[:n-3]
	case n > 4 && strings.HasSuffix(w, "ies"):
		return w[:n-3] + "y"
	case n > 5 && strings.HasSuffix(w, "sses"):
		return w[:n-2]
	case n > 4 && strings.HasSuffix(w, "ed"):
		return w[:n-2]
	case n > 4 && strings.HasSuffix(w, "es") && !strings.HasSuffix(w, "ses"):
		return w[:n-2]
	case n > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss"):
		return w[:n-1]
	}
	return w
}

// Tokenize splits s into normalized index terms: lowercase, alphanumeric
// runs only, stopwords removed, stemmed.
func Tokenize(s string) []string {
	var out []string
	appendToken := func(tok string) {
		if tok == "" || stopwords[tok] {
			return
		}
		out = append(out, Stem(tok))
	}
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		isAlnum := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c >= 'A' && c <= 'Z'
		if isAlnum {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			appendToken(strings.ToLower(s[start:i]))
			start = -1
		}
	}
	if start >= 0 {
		appendToken(strings.ToLower(s[start:]))
	}
	return out
}
