package ir

import (
	"fmt"
	"math"
	"sort"

	"flexpath/internal/fxp3"
	"flexpath/internal/xmltree"
)

// Columnar (FXP3) persistence for the inverted index. The postings —
// the index's dominant memory — are written as one flat array of
// (node, pos) pairs that DecodeColumnar views in place over the mmap'd
// snapshot: each term's []posting is a subslice of the mapped bytes, and
// term strings intern the term blob without copying. Only the lookup
// maps (term → postings/df, node → length) live on the heap.
//
// Payload layout (fxp3.Enc framing):
//
//	u64 scoring, u64 textNodes, f64 avgLen
//	u64 numNodeLens
//	col nlNode [numNodeLens]i32   sorted by node
//	col nlLen  [numNodeLens]i32
//	u64 numTerms
//	col termOff [numTerms+1]u64   offsets into termBlob (terms sorted)
//	col termBlob
//	col df      [numTerms]i32
//	col postOff [numTerms+1]u64   prefix posting counts
//	col postings [total]{i32 node, i32 pos}

// EncodeColumnar renders the index as an FXP3 index-section payload.
func (ix *Index) EncodeColumnar() []byte {
	e := &fxp3.Enc{}
	e.U64(uint64(ix.scoring))
	e.U64(uint64(ix.textNodes))
	e.F64(ix.avgLen)

	nodes := make([]xmltree.NodeID, 0, len(ix.nodeLen))
	for n := range ix.nodeLen {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	lens := make([]int32, len(nodes))
	for i, n := range nodes {
		lens[i] = ix.nodeLen[n]
	}
	e.U64(uint64(len(nodes)))
	fxp3.ColI32(e, nodes)
	fxp3.ColI32(e, lens)

	terms := make([]string, 0, len(ix.post))
	for t := range ix.post {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	e.U64(uint64(len(terms)))
	termOff := make([]uint64, 0, len(terms)+1)
	termOff = append(termOff, 0)
	var termBlob []byte
	df := make([]int32, len(terms))
	postOff := make([]uint64, 0, len(terms)+1)
	postOff = append(postOff, 0)
	total := 0
	for i, t := range terms {
		termBlob = append(termBlob, t...)
		termOff = append(termOff, uint64(len(termBlob)))
		df[i] = int32(ix.df[t])
		total += len(ix.post[t])
		postOff = append(postOff, uint64(total))
	}
	fxp3.ColU64(e, termOff)
	e.Col(termBlob)
	fxp3.ColI32(e, df)
	fxp3.ColU64(e, postOff)
	flat := make([]posting, 0, total)
	for _, t := range terms {
		flat = append(flat, ix.post[t]...)
	}
	fxp3.RawI32Pairs(e, flat, func(i int) (uint32, uint32) {
		return uint32(flat[i].node), uint32(flat[i].pos)
	})
	return e.Finish()
}

// DecodeColumnar restores an index over doc from an EncodeColumnar
// payload, aliasing the posting array and term bytes in place. The
// caller must keep the payload's backing memory alive for the life of
// the index.
func DecodeColumnar(doc *xmltree.Document, payload []byte) (*Index, error) {
	dec := fxp3.NewDec(payload)
	scoring := dec.U64()
	textNodes := dec.U64()
	avgLen := dec.F64()
	numNodeLens := int(dec.U64())
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("ir: snapshot: %w", err)
	}
	if scoring > uint64(ScoringBM25) {
		return nil, fmt.Errorf("ir: snapshot: unknown scoring %d", scoring)
	}
	if math.IsNaN(avgLen) || avgLen < 0 {
		return nil, fmt.Errorf("ir: snapshot: invalid average length")
	}
	if numNodeLens > maxBinaryCount || int(textNodes) > maxBinaryCount {
		return nil, fmt.Errorf("ir: snapshot: implausible counts")
	}
	nlNode := fxp3.ViewI32[xmltree.NodeID](dec, numNodeLens)
	nlLen := fxp3.ViewI32[int32](dec, numNodeLens)
	numTerms := int(dec.U64())
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("ir: snapshot: %w", err)
	}
	if numTerms > maxBinaryCount {
		return nil, fmt.Errorf("ir: snapshot: implausible term count %d", numTerms)
	}
	termOff := fxp3.ViewU64[uint64](dec, numTerms+1)
	termBlob := dec.Col()
	df := fxp3.ViewI32[int32](dec, numTerms)
	postOff := fxp3.ViewU64[uint64](dec, numTerms+1)
	posts := fxp3.ViewI32Pairs(dec, -1, func(a, b uint32) posting {
		return posting{node: xmltree.NodeID(int32(a)), pos: int32(b)}
	})
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("ir: snapshot: %w", err)
	}

	ix := &Index{
		doc:       doc,
		post:      make(map[string][]posting, numTerms),
		df:        make(map[string]int, numTerms),
		nodeLen:   make(map[xmltree.NodeID]int32, numNodeLens),
		avgLen:    avgLen,
		textNodes: int(textNodes),
		scoring:   Scoring(scoring),
		cache:     make(map[string]*Result),
	}
	for i := 0; i < numNodeLens; i++ {
		if int(nlNode[i]) < 0 || int(nlNode[i]) >= doc.Len() {
			return nil, fmt.Errorf("ir: snapshot: node %d out of range", nlNode[i])
		}
		ix.nodeLen[nlNode[i]] = nlLen[i]
	}
	for _, p := range posts {
		if int(p.node) < 0 || int(p.node) >= doc.Len() {
			return nil, fmt.Errorf("ir: snapshot: posting node %d out of range", p.node)
		}
	}
	for i := 0; i < numTerms; i++ {
		lo, hi := termOff[i], termOff[i+1]
		if lo > hi || hi > uint64(len(termBlob)) {
			return nil, fmt.Errorf("ir: snapshot: term table offsets out of range")
		}
		term, _ := fxp3.String(termBlob, lo, hi-lo)
		plo, phi := postOff[i], postOff[i+1]
		if plo > phi || phi > uint64(len(posts)) {
			return nil, fmt.Errorf("ir: snapshot: posting offsets out of range")
		}
		ix.post[term] = posts[plo:phi:phi]
		ix.df[term] = int(df[i])
	}
	return ix, nil
}
