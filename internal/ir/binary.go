package ir

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"flexpath/internal/xmltree"
)

// Binary persistence for the inverted index. Rebuilding the index from
// text is the second-largest load cost after XML parsing; a snapshot
// restores postings directly.
//
// Layout (unsigned varints unless noted):
//
//	magic "FXI1", scoring byte
//	textNodes, avgLen (float64 bits, fixed 8 bytes)
//	node length count, then (node, len) pairs with delta-encoded nodes
//	term count, then per term: name, df, posting count,
//	    postings as (node delta, pos delta) pairs
var indexMagic = [4]byte{'F', 'X', 'I', '1'}

// WriteBinary writes a snapshot of the index (excluding the document,
// which has its own snapshot format).
func (ix *Index) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	bw.WriteByte(byte(ix.scoring)) //nolint:errcheck // surfaced by Flush
	writeUvarint(bw, uint64(ix.textNodes))
	var avg [8]byte
	binary.LittleEndian.PutUint64(avg[:], math.Float64bits(ix.avgLen))
	bw.Write(avg[:]) //nolint:errcheck

	nodes := make([]xmltree.NodeID, 0, len(ix.nodeLen))
	for n := range ix.nodeLen {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	writeUvarint(bw, uint64(len(nodes)))
	prev := uint64(0)
	for _, n := range nodes {
		writeUvarint(bw, uint64(n)-prev)
		prev = uint64(n)
		writeUvarint(bw, uint64(ix.nodeLen[n]))
	}

	terms := make([]string, 0, len(ix.post))
	for t := range ix.post {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	writeUvarint(bw, uint64(len(terms)))
	for _, t := range terms {
		writeString(bw, t)
		writeUvarint(bw, uint64(ix.df[t]))
		posts := ix.post[t]
		writeUvarint(bw, uint64(len(posts)))
		prevNode, prevPos := uint64(0), uint64(0)
		for _, p := range posts {
			writeUvarint(bw, uint64(p.node)-prevNode)
			prevNode = uint64(p.node)
			writeUvarint(bw, uint64(p.pos)-prevPos)
			prevPos = uint64(p.pos)
		}
	}
	return bw.Flush()
}

// ReadIndexBinary restores an index over doc from a WriteBinary stream.
// The document must be the same one the index was built from; snapshots
// do not verify this beyond node-range checks.
func ReadIndexBinary(doc *xmltree.Document, r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("ir: snapshot: %w", err)
	}
	if magic != indexMagic {
		return nil, errors.New("ir: not an index snapshot (bad magic)")
	}
	scoring, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("ir: snapshot: %w", err)
	}
	if scoring > byte(ScoringBM25) {
		return nil, fmt.Errorf("ir: snapshot: unknown scoring %d", scoring)
	}
	ix := &Index{
		doc:     doc,
		post:    make(map[string][]posting),
		df:      make(map[string]int),
		nodeLen: make(map[xmltree.NodeID]int32),
		scoring: Scoring(scoring),
		cache:   make(map[string]*Result),
	}
	tn, err := readCount(br)
	if err != nil {
		return nil, err
	}
	ix.textNodes = tn
	var avg [8]byte
	if _, err := io.ReadFull(br, avg[:]); err != nil {
		return nil, fmt.Errorf("ir: snapshot: %w", err)
	}
	ix.avgLen = math.Float64frombits(binary.LittleEndian.Uint64(avg[:]))
	if math.IsNaN(ix.avgLen) || ix.avgLen < 0 {
		return nil, errors.New("ir: snapshot: invalid average length")
	}

	nNodes, err := readCount(br)
	if err != nil {
		return nil, err
	}
	node := uint64(0)
	for i := 0; i < nNodes; i++ {
		d, err := readCount(br)
		if err != nil {
			return nil, err
		}
		node += uint64(d)
		if node >= uint64(doc.Len()) {
			return nil, fmt.Errorf("ir: snapshot: node %d out of range", node)
		}
		l, err := readCount(br)
		if err != nil {
			return nil, err
		}
		ix.nodeLen[xmltree.NodeID(node)] = int32(l)
	}

	nTerms, err := readCount(br)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nTerms; i++ {
		term, err := readString(br)
		if err != nil {
			return nil, err
		}
		df, err := readCount(br)
		if err != nil {
			return nil, err
		}
		ix.df[term] = df
		nPosts, err := readCount(br)
		if err != nil {
			return nil, err
		}
		posts := make([]posting, nPosts)
		pn, pp := uint64(0), uint64(0)
		for j := 0; j < nPosts; j++ {
			dn, err := readCount(br)
			if err != nil {
				return nil, err
			}
			pn += uint64(dn)
			if pn >= uint64(doc.Len()) {
				return nil, fmt.Errorf("ir: snapshot: posting node %d out of range", pn)
			}
			dp, err := readCount(br)
			if err != nil {
				return nil, err
			}
			pp += uint64(dp)
			posts[j] = posting{node: xmltree.NodeID(pn), pos: int32(pp)}
		}
		ix.post[term] = posts
	}
	return ix, nil
}

const maxBinaryCount = 1 << 31

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // surfaced by the final Flush
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s) //nolint:errcheck
}

func readCount(r *bufio.Reader) (int, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("ir: snapshot: %w", err)
	}
	if v > maxBinaryCount {
		return 0, fmt.Errorf("ir: snapshot: implausible count %d", v)
	}
	return int(v), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readCount(r)
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("ir: snapshot: %w", err)
	}
	return string(buf), nil
}
