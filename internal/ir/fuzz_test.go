package ir

import "testing"

// FuzzParseExpr: the expression parser must never panic, and everything
// it accepts must have a stable, re-parseable canonical form.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		`"xml"`, `xml and streaming`, `a or b or c`, `(a and b) or c`,
		`"two words"`, `near(a b, 5)`, `a and not b`, `"`, `(((`, `near(`,
		`and`, `not`, `near(a,b)`, `"unterminated`, `a^b`, `🎉 and ünïcode`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		canon := e.Canon()
		e2, err := ParseExpr(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, src, err)
		}
		if e2.Canon() != canon {
			t.Fatalf("canonical form not stable: %q -> %q", canon, e2.Canon())
		}
	})
}
