package ir

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"flexpath/internal/xmltree"
)

const articleXML = `<collection>
  <article>
    <title>streaming XML queries</title>
    <section>
      <paragraph>we evaluate xml streams with stacks</paragraph>
      <paragraph>gold standard benchmarks</paragraph>
    </section>
  </article>
  <article>
    <title>relational engines</title>
    <section>
      <paragraph>sql over tables</paragraph>
      <note>xml appendix</note>
    </section>
  </article>
</collection>`

func mustDoc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

// naiveSatisfies is an independent, brute-force implementation of the
// context-satisfaction semantics, used as the oracle.
func naiveSatisfies(ix *Index, x xmltree.NodeID, e Expr) bool {
	doc := ix.doc
	switch t := e.(type) {
	case Term:
		for _, p := range ix.post[t.Word] {
			if doc.Contains(x, p.node) {
				return true
			}
		}
		return false
	case And:
		for _, c := range t.Exprs {
			if !naiveSatisfies(ix, x, c) {
				return false
			}
		}
		return true
	case Or:
		for _, c := range t.Exprs {
			if naiveSatisfies(ix, x, c) {
				return true
			}
		}
		return false
	case Phrase:
		for _, p := range ix.post[t.Words[0]] {
			if !doc.Contains(x, p.node) {
				continue
			}
			ok := true
			for off := 1; off < len(t.Words); off++ {
				if !hasPos(ix.post[t.Words[off]], p.pos+int32(off)) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	case Near:
		for _, w := range t.Words {
			for _, p := range ix.post[w] {
				if !doc.Contains(x, p.node) {
					continue
				}
				all := true
				for _, w2 := range t.Words {
					if w2 == w {
						continue
					}
					if !hasPosInRange(ix.post[w2], p.pos-int32(t.Window), p.pos+int32(t.Window)) {
						all = false
						break
					}
				}
				if all {
					return true
				}
			}
		}
		return false
	case AndNot:
		// Exists a minimal pos-match within x whose subtree has no neg
		// match.
		for n := x; n <= doc.End(x); n++ {
			if !naiveSatisfies(ix, n, t.Pos) {
				continue
			}
			minimal := true
			for _, c := range doc.Children(n) {
				if naiveSatisfies(ix, c, t.Pos) {
					minimal = false
					break
				}
			}
			if minimal && !naiveSatisfies(ix, n, t.Neg) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func TestSatisfiesAgainstNaive(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	exprs := []string{
		`xml`,
		`gold`,
		`missingword`,
		`xml and gold`,
		`xml and sql`,
		`xml or sql`,
		`"xml streams"`,
		`"streaming xml"`,
		`near(xml stacks, 6)`,
		`xml and not sql`,
		`sql and not xml`,
		`(xml or sql) and gold`,
	}
	for _, src := range exprs {
		e := MustParseExpr(src)
		r := ix.Eval(e)
		for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
			got := r.Satisfies(n)
			want := naiveSatisfies(ix, n, e)
			if got != want {
				t.Errorf("expr %q node %d (%s): Satisfies=%v naive=%v",
					src, n, doc.Path(n), got, want)
			}
		}
	}
}

func TestMostSpecificWitnesses(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	r := ix.Eval(MustParseExpr("xml"))
	// No witness may contain another witness.
	for i := 0; i < r.Len(); i++ {
		for j := 0; j < r.Len(); j++ {
			if i != j && doc.IsAncestor(r.Node(i), r.Node(j)) {
				t.Fatalf("witness %d contains witness %d", r.Node(i), r.Node(j))
			}
		}
	}
}

func TestScoresNormalized(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	for _, src := range []string{"xml", "xml and gold", `"xml streams"`, "xml or sql"} {
		r := ix.Eval(MustParseExpr(src))
		if r.Len() == 0 {
			t.Fatalf("%q: no witnesses", src)
		}
		maxScore := 0.0
		for i := 0; i < r.Len(); i++ {
			s := r.Score(i)
			if s < 0 || s > 1 {
				t.Errorf("%q: score %f out of [0,1]", src, s)
			}
			if s > maxScore {
				maxScore = s
			}
		}
		if maxScore != 1 {
			t.Errorf("%q: max score %f != 1", src, maxScore)
		}
	}
}

func TestScoreWithinMonotone(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	r := ix.Eval(MustParseExpr("xml and gold"))
	// An ancestor's context score is at least its descendant's.
	for n := xmltree.NodeID(1); int(n) < doc.Len(); n++ {
		p := doc.Parent(n)
		if r.ScoreWithin(p) < r.ScoreWithin(n) {
			t.Errorf("ScoreWithin(%d)=%f < child %d=%f", p, r.ScoreWithin(p), n, r.ScoreWithin(n))
		}
	}
}

func TestCountWithin(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	r := ix.Eval(MustParseExpr("xml"))
	root := doc.Root()
	if got := r.CountWithin(root); got != r.Len() {
		t.Errorf("CountWithin(root) = %d, want %d", got, r.Len())
	}
	total := 0
	for _, a := range doc.NodesWithTag("article") {
		total += r.CountWithin(a)
	}
	if total != r.Len() {
		t.Errorf("article counts sum to %d, want %d", total, r.Len())
	}
}

func TestCountSatisfyingWithTag(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	e := MustParseExpr("xml")
	if got := ix.CountSatisfyingWithTag("article", e); got != 2 {
		t.Errorf("articles containing xml = %d, want 2", got)
	}
	if got := ix.CountSatisfyingWithTag("paragraph", e); got != 1 {
		t.Errorf("paragraphs containing xml = %d, want 1", got)
	}
	if got := ix.CountSatisfyingWithTag("nosuch", e); got != 0 {
		t.Errorf("nosuch = %d", got)
	}
}

func TestEvalCache(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	e := MustParseExpr("xml and gold")
	r1 := ix.Eval(e)
	r2 := ix.Eval(MustParseExpr("xml and gold"))
	if r1 != r2 {
		t.Error("identical expressions were not cached")
	}
}

// randomTextDoc builds a random document with text drawn from a small
// vocabulary, so conjunctions and phrases have interesting matches.
func randomTextDoc(r *rand.Rand) *xmltree.Document {
	words := []string{"alpha", "beta", "gamma", "delta", "omega"}
	b := xmltree.NewBuilder()
	var build func(depth int)
	build = func(depth int) {
		b.Open([]string{"r", "s", "t"}[r.Intn(3)])
		if r.Intn(3) > 0 {
			n := 1 + r.Intn(4)
			text := ""
			for i := 0; i < n; i++ {
				if i > 0 {
					text += " "
				}
				text += words[r.Intn(len(words))]
			}
			b.Text(text)
		}
		if depth < 4 {
			for i := 0; i < r.Intn(3); i++ {
				build(depth + 1)
			}
		}
		b.Close()
	}
	build(0)
	d, err := b.Document()
	if err != nil {
		panic(err)
	}
	return d
}

func TestPropertySatisfiesMatchesNaive(t *testing.T) {
	exprs := []Expr{
		MustParseExpr("alpha"),
		MustParseExpr("alpha and beta"),
		MustParseExpr("alpha and beta and gamma"),
		MustParseExpr("alpha or omega"),
		MustParseExpr(`"alpha beta"`),
		MustParseExpr("near(alpha gamma, 3)"),
		MustParseExpr("alpha and not beta"),
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTextDoc(r)
		ix := NewIndex(doc)
		for _, e := range exprs {
			res := ix.Eval(e)
			for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
				if res.Satisfies(n) != naiveSatisfies(ix, n, e) {
					fmt.Printf("seed=%d expr=%s node=%d\n", seed, e.Canon(), n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUpwardClosure(t *testing.T) {
	// Satisfaction must be upward closed (required by the paper's
	// contains inference rule: ad(x,y) ∧ contains(y,e) ⊢ contains(x,e)).
	exprs := []Expr{
		MustParseExpr("alpha and beta"),
		MustParseExpr("alpha and not beta"),
		MustParseExpr(`"alpha beta"`),
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomTextDoc(r)
		ix := NewIndex(doc)
		for _, e := range exprs {
			res := ix.Eval(e)
			for n := xmltree.NodeID(1); int(n) < doc.Len(); n++ {
				if res.Satisfies(n) && !res.Satisfies(doc.Parent(n)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
