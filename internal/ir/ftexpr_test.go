package ir

import (
	"strings"
	"testing"
)

func TestParseExprForms(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical form
	}{
		{`"XML"`, `"xml"`},
		{`xml`, `"xml"`},
		{`"XML" and "streaming"`, `("xml" and "stream")`},
		{`xml and streaming and gold`, `("xml" and "stream" and "gold")`},
		{`xml or gold`, `("xml" or "gold")`},
		{`(xml or gold) and silver`, `(("xml" or "gold") and "silver")`},
		{`"rare gold ring"`, `"rare gold ring"`},
		{`xml and not gold`, `("xml" and not "gold")`},
		{`near(xml streaming, 5)`, `near("xml" "stream", 5)`},
		{`XML AND Streaming`, `("xml" and "stream")`},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.in, err)
			continue
		}
		if got := e.Canon(); got != c.want {
			t.Errorf("ParseExpr(%q).Canon() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseExprRoundTrip(t *testing.T) {
	exprs := []string{
		`"xml"`,
		`("xml" and "stream")`,
		`("xml" or "gold")`,
		`"rare gold ring"`,
		`("xml" and not "gold")`,
		`near("xml" "stream", 4)`,
		`(("alpha" or "beta") and "gamma")`,
	}
	for _, src := range exprs {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		e2, err := ParseExpr(e.Canon())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.Canon(), err)
		}
		if e.Canon() != e2.Canon() {
			t.Errorf("canon not stable: %q -> %q", e.Canon(), e2.Canon())
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	bad := []string{
		``,
		`and`,
		`not xml`,
		`xml and`,
		`(xml`,
		`near(xml, 5)`,
		`near(xml gold)`,
		`near(xml gold, 0)`,
		`"the"`, // stopword-only
		`xml or`,
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}

func TestTerms(t *testing.T) {
	e := MustParseExpr(`("xml" and "stream") or near(gold silver, 3) or "xml"`)
	got := Terms(e)
	want := map[string]bool{"xml": true, "stream": true, "gold": true, "silver": true}
	if len(got) != len(want) {
		t.Fatalf("Terms = %v", got)
	}
	for _, w := range got {
		if !want[w] {
			t.Errorf("unexpected term %q", w)
		}
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseExpr did not panic")
		}
	}()
	MustParseExpr("((")
}

func TestQuotedStopwordsInsidePhrase(t *testing.T) {
	e := MustParseExpr(`"state of the art"`)
	p, ok := e.(Phrase)
	if !ok {
		t.Fatalf("expected Phrase, got %T", e)
	}
	if strings.Join(p.Words, ",") != "state,art" {
		t.Errorf("phrase words = %v", p.Words)
	}
}
