package ir

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTopMatches(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	matches := ix.TopMatches(MustParseExpr("xml"), 0)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Score > matches[i-1].Score {
			t.Errorf("matches out of order at %d", i)
		}
	}
	if matches[0].Score != 1 {
		t.Errorf("top score = %f, want 1 (normalized)", matches[0].Score)
	}
	limited := ix.TopMatches(MustParseExpr("xml"), 2)
	if len(limited) != 2 {
		t.Errorf("limit ignored: %d", len(limited))
	}
	if got := ix.TopMatches(MustParseExpr("absentterm"), 5); len(got) != 0 {
		t.Errorf("matches for absent term: %v", got)
	}
}

func TestTopContexts(t *testing.T) {
	doc := mustDoc(t, articleXML)
	ix := NewIndex(doc)
	articles := ix.TopContexts("article", MustParseExpr("xml"), 0)
	if len(articles) != 2 {
		t.Fatalf("xml articles = %d, want 2", len(articles))
	}
	for _, m := range articles {
		if doc.TagName(m.Node) != "article" {
			t.Errorf("context has tag %q", doc.TagName(m.Node))
		}
	}
	paras := ix.TopContexts("paragraph", MustParseExpr("gold"), 1)
	if len(paras) != 1 {
		t.Errorf("gold paragraphs (limit 1) = %d", len(paras))
	}
}

func TestSnippet(t *testing.T) {
	doc := mustDoc(t, `<a><b>`+strings.Repeat("filler words here ", 30)+
		`the golden treasure appears once `+strings.Repeat("and more filler ", 30)+`</b></a>`)
	ix := NewIndex(doc)
	e := MustParseExpr("golden")
	s := ix.Snippet(0, e, 80)
	if !strings.Contains(s, "golden") {
		t.Errorf("snippet does not contain the match: %q", s)
	}
	if len(s) > 90 {
		t.Errorf("snippet too long: %d bytes", len(s))
	}
	// Short text returned whole.
	doc2 := mustDoc(t, `<a>tiny</a>`)
	ix2 := NewIndex(doc2)
	if got := ix2.Snippet(0, e, 80); got != "tiny" {
		t.Errorf("short snippet = %q", got)
	}
	// Missing term: prefix fallback.
	s = ix.Snippet(0, MustParseExpr("absentterm"), 40)
	if !strings.HasPrefix(s, "filler") || !strings.HasSuffix(s, "…") {
		t.Errorf("fallback snippet = %q", s)
	}
}

// TestSnippetRuneBoundaries is the regression test for snippet bounds
// landing inside a multi-byte rune: sweeping max across a multi-byte
// text hits every byte alignment, and a split rune would make the
// result invalid UTF-8 (rendered as U+FFFD after JSON encoding).
func TestSnippetRuneBoundaries(t *testing.T) {
	pad := strings.Repeat("héllo wörld déjà ", 20)
	doc := mustDoc(t, "<a>"+pad+"golden träsure "+pad+"</a>")
	ix := NewIndex(doc)
	golden := MustParseExpr("golden")
	absent := MustParseExpr("absentterm")
	for max := 10; max <= 80; max++ {
		centered := ix.Snippet(0, golden, max)
		if !utf8.ValidString(centered) {
			t.Fatalf("max=%d: centered snippet is invalid UTF-8: %q", max, centered)
		}
		prefix := ix.Snippet(0, absent, max)
		if !utf8.ValidString(prefix) {
			t.Fatalf("max=%d: prefix snippet is invalid UTF-8: %q", max, prefix)
		}
	}
}

func TestSnapRuneDown(t *testing.T) {
	s := "aé€b" // rune starts at 0, 1, 3, 6
	for i, want := range []int{0, 1, 1, 3, 3, 3, 6} {
		if got := SnapRuneDown(s, i); got != want {
			t.Errorf("SnapRuneDown(%d) = %d, want %d", i, got, want)
		}
	}
	if got := SnapRuneDown(s, 99); got != len(s) {
		t.Errorf("SnapRuneDown beyond end = %d", got)
	}
	if got := SnapRuneDown(s, -1); got != 0 {
		t.Errorf("SnapRuneDown(-1) = %d", got)
	}
}

func TestSnippetStemmedMatch(t *testing.T) {
	doc := mustDoc(t, `<a>`+strings.Repeat("pad ", 60)+`systems were Streaming rapidly onward `+strings.Repeat("pad ", 60)+`</a>`)
	ix := NewIndex(doc)
	s := ix.Snippet(0, MustParseExpr("stream"), 60)
	if !strings.Contains(s, "Streaming") {
		t.Errorf("stemmed snippet missed inflected form: %q", s)
	}
}
