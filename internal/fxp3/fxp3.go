// Package fxp3 implements the FXP3 snapshot container: a fixed header, a
// section directory with absolute offsets, lengths and per-section
// CRC32C (Castagnoli, the WAL's checksum), and 8-byte-aligned section
// payloads. The layout is designed to be read in place from an mmap'd
// byte slice: the directory is validated up front, but a section's bytes
// are only touched (and its checksum only verified, faulting its pages
// in) on first access, so opening a snapshot costs one page, not the
// whole file.
//
// Layout (all fixed-width integers little-endian):
//
//	0   magic "FXP3"
//	4   u16 version (1)
//	6   u16 section count
//	8   u32 CRC32C of the directory bytes
//	12  u32 reserved (zero)
//	16  directory: count × 24-byte entries
//	      u32 section id
//	      u32 CRC32C of the section payload
//	      u64 absolute offset (8-byte aligned)
//	      u64 length
//	then the payloads, zero-padded to 8-byte alignment
//
// Payload internals are the owning subsystem's business; this package
// additionally provides the little-endian column encoding those payloads
// share (Enc/Dec and the typed column views, which alias the underlying
// bytes zero-copy on little-endian hosts and decode into fresh slices on
// big-endian ones).
package fxp3

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Magic identifies an FXP3 snapshot.
var Magic = [4]byte{'F', 'X', 'P', '3'}

// Version is the current container version.
const Version = 1

// SectionID names a section in the directory.
type SectionID uint32

// The sections an indexed document snapshot carries. Meta is small and
// read at cold-open; the other three are faulted in on first search.
const (
	SectionMeta  SectionID = 1
	SectionTree  SectionID = 2
	SectionStats SectionID = 3
	SectionIndex SectionID = 4
)

// ErrCorrupt reports a structurally invalid or checksum-failing
// snapshot. All corruption detected by this package wraps it.
var ErrCorrupt = errors.New("fxp3: corrupt snapshot")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 16
const dirEntrySize = 24

// Section pairs a section id with its payload for writing.
type Section struct {
	ID   SectionID
	Data []byte
}

// Write assembles a container from sections, in the given order, and
// writes it to w.
func Write(w io.Writer, sections []Section) error {
	dir := make([]byte, len(sections)*dirEntrySize)
	off := uint64(headerSize + len(dir))
	for i, s := range sections {
		off = align8(off)
		e := dir[i*dirEntrySize:]
		putU32(e[0:], uint32(s.ID))
		putU32(e[4:], crc32.Checksum(s.Data, castagnoli))
		putU64(e[8:], off)
		putU64(e[16:], uint64(len(s.Data)))
		off += uint64(len(s.Data))
	}
	var hdr [headerSize]byte
	copy(hdr[:4], Magic[:])
	putU16(hdr[4:], Version)
	putU16(hdr[6:], uint16(len(sections)))
	putU32(hdr[8:], crc32.Checksum(dir, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(dir); err != nil {
		return err
	}
	var pad [8]byte
	pos := uint64(headerSize + len(dir))
	for _, s := range sections {
		if a := align8(pos); a > pos {
			if _, err := w.Write(pad[:a-pos]); err != nil {
				return err
			}
			pos = a
		}
		if _, err := w.Write(s.Data); err != nil {
			return err
		}
		pos += uint64(len(s.Data))
	}
	return nil
}

type dirEntry struct {
	id     SectionID
	crc    uint32
	offset uint64
	length uint64
}

// File is a parsed container over an in-place byte slice (typically an
// mmap region). Parse validates the header and directory eagerly;
// Section verifies each payload's checksum once, on first access.
type File struct {
	data []byte
	dir  []dirEntry
	once []sync.Once
	// verr[i] records the outcome of entry i's checksum pass so later
	// callers see the same error.
	verr []error
}

// Parse validates the header and section directory of data. Payload
// bytes are not touched (and, over mmap, not faulted in).
func Parse(data []byte) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := getU16(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count := int(getU16(data[6:]))
	dirEnd := headerSize + count*dirEntrySize
	if dirEnd > len(data) {
		return nil, fmt.Errorf("%w: directory (%d sections) exceeds file size", ErrCorrupt, count)
	}
	dirBytes := data[headerSize:dirEnd]
	if got, want := crc32.Checksum(dirBytes, castagnoli), getU32(data[8:]); got != want {
		return nil, fmt.Errorf("%w: directory checksum mismatch", ErrCorrupt)
	}
	f := &File{
		data: data,
		dir:  make([]dirEntry, count),
		once: make([]sync.Once, count),
		verr: make([]error, count),
	}
	seen := make(map[SectionID]bool, count)
	for i := range f.dir {
		e := dirBytes[i*dirEntrySize:]
		d := dirEntry{
			id:     SectionID(getU32(e[0:])),
			crc:    getU32(e[4:]),
			offset: getU64(e[8:]),
			length: getU64(e[16:]),
		}
		if seen[d.id] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, d.id)
		}
		seen[d.id] = true
		if d.offset%8 != 0 {
			return nil, fmt.Errorf("%w: section %d is misaligned (offset %d)", ErrCorrupt, d.id, d.offset)
		}
		if d.offset > uint64(len(data)) || d.length > uint64(len(data))-d.offset {
			return nil, fmt.Errorf("%w: section %d [%d,+%d) exceeds file size %d",
				ErrCorrupt, d.id, d.offset, d.length, len(data))
		}
		f.dir[i] = d
	}
	return f, nil
}

// Has reports whether the directory lists a section.
func (f *File) Has(id SectionID) bool {
	for i := range f.dir {
		if f.dir[i].id == id {
			return true
		}
	}
	return false
}

// SectionSize returns the byte length of a section, or 0 when absent.
func (f *File) SectionSize(id SectionID) int {
	for i := range f.dir {
		if f.dir[i].id == id {
			return int(f.dir[i].length)
		}
	}
	return 0
}

// Section returns a section's payload as a subslice of the parsed data
// (zero-copy). The payload's checksum is verified on the first access —
// over mmap, that read is what faults the section's pages in — and the
// verdict is remembered, so later accesses are free.
func (f *File) Section(id SectionID) ([]byte, error) {
	for i := range f.dir {
		if f.dir[i].id != id {
			continue
		}
		d := f.dir[i]
		payload := f.data[d.offset : d.offset+d.length]
		f.once[i].Do(func() {
			if crc32.Checksum(payload, castagnoli) != d.crc {
				f.verr[i] = fmt.Errorf("%w: section %d checksum mismatch", ErrCorrupt, id)
			}
		})
		if f.verr[i] != nil {
			return nil, f.verr[i]
		}
		return payload, nil
	}
	return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
