package fxp3

import (
	"fmt"
	"math"
	"unsafe"
)

// hostLittle reports whether the host is little-endian, the byte order
// FXP3 payloads are written in. On little-endian hosts typed views alias
// the snapshot bytes directly; on big-endian hosts they decode into
// fresh slices (correct, just not zero-copy).
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Aliasing reports whether typed views return aliases into the snapshot
// bytes on this host. Callers that must not outlive a mapping use this
// to decide whether a defensive copy is needed (none is in-tree; the
// serving layer instead keeps mappings open while aliases exist).
func Aliasing() bool { return hostLittle }

// Enc builds a section payload: fixed-width scalar fields and
// length-prefixed byte columns, everything 8-byte aligned so typed views
// over the decoded payload are themselves aligned.
type Enc struct {
	b []byte
}

// U64 appends a fixed 8-byte little-endian integer.
func (e *Enc) U64(v uint64) {
	var buf [8]byte
	putU64(buf[:], v)
	e.b = append(e.b, buf[:]...)
}

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Col appends a length-prefixed byte column, padded to 8-byte alignment.
func (e *Enc) Col(p []byte) {
	e.U64(uint64(len(p)))
	e.b = append(e.b, p...)
	for len(e.b)%8 != 0 {
		e.b = append(e.b, 0)
	}
}

// Finish returns the assembled payload.
func (e *Enc) Finish() []byte { return e.b }

// Dec reads a payload written by Enc. Errors are sticky: after the first
// malformed read every subsequent read returns zero values, and Err
// reports the failure — callers check once, at the end.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over a section payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error, wrapped in ErrCorrupt.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// U64 reads a fixed 8-byte little-endian integer.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated scalar at offset %d", d.off)
		return 0
	}
	v := getU64(d.b[d.off:])
	d.off += 8
	return v
}

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Col reads a length-prefixed byte column as a zero-copy subslice.
func (d *Dec) Col() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("column of %d bytes exceeds remaining %d", n, len(d.b)-d.off)
		return nil
	}
	p := d.b[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(align8(n))
	if d.off > len(d.b) {
		// The final column's padding may be truncated.
		d.off = len(d.b)
	}
	return p
}

// ColI32 appends a column of 32-bit values in little-endian order.
func ColI32[T ~int32 | ~uint32](e *Enc, v []T) {
	if hostLittle {
		e.Col(rawBytes(v))
		return
	}
	p := make([]byte, 4*len(v))
	for i, x := range v {
		putU32(p[4*i:], uint32(x))
	}
	e.Col(p)
}

// ViewI32 reads a column written by ColI32 and returns it as []T —
// aliasing the payload on little-endian hosts, decoding otherwise.
// elems, when >= 0, asserts the expected element count.
func ViewI32[T ~int32 | ~uint32](d *Dec, elems int) []T {
	p := d.Col()
	if d.err != nil {
		return nil
	}
	if len(p)%4 != 0 {
		d.fail("i32 column of %d bytes is not a whole number of elements", len(p))
		return nil
	}
	n := len(p) / 4
	if elems >= 0 && n != elems {
		d.fail("i32 column has %d elements, want %d", n, elems)
		return nil
	}
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*T)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(getU32(p[4*i:]))
	}
	return out
}

// ColU64 appends a column of 64-bit values in little-endian order.
func ColU64[T ~uint64 | ~int64](e *Enc, v []T) {
	if hostLittle {
		e.Col(rawBytes(v))
		return
	}
	p := make([]byte, 8*len(v))
	for i, x := range v {
		putU64(p[8*i:], uint64(x))
	}
	e.Col(p)
}

// ViewU64 reads a column written by ColU64; see ViewI32.
func ViewU64[T ~uint64 | ~int64](d *Dec, elems int) []T {
	p := d.Col()
	if d.err != nil {
		return nil
	}
	if len(p)%8 != 0 {
		d.fail("u64 column of %d bytes is not a whole number of elements", len(p))
		return nil
	}
	n := len(p) / 8
	if elems >= 0 && n != elems {
		d.fail("u64 column has %d elements, want %d", n, elems)
		return nil
	}
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*T)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(getU64(p[8*i:]))
	}
	return out
}

// RawI32Pairs appends a column of structs laid out as exactly two 32-bit
// fields (8 bytes/element, no padding). The caller vouches for T's
// layout; on big-endian hosts enc must supply a pre-encoded form via the
// fallback callback.
func RawI32Pairs[T any](e *Enc, v []T, fallback func(i int) (a, b uint32)) {
	if hostLittle {
		e.Col(rawBytes(v))
		return
	}
	p := make([]byte, 8*len(v))
	for i := range v {
		a, b := fallback(i)
		putU32(p[8*i:], a)
		putU32(p[8*i+4:], b)
	}
	e.Col(p)
}

// ViewI32Pairs reads a column written by RawI32Pairs; the fallback
// rebuilds one element from its two decoded halves on big-endian hosts.
func ViewI32Pairs[T any](d *Dec, elems int, fallback func(a, b uint32) T) []T {
	p := d.Col()
	if d.err != nil {
		return nil
	}
	if len(p)%8 != 0 {
		d.fail("pair column of %d bytes is not a whole number of elements", len(p))
		return nil
	}
	n := len(p) / 8
	if elems >= 0 && n != elems {
		d.fail("pair column has %d elements, want %d", n, elems)
		return nil
	}
	if n == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*T)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = fallback(getU32(p[8*i:]), getU32(p[8*i+4:]))
	}
	return out
}

// String returns a column's bytes as a string without copying. The
// string aliases the payload: it is valid only while the underlying
// mapping is open, which the serving layer guarantees.
func String(p []byte, off, n uint64) (string, bool) {
	if off > uint64(len(p)) || n > uint64(len(p))-off {
		return "", false
	}
	if n == 0 {
		return "", true
	}
	return unsafe.String(&p[off], int(n)), true
}

// rawBytes reinterprets a slice's backing array as bytes.
func rawBytes[T any](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*int(unsafe.Sizeof(t)))
}
