package fxp3

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

func build(t *testing.T, sections []Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, sections); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	sections := []Section{
		{SectionMeta, []byte("meta")},
		{SectionTree, []byte("the tree payload, longer than eight bytes")},
		{SectionIndex, nil},
	}
	data := build(t, sections)
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sections {
		if !f.Has(s.ID) {
			t.Fatalf("section %d missing", s.ID)
		}
		if got := f.SectionSize(s.ID); got != len(s.Data) {
			t.Fatalf("section %d size %d, want %d", s.ID, got, len(s.Data))
		}
		p, err := f.Section(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, s.Data) {
			t.Fatalf("section %d payload %q, want %q", s.ID, p, s.Data)
		}
	}
	if f.Has(SectionStats) {
		t.Error("absent section reported present")
	}
	if _, err := f.Section(SectionStats); !errors.Is(err, ErrCorrupt) {
		t.Errorf("missing section error = %v, want ErrCorrupt", err)
	}
}

func TestSectionPayloadsAligned(t *testing.T) {
	// Odd-length payloads force padding; every section must still start
	// on an 8-byte boundary so typed views over it are aligned.
	data := build(t, []Section{
		{SectionMeta, []byte("x")},
		{SectionTree, []byte("yyy")},
		{SectionStats, []byte("zzzzzzzzz")},
	})
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []SectionID{SectionMeta, SectionTree, SectionStats} {
		if _, err := f.Section(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := range f.dir {
		if f.dir[i].offset%8 != 0 {
			t.Fatalf("section %d at misaligned offset %d", f.dir[i].id, f.dir[i].offset)
		}
	}
}

// TestParseRejectsTruncationAtEveryOffset cuts a valid container at every
// possible length: each prefix must either fail Parse or fail the first
// Section access — never succeed with wrong bytes.
func TestParseRejectsTruncationAtEveryOffset(t *testing.T) {
	data := build(t, []Section{
		{SectionMeta, []byte("meta payload")},
		{SectionTree, bytes.Repeat([]byte("tree"), 16)},
	})
	for n := 0; n < len(data); n++ {
		f, err := Parse(data[:n])
		if err != nil {
			continue
		}
		for _, id := range []SectionID{SectionMeta, SectionTree} {
			if p, err := f.Section(id); err == nil {
				full, _ := Parse(data)
				want, _ := full.Section(id)
				if !bytes.Equal(p, want) {
					t.Fatalf("truncation to %d bytes returned wrong section %d payload", n, id)
				}
			}
		}
		// A parseable prefix must at least lose the last section.
		if _, err := f.Section(SectionTree); err == nil {
			t.Fatalf("truncation to %d/%d bytes still served the final section", n, len(data))
		}
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	good := build(t, []Section{
		{SectionMeta, []byte("meta payload")},
		{SectionTree, bytes.Repeat([]byte("tree"), 16)},
	})
	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(good)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       mutate(func(b []byte) { b[0] = 'G' }),
		"bad version":     mutate(func(b []byte) { b[4] = 99 }),
		"huge count":      mutate(func(b []byte) { b[6], b[7] = 0xff, 0xff }),
		"dir bit flip":    mutate(func(b []byte) { b[headerSize] ^= 1 }),
		"dir crc flip":    mutate(func(b []byte) { b[8] ^= 1 }),
		"dup section":     nil, // built below
		"misaligned":      nil,
		"length overflow": nil,
	}
	for name, data := range cases {
		if data == nil {
			continue
		}
		if _, err := Parse(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	// Directory-level lies need the CRC recomputed to reach the entry
	// validation they target.
	redir := func(f func(dir []byte)) []byte {
		b := bytes.Clone(good)
		count := int(getU16(b[6:]))
		dir := b[headerSize : headerSize+count*dirEntrySize]
		f(dir)
		putU32(b[8:], crc32.Checksum(dir, castagnoli))
		return b
	}
	for name, data := range map[string][]byte{
		"dup section": redir(func(dir []byte) {
			copy(dir[dirEntrySize:], dir[:dirEntrySize])
		}),
		"misaligned": redir(func(dir []byte) {
			putU64(dir[8:], getU64(dir[8:])+1)
		}),
		"length overflow": redir(func(dir []byte) {
			putU64(dir[16:], 1<<40)
		}),
	} {
		if _, err := Parse(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	// A payload bit flip parses (the directory is intact) but fails the
	// lazy checksum on access — and the verdict is remembered.
	flipped := bytes.Clone(good)
	flipped[len(flipped)-1] ^= 1
	f, err := Parse(flipped)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Section(SectionTree); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload bit flip not caught: %v", err)
	}
	if _, err := f.Section(SectionTree); !errors.Is(err, ErrCorrupt) {
		t.Fatal("checksum verdict not remembered")
	}
	if _, err := f.Section(SectionMeta); err != nil {
		t.Fatalf("intact sibling section rejected: %v", err)
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	i32 := []int32{-1, 0, 1, 1 << 30, -(1 << 30)}
	u64 := []uint64{0, 1, 1<<63 + 5}
	type pair struct{ A, B int32 }
	pairs := []pair{{1, 2}, {-3, 4}}
	var e Enc
	e.U64(42)
	e.F64(3.5)
	ColI32(&e, i32)
	ColU64(&e, u64)
	RawI32Pairs(&e, pairs, func(i int) (uint32, uint32) {
		return uint32(pairs[i].A), uint32(pairs[i].B)
	})
	e.Col([]byte("tail"))
	payload := e.Finish()
	if len(payload)%8 != 0 {
		t.Fatalf("payload length %d not 8-byte aligned", len(payload))
	}

	d := NewDec(payload)
	if v := d.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.F64(); v != 3.5 {
		t.Fatalf("F64 = %v", v)
	}
	gi := ViewI32[int32](d, len(i32))
	gu := ViewU64[uint64](d, len(u64))
	gp := ViewI32Pairs[pair](d, len(pairs), func(a, b uint32) pair {
		return pair{int32(a), int32(b)}
	})
	tail := d.Col()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range i32 {
		if gi[i] != i32[i] {
			t.Fatalf("i32[%d] = %d, want %d", i, gi[i], i32[i])
		}
	}
	for i := range u64 {
		if gu[i] != u64[i] {
			t.Fatalf("u64[%d] = %d, want %d", i, gu[i], u64[i])
		}
	}
	for i := range pairs {
		if gp[i] != pairs[i] {
			t.Fatalf("pair[%d] = %+v, want %+v", i, gp[i], pairs[i])
		}
	}
	if string(tail) != "tail" {
		t.Fatalf("tail = %q", tail)
	}
}

func TestDecErrorsAreStickyAndWrapped(t *testing.T) {
	var e Enc
	ColI32(&e, []int32{1, 2, 3})
	payload := e.Finish()

	// Wrong element-count assertion.
	d := NewDec(payload)
	if v := ViewI32[int32](d, 4); v != nil {
		t.Fatal("mismatched element count returned a view")
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}
	// Sticky: subsequent reads stay dead without panicking.
	if v := d.U64(); v != 0 {
		t.Fatal("read after error returned data")
	}

	// Truncated scalar.
	d = NewDec(payload[:4])
	d.U64()
	d.U64()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("truncated scalar: %v", d.Err())
	}

	// Column length lies beyond the payload.
	var e2 Enc
	e2.U64(1 << 40)
	d = NewDec(e2.Finish())
	if p := d.Col(); p != nil || !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("oversized column: p=%v err=%v", p, d.Err())
	}
}

func TestStringView(t *testing.T) {
	p := []byte("hello world")
	if s, ok := String(p, 6, 5); !ok || s != "world" {
		t.Fatalf("String = %q, %v", s, ok)
	}
	if s, ok := String(p, 0, 0); !ok || s != "" {
		t.Fatalf("empty String = %q, %v", s, ok)
	}
	if _, ok := String(p, 8, 5); ok {
		t.Fatal("out-of-range String accepted")
	}
	if _, ok := String(p, 1<<40, 1); ok {
		t.Fatal("huge offset accepted")
	}
}
