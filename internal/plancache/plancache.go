// Package plancache provides the bounded, sharded LRU cache behind the
// per-document plan-template memo, with single-flight construction.
//
// The old chain memo this package replaces was an unbounded map: under
// production traffic with diverse query shapes it grew without limit, and
// two concurrent misses on one key both built the chain (check-then-build
// race). Here capacity is enforced per shard with LRU eviction, exactly
// like the query-result cache (internal/qcache), and a miss runs its
// builder under a per-key in-flight registration so concurrent misses on
// the same key perform the build exactly once — the waiters block until
// the winner finishes and share its value. Hit, miss, eviction and dedup
// counters are cheap atomics suitable for /stats and /metrics.
package plancache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits counts lookups served from the cache; Misses counts lookups
	// that ran the builder.
	Hits   uint64
	Misses uint64
	// Evictions counts entries displaced by the LRU policy.
	Evictions uint64
	// Dedups counts lookups that found another goroutine already
	// building the same key and waited for its result instead of
	// building again: N concurrent misses on one key score 1 miss and
	// N-1 dedups.
	Dedups uint64
	// Entries is the current size; Capacity the effective maximum (the
	// requested capacity rounded up to whole entries per shard, as in
	// qcache.New).
	Entries  int
	Capacity int
}

// Cache is a bounded sharded LRU mapping string keys to opaque values,
// with single-flight value construction. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache struct {
	shards   []shard
	capacity int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	dedups    atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
	// inflight registers in-progress builds so concurrent misses on one
	// key coalesce onto a single builder.
	inflight map[string]*call
}

type entry struct {
	key string
	val any
}

// call is one in-flight build; waiters block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// defaultShards matches qcache: enough to keep a GOMAXPROCS-wide worker
// pool off one mutex without fragmenting small caches.
const defaultShards = 16

// New returns a cache holding at least capacity entries in total. A
// capacity below 1 is treated as 1. Shard count adapts so every shard
// holds at least one entry; as in qcache, eviction is per shard, so the
// effective capacity is rounded up to a whole number of entries per
// shard (Stats.Capacity reports the effective value).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	shards := defaultShards
	if capacity < shards {
		shards = capacity
	}
	per := (capacity + shards - 1) / shards
	c := &Cache{shards: make([]shard, shards), capacity: per * shards}
	for i := range c.shards {
		c.shards[i] = shard{
			items:    make(map[string]*list.Element),
			order:    list.New(),
			cap:      per,
			inflight: make(map[string]*call),
		}
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to keep shard selection
// allocation-free.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[fnv1a(key)%uint32(len(c.shards))]
}

// Do returns the value cached under key, building it with build on a
// miss. Concurrent Do calls for the same key run build exactly once: the
// first miss becomes the builder, later arrivals wait for its result
// (counted as dedups, not misses). A successful build is inserted into
// the LRU; build errors are returned to every waiter and never cached,
// so the next miss retries.
func (c *Cache) Do(key string, build func() (any, error)) (any, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.order.MoveToFront(el)
		// Read the value inside the critical section (see qcache.Get).
		val := el.Value.(*entry).val
		s.mu.Unlock()
		c.hits.Add(1)
		return val, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		c.dedups.Add(1)
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()
	c.misses.Add(1)

	// The build runs outside the shard lock: chain and plan construction
	// are the expensive operations this cache exists to amortize, and
	// holding the lock would serialize unrelated keys behind them.
	cl.val, cl.err = build()

	s.mu.Lock()
	delete(s.inflight, key)
	evicted := false
	if cl.err == nil {
		if el, ok := s.items[key]; ok {
			// Another goroutine inserted between our unlock and now (only
			// possible via a racing Put-like path; keep the existing entry
			// authoritative so all callers share one value).
			cl.val = el.Value.(*entry).val
			s.order.MoveToFront(el)
		} else {
			if s.order.Len() >= s.cap {
				if back := s.order.Back(); back != nil {
					delete(s.items, back.Value.(*entry).key)
					s.order.Remove(back)
					evicted = true
				}
			}
			s.items[key] = s.order.PushFront(&entry{key: key, val: cl.val})
		}
	}
	s.mu.Unlock()
	close(cl.done)
	if evicted {
		c.evictions.Add(1)
	}
	return cl.val, cl.err
}

// Get returns the value cached under key without building on a miss.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var val any
	if ok {
		s.order.MoveToFront(el)
		val = el.Value.(*entry).val
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return val, true
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge discards every entry. Counters and in-flight builds are
// preserved (a build finishing after a purge inserts its fresh value).
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Dedups:    c.dedups.Load(),
		Entries:   c.Len(),
		Capacity:  c.capacity,
	}
}
