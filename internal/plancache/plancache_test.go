package plancache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDoBuildsOnceAndHits(t *testing.T) {
	c := New(8)
	builds := 0
	build := func() (any, error) { builds++; return "v", nil }
	for i := 0; i < 5; i++ {
		v, err := c.Do("k", build)
		if err != nil {
			t.Fatal(err)
		}
		if v != "v" {
			t.Fatalf("got %v", v)
		}
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 4 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(8)
	calls := 0
	boom := errors.New("boom")
	build := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return 42, nil
	}
	if _, err := c.Do("k", build); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len = %d", c.Len())
	}
	v, err := c.Do("k", build)
	if err != nil || v != 42 {
		t.Fatalf("retry got (%v, %v)", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

// TestSingleflightDedup pins the exact counter semantics the issue asks
// for: N goroutines missing the same key concurrently must observe
// exactly one build, with the dedup counter at N-1. The builder blocks
// until every other goroutine has registered as a waiter, making the
// schedule deterministic.
func TestSingleflightDedup(t *testing.T) {
	const n = 16
	c := New(8)
	builds := 0
	release := make(chan struct{})
	build := func() (any, error) {
		builds++
		// Wait (bounded) for the other n-1 goroutines to attach.
		deadline := time.Now().Add(5 * time.Second)
		for c.Stats().Dedups < n-1 {
			if time.Now().After(deadline) {
				return nil, errors.New("waiters never arrived")
			}
			time.Sleep(time.Millisecond)
		}
		close(release)
		return "built", nil
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.Do("k", build)
		}(i)
	}
	wg.Wait()
	select {
	case <-release:
	default:
		t.Fatal("builder never released")
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || vals[i] != "built" {
			t.Fatalf("goroutine %d got (%v, %v)", i, vals[i], errs[i])
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1", s.Misses)
	}
	if s.Dedups != n-1 {
		t.Fatalf("dedups = %d, want %d", s.Dedups, n-1)
	}
}

// TestBounded holds the memory-leak regression line: far more distinct
// keys than capacity must leave the entry count at the capacity bound,
// with the overflow visible as evictions.
func TestBounded(t *testing.T) {
	const capacity, keys = 64, 10000
	c := New(capacity)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, err := c.Do(k, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries > s.Capacity {
		t.Fatalf("entries %d exceed capacity %d", s.Entries, s.Capacity)
	}
	if s.Capacity < capacity || s.Capacity >= 2*capacity {
		t.Fatalf("effective capacity %d not near requested %d", s.Capacity, capacity)
	}
	if want := uint64(keys) - uint64(s.Entries); s.Evictions != want {
		t.Fatalf("evictions = %d, want %d", s.Evictions, want)
	}
}

func TestLRUOrder(t *testing.T) {
	// One shard (capacity 1 rounds to a single 1-entry shard... use a
	// single-shard cache of 2 via New(2) only if both keys land in the
	// same shard; instead drive the policy through a capacity-1 cache).
	c := New(1)
	c.Do("a", func() (any, error) { return 1, nil }) //nolint:errcheck
	c.Do("b", func() (any, error) { return 2, nil }) //nolint:errcheck
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by b")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("b missing: (%v, %v)", v, ok)
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	c.Do("a", func() (any, error) { return 1, nil }) //nolint:errcheck
	c.Do("b", func() (any, error) { return 2, nil }) //nolint:errcheck
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len = %d after purge", c.Len())
	}
	// Counters survive the purge.
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("misses = %d, want 2", s.Misses)
	}
	builds := 0
	c.Do("a", func() (any, error) { builds++; return 1, nil }) //nolint:errcheck
	if builds != 1 {
		t.Fatal("purged entry not rebuilt")
	}
}

func TestCapacityRounding(t *testing.T) {
	c := New(100) // 16 shards * ceil(100/16)=7 -> 112
	if got := c.Stats().Capacity; got != 112 {
		t.Fatalf("effective capacity = %d, want 112", got)
	}
	if got := New(0).Stats().Capacity; got != 1 {
		t.Fatalf("capacity(0) = %d, want 1", got)
	}
}

// TestConcurrentMixed hammers the cache from many goroutines over an
// overlapping key space; run under -race this exercises the
// hit/miss/dedup/evict interleavings.
func TestConcurrentMixed(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*7+i)%100)
				v, err := c.Do(k, func() (any, error) { return k, nil })
				if err != nil || v != k {
					t.Errorf("Do(%s) = (%v, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Stats().Capacity {
		t.Fatalf("len %d exceeds capacity", c.Len())
	}
}
