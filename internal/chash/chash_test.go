package chash

import (
	"fmt"
	"testing"
)

func docNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("doc-%04d.xml", i)
	}
	return names
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("New(nil) accepted an empty shard list")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Error("New accepted an empty shard name")
	}
	if _, err := New([]string{"a", "a"}, 0); err == nil {
		t.Error("New accepted duplicate shard names")
	}
}

func TestOwnershipIsStableAndOrderIndependent(t *testing.T) {
	r1, err := New([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Placement keys on the shard name, so a reordered shard list must
	// not move a single document.
	r2, err := New([]string{"s3", "s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docNames(2000) {
		if r1.Owner(doc) != r2.Owner(doc) {
			t.Fatalf("doc %s: owner %s with one shard order, %s with another", doc, r1.Owner(doc), r2.Owner(doc))
		}
		if got := r1.Shards()[r1.OwnerIndex(doc)]; got != r1.Owner(doc) {
			t.Fatalf("OwnerIndex and Owner disagree for %s", doc)
		}
	}
}

func TestDistributionRoughlyBalanced(t *testing.T) {
	shards := []string{"s1", "s2", "s3", "s4"}
	r, err := New(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	docs := docNames(8000)
	for _, doc := range docs {
		counts[r.Owner(doc)]++
	}
	want := len(docs) / len(shards)
	for _, s := range shards {
		// With 128 virtual nodes the per-shard load should be within a
		// factor of two of fair share — a loose bound that still catches
		// a broken hash or an unsorted ring.
		if counts[s] < want/2 || counts[s] > want*2 {
			t.Errorf("shard %s owns %d of %d docs (fair share %d): distribution badly skewed %v",
				s, counts[s], len(docs), want, counts)
		}
	}
}

// The property that makes consistent hashing worth its name: growing the
// fleet from N to N+1 shards moves only the documents claimed by the new
// shard — roughly 1/(N+1) of the corpus — and every moved document moves
// TO the new shard. Nothing is shuffled between surviving shards.
func TestRebalanceMovesAtMostOneNth(t *testing.T) {
	docs := docNames(9000)
	before, err := New([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New([]string{"s1", "s2", "s3", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, doc := range docs {
		ob, oa := before.Owner(doc), after.Owner(doc)
		if ob == oa {
			continue
		}
		if oa != "s4" {
			t.Fatalf("doc %s moved %s -> %s: rebalance moved a doc between surviving shards", doc, ob, oa)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("adding a shard moved no documents: new shard would stay empty")
	}
	// Expected moves: len(docs)/4. Allow 2x slack for hash variance; the
	// disastrous alternative (modulo hashing) would move ~3/4 of them.
	limit := 2 * len(docs) / 4
	if moved > limit {
		t.Errorf("adding one shard to 3 moved %d of %d docs, want <= %d (~1/N)", moved, len(docs), limit)
	}
}

func TestRemovalOnlyOrphansTheRemovedShard(t *testing.T) {
	docs := docNames(5000)
	before, err := New([]string{"s1", "s2", "s3", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New([]string{"s1", "s2", "s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		ob, oa := before.Owner(doc), after.Owner(doc)
		if ob != "s3" && ob != oa {
			t.Fatalf("doc %s moved %s -> %s though its shard survived", doc, ob, oa)
		}
		if ob == "s3" && oa == "s3" {
			t.Fatalf("doc %s still owned by removed shard", doc)
		}
	}
}
