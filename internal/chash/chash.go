// Package chash implements the consistent-hash ring flexrouter uses to
// place documents on shards. Each shard is projected onto the ring at a
// fixed number of pseudo-random points (virtual nodes); a document is
// owned by the first shard point at or clockwise after the document's own
// hash. The property that matters operationally: adding one shard to an
// N+1-shard ring reassigns only the documents that land on the new
// shard's arcs — about 1/(N+1) of the corpus — and every reassigned
// document moves *to* the new shard, never between existing ones, so a
// scale-out only fills the new shard instead of reshuffling the fleet.
package chash

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per shard. 128 points keeps
// the expected per-shard load imbalance within a few percent for small
// fleets while the ring stays tiny (N*128 uint64s).
const DefaultReplicas = 128

type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring over a list of shard names.
type Ring struct {
	shards []string
	points []point
}

// New builds a ring over shards with replicas virtual nodes per shard
// (<= 0 picks DefaultReplicas). Shard names must be non-empty and unique:
// the name, not the slice position, determines placement, so a reordered
// shard list yields identical ownership.
func New(shards []string, replicas int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("chash: no shards")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(shards))
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]point, 0, len(shards)*replicas),
	}
	for i, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("chash: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("chash: duplicate shard %q", s)
		}
		seen[s] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", s, v)), shard: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual nodes is vanishingly rare
		// but must still order deterministically across processes.
		return r.shards[r.points[i].shard] < r.shards[r.points[j].shard]
	})
	return r, nil
}

// Shards returns the shard names in construction order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// OwnerIndex returns the index (into the construction order) of the shard
// owning key.
func (r *Ring) OwnerIndex(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].shard
}

// Owner returns the name of the shard owning key.
func (r *Ring) Owner(key string) string { return r.shards[r.OwnerIndex(key)] }

// hash64 is FNV-1a; placement only needs a stable, well-mixed hash, and
// fnv is in the standard library and allocation-free via resetting.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	return h.Sum64()
}
