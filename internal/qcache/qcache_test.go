package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Errorf("overwrite lost: %v", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// A single shard makes the global LRU order exact.
	c := newWithShards(3, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // refresh a: b is now least recently used
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(32)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > 32 {
		t.Errorf("Len = %d exceeds capacity 32", n)
	}
	if ev := c.Stats().Evictions; ev == 0 {
		t.Error("no evictions recorded despite overflow")
	}
}

// TestStatsCapacityEffective pins the capacity contract: the per-shard
// LRU rounds the requested capacity up to a whole number of entries per
// shard, Stats.Capacity reports that effective value, and the cache
// never holds more than it.
func TestStatsCapacityEffective(t *testing.T) {
	for _, req := range []int{1, 7, 16, 17, 32, 100, 1000} {
		c := New(req)
		eff := c.Stats().Capacity
		if eff < req || eff >= req+defaultShards {
			t.Errorf("New(%d): effective capacity %d outside [%d, %d)",
				req, eff, req, req+defaultShards)
		}
		for i := 0; i < 4*req+64; i++ {
			c.Put(fmt.Sprintf("k%d", i), i)
		}
		if n := c.Len(); n > eff {
			t.Errorf("New(%d): Len %d exceeds reported capacity %d", req, n, eff)
		}
	}
}

func TestTinyCapacity(t *testing.T) {
	c := New(0) // clamped to 1
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived purge")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%100)
				if v, ok := c.Get(key); ok {
					if v.(int) != i%100 {
						t.Errorf("key %s holds %v", key, v)
						return
					}
				}
				c.Put(key, i%100)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses: %+v", st)
	}
}

// TestSameKeyGetPutRace hammers one key with concurrent Get and Put.
// Regression: Get used to read entry.val after releasing the shard
// mutex, racing with a same-key Put rewriting it under the lock — the
// race detector flagged exactly this interleaving.
func TestSameKeyGetPutRace(t *testing.T) {
	c := New(8)
	c.Put("hot", 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Put("hot", g*10000+i)
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v, ok := c.Get("hot")
				if !ok {
					t.Error("hot key missing")
					return
				}
				if _, isInt := v.(int); !isInt {
					t.Errorf("hot key holds %T", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}
