// Package qcache provides a sharded LRU cache for query results.
//
// The serving layer evaluates the same (query, algorithm, scheme, K)
// combinations over and over — exactly the repeated-query workload that
// compressed/indexed XPath engines treat as first-class. A cache entry
// maps a normalized search key to the finished top-K result set; the
// cache is sharded so concurrent request handlers contend on independent
// locks, and each shard maintains its own LRU order. Hit, miss and
// eviction counters are cheap atomics suitable for a /stats endpoint.
package qcache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	// Capacity is the cache's effective capacity: the constructor's
	// requested capacity rounded up to a whole number of entries per
	// shard (see New).
	Capacity int
}

// Cache is a sharded LRU cache mapping string keys to opaque values. The
// zero value is not usable; construct with New. All methods are safe for
// concurrent use.
type Cache struct {
	shards   []shard
	capacity int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
}

type entry struct {
	key string
	val any
}

// defaultShards balances lock contention against per-shard LRU quality;
// 16 shards keep a GOMAXPROCS-wide worker pool from serializing on one
// mutex without fragmenting small caches.
const defaultShards = 16

// New returns a cache holding at least capacity entries in total. A
// capacity below 1 is treated as 1. Shard count adapts so every shard
// holds at least one entry.
//
// Capacity policy: eviction is per shard (each shard runs its own LRU
// over ceil(capacity/shards) entries), so the effective total capacity
// is rounded up to a whole number of entries per shard — at most
// shards-1 above the requested value. Stats.Capacity reports this
// effective capacity. The trade-off is deliberate: a global LRU bound
// would reintroduce the cross-shard lock the sharding exists to avoid,
// and a hash-skewed shard can evict while the cache as a whole is below
// the bound — the bound is per shard, not global.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	shards := defaultShards
	if capacity < shards {
		shards = capacity
	}
	return newWithShards(capacity, shards)
}

func newWithShards(capacity, shards int) *Cache {
	per := (capacity + shards - 1) / shards
	// Report what the cache will actually hold: per-shard LRU bounds
	// admit per*shards entries in total.
	c := &Cache{shards: make([]shard, shards), capacity: per * shards}
	for i := range c.shards {
		c.shards[i] = shard{
			items: make(map[string]*list.Element),
			order: list.New(),
			cap:   per,
		}
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to keep shard selection
// allocation-free.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[fnv1a(key)%uint32(len(c.shards))]
}

// Get returns the value cached under key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var val any
	if ok {
		s.order.MoveToFront(el)
		// Read the value inside the critical section: Put on an existing
		// key rewrites entry.val under the lock, so reading it after
		// Unlock races with a concurrent same-key Put.
		val = el.Value.(*entry).val
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, evicting the shard's least recently used
// entry when the shard is full. Storing an existing key refreshes its
// value and recency.
func (c *Cache) Put(key string, val any) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	evicted := false
	if s.order.Len() >= s.cap {
		back := s.order.Back()
		if back != nil {
			delete(s.items, back.Value.(*entry).key)
			s.order.Remove(back)
			evicted = true
		}
	}
	s.items[key] = s.order.PushFront(&entry{key: key, val: val})
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge discards every entry. Counters are preserved.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.capacity,
	}
}
