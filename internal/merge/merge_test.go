package merge

import (
	"math/rand"
	"reflect"
	"testing"

	"flexpath/internal/rank"
)

type item struct {
	Key
	tag string // identifies the source list an item came from
}

func k(ss, ks float64, doc string, ord int) Key {
	return Key{Score: rank.Score{SS: ss, KS: ks}, Doc: doc, Ord: ord}
}

func TestLessOrdersByScoreThenDocThenOrd(t *testing.T) {
	cases := []struct {
		name   string
		a, b   Key
		scheme rank.Scheme
		want   bool
	}{
		{"higher ss first", k(0.9, 0, "b", 5), k(0.8, 1, "a", 1), rank.StructureFirst, true},
		{"ks breaks ss tie", k(0.9, 0.5, "z", 9), k(0.9, 0.4, "a", 1), rank.StructureFirst, true},
		{"keyword-first flips", k(0.9, 0.4, "a", 1), k(0.8, 0.5, "z", 9), rank.KeywordFirst, false},
		{"combined sums", k(0.5, 0.5, "z", 9), k(0.9, 0.0, "a", 1), rank.Combined, true},
		{"doc breaks score tie", k(0.9, 0.4, "a", 9), k(0.9, 0.4, "b", 1), rank.StructureFirst, true},
		{"ord breaks full tie", k(0.9, 0.4, "a", 1), k(0.9, 0.4, "a", 2), rank.StructureFirst, true},
		{"equal keys not less", k(0.9, 0.4, "a", 1), k(0.9, 0.4, "a", 1), rank.StructureFirst, false},
	}
	for _, tc := range cases {
		if got := Less(tc.a, tc.b, tc.scheme); got != tc.want {
			t.Errorf("%s: Less(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
		// Antisymmetry on strict orderings: a<b implies !(b<a).
		if Less(tc.a, tc.b, tc.scheme) && Less(tc.b, tc.a, tc.scheme) {
			t.Errorf("%s: Less is not antisymmetric", tc.name)
		}
	}
}

// Regression for the distributed-merge invariant: when two answers from
// documents on different shards tie exactly on score, the merged order
// must be decided by document name alone — identically however the
// per-shard lists are interleaved before the sort. A comparator that fell
// back on input position (or omitted the doc tie-break) would make router
// output depend on which shard responded first.
func TestSortStableAcrossShardBoundariesOnScoreTies(t *testing.T) {
	// Shard 1 holds docs a and c, shard 2 holds b and d; every answer
	// ties at the same score.
	shard1 := []item{
		{k(0.7, 0.3, "a.xml", 0), "s1"},
		{k(0.7, 0.3, "a.xml", 1), "s1"},
		{k(0.7, 0.3, "c.xml", 0), "s1"},
	}
	shard2 := []item{
		{k(0.7, 0.3, "b.xml", 0), "s2"},
		{k(0.7, 0.3, "d.xml", 0), "s2"},
		{k(0.7, 0.3, "d.xml", 1), "s2"},
	}
	wantDocs := []string{"a.xml", "a.xml", "b.xml", "c.xml", "d.xml", "d.xml"}

	for _, order := range [][][]item{{shard1, shard2}, {shard2, shard1}} {
		var all []item
		for _, s := range order {
			all = append(all, s...)
		}
		Sort(all, func(it item) Key { return it.Key }, rank.StructureFirst)
		for i, it := range all {
			if it.Doc != wantDocs[i] {
				t.Fatalf("rank %d: doc %q, want %q (full order %v)", i, it.Doc, wantDocs[i], all)
			}
		}
		// Within one document the per-shard node order survives.
		for i := 1; i < len(all); i++ {
			if all[i].Doc == all[i-1].Doc && all[i].Ord < all[i-1].Ord {
				t.Fatalf("intra-document order broken at rank %d: %v", i, all)
			}
		}
	}
}

// The merged order must not depend on which order the source lists are
// concatenated, even for random score mixes with frequent ties
// (determinism under arbitrary shard response arrival order).
func TestSortDeterministicUnderSourceReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := []string{"a", "b", "c"}
	lists := make(map[string][]item)
	for _, doc := range docs {
		var answers []item
		for ord := 0; ord < 10; ord++ {
			// Coarse scores force frequent cross-document ties.
			ss := float64(rng.Intn(3)) / 2
			ks := float64(rng.Intn(3)) / 2
			answers = append(answers, item{k(ss, ks, doc, ord), doc})
		}
		// Each source list arrives pre-sorted by its own ranking, as a
		// shard response or per-document result would.
		Sort(answers, func(it item) Key { return it.Key }, rank.Combined)
		lists[doc] = answers
	}
	var want []item
	for _, perm := range [][]string{
		{"a", "b", "c"}, {"a", "c", "b"}, {"b", "a", "c"},
		{"b", "c", "a"}, {"c", "a", "b"}, {"c", "b", "a"},
	} {
		var all []item
		for _, doc := range perm {
			all = append(all, lists[doc]...)
		}
		Sort(all, func(it item) Key { return it.Key }, rank.Combined)
		if want == nil {
			want = all
			continue
		}
		if !reflect.DeepEqual(all, want) {
			t.Fatalf("concatenation order %v changed the merge\n got %v\nwant %v", perm, all, want)
		}
	}
}

func TestPage(t *testing.T) {
	mk := func(n int) []int {
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		return s
	}
	cases := []struct {
		n, k, offset int
		want         []int
	}{
		{10, 3, 0, []int{0, 1, 2}},
		{10, 3, 4, []int{4, 5, 6}},
		{10, 5, 8, []int{8, 9}},
		{10, 5, 10, nil},
		{10, 5, 99, nil},
		{10, 0, 2, []int{}},
		{10, -1, 0, []int{}},
		{3, 100, 0, []int{0, 1, 2}},
	}
	for _, tc := range cases {
		got := Page(mk(tc.n), tc.k, tc.offset)
		if len(got) != len(tc.want) {
			t.Errorf("Page(n=%d, k=%d, o=%d) = %v, want %v", tc.n, tc.k, tc.offset, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Page(n=%d, k=%d, o=%d) = %v, want %v", tc.n, tc.k, tc.offset, got, tc.want)
				break
			}
		}
	}
	// The paging identity the router relies on: page(o,k) equals the
	// window [o:o+k] of the unpaged ranking.
	full := mk(50)
	for _, tc := range []struct{ o, k int }{{0, 5}, {3, 7}, {45, 10}, {20, 1}} {
		got := Page(mk(50), tc.k, tc.o)
		end := tc.o + tc.k
		if end > len(full) {
			end = len(full)
		}
		want := full[min(tc.o, len(full)):end]
		if len(got) != len(want) {
			t.Errorf("paging identity broken at o=%d k=%d: %v vs %v", tc.o, tc.k, got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
