// Package merge holds the one global ranking comparator shared by every
// layer that combines per-document FleXPath rankings into one result list:
// Collection.Search (merging member documents inside one process) and
// flexrouter (merging shard responses over the network). Keeping the
// comparator in a single package is what makes the distributed invariant
// checkable at all — a router merge is byte-identical to a single-node
// merge over the same corpus precisely because both call Sort with the
// same Key ordering.
//
// The order is: score under the ranking scheme (higher first), then
// document name (ascending), then Ord (ascending). Ord is the answer's
// position within its own document's ranking — a node identifier inside
// the library, a response index at the router; the two coincide on ties
// because document names are unique across shards and each per-document
// ranking already breaks score ties by node order.
package merge

import (
	"sort"

	"flexpath/internal/rank"
)

// Key identifies an answer's position in the global ranking.
type Key struct {
	// Score is the answer's (structural, keyword) score pair, compared
	// under the active ranking scheme.
	Score rank.Score
	// Doc is the name the answer's document was added under. Names are
	// unique within a corpus (and, under consistent-hash placement,
	// across shards), so the name is a total tie-break between answers
	// of different documents.
	Doc string
	// Ord orders answers that tie on both score and document: any value
	// monotone in the document-local rank (node order) works, because
	// such ties always come from a single already-sorted source list.
	Ord int
}

// Less reports whether a ranks strictly before b under scheme.
func Less(a, b Key, scheme rank.Scheme) bool {
	if c := a.Score.Compare(b.Score, scheme); c != 0 {
		return c > 0
	}
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.Ord < b.Ord
}

// Sort stably sorts items into global ranking order by their keys.
// Stability matters: callers may present keys whose Ord only orders
// answers within one source list, and a stable sort preserves each
// source's internal order on full-key ties.
func Sort[T any](items []T, key func(T) Key, scheme rank.Scheme) {
	sort.SliceStable(items, func(i, j int) bool {
		return Less(key(items[i]), key(items[j]), scheme)
	})
}

// Page applies pagination to a sorted ranking: skip the first offset
// answers, then truncate to k. The offset must be applied exactly once,
// after the final merge — never per source — or globally-skipped answers
// are dropped from each source independently (the PR-4 pagination bug).
// Negative offset and k are treated as zero.
func Page[T any](items []T, k, offset int) []T {
	if offset > 0 {
		if offset >= len(items) {
			items = nil
		} else {
			items = items[offset:]
		}
	}
	if k < 0 {
		k = 0
	}
	if len(items) > k {
		items = items[:k]
	}
	return items
}
