//go:build unix

package mmapio

import (
	"os"
	"syscall"
)

// open maps size bytes of f read-only. The mapping is MAP_SHARED, so the
// pages are the page cache's own: no second copy exists, and clean pages
// can be evicted and re-read from the file under memory pressure.
func open(f *os.File, size int) (*Mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems (or exotic mounts) refuse mmap; serving still
		// works from a heap copy, just without page-cache residency.
		return openFallback(f, size)
	}
	return &Mapping{data: data, mapped: true}, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }
