//go:build !unix

package mmapio

import "os"

func open(f *os.File, size int) (*Mapping, error) { return openFallback(f, size) }

// unmap is never reached on platforms without mmap (Mapped() is always
// false), but the symbol must exist for Close.
func unmap([]byte) error { return nil }
