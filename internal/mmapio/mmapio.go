// Package mmapio memory-maps snapshot files for zero-copy serving. On
// platforms with mmap (any unix), Open maps the file read-only and
// shared, so the bytes live in the kernel page cache: clean pages are
// reclaimable under memory pressure and re-faulted from disk on the next
// access, which is what lets a collection of mapped snapshots exceed RAM.
// Elsewhere Open falls back to reading the whole file into the heap; the
// API is identical, only the residency economics differ.
//
// A Mapping's bytes may be aliased by long-lived structures (interned
// strings, posting arrays), so Close must only be called once no such
// alias can be dereferenced again. The serving layer therefore keeps
// mappings open for the lifetime of the collection member, even across
// residency evictions — eviction drops decoded heap structures, never
// the mapping itself.
package mmapio

import (
	"fmt"
	"os"
)

// Mapping is a read-only view of a file's bytes.
type Mapping struct {
	data   []byte
	mapped bool // true when data is an mmap region, false for heap copies
}

// Open maps (or, without mmap support, reads) the file at path.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapio: %s: file too large to map (%d bytes)", path, size)
	}
	return open(f, int(size))
}

// Bytes returns the mapped bytes. The slice must be treated as read-only:
// the mapping is shared, and writing to it faults.
func (m *Mapping) Bytes() []byte { return m.data }

// Len returns the mapped length.
func (m *Mapping) Len() int { return len(m.data) }

// Mapped reports whether the bytes are an mmap region (true) or a heap
// copy (false, the read-file fallback).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping. After Close no alias into Bytes may be
// dereferenced. Close is idempotent.
func (m *Mapping) Close() error {
	if m.data == nil {
		return nil
	}
	data, mapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if !mapped {
		return nil
	}
	return unmap(data)
}
