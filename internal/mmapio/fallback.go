package mmapio

import (
	"io"
	"os"
)

// openFallback reads the file into the heap — the portable path, and the
// escape hatch when a filesystem refuses mmap.
func openFallback(f *os.File, size int) (*Mapping, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return &Mapping{data: data}, nil
}
