package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: bucket i counts observations with
// d <= 2^(histMinShift+i) nanoseconds; the final bucket is the +Inf
// overflow. The first finite bound is ~1µs (2^10 ns) and the last
// ~137s (2^37 ns) — wide enough for everything from a cache hit to a
// pathological relaxation chain, in 28 fixed buckets so a histogram is
// a flat array of atomics with no allocation on the observe path.
const (
	histMinShift = 10
	histBuckets  = 28
)

// Histogram is a bounded log2-bucket latency histogram. Observations
// are lock-free atomic increments; snapshots and quantiles read the
// counters without stopping writers (a snapshot is weakly consistent,
// which is fine for monitoring). The zero value is not usable;
// construct with NewHistogram.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf returns the index of the smallest bucket whose upper bound
// admits d.
func bucketOf(d time.Duration) int {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	if ns <= 1<<histMinShift {
		return 0
	}
	// ceil(log2(ns)) - histMinShift: Len(ns-1) is the exponent of the
	// smallest power of two >= ns.
	i := bits.Len64(ns-1) - histMinShift
	if i > histBuckets {
		i = histBuckets // +Inf overflow bucket
	}
	return i
}

// BucketBound returns the upper bound of bucket i in nanoseconds; the
// overflow bucket reports a negative bound (render as +Inf).
func BucketBound(i int) int64 {
	if i >= histBuckets {
		return -1
	}
	return 1 << (histMinShift + i)
}

// NumBuckets returns the number of buckets including the overflow.
func NumBuckets() int { return histBuckets + 1 }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	if d > 0 {
		h.sum.Add(int64(d))
	}
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
type HistogramSnapshot struct {
	// Counts holds per-bucket (non-cumulative) observation counts; the
	// last entry is the +Inf overflow bucket.
	Counts [histBuckets + 1]uint64
	// Sum is the total observed time; Count the number of observations.
	Sum   time.Duration
	Count uint64
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Count = h.count.Load()
	return s
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations: the upper bound of the bucket in which the
// quantile falls (so the true quantile is within one power of two).
// It returns 0 when the histogram is empty; a quantile landing in the
// overflow bucket reports the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if b := BucketBound(i); b >= 0 {
				return time.Duration(b)
			}
			return time.Duration(BucketBound(histBuckets - 1))
		}
	}
	return time.Duration(BucketBound(histBuckets - 1))
}

// Mean returns the mean observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
