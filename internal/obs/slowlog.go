package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowEntry is one logged query with its per-stage time breakdown.
type SlowEntry struct {
	Time        time.Time
	Query       string
	Algo        string
	Scheme      string
	Status      string
	K           int
	Relaxations int
	CacheHit    bool
	Total       time.Duration
	Stages      [NumStages]time.Duration
}

// SlowLog is a fixed-capacity ring buffer of the most recent queries
// whose total latency met a threshold. The ring bounds memory under
// sustained slow traffic; Top ranks the retained window by latency, so
// "the N slowest recent queries" is one mutex-guarded copy.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	entries   []SlowEntry // ring storage, len == written capacity
	next      int         // ring write cursor
	capacity  int
	dropped   uint64 // fast queries below the threshold (not logged)
}

// NewSlowLog returns a slow-query log keeping the capacity most recent
// entries at least threshold long. Capacity below 1 is treated as 1; a
// zero threshold logs every finished query.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{capacity: capacity, threshold: threshold}
}

// Threshold returns the minimum latency for a query to be logged.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Add logs one finished query, displacing the oldest retained entry
// once the ring is full. Queries faster than the threshold are counted
// but not stored.
func (l *SlowLog) Add(e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Total < l.threshold {
		l.dropped++
		return
	}
	if len(l.entries) < l.capacity {
		l.entries = append(l.entries, e)
		l.next = len(l.entries) % l.capacity
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.capacity
}

// Top returns up to n retained entries, slowest first (ties broken by
// recency, newest first). n <= 0 returns the whole retained window.
func (l *SlowLog) Top(n int) []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]SlowEntry(nil), l.entries...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Time.After(out[j].Time)
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Len returns the number of retained entries.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
