package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// The whole layer must be inert when disabled: nil registry, nil
	// span, nil slowlog.
	var r *Registry
	sp := r.StartSpan("//a", "Hybrid", "StructureFirst", 10)
	if sp != nil {
		t.Fatalf("nil registry produced a span")
	}
	sp.Rec(StageJoin, time.Millisecond)
	sp.SetRelaxations(3)
	sp.MarkCacheHit()
	sp.Finish("ok")
	if r.InFlight() != 0 || r.QueryCounts() != nil || r.SlowLog().Len() != 0 {
		t.Fatal("nil registry not inert")
	}
	if got := SpanFrom(nil); got != nil {
		t.Fatalf("SpanFrom(nil) = %v", got)
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatalf("SpanFrom(empty ctx) = %v", got)
	}
}

func TestSpanRoundTrip(t *testing.T) {
	r := NewRegistry(8, 0)
	sp := r.StartSpan(`//item[./a]`, "DPO", "Combined", 50)
	if r.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", r.InFlight())
	}
	ctx := WithSpan(context.Background(), sp)
	if SpanFrom(ctx) != sp {
		t.Fatal("span not carried by context")
	}
	sp.Rec(StageChain, 2*time.Millisecond)
	sp.Rec(StageJoin, 5*time.Millisecond)
	sp.Rec(StageJoin, 3*time.Millisecond) // accumulates
	sp.SetRelaxations(2)
	sp.SetRelaxations(1) // keeps the deeper level
	sp.Finish("ok")

	if r.InFlight() != 0 {
		t.Errorf("in-flight after finish = %d", r.InFlight())
	}
	counts := r.QueryCounts()
	if len(counts) != 1 || counts[0] != (QueryCount{Algo: "DPO", Scheme: "Combined", Status: "ok", Count: 1}) {
		t.Errorf("query counts = %+v", counts)
	}
	top := r.SlowLog().Top(10)
	if len(top) != 1 {
		t.Fatalf("slowlog entries = %d, want 1", len(top))
	}
	e := top[0]
	if e.Relaxations != 2 || e.K != 50 || e.Algo != "DPO" {
		t.Errorf("slow entry = %+v", e)
	}
	if e.Stages[StageJoin] != 8*time.Millisecond || e.Stages[StageChain] != 2*time.Millisecond {
		t.Errorf("stage times = %v", e.Stages)
	}
	algos, hists := r.LatencyByAlgo()
	if len(algos) != 1 || algos[0] != "DPO" || hists[0].Count != 1 {
		t.Errorf("latency by algo = %v %v", algos, hists)
	}
}

func TestSpanConcurrentRec(t *testing.T) {
	r := NewRegistry(8, 0)
	sp := r.StartSpan("q", "Hybrid", "StructureFirst", 10)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp.Rec(StageJoin, time.Microsecond)
				sp.SetRelaxations(j % 5)
			}
		}()
	}
	wg.Wait()
	sp.Finish("ok")
	e := r.SlowLog().Top(1)[0]
	if e.Stages[StageJoin] != 800*time.Microsecond {
		t.Errorf("join time = %v, want 800µs", e.Stages[StageJoin])
	}
	if e.Relaxations != 4 {
		t.Errorf("relaxations = %d, want 4", e.Relaxations)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations at 1ms, 10 at 100ms: p50 must bound 1ms from
	// above within a power of two, p99 must reach the 100ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count = %d", s.Count)
	}
	p50 := s.Quantile(0.50)
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want in [1ms, 2ms]", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 100*time.Millisecond || p99 > 200*time.Millisecond {
		t.Errorf("p99 = %v, want in [100ms, 200ms]", p99)
	}
	if m := s.Mean(); m < 9*time.Millisecond || m > 11*time.Millisecond {
		t.Errorf("mean = %v, want ~10ms", m)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram()
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped, must not panic or corrupt
	h.Observe(time.Hour)    // overflow bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Counts[histBuckets] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Counts[histBuckets])
	}
	// A quantile landing in the overflow reports the largest finite bound.
	if q := s.Quantile(1); q != time.Duration(BucketBound(histBuckets-1)) {
		t.Errorf("overflow quantile = %v", q)
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for d := time.Duration(1); d < 10*time.Minute; d *= 3 {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %v", d)
		}
		if bound := BucketBound(b); bound >= 0 && int64(d) > bound {
			t.Fatalf("d=%v above its bucket bound %d", d, bound)
		}
		prev = b
	}
}

func TestSlowLogRingAndThreshold(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	l.Add(SlowEntry{Query: "fast", Total: time.Millisecond})
	if l.Len() != 0 {
		t.Fatalf("fast query retained")
	}
	for i, d := range []time.Duration{20, 40, 30, 50} {
		l.Add(SlowEntry{Query: string(rune('a' + i)), Total: d * time.Millisecond})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3 (ring capacity)", l.Len())
	}
	top := l.Top(2)
	if len(top) != 2 || top[0].Total != 50*time.Millisecond || top[1].Total != 40*time.Millisecond {
		t.Errorf("top = %+v", top)
	}
	// The oldest entry (20ms, "a") was displaced by the ring.
	for _, e := range l.Top(0) {
		if e.Query == "a" {
			t.Error("oldest entry not displaced")
		}
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry(8, 0)
	for _, algo := range []string{"Hybrid", "DPO"} {
		sp := r.StartSpan(`//a[.contains("x")]`, algo, "StructureFirst", 10)
		sp.Rec(StageJoin, 3*time.Millisecond)
		sp.Finish("ok")
	}
	sp := r.StartSpan("//b", "Hybrid", "KeywordFirst", 5)
	sp.Finish("timeout")

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`flexpath_queries_total{algo="Hybrid",scheme="StructureFirst",status="ok"} 1`,
		`flexpath_queries_total{algo="Hybrid",scheme="KeywordFirst",status="timeout"} 1`,
		"flexpath_inflight_queries 0",
		`flexpath_query_duration_seconds_count{algo="DPO"} 1`,
		`flexpath_stage_duration_seconds_bucket{stage="join",le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []string{
		"flexpath_x 1\n",                           // no TYPE
		"# TYPE m counter\nm{a=b} 1\n",             // unquoted label
		"# TYPE m counter\nm notanumber\n",         // bad value
		"# TYPE m wat\nm 1\n",                      // bad type
		"# TYPE m counter\nm{a=\"unterminated 1\n", // unterminated labels
		"# TYPE m counter\n{nometric=\"v\"} 1\n",   // missing name
		"",                                         // empty
	}
	for _, b := range bad {
		if err := ValidateExposition([]byte(b)); err == nil {
			t.Errorf("accepted invalid exposition %q", b)
		}
	}
	good := "# HELP m help text\n# TYPE m histogram\n" +
		"m_bucket{le=\"+Inf\"} 3\nm_sum 0.5\nm_count 3\nm{quantile=\"0.5\"} 1 1712000000\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	want := []string{"parse", "chain", "join", "merge", "cache", "plan"}
	if len(names) != len(want) {
		t.Fatalf("stage names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("stage %d = %q, want %q", i, names[i], want[i])
		}
	}
}
