// Package obs is the stdlib-only observability layer of the serving
// stack: atomic counters, bounded log2-bucket latency histograms with
// quantile extraction, a ring-buffer slow-query log, and a lightweight
// per-query Span that accumulates per-stage timings as a search moves
// through parsing, chain building, join execution, merging and cache
// lookups.
//
// The design constraint is that instrumentation must cost ~nothing when
// disabled: the library layers obtain a *Span from the request context
// and every Span method is nil-safe, so an uninstrumented search pays one
// context lookup and a handful of nil checks. When a Registry is active,
// per-stage accounting is a time.Now pair and an atomic add per stage —
// cheap enough that flexbench's overhead figure bounds the slowdown on
// the paper's query workload below 5%.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of query evaluation. Per-stage latency is
// the accounting the compressed-XPath line of work (Arroyuelo et al.)
// shows an XML IR engine needs: knowing *where* evaluation time goes,
// not just that a query was slow.
type Stage int

const (
	// StageParse covers query text parsing (handler-side).
	StageParse Stage = iota
	// StageChain covers relaxation-chain construction (cached per query
	// shape, so it is hot only for novel queries).
	StageChain
	// StageJoin covers scored join-plan execution / DPO's per-level
	// evaluations — the paper's §6 dominant cost.
	StageJoin
	// StageMerge covers cross-document ranking merges in collections.
	StageMerge
	// StageCache covers query-result cache lookups.
	StageCache
	// StagePlan covers the cost-based algorithm choice of Auto searches.
	StagePlan
	// NumStages is the number of stages.
	NumStages int = iota
)

// String returns the stage's label as used in metrics and the slowlog.
func (s Stage) String() string {
	switch s {
	case StageParse:
		return "parse"
	case StageChain:
		return "chain"
	case StageJoin:
		return "join"
	case StageMerge:
		return "merge"
	case StageCache:
		return "cache"
	case StagePlan:
		return "plan"
	}
	return "unknown"
}

// Span accumulates the observable facts of one query evaluation. Stage
// recordings are atomic: a collection search fans per-document work out
// over a worker pool and every worker records into the same span, so
// stage times are sums of per-document work (they can exceed wall time
// under parallelism). All methods are safe on a nil receiver.
type Span struct {
	query  string
	algo   string
	scheme string
	k      int

	start    time.Time
	reg      *Registry
	stages   [NumStages]atomic.Int64 // nanoseconds
	relax    atomic.Int64            // deepest relaxation level reached
	cacheHit atomic.Bool
}

// Rec adds d to the span's accumulated time for stage s.
func (sp *Span) Rec(s Stage, d time.Duration) {
	if sp == nil {
		return
	}
	sp.stages[s].Add(int64(d))
}

// SetRelaxations records the relaxation level a search reached, keeping
// the deepest level across a collection's member documents.
func (sp *Span) SetRelaxations(n int) {
	if sp == nil || n <= 0 {
		return
	}
	for {
		cur := sp.relax.Load()
		if int64(n) <= cur || sp.relax.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// MarkCacheHit records that a query-result cache served this search.
func (sp *Span) MarkCacheHit() {
	if sp == nil {
		return
	}
	sp.cacheHit.Store(true)
}

// Finish closes the span with a terminal status ("ok", "timeout",
// "canceled", "error") and folds it into the registry's counters,
// histograms and slow-query log. Finish must be called exactly once.
func (sp *Span) Finish(status string) {
	if sp == nil {
		return
	}
	sp.reg.finish(sp, status)
}

// spanKey carries the active span through a request context.
type spanKey struct{}

// WithSpan returns a context carrying the span.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the span carried by ctx, or nil. A nil ctx is allowed
// (the topk layer models "never cancelled" as a nil context).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Registry aggregates finished spans: query counters keyed by
// (algorithm, scheme, status), per-algorithm latency histograms,
// per-stage latency histograms, an in-flight gauge and the slow-query
// log. All methods are safe for concurrent use and on a nil receiver —
// a nil *Registry produces nil spans, turning the whole layer off.
type Registry struct {
	inFlight atomic.Int64

	mu      sync.Mutex
	queries map[queryKey]uint64
	latency map[string]*Histogram // by algorithm

	stages [NumStages]*Histogram
	slow   *SlowLog
}

type queryKey struct {
	algo, scheme, status string
}

// NewRegistry returns a registry whose slow-query log keeps the slowCap
// most recent queries at least slowThreshold long (slowCap <= 0 picks a
// default of 128; a zero threshold logs every query).
func NewRegistry(slowCap int, slowThreshold time.Duration) *Registry {
	if slowCap <= 0 {
		slowCap = 128
	}
	r := &Registry{
		queries: make(map[queryKey]uint64),
		latency: make(map[string]*Histogram),
		slow:    NewSlowLog(slowCap, slowThreshold),
	}
	for i := range r.stages {
		r.stages[i] = NewHistogram()
	}
	return r
}

// StartSpan opens a span for one query evaluation and bumps the
// in-flight gauge. On a nil registry it returns a nil span, which every
// downstream layer accepts.
func (r *Registry) StartSpan(query, algo, scheme string, k int) *Span {
	if r == nil {
		return nil
	}
	r.inFlight.Add(1)
	return &Span{query: query, algo: algo, scheme: scheme, k: k, start: time.Now(), reg: r}
}

func (r *Registry) finish(sp *Span, status string) {
	if r == nil {
		return
	}
	total := time.Since(sp.start)
	r.inFlight.Add(-1)

	var stages [NumStages]time.Duration
	for i := range stages {
		stages[i] = time.Duration(sp.stages[i].Load())
		r.stages[i].Observe(stages[i])
	}

	r.mu.Lock()
	r.queries[queryKey{sp.algo, sp.scheme, status}]++
	h := r.latency[sp.algo]
	if h == nil {
		h = NewHistogram()
		r.latency[sp.algo] = h
	}
	r.mu.Unlock()
	h.Observe(total)

	r.slow.Add(SlowEntry{
		Time:        time.Now(),
		Query:       sp.query,
		Algo:        sp.algo,
		Scheme:      sp.scheme,
		Status:      status,
		K:           sp.k,
		Relaxations: int(sp.relax.Load()),
		CacheHit:    sp.cacheHit.Load(),
		Total:       total,
		Stages:      stages,
	})
}

// InFlight returns the number of open spans.
func (r *Registry) InFlight() int64 {
	if r == nil {
		return 0
	}
	return r.inFlight.Load()
}

// QueryCount is one (algorithm, scheme, status) counter cell.
type QueryCount struct {
	Algo, Scheme, Status string
	Count                uint64
}

// QueryCounts snapshots the query counters in deterministic order.
func (r *Registry) QueryCounts() []QueryCount {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]QueryCount, 0, len(r.queries))
	for k, v := range r.queries {
		out = append(out, QueryCount{Algo: k.algo, Scheme: k.scheme, Status: k.status, Count: v})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Algo != out[j].Algo {
			return out[i].Algo < out[j].Algo
		}
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		return out[i].Status < out[j].Status
	})
	return out
}

// LatencyByAlgo snapshots the per-algorithm latency histograms in
// algorithm name order.
func (r *Registry) LatencyByAlgo() (algos []string, hists []HistogramSnapshot) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	for a := range r.latency {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	hists = make([]HistogramSnapshot, len(algos))
	for i, a := range algos {
		hists[i] = r.latency[a].Snapshot()
	}
	r.mu.Unlock()
	return algos, hists
}

// StageLatency snapshots the per-stage histograms, indexed by Stage.
func (r *Registry) StageLatency() []HistogramSnapshot {
	if r == nil {
		return nil
	}
	out := make([]HistogramSnapshot, NumStages)
	for i := range r.stages {
		out[i] = r.stages[i].Snapshot()
	}
	return out
}

// SlowLog exposes the registry's slow-query log.
func (r *Registry) SlowLog() *SlowLog {
	if r == nil {
		return nil
	}
	return r.slow
}
