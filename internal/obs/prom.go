package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) rendering. Only the
// features the /metrics endpoint needs are implemented: HELP/TYPE
// headers, counters, gauges and cumulative histograms with le labels.

// PromContentType is the Content-Type of the rendered exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// promBound renders a bucket bound in seconds ("+Inf" for overflow).
func promBound(i int) string {
	b := BucketBound(i)
	if b < 0 {
		return "+Inf"
	}
	return strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
}

// WriteHistogram renders one histogram series with the given label pair
// applied to every sample. Serving layers that keep their own Histogram
// families (flexrouter's per-shard latency) render them through this so
// every exposition in the system shares one bucket geometry.
func WriteHistogram(w io.Writer, name, labelKey, labelVal string, s HistogramSnapshot) {
	lv := escapeLabel(labelVal)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, labelKey, lv, promBound(i), cum)
	}
	fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, labelKey, lv, s.Sum.Seconds())
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelKey, lv, s.Count)
}

// WriteMetric renders one unlabeled sample with its HELP and TYPE
// headers. kind is "counter" or "gauge". Serving layers with many
// single-sample families (flexserve's WAL counters) render them through
// this instead of hand-writing the three-line exposition stanza.
func WriteMetric(w io.Writer, name, kind, help string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, kind, name, value)
}

// WritePrometheus renders the registry's counters, histograms and the
// in-flight gauge in the Prometheus text exposition format. Serving
// callers append their own families (e.g. cache counters) after it.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	fmt.Fprintln(w, "# HELP flexpath_queries_total Finished search queries by algorithm, ranking scheme and terminal status.")
	fmt.Fprintln(w, "# TYPE flexpath_queries_total counter")
	for _, qc := range r.QueryCounts() {
		fmt.Fprintf(w, "flexpath_queries_total{algo=%q,scheme=%q,status=%q} %d\n",
			escapeLabel(qc.Algo), escapeLabel(qc.Scheme), escapeLabel(qc.Status), qc.Count)
	}

	fmt.Fprintln(w, "# HELP flexpath_inflight_queries Searches currently being evaluated.")
	fmt.Fprintln(w, "# TYPE flexpath_inflight_queries gauge")
	fmt.Fprintf(w, "flexpath_inflight_queries %d\n", r.InFlight())

	fmt.Fprintln(w, "# HELP flexpath_query_duration_seconds End-to-end search latency by algorithm.")
	fmt.Fprintln(w, "# TYPE flexpath_query_duration_seconds histogram")
	algos, hists := r.LatencyByAlgo()
	for i, a := range algos {
		WriteHistogram(w, "flexpath_query_duration_seconds", "algo", a, hists[i])
	}

	fmt.Fprintln(w, "# HELP flexpath_stage_duration_seconds Per-stage evaluation time (parse, chain, join, merge, cache, plan).")
	fmt.Fprintln(w, "# TYPE flexpath_stage_duration_seconds histogram")
	for i, s := range r.StageLatency() {
		WriteHistogram(w, "flexpath_stage_duration_seconds", "stage", Stage(i).String(), s)
	}

	fmt.Fprintln(w, "# HELP flexpath_slowlog_entries Queries retained in the slow-query log.")
	fmt.Fprintln(w, "# TYPE flexpath_slowlog_entries gauge")
	fmt.Fprintf(w, "flexpath_slowlog_entries %d\n", r.SlowLog().Len())
}

// ValidateExposition checks that data is well-formed Prometheus text
// exposition format: every non-comment line is `name{labels} value`,
// label syntax is sound, values parse as floats, and every sample
// belongs to a family announced by a # TYPE line. It is the assertion
// behind the CI smoke test (and cmd/promcheck); it is deliberately a
// validator, not a full parser.
func ValidateExposition(data []byte) error {
	typed := make(map[string]string)
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, err := splitMetricName(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if strings.HasPrefix(rest, "{") {
			end, err := scanLabels(rest)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			rest = rest[end:]
		}
		rest = strings.TrimLeft(rest, " ")
		value := rest
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			value = rest[:i]
			if _, err := strconv.ParseInt(strings.TrimSpace(rest[i+1:]), 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", lineNo, rest[i+1:])
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, value)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
	}
	if len(typed) == 0 {
		return fmt.Errorf("no metric families found")
	}
	return nil
}

// splitMetricName splits off a leading metric name, validating its
// character set.
func splitMetricName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9') {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return "", "", fmt.Errorf("missing metric name in %q", line)
	}
	return line[:i], line[i:], nil
}

// scanLabels validates a {k="v",...} label block and returns the index
// just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && (s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z' ||
			s[i] == '_' || (i > start && s[i] >= '0' && s[i] <= '9')) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("missing label name at %q", s[i:])
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("missing '=' in label at %q", s[start:])
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted at %q", s[start:])
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// StageNames returns the stage labels in declaration order; serving
// layers use it to render per-stage JSON deterministically.
func StageNames() []string {
	names := make([]string, NumStages)
	for i := range names {
		names[i] = Stage(i).String()
	}
	return names
}
