package inex

import (
	"bytes"
	"testing"

	"flexpath/internal/xmltree"
)

func TestBuildDeterminism(t *testing.T) {
	a, err := Build(Config{Articles: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Articles: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", a.Len(), b.Len())
	}
	for n := xmltree.NodeID(0); int(n) < a.Len(); n++ {
		if a.TagName(n) != b.TagName(n) || a.Text(n) != b.Text(n) {
			t.Fatalf("node %d differs", n)
		}
	}
	c, err := Build(Config{Articles: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == a.Len() {
		same := true
		for n := xmltree.NodeID(0); int(n) < a.Len(); n++ {
			if a.Text(n) != c.Text(n) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical collections")
		}
	}
}

func TestArticleCount(t *testing.T) {
	d, err := Build(Config{Articles: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.NodesWithTag("article")); got != 120 {
		t.Errorf("articles = %d, want 120", got)
	}
	if got := len(d.NodesWithTag("collection")); got != 1 {
		t.Errorf("collections = %d", got)
	}
	// Default count when unset.
	d, err = Build(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.NodesWithTag("article")); got != 100 {
		t.Errorf("default articles = %d, want 100", got)
	}
}

// TestShapeDistribution: the four ladder shapes all occur, in roughly the
// documented proportions.
func TestShapeDistribution(t *testing.T) {
	d, err := Build(Config{Articles: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, a := range d.NodesWithTag("article") {
		hasAppendixAlgo := false
		hasSectionAlgo := false
		for _, alg := range d.NodesWithTag("algorithm") {
			if !d.IsAncestor(a, alg) {
				continue
			}
			switch d.TagName(d.Parent(alg)) {
			case "appendix":
				hasAppendixAlgo = true
			case "section":
				hasSectionAlgo = true
			}
		}
		if hasAppendixAlgo {
			counts["appendix-algo"]++
		}
		if hasSectionAlgo {
			counts["section-algo"]++
		}
	}
	if counts["appendix-algo"] < 20 {
		t.Errorf("too few Q3-shape articles: %d", counts["appendix-algo"])
	}
	if counts["section-algo"] < 50 {
		t.Errorf("too few section algorithms: %d", counts["section-algo"])
	}
}

func TestGenerateParses(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, Config{Articles: 30, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	d, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatalf("generated XML does not parse: %v", err)
	}
	if got := len(d.NodesWithTag("article")); got != 30 {
		t.Errorf("reparsed articles = %d", got)
	}
}

func TestHeterogeneity(t *testing.T) {
	d, err := Build(Config{Articles: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Subsections, appendices and abstracts must all occur, but not
	// everywhere (structural heterogeneity).
	for _, tag := range []string{"subsection", "appendix", "abstract", "bibliography"} {
		n := len(d.NodesWithTag(tag))
		if n == 0 {
			t.Errorf("no %s elements", tag)
		}
		if n >= 200 && tag != "abstract" {
			t.Errorf("%s occurs %d times, suspiciously homogeneous", tag, n)
		}
	}
}
