// Package inex generates synthetic scholarly-article collections in the
// spirit of the IEEE INEX and ACM SIGMOD Record corpora that motivate the
// FleXPath paper's introduction: documents that are heterogeneous in
// structure and rich in text.
//
// The generated articles vary exactly along the axes the paper's
// introduction discusses. Keywords relevant to a query may appear in a
// paragraph inside a section (query Q1's exact shape), in the section
// title instead (caught by contains promotion, Q2), with the algorithm
// element outside the keyword section (caught by subtree promotion, Q3),
// or only at the article level (caught by repeated relaxation, Q6). All
// shapes occur with fixed probabilities, so relaxation levels partition
// the corpus predictably.
//
// Like the xmark generator, generation is deterministic per Config.
package inex

import (
	"fmt"
	"io"
	"math/rand"

	"flexpath/internal/xmltree"
)

// Config controls collection generation.
type Config struct {
	// Articles is the number of article elements.
	Articles int
	// Seed selects the pseudo-random stream.
	Seed int64
}

// topics are the "hot" subject words queries search for.
var topics = []string{"xml", "streaming", "query", "index", "join", "relaxation"}

var filler = []string{
	"evaluation", "system", "cost", "model", "data", "structure", "tree",
	"pattern", "match", "result", "rank", "score", "engine", "plan",
	"operator", "semantics", "language", "storage", "cache", "memory",
	"disk", "parallel", "distributed", "experiment", "benchmark",
	"measure", "analysis", "method", "approach", "framework", "algorithm",
	"optimization", "selectivity", "estimate", "statistics", "histogram",
	"relational", "document", "element", "attribute", "predicate", "path",
	"node", "edge", "label", "keyword", "search", "retrieval", "relevance",
	"precision", "recall", "corpus", "collection", "fragment", "schema",
}

var authors = []string{
	"chen", "gupta", "martin", "silva", "tanaka", "olsen", "kim", "patel",
	"novak", "russo", "weber", "lindqvist", "moreau", "haddad", "fischer",
}

type gen struct {
	r   *rand.Rand
	b   *xmltree.Builder
	seq int
}

// Build constructs the collection as a parsed document.
func Build(cfg Config) (*xmltree.Document, error) {
	if cfg.Articles <= 0 {
		cfg.Articles = 100
	}
	g := &gen{r: rand.New(rand.NewSource(cfg.Seed)), b: xmltree.NewBuilder()}
	g.b.Open("collection")
	for i := 0; i < cfg.Articles; i++ {
		g.article()
	}
	g.b.Close()
	d, err := g.b.Document()
	if err != nil {
		return nil, fmt.Errorf("inex: %w", err)
	}
	return d, nil
}

// Generate writes the collection as XML text.
func Generate(w io.Writer, cfg Config) error {
	d, err := Build(cfg)
	if err != nil {
		return err
	}
	return d.WriteXML(w, d.Root())
}

func (g *gen) words(n int, topicProb float64) string {
	buf := make([]byte, 0, n*9)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		if g.r.Float64() < topicProb {
			buf = append(buf, topics[g.r.Intn(len(topics))]...)
		} else {
			buf = append(buf, filler[g.r.Intn(len(filler))]...)
		}
	}
	return string(buf)
}

func (g *gen) element(tag, text string) {
	g.b.Open(tag)
	g.b.Text(text)
	g.b.Close()
}

// article emits one article with one of several structural shapes. The
// shape distribution is chosen so the Figure 1 relaxation ladder
// partitions the collection:
//
//	~20%  exact Q1 shape: section with algorithm and topic paragraph
//	~15%  topics in the section title, algorithm present (Q2 shape)
//	~15%  algorithm in an appendix, topic paragraph in a section (Q3)
//	~15%  topics only in the title/abstract (Q6 shape)
//	~35%  off-topic
func (g *gen) article() {
	g.seq++
	g.b.Open("article", xmltree.Attr{Name: "id", Value: fmt.Sprintf("a%d", g.seq)})
	shape := g.r.Float64()
	onTopic := shape < 0.65

	titleTopic := 0.05
	if shape >= 0.50 && shape < 0.65 {
		titleTopic = 0.8 // Q6 shape: topics at the article level only
	}
	g.element("title", g.words(3+g.r.Intn(5), titleTopic))
	for i := 0; i <= g.r.Intn(3); i++ {
		g.element("author", authors[g.r.Intn(len(authors))])
	}
	if g.r.Float64() < 0.5 {
		abstractTopic := 0.04
		if shape >= 0.50 && shape < 0.65 {
			abstractTopic = 0.5
		}
		g.element("abstract", g.words(12+g.r.Intn(20), abstractTopic))
	}

	nSections := 1 + g.r.Intn(4)
	keywordSection := g.r.Intn(nSections)
	for i := 0; i < nSections; i++ {
		g.section(shape, onTopic && i == keywordSection)
	}

	// Q3 shape: the algorithm lives outside the sections.
	if shape >= 0.35 && shape < 0.50 {
		g.b.Open("appendix")
		g.element("algorithm", g.words(2+g.r.Intn(3), 0.1))
		if g.r.Float64() < 0.5 {
			g.element("paragraph", g.words(8+g.r.Intn(10), 0.05))
		}
		g.b.Close()
	}
	if g.r.Float64() < 0.4 {
		g.b.Open("bibliography")
		for i := 0; i <= g.r.Intn(5); i++ {
			g.element("cite", g.words(4+g.r.Intn(4), 0.1))
		}
		g.b.Close()
	}
	g.b.Close()
}

func (g *gen) section(shape float64, keyworded bool) {
	g.b.Open("section")
	switch {
	case keyworded && shape < 0.20:
		// Q1 shape: algorithm and a topic paragraph in the same section.
		g.element("title", g.words(2+g.r.Intn(3), 0.1))
		g.element("algorithm", g.words(2+g.r.Intn(3), 0.15))
		g.element("paragraph", g.words(10+g.r.Intn(15), 0.45))
		g.fillerParagraphs()
	case keyworded && shape < 0.35:
		// Q2 shape: topics in the section title, not its paragraphs.
		g.element("title", g.words(3+g.r.Intn(3), 0.7))
		g.element("algorithm", g.words(2+g.r.Intn(3), 0.1))
		g.fillerParagraphs()
	case keyworded && shape < 0.50:
		// Q3 shape: topic paragraph here, algorithm elsewhere.
		g.element("title", g.words(2+g.r.Intn(3), 0.1))
		g.element("paragraph", g.words(10+g.r.Intn(15), 0.45))
		g.fillerParagraphs()
	default:
		if g.r.Float64() < 0.5 {
			g.element("title", g.words(2+g.r.Intn(3), 0.02))
		}
		if g.r.Float64() < 0.25 {
			g.element("algorithm", g.words(2+g.r.Intn(3), 0.02))
		}
		g.fillerParagraphs()
		// Heterogeneity: occasional nested subsections.
		if g.r.Float64() < 0.3 {
			g.b.Open("subsection")
			g.element("title", g.words(2, 0.02))
			g.fillerParagraphs()
			g.b.Close()
		}
	}
	g.b.Close()
}

func (g *gen) fillerParagraphs() {
	for i := 0; i <= g.r.Intn(3); i++ {
		g.element("paragraph", g.words(8+g.r.Intn(14), 0.03))
	}
}
