package serveutil

import (
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// drainFixture runs Serve() over a handler whose /slow endpoint blocks
// until released, so tests can hold a request in flight across the
// shutdown signal deterministically.
type drainFixture struct {
	base    string
	sig     chan os.Signal
	started chan struct{} // closed when /slow is executing
	release chan struct{} // close to let /slow finish
	servErr chan error    // Serve()'s return value
}

func startDrainFixture(t *testing.T, drain time.Duration) *drainFixture {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &drainFixture{
		base:    "http://" + ln.Addr().String(),
		sig:     make(chan os.Signal, 1),
		started: make(chan struct{}),
		release: make(chan struct{}),
		servErr: make(chan error, 1),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(f.started)
		<-f.release
		w.Write([]byte("done")) //nolint:errcheck
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok")) //nolint:errcheck
	})
	srv := &http.Server{Handler: mux}
	go func() { f.servErr <- Serve("test", srv, ln, f.sig, drain) }()
	return f
}

// A SIGTERM must stop accepting new connections immediately while the
// in-flight request is allowed to finish within the drain deadline, and
// Serve() must then return cleanly.
func TestServeDrainsInFlight(t *testing.T) {
	f := startDrainFixture(t, 5*time.Second)

	slowDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(f.base + "/slow")
		if err != nil {
			slowDone <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		slowDone <- string(body)
	}()
	<-f.started

	f.sig <- syscall.SIGTERM

	// New connections are refused once the listener closes; poll until
	// the shutdown has taken effect.
	refused := false
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		if _, err := http.Get(f.base + "/ok"); err != nil {
			refused = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted after SIGTERM")
	}

	// The in-flight request survives the signal and completes.
	close(f.release)
	if got := <-slowDone; got != "done" {
		t.Errorf("in-flight request result %q, want %q", got, "done")
	}
	select {
	case err := <-f.servErr:
		if err != nil {
			t.Errorf("serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}

// When the in-flight request outlives the drain deadline, Serve() must
// still return (force-closing connections) and report the overrun.
func TestServeDrainDeadlineExceeded(t *testing.T) {
	f := startDrainFixture(t, 50*time.Millisecond)
	defer close(f.release)

	slowDone := make(chan struct{})
	go func() {
		resp, err := http.Get(f.base + "/slow")
		if err == nil {
			resp.Body.Close()
		}
		close(slowDone)
	}()
	<-f.started

	f.sig <- syscall.SIGTERM
	select {
	case err := <-f.servErr:
		if err == nil {
			t.Error("serve returned nil, want drain-deadline error")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("serve hung past the drain deadline")
	}
	// The forced close unblocks the stuck client promptly.
	select {
	case <-slowDone:
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight connection not force-closed")
	}
}
