// Package serveutil holds the HTTP server lifecycle shared by flexserve
// and flexrouter: serve until failure or a shutdown signal, then drain
// gracefully. Both binaries need byte-for-byte the same semantics (CI
// kills and restarts them interchangeably), so the loop lives here rather
// than being copied into each main package.
package serveutil

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"
)

// Serve runs srv on ln until it fails or a shutdown signal arrives, then
// gracefully drains: the listener closes immediately (new connections are
// refused), in-flight requests get up to drain to finish, and only then
// does Serve return. A drain overrun force-closes remaining connections
// and reports an error; a clean drain returns nil.
//
// name labels log lines; the signal channel is a parameter so tests can
// drive the lifecycle deterministically.
func Serve(name string, srv *http.Server, ln net.Listener, sig <-chan os.Signal, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		log.Printf("%s: received %v: refusing new connections, draining in-flight requests (deadline %v)", name, s, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
			return fmt.Errorf("%s: drain deadline exceeded: %w", name, err)
		}
		log.Printf("%s: drained cleanly", name)
		return nil
	}
}
