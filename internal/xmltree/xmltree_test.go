package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleXML = `<site>
  <regions>
    <africa>
      <item id="i1"><name>gold ring</name><quantity>2</quantity></item>
      <item id="i2"><name>silver coin</name></item>
    </africa>
    <asia>
      <item id="i3"><description><parlist><listitem><text>rare vase</text></listitem></parlist></description></item>
    </asia>
  </regions>
</site>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestParseBasic(t *testing.T) {
	d := mustParse(t, sampleXML)
	if got, want := d.Len(), 14; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if d.TagName(d.Root()) != "site" {
		t.Errorf("root tag = %q", d.TagName(d.Root()))
	}
	items := d.NodesWithTag("item")
	if len(items) != 3 {
		t.Fatalf("items = %d, want 3", len(items))
	}
	if id, ok := d.Attr(items[0], "id"); !ok || id != "i1" {
		t.Errorf("first item id = %q, %v", id, ok)
	}
	if _, ok := d.Attr(items[0], "missing"); ok {
		t.Error("found nonexistent attribute")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"text only":      "hello",
		"multiple roots": "<a></a><b></b>",
		"unbalanced":     "<a><b></a>",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestIntervalEncoding(t *testing.T) {
	d := mustParse(t, sampleXML)
	// Every node's interval must contain exactly its descendants.
	for n := NodeID(0); int(n) < d.Len(); n++ {
		for m := NodeID(0); int(m) < d.Len(); m++ {
			viaInterval := d.IsAncestor(n, m)
			viaParents := false
			for p := d.Parent(m); p != InvalidNode; p = d.Parent(p) {
				if p == n {
					viaParents = true
					break
				}
			}
			if viaInterval != viaParents {
				t.Fatalf("IsAncestor(%d,%d) = %v, parent chain says %v", n, m, viaInterval, viaParents)
			}
		}
	}
}

func TestLevelsAndParents(t *testing.T) {
	d := mustParse(t, sampleXML)
	if d.Level(d.Root()) != 0 {
		t.Errorf("root level = %d", d.Level(d.Root()))
	}
	for n := NodeID(1); int(n) < d.Len(); n++ {
		p := d.Parent(n)
		if p == InvalidNode {
			t.Fatalf("non-root node %d has no parent", n)
		}
		if d.Level(n) != d.Level(p)+1 {
			t.Errorf("level(%d) = %d, parent level %d", n, d.Level(n), d.Level(p))
		}
		if !d.IsParent(p, n) {
			t.Errorf("IsParent(%d,%d) = false", p, n)
		}
	}
}

func TestChildren(t *testing.T) {
	d := mustParse(t, sampleXML)
	root := d.Root()
	kids := d.Children(root)
	if len(kids) != 1 || d.TagName(kids[0]) != "regions" {
		t.Fatalf("root children = %v", kids)
	}
	regions := kids[0]
	kids = d.Children(regions)
	if len(kids) != 2 {
		t.Fatalf("regions children = %d, want 2", len(kids))
	}
	for _, c := range kids {
		if d.Parent(c) != regions {
			t.Errorf("child %d has parent %d", c, d.Parent(c))
		}
	}
}

func TestPath(t *testing.T) {
	d := mustParse(t, sampleXML)
	items := d.NodesWithTag("item")
	if got := d.Path(items[0]); got != "/site/regions/africa/item" {
		t.Errorf("Path = %q", got)
	}
}

func TestSubtreeText(t *testing.T) {
	d := mustParse(t, sampleXML)
	items := d.NodesWithTag("item")
	text := d.SubtreeText(items[0])
	if !strings.Contains(text, "gold ring") || !strings.Contains(text, "2") {
		t.Errorf("SubtreeText = %q", text)
	}
}

func TestTagLookup(t *testing.T) {
	d := mustParse(t, sampleXML)
	if d.TagByName("no-such-tag") != InvalidTag {
		t.Error("unknown tag resolved")
	}
	if d.NodesWithTag("no-such-tag") != nil {
		t.Error("unknown tag has nodes")
	}
	id := d.TagByName("item")
	if d.TagNameOf(id) != "item" {
		t.Errorf("TagNameOf round trip failed")
	}
	if len(d.NodesWithTagID(id)) != 3 {
		t.Error("NodesWithTagID mismatch")
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	d := mustParse(t, sampleXML)
	var sb strings.Builder
	if err := d.WriteXML(&sb, d.Root()); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip node count %d != %d", d2.Len(), d.Len())
	}
	for n := NodeID(0); int(n) < d.Len(); n++ {
		if d.TagName(n) != d2.TagName(n) {
			t.Fatalf("node %d tag %q != %q", n, d.TagName(n), d2.TagName(n))
		}
		if strings.TrimSpace(d.Text(n)) != strings.TrimSpace(d2.Text(n)) {
			t.Fatalf("node %d text %q != %q", n, d.Text(n), d2.Text(n))
		}
	}
}

func TestEscaping(t *testing.T) {
	d := mustParse(t, `<a x="1&amp;2">a &lt; b</a>`)
	if v, _ := d.Attr(0, "x"); v != "1&2" {
		t.Errorf("attr = %q", v)
	}
	if d.Text(0) != "a < b" {
		t.Errorf("text = %q", d.Text(0))
	}
	var sb strings.Builder
	if err := d.WriteXML(&sb, 0); err != nil {
		t.Fatal(err)
	}
	d2 := mustParse(t, sb.String())
	if d2.Text(0) != "a < b" {
		t.Errorf("round trip text = %q", d2.Text(0))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Open("a")
	if _, err := b.Document(); err == nil {
		t.Error("unclosed element accepted")
	}
	b = NewBuilder()
	b.Open("a")
	b.Close()
	b.Open("b")
	b.Close()
	if _, err := b.Document(); err == nil {
		t.Error("two roots accepted")
	}
}

// randomTree builds a random document and checks structural invariants.
func randomTree(r *rand.Rand) *Document {
	b := NewBuilder()
	tags := []string{"a", "b", "c", "d", "e"}
	var build func(depth int)
	build = func(depth int) {
		b.Open(tags[r.Intn(len(tags))])
		if r.Intn(2) == 0 {
			b.Text("w" + string(rune('a'+r.Intn(26))))
		}
		if depth < 6 {
			for i := 0; i < r.Intn(4); i++ {
				build(depth + 1)
			}
		}
		b.Close()
	}
	build(0)
	d, err := b.Document()
	if err != nil {
		panic(err)
	}
	return d
}

func TestPropertyIntervalInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomTree(r)
		// (1) end is within bounds and >= self.
		for n := NodeID(0); int(n) < d.Len(); n++ {
			if d.End(n) < n || int(d.End(n)) >= d.Len() {
				return false
			}
		}
		// (2) siblings have disjoint intervals; children nest in parents.
		for n := NodeID(1); int(n) < d.Len(); n++ {
			p := d.Parent(n)
			if !(p < n && n <= d.End(p)) {
				return false
			}
		}
		// (3) document order within tag lists.
		for ti := 0; ti < d.NumTags(); ti++ {
			l := d.NodesWithTagID(TagID(ti))
			for i := 1; i < len(l); i++ {
				if l[i-1] >= l[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContains(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomTree(r)
		for trial := 0; trial < 50; trial++ {
			a := NodeID(r.Intn(d.Len()))
			b := NodeID(r.Intn(d.Len()))
			want := a == b
			for p := b; p != InvalidNode; p = d.Parent(p) {
				if p == a {
					want = true
					break
				}
			}
			if d.Contains(a, b) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNamespacesStripped documents namespace handling: encoding/xml
// resolves prefixes and this package keeps local names only, so
// differently-prefixed but same-named elements unify.
func TestNamespacesStripped(t *testing.T) {
	d := mustParse(t, `<a xmlns:x="urn:one" xmlns:y="urn:two"><x:b/><y:b/><b/></a>`)
	if got := len(d.NodesWithTag("b")); got != 3 {
		t.Errorf("namespaced b elements = %d, want 3 (local names unify)", got)
	}
}
