package xmltree

import (
	"bytes"
	"testing"
)

// benchDocument builds a mid-sized synthetic document once.
func benchDocument(b *testing.B) (*Document, []byte) {
	b.Helper()
	bld := NewBuilder()
	bld.Open("root")
	for i := 0; i < 2000; i++ {
		bld.Open("item", Attr{Name: "id", Value: "x"})
		bld.Open("name")
		bld.Text("gold silver vintage rare antique")
		bld.Close()
		bld.Open("desc")
		bld.Open("para")
		bld.Text("some descriptive text about the item with several words")
		bld.Close()
		bld.Close()
		bld.Close()
	}
	bld.Close()
	d, err := bld.Document()
	if err != nil {
		b.Fatal(err)
	}
	var xml bytes.Buffer
	if err := d.WriteXML(&xml, d.Root()); err != nil {
		b.Fatal(err)
	}
	return d, xml.Bytes()
}

func BenchmarkParseXML(b *testing.B) {
	_, xml := benchDocument(b)
	b.SetBytes(int64(len(xml)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(xml)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinarySnapshot(b *testing.B) {
	d, xml := benchDocument(b)
	var snap bytes.Buffer
	if err := d.WriteBinary(&snap); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(xml))) // same logical content as the XML
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(snap.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsAncestor(b *testing.B) {
	d, _ := benchDocument(b)
	n := NodeID(d.Len() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.IsAncestor(0, n)
		d.IsAncestor(n, 0)
	}
}

func BenchmarkSubtreeText(b *testing.B) {
	d, _ := benchDocument(b)
	items := d.NodesWithTag("item")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SubtreeText(items[i%len(items)])
	}
}
