// Package xmltree provides the XML data model used throughout FleXPath.
//
// A parsed document is a flat table of element nodes in pre-order. Each
// node carries the interval encoding (start, end, level) introduced for
// structural joins by Al-Khalifa et al. (ICDE 2002): node a is an ancestor
// of node d iff start(a) < start(d) && start(d) <= end(a), and a is the
// parent of d iff additionally level(d) == level(a)+1. Node identifiers
// are pre-order positions, so start(n) == n and document order is the
// natural order on NodeID.
package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// NodeID identifies an element node within a Document. IDs are assigned in
// pre-order, so comparing NodeIDs compares document order.
type NodeID int32

// InvalidNode is returned when no node exists (e.g. the parent of the root).
const InvalidNode NodeID = -1

// TagID is an interned element tag name.
type TagID int32

// InvalidTag is returned for tag names that do not occur in a document.
const InvalidTag TagID = -1

// Attr is a single element attribute.
type Attr struct {
	Name  string
	Value string
}

// Document is an immutable parsed XML document. All per-node accessors are
// O(1); structural tests use the interval encoding. A Document is safe for
// concurrent readers.
type Document struct {
	tags    []string
	tagIDs  map[string]TagID
	nodeTag []TagID
	end     []NodeID
	level   []int32
	parent  []NodeID
	text    []string
	attrs   [][]Attr
	byTag   [][]NodeID
	size    int64 // bytes of source XML, if parsed from text
}

// Parse reads a complete XML document and builds its node table. Character
// data is attributed to the innermost enclosing element. Processing
// instructions, comments and directives are ignored. The document must have
// exactly one root element.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	depth := 0
	seenRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 {
				if seenRoot {
					return nil, errors.New("xmltree: multiple root elements")
				}
				seenRoot = true
			}
			attrs := make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				attrs = append(attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			b.Open(t.Name.Local, attrs...)
			depth++
		case xml.EndElement:
			b.Close()
			depth--
		case xml.CharData:
			if depth > 0 {
				b.Text(string(t))
			}
		}
	}
	if !seenRoot {
		return nil, errors.New("xmltree: empty document")
	}
	if depth != 0 {
		return nil, errors.New("xmltree: unbalanced elements")
	}
	d, err := b.Document()
	if err != nil {
		return nil, err
	}
	d.size = dec.InputOffset()
	return d, nil
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Document, error) {
	d, err := Parse(strings.NewReader(s))
	if err != nil {
		return nil, err
	}
	d.size = int64(len(s))
	return d, nil
}

// Len returns the number of element nodes.
func (d *Document) Len() int { return len(d.nodeTag) }

// SourceBytes returns the byte length of the XML the document was parsed
// from, or 0 for documents assembled via a Builder.
func (d *Document) SourceBytes() int64 { return d.size }

// Root returns the root element.
func (d *Document) Root() NodeID { return 0 }

// Tag returns the interned tag of node n.
func (d *Document) Tag(n NodeID) TagID { return d.nodeTag[n] }

// TagName returns the tag name of node n.
func (d *Document) TagName(n NodeID) string { return d.tags[d.nodeTag[n]] }

// TagByName resolves a tag name to its TagID, or InvalidTag if the tag does
// not occur in the document.
func (d *Document) TagByName(name string) TagID {
	if id, ok := d.tagIDs[name]; ok {
		return id
	}
	return InvalidTag
}

// TagNameOf returns the name of an interned tag.
func (d *Document) TagNameOf(t TagID) string { return d.tags[t] }

// NumTags returns the number of distinct tags.
func (d *Document) NumTags() int { return len(d.tags) }

// End returns the interval end of node n: the largest NodeID in n's subtree.
func (d *Document) End(n NodeID) NodeID { return d.end[n] }

// Level returns the depth of node n (root is level 0).
func (d *Document) Level(n NodeID) int { return int(d.level[n]) }

// Parent returns the parent of node n, or InvalidNode for the root.
func (d *Document) Parent(n NodeID) NodeID { return d.parent[n] }

// Ends returns the End column of the node table, indexed by NodeID: the
// interval end of every node. Batch kernels index it directly instead of
// calling End per node. The returned slice must not be modified.
func (d *Document) Ends() []NodeID { return d.end }

// Parents returns the Parent column of the node table, indexed by NodeID
// (InvalidNode for the root). The returned slice must not be modified.
func (d *Document) Parents() []NodeID { return d.parent }

// Text returns the character data directly inside node n (excluding
// descendants' text).
func (d *Document) Text(n NodeID) string { return d.text[n] }

// Attrs returns the attributes of node n. The returned slice must not be
// modified.
func (d *Document) Attrs(n NodeID) []Attr { return d.attrs[n] }

// Attr looks up an attribute by name on node n.
func (d *Document) Attr(n NodeID, name string) (string, bool) {
	for _, a := range d.attrs[n] {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// IsAncestor reports whether a is a proper ancestor of n.
func (d *Document) IsAncestor(a, n NodeID) bool {
	return a < n && n <= d.end[a]
}

// IsParent reports whether a is the parent of n.
func (d *Document) IsParent(a, n NodeID) bool {
	return d.parent[n] == a
}

// Contains reports whether n's subtree (including n itself) contains m.
func (d *Document) Contains(n, m NodeID) bool {
	return n <= m && m <= d.end[n]
}

// NodesWithTag returns all nodes with the given tag name in document order.
// The returned slice must not be modified.
func (d *Document) NodesWithTag(name string) []NodeID {
	id := d.TagByName(name)
	if id == InvalidTag {
		return nil
	}
	return d.byTag[id]
}

// NodesWithTagID returns all nodes with tag t in document order. The
// returned slice must not be modified.
func (d *Document) NodesWithTagID(t TagID) []NodeID {
	if t == InvalidTag {
		return nil
	}
	return d.byTag[t]
}

// Children returns the child elements of n in document order.
func (d *Document) Children(n NodeID) []NodeID {
	var out []NodeID
	for c := n + 1; c <= d.end[n]; c = d.end[c] + 1 {
		out = append(out, c)
	}
	return out
}

// SubtreeText concatenates all character data in n's subtree in document
// order, separating element boundaries with single spaces.
func (d *Document) SubtreeText(n NodeID) string {
	var sb strings.Builder
	for m := n; m <= d.end[n]; m++ {
		if t := d.text[m]; t != "" {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(t)
		}
	}
	return sb.String()
}

// Path returns the slash-separated tag path from the root to n, e.g.
// "/site/regions/africa/item".
func (d *Document) Path(n NodeID) string {
	// One pass up collects the ancestor chain (stack-allocated for any
	// realistic depth) and sizes the output, so the builder allocates
	// exactly once however deep the node sits.
	var stackArr [64]NodeID
	stack := stackArr[:0]
	total := 0
	for m := n; m != InvalidNode; m = d.parent[m] {
		stack = append(stack, m)
		total += 1 + len(d.TagName(m))
	}
	var sb strings.Builder
	sb.Grow(total)
	for i := len(stack) - 1; i >= 0; i-- {
		sb.WriteByte('/')
		sb.WriteString(d.TagName(stack[i]))
	}
	return sb.String()
}

// WriteXML serializes the subtree rooted at n as XML.
func (d *Document) WriteXML(w io.Writer, n NodeID) error {
	bw, ok := w.(io.StringWriter)
	if !ok {
		bw = stringWriter{w}
	}
	return d.writeXML(bw, n)
}

type stringWriter struct{ io.Writer }

func (s stringWriter) WriteString(str string) (int, error) {
	return s.Write([]byte(str))
}

func (d *Document) writeXML(w io.StringWriter, n NodeID) error {
	if _, err := w.WriteString("<" + d.TagName(n)); err != nil {
		return err
	}
	for _, a := range d.attrs[n] {
		if _, err := w.WriteString(" " + a.Name + `="` + escapeXML(a.Value) + `"`); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(">"); err != nil {
		return err
	}
	if t := d.text[n]; t != "" {
		if _, err := w.WriteString(escapeXML(t)); err != nil {
			return err
		}
	}
	for _, c := range d.Children(n) {
		if err := d.writeXML(w, c); err != nil {
			return err
		}
	}
	_, err := w.WriteString("</" + d.TagName(n) + ">")
	return err
}

func escapeXML(s string) string {
	if !strings.ContainsAny(s, "<>&\"") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Builder assembles a Document programmatically without going through XML
// text. Calls must form a balanced Open/Close sequence with exactly one
// top-level element.
type Builder struct {
	tags    []string
	tagIDs  map[string]TagID
	nodeTag []TagID
	end     []NodeID
	level   []int32
	parent  []NodeID
	text    []string
	attrs   [][]Attr
	stack   []NodeID
	roots   int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{tagIDs: make(map[string]TagID)}
}

func (b *Builder) tagID(name string) TagID {
	if id, ok := b.tagIDs[name]; ok {
		return id
	}
	id := TagID(len(b.tags))
	b.tags = append(b.tags, name)
	b.tagIDs[name] = id
	return id
}

// Open starts a new element and returns its NodeID.
func (b *Builder) Open(tag string, attrs ...Attr) NodeID {
	id := NodeID(len(b.nodeTag))
	parent := InvalidNode
	level := int32(0)
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		level = b.level[parent] + 1
	} else {
		b.roots++
	}
	b.nodeTag = append(b.nodeTag, b.tagID(tag))
	b.end = append(b.end, id)
	b.level = append(b.level, level)
	b.parent = append(b.parent, parent)
	b.text = append(b.text, "")
	if len(attrs) == 0 {
		b.attrs = append(b.attrs, nil)
	} else {
		b.attrs = append(b.attrs, append([]Attr(nil), attrs...))
	}
	b.stack = append(b.stack, id)
	return id
}

// Text appends character data to the currently open element. Leading and
// trailing whitespace is preserved; purely-whitespace data is dropped.
func (b *Builder) Text(s string) {
	if len(b.stack) == 0 {
		return
	}
	if strings.TrimSpace(s) == "" {
		return
	}
	n := b.stack[len(b.stack)-1]
	if b.text[n] == "" {
		b.text[n] = s
	} else {
		b.text[n] += " " + s
	}
}

// Close ends the most recently opened element.
func (b *Builder) Close() {
	if len(b.stack) == 0 {
		return
	}
	n := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.end[n] = NodeID(len(b.nodeTag) - 1)
}

// Element opens an element containing only text and immediately closes it.
func (b *Builder) Element(tag, text string, attrs ...Attr) NodeID {
	n := b.Open(tag, attrs...)
	b.Text(text)
	b.Close()
	return n
}

// Document finalizes the builder. It fails if elements are unbalanced or
// there is not exactly one root.
func (b *Builder) Document() (*Document, error) {
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d unclosed elements", len(b.stack))
	}
	if b.roots != 1 {
		return nil, fmt.Errorf("xmltree: document must have exactly one root, got %d", b.roots)
	}
	d := &Document{
		tags:    b.tags,
		tagIDs:  b.tagIDs,
		nodeTag: b.nodeTag,
		end:     b.end,
		level:   b.level,
		parent:  b.parent,
		text:    b.text,
		attrs:   b.attrs,
	}
	d.byTag = make([][]NodeID, len(d.tags))
	for n, t := range d.nodeTag {
		d.byTag[t] = append(d.byTag[t], NodeID(n))
	}
	// Pre-order assignment already yields document order per tag, but be
	// defensive in case of future builder extensions.
	for _, l := range d.byTag {
		if !sort.SliceIsSorted(l, func(i, j int) bool { return l[i] < l[j] }) {
			sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		}
	}
	return d, nil
}
