package xmltree

import (
	"bytes"
	"testing"
)

// FuzzParse: the XML loader must never panic, and every accepted document
// must satisfy the interval invariants and survive a binary round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`<a/>`, `<a><b>x</b></a>`, `<a x="1">t</a>`, `<a><a><a/></a></a>`,
		`<a>&lt;</a>`, `<a`, `</a>`, `<a><b></a></b>`, `<?xml?><a/>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		for n := NodeID(0); int(n) < d.Len(); n++ {
			if d.End(n) < n || int(d.End(n)) >= d.Len() {
				t.Fatalf("bad interval at %d for %q", n, src)
			}
			if n > 0 {
				p := d.Parent(n)
				if !(p < n && n <= d.End(p)) {
					t.Fatalf("bad parent nesting at %d for %q", n, src)
				}
			}
		}
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			t.Fatalf("snapshot write failed: %v", err)
		}
		d2, err := ReadBinary(&buf)
		if err != nil || d2.Len() != d.Len() {
			t.Fatalf("snapshot round trip failed: %v", err)
		}
	})
}
