package xmltree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	d := mustParse(t, sampleXML)
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDocsEqual(t, d, got)
}

func assertDocsEqual(t *testing.T, want, got *Document) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if got.SourceBytes() != want.SourceBytes() {
		t.Errorf("SourceBytes = %d, want %d", got.SourceBytes(), want.SourceBytes())
	}
	for n := NodeID(0); int(n) < want.Len(); n++ {
		if got.TagName(n) != want.TagName(n) ||
			got.End(n) != want.End(n) ||
			got.Level(n) != want.Level(n) ||
			got.Parent(n) != want.Parent(n) ||
			got.Text(n) != want.Text(n) {
			t.Fatalf("node %d differs", n)
		}
		wa, ga := want.Attrs(n), got.Attrs(n)
		if len(wa) != len(ga) {
			t.Fatalf("node %d attr count %d != %d", n, len(ga), len(wa))
		}
		for i := range wa {
			if wa[i] != ga[i] {
				t.Fatalf("node %d attr %d differs", n, i)
			}
		}
	}
	// Tag indexes rebuilt correctly.
	for ti := 0; ti < want.NumTags(); ti++ {
		name := want.TagNameOf(TagID(ti))
		if len(got.NodesWithTag(name)) != len(want.NodesWithTag(name)) {
			t.Fatalf("tag %q index differs", name)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("FX"),
		"bad magic":   []byte("NOPE1234"),
		"truncated":   []byte("FXT1\x05"),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBinaryRejectsCorruptedBody(t *testing.T) {
	d := mustParse(t, sampleXML)
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncations anywhere must error, not panic.
	for cut := 5; cut < len(data); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("accepted truncation at %d", cut)
		}
	}
}

func TestBinaryPropertyRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomTree(r)
		var buf bytes.Buffer
		if err := d.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() {
			return false
		}
		for n := NodeID(0); int(n) < d.Len(); n++ {
			if got.TagName(n) != d.TagName(n) || got.Parent(n) != d.Parent(n) ||
				got.End(n) != d.End(n) || got.Text(n) != d.Text(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySpecialContent(t *testing.T) {
	d := mustParse(t, `<a x="quote&quot;here">text with &lt;angle&gt; brackets &amp; unicode ☃</a>`)
	var buf bytes.Buffer
	if err := d.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.Text(0), "☃") {
		t.Errorf("unicode lost: %q", got.Text(0))
	}
	if v, _ := got.Attr(0, "x"); v != `quote"here` {
		t.Errorf("attr = %q", v)
	}
}
