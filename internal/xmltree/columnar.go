package xmltree

import (
	"fmt"

	"flexpath/internal/fxp3"
)

// Columnar (FXP3) persistence for the node table. Unlike the varint
// stream of WriteBinary/ReadBinary, the columnar form is written as
// fixed-width, 8-byte-aligned columns that DecodeColumnar can view in
// place over an mmap'd snapshot: the interval-encoding columns (tag,
// end, level, parent) and the per-tag node lists alias the snapshot
// bytes directly, and the text, tag and attribute strings are interned
// over shared blobs without copying the character data. The heap cost of
// a decoded document is therefore the string/slice headers and the tag
// map — the bulk (text bytes, node columns, postings) stays file-backed
// and reclaimable by the kernel.
//
// Payload layout (fxp3.Enc framing):
//
//	u64 numTags, u64 numNodes, u64 numAttrs, u64 sourceBytes
//	col tagOff  [numTags+1]u64   offsets into tagBlob
//	col tagBlob
//	col nodeTag [numNodes]i32
//	col end     [numNodes]i32
//	col level   [numNodes]i32
//	col parent  [numNodes]i32
//	col textOff [numNodes+1]u64  offsets into textBlob
//	col textBlob
//	col attrCnt [numNodes+1]u64  prefix attribute counts
//	col attrOff [2*numAttrs+1]u64 offsets into attrBlob (name,value interleaved)
//	col attrBlob
//	col byTagOff[numTags+1]u64   prefix counts into byTagIDs
//	col byTagIDs[numNodes]i32    node lists grouped by tag, document order

// EncodeColumnar renders the document as an FXP3 tree-section payload.
func (d *Document) EncodeColumnar() []byte {
	e := &fxp3.Enc{}
	numAttrs := 0
	for _, as := range d.attrs {
		numAttrs += len(as)
	}
	e.U64(uint64(len(d.tags)))
	e.U64(uint64(len(d.nodeTag)))
	e.U64(uint64(numAttrs))
	e.U64(uint64(d.size))

	tagOff := make([]uint64, 0, len(d.tags)+1)
	var tagBlob []byte
	tagOff = append(tagOff, 0)
	for _, t := range d.tags {
		tagBlob = append(tagBlob, t...)
		tagOff = append(tagOff, uint64(len(tagBlob)))
	}
	fxp3.ColU64(e, tagOff)
	e.Col(tagBlob)

	fxp3.ColI32(e, d.nodeTag)
	fxp3.ColI32(e, d.end)
	fxp3.ColI32(e, d.level)
	fxp3.ColI32(e, d.parent)

	textOff := make([]uint64, 0, len(d.text)+1)
	textOff = append(textOff, 0)
	blobLen := 0
	for _, t := range d.text {
		blobLen += len(t)
		textOff = append(textOff, uint64(blobLen))
	}
	textBlob := make([]byte, 0, blobLen)
	for _, t := range d.text {
		textBlob = append(textBlob, t...)
	}
	fxp3.ColU64(e, textOff)
	e.Col(textBlob)

	attrCnt := make([]uint64, 0, len(d.attrs)+1)
	attrCnt = append(attrCnt, 0)
	attrOff := make([]uint64, 0, 2*numAttrs+1)
	attrOff = append(attrOff, 0)
	var attrBlob []byte
	for _, as := range d.attrs {
		attrCnt = append(attrCnt, attrCnt[len(attrCnt)-1]+uint64(len(as)))
		for _, a := range as {
			attrBlob = append(attrBlob, a.Name...)
			attrOff = append(attrOff, uint64(len(attrBlob)))
			attrBlob = append(attrBlob, a.Value...)
			attrOff = append(attrOff, uint64(len(attrBlob)))
		}
	}
	fxp3.ColU64(e, attrCnt)
	fxp3.ColU64(e, attrOff)
	e.Col(attrBlob)

	byTagOff := make([]uint64, 0, len(d.tags)+1)
	byTagOff = append(byTagOff, 0)
	byTagIDs := make([]NodeID, 0, len(d.nodeTag))
	for t := range d.tags {
		byTagIDs = append(byTagIDs, d.byTag[t]...)
		byTagOff = append(byTagOff, uint64(len(byTagIDs)))
	}
	fxp3.ColU64(e, byTagOff)
	fxp3.ColI32(e, byTagIDs)
	return e.Finish()
}

// DecodeColumnar restores a document from an EncodeColumnar payload,
// aliasing the payload's columns and string bytes in place. The caller
// must keep the payload's backing memory (typically an mmap) alive for
// the life of the document and everything derived from it.
func DecodeColumnar(payload []byte) (*Document, error) {
	dec := fxp3.NewDec(payload)
	numTags := int(dec.U64())
	numNodes := int(dec.U64())
	numAttrs := int(dec.U64())
	size := dec.U64()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: %w", err)
	}
	if numTags > maxBinaryCount || numNodes > maxBinaryCount || numAttrs > maxBinaryCount {
		return nil, fmt.Errorf("xmltree: snapshot: implausible counts (%d tags, %d nodes, %d attrs)",
			numTags, numNodes, numAttrs)
	}

	tagOff := fxp3.ViewU64[uint64](dec, numTags+1)
	tagBlob := dec.Col()
	nodeTag := fxp3.ViewI32[TagID](dec, numNodes)
	end := fxp3.ViewI32[NodeID](dec, numNodes)
	level := fxp3.ViewI32[int32](dec, numNodes)
	parent := fxp3.ViewI32[NodeID](dec, numNodes)
	textOff := fxp3.ViewU64[uint64](dec, numNodes+1)
	textBlob := dec.Col()
	attrCnt := fxp3.ViewU64[uint64](dec, numNodes+1)
	attrOff := fxp3.ViewU64[uint64](dec, 2*numAttrs+1)
	attrBlob := dec.Col()
	byTagOff := fxp3.ViewU64[uint64](dec, numTags+1)
	byTagIDs := fxp3.ViewI32[NodeID](dec, numNodes)
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: %w", err)
	}

	d := &Document{
		tags:    make([]string, numTags),
		tagIDs:  make(map[string]TagID, numTags),
		nodeTag: nodeTag,
		end:     end,
		level:   level,
		parent:  parent,
		size:    int64(size),
	}
	var ok bool
	for i := range d.tags {
		if d.tags[i], ok = interned(tagBlob, tagOff, i); !ok {
			return nil, fmt.Errorf("xmltree: snapshot: tag table offsets out of range")
		}
		d.tagIDs[d.tags[i]] = TagID(i)
	}

	// The same structural invariants ReadBinary enforces: out-of-range
	// values would index out of bounds at query time.
	for n := 0; n < numNodes; n++ {
		if t := int(nodeTag[n]); t < 0 || t >= numTags {
			return nil, fmt.Errorf("xmltree: snapshot: node %d has invalid tag %d", n, t)
		}
		if e := int(end[n]); e < n || e >= numNodes {
			return nil, fmt.Errorf("xmltree: snapshot: node %d has invalid interval end %d", n, e)
		}
		if p := int(parent[n]); p >= n || (p < 0 && !(n == 0 && p == -1)) {
			return nil, fmt.Errorf("xmltree: snapshot: node %d has invalid parent %d", n, p)
		}
	}

	d.text = make([]string, numNodes)
	for n := 0; n < numNodes; n++ {
		if d.text[n], ok = interned(textBlob, textOff, n); !ok {
			return nil, fmt.Errorf("xmltree: snapshot: text offsets out of range")
		}
	}

	d.attrs = make([][]Attr, numNodes)
	if numAttrs > 0 {
		flat := make([]Attr, numAttrs)
		for i := range flat {
			if flat[i].Name, ok = interned(attrBlob, attrOff, 2*i); !ok {
				return nil, fmt.Errorf("xmltree: snapshot: attribute offsets out of range")
			}
			if flat[i].Value, ok = interned(attrBlob, attrOff, 2*i+1); !ok {
				return nil, fmt.Errorf("xmltree: snapshot: attribute offsets out of range")
			}
		}
		for n := 0; n < numNodes; n++ {
			lo, hi := attrCnt[n], attrCnt[n+1]
			if lo > hi || hi > uint64(numAttrs) {
				return nil, fmt.Errorf("xmltree: snapshot: attribute counts out of range")
			}
			if lo < hi {
				d.attrs[n] = flat[lo:hi:hi]
			}
		}
	} else {
		// attrCnt must still be monotone-zero; no per-node slices needed.
		if attrCnt[numNodes] != 0 {
			return nil, fmt.Errorf("xmltree: snapshot: attribute counts out of range")
		}
	}

	for _, n := range byTagIDs {
		if n < 0 || int(n) >= numNodes {
			return nil, fmt.Errorf("xmltree: snapshot: per-tag node %d out of range", n)
		}
	}
	d.byTag = make([][]NodeID, numTags)
	for t := 0; t < numTags; t++ {
		lo, hi := byTagOff[t], byTagOff[t+1]
		if lo > hi || hi > uint64(numNodes) {
			return nil, fmt.Errorf("xmltree: snapshot: per-tag node lists out of range")
		}
		if lo < hi {
			d.byTag[t] = byTagIDs[lo:hi:hi]
		}
	}
	return d, nil
}

// interned returns element i of a blob-backed string table, aliasing the
// blob's bytes.
func interned(blob []byte, off []uint64, i int) (string, bool) {
	lo, hi := off[i], off[i+1]
	if lo > hi || hi > uint64(len(blob)) {
		return "", false
	}
	s, ok := fxp3.String(blob, lo, hi-lo)
	return s, ok
}
