package xmltree

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary snapshot format for parsed documents. Re-parsing large XML is
// the dominant load cost; a snapshot restores the node table directly.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "FXT1"
//	numTags, then each tag as len-prefixed UTF-8
//	numNodes
//	per node: tag id, end delta (end-id), level, parent+1,
//	          text (len-prefixed), attr count, attrs (name,value pairs)
//	source byte count (may be 0)

var binaryMagic = [4]byte{'F', 'X', 'T', '1'}

// maxBinaryCount caps counts read from snapshots so corrupted or
// malicious input cannot trigger enormous allocations.
const maxBinaryCount = 1 << 31

// WriteBinary writes a snapshot of the document.
func (d *Document) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(d.tags)))
	for _, t := range d.tags {
		writeString(bw, t)
	}
	writeUvarint(bw, uint64(len(d.nodeTag)))
	for n := range d.nodeTag {
		writeUvarint(bw, uint64(d.nodeTag[n]))
		writeUvarint(bw, uint64(d.end[n])-uint64(n))
		writeUvarint(bw, uint64(d.level[n]))
		writeUvarint(bw, uint64(d.parent[n]+1))
		writeString(bw, d.text[n])
		writeUvarint(bw, uint64(len(d.attrs[n])))
		for _, a := range d.attrs[n] {
			writeString(bw, a.Name)
			writeString(bw, a.Value)
		}
	}
	writeUvarint(bw, uint64(d.size))
	return bw.Flush()
}

// ReadBinary restores a document from a snapshot produced by WriteBinary.
func ReadBinary(r io.Reader) (*Document, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("xmltree: not a document snapshot (bad magic)")
	}
	numTags, err := readCount(br)
	if err != nil {
		return nil, err
	}
	d := &Document{
		tags:   make([]string, numTags),
		tagIDs: make(map[string]TagID, numTags),
	}
	for i := range d.tags {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		d.tags[i] = s
		d.tagIDs[s] = TagID(i)
	}
	numNodes, err := readCount(br)
	if err != nil {
		return nil, err
	}
	d.nodeTag = make([]TagID, numNodes)
	d.end = make([]NodeID, numNodes)
	d.level = make([]int32, numNodes)
	d.parent = make([]NodeID, numNodes)
	d.text = make([]string, numNodes)
	d.attrs = make([][]Attr, numNodes)
	for n := 0; n < numNodes; n++ {
		tag, err := readCount(br)
		if err != nil {
			return nil, err
		}
		if tag >= numTags {
			return nil, fmt.Errorf("xmltree: snapshot: node %d has invalid tag %d", n, tag)
		}
		d.nodeTag[n] = TagID(tag)
		endDelta, err := readCount(br)
		if err != nil {
			return nil, err
		}
		end := n + endDelta
		if end >= numNodes {
			return nil, fmt.Errorf("xmltree: snapshot: node %d has invalid interval end %d", n, end)
		}
		d.end[n] = NodeID(end)
		level, err := readCount(br)
		if err != nil {
			return nil, err
		}
		d.level[n] = int32(level)
		parentPlus1, err := readCount(br)
		if err != nil {
			return nil, err
		}
		parent := parentPlus1 - 1
		if parent >= n && !(n == 0 && parent == -1) {
			return nil, fmt.Errorf("xmltree: snapshot: node %d has invalid parent %d", n, parent)
		}
		d.parent[n] = NodeID(parent)
		if d.text[n], err = readString(br); err != nil {
			return nil, err
		}
		nAttrs, err := readCount(br)
		if err != nil {
			return nil, err
		}
		if nAttrs > 0 {
			attrs := make([]Attr, nAttrs)
			for i := range attrs {
				if attrs[i].Name, err = readString(br); err != nil {
					return nil, err
				}
				if attrs[i].Value, err = readString(br); err != nil {
					return nil, err
				}
			}
			d.attrs[n] = attrs
		}
	}
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("xmltree: snapshot: %w", err)
	}
	if size > math.MaxInt64 {
		return nil, errors.New("xmltree: snapshot: invalid source size")
	}
	d.size = int64(size)
	d.byTag = make([][]NodeID, len(d.tags))
	for n, t := range d.nodeTag {
		d.byTag[t] = append(d.byTag[t], NodeID(n))
	}
	return d, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // surfaced by the final Flush
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s) //nolint:errcheck // surfaced by the final Flush
}

func readCount(r *bufio.Reader) (int, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("xmltree: snapshot: %w", err)
	}
	if v > maxBinaryCount {
		return 0, fmt.Errorf("xmltree: snapshot: implausible count %d", v)
	}
	return int(v), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readCount(r)
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("xmltree: snapshot: %w", err)
	}
	return string(buf), nil
}
