// Package planner implements the cost-based algorithm choice behind the
// public Auto search mode: per query it predicts the evaluation cost of
// DPO, SSO and Hybrid from document statistics and the shape of the
// relaxation chain, and picks the predicted winner.
//
// The model follows the paper's §6 findings about when each algorithm
// wins: DPO when few relaxation levels admit the top K (its per-level
// passes stay small), the plan-based algorithms when many levels must be
// encoded (one pass beats repeated re-evaluation), and Hybrid over SSO
// because SSO pays a resort of the intermediate list at every join.
// Costs are expressed in abstract work units — candidate nodes scanned
// plus tuples materialized — combining the selectivity estimator's
// per-level answer estimates with per-plan join-cost inputs from
// internal/exec. Two online mechanisms correct the static model as
// traffic flows:
//
//   - a per-algorithm EWMA of observed nanoseconds per predicted unit
//     calibrates the unit scale (and exposes a calibration error, the
//     mean |log(actual/predicted)|, so operators can see how trustworthy
//     the model currently is), and
//   - an EWMA of restarts per plan-based run demotes SSO/Hybrid to DPO
//     when selectivity estimates prove unreliable for the workload:
//     restarts mean the estimator keeps undershooting K, and DPO's
//     level-at-a-time evaluation is the strategy that never restarts.
package planner

import (
	"fmt"
	"math"
	"sync"
	"time"

	"flexpath/internal/core"
	"flexpath/internal/exec"
	"flexpath/internal/rank"
	"flexpath/internal/stats"
)

// Algo identifies one of the three dispatchable top-K algorithms.
type Algo int

const (
	// DPO evaluates one relaxation level at a time.
	DPO Algo = iota
	// SSO runs one encoded plan with score-sorted intermediate lists.
	SSO
	// Hybrid runs one encoded plan with signature buckets.
	Hybrid

	numAlgos int = iota
)

// String returns the algorithm name as used in metrics labels.
func (a Algo) String() string {
	switch a {
	case DPO:
		return "DPO"
	case SSO:
		return "SSO"
	}
	return "Hybrid"
}

// Names returns the algorithm names in declaration order; serving layers
// use it to render per-algorithm state deterministically.
func Names() []string {
	out := make([]string, numAlgos)
	for i := range out {
		out[i] = Algo(i).String()
	}
	return out
}

// Cost-model constants. The absolute scale cancels in the comparison;
// only the ratios matter, and the per-algorithm EWMA calibration absorbs
// residual scale error between algorithms.
const (
	// optionalVarFactor inflates an encoded plan's tuple work per
	// optional variable: optional joins cannot reject tuples, so every
	// optional variable widens the intermediate result.
	optionalVarFactor = 0.15
	// bucketFactor is Hybrid's per-tuple bucket bookkeeping.
	bucketFactor = 0.05
	// sortFactor scales SSO's per-join resort term (tuples · log tuples).
	// Re-fit for the columnar execution core: the typed SortFunc resort
	// over arena scratch costs visibly less per tuple than the reflective
	// sort.Slice the old 0.30 was tuned against.
	sortFactor = 0.20
	// calibAlpha is the EWMA weight of a new ns-per-unit sample.
	calibAlpha = 0.3
	// restartAlpha is the EWMA weight of a new restarts-per-run sample.
	restartAlpha = 0.2
	// guardMinRuns is how many plan-based runs must be observed before
	// the restart guard may trigger.
	guardMinRuns = 8
	// guardRate is the restarts-per-run EWMA above which the guard
	// demotes plan-based choices to DPO.
	guardRate = 1.0
)

// Reason keys (low-cardinality, used as metric labels).
const (
	// ReasonMinCost marks a normal minimum-predicted-cost choice.
	ReasonMinCost = "min-cost"
	// ReasonRestartGuard marks a demotion to DPO by the restart guard.
	ReasonRestartGuard = "restart-guard"
	// ReasonPlanError marks a fallback to DPO because the encoded plan
	// could not be built (DPO builds its own per-level plans and reports
	// the underlying error itself).
	ReasonPlanError = "plan-error"
)

// Choice is one planning decision. It carries the predicted units so the
// observation that follows the run can be matched back to the prediction.
type Choice struct {
	// Algo is the dispatched algorithm.
	Algo Algo
	// Reason is the low-cardinality reason key (ReasonMinCost, ...).
	Reason string
	// Explain is a human-readable account of the decision.
	Explain string
	// Level is the predicted admitting level: the shortest chain prefix
	// whose relaxed query is estimated to produce at least K answers.
	Level int
	// Units and PredictedNs are the per-algorithm predicted work units
	// and calibrated nanoseconds, indexed by Algo.
	Units       [numAlgos]float64
	PredictedNs [numAlgos]float64
}

// ewma is an exponentially weighted moving average seeded by its first
// sample. During warmup it tracks the cumulative mean: a new sample gets
// weight max(alpha, 1/n), so the first few observations are averaged
// instead of letting the very first one dominate — recalibration for the
// columnar kernels showed the old first-sample seeding pinned ns-per-unit
// to whichever (cold-cache) run happened to arrive first.
type ewma struct {
	v float64
	n uint64
}

func (e *ewma) add(x, alpha float64) {
	e.n++
	if w := 1 / float64(e.n); w > alpha {
		alpha = w
	}
	e.v = alpha*x + (1-alpha)*e.v
}

// Planner holds the per-document planning state: the estimator the cost
// model reads and the calibration the observations feed. Safe for
// concurrent use.
type Planner struct {
	est *stats.Estimator

	mu sync.Mutex
	// nsPerUnit calibrates predicted units to observed nanoseconds, per
	// algorithm (units are comparable across algorithms only up to a
	// per-algorithm constant the static model cannot know).
	nsPerUnit [numAlgos]ewma
	// calErr tracks |log(actual/predicted)| per algorithm — 0 means the
	// calibrated model currently predicts its own run times perfectly.
	calErr [numAlgos]ewma
	// restarts tracks restarts per observed plan-based run.
	restarts ewma
	choices  [numAlgos]uint64
	reasons  map[string]uint64
	observed uint64
}

// New returns a planner reading the given estimator.
func New(est *stats.Estimator) *Planner {
	return &Planner{est: est, reasons: make(map[string]uint64)}
}

// Choose predicts the cheapest algorithm for one top-K search over the
// chain. It never fails: when the encoded plan cannot be built it falls
// back to DPO and lets DPO surface the error. A non-nil template
// memoizes the admitting level and the encoded plan across searches of
// the same shape (and shares them with the dispatched algorithm within
// one search), so repeated Auto queries skip the per-level estimator
// loop and the plan build here — the work obs.StagePlan prices.
func (p *Planner) Choose(chain *core.Chain, tmpl *core.Template, k int, scheme rank.Scheme) Choice {
	if k < 1 {
		k = 1
	}
	c := Choice{Level: p.admittingLevel(chain, tmpl, k, scheme)}
	c.Units[DPO] = p.dpoUnits(chain, c.Level, scheme)

	plan, err := planAt(chain, tmpl, c.Level)
	if err != nil {
		c.Algo, c.Reason = DPO, ReasonPlanError
		c.Explain = fmt.Sprintf("level %d plan failed (%v); falling back to DPO", c.Level, err)
		p.record(&c)
		return c
	}
	cost := exec.EstimateCost(plan)
	// Estimated answers of the loosest encoded level stand in for the
	// intermediate tuple population of the single-plan algorithms.
	t := p.est.Estimate(chain.QueryAt(c.Level))
	tuples := t * float64(cost.Vars) * (1 + optionalVarFactor*float64(cost.OptionalVars))
	// MergeUnits prices the structural joins under the galloping kernels
	// (near-linear merges with logarithmic anchor probes) instead of the
	// raw candidate population the pre-columnar model charged.
	planBase := cost.MergeUnits + tuples
	// An undershooting estimate forces the plan algorithms to extend the
	// prefix and rerun the whole plan; charge the workload's observed
	// restart rate as expected extra passes.
	rerun := 1 + p.restartRate()
	c.Units[Hybrid] = (planBase + bucketFactor*tuples) * rerun
	c.Units[SSO] = (planBase + sortFactor*tuples*math.Log2(2+t)) * rerun

	p.mu.Lock()
	for a := 0; a < numAlgos; a++ {
		c.PredictedNs[a] = c.Units[a] * p.nsPerUnitLocked(Algo(a))
	}
	guard := p.restarts.n >= guardMinRuns && p.restarts.v > guardRate
	p.mu.Unlock()

	// Preference order breaks exact ties toward the cheaper-to-be-wrong
	// choices: Hybrid (never resorts), then DPO, then SSO.
	c.Algo, c.Reason = Hybrid, ReasonMinCost
	if c.PredictedNs[DPO] < c.PredictedNs[c.Algo] {
		c.Algo = DPO
	}
	if c.PredictedNs[SSO] < c.PredictedNs[c.Algo] {
		c.Algo = SSO
	}
	if guard && c.Algo != DPO {
		c.Algo, c.Reason = DPO, ReasonRestartGuard
	}
	c.Explain = fmt.Sprintf(
		"level %d/%d, est %.0f answers for K=%d; predicted ms dpo=%.2f sso=%.2f hybrid=%.2f (%s)",
		c.Level, chain.Len(), t, k,
		c.PredictedNs[DPO]/1e6, c.PredictedNs[SSO]/1e6, c.PredictedNs[Hybrid]/1e6, c.Reason)
	p.record(&c)
	return c
}

// record counts the decision.
func (p *Planner) record(c *Choice) {
	p.mu.Lock()
	p.choices[c.Algo]++
	p.reasons[c.Reason]++
	p.mu.Unlock()
}

// Observe feeds one finished Auto run back into the calibrator: the
// wall time of the dispatched algorithm and the restarts its metrics
// reported. Cancelled or truncated runs must not be observed.
func (p *Planner) Observe(c Choice, took time.Duration, restarts int) {
	ns := float64(took)
	if ns <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observed++
	if u := c.Units[c.Algo]; u > 0 {
		if predicted := u * p.nsPerUnitLocked(c.Algo); predicted > 0 {
			p.calErr[c.Algo].add(math.Abs(math.Log(ns/predicted)), calibAlpha)
		}
		p.nsPerUnit[c.Algo].add(ns/u, calibAlpha)
	}
	if c.Algo != DPO {
		p.restarts.add(float64(restarts), restartAlpha)
	}
}

// nsPerUnitLocked returns the calibrated scale for a, defaulting to 1
// (raw unit comparison) before any observation. Callers hold p.mu.
func (p *Planner) nsPerUnitLocked(a Algo) float64 {
	if p.nsPerUnit[a].n == 0 {
		return 1
	}
	return p.nsPerUnit[a].v
}

// restartRate returns the restarts-per-run EWMA (0 before observations).
func (p *Planner) restartRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.restarts.n == 0 {
		return 0
	}
	return p.restarts.v
}

// planAt builds the encoded plan for the level, through the template's
// memo when one is attached.
func planAt(chain *core.Chain, tmpl *core.Template, level int) (*exec.Plan, error) {
	if tmpl != nil {
		return tmpl.PlanAt(level)
	}
	return chain.PlanAt(level)
}

// admittingLevel predicts the smallest chain prefix whose relaxed query
// is estimated to produce at least k answers, mirroring the prefix rule
// the plan-based algorithms use (keyword-first must encode the whole
// chain; the combined scheme extends the prefix per §5.1). The rule is
// deliberately identical to topk's choosePrefix, so with a template
// attached the two share one memoized level per (K, scheme).
func (p *Planner) admittingLevel(chain *core.Chain, tmpl *core.Template, k int, scheme rank.Scheme) int {
	key := core.LevelKey{K: k, Scheme: scheme}
	if tmpl != nil {
		if j, ok := tmpl.Level(key); ok {
			return j
		}
	}
	j := chain.Len()
	if scheme != rank.KeywordFirst {
		j = 0
		for ; j <= chain.Len(); j++ {
			if p.est.Estimate(chain.QueryAt(j)) >= float64(k) {
				break
			}
		}
		if j > chain.Len() {
			j = chain.Len()
		}
		if scheme == rank.Combined {
			m := float64(chain.Original.NumContains())
			base := chain.SSAt(j)
			for j < chain.Len() && chain.SSAt(j+1) > base-m {
				j++
			}
		}
	}
	if tmpl != nil {
		tmpl.SetLevel(key, j)
	}
	return j
}

// dpoUnits sums the per-level pass costs DPO is predicted to pay: one
// full evaluation of every level up to its stop level, which extends
// past the admitting level through score ties exactly as DPO's pruning
// rule does.
func (p *Planner) dpoUnits(chain *core.Chain, level int, scheme rank.Scheme) float64 {
	stop := level
	switch scheme {
	case rank.StructureFirst:
		for stop < chain.Len() && chain.SSAt(stop+1) >= chain.SSAt(level) {
			stop++
		}
	case rank.Combined:
		m := float64(chain.Original.NumContains())
		for stop < chain.Len() && chain.SSAt(stop+1) > chain.SSAt(level)-m {
			stop++
		}
	case rank.KeywordFirst:
		stop = chain.Len()
	}
	units := 0.0
	for j := 0; j <= stop; j++ {
		units += p.est.PassUnits(chain.QueryAt(j))
	}
	return units
}

// Stats is a snapshot of the planner's decisions and calibration state,
// keyed by algorithm name where per-algorithm.
type Stats struct {
	// Choices counts dispatches per algorithm; Reasons counts decisions
	// per reason key.
	Choices map[string]uint64 `json:"choices"`
	Reasons map[string]uint64 `json:"reasons"`
	// NsPerUnit is the calibrated nanoseconds per predicted work unit
	// (absent until the algorithm has been observed at least once).
	NsPerUnit map[string]float64 `json:"ns_per_unit"`
	// CalibrationError is the EWMA of |log(actual/predicted)| run time;
	// 0 means the calibrated model is currently exact, ln 2 ≈ 0.69 means
	// predictions are off by about 2x.
	CalibrationError map[string]float64 `json:"calibration_error"`
	// RestartRate is the EWMA of restarts per plan-based run feeding the
	// guard; Observations counts calibrated runs.
	RestartRate  float64 `json:"restart_rate"`
	Observations uint64  `json:"observations"`
}

// Snapshot returns the current planner state.
func (p *Planner) Snapshot() Stats {
	s := Stats{
		Choices:          make(map[string]uint64),
		Reasons:          make(map[string]uint64),
		NsPerUnit:        make(map[string]float64),
		CalibrationError: make(map[string]float64),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for a := 0; a < numAlgos; a++ {
		name := Algo(a).String()
		if p.choices[a] > 0 {
			s.Choices[name] = p.choices[a]
		}
		if p.nsPerUnit[a].n > 0 {
			s.NsPerUnit[name] = p.nsPerUnit[a].v
		}
		if p.calErr[a].n > 0 {
			s.CalibrationError[name] = p.calErr[a].v
		}
	}
	for r, n := range p.reasons {
		s.Reasons[r] = n
	}
	if p.restarts.n > 0 {
		s.RestartRate = p.restarts.v
	}
	s.Observations = p.observed
	return s
}
