package planner

import (
	"math"
	"testing"
	"time"

	"flexpath/internal/core"
	"flexpath/internal/ir"
	"flexpath/internal/rank"
	"flexpath/internal/stats"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

const articlesXML = `
<collection>
  <article><title>streaming xml</title>
    <section><algorithm>merge</algorithm><paragraph>xml streaming passes</paragraph></section>
  </article>
  <article><title>layouts</title>
    <section><title>xml streaming storage</title><algorithm>split</algorithm><paragraph>pages</paragraph></section>
  </article>
  <article><title>joins</title>
    <section><paragraph>xml streaming joins</paragraph></section>
    <appendix><algorithm>twig</algorithm></appendix>
  </article>
  <article><title>other</title>
    <section><paragraph>nothing relevant</paragraph></section>
  </article>
</collection>`

const srcQ1 = `//article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]`

type fixture struct {
	doc *xmltree.Document
	ix  *ir.Index
	st  *stats.Stats
	est *stats.Estimator
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	doc, err := xmltree.ParseString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	ix := ir.NewIndex(doc)
	st := stats.Collect(doc)
	return &fixture{doc: doc, ix: ix, st: st, est: stats.NewEstimator(st, ix)}
}

func (f *fixture) chain(t testing.TB, src string) *core.Chain {
	t.Helper()
	c, err := core.BuildChain(f.doc, f.ix, f.st, rank.UniformWeights(), tpq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChooseDeterministicAndCounted(t *testing.T) {
	f := newFixture(t)
	chain := f.chain(t, srcQ1)
	p := New(f.est)
	first := p.Choose(chain, nil, 3, rank.StructureFirst)
	if first.Reason != ReasonMinCost {
		t.Fatalf("reason = %q, want %q", first.Reason, ReasonMinCost)
	}
	if first.Explain == "" {
		t.Error("empty Explain")
	}
	for i := 0; i < 4; i++ {
		// Without observations the model is static: same query, same
		// choice.
		if c := p.Choose(chain, nil, 3, rank.StructureFirst); c.Algo != first.Algo || c.Level != first.Level {
			t.Fatalf("choice flapped without observations: %+v vs %+v", c, first)
		}
	}
	s := p.Snapshot()
	if s.Choices[first.Algo.String()] != 5 {
		t.Errorf("choices = %v, want 5 × %s", s.Choices, first.Algo)
	}
	if s.Reasons[ReasonMinCost] != 5 {
		t.Errorf("reasons = %v", s.Reasons)
	}
	if s.Observations != 0 || len(s.NsPerUnit) != 0 {
		t.Errorf("unexpected calibration before any Observe: %+v", s)
	}
}

func TestAdmittingLevelMatchesEstimator(t *testing.T) {
	f := newFixture(t)
	chain := f.chain(t, srcQ1)
	p := New(f.est)
	// keyword-first must encode the whole chain.
	if c := p.Choose(chain, nil, 2, rank.KeywordFirst); c.Level != chain.Len() {
		t.Errorf("keyword-first level = %d, want %d", c.Level, chain.Len())
	}
	// A huge K exhausts the chain.
	if c := p.Choose(chain, nil, 1<<20, rank.StructureFirst); c.Level != chain.Len() {
		t.Errorf("huge-K level = %d, want %d", c.Level, chain.Len())
	}
	// Levels are monotone in K.
	prev := 0
	for _, k := range []int{1, 2, 4, 8, 16} {
		c := p.Choose(chain, nil, k, rank.StructureFirst)
		if c.Level < prev {
			t.Errorf("level decreased at K=%d: %d < %d", k, c.Level, prev)
		}
		prev = c.Level
	}
}

func TestCalibrationPullsChoice(t *testing.T) {
	f := newFixture(t)
	chain := f.chain(t, srcQ1)
	p := New(f.est)
	first := p.Choose(chain, nil, 3, rank.StructureFirst)
	// Feed grossly slow observations for the chosen algorithm: its
	// calibrated ns-per-unit must grow until the planner switches away.
	switched := false
	for i := 0; i < 20; i++ {
		c := p.Choose(chain, nil, 3, rank.StructureFirst)
		if c.Algo != first.Algo {
			switched = true
			break
		}
		p.Observe(c, time.Second, 0)
	}
	if !switched {
		t.Fatalf("planner never abandoned %v despite 1s observed runs", first.Algo)
	}
	s := p.Snapshot()
	if s.NsPerUnit[first.Algo.String()] <= 1 {
		t.Errorf("ns_per_unit not calibrated: %+v", s)
	}
	if s.Observations == 0 {
		t.Error("observations not counted")
	}
}

func TestCalibrationErrorShrinksOnStableRuntimes(t *testing.T) {
	f := newFixture(t)
	chain := f.chain(t, srcQ1)
	p := New(f.est)
	c := p.Choose(chain, nil, 3, rank.StructureFirst)
	for i := 0; i < 30; i++ {
		p.Observe(c, 5*time.Millisecond, 0)
	}
	s := p.Snapshot()
	got, ok := s.CalibrationError[c.Algo.String()]
	if !ok {
		t.Fatalf("no calibration error recorded: %+v", s)
	}
	// After repeated identical run times the calibrated prediction must
	// be near-exact (|log actual/predicted| → 0).
	if got > 0.05 {
		t.Errorf("calibration error = %v, want < 0.05", got)
	}
}

func TestRestartGuardDemotesToDPO(t *testing.T) {
	f := newFixture(t)
	chain := f.chain(t, srcQ1)
	p := New(f.est)
	c := p.Choose(chain, nil, 3, rank.StructureFirst)
	if c.Algo == DPO {
		t.Skip("model already picks DPO for this fixture; guard unobservable")
	}
	// Report heavy restarting but near-zero run times: the cost model
	// alone would keep preferring the plan-based algorithm, so a DPO
	// choice can only come from the guard.
	for i := 0; i < guardMinRuns+2; i++ {
		p.Observe(c, time.Nanosecond, 3)
	}
	g := p.Choose(chain, nil, 3, rank.StructureFirst)
	if g.Algo != DPO || g.Reason != ReasonRestartGuard {
		t.Fatalf("guard did not demote: algo=%v reason=%q", g.Algo, g.Reason)
	}
	s := p.Snapshot()
	if s.RestartRate <= guardRate {
		t.Errorf("restart rate = %v, want > %v", s.RestartRate, guardRate)
	}
	if s.Reasons[ReasonRestartGuard] == 0 {
		t.Error("restart-guard reason not counted")
	}
}

func TestPassUnitsPositiveAndMonotone(t *testing.T) {
	f := newFixture(t)
	chain := f.chain(t, srcQ1)
	prev := 0.0
	for j := 0; j <= chain.Len(); j++ {
		u := f.est.PassUnits(chain.QueryAt(j))
		if u <= 0 || math.IsNaN(u) {
			t.Fatalf("PassUnits(level %d) = %v", j, u)
		}
		_ = prev
		prev = u
	}
}

func TestAlgoNames(t *testing.T) {
	names := Names()
	want := []string{"DPO", "SSO", "Hybrid"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("name %d = %q, want %q", i, names[i], want[i])
		}
	}
}
