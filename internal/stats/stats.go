// Package stats collects the document statistics FleXPath's ranking and
// selectivity estimation depend on: per-tag element counts #(t),
// parent-child pair counts #pc(t1,t2), ancestor-descendant pair counts
// #ad(t1,t2) (§4.3.1), and full-text match counts per context tag.
//
// It also implements the selectivity estimator the SSO algorithm requires
// (§5.1.2, §6): exact node and edge counts combined under a uniform
// element-distribution assumption, the same technique the paper describes
// building ("suppose 60% of A's have a B child; we assume this fraction is
// independent of A's location").
package stats

import (
	"math"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmltree"
)

type tagPair struct{ a, b xmltree.TagID }

// Stats holds document statistics. Collect once per document; safe for
// concurrent readers.
type Stats struct {
	doc      *xmltree.Document
	tagCount []int
	pcCount  map[tagPair]int
	adCount  map[tagPair]int
	// pcParents / adAncestors count DISTINCT parents/ancestors: the
	// number of t1 elements with at least one t2 child / descendant.
	// These are the "fraction of A's that have a B" statistics the
	// paper's estimator is built on (§6, Selectivity estimation).
	pcParents   map[tagPair]int
	adAncestors map[tagPair]int
}

// Collect scans the document and gathers tag and edge statistics. The
// ancestor-descendant counts walk each node's ancestor chain, which is
// O(n·depth); distinct-ancestor counts use epoch marking for O(n) per
// distinct descendant tag.
func Collect(doc *xmltree.Document) *Stats {
	s := &Stats{
		doc:         doc,
		tagCount:    make([]int, doc.NumTags()),
		pcCount:     make(map[tagPair]int),
		adCount:     make(map[tagPair]int),
		pcParents:   make(map[tagPair]int),
		adAncestors: make(map[tagPair]int),
	}
	for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
		t := doc.Tag(n)
		s.tagCount[t]++
		if p := doc.Parent(n); p != xmltree.InvalidNode {
			s.pcCount[tagPair{doc.Tag(p), t}]++
		}
		for a := doc.Parent(n); a != xmltree.InvalidNode; a = doc.Parent(a) {
			s.adCount[tagPair{doc.Tag(a), t}]++
		}
	}
	// Distinct parents: per node, deduplicate child tags directly.
	var childTags []xmltree.TagID
	for n := xmltree.NodeID(0); int(n) < doc.Len(); n++ {
		childTags = childTags[:0]
		for c := n + 1; c <= doc.End(n); c = doc.End(c) + 1 {
			ct := doc.Tag(c)
			dup := false
			for _, seen := range childTags {
				if seen == ct {
					dup = true
					break
				}
			}
			if !dup {
				childTags = append(childTags, ct)
				s.pcParents[tagPair{doc.Tag(n), ct}]++
			}
		}
	}
	// Distinct ancestors per descendant tag, with epoch marking so each
	// ancestor is visited at most once per tag.
	epoch := make([]int32, doc.Len())
	for i := range epoch {
		epoch[i] = -1
	}
	for t2 := xmltree.TagID(0); int(t2) < doc.NumTags(); t2++ {
		for _, m := range doc.NodesWithTagID(t2) {
			for a := doc.Parent(m); a != xmltree.InvalidNode; a = doc.Parent(a) {
				if epoch[a] == int32(t2) {
					break // a and all its ancestors already counted
				}
				epoch[a] = int32(t2)
				s.adAncestors[tagPair{doc.Tag(a), t2}]++
			}
		}
	}
	return s
}

// Doc returns the measured document.
func (s *Stats) Doc() *xmltree.Document { return s.doc }

// Count returns #(t): the number of elements with the given tag.
func (s *Stats) Count(tag string) int {
	id := s.doc.TagByName(tag)
	if id == xmltree.InvalidTag {
		return 0
	}
	return s.tagCount[id]
}

// PC returns #pc(t1,t2): the number of parent-child pairs with those tags.
func (s *Stats) PC(t1, t2 string) int {
	a, b := s.doc.TagByName(t1), s.doc.TagByName(t2)
	if a == xmltree.InvalidTag || b == xmltree.InvalidTag {
		return 0
	}
	return s.pcCount[tagPair{a, b}]
}

// AD returns #ad(t1,t2): the number of ancestor-descendant pairs with
// those tags.
func (s *Stats) AD(t1, t2 string) int {
	a, b := s.doc.TagByName(t1), s.doc.TagByName(t2)
	if a == xmltree.InvalidTag || b == xmltree.InvalidTag {
		return 0
	}
	return s.adCount[tagPair{a, b}]
}

// PCParents returns the number of t1 elements with at least one t2 child.
func (s *Stats) PCParents(t1, t2 string) int {
	a, b := s.doc.TagByName(t1), s.doc.TagByName(t2)
	if a == xmltree.InvalidTag || b == xmltree.InvalidTag {
		return 0
	}
	return s.pcParents[tagPair{a, b}]
}

// ADAncestors returns the number of t1 elements with at least one t2
// descendant.
func (s *Stats) ADAncestors(t1, t2 string) int {
	a, b := s.doc.TagByName(t1), s.doc.TagByName(t2)
	if a == xmltree.InvalidTag || b == xmltree.InvalidTag {
		return 0
	}
	return s.adAncestors[tagPair{a, b}]
}

// Estimator estimates tree-pattern result sizes. It needs the full-text
// index to account for contains-predicate selectivity.
type Estimator struct {
	stats *Stats
	index *ir.Index
}

// NewEstimator pairs statistics with a full-text index.
func NewEstimator(s *Stats, ix *ir.Index) *Estimator {
	return &Estimator{stats: s, index: ix}
}

// Estimate returns the estimated number of distinct matches of the query's
// distinguished node. It assumes element distribution is uniform and
// branch satisfactions are independent, multiplying per-edge fractions
// down the pattern. Estimates for paths that do not occur return 0.
func (e *Estimator) Estimate(q *tpq.Query) float64 {
	root := q.Root()
	est := float64(e.stats.Count(q.Nodes[root].Tag)) * e.satisfaction(q, root)
	if q.Dist != root {
		// Scale from root matches to distinguished-node matches by the
		// average fan-out along the root→distinguished path.
		est *= e.fanout(q, q.Dist)
	}
	return est
}

// PassUnits estimates the work of one full evaluation pass of q in
// abstract units: the candidate nodes a join plan would scan per query
// variable (bounded by the cheapest required contains predicate, the
// same witness-first shortcut the executor takes) plus the estimated
// matches materialized across all variables. The cost-based planner sums
// these per relaxation level to price DPO's level-at-a-time strategy.
func (e *Estimator) PassUnits(q *tpq.Query) float64 {
	units := 0.0
	for i := range q.Nodes {
		n := &q.Nodes[i]
		c := float64(e.stats.Count(n.Tag))
		for _, expr := range n.Contains {
			if w := float64(e.index.CountSatisfyingWithTag(n.Tag, expr)); w < c {
				c = w
			}
		}
		units += c
	}
	return units + e.Estimate(q)*float64(len(q.Nodes))
}

// satisfaction estimates the probability that a random element with node
// i's tag satisfies the subtree pattern rooted at i (excluding i's own
// existence).
func (e *Estimator) satisfaction(q *tpq.Query, i int) float64 {
	n := &q.Nodes[i]
	p := 1.0
	tagN := e.stats.Count(n.Tag)
	if tagN == 0 {
		return 0
	}
	for _, expr := range n.Contains {
		sat := float64(e.index.CountSatisfyingWithTag(n.Tag, expr)) / float64(tagN)
		p *= sat
	}
	for _, c := range q.Children(i) {
		cn := &q.Nodes[c]
		var pairs, parents int
		if cn.Axis == tpq.Child {
			pairs = e.stats.PC(n.Tag, cn.Tag)
			parents = e.stats.PCParents(n.Tag, cn.Tag)
		} else {
			pairs = e.stats.AD(n.Tag, cn.Tag)
			parents = e.stats.ADAncestors(n.Tag, cn.Tag)
		}
		if parents == 0 {
			return 0
		}
		// P(some child with the right tag satisfies the sub-pattern) =
		// P(parent has such children) · P(at least one of the avg-many
		// children satisfies), assuming children satisfy independently.
		fracParents := float64(parents) / float64(tagN)
		if fracParents > 1 {
			fracParents = 1
		}
		avg := float64(pairs) / float64(parents)
		sat := e.satisfaction(q, c)
		p *= fracParents * (1 - math.Pow(1-sat, avg))
	}
	return p
}

// fanout estimates how many matches of node i exist per match of the root,
// following the parent chain and multiplying average per-edge pair counts.
func (e *Estimator) fanout(q *tpq.Query, i int) float64 {
	f := 1.0
	for j := i; q.Nodes[j].Parent != -1; j = q.Nodes[j].Parent {
		parent := q.Nodes[j].Parent
		pt, ct := q.Nodes[parent].Tag, q.Nodes[j].Tag
		var pairs int
		if q.Nodes[j].Axis == tpq.Child {
			pairs = e.stats.PC(pt, ct)
		} else {
			pairs = e.stats.AD(pt, ct)
		}
		den := e.stats.Count(pt)
		if den == 0 {
			return 0
		}
		avg := float64(pairs) / float64(den)
		if avg < 1 {
			// At least one match exists when the pattern matches at all;
			// the fraction below 1 is already captured by satisfaction.
			avg = 1
		}
		f *= avg
	}
	return f
}
