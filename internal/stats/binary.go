package stats

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"flexpath/internal/xmltree"
)

// Binary persistence for document statistics. Collecting statistics walks
// every node's ancestor chain, which dominates snapshot-restore time for
// large documents; persisting the counts avoids it.
var statsMagic = [4]byte{'F', 'X', 'S', '1'}

// WriteBinary writes a snapshot of the statistics (excluding the
// document).
func (s *Stats) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(statsMagic[:]); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(s.tagCount)))
	for _, c := range s.tagCount {
		putUvarint(bw, uint64(c))
	}
	for _, m := range []map[tagPair]int{s.pcCount, s.adCount, s.pcParents, s.adAncestors} {
		writePairMap(bw, m)
	}
	return bw.Flush()
}

// ReadStatsBinary restores statistics for doc from a WriteBinary stream.
func ReadStatsBinary(doc *xmltree.Document, r io.Reader) (*Stats, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stats: snapshot: %w", err)
	}
	if magic != statsMagic {
		return nil, errors.New("stats: not a statistics snapshot (bad magic)")
	}
	nTags, err := getCount(br)
	if err != nil {
		return nil, err
	}
	if nTags != doc.NumTags() {
		return nil, fmt.Errorf("stats: snapshot has %d tags, document has %d", nTags, doc.NumTags())
	}
	s := &Stats{doc: doc, tagCount: make([]int, nTags)}
	for i := range s.tagCount {
		c, err := getCount(br)
		if err != nil {
			return nil, err
		}
		s.tagCount[i] = c
	}
	maps := []*map[tagPair]int{&s.pcCount, &s.adCount, &s.pcParents, &s.adAncestors}
	for _, mp := range maps {
		m, err := readPairMap(br, nTags)
		if err != nil {
			return nil, err
		}
		*mp = m
	}
	return s, nil
}

func writePairMap(w *bufio.Writer, m map[tagPair]int) {
	keys := make([]tagPair, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	putUvarint(w, uint64(len(keys)))
	for _, k := range keys {
		putUvarint(w, uint64(k.a))
		putUvarint(w, uint64(k.b))
		putUvarint(w, uint64(m[k]))
	}
}

func readPairMap(r *bufio.Reader, nTags int) (map[tagPair]int, error) {
	n, err := getCount(r)
	if err != nil {
		return nil, err
	}
	m := make(map[tagPair]int, n)
	for i := 0; i < n; i++ {
		a, err := getCount(r)
		if err != nil {
			return nil, err
		}
		b, err := getCount(r)
		if err != nil {
			return nil, err
		}
		if a >= nTags || b >= nTags {
			return nil, fmt.Errorf("stats: snapshot: tag pair (%d,%d) out of range", a, b)
		}
		v, err := getCount(r)
		if err != nil {
			return nil, err
		}
		m[tagPair{xmltree.TagID(a), xmltree.TagID(b)}] = v
	}
	return m, nil
}

const maxCount = 1 << 31

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // surfaced by the final Flush
}

func getCount(r *bufio.Reader) (int, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("stats: snapshot: %w", err)
	}
	if v > maxCount {
		return 0, fmt.Errorf("stats: snapshot: implausible count %d", v)
	}
	return int(v), nil
}
