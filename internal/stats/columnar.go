package stats

import (
	"fmt"
	"sort"

	"flexpath/internal/fxp3"
	"flexpath/internal/xmltree"
)

// Columnar (FXP3) persistence for document statistics. Statistics are
// small next to the tree and postings, so the maps are rebuilt on the
// heap at decode time; the columnar form exists so the whole snapshot
// shares one self-describing, checksummed container and so the stats
// section can be validated at cold-open without the tree (the tag count
// is stored inline rather than cross-checked against the document).
//
// Payload layout (fxp3.Enc framing):
//
//	u64 numTags
//	col tagCount [numTags]u64
//	4 × pair map: u64 n, col a [n]i32, col b [n]i32, col v [n]u64

// EncodeColumnar renders the statistics as an FXP3 stats-section payload.
func (s *Stats) EncodeColumnar() []byte {
	e := &fxp3.Enc{}
	e.U64(uint64(len(s.tagCount)))
	counts := make([]uint64, len(s.tagCount))
	for i, c := range s.tagCount {
		counts[i] = uint64(c)
	}
	fxp3.ColU64(e, counts)
	for _, m := range []map[tagPair]int{s.pcCount, s.adCount, s.pcParents, s.adAncestors} {
		encodePairMap(e, m)
	}
	return e.Finish()
}

func encodePairMap(e *fxp3.Enc, m map[tagPair]int) {
	keys := make([]tagPair, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	a := make([]xmltree.TagID, len(keys))
	b := make([]xmltree.TagID, len(keys))
	v := make([]uint64, len(keys))
	for i, k := range keys {
		a[i], b[i], v[i] = k.a, k.b, uint64(m[k])
	}
	e.U64(uint64(len(keys)))
	fxp3.ColI32(e, a)
	fxp3.ColI32(e, b)
	fxp3.ColU64(e, v)
}

// DecodeColumnar restores statistics for doc from an EncodeColumnar
// payload. Nothing aliases the payload after return.
func DecodeColumnar(doc *xmltree.Document, payload []byte) (*Stats, error) {
	dec := fxp3.NewDec(payload)
	nTags := int(dec.U64())
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("stats: snapshot: %w", err)
	}
	if nTags != doc.NumTags() {
		return nil, fmt.Errorf("stats: snapshot has %d tags, document has %d", nTags, doc.NumTags())
	}
	counts := fxp3.ViewU64[uint64](dec, nTags)
	s := &Stats{doc: doc, tagCount: make([]int, nTags)}
	for i, c := range counts {
		s.tagCount[i] = int(c)
	}
	maps := []*map[tagPair]int{&s.pcCount, &s.adCount, &s.pcParents, &s.adAncestors}
	for _, mp := range maps {
		m, err := decodePairMap(dec, nTags)
		if err != nil {
			return nil, err
		}
		*mp = m
	}
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("stats: snapshot: %w", err)
	}
	return s, nil
}

func decodePairMap(dec *fxp3.Dec, nTags int) (map[tagPair]int, error) {
	n := int(dec.U64())
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("stats: snapshot: %w", err)
	}
	if n > maxCount {
		return nil, fmt.Errorf("stats: snapshot: implausible count %d", n)
	}
	a := fxp3.ViewI32[xmltree.TagID](dec, n)
	b := fxp3.ViewI32[xmltree.TagID](dec, n)
	v := fxp3.ViewU64[uint64](dec, n)
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("stats: snapshot: %w", err)
	}
	m := make(map[tagPair]int, n)
	for i := 0; i < n; i++ {
		if int(a[i]) < 0 || int(a[i]) >= nTags || int(b[i]) < 0 || int(b[i]) >= nTags {
			return nil, fmt.Errorf("stats: snapshot: tag pair (%d,%d) out of range", a[i], b[i])
		}
		m[tagPair{a[i], b[i]}] = int(v[i])
	}
	return m, nil
}
