package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpath/internal/ir"
	"flexpath/internal/tpq"
	"flexpath/internal/xmark"
	"flexpath/internal/xmltree"
)

const sampleXML = `<site>
  <regions>
    <africa>
      <item><name>gold</name><description><parlist><listitem>x</listitem></parlist></description></item>
      <item><name>silver</name><description>plain</description></item>
    </africa>
    <asia>
      <item><description><parlist><listitem><parlist><listitem>y</listitem></parlist></listitem></parlist></description></item>
    </asia>
  </regions>
</site>`

func TestCounts(t *testing.T) {
	doc, err := xmltree.ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	s := Collect(doc)
	if got := s.Count("item"); got != 3 {
		t.Errorf("#(item) = %d, want 3", got)
	}
	if got := s.Count("parlist"); got != 3 {
		t.Errorf("#(parlist) = %d, want 3", got)
	}
	if got := s.Count("nosuch"); got != 0 {
		t.Errorf("#(nosuch) = %d", got)
	}
	if got := s.PC("description", "parlist"); got != 2 {
		t.Errorf("#pc(description,parlist) = %d, want 2", got)
	}
	if got := s.AD("description", "parlist"); got != 3 {
		t.Errorf("#ad(description,parlist) = %d, want 3", got)
	}
	if got := s.PC("item", "name"); got != 2 {
		t.Errorf("#pc(item,name) = %d, want 2", got)
	}
	if got := s.AD("site", "item"); got != 3 {
		t.Errorf("#ad(site,item) = %d, want 3", got)
	}
	if got := s.PC("site", "item"); got != 0 {
		t.Errorf("#pc(site,item) = %d, want 0", got)
	}
}

// TestPropertyCountsMatchNaive compares the collected statistics against a
// brute-force recount on random documents.
func TestPropertyCountsMatchNaive(t *testing.T) {
	tags := []string{"a", "b", "c"}
	randomDoc := func(r *rand.Rand) *xmltree.Document {
		b := xmltree.NewBuilder()
		var build func(depth int)
		build = func(depth int) {
			b.Open(tags[r.Intn(len(tags))])
			if depth < 5 {
				for i := 0; i < r.Intn(3); i++ {
					build(depth + 1)
				}
			}
			b.Close()
		}
		build(0)
		d, err := b.Document()
		if err != nil {
			panic(err)
		}
		return d
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDoc(r)
		s := Collect(d)
		for _, t1 := range tags {
			nt := 0
			for n := xmltree.NodeID(0); int(n) < d.Len(); n++ {
				if d.TagName(n) == t1 {
					nt++
				}
			}
			if s.Count(t1) != nt {
				return false
			}
			for _, t2 := range tags {
				pc, ad := 0, 0
				for n := xmltree.NodeID(0); int(n) < d.Len(); n++ {
					if d.TagName(n) != t2 {
						continue
					}
					if p := d.Parent(n); p != xmltree.InvalidNode && d.TagName(p) == t1 {
						pc++
					}
					for a := d.Parent(n); a != xmltree.InvalidNode; a = d.Parent(a) {
						if d.TagName(a) == t1 {
							ad++
						}
					}
				}
				if s.PC(t1, t2) != pc || s.AD(t1, t2) != ad {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorSinglePath(t *testing.T) {
	doc, err := xmark.Build(xmark.Config{TargetBytes: 256 << 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	s := Collect(doc)
	ix := ir.NewIndex(doc)
	est := NewEstimator(s, ix)

	// Estimate vs truth for a simple existential pattern: the estimator
	// should be within a factor of ~2 for XMark-shaped data (the paper's
	// uniform-distribution technique "worked well for our dataset").
	q := tpq.MustParse(`//item[./description/parlist]`)
	got := est.Estimate(q)
	truth := 0
	for _, it := range doc.NodesWithTag("item") {
		found := false
		for _, d := range doc.Children(it) {
			if doc.TagName(d) != "description" {
				continue
			}
			for _, p := range doc.Children(d) {
				if doc.TagName(p) == "parlist" {
					found = true
				}
			}
		}
		if found {
			truth++
		}
	}
	if truth == 0 {
		t.Fatal("no true matches; generator broken?")
	}
	ratio := got / float64(truth)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("estimate %f vs truth %d (ratio %.2f) outside [0.5, 2.0]", got, truth, ratio)
	}
}

func TestEstimatorMonotoneUnderRelaxation(t *testing.T) {
	doc, err := xmark.Build(xmark.Config{TargetBytes: 128 << 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(Collect(doc), ir.NewIndex(doc))
	strict := tpq.MustParse(`//item[./description/parlist]`)
	relaxed := tpq.MustParse(`//item[./description//parlist]`)
	dropped := tpq.MustParse(`//item[./description]`)
	a, b, c := est.Estimate(strict), est.Estimate(relaxed), est.Estimate(dropped)
	if !(a <= b+1e-9 && b <= c+1e-9) {
		t.Errorf("estimates not monotone under relaxation: %f, %f, %f", a, b, c)
	}
}

func TestEstimatorMissingTag(t *testing.T) {
	doc, err := xmltree.ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(Collect(doc), ir.NewIndex(doc))
	if got := est.Estimate(tpq.MustParse(`//nosuch[./item]`)); got != 0 {
		t.Errorf("estimate for missing tag = %f", got)
	}
	if got := est.Estimate(tpq.MustParse(`//item[./nosuch]`)); got != 0 {
		t.Errorf("estimate for missing child = %f", got)
	}
}

func TestEstimatorContains(t *testing.T) {
	doc, err := xmltree.ParseString(`<r>
	  <a><t>gold</t></a><a><t>gold</t></a><a><t>lead</t></a><a><t>lead</t></a>
	</r>`)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(Collect(doc), ir.NewIndex(doc))
	all := est.Estimate(tpq.MustParse(`//a[./t]`))
	some := est.Estimate(tpq.MustParse(`//a[./t and .contains("gold")]`))
	if all != 4 {
		t.Errorf("baseline estimate = %f, want 4", all)
	}
	if some != 2 {
		t.Errorf("contains estimate = %f, want 2 (half the a's contain gold)", some)
	}
}

// TestEstimatorAccuracyAcrossChainLevels guards the estimator against
// regressions: on XMark-shaped data it must stay within a factor of 2 of
// the truth for the paper's workload queries and their relaxations (the
// paper's own estimator "gave precise estimations" and never forced an
// SSO restart).
func TestEstimatorAccuracyAcrossChainLevels(t *testing.T) {
	doc, err := xmark.Build(xmark.Config{TargetBytes: 512 << 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ix := ir.NewIndex(doc)
	est := NewEstimator(Collect(doc), ix)
	queries := []string{
		`//item[./description/parlist]`,
		`//item[./description//parlist]`,
		`//item[./description/parlist and ./mailbox/mail/text]`,
		`//item[./mailbox//text]`,
		`//item[./name and ./incategory]`,
	}
	for _, src := range queries {
		q := tpq.MustParse(src)
		got := est.Estimate(q)
		truth := naiveCount(doc, q)
		if truth == 0 {
			t.Fatalf("%s: no true matches; recalibrate the test", src)
		}
		ratio := got / float64(truth)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: estimate %.1f vs truth %d (ratio %.2f)", src, got, truth, ratio)
		}
	}
}

// naiveCount counts exact matches of the distinguished node by brute
// force (queries here have no contains or value predicates beyond tags).
func naiveCount(doc *xmltree.Document, q *tpq.Query) int {
	var matches func(qi int, n xmltree.NodeID) bool
	matches = func(qi int, n xmltree.NodeID) bool {
		if doc.TagName(n) != q.Nodes[qi].Tag {
			return false
		}
		for ci := range q.Nodes {
			if q.Nodes[ci].Parent != qi {
				continue
			}
			found := false
			for m := n + 1; m <= doc.End(n); m++ {
				if q.Nodes[ci].Axis == tpq.Child && doc.Parent(m) != n {
					continue
				}
				if matches(ci, m) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	count := 0
	for _, n := range doc.NodesWithTag(q.Nodes[0].Tag) {
		if matches(0, n) {
			count++
		}
	}
	return count
}
