package flexpath

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexpath/internal/merge"
	"flexpath/internal/mmapio"
	"flexpath/internal/obs"
	"flexpath/internal/qcache"
)

// Collection is a set of queryable documents searched as one corpus — the
// paper's data model is "a data tree (i.e., an XML document collection)".
// Each member document keeps its own indexes, statistics and relaxation
// chains (penalties are per-document properties: the same query may relax
// differently over differently-shaped documents); a collection search
// merges the per-document rankings into one global top-K.
//
// A Collection is a live corpus: Add, Remove and Replace may run
// concurrently with searches. Membership is guarded by an internal
// RWMutex; a search snapshots the membership once at entry and evaluates
// against that snapshot, so it sees a consistent corpus (never a
// half-applied mutation) and never blocks behind another search.
type Collection struct {
	mu      sync.RWMutex
	names   []string
	members []*member
	byName  map[string]int
	// docCacheCap remembers the last SetDocumentCaches capacity so
	// documents added or swapped in later get the same cache
	// configuration as the members present at call time. docCacheSet
	// distinguishes "never configured" (leave new documents alone) from
	// "explicitly disabled" (capacity <= 0 disables new documents too).
	docCacheCap int
	docCacheSet bool
	// planCacheCap/planCacheSet remember SetPlanCaches the same way, so
	// later members get the collection's plan-cache sizing too. Unset
	// leaves new documents on DefaultPlanCacheCapacity.
	planCacheCap int
	planCacheSet bool

	// qc, when set, caches merged collection-level result sets; see
	// SetCache. Any membership mutation purges it.
	qc atomic.Pointer[qcache.Cache]

	// Residency state (see residency.go): maxResident bounds how many
	// fault-capable members stay decoded, tick is the logical LRU
	// clock, faults/evictions count residency traffic, evictMu
	// serializes eviction sweeps, and mappings records every open file
	// mapping for Close.
	maxResident atomic.Int64
	tick        atomic.Int64
	faults      atomic.Uint64
	evictions   atomic.Uint64
	evictMu     sync.Mutex
	mappings    []*mmapio.Mapping
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{byName: make(map[string]int)}
}

// Add inserts a document under a name (typically its file name). Names
// appear in CollectionAnswer and must be unique. Adding a document purges
// the collection-level query cache (cached merged rankings no longer
// cover the whole corpus) and applies the collection's document-cache
// configuration (SetDocumentCaches) to the new member.
func (c *Collection) Add(name string, doc *Document) error {
	mem := &member{name: name}
	mem.doc.Store(doc)
	if err := c.register(name, mem, nil); err != nil {
		return err
	}
	c.mu.RLock()
	cacheSet, cacheCap := c.docCacheSet, c.docCacheCap
	planSet, planCap := c.planCacheSet, c.planCacheCap
	c.mu.RUnlock()
	if cacheSet {
		doc.SetCache(cacheCap)
	}
	if planSet {
		doc.SetPlanCache(planCap)
	}
	return nil
}

// Remove deletes the named document from the collection. It purges the
// collection-level query cache (cached merged rankings cover a corpus
// that no longer exists) and the removed document's own cache. Searches
// already in flight keep evaluating the membership snapshot they started
// with, including the removed document.
func (c *Collection) Remove(name string) error {
	c.mu.Lock()
	i, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("flexpath: no document named %q", name)
	}
	old := c.members[i].doc.Load()
	// In-flight searches are isolated by snapshot()'s copy, so the
	// slices can be compacted in place under the exclusive lock. A
	// removed cold member's mapping stays open (answers already handed
	// out may alias it) and is released by Close.
	c.names = append(c.names[:i], c.names[i+1:]...)
	c.members = append(c.members[:i], c.members[i+1:]...)
	delete(c.byName, name)
	for j := i; j < len(c.names); j++ {
		c.byName[c.names[j]] = j
	}
	c.mu.Unlock()
	if qc := c.qc.Load(); qc != nil {
		qc.Purge()
	}
	if old != nil {
		old.purgeCache()
	}
	return nil
}

// Replace swaps the named document for doc, keeping its position in the
// ranking tie-break order. The collection-level query cache and the
// replaced document's own cache are purged; the incoming document gets
// the collection's document-cache configuration.
func (c *Collection) Replace(name string, doc *Document) error {
	c.mu.Lock()
	i, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("flexpath: no document named %q", name)
	}
	old := c.members[i].doc.Load()
	// The incoming document is pinned even when it replaces a cold
	// member: Replace hands over a decoded document, not a snapshot.
	mem := &member{name: name}
	mem.doc.Store(doc)
	c.members[i] = mem
	cacheSet, cacheCap := c.docCacheSet, c.docCacheCap
	planSet, planCap := c.planCacheSet, c.planCacheCap
	c.mu.Unlock()
	if cacheSet {
		doc.SetCache(cacheCap)
	}
	if planSet {
		doc.SetPlanCache(planCap)
	}
	if qc := c.qc.Load(); qc != nil {
		qc.Purge()
	}
	if old != nil {
		old.purgeCache()
	}
	return nil
}

// snapshot returns a consistent view of the membership for one search.
// The returned slices are private copies, so the holder is isolated from
// later mutations (which compact or rewrite the originals in place).
func (c *Collection) snapshot() (names []string, members []*member) {
	c.mu.RLock()
	names = append([]string(nil), c.names...)
	members = append([]*member(nil), c.members...)
	c.mu.RUnlock()
	return names, members
}

// snapshotResolved is snapshot with every member resolved to its
// document, faulting cold members in. Checkpointing uses it: a
// checkpoint must serialize the whole corpus, cold or not.
func (c *Collection) snapshotResolved() ([]string, []*Document, error) {
	names, members := c.snapshot()
	docs := make([]*Document, len(members))
	for i, m := range members {
		d, err := c.require(m)
		if err != nil {
			return nil, nil, fmt.Errorf("flexpath: document %q: %w", names[i], err)
		}
		docs[i] = d
	}
	return names, docs, nil
}

// residentDocs returns the currently decoded member documents, the set
// cache configuration and statistics aggregation walk: cold members
// have no caches or planner state, and walking them must not fault
// them in.
func (c *Collection) residentDocs() []*Document {
	_, members := c.snapshot()
	docs := make([]*Document, 0, len(members))
	for _, m := range members {
		if d := m.doc.Load(); d != nil {
			docs = append(docs, d)
		}
	}
	return docs
}

// AddFile loads and adds the XML document at path, named by the path.
func (c *Collection) AddFile(path string) error {
	doc, err := LoadFile(path)
	if err != nil {
		return err
	}
	return c.Add(path, doc)
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.members)
}

// Nodes returns the total number of element nodes across all documents.
// Cold members report from their snapshot's meta section; counting
// never faults a document in.
func (c *Collection) Nodes() int {
	_, members := c.snapshot()
	total := 0
	for _, m := range members {
		total += m.nodes()
	}
	return total
}

// Names returns the document names in insertion order.
func (c *Collection) Names() []string {
	names, _ := c.snapshot()
	return names
}

// Has reports whether a document with the given name is a member,
// without faulting it in.
func (c *Collection) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.byName[name]
	return ok
}

// Document returns the named document, if present, faulting it in when
// cold (a failed fault reports absent). Callers that only need
// metadata should use Members, which never faults.
func (c *Collection) Document(name string) (*Document, bool) {
	c.mu.RLock()
	var mem *member
	if i, ok := c.byName[name]; ok {
		mem = c.members[i]
	}
	c.mu.RUnlock()
	if mem == nil {
		return nil, false
	}
	d, err := c.require(mem)
	if err != nil {
		return nil, false
	}
	return d, true
}

// SetCache enables a collection-level cache of merged top-K rankings
// holding up to capacity result sets; capacity <= 0 disables it. Keys are
// the same normalized search keys Document.SetCache uses. The cache is
// purged whenever the membership changes (Add, Remove, Replace).
func (c *Collection) SetCache(capacity int) {
	if capacity <= 0 {
		c.qc.Store(nil)
		return
	}
	c.qc.Store(qcache.New(capacity))
}

// SetDocumentCaches enables (or, with capacity <= 0, disables) a
// per-document result cache of the given capacity on every member
// document. Per-document caches also serve direct Document.Search calls
// and survive collection cache purges. The capacity is remembered:
// documents added (or swapped in by Replace) later get the same cache
// configuration, so DocumentCacheStats covers the whole live corpus.
func (c *Collection) SetDocumentCaches(capacity int) {
	c.mu.Lock()
	c.docCacheCap = capacity
	c.docCacheSet = true
	c.mu.Unlock()
	// Resident documents are reconfigured now; cold ones pick the
	// remembered capacity up at fault-in.
	for _, d := range c.residentDocs() {
		d.SetCache(capacity)
	}
}

// SetPlanCaches resizes (or, with capacity <= 0, disables) the
// plan-template cache of every member document; see
// Document.SetPlanCache. The capacity is remembered: documents added or
// swapped in later get the same plan-cache sizing, so PlanCacheStats
// covers the whole live corpus.
func (c *Collection) SetPlanCaches(capacity int) {
	c.mu.Lock()
	c.planCacheCap = capacity
	c.planCacheSet = true
	c.mu.Unlock()
	for _, d := range c.residentDocs() {
		d.SetPlanCache(capacity)
	}
}

// PlanCacheStats sums the plan-template cache counters of every member
// document whose plan cache is enabled; ok is false when none is.
func (c *Collection) PlanCacheStats() (s PlanCacheStats, ok bool) {
	var sum PlanCacheStats
	any := false
	for _, d := range c.residentDocs() {
		if ds, dok := d.PlanCacheStats(); dok {
			sum.add(ds)
			any = true
		}
	}
	return sum, any
}

// CacheStats reports the collection-level cache counters; ok is false
// when no collection cache is enabled.
func (c *Collection) CacheStats() (s CacheStats, ok bool) {
	qc := c.qc.Load()
	if qc == nil {
		return CacheStats{}, false
	}
	return cacheStatsFrom(qc.Stats()), true
}

// DocumentCacheStats sums the cache counters of every member document
// that has a cache enabled; ok is false when none does.
func (c *Collection) DocumentCacheStats() (s CacheStats, ok bool) {
	var sum CacheStats
	any := false
	for _, d := range c.residentDocs() {
		if ds, dok := d.CacheStats(); dok {
			sum.add(ds)
			any = true
		}
	}
	return sum, any
}

// CollectionAnswer is an Answer tagged with the document it came from.
type CollectionAnswer struct {
	Answer
	// DocName is the name the document was added under.
	DocName string
}

// Search runs the query against every document and merges the rankings
// into one global top-K under the chosen scheme. Structural scores are
// comparable across documents because they are derived from the same
// query's predicate weights; penalties (and hence relaxed answers'
// scores) reflect each document's own statistics, as the paper intends
// ("this weight may be ... computed by analyzing the input document").
//
// Per-document evaluation fans out across a bounded worker pool
// (SearchOptions.Workers, default GOMAXPROCS). The merged ranking is
// deterministic regardless of worker count: per-document results are
// collected by document index and merged with (score, document name,
// node) tie-breaking.
func (c *Collection) Search(q *Query, opts SearchOptions) ([]CollectionAnswer, error) {
	return c.SearchContext(context.Background(), q, opts)
}

// SearchContext is Search with cancellation; see Document.SearchContext.
func (c *Collection) SearchContext(ctx context.Context, q *Query, opts SearchOptions) ([]CollectionAnswer, error) {
	if opts.K <= 0 {
		opts.K = 10
	}
	if opts.Offset < 0 {
		opts.Offset = 0
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	span := obs.SpanFrom(ctx)

	qc := c.qc.Load()
	useCache := qc != nil && !opts.NoCache
	var key string
	if useCache {
		key = searchCacheKey(q, opts)
		var tCache time.Time
		if span != nil {
			tCache = time.Now()
		}
		v, ok := qc.Get(key)
		if span != nil {
			span.Rec(obs.StageCache, time.Since(tCache))
		}
		if ok {
			span.MarkCacheHit()
			if opts.Metrics != nil {
				*opts.Metrics = Metrics{}
			}
			// Hand out a deep copy: callers may re-sort or truncate the
			// slice and mutate each answer's Relaxed strings; a shallow
			// copy would let that poison every later hit.
			return copyCollectionAnswers(v.([]CollectionAnswer)), nil
		}
	}

	// One consistent membership view for the whole search: a concurrent
	// Add/Remove/Replace neither blocks behind this search nor changes
	// which documents it evaluates.
	names, members := c.snapshot()

	perDoc := make([][]Answer, len(members))
	perErr := make([]error, len(members))
	perMet := make([]Metrics, len(members))
	runDoc := func(i int) {
		// Fault the member in if it is cold; the returned document stays
		// valid for this search even if the residency cap evicts the
		// member before the search finishes (eviction drops the
		// member's pointer, not the document or its mapping).
		d, err := c.require(members[i])
		if err != nil {
			perErr[i] = err
			return
		}
		sub := opts
		// Pagination is a property of the merged global ranking, not of
		// any member document's ranking: each document must contribute
		// its full top Offset+K (a globally-skipped answer may rank
		// anywhere within a single document), and the offset is applied
		// exactly once after the merge below.
		sub.K = opts.K + opts.Offset
		sub.Offset = 0
		sub.Metrics = nil
		if opts.Metrics != nil {
			sub.Metrics = &perMet[i]
		}
		perDoc[i], perErr[i] = d.SearchContext(ctx, q, sub)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(members) {
		workers = len(members)
	}
	if workers <= 1 {
		for i := range members {
			runDoc(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(members) {
						return
					}
					runDoc(i)
				}
			}()
		}
		wg.Wait()
	}

	// Error reporting and metrics accumulation walk documents in
	// insertion order, so the outcome is independent of worker timing.
	var tMerge time.Time
	if span != nil {
		tMerge = time.Now()
	}
	var all []CollectionAnswer
	for i := range members {
		if perErr[i] != nil {
			return nil, fmt.Errorf("flexpath: document %q: %w", names[i], perErr[i])
		}
		if opts.Metrics != nil {
			opts.Metrics.add(perMet[i])
		}
		for _, a := range perDoc[i] {
			all = append(all, CollectionAnswer{Answer: a, DocName: names[i]})
		}
	}
	// The comparator lives in internal/merge so flexrouter's network
	// merge is byte-identical to this in-process one by construction.
	merge.Sort(all, func(a CollectionAnswer) merge.Key {
		return merge.Key{Score: rankScore(a.Answer), Doc: a.DocName, Ord: int(a.node)}
	}, opts.Scheme.rank())
	// Apply the global offset once, over the merged ranking.
	all = merge.Page(all, opts.K, opts.Offset)
	if span != nil {
		span.Rec(obs.StageMerge, time.Since(tMerge))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if useCache {
		// Store a deep copy so the caller's slice (returned below) and
		// the cached ranking share no mutable state.
		qc.Put(key, copyCollectionAnswers(all))
	}
	return all, nil
}

// copyCollectionAnswers clones a merged ranking including each answer's
// Relaxed slice, the only mutable state an Answer exposes.
func copyCollectionAnswers(src []CollectionAnswer) []CollectionAnswer {
	out := append([]CollectionAnswer(nil), src...)
	for i := range out {
		if len(out[i].Relaxed) > 0 {
			out[i].Relaxed = append([]string(nil), out[i].Relaxed...)
		}
	}
	return out
}

func (m *Metrics) add(o Metrics) {
	m.QueriesEvaluated += o.QueriesEvaluated
	m.PlansRun += o.PlansRun
	if o.RelaxationsEncoded > m.RelaxationsEncoded {
		m.RelaxationsEncoded = o.RelaxationsEncoded
	}
	m.Restarts += o.Restarts
	m.TuplesGenerated += o.TuplesGenerated
	m.TuplesPruned += o.TuplesPruned
	m.SortedTuples += o.SortedTuples
	m.Buckets += o.Buckets
	m.PairsMaterialized += o.PairsMaterialized
	// Each member document plans for itself: when they agree the merged
	// metrics name the common algorithm, otherwise "mixed".
	if o.Algorithm != "" {
		switch m.Algorithm {
		case "":
			m.Algorithm, m.AlgoReason = o.Algorithm, o.AlgoReason
		case o.Algorithm:
		default:
			m.Algorithm, m.AlgoReason = "mixed", ""
		}
	}
}

// PlannerStats aggregates the member documents' planner state: counters
// sum; the calibration scales, calibration errors and the restart rate
// average over the documents that have observed at least one Auto run.
func (c *Collection) PlannerStats() PlannerStats {
	agg := PlannerStats{
		Choices:          map[string]uint64{},
		Reasons:          map[string]uint64{},
		NsPerUnit:        map[string]float64{},
		CalibrationError: map[string]float64{},
	}
	nsN := map[string]int{}
	errN := map[string]int{}
	restartN := 0
	for _, d := range c.residentDocs() {
		s := d.PlannerStats()
		for k, v := range s.Choices {
			agg.Choices[k] += v
		}
		for k, v := range s.Reasons {
			agg.Reasons[k] += v
		}
		for k, v := range s.NsPerUnit {
			agg.NsPerUnit[k] += v
			nsN[k]++
		}
		for k, v := range s.CalibrationError {
			agg.CalibrationError[k] += v
			errN[k]++
		}
		if s.Observations > 0 {
			agg.RestartRate += s.RestartRate
			restartN++
		}
		agg.Observations += s.Observations
	}
	for k, n := range nsN {
		agg.NsPerUnit[k] /= float64(n)
	}
	for k, n := range errN {
		agg.CalibrationError[k] /= float64(n)
	}
	if restartN > 0 {
		agg.RestartRate /= float64(restartN)
	}
	return agg
}

// LoadCollectionFiles builds a collection from XML files.
func LoadCollectionFiles(paths ...string) (*Collection, error) {
	c := NewCollection()
	for _, p := range paths {
		if err := c.AddFile(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// LoadCollectionDir builds a collection from every .xml file directly
// inside dir. The extension match is case-insensitive (".XML" files
// written by case-preserving filesystems load too).
func LoadCollectionDir(dir string) (*Collection, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := NewCollection()
	for _, e := range entries {
		if e.IsDir() || !strings.EqualFold(filepath.Ext(e.Name()), ".xml") {
			continue
		}
		if err := c.AddFile(filepath.Join(dir, e.Name())); err != nil {
			return nil, err
		}
	}
	if c.Len() == 0 {
		return nil, fmt.Errorf("flexpath: no .xml files in %s", dir)
	}
	return c, nil
}
