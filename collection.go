package flexpath

import (
	"fmt"
	"os"
	"sort"
)

// Collection is a set of queryable documents searched as one corpus — the
// paper's data model is "a data tree (i.e., an XML document collection)".
// Each member document keeps its own indexes, statistics and relaxation
// chains (penalties are per-document properties: the same query may relax
// differently over differently-shaped documents); a collection search
// merges the per-document rankings into one global top-K.
type Collection struct {
	names []string
	docs  []*Document
}

// NewCollection returns an empty collection.
func NewCollection() *Collection { return &Collection{} }

// Add inserts a document under a name (typically its file name). Names
// appear in CollectionAnswer and must be unique.
func (c *Collection) Add(name string, doc *Document) error {
	for _, n := range c.names {
		if n == name {
			return fmt.Errorf("flexpath: duplicate document name %q", name)
		}
	}
	c.names = append(c.names, name)
	c.docs = append(c.docs, doc)
	return nil
}

// AddFile loads and adds the XML document at path, named by the path.
func (c *Collection) AddFile(path string) error {
	doc, err := LoadFile(path)
	if err != nil {
		return err
	}
	return c.Add(path, doc)
}

// Len returns the number of documents.
func (c *Collection) Len() int { return len(c.docs) }

// Nodes returns the total number of element nodes across all documents.
func (c *Collection) Nodes() int {
	total := 0
	for _, d := range c.docs {
		total += d.Nodes()
	}
	return total
}

// Names returns the document names in insertion order.
func (c *Collection) Names() []string {
	return append([]string(nil), c.names...)
}

// Document returns the named document, if present.
func (c *Collection) Document(name string) (*Document, bool) {
	for i, n := range c.names {
		if n == name {
			return c.docs[i], true
		}
	}
	return nil, false
}

// CollectionAnswer is an Answer tagged with the document it came from.
type CollectionAnswer struct {
	Answer
	// DocName is the name the document was added under.
	DocName string
}

// Search runs the query against every document and merges the rankings
// into one global top-K under the chosen scheme. Structural scores are
// comparable across documents because they are derived from the same
// query's predicate weights; penalties (and hence relaxed answers'
// scores) reflect each document's own statistics, as the paper intends
// ("this weight may be ... computed by analyzing the input document").
func (c *Collection) Search(q *Query, opts SearchOptions) ([]CollectionAnswer, error) {
	if opts.K <= 0 {
		opts.K = 10
	}
	var all []CollectionAnswer
	for i, d := range c.docs {
		// Each document needs its own metrics sink; accumulate.
		sub := opts
		var m Metrics
		if opts.Metrics != nil {
			sub.Metrics = &m
		}
		answers, err := d.Search(q, sub)
		if err != nil {
			return nil, fmt.Errorf("flexpath: document %q: %w", c.names[i], err)
		}
		if opts.Metrics != nil {
			opts.Metrics.add(m)
		}
		for _, a := range answers {
			all = append(all, CollectionAnswer{Answer: a, DocName: c.names[i]})
		}
	}
	scheme := opts.Scheme.rank()
	sort.SliceStable(all, func(i, j int) bool {
		si := rankScore(all[i].Answer)
		sj := rankScore(all[j].Answer)
		if cmp := si.Compare(sj, scheme); cmp != 0 {
			return cmp > 0
		}
		if all[i].DocName != all[j].DocName {
			return all[i].DocName < all[j].DocName
		}
		return all[i].node < all[j].node
	})
	if len(all) > opts.K {
		all = all[:opts.K]
	}
	return all, nil
}

func (m *Metrics) add(o Metrics) {
	m.QueriesEvaluated += o.QueriesEvaluated
	m.PlansRun += o.PlansRun
	if o.RelaxationsEncoded > m.RelaxationsEncoded {
		m.RelaxationsEncoded = o.RelaxationsEncoded
	}
	m.Restarts += o.Restarts
	m.TuplesGenerated += o.TuplesGenerated
	m.TuplesPruned += o.TuplesPruned
	m.SortedTuples += o.SortedTuples
	m.Buckets += o.Buckets
	m.PairsMaterialized += o.PairsMaterialized
}

// LoadCollectionFiles builds a collection from XML files.
func LoadCollectionFiles(paths ...string) (*Collection, error) {
	c := NewCollection()
	for _, p := range paths {
		if err := c.AddFile(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// LoadCollectionDir builds a collection from every .xml file directly
// inside dir.
func LoadCollectionDir(dir string) (*Collection, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := NewCollection()
	for _, e := range entries {
		if e.IsDir() || len(e.Name()) < 4 || e.Name()[len(e.Name())-4:] != ".xml" {
			continue
		}
		if err := c.AddFile(dir + string(os.PathSeparator) + e.Name()); err != nil {
			return nil, err
		}
	}
	if c.Len() == 0 {
		return nil, fmt.Errorf("flexpath: no .xml files in %s", dir)
	}
	return c, nil
}
