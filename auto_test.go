package flexpath

import (
	"fmt"
	"strings"
	"testing"
)

// renderAutoRanking serializes a ranking without the Relaxed detail —
// Auto may dispatch to DPO, which reports only the level, so Auto
// answers agree with fixed-algorithm answers on everything except the
// relaxation explanations.
func renderAutoRanking(answers []Answer) string {
	var sb strings.Builder
	for i, a := range answers {
		fmt.Fprintf(&sb, "%d|%s|%s|%.12f|%.12f|%d\n",
			i, a.Path, a.ID, a.Structural, a.Keyword, a.Relaxations)
	}
	return sb.String()
}

// TestAutoMatchesFixedAlgorithms: for every scheme and K, the default
// (Auto) ranking must be identical to the ranking of the algorithm the
// planner dispatched to (named in Metrics.Algorithm) when that same
// algorithm is requested explicitly — the planner picks a strategy, it
// never alters what the strategy returns.
func TestAutoMatchesFixedAlgorithms(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	for _, scheme := range []Scheme{StructureFirst, KeywordFirst, Combined} {
		for _, k := range []int{1, 3, 10} {
			var m Metrics
			auto, err := doc.Search(q, SearchOptions{
				K: k, Scheme: scheme, Metrics: &m, NoCache: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			algo, err := ParseAlgorithm(m.Algorithm)
			if err != nil {
				t.Fatalf("%v k=%d: unparsable chosen algorithm %q", scheme, k, m.Algorithm)
			}
			fixed, err := doc.Search(q, SearchOptions{
				K: k, Scheme: scheme, Algorithm: algo, NoCache: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := renderAutoRanking(auto), renderAutoRanking(fixed); got != want {
				t.Errorf("%v k=%d: Auto differs from chosen %v:\n%s\nvs\n%s",
					scheme, k, algo, got, want)
			}
		}
	}
}

// TestAutoMetricsNameAlgorithm: Auto searches must report which
// algorithm ran and why; fixed-algorithm searches name themselves with
// no reason.
func TestAutoMetricsNameAlgorithm(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	var m Metrics
	if _, err := doc.Search(q, SearchOptions{K: 3, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	switch m.Algorithm {
	case "DPO", "SSO", "Hybrid":
	default:
		t.Errorf("Auto reported algorithm %q", m.Algorithm)
	}
	if m.AlgoReason == "" {
		t.Error("Auto reported no reason")
	}
	m = Metrics{}
	if _, err := doc.Search(q, SearchOptions{K: 3, Algorithm: SSO, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.Algorithm != "SSO" || m.AlgoReason != "" {
		t.Errorf("fixed SSO search reported %q / %q", m.Algorithm, m.AlgoReason)
	}
}

// TestPlannerStatsAccumulate: the document's planner state must reflect
// Auto searches — one choice and one observation per run — and ignore
// fixed-algorithm searches.
func TestPlannerStatsAccumulate(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	for i := 0; i < 4; i++ {
		if _, err := doc.Search(q, SearchOptions{K: 3, NoCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := doc.Search(q, SearchOptions{K: 3, Algorithm: DPO, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	s := doc.PlannerStats()
	if s.Observations != 4 {
		t.Errorf("observations = %d, want 4", s.Observations)
	}
	total := uint64(0)
	for _, n := range s.Choices {
		total += n
	}
	if total != 4 {
		t.Errorf("choices = %v, want 4 total", s.Choices)
	}
	if len(s.NsPerUnit) == 0 {
		t.Error("no calibration state after observed runs")
	}
}

// TestCacheHitNamesProducingAlgorithm: a cache hit reports the
// algorithm that produced the entry alongside zeroed work counters.
func TestCacheHitNamesProducingAlgorithm(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	doc.SetCache(8)
	q := MustParseQuery(paperQ1)
	var cold Metrics
	if _, err := doc.Search(q, SearchOptions{K: 3, Metrics: &cold}); err != nil {
		t.Fatal(err)
	}
	var warm Metrics
	if _, err := doc.Search(q, SearchOptions{K: 3, Metrics: &warm}); err != nil {
		t.Fatal(err)
	}
	if warm.Algorithm != cold.Algorithm {
		t.Errorf("cache hit reported %q, cold run %q", warm.Algorithm, cold.Algorithm)
	}
	if warm.QueriesEvaluated != 0 || warm.PlansRun != 0 {
		t.Errorf("cache hit reported work: %+v", warm)
	}
}

// TestCollectionPlannerStats: collection planner stats sum the member
// documents' counters, and merged metrics name the common algorithm.
func TestCollectionPlannerStats(t *testing.T) {
	c := NewCollection()
	for _, name := range []string{"a.xml", "b.xml"} {
		doc, err := LoadString(articlesXML)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Add(name, doc); err != nil {
			t.Fatal(err)
		}
	}
	q := MustParseQuery(paperQ1)
	var m Metrics
	if _, err := c.Search(q, SearchOptions{K: 3, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	// Identical documents plan identically, so the merged metrics must
	// name one algorithm, not "mixed".
	switch m.Algorithm {
	case "DPO", "SSO", "Hybrid":
	default:
		t.Errorf("merged metrics named %q", m.Algorithm)
	}
	s := c.PlannerStats()
	if s.Observations != 2 {
		t.Errorf("observations = %d, want 2 (one per document)", s.Observations)
	}
	total := uint64(0)
	for _, n := range s.Choices {
		total += n
	}
	if total != 2 {
		t.Errorf("choices = %v, want 2 total", s.Choices)
	}
}
