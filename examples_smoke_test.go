package flexpath

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main and checks it exits cleanly
// with plausible output. Skipped with -short (each invocation pays a go
// build).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	cases := []struct {
		dir  string
		args []string
		want string
	}{
		{"./examples/quickstart", nil, "relaxation chain"},
		{"./examples/articles", nil, "FleXPath query"},
		{"./examples/auction", []string{"-mb", "0.25", "-k", "20"}, "relaxation chain"},
		{"./examples/relaxation", nil, "violations: 0"},
		{"./examples/corpus", nil, "type-hierarchy widening"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", c.dir}, c.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output missing %q:\n%.2000s", c.dir, c.want, out)
			}
		})
	}
}
