package flexpath

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"

	"flexpath/internal/xmark"
)

func TestParseQueryErrors(t *testing.T) {
	for _, src := range []string{"", "item", "//item[", "//item[.contains(]"} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", src)
		}
	}
}

func TestMustParseQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseQuery did not panic")
		}
	}()
	MustParseQuery("((bad")
}

func TestParseAlgorithmAndScheme(t *testing.T) {
	for _, a := range []Algorithm{DPO, SSO, Hybrid} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("algorithm round trip %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("accepted bogus algorithm")
	}
	for _, s := range []Scheme{StructureFirst, KeywordFirst, Combined} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("scheme round trip %v: %v %v", s, got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("accepted bogus scheme")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadString("not xml at all"); err == nil {
		t.Error("accepted invalid XML")
	}
	if _, err := LoadFile("/nonexistent/file.xml"); err == nil {
		t.Error("accepted missing file")
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(articlesXML), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Nodes() == 0 {
		t.Error("empty document")
	}
}

func TestSearchDefaults(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	// Zero-value options: K defaults to 10 (capped by available answers).
	answers, err := doc.Search(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers with default options")
	}
	for _, a := range answers {
		if a.Path == "" || a.Tag != "article" {
			t.Errorf("bad answer fields: %+v", a)
		}
	}
}

func TestAnswerAccessors(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := doc.Search(MustParseQuery(paperQ1), SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := answers[0]
	if a.ID != "a1" {
		t.Fatalf("top answer %q", a.ID)
	}
	if s := a.Snippet(20); len(s) == 0 || len(s) > 25 {
		t.Errorf("Snippet(20) = %q", s)
	}
	x := a.XML()
	if !strings.HasPrefix(x, "<article") || !strings.HasSuffix(x, "</article>") {
		t.Errorf("XML() = %.60s...", x)
	}
}

func TestWeightsAffectScores(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	def, err := doc.Search(q, SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := doc.Search(q, SearchOptions{K: 1, Weights: Weights{Structural: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if heavy[0].Structural != 2*def[0].Structural {
		t.Errorf("doubling structural weight: %f -> %f", def[0].Structural, heavy[0].Structural)
	}
}

func TestSchemesChangeOrdering(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	for _, scheme := range []Scheme{StructureFirst, KeywordFirst, Combined} {
		answers, err := doc.Search(q, SearchOptions{K: 3, Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(answers) != 3 {
			t.Fatalf("%v: %d answers", scheme, len(answers))
		}
	}
}

func TestRelaxationsListing(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := doc.Relaxations(MustParseQuery(paperQ1))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	for i, s := range steps {
		if s.Level != i+1 {
			t.Errorf("step %d has level %d", i, s.Level)
		}
		if s.Description == "" || s.Query == "" {
			t.Errorf("step %d missing description/query: %+v", i, s)
		}
		if s.Penalty < 0 {
			t.Errorf("step %d negative penalty", i)
		}
	}
}

func TestChainCacheReuse(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	c1, err := doc.chain(q, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := doc.chain(MustParseQuery(paperQ1), Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("equal queries did not share a cached chain")
	}
	c3, err := doc.chain(q, Weights{Structural: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c3 {
		t.Error("different weights shared a chain")
	}
}

func TestConcurrentSearches(t *testing.T) {
	tree, err := xmark.Build(xmark.Config{TargetBytes: 64 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDocument(tree)
	queries := []string{
		`//item[./description/parlist]`,
		`//item[./mailbox/mail/text]`,
		`//item[./name and ./incategory]`,
	}
	done := make(chan error, 12)
	for i := 0; i < 12; i++ {
		go func(i int) {
			q := MustParseQuery(queries[i%len(queries)])
			_, err := doc.Search(q, SearchOptions{
				K:         5 + i,
				Algorithm: []Algorithm{DPO, SSO, Hybrid}[i%3],
			})
			done <- err
		}(i)
	}
	for i := 0; i < 12; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMetricsPopulated(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if _, err := doc.Search(MustParseQuery(paperQ1), SearchOptions{
		K: 3, Algorithm: SSO, Metrics: &m,
	}); err != nil {
		t.Fatal(err)
	}
	if m.PlansRun == 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
}

// TestAnswerSnippetRuneBoundaries is the regression test for the
// structure-only snippet path truncating inside a multi-byte rune: a
// query without full-text terms takes the raw-prefix branch of
// Answer.Snippet, and every budget in the sweep must still yield valid
// UTF-8.
func TestAnswerSnippetRuneBoundaries(t *testing.T) {
	body := strings.Repeat("über naïve café résumé ", 10)
	doc, err := LoadString(`<collection><article id="a1"><section><paragraph>` +
		body + `</paragraph></section></article></collection>`)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := doc.Search(MustParseQuery(`//article[./section/paragraph]`), SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %d, want 1", len(answers))
	}
	for n := 5; n <= 60; n++ {
		s := answers[0].Snippet(n)
		if !utf8.ValidString(s) {
			t.Fatalf("n=%d: snippet is invalid UTF-8: %q", n, s)
		}
	}
}

func TestAnswerRelaxedExplanations(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := doc.Search(MustParseQuery(paperQ1), SearchOptions{K: 3, Algorithm: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range answers {
		if a.Relaxations == 0 && len(a.Relaxed) != 0 {
			t.Errorf("exact answer %s has relaxation explanations %v", a.ID, a.Relaxed)
		}
		if a.Relaxations > 0 && len(a.Relaxed) == 0 {
			t.Errorf("relaxed answer %s (level %d) has no explanations", a.ID, a.Relaxations)
		}
		for _, why := range a.Relaxed {
			if why == "" {
				t.Errorf("empty explanation on %s", a.ID)
			}
		}
	}
}

func TestLoadWithOptionsBM25(t *testing.T) {
	r := strings.NewReader(articlesXML)
	doc, err := LoadWithOptions(r, DocumentOptions{BM25: true})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := doc.Search(MustParseQuery(paperQ1), SearchOptions{K: 3, Scheme: KeywordFirst})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers under BM25")
	}
	for _, a := range answers {
		if a.Keyword < 0 || a.Keyword > float64(1)+1e-9 {
			t.Errorf("BM25 keyword score out of range: %f", a.Keyword)
		}
	}
}

func TestSearchOffsetPagination(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(paperQ1)
	all, err := doc.Search(q, SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("setup: %d answers", len(all))
	}
	page2, err := doc.Search(q, SearchOptions{K: 2, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2) != 2 || page2[0].ID != all[1].ID || page2[1].ID != all[2].ID {
		t.Errorf("offset page wrong: %v vs all %v", ids(page2), ids(all))
	}
	beyond, err := doc.Search(q, SearchOptions{K: 5, Offset: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(beyond) != 0 {
		t.Errorf("offset beyond results returned %d answers", len(beyond))
	}
}

func ids(as []Answer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.ID
	}
	return out
}

func TestQueryMinimize(t *testing.T) {
	// A query with a redundant branch: .//b is implied by ./b.
	q := MustParseQuery(`//a[./b and .//b]`)
	m, err := q.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if m.Vars() != 2 {
		t.Errorf("minimized query has %d vars, want 2: %s", m.Vars(), m)
	}
	// Already-minimal queries survive unchanged (same canonical form).
	q2 := MustParseQuery(paperQ1)
	m2, err := q2.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Vars() != q2.Vars() {
		t.Errorf("minimal query changed: %s", m2)
	}
}

func TestSnippetCentersOnKeywords(t *testing.T) {
	long := strings.Repeat("filler words here ", 40)
	doc, err := LoadString(`<lib><book id="b"><para>` + long + `golden treasure ` + long + `</para></book></lib>`)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := doc.Search(MustParseQuery(`//book[.contains("golden")]`), SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatal("no answer")
	}
	s := answers[0].Snippet(80)
	if !strings.Contains(s, "golden") {
		t.Errorf("snippet not centered on keyword: %q", s)
	}
}

func TestAnalyzePlan(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	out, err := doc.AnalyzePlan(MustParseQuery(paperQ1), SearchOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"relaxations encoded", "tuples-in", "article", "paragraph"} {
		if !strings.Contains(out, want) {
			t.Errorf("AnalyzePlan output missing %q:\n%s", want, out)
		}
	}
}
