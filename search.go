package flexpath

import (
	"context"

	"flexpath/internal/core"
	"flexpath/internal/exec"
	"flexpath/internal/obs"
	"flexpath/internal/planner"
	"flexpath/internal/rank"
	"flexpath/internal/topk"
)

// topkResult aliases the internal result type for the bridge below.
type topkResult = topk.Result

// bridgeOptions carries converted options plus the internal metrics sink.
type bridgeOptions struct {
	opts topk.Options
}

func topkOptions(ctx context.Context, o SearchOptions) *bridgeOptions {
	// The active observability span (if any) rides the context; capture
	// it before the background context is normalized away.
	span := obs.SpanFrom(ctx)
	// Pagination: the algorithms compute the top Offset+K answers; the
	// public layer slices the window off afterwards.
	if ctx == context.Background() {
		// The algorithms treat a nil context as "never cancelled" and
		// skip polling entirely.
		ctx = nil
	}
	return &bridgeOptions{opts: topk.Options{
		K:        o.K + o.Offset,
		Scheme:   o.Scheme.rank(),
		Parallel: o.Parallel,
		Ctx:      ctx,
		Metrics:  &topk.Metrics{},
		Span:     span,
	}}
}

func (b *bridgeOptions) export() Metrics {
	m := b.opts.Metrics
	return Metrics{
		QueriesEvaluated:   m.QueriesEvaluated,
		PlansRun:           m.PlansRun,
		RelaxationsEncoded: m.RelaxationsEncoded,
		Restarts:           m.Restarts,
		TuplesGenerated:    m.Pipeline.TuplesGenerated,
		TuplesPruned:       m.Pipeline.TuplesPruned,
		SortedTuples:       m.Pipeline.SortedTuples,
		Buckets:            m.Pipeline.Buckets,
		PairsMaterialized:  m.PairsMaterialized,
	}
}

func runDPO(d *Document, chain *core.Chain, b *bridgeOptions) []topkResult {
	return topk.DPO(d.ev, chain, b.opts)
}

func runSSO(d *Document, chain *core.Chain, b *bridgeOptions) []topkResult {
	return topk.SSO(chain, d.est, b.opts)
}

func runHybrid(d *Document, chain *core.Chain, b *bridgeOptions) []topkResult {
	return topk.Hybrid(chain, d.est, b.opts)
}

// runAuto dispatches through the document's cost-based planner and
// returns the choice alongside the results, so the public layer can
// report which algorithm ran and why.
func runAuto(d *Document, chain *core.Chain, b *bridgeOptions) ([]topkResult, planner.Choice) {
	return topk.Auto(d.ev, chain, d.est, d.pl, b.opts)
}

func explainPlan(d *Document, chain *core.Chain, b *bridgeOptions) (string, error) {
	return topk.Explain(chain, d.est, b.opts)
}

func analyzePlan(d *Document, chain *core.Chain, b *bridgeOptions) (string, error) {
	return topk.Analyze(chain, d.est, b.opts)
}

// rankScore converts a public Answer back to the internal score pair for
// cross-document merging.
func rankScore(a Answer) rank.Score {
	return rank.Score{SS: a.Structural, KS: a.Keyword}
}

// dataRelaxBudget bounds how many shortcut edges the data-relaxation
// baseline may materialize before declaring failure.
const dataRelaxBudget = 1 << 26

func runDataRelax(d *Document, chain *core.Chain, b *bridgeOptions) ([]topkResult, error) {
	return topk.DataRelax(chain, b.opts, dataRelaxBudget)
}

// runDPOSemijoin exposes the semijoin DPO ablation to the benchmarks.
func runDPOSemijoin(d *Document, chain *core.Chain, k int) []topkResult {
	return topk.DPOSemijoin(d.ev, chain, topk.Options{K: k, Scheme: rank.StructureFirst})
}

// runPlanAblation exposes the best-only ablation to the benchmarks.
func runPlanAblation(d *Document, plan *exec.Plan, k int, disableBestOnly bool) []exec.Answer {
	return exec.Run(plan, exec.Options{
		K: k, Mode: exec.ModeBuckets, DisableBestOnly: disableBestOnly,
	})
}

// runEvaluate exposes the two exact-evaluation strategies to benchmarks.
func runEvaluate(d *Document, q *Query, irFirst bool) int {
	if irFirst {
		return len(d.ev.EvaluateIRFirst(q.q))
	}
	return len(d.ev.Evaluate(q.q))
}
