// Auction: top-K search over an XMark-style auction document, comparing
// the three evaluation algorithms (DPO, SSO, Hybrid) on the paper's
// experiment workload.
//
// Run with: go run ./examples/auction [-mb 2] [-k 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"flexpath"
	"flexpath/internal/xmark"
)

func main() {
	mb := flag.Float64("mb", 2, "document size in MiB")
	k := flag.Int("k", 100, "top-K")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	fmt.Printf("generating %.1f MiB auction document (seed %d)...\n", *mb, *seed)
	tree, err := xmark.Build(xmark.Config{
		TargetBytes: int64(*mb * float64(1<<20)),
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	doc := flexpath.NewDocument(tree)
	fmt.Printf("indexed %d elements in %v\n\n", doc.Nodes(), time.Since(start).Round(time.Millisecond))

	// XQ3 of the paper's experiments: a six-relaxation query.
	q, err := flexpath.ParseQuery(`//item[./description/parlist/listitem and ` +
		`./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nk = %d\n\n", q, *k)

	var baseline []flexpath.Answer
	for _, algo := range []flexpath.Algorithm{flexpath.DPO, flexpath.SSO, flexpath.Hybrid} {
		var m flexpath.Metrics
		t0 := time.Now()
		answers, err := doc.Search(q, flexpath.SearchOptions{
			K: *k, Algorithm: algo, Metrics: &m,
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		fmt.Printf("%-7s %8v  answers=%d  queries=%d plans=%d relaxations=%d tuples=%d pruned=%d sorted=%d buckets=%d\n",
			algo, elapsed.Round(time.Microsecond), len(answers),
			m.QueriesEvaluated, m.PlansRun, m.RelaxationsEncoded,
			m.TuplesGenerated, m.TuplesPruned, m.SortedTuples, m.Buckets)
		if baseline == nil {
			baseline = answers
		}
	}

	fmt.Println("\ntop answers:")
	for i, a := range baseline {
		if i >= 5 {
			fmt.Printf("... and %d more\n", len(baseline)-5)
			break
		}
		fmt.Printf("%d. %s (%s) structural=%.3f keyword=%.3f relaxations=%d\n",
			i+1, a.ID, a.Path, a.Structural, a.Keyword, a.Relaxations)
	}

	fmt.Println("\nrelaxation chain for this query on this document:")
	steps, err := doc.Relaxations(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		fmt.Printf("%2d. %-45s penalty=%.4f score=%.4f\n", s.Level, s.Description, s.Penalty, s.Score)
	}
}
