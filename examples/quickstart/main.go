// Quickstart: load a small document, run one flexible query, print the
// ranked answers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flexpath"
)

const library = `
<library>
  <book id="b1">
    <title>Streaming XML Processing</title>
    <chapter>
      <section>
        <para>We study streaming evaluation of XML queries using stacks.</para>
      </section>
    </chapter>
  </book>
  <book id="b2">
    <title>Query Engines</title>
    <chapter>
      <abstract>An overview of XML streaming engines and their costs.</abstract>
      <section>
        <para>Relational engines evaluate joins over tables.</para>
      </section>
    </chapter>
  </book>
  <book id="b3">
    <title>Databases</title>
    <chapter>
      <section>
        <para>Classic transaction processing.</para>
      </section>
    </chapter>
    <appendix>
      <para>A short note on XML streaming APIs.</para>
    </appendix>
  </book>
</library>`

func main() {
	doc, err := flexpath.LoadString(library)
	if err != nil {
		log.Fatal(err)
	}

	// Ask for books whose chapter has a section with a paragraph about
	// "XML streaming". Only b1 matches exactly; FleXPath relaxes the
	// structure to also return b2 (keywords in the abstract, not a
	// paragraph) and b3 (paragraph in an appendix, not a chapter) with
	// lower structural scores.
	q, err := flexpath.ParseQuery(
		`//book[./chapter/section/para[.contains("XML" and "streaming")]]`)
	if err != nil {
		log.Fatal(err)
	}

	answers, err := doc.Search(q, flexpath.SearchOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n\n", q)
	for i, a := range answers {
		fmt.Printf("%d. %s (id=%s)\n   structural=%.3f keyword=%.3f relaxations=%d\n   %s\n",
			i+1, a.Path, a.ID, a.Structural, a.Keyword, a.Relaxations, a.Snippet(70))
	}

	// Show how the engine would relax the query, cheapest first.
	fmt.Println("\nrelaxation chain:")
	steps, err := doc.Relaxations(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		fmt.Printf("  %2d. %-45s penalty=%.3f score=%.3f\n",
			s.Level, s.Description, s.Penalty, s.Score)
	}
}
