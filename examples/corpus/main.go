// Corpus: searching a multi-document collection, with snapshots and the
// §3.4 extension relaxations (type hierarchies).
//
// The program builds two synthetic corpora — an INEX-style article
// collection and an XMark-style auction document — searches them together
// as one collection, demonstrates binary snapshots, and shows
// hierarchy-widened matching.
//
// Run with: go run ./examples/corpus
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"flexpath"
	"flexpath/internal/inex"
	"flexpath/internal/xmark"
)

func main() {
	articles, err := inex.Build(inex.Config{Articles: 400, Seed: 11})
	dieIf(err)
	auction, err := xmark.Build(xmark.Config{TargetBytes: 512 << 10, Seed: 11})
	dieIf(err)

	coll := flexpath.NewCollection()
	dieIf(coll.Add("articles.xml", flexpath.NewDocument(articles)))
	dieIf(coll.Add("auction.xml", flexpath.NewDocument(auction)))
	fmt.Printf("collection: %d documents, %d elements\n\n", coll.Len(), coll.Nodes())

	// A structural+full-text query that only the article corpus matches
	// exactly; relaxed matches may surface from either document.
	q, err := flexpath.ParseQuery(
		`//article[./section[./algorithm and ./paragraph[.contains("xml" and "streaming")]]]`)
	dieIf(err)

	answers, err := coll.Search(q, flexpath.SearchOptions{K: 8})
	dieIf(err)
	fmt.Println("=== top answers across the collection ===")
	for i, a := range answers {
		fmt.Printf("%d. [%s] %-28s ss=%.2f ks=%.2f relax=%d\n",
			i+1, a.DocName, a.ID, a.Structural, a.Keyword, a.Relaxations)
	}

	// Snapshots: persist the parsed article corpus and reload it without
	// re-parsing XML.
	dir, err := os.MkdirTemp("", "flexpath")
	dieIf(err)
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "articles.fxt")
	artDoc, _ := coll.Document("articles.xml")
	dieIf(artDoc.SaveSnapshotFile(snap))
	start := time.Now()
	restored, err := flexpath.LoadSnapshotFile(snap)
	dieIf(err)
	fmt.Printf("\nsnapshot reload: %d elements in %v\n", restored.Nodes(), time.Since(start).Round(time.Microsecond))

	// Hierarchy extension (§3.4): treat subsection as a subtype of
	// section, so queries about sections also see subsections.
	fmt.Println("\n=== type-hierarchy widening (subsection <: section) ===")
	hq, err := flexpath.ParseQuery(`//article[./section/section/paragraph]`)
	dieIf(err)
	for _, h := range []map[string]string{nil, {"subsection": "section"}} {
		res, err := restored.Search(hq, flexpath.SearchOptions{K: 50, Hierarchy: h})
		dieIf(err)
		exact := 0
		for _, a := range res {
			if a.Relaxations == 0 {
				exact++
			}
		}
		label := "without hierarchy"
		if h != nil {
			label = "with hierarchy   "
		}
		fmt.Printf("%s: %d exact matches of //article[./section/section/paragraph]\n", label, exact)
	}

	// Show the plan the optimizer would run, for the curious.
	fmt.Println("\n=== evaluation plan for the main query ===")
	plan, err := restored.ExplainPlan(q, flexpath.SearchOptions{K: 8})
	dieIf(err)
	fmt.Print(plan)
}

func dieIf(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
