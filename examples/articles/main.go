// Articles: the paper's running example (Figure 1 / §1), executable.
//
// The program builds a small INEX/SIGMOD-Record-style article collection,
// runs the paper's query Q1 under strict semantics and under FleXPath's
// flexible semantics, and then evaluates the whole Q1..Q6 ladder to show
// how each hand-written relaxation corresponds to answers FleXPath finds
// automatically.
//
// Run with: go run ./examples/articles
package main

import (
	"fmt"
	"log"

	"flexpath"
)

// collection mirrors the situations discussed in the paper's
// introduction:
//
//	a1 — matches Q1 exactly (algorithm and keyword paragraph in the same
//	     section);
//	a2 — keywords in the section title, not a paragraph (caught by Q2);
//	a3 — all algorithms outside the keyword section (caught by Q3);
//	a4 — keywords only at the article level (caught by Q6);
//	a5 — irrelevant.
const collection = `
<inex>
  <article id="a1">
    <title>Evaluating XPath on streams</title>
    <section>
      <title>Evaluation</title>
      <algorithm>stack-merge</algorithm>
      <paragraph>Our algorithm evaluates XML streaming workloads in one pass.</paragraph>
    </section>
  </article>
  <article id="a2">
    <title>Storage engines</title>
    <section>
      <title>Layouts for XML streaming</title>
      <algorithm>page-split</algorithm>
      <paragraph>We describe page layouts for persistent trees.</paragraph>
    </section>
  </article>
  <article id="a3">
    <title>Join processing</title>
    <section>
      <title>Twig joins</title>
      <paragraph>Structural joins handle XML streaming input lists.</paragraph>
    </section>
    <appendix>
      <algorithm>twig-stack</algorithm>
    </appendix>
  </article>
  <article id="a4">
    <title>A survey of XML streaming systems</title>
    <section>
      <title>Scope</title>
      <paragraph>We classify published systems by their cost model.</paragraph>
    </section>
  </article>
  <article id="a5">
    <title>Relational optimizers</title>
    <section>
      <title>Cost models</title>
      <paragraph>Cardinality estimation for SQL plans.</paragraph>
    </section>
  </article>
</inex>`

// ladder is the Q1..Q6 ladder of Figure 1.
var ladder = []struct{ name, src string }{
	{"Q1", `//article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]`},
	{"Q2", `//article[./section[./algorithm and ./paragraph and .contains("XML" and "streaming")]]`},
	{"Q3", `//article[.//algorithm and ./section[./paragraph[.contains("XML" and "streaming")]]]`},
	{"Q4", `//article[.//algorithm and ./section[./paragraph and .contains("XML" and "streaming")]]`},
	{"Q5", `//article[./section[./paragraph and .contains("XML" and "streaming")]]`},
	{"Q6", `//article[.contains("XML" and "streaming")]`},
}

func main() {
	doc, err := flexpath.LoadString(collection)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== The hand-written ladder (what a user would have to do) ===")
	for _, q := range ladder {
		query, err := flexpath.ParseQuery(q.src)
		if err != nil {
			log.Fatal(err)
		}
		// K=1 with zero relaxations means "strict": abuse Search with a
		// large K and keep only exact (0-relaxation) answers.
		answers, err := doc.Search(query, flexpath.SearchOptions{K: 10})
		if err != nil {
			log.Fatal(err)
		}
		var exact []string
		for _, a := range answers {
			if a.Relaxations == 0 {
				exact = append(exact, a.ID)
			}
		}
		fmt.Printf("%s -> %v\n", q.name, exact)
	}

	fmt.Println("\n=== One FleXPath query instead (top-4, structure-first) ===")
	q1, err := flexpath.ParseQuery(ladder[0].src)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := doc.Search(q1, flexpath.SearchOptions{K: 4})
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range answers {
		fmt.Printf("%d. %-3s structural=%.3f keyword=%.3f relaxations=%d\n",
			i+1, a.ID, a.Structural, a.Keyword, a.Relaxations)
	}

	fmt.Println("\n=== The relaxations FleXPath applied, cheapest first ===")
	steps, err := doc.Relaxations(q1)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		fmt.Printf("%2d. %-45s penalty=%.3f\n", s.Level, s.Description, s.Penalty)
	}

	fmt.Println("\n=== Ranking schemes compared (top answer under each) ===")
	for _, scheme := range []flexpath.Scheme{
		flexpath.StructureFirst, flexpath.KeywordFirst, flexpath.Combined,
	} {
		answers, err := doc.Search(q1, flexpath.SearchOptions{K: 4, Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s:", scheme)
		for _, a := range answers {
			fmt.Printf(" %s(ss=%.2f,ks=%.2f)", a.ID, a.Structural, a.Keyword)
		}
		fmt.Println()
	}
}
