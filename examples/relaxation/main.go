// Relaxation: a tour of the formal machinery of §3 of the paper — the
// logical form of a tree pattern query, its closure under the inference
// rules, the unique core, the four relaxation operators, and the
// enumerated relaxation space with its containment structure.
//
// Run with: go run ./examples/relaxation
package main

import (
	"fmt"

	"flexpath/internal/core"
	"flexpath/internal/tpq"
)

func main() {
	q1 := tpq.MustParse(
		`//article[./section[./algorithm and ./paragraph[.contains("XML" and "streaming")]]]`)

	fmt.Println("=== Query Q1 (Figure 1a) ===")
	fmt.Println(q1)

	fmt.Println("\n=== Logical form (Figure 2) ===")
	for _, p := range tpq.Logical(q1).List() {
		fmt.Println(" ", p.Key())
	}

	fmt.Println("\n=== Closure (Figure 4): saturated under the inference rules ===")
	cl := tpq.ClosureOf(q1)
	for _, p := range cl.List() {
		derived := !tpq.Logical(q1).Has(p)
		mark := " "
		if derived {
			mark = "+"
		}
		fmt.Printf(" %s %s\n", mark, p.Key())
	}

	fmt.Println("\n=== Dropping pc($2,$3) and ad($2,$3); the core is Q3 (Figure 5) ===")
	reduced := cl.Minus(
		tpq.Pred{Kind: tpq.PredPC, X: 2, Y: 3},
		tpq.Pred{Kind: tpq.PredAD, X: 2, Y: 3},
	)
	coreSet := tpq.Core(reduced)
	for _, p := range coreSet.List() {
		fmt.Println(" ", p.Key())
	}
	q3, err := tpq.TreeFromPreds(coreSet, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("reconstructed:", q3)

	fmt.Println("\n=== The four operators on Q1 ===")
	for _, op := range core.ApplicableOps(q1) {
		relaxed, err := op.Apply(q1)
		if err != nil {
			continue
		}
		fmt.Printf(" %-28s -> %s\n", op, relaxed)
	}

	fmt.Println("\n=== Relaxation space (BFS, depth <= 2) ===")
	space := core.EnumerateRelaxations(q1, 2)
	fmt.Printf("%d distinct relaxations within two operator applications\n", len(space)-1)
	for _, r := range space {
		if r.Depth > 1 {
			break
		}
		fmt.Printf(" depth %d via %-30v %s\n", r.Depth, r.Ops, r.Query)
	}

	full := core.EnumerateRelaxations(q1, -1)
	fmt.Printf("\nfull space size: %d queries\n", len(full))

	fmt.Println("\n=== Containment sanity: every relaxation contains Q1 ===")
	bad := 0
	for _, r := range full[1:] {
		if !tpq.ContainedIn(q1, r.Query) {
			bad++
		}
	}
	fmt.Printf("violations: %d (Theorem 2 soundness)\n", bad)
}
