package flexpath

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fxp3Bytes(t *testing.T, doc *Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := doc.SaveFXP3Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameRanking fails the test unless two rankings agree answer for
// answer, including scores and relaxation counts.
func sameRanking(t *testing.T, a, b []Answer) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("answers %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path != b[i].Path || a[i].ID != b[i].ID ||
			a[i].Structural != b[i].Structural || a[i].Keyword != b[i].Keyword ||
			a[i].Relaxations != b[i].Relaxations {
			t.Errorf("answer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFXP3SnapshotRoundTrip(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFXP3Snapshot(bytes.NewReader(fxp3Bytes(t, doc)))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Nodes() != doc.Nodes() {
		t.Fatalf("nodes %d != %d", restored.Nodes(), doc.Nodes())
	}
	q := MustParseQuery(paperQ1)
	a, err := doc.Search(q, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Search(q, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	sameRanking(t, a, b)
	// Snippets read text through the restored tree's columns.
	for i := range a {
		if a[i].Snippet(40) != b[i].Snippet(40) {
			t.Errorf("snippet %d differs: %q vs %q", i, a[i].Snippet(40), b[i].Snippet(40))
		}
	}
	// Relaxation chains (penalties need stats + index) agree too.
	sa, err := doc.Relaxations(q)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := restored.Relaxations(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(sb) {
		t.Fatalf("chains differ in length: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Description != sb[i].Description || sa[i].Penalty != sb[i].Penalty {
			t.Errorf("chain step %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

func TestFXP3FileMetaAndAuto(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.fxp3")
	if err := doc.SaveFXP3SnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	meta, err := ReadFXP3Meta(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Nodes != doc.Nodes() || meta.BM25 {
		t.Fatalf("meta %+v, want %d nodes, tf-idf", meta, doc.Nodes())
	}
	if meta.SourceBytes <= 0 || meta.Tags <= 0 {
		t.Fatalf("meta %+v missing source size or tag count", meta)
	}

	// LoadAuto detects the FXP3 magic and takes the mmap path.
	auto, err := LoadAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close() //nolint:errcheck
	q := MustParseQuery(paperQ1)
	a, _ := doc.Search(q, SearchOptions{K: 3})
	b, _ := auto.Search(q, SearchOptions{K: 3})
	sameRanking(t, a, b)

	// Close is idempotent, and a no-op for documents without a mapping.
	if err := auto.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := doc.Close(); err != nil {
		t.Fatalf("Close on unmapped document: %v", err)
	}

	if _, err := LoadFXP3SnapshotFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadFXP3Meta(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted by ReadFXP3Meta")
	}
}

func TestFXP3BM25Preserved(t *testing.T) {
	doc, err := LoadWithOptions(strings.NewReader(articlesXML), DocumentOptions{BM25: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.fxp3")
	if err := doc.SaveFXP3SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	meta, err := ReadFXP3Meta(path)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.BM25 {
		t.Fatal("meta lost the BM25 flag")
	}
	restored, err := LoadFXP3SnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close() //nolint:errcheck
	q := MustParseQuery(paperQ1)
	a, _ := doc.Search(q, SearchOptions{K: 3, Scheme: KeywordFirst})
	b, _ := restored.Search(q, SearchOptions{K: 3, Scheme: KeywordFirst})
	for i := range a {
		if a[i].Keyword != b[i].Keyword {
			t.Errorf("BM25 scores drifted after restore: %f vs %f", a[i].Keyword, b[i].Keyword)
		}
	}
}

// TestFXP3RejectsTruncationAtEveryOffset cuts a valid FXP3 snapshot at
// every possible length: no prefix may load. (The section directory
// covers the whole payload and each section is checksummed, so any cut
// lands in a failed directory check, a missing section or a checksum
// mismatch.)
func TestFXP3RejectsTruncationAtEveryOffset(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	data := fxp3Bytes(t, doc)
	for n := 0; n < len(data); n++ {
		if _, err := LoadFXP3Snapshot(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded", n, len(data))
		} else if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorruptSnapshot", n, err)
		}
	}
}

func TestFXP3RejectsBitFlips(t *testing.T) {
	doc, err := LoadString(articlesXML)
	if err != nil {
		t.Fatal(err)
	}
	data := fxp3Bytes(t, doc)
	// Flipping any single bit must be caught: header and directory by
	// Parse, payloads by the per-section checksum. Sampling every 97th
	// byte keeps the test fast while walking all regions of the file.
	for off := 0; off < len(data); off += 97 {
		b := bytes.Clone(data)
		b[off] ^= 0x10
		if _, err := LoadFXP3Snapshot(bytes.NewReader(b)); err == nil {
			t.Fatalf("bit flip at offset %d loaded", off)
		} else if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("bit flip at offset %d: err = %v, want ErrCorruptSnapshot", off, err)
		}
	}
}

func TestFXP3FileErrorsNameTheFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.fxp3")
	if err := os.WriteFile(path, []byte("FXP3 but then garbage follows"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, load := range []func() error{
		func() error { _, err := LoadFXP3SnapshotFile(path); return err },
		func() error { _, err := ReadFXP3Meta(path); return err },
		func() error { _, err := LoadAuto(path); return err },
		func() error { return NewCollection().AddSnapshotFile("broken", path) },
	} {
		err := load()
		if err == nil {
			t.Fatal("garbage FXP3 file accepted")
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Errorf("err = %v, want ErrCorruptSnapshot", err)
		}
		if !strings.Contains(err.Error(), "broken.fxp3") {
			t.Errorf("error does not name the file: %v", err)
		}
	}
}
