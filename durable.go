package flexpath

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexpath/internal/wal"
)

// A DurableCollection is a Collection whose mutations survive a crash:
// every Add, Replace and Remove is framed into a write-ahead log and
// fsync'd before it is acknowledged, periodic checkpoints bound replay
// time by persisting the whole corpus as FXP2 indexed snapshots, and
// OpenDurableCollection recovers the exact acknowledged state on boot
// (newest valid checkpoint, then WAL replay, truncating a torn tail
// record instead of failing).
//
// Ordering: a mutation is appended to the log buffer, applied to the
// in-memory collection, and only then acknowledged once an fsync covers
// its record — so the on-disk order always precedes the apply order,
// searches may observe a mutation slightly before its ack (acceptable
// for a search corpus), and a crash can only lose mutations that were
// never acknowledged. Mutations are serialized by an internal mutex;
// searches run concurrently against the wrapped Collection as usual.
type DurableCollection struct {
	c   *Collection
	log *wal.Log
	dir string

	// every is the checkpoint cadence in mutations; <= 0 disables
	// automatic checkpoints (Checkpoint can still be called manually).
	every int

	// mu serializes mutations (existence check + log append + apply) and
	// log rotation, so a rotation's sealed segments hold only applied —
	// hence checkpoint-visible — records.
	mu        sync.Mutex
	sinceCkpt int

	// ckptMu is held while a checkpoint image is serialized and written;
	// TryLock on the trigger path makes overlapping automatic
	// checkpoints impossible without blocking mutations.
	ckptMu sync.Mutex
	wg     sync.WaitGroup

	replayed    uint64
	tornBytes   int64
	bootCkptLSN uint64

	ckpts        atomic.Uint64
	ckptErrs     atomic.Uint64
	ckptLastNano atomic.Int64
	closed       atomic.Bool
}

// DurableOptions configures OpenDurableCollection.
type DurableOptions struct {
	// SyncWindow is the WAL group-commit window: an acknowledgment may be
	// delayed up to this long so concurrent mutations share one fsync.
	// 0 fsyncs every mutation immediately (maximum durability latency
	// cost, minimum ack latency under light load).
	SyncWindow time.Duration
	// CheckpointEvery is how many mutations may accumulate before a
	// background checkpoint persists the corpus and prunes the log.
	// 0 picks DefaultCheckpointEvery; negative disables automatic
	// checkpoints.
	CheckpointEvery int
}

// DefaultCheckpointEvery is the automatic checkpoint cadence when
// DurableOptions.CheckpointEvery is zero.
const DefaultCheckpointEvery = 1024

// Sentinel errors distinguishing mutation failures an API layer maps to
// distinct statuses (conflict vs not-found vs bad input).
var (
	// ErrDocumentExists reports an Add naming a document already present.
	ErrDocumentExists = errors.New("document already exists")
	// ErrNoDocument reports a Remove or Replace naming an absent document.
	ErrNoDocument = errors.New("no such document")
	// ErrBadDocument reports a body that failed to parse; the mutation was
	// never logged. API layers map it to a client error, unlike the I/O
	// failures the other paths can return.
	ErrBadDocument = errors.New("bad document")
)

// OpenDurableCollection opens (creating as needed) a durable collection
// rooted at dir, recovering any previous state: the newest valid
// checkpoint is loaded first, then the write-ahead log is replayed
// through the normal mutation path. A torn tail record — the signature
// of a crash mid-append — is truncated, not an error.
func OpenDurableCollection(dir string, opts DurableOptions) (*DurableCollection, error) {
	every := opts.CheckpointEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	dc := &DurableCollection{c: NewCollection(), dir: dir, every: every}

	ckptLSN, docs, found, err := wal.ReadLatestCheckpoint(dir)
	if err != nil {
		return nil, fmt.Errorf("flexpath: durable open: %w", err)
	}
	if found {
		for _, d := range docs {
			doc, err := LoadIndexedSnapshot(bytes.NewReader(d.Data))
			if err != nil {
				return nil, fmt.Errorf("flexpath: checkpoint document %q: %w", d.Name, err)
			}
			if err := dc.c.Add(d.Name, doc); err != nil {
				return nil, fmt.Errorf("flexpath: checkpoint document %q: %w", d.Name, err)
			}
		}
		dc.bootCkptLSN = ckptLSN
	}

	log, rec, err := wal.Open(dir, wal.Options{SyncWindow: opts.SyncWindow, AfterLSN: ckptLSN}, dc.applyReplay)
	if err != nil {
		return nil, fmt.Errorf("flexpath: durable open: %w", err)
	}
	dc.log = log
	dc.replayed = uint64(rec.Replayed)
	dc.tornBytes = rec.TornBytes
	return dc, nil
}

// applyReplay applies one recovered WAL record. Replay is deliberately
// tolerant of state mismatches (add of a present name applies as
// replace, remove of an absent name is a no-op): a checkpoint may cover
// a prefix of a record's effects after an ill-timed crash, and
// convergence matters more than strictness when rebuilding state that
// was already acknowledged once.
func (dc *DurableCollection) applyReplay(r wal.Record) error {
	switch r.Op {
	case wal.OpAdd, wal.OpReplace:
		doc, err := loadDocumentBytes(r.Doc)
		if err != nil {
			return fmt.Errorf("parse document %q: %w", r.Name, err)
		}
		if _, ok := dc.c.Document(r.Name); ok {
			return dc.c.Replace(r.Name, doc)
		}
		return dc.c.Add(r.Name, doc)
	case wal.OpRemove:
		if _, ok := dc.c.Document(r.Name); !ok {
			return nil
		}
		return dc.c.Remove(r.Name)
	}
	return fmt.Errorf("unknown op %d", r.Op)
}

// loadDocumentBytes builds a Document from raw bytes, routing binary
// snapshots by magic the way LoadAuto does for files. WAL records from
// admin uploads always hold XML; records seeded from command-line files
// may hold snapshots.
func loadDocumentBytes(b []byte) (*Document, error) {
	switch {
	case len(b) >= 4 && string(b[:4]) == "FXT1":
		return LoadSnapshot(bytes.NewReader(b))
	case len(b) >= 4 && string(b[:4]) == "FXP2":
		return LoadIndexedSnapshot(bytes.NewReader(b))
	}
	return Load(bytes.NewReader(b))
}

// Collection returns the live collection for searching and read-side
// configuration (caches, stats). Mutate only through the
// DurableCollection — direct Collection mutations bypass the log and
// will not survive a restart.
func (dc *DurableCollection) Collection() *Collection { return dc.c }

// Add durably inserts an XML document under name, failing with
// ErrDocumentExists if the name is taken.
func (dc *DurableCollection) Add(name string, body []byte) error {
	doc, err := Load(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	return dc.apply(wal.OpAdd, name, body, doc)
}

// Replace durably swaps the named document for the posted XML, failing
// with ErrNoDocument if the name is absent.
func (dc *DurableCollection) Replace(name string, body []byte) error {
	doc, err := Load(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	return dc.apply(wal.OpReplace, name, body, doc)
}

// Upsert durably adds the document if the name is absent and replaces it
// otherwise. Retrying an upsert after an ambiguous failure (a crashed or
// unreachable server) is always safe, which makes it the right verb for
// bulk ingest pipelines.
func (dc *DurableCollection) Upsert(name string, body []byte) error {
	doc, err := Load(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	dc.mu.Lock()
	op := wal.OpAdd
	if _, ok := dc.c.Document(name); ok {
		op = wal.OpReplace
	}
	lsn, err := dc.stageLocked(op, name, body, doc)
	dc.mu.Unlock()
	if err != nil {
		return err
	}
	return dc.log.WaitDurable(lsn)
}

// Remove durably deletes the named document, failing with ErrNoDocument
// if it is absent.
func (dc *DurableCollection) Remove(name string) error {
	return dc.apply(wal.OpRemove, name, nil, nil)
}

// RemoveIfPresent durably deletes the named document if it exists and
// reports whether it did. Like Upsert, it is retry-safe.
func (dc *DurableCollection) RemoveIfPresent(name string) (bool, error) {
	dc.mu.Lock()
	if _, ok := dc.c.Document(name); !ok {
		dc.mu.Unlock()
		return false, nil
	}
	lsn, err := dc.stageLocked(wal.OpRemove, name, nil, nil)
	dc.mu.Unlock()
	if err != nil {
		return false, err
	}
	return true, dc.log.WaitDurable(lsn)
}

// Seed durably inserts a document from raw file bytes (XML or a binary
// snapshot, routed by magic) if the name is absent; present names are
// left untouched. flexserve uses it to ingest command-line corpus files
// into a fresh WAL directory exactly once.
func (dc *DurableCollection) Seed(name string, data []byte) error {
	doc, err := loadDocumentBytes(data)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	dc.mu.Lock()
	if _, ok := dc.c.Document(name); ok {
		dc.mu.Unlock()
		return nil
	}
	lsn, err := dc.stageLocked(wal.OpAdd, name, data, doc)
	dc.mu.Unlock()
	if err != nil {
		return err
	}
	return dc.log.WaitDurable(lsn)
}

// apply takes the mutation lock, runs the strict-precondition path, and
// acknowledges once the record is durable. The durability wait happens
// after the lock is released: concurrent mutations stage back-to-back
// and share one group-commit fsync instead of serializing through it.
func (dc *DurableCollection) apply(op wal.Op, name string, body []byte, doc *Document) error {
	dc.mu.Lock()
	_, exists := dc.c.Document(name)
	switch op {
	case wal.OpAdd:
		if exists {
			dc.mu.Unlock()
			return fmt.Errorf("flexpath: %w: %q", ErrDocumentExists, name)
		}
	case wal.OpReplace, wal.OpRemove:
		if !exists {
			dc.mu.Unlock()
			return fmt.Errorf("flexpath: %w: %q", ErrNoDocument, name)
		}
	}
	lsn, err := dc.stageLocked(op, name, body, doc)
	dc.mu.Unlock()
	if err != nil {
		return err
	}
	return dc.log.WaitDurable(lsn)
}

// stageLocked is the write path under dc.mu: append to the log buffer,
// apply to memory, maybe trigger a checkpoint. The caller must release
// dc.mu and then WaitDurable on the returned LSN before acknowledging.
// Preconditions (name present/absent as the op requires) are the
// caller's.
func (dc *DurableCollection) stageLocked(op wal.Op, name string, body []byte, doc *Document) (uint64, error) {
	if dc.closed.Load() {
		return 0, wal.ErrClosed
	}
	lsn, err := dc.log.Append(op, name, body)
	if err != nil {
		return 0, err
	}
	switch op {
	case wal.OpAdd:
		err = dc.c.Add(name, doc)
	case wal.OpReplace:
		err = dc.c.Replace(name, doc)
	case wal.OpRemove:
		err = dc.c.Remove(name)
	}
	if err != nil {
		// Unreachable if preconditions held: the record is logged but the
		// apply failed, so fail loudly rather than acknowledge.
		return 0, fmt.Errorf("flexpath: logged mutation failed to apply: %w", err)
	}
	dc.sinceCkpt++
	if dc.every > 0 && dc.sinceCkpt >= dc.every {
		dc.maybeCheckpointLocked()
	}
	return lsn, nil
}

// maybeCheckpointLocked starts a background checkpoint if none is in
// flight. dc.mu held: the rotation and the membership snapshot happen
// atomically with respect to mutations, so the sealed segments hold
// exactly the records the snapshot covers.
func (dc *DurableCollection) maybeCheckpointLocked() {
	if !dc.ckptMu.TryLock() {
		return // one checkpoint at a time; the next mutation retries
	}
	dc.sinceCkpt = 0
	lastLSN, err := dc.log.Rotate()
	if err != nil {
		dc.ckptErrs.Add(1)
		dc.ckptMu.Unlock()
		return
	}
	names, docs, err := dc.c.snapshotResolved()
	if err != nil {
		dc.ckptErrs.Add(1)
		dc.ckptMu.Unlock()
		return
	}
	dc.wg.Add(1)
	go func() {
		defer dc.wg.Done()
		defer dc.ckptMu.Unlock()
		dc.writeCheckpoint(lastLSN, names, docs)
	}()
}

// Checkpoint forces a checkpoint synchronously, waiting for any
// in-flight background checkpoint first.
func (dc *DurableCollection) Checkpoint() error {
	dc.ckptMu.Lock()
	defer dc.ckptMu.Unlock()
	dc.mu.Lock()
	dc.sinceCkpt = 0
	lastLSN, err := dc.log.Rotate()
	if err != nil {
		dc.mu.Unlock()
		dc.ckptErrs.Add(1)
		return err
	}
	names, docs, err := dc.c.snapshotResolved()
	dc.mu.Unlock()
	if err != nil {
		dc.ckptErrs.Add(1)
		return err
	}
	return dc.writeCheckpoint(lastLSN, names, docs)
}

// writeCheckpoint serializes the snapshotted membership (Documents are
// immutable once built, so the refs stay valid while mutations continue)
// and atomically persists it, then prunes sealed segments and updates
// the counters. Either ckptMu is held or the caller is single-threaded.
func (dc *DurableCollection) writeCheckpoint(lastLSN uint64, names []string, docs []*Document) error {
	start := time.Now()
	cdocs := make([]wal.CheckpointDoc, len(docs))
	for i, d := range docs {
		var buf bytes.Buffer
		if err := d.SaveIndexedSnapshot(&buf); err != nil {
			dc.ckptErrs.Add(1)
			return fmt.Errorf("flexpath: checkpoint %q: %w", names[i], err)
		}
		cdocs[i] = wal.CheckpointDoc{Name: names[i], Data: buf.Bytes()}
	}
	if err := wal.WriteCheckpoint(dc.dir, lastLSN, cdocs); err != nil {
		dc.ckptErrs.Add(1)
		return fmt.Errorf("flexpath: checkpoint: %w", err)
	}
	if err := dc.log.RemoveSealedSegments(); err != nil {
		// The checkpoint itself is durable; stale segments only cost
		// disk until the next successful prune.
		dc.ckptErrs.Add(1)
	}
	dc.ckpts.Add(1)
	dc.ckptLastNano.Store(int64(time.Since(start)))
	return nil
}

// Close waits for any in-flight checkpoint and closes the log. The
// collection remains searchable but further mutations fail.
func (dc *DurableCollection) Close() error {
	if dc.closed.Swap(true) {
		return nil
	}
	// Barrier: any mutation holding the lock right now finishes staging
	// (and possibly scheduling a checkpoint) before the wait below; later
	// mutations fail fast on the closed flag.
	dc.mu.Lock()
	dc.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	dc.wg.Wait()
	return dc.log.Close()
}

// DurableStats is a point-in-time snapshot of the durability layer's
// counters, exported by flexserve as the flexpath_wal_* metric families.
type DurableStats struct {
	// AppendedRecords, Fsyncs and FsyncedRecords are the log's write-side
	// counters; Fsyncs < FsyncedRecords means group commit is batching.
	AppendedRecords uint64
	Fsyncs          uint64
	FsyncedRecords  uint64
	// ReplayedRecords and TornBytesTruncated describe boot-time recovery.
	ReplayedRecords    uint64
	TornBytesTruncated int64
	// CheckpointLSN is the LSN of the checkpoint recovery booted from
	// (0 when recovery started from an empty or checkpoint-less dir).
	CheckpointLSN uint64
	// Checkpoints / CheckpointErrors count completed and failed
	// checkpoints this process; LastCheckpointDuration is the wall time
	// of the newest one.
	Checkpoints            uint64
	CheckpointErrors       uint64
	LastCheckpointDuration time.Duration
	// LogBytes / LogSegments describe the live log on disk.
	LogBytes    int64
	LogSegments int64
}

// Stats returns the durability counters.
func (dc *DurableCollection) Stats() DurableStats {
	ls := dc.log.Stats()
	return DurableStats{
		AppendedRecords:        ls.AppendedRecords,
		Fsyncs:                 ls.Fsyncs,
		FsyncedRecords:         ls.FsyncedRecords,
		ReplayedRecords:        dc.replayed,
		TornBytesTruncated:     dc.tornBytes,
		CheckpointLSN:          dc.bootCkptLSN,
		Checkpoints:            dc.ckpts.Load(),
		CheckpointErrors:       dc.ckptErrs.Load(),
		LastCheckpointDuration: time.Duration(dc.ckptLastNano.Load()),
		LogBytes:               ls.Bytes,
		LogSegments:            ls.Segments,
	}
}
