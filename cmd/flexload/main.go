// Command flexload is an open-loop traffic generator for flexserve: it
// fires a configurable mix of search queries and durable mutations at a
// fixed rate — open loop, so requests launch on schedule whether or not
// earlier ones have completed, the way real traffic behaves — and emits
// a latency SLO report (p50/p95/p99 per operation type, error counts)
// as JSON.
//
// Usage:
//
//	flexload -addr http://localhost:8080 -qps 200 -duration 30s -mutate 0.1
//	flexload -addr http://localhost:8080 -preload 50 -out slo.json
//	flexload -addr ... -fail-errors -max-p99 250ms   # CI gate
//
// With -preload N, the generator first upserts N documents through
// /admin/bulk (sequentially, not rate-limited or measured) so queries
// have a corpus to hit. Mutations during the run are upserts and removes
// over a rotating slice of the same name pool — retry-safe verbs, so an
// interrupted run can simply be repeated.
//
// Exit status: 0 on success; 1 if -fail-errors is set and any request
// failed, or -max-p99 is set and the query p99 exceeds it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type config struct {
	addr     string
	qps      float64
	duration time.Duration
	mutate   float64
	seed     int64
	preload  int
	k        int
	timeout  time.Duration
}

// queries is the rotating pool of search queries; all match the
// generated corpus with varying selectivity and relaxation depth.
var queries = []string{
	`//article[./section[./paragraph and .contains("xml" and "streaming")]]`,
	`//article[./section/paragraph[.contains("flexible" and "structure")]]`,
	`/journal/article[./section[./algorithm and .contains("relaxation")]]`,
	`//section[./paragraph[.contains("query")]]`,
	`//article[./meta/author and ./section[.contains("index" and "join")]]`,
}

// docXML renders document i at revision rev. The text overlaps the query
// pool's terms so searches return answers, with per-document variation so
// rankings differ.
func docXML(i, rev int) string {
	terms := []string{"xml", "streaming", "flexible", "structure", "relaxation", "query", "index", "join"}
	a := terms[i%len(terms)]
	b := terms[(i+rev)%len(terms)]
	return fmt.Sprintf(`<journal><article id="d%d"><meta><author>gen</author></meta>`+
		`<section><algorithm>rev %d relaxation</algorithm>`+
		`<paragraph>%s %s methods for flexible xml query processing, doc %d</paragraph>`+
		`</section></article></journal>`, i, rev, a, b, i)
}

// opResult is one completed request.
type opResult struct {
	kind    string // "query" or "mutate"
	latency time.Duration
	err     string // "" on success; HTTP status or transport error otherwise
}

// sloSummary is the per-operation-type section of the report.
type sloSummary struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// report is the JSON SLO report.
type report struct {
	Addr         string   `json:"addr"`
	TargetQPS    float64  `json:"target_qps"`
	DurationSec  float64  `json:"duration_sec"`
	MutateRatio  float64  `json:"mutate_ratio"`
	Seed         int64    `json:"seed"`
	Preloaded    int      `json:"preloaded"`
	Launched     int      `json:"launched"`
	AchievedQPS  float64  `json:"achieved_qps"`
	TotalErrors  int      `json:"total_errors"`
	ErrorSamples []string `json:"error_samples,omitempty"`
	// MutateRetries counts 429-backpressure retries that eventually
	// succeeded; they cost latency (visible in the mutate percentiles),
	// not correctness.
	MutateRetries int64 `json:"mutate_retries"`

	Query  sloSummary `json:"query"`
	Mutate sloSummary `json:"mutate"`
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "flexserve base URL")
	flag.Float64Var(&cfg.qps, "qps", 200, "request launch rate (open loop: launches do not wait for completions)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to generate load")
	flag.Float64Var(&cfg.mutate, "mutate", 0.1, "fraction of requests that are mutations (0..1)")
	flag.Int64Var(&cfg.seed, "seed", 1, "PRNG seed: same seed, same request sequence")
	flag.IntVar(&cfg.preload, "preload", 0, "documents to upsert before the measured run")
	flag.IntVar(&cfg.k, "k", 10, "k parameter for search requests")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request timeout")
	out := flag.String("out", "", "write the SLO report JSON here (default stdout)")
	failErrors := flag.Bool("fail-errors", false, "exit 1 if any request failed")
	maxP99 := flag.Duration("max-p99", 0, "exit 1 if the query p99 exceeds this (0 disables)")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexload:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "flexload:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(data) //nolint:errcheck
	}

	if *failErrors && rep.TotalErrors > 0 {
		fmt.Fprintf(os.Stderr, "flexload: FAIL: %d errors\n", rep.TotalErrors)
		os.Exit(1)
	}
	if *maxP99 > 0 && rep.Query.P99MS > float64(*maxP99)/1e6 {
		fmt.Fprintf(os.Stderr, "flexload: FAIL: query p99 %.2fms exceeds %v\n", rep.Query.P99MS, *maxP99)
		os.Exit(1)
	}
}

// run preloads the corpus, generates the open-loop request schedule, and
// summarizes the results.
func run(cfg config) (*report, error) {
	if cfg.qps <= 0 {
		return nil, fmt.Errorf("qps must be positive")
	}
	if cfg.mutate < 0 || cfg.mutate > 1 {
		return nil, fmt.Errorf("mutate must be in [0,1]")
	}
	client := &http.Client{Timeout: cfg.timeout}

	if err := preload(client, cfg); err != nil {
		return nil, err
	}

	// The schedule is decided up front from the seed: op kinds, query
	// picks and document targets are deterministic; only timing varies.
	rng := rand.New(rand.NewSource(cfg.seed))
	interval := time.Duration(float64(time.Second) / cfg.qps)
	total := int(cfg.duration / interval)
	if total < 1 {
		total = 1
	}

	results := make(chan opResult, total)
	var retries atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	launched := 0
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for i := 0; i < total; i++ {
		if i > 0 {
			<-ticker.C
		}
		kind := "query"
		if rng.Float64() < cfg.mutate {
			kind = "mutate"
		}
		q := queries[rng.Intn(len(queries))]
		docID := rng.Intn(cfg.preload + 16) // beyond the preload: upserts create
		rev := i
		launched++
		wg.Add(1)
		go func(kind, q string, docID, rev int) {
			defer wg.Done()
			t0 := time.Now()
			var errStr string
			if kind == "query" {
				errStr = doQuery(client, cfg, q)
			} else {
				errStr = doMutate(client, cfg, docID, rev, &retries)
			}
			results <- opResult{kind: kind, latency: time.Since(t0), err: errStr}
		}(kind, q, docID, rev)
	}
	wg.Wait()
	wall := time.Since(start)
	close(results)

	rep := &report{
		Addr:          cfg.addr,
		TargetQPS:     cfg.qps,
		DurationSec:   wall.Seconds(),
		MutateRatio:   cfg.mutate,
		Seed:          cfg.seed,
		Preloaded:     cfg.preload,
		Launched:      launched,
		AchievedQPS:   float64(launched) / wall.Seconds(),
		MutateRetries: retries.Load(),
	}
	var qLat, mLat []time.Duration
	for r := range results {
		if r.err != "" {
			rep.TotalErrors++
			if len(rep.ErrorSamples) < 8 {
				rep.ErrorSamples = append(rep.ErrorSamples, r.kind+": "+r.err)
			}
		}
		switch r.kind {
		case "query":
			if r.err != "" {
				rep.Query.Errors++
			}
			qLat = append(qLat, r.latency)
		case "mutate":
			if r.err != "" {
				rep.Mutate.Errors++
			}
			mLat = append(mLat, r.latency)
		}
	}
	summarize(&rep.Query, qLat)
	summarize(&rep.Mutate, mLat)
	return rep, nil
}

// preload upserts the initial corpus through /admin/bulk in batches,
// sequentially and unmeasured.
func preload(client *http.Client, cfg config) error {
	const batchSize = 32
	for lo := 0; lo < cfg.preload; lo += batchSize {
		hi := lo + batchSize
		if hi > cfg.preload {
			hi = cfg.preload
		}
		var sb strings.Builder
		for i := lo; i < hi; i++ {
			line, _ := json.Marshal(map[string]string{
				"op": "upsert", "name": docName(i), "doc": docXML(i, 0),
			})
			sb.Write(line)
			sb.WriteByte('\n')
		}
		// Preload is sequential so 429s are unexpected, but honor the
		// backoff hint anyway rather than failing the whole run.
		for attempt := 1; ; attempt++ {
			errStr, backoff := postBulk(client, cfg, sb.String())
			if errStr == "" {
				break
			}
			if backoff == 0 || attempt == 5 {
				return fmt.Errorf("preload batch %d-%d: %s", lo, hi, errStr)
			}
			time.Sleep(backoff)
		}
	}
	return nil
}

func docName(i int) string { return fmt.Sprintf("load-%04d.xml", i) }

// doQuery runs one search; non-200 statuses and transport failures are
// errors.
func doQuery(client *http.Client, cfg config, q string) string {
	u := fmt.Sprintf("%s/search?q=%s&k=%d", cfg.addr, url.QueryEscape(q), cfg.k)
	resp, err := client.Get(u)
	if err != nil {
		return err.Error()
	}
	defer resp.Body.Close()
	// A reset mid-body is a failed search, not a success with a short
	// body; see postBulk.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return "search response read: " + err.Error()
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("search status %d", resp.StatusCode)
	}
	return ""
}

// doMutate upserts (or, one time in four, removes) one document through
// /admin/bulk — the durable ingest path, so a WAL-backed server fsyncs
// before answering. A batch whose lines all apply is a success; per-line
// failures are errors the report counts. 429 is backpressure, not
// failure: the verbs are retry-safe, so the batch is retried (bounded)
// after the server's Retry-After hint, and only exhausting the retries
// counts as an error. Retries are tallied in the report.
func doMutate(client *http.Client, cfg config, docID, rev int, retries *atomic.Int64) string {
	op := "upsert"
	if rev%4 == 3 {
		op = "remove"
	}
	m := map[string]string{"op": op, "name": docName(docID)}
	if op == "upsert" {
		m["doc"] = docXML(docID, rev)
	}
	line, _ := json.Marshal(m)
	body := string(line) + "\n"
	const maxAttempts = 5
	for attempt := 1; ; attempt++ {
		errStr, backoff := postBulk(client, cfg, body)
		if backoff == 0 || attempt == maxAttempts {
			return errStr
		}
		retries.Add(1)
		time.Sleep(backoff)
	}
}

// postBulk posts one NDJSON batch and folds HTTP and per-line failures
// into a single error string. A 429 additionally returns the backoff the
// caller should wait before retrying (the Retry-After header, capped).
func postBulk(client *http.Client, cfg config, body string) (errStr string, backoff time.Duration) {
	resp, err := client.Post(cfg.addr+"/admin/bulk", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		return err.Error(), 0
	}
	defer resp.Body.Close()
	// A read error is a transport failure, not a success: a connection
	// reset mid-body means the server's verdict never arrived, and a
	// mutation acknowledged on a half-read body would overcount applied
	// ops. (The status line did arrive, so a 429's backoff hint is still
	// honored below even when its body was cut off.)
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil && resp.StatusCode != http.StatusTooManyRequests {
		return "bulk response read: " + err.Error(), 0
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		backoff = 100 * time.Millisecond
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 && ra <= 5 {
			backoff = time.Duration(ra) * 250 * time.Millisecond
		}
		return "bulk status 429 (retries exhausted)", backoff
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("bulk status %d", resp.StatusCode), 0
	}
	var br struct {
		Failed int `json:"failed"`
		Errors []struct {
			Error string `json:"error"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(data, &br); err != nil {
		return "bad bulk response: " + err.Error(), 0
	}
	if br.Failed > 0 {
		msg := fmt.Sprintf("%d bulk ops failed", br.Failed)
		if len(br.Errors) > 0 {
			msg += ": " + br.Errors[0].Error
		}
		return msg, 0
	}
	return "", 0
}

// summarize fills an sloSummary from raw latencies with exact sorted
// percentiles (nearest-rank).
func summarize(s *sloSummary, lat []time.Duration) {
	s.Count = len(lat)
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p*float64(len(lat))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx]) / 1e6
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	s.P50MS = pct(0.50)
	s.P95MS = pct(0.95)
	s.P99MS = pct(0.99)
	s.MaxMS = float64(lat[len(lat)-1]) / 1e6
	s.MeanMS = float64(sum) / float64(len(lat)) / 1e6
}
