package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer mimics flexserve's /search and /admin/bulk shapes closely
// enough to exercise the generator's scheduling, accounting and error
// folding.
func stubServer(t *testing.T, failSearches bool) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var searches, bulkOps atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		searches.Add(1)
		if failSearches {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("q") == "" {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.Write([]byte(`{"answers":[]}`)) //nolint:errcheck
	})
	mux.HandleFunc("/admin/bulk", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		n := 0
		for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if line == "" {
				continue
			}
			var op struct{ Op, Name string }
			if err := json.Unmarshal([]byte(line), &op); err != nil || op.Name == "" {
				w.Write([]byte(`{"applied":0,"failed":1,"errors":[{"error":"bad line"}]}`)) //nolint:errcheck
				return
			}
			n++
		}
		bulkOps.Add(int64(n))
		w.Write([]byte(`{"applied":` + jsonInt(n) + `,"failed":0}`)) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &searches, &bulkOps
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestRunMixedWorkload(t *testing.T) {
	srv, searches, bulkOps := stubServer(t, false)
	cfg := config{
		addr:     srv.URL,
		qps:      400,
		duration: 250 * time.Millisecond,
		mutate:   0.3,
		seed:     7,
		preload:  40,
		k:        5,
		timeout:  5 * time.Second,
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != 0 {
		t.Fatalf("errors: %d (%v)", rep.TotalErrors, rep.ErrorSamples)
	}
	if rep.Launched != rep.Query.Count+rep.Mutate.Count {
		t.Fatalf("launched %d != %d+%d", rep.Launched, rep.Query.Count, rep.Mutate.Count)
	}
	if rep.Query.Count == 0 || rep.Mutate.Count == 0 {
		t.Fatalf("mix degenerate: %d queries, %d mutations", rep.Query.Count, rep.Mutate.Count)
	}
	if int(searches.Load()) != rep.Query.Count {
		t.Fatalf("server saw %d searches, report says %d", searches.Load(), rep.Query.Count)
	}
	// Preload went through bulk: at least the 40 preload upserts.
	if bulkOps.Load() < 40 {
		t.Fatalf("server saw %d bulk ops, want >= 40 preloads", bulkOps.Load())
	}
	if rep.Query.P50MS <= 0 || rep.Query.P99MS < rep.Query.P50MS || rep.Query.MaxMS < rep.Query.P99MS {
		t.Fatalf("percentiles inconsistent: %+v", rep.Query)
	}
	if rep.AchievedQPS <= 0 {
		t.Fatal("achieved QPS not computed")
	}
}

func TestRunCountsErrors(t *testing.T) {
	srv, _, _ := stubServer(t, true)
	rep, err := run(config{
		addr: srv.URL, qps: 200, duration: 100 * time.Millisecond,
		mutate: 0, seed: 1, k: 5, timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors != rep.Query.Count || rep.Query.Errors != rep.Query.Count {
		t.Fatalf("every search should have errored: %+v", rep)
	}
	if len(rep.ErrorSamples) == 0 {
		t.Fatal("no error samples captured")
	}
}

func TestRunSameSeedSameSchedule(t *testing.T) {
	srv, _, _ := stubServer(t, false)
	cfg := config{
		addr: srv.URL, qps: 500, duration: 100 * time.Millisecond,
		mutate: 0.5, seed: 42, k: 5, timeout: 5 * time.Second,
	}
	a, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Query.Count != b.Query.Count || a.Mutate.Count != b.Mutate.Count {
		t.Fatalf("same seed, different mix: %d/%d vs %d/%d",
			a.Query.Count, a.Mutate.Count, b.Query.Count, b.Mutate.Count)
	}
}

// A 429 is backpressure, not failure: the generator backs off and
// retries the (retry-safe) batch, counting the retry instead of an
// error.
func TestMutateRetriesOn429(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/bulk", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"applied":1,"failed":0}`)) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var retries atomic.Int64
	cfg := config{addr: srv.URL, timeout: 5 * time.Second}
	if errStr := doMutate(&http.Client{Timeout: cfg.timeout}, cfg, 1, 0, &retries); errStr != "" {
		t.Fatalf("mutate failed despite retry budget: %s", errStr)
	}
	if retries.Load() != 2 || calls.Load() != 3 {
		t.Fatalf("retries=%d calls=%d, want 2 retries over 3 calls", retries.Load(), calls.Load())
	}

	// Persistent 429s exhaust the budget and surface as an error.
	calls.Store(-1000)
	retries.Store(0)
	if errStr := doMutate(&http.Client{Timeout: cfg.timeout}, cfg, 1, 0, &retries); !strings.Contains(errStr, "429") {
		t.Fatalf("exhausted retries should report 429, got %q", errStr)
	}
}

// A connection killed mid-body must count as a transport error, not a
// success: the status line arrived but the server's verdict did not.
// Regression test for postBulk discarding the body read error (a reset
// mid-response used to count the mutation as applied).
func TestMidBodyKillIsTransportError(t *testing.T) {
	kill := func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("response writer is not a hijacker")
			return
		}
		conn, buf, err := hj.Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		// Declare a long body, send a fragment of it, then drop the
		// connection: the client's body read fails with an early EOF.
		buf.WriteString("HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n" + //nolint:errcheck
			"Content-Type: application/json\r\n\r\n{\"applied\":")
		buf.Flush() //nolint:errcheck
		conn.Close()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/bulk", kill)
	mux.HandleFunc("/search", kill)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cfg := config{addr: srv.URL, k: 5, timeout: 5 * time.Second}
	client := &http.Client{Timeout: cfg.timeout}
	errStr, backoff := postBulk(client, cfg, `{"op":"upsert","name":"x","doc":"<a/>"}`+"\n")
	if errStr == "" {
		t.Fatal("connection killed mid-body counted as bulk success")
	}
	if backoff != 0 {
		t.Fatalf("transport error must not ask for a retry backoff, got %v", backoff)
	}
	if errStr := doQuery(client, cfg, queries[0]); errStr == "" {
		t.Fatal("connection killed mid-body counted as search success")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := run(config{qps: 0}); err == nil {
		t.Error("qps 0 accepted")
	}
	if _, err := run(config{qps: 10, mutate: 1.5}); err == nil {
		t.Error("mutate 1.5 accepted")
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var s sloSummary
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	summarize(&s, lat)
	if s.Count != 100 || s.P50MS != 50 || s.P95MS != 95 || s.P99MS != 99 || s.MaxMS != 100 {
		t.Fatalf("percentiles: %+v", s)
	}
	var empty sloSummary
	summarize(&empty, nil)
	if empty.Count != 0 || empty.P50MS != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
}
