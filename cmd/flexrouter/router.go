package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flexpath"
	"flexpath/internal/chash"
	"flexpath/internal/merge"
	"flexpath/internal/obs"
	"flexpath/internal/rank"
)

// Request-shaping bounds, mirroring flexserve's (the router validates
// before fanning out so a bad request costs zero shard traffic).
const (
	maxK      = 1000
	maxOffset = 10000
	// maxShardBody bounds one shard's decoded /search or /stats response.
	maxShardBody = 32 << 20
	// maxAdminBody bounds a proxied /admin document upload, matching the
	// shard-side cap.
	maxAdminBody = 64 << 20
	// backoffBase is the first retry delay; attempt n waits
	// backoffBase<<n plus up to 100% jitter.
	backoffBase = 25 * time.Millisecond
)

// routerConfig configures a router.
type routerConfig struct {
	shardTimeout time.Duration
	retries      int
}

// shardMetrics are one shard's flexpath_router_shard_* series.
type shardMetrics struct {
	latency  *obs.Histogram
	errors   atomic.Uint64 // failed attempts other than deadline hits
	timeouts atomic.Uint64 // attempts that hit the per-shard deadline
	retries  atomic.Uint64 // retry attempts issued after connection errors
}

// routerMetrics are the flexpath_router_* counters.
type routerMetrics struct {
	ok         atomic.Uint64 // queries answered by every shard
	partial    atomic.Uint64 // queries answered by a strict subset
	failed     atomic.Uint64 // queries where every shard failed (502)
	badRequest atomic.Uint64
	panics     atomic.Uint64
	shards     []shardMetrics
}

// router fans queries out to every shard and merges the responses;
// corpus mutations are routed to the consistent-hash owner of the
// document name.
type router struct {
	shards       []string
	ring         *chash.Ring
	client       *http.Client
	mux          *http.ServeMux
	shardTimeout time.Duration
	retries      int
	met          routerMetrics
}

func newRouter(shards []string, cfg routerConfig) (*router, error) {
	ring, err := chash.New(shards, 0)
	if err != nil {
		return nil, err
	}
	if cfg.shardTimeout <= 0 {
		cfg.shardTimeout = 5 * time.Second
	}
	if cfg.retries < 0 {
		cfg.retries = 0
	}
	rt := &router{
		shards: append([]string(nil), shards...),
		ring:   ring,
		client: &http.Client{
			// No client-level timeout: per-attempt deadlines come from
			// the request context so /admin uploads are not clipped.
			Transport: &http.Transport{MaxIdleConnsPerHost: 16},
		},
		mux:          http.NewServeMux(),
		shardTimeout: cfg.shardTimeout,
		retries:      cfg.retries,
	}
	rt.met.shards = make([]shardMetrics, len(shards))
	for i := range rt.met.shards {
		rt.met.shards[i].latency = obs.NewHistogram()
	}
	rt.mux.HandleFunc("/search", rt.search)
	rt.mux.HandleFunc("/stats", rt.stats)
	rt.mux.HandleFunc("/metrics", rt.metrics)
	rt.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	rt.mux.HandleFunc("/admin/add", rt.admin("add"))
	rt.mux.HandleFunc("/admin/remove", rt.admin("remove"))
	rt.mux.HandleFunc("/admin/replace", rt.admin("replace"))
	return rt, nil
}

// ServeHTTP dispatches through the mux under panic recovery, like
// flexserve: a panicking handler yields a 500 and a visible counter, not
// a dead connection.
func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			rt.met.panics.Add(1)
			log.Printf("flexrouter: panic serving %s: %v\n%s", r.URL.Path, p, debug.Stack())
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "internal server error"})
		}
	}()
	rt.mux.ServeHTTP(w, r)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about write errors here
}

// shardAnswer mirrors flexserve's searchAnswer JSON field-for-field, so
// an answer decoded from a shard and re-encoded by the router is
// byte-identical to the shard's own rendering (Go's float64 JSON
// round-trip is exact).
type shardAnswer struct {
	Rank        int      `json:"rank"`
	Doc         string   `json:"doc"`
	Path        string   `json:"path"`
	ID          string   `json:"id,omitempty"`
	Structural  float64  `json:"structural"`
	Keyword     float64  `json:"keyword"`
	Relaxations int      `json:"relaxations"`
	Relaxed     []string `json:"relaxed,omitempty"`
	Snippet     string   `json:"snippet,omitempty"`
}

// shardResponse is the subset of flexserve's search response the router
// consumes.
type shardResponse struct {
	Query      string        `json:"query"`
	Algo       string        `json:"algo"`
	AlgoReason string        `json:"algo_reason"`
	Answers    []shardAnswer `json:"answers"`
}

// routerResponse is flexserve's search response shape extended with the
// partial-result fields. shards_ok < shards_total (equivalently
// "partial": true) marks a ranking merged from a degraded fleet.
type routerResponse struct {
	Query       string        `json:"query"`
	Algo        string        `json:"algo,omitempty"`
	AlgoReason  string        `json:"algo_reason,omitempty"`
	Answers     []shardAnswer `json:"answers"`
	ElapsedMS   float64       `json:"elapsed_ms"`
	ShardsOK    int           `json:"shards_ok"`
	ShardsTotal int           `json:"shards_total"`
	Partial     bool          `json:"partial,omitempty"`
	ShardErrors []string      `json:"shard_errors,omitempty"`
}

func (rt *router) badRequest(w http.ResponseWriter, msg string) {
	rt.met.badRequest.Add(1)
	writeJSON(w, http.StatusBadRequest, errorBody{Error: msg})
}

func (rt *router) search(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	qs := r.URL.Query()
	src := qs.Get("q")
	if src == "" {
		rt.badRequest(w, "missing q parameter")
		return
	}
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		rt.badRequest(w, err.Error())
		return
	}
	k := 10
	if ks := qs.Get("k"); ks != "" {
		if k, err = strconv.Atoi(ks); err != nil || k < 1 || k > maxK {
			rt.badRequest(w, "k must be an integer between 1 and 1000")
			return
		}
	}
	offset := 0
	if os := qs.Get("offset"); os != "" {
		if offset, err = strconv.Atoi(os); err != nil || offset < 0 || offset > maxOffset {
			rt.badRequest(w, "offset must be an integer between 0 and 10000")
			return
		}
	}
	scheme := rank.StructureFirst
	if ss := qs.Get("scheme"); ss != "" {
		if scheme, err = rank.ParseScheme(ss); err != nil {
			rt.badRequest(w, err.Error())
			return
		}
	}
	if as := qs.Get("algo"); as != "" {
		if _, err := flexpath.ParseAlgorithm(as); err != nil {
			rt.badRequest(w, err.Error())
			return
		}
	}

	// The per-shard K+Offset trick: a globally-skipped answer may rank
	// anywhere within one shard, so every shard must return its full top
	// K+Offset and the offset is applied exactly once after the merge.
	// No offset parameter is forwarded.
	shardQ := url.Values{}
	shardQ.Set("q", src)
	shardQ.Set("k", strconv.Itoa(k+offset))
	for _, p := range []string{"algo", "scheme", "why", "snippet"} {
		if v := qs.Get(p); v != "" {
			shardQ.Set(p, v)
		}
	}
	results := rt.scatter(r.Context(), "/search?"+shardQ.Encode())

	type mergeItem struct {
		a   shardAnswer
		key merge.Key
	}
	var items []mergeItem
	shardsOK := 0
	var shardErrs []string
	algo, algoReason := "", ""
	for i, res := range results {
		if res.err != nil {
			shardErrs = append(shardErrs, rt.shards[i]+": "+res.err.Error())
			continue
		}
		shardsOK++
		// Like Collection.Search merging member documents: when every
		// shard reports the same algorithm the router names it,
		// otherwise "mixed".
		if res.resp.Algo != "" {
			switch algo {
			case "":
				algo, algoReason = res.resp.Algo, res.resp.AlgoReason
			case res.resp.Algo:
			default:
				algo, algoReason = "mixed", ""
			}
		}
		for j, a := range res.resp.Answers {
			items = append(items, mergeItem{a: a, key: merge.Key{
				Score: rank.Score{SS: a.Structural, KS: a.Keyword},
				Doc:   a.Doc,
				// The response index stands in for node order: within one
				// (score, doc) tie all answers come from the same shard
				// response, already node-ordered by the shard's own merge.
				Ord: j,
			}})
		}
	}
	if shardsOK == 0 {
		rt.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, errorBody{
			Error: "all shards failed: " + joinErrs(shardErrs),
		})
		return
	}
	merge.Sort(items, func(it mergeItem) merge.Key { return it.key }, scheme)
	items = merge.Page(items, k, offset)
	answers := make([]shardAnswer, 0, len(items))
	for i, it := range items {
		it.a.Rank = i + 1
		answers = append(answers, it.a)
	}
	resp := routerResponse{
		Query:       q.String(),
		Algo:        algo,
		AlgoReason:  algoReason,
		Answers:     answers,
		ElapsedMS:   float64(time.Since(start)) / 1e6,
		ShardsOK:    shardsOK,
		ShardsTotal: len(rt.shards),
	}
	if shardsOK < len(rt.shards) {
		resp.Partial = true
		resp.ShardErrors = shardErrs
		rt.met.partial.Add(1)
	} else {
		rt.met.ok.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func joinErrs(errs []string) string {
	out := ""
	for i, e := range errs {
		if i > 0 {
			out += "; "
		}
		out += e
	}
	return out
}

type shardResult struct {
	resp *shardResponse
	err  error
}

// scatter issues pathAndQuery against every shard concurrently and
// returns the per-shard outcomes indexed like rt.shards.
func (rt *router) scatter(ctx context.Context, pathAndQuery string) []shardResult {
	results := make([]shardResult, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = rt.fetchShard(ctx, i, pathAndQuery)
		}(i)
	}
	wg.Wait()
	return results
}

// fetchShard runs one shard request with a per-attempt deadline and
// bounded jittered retries on connection errors. Deadline hits and
// server-side HTTP errors fail fast: retrying a timeout only multiplies
// the latency the deadline exists to bound, and a shard that answered
// with an error will deterministically answer with it again.
func (rt *router) fetchShard(ctx context.Context, i int, pathAndQuery string) shardResult {
	sm := &rt.met.shards[i]
	var lastErr error
	for attempt := 0; attempt <= rt.retries; attempt++ {
		if attempt > 0 {
			sm.retries.Add(1)
			if err := sleepJittered(ctx, backoffBase<<(attempt-1)); err != nil {
				return shardResult{err: err}
			}
		}
		attemptCtx, cancel := context.WithTimeout(ctx, rt.shardTimeout)
		t0 := time.Now()
		resp, err := rt.doSearch(attemptCtx, rt.shards[i]+pathAndQuery)
		sm.latency.Observe(time.Since(t0))
		cancel()
		if err == nil {
			return shardResult{resp: resp}
		}
		lastErr = err
		switch {
		case ctx.Err() != nil:
			// The client went away or the router is shutting down;
			// nothing left to retry for.
			return shardResult{err: ctx.Err()}
		case errors.Is(err, context.DeadlineExceeded):
			sm.timeouts.Add(1)
			return shardResult{err: fmt.Errorf("deadline %v exceeded", rt.shardTimeout)}
		case isConnError(err):
			sm.errors.Add(1)
			continue
		default:
			sm.errors.Add(1)
			return shardResult{err: err}
		}
	}
	return shardResult{err: fmt.Errorf("%w (after %d attempts)", lastErr, rt.retries+1)}
}

// isConnError reports whether err is a transport-level failure worth
// retrying (connection refused/reset, DNS trouble) as opposed to a
// deadline, cancellation or an HTTP-level error.
func isConnError(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, context.Canceled)
}

// sleepJittered waits d plus up to 100% random jitter (full jitter keeps
// a fleet of routers from retrying a recovering shard in lockstep),
// aborting early if ctx ends.
func sleepJittered(ctx context.Context, d time.Duration) error {
	d += time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doSearch issues one GET and decodes the shard's search response.
func (rt *router) doSearch(ctx context.Context, url string) (*shardResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard status %d: %s", resp.StatusCode, compactErr(body))
	}
	var sr shardResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("bad shard response: %w", err)
	}
	return &sr, nil
}

// compactErr extracts a shard error body's message for diagnostics.
func compactErr(body []byte) string {
	var eb errorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	if len(body) > 200 {
		body = body[:200]
	}
	return string(body)
}

// admin returns a handler proxying one corpus mutation to the
// consistent-hash owner of the document name, so the same name always
// lands on (and is removed from) the same shard.
func (rt *router) admin(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			rt.badRequest(w, "missing name parameter")
			return
		}
		owner := rt.ring.Owner(name)
		body := http.MaxBytesReader(w, r.Body, maxAdminBody)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			owner+"/admin/"+op+"?name="+url.QueryEscape(name), body)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
		resp, err := rt.client.Do(req)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, errorBody{Error: owner + ": " + err.Error()})
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set("X-Flexpath-Shard", owner)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, io.LimitReader(resp.Body, maxShardBody)) //nolint:errcheck
	}
}

// shardStats is one shard's row in the router's /stats.
type shardStats struct {
	URL       string `json:"url"`
	OK        bool   `json:"ok"`
	Documents int    `json:"documents"`
	Elements  int    `json:"elements"`
	Error     string `json:"error,omitempty"`
}

type routerStatsResponse struct {
	ShardsTotal int          `json:"shards_total"`
	ShardsOK    int          `json:"shards_ok"`
	Documents   int          `json:"documents"`
	Elements    int          `json:"elements"`
	Shards      []shardStats `json:"shards"`
}

// stats probes every shard's /stats and aggregates corpus totals; a
// shard that cannot answer within the shard deadline is reported down
// without failing the endpoint.
func (rt *router) stats(w http.ResponseWriter, r *http.Request) {
	rows := make([]shardStats, len(rt.shards))
	var wg sync.WaitGroup
	for i, base := range rt.shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			rows[i] = shardStats{URL: base}
			ctx, cancel := context.WithTimeout(r.Context(), rt.shardTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
			if err != nil || resp.StatusCode != http.StatusOK {
				rows[i].Error = fmt.Sprintf("status %d", resp.StatusCode)
				return
			}
			var st struct {
				Documents int `json:"documents"`
				Elements  int `json:"elements"`
			}
			if err := json.Unmarshal(body, &st); err != nil {
				rows[i].Error = err.Error()
				return
			}
			rows[i].OK = true
			rows[i].Documents = st.Documents
			rows[i].Elements = st.Elements
		}(i, base)
	}
	wg.Wait()
	out := routerStatsResponse{ShardsTotal: len(rt.shards), Shards: rows}
	for _, row := range rows {
		if row.OK {
			out.ShardsOK++
			out.Documents += row.Documents
			out.Elements += row.Elements
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// metrics renders the flexpath_router_* families in the Prometheus text
// exposition format (validated by cmd/promcheck in CI).
func (rt *router) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)

	fmt.Fprintln(w, "# HELP flexpath_router_shards Shards configured behind this router.")
	fmt.Fprintln(w, "# TYPE flexpath_router_shards gauge")
	fmt.Fprintf(w, "flexpath_router_shards %d\n", len(rt.shards))

	fmt.Fprintln(w, "# HELP flexpath_router_queries_total Routed queries by outcome (ok = all shards answered, partial = some did, error = none did).")
	fmt.Fprintln(w, "# TYPE flexpath_router_queries_total counter")
	fmt.Fprintf(w, "flexpath_router_queries_total{status=\"ok\"} %d\n", rt.met.ok.Load())
	fmt.Fprintf(w, "flexpath_router_queries_total{status=\"partial\"} %d\n", rt.met.partial.Load())
	fmt.Fprintf(w, "flexpath_router_queries_total{status=\"error\"} %d\n", rt.met.failed.Load())
	fmt.Fprintf(w, "flexpath_router_queries_total{status=\"bad_request\"} %d\n", rt.met.badRequest.Load())

	fmt.Fprintln(w, "# HELP flexpath_router_partial_results_total Successful responses merged from a strict subset of shards.")
	fmt.Fprintln(w, "# TYPE flexpath_router_partial_results_total counter")
	fmt.Fprintf(w, "flexpath_router_partial_results_total %d\n", rt.met.partial.Load())

	fmt.Fprintln(w, "# HELP flexpath_router_panics_total Handler panics recovered into 500 responses.")
	fmt.Fprintln(w, "# TYPE flexpath_router_panics_total counter")
	fmt.Fprintf(w, "flexpath_router_panics_total %d\n", rt.met.panics.Load())

	fmt.Fprintln(w, "# HELP flexpath_router_shard_request_duration_seconds Per-attempt shard request latency.")
	fmt.Fprintln(w, "# TYPE flexpath_router_shard_request_duration_seconds histogram")
	for i, base := range rt.shards {
		obs.WriteHistogram(w, "flexpath_router_shard_request_duration_seconds", "shard", base,
			rt.met.shards[i].latency.Snapshot())
	}

	fmt.Fprintln(w, "# HELP flexpath_router_shard_errors_total Failed shard attempts other than deadline hits (connection errors, HTTP errors, bad responses).")
	fmt.Fprintln(w, "# TYPE flexpath_router_shard_errors_total counter")
	for i, base := range rt.shards {
		fmt.Fprintf(w, "flexpath_router_shard_errors_total{shard=%q} %d\n", base, rt.met.shards[i].errors.Load())
	}

	fmt.Fprintln(w, "# HELP flexpath_router_shard_timeouts_total Shard attempts that hit the per-shard deadline.")
	fmt.Fprintln(w, "# TYPE flexpath_router_shard_timeouts_total counter")
	for i, base := range rt.shards {
		fmt.Fprintf(w, "flexpath_router_shard_timeouts_total{shard=%q} %d\n", base, rt.met.shards[i].timeouts.Load())
	}

	fmt.Fprintln(w, "# HELP flexpath_router_shard_retries_total Retry attempts issued after shard connection errors.")
	fmt.Fprintln(w, "# TYPE flexpath_router_shard_retries_total counter")
	for i, base := range rt.shards {
		fmt.Fprintf(w, "flexpath_router_shard_retries_total{shard=%q} %d\n", base, rt.met.shards[i].retries.Load())
	}
}
