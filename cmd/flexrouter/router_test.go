package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flexpath"
	"flexpath/internal/obs"
)

// testShard serves flexserve's /search contract over a real
// flexpath.Collection (cmd/flexserve is package main, so its handler
// cannot be imported; this mirrors its parameter handling and answer
// encoding). It records every request's query values for propagation
// assertions.
type testShard struct {
	coll *flexpath.Collection
	mu   sync.Mutex
	reqs []url.Values
}

func (s *testShard) requests() []url.Values {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]url.Values(nil), s.reqs...)
}

func (s *testShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/search" {
		http.NotFound(w, r)
		return
	}
	qs := r.URL.Query()
	s.mu.Lock()
	s.reqs = append(s.reqs, qs)
	s.mu.Unlock()
	q, err := flexpath.ParseQuery(qs.Get("q"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	opts := flexpath.SearchOptions{K: 10}
	if ks := qs.Get("k"); ks != "" {
		opts.K, _ = strconv.Atoi(ks)
	}
	if os := qs.Get("offset"); os != "" {
		opts.Offset, _ = strconv.Atoi(os)
	}
	if as := qs.Get("algo"); as != "" {
		opts.Algorithm, _ = flexpath.ParseAlgorithm(as)
	}
	if ss := qs.Get("scheme"); ss != "" {
		opts.Scheme, _ = flexpath.ParseScheme(ss)
	}
	var m flexpath.Metrics
	opts.Metrics = &m
	answers, err := s.coll.Search(q, opts)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	snippet := 0
	if ss := qs.Get("snippet"); ss != "" {
		snippet, _ = strconv.Atoi(ss)
	}
	writeJSON(w, http.StatusOK, struct {
		Query   string        `json:"query"`
		Algo    string        `json:"algo,omitempty"`
		Answers []shardAnswer `json:"answers"`
	}{q.String(), m.Algorithm, encodeAnswers(answers, qs.Get("why") == "1", snippet)})
}

// encodeAnswers renders collection answers exactly like flexserve's
// search handler does.
func encodeAnswers(answers []flexpath.CollectionAnswer, why bool, snippet int) []shardAnswer {
	out := make([]shardAnswer, 0, len(answers))
	for i, a := range answers {
		sa := shardAnswer{
			Rank: i + 1, Doc: a.DocName, Path: a.Path, ID: a.ID,
			Structural: a.Structural, Keyword: a.Keyword, Relaxations: a.Relaxations,
		}
		if why {
			sa.Relaxed = a.Relaxed
		}
		if snippet > 0 {
			sa.Snippet = a.Snippet(snippet)
		}
		out = append(out, sa)
	}
	return out
}

// corpusDoc builds one article document's XML; shape varies with kind so
// the corpus ranks at several relaxation levels.
func corpusDoc(id string, kind int) string {
	switch kind % 3 {
	case 0: // exact match
		return fmt.Sprintf(`<journal><article id=%q><section><algorithm>x</algorithm>
  <paragraph>XML streaming methods</paragraph></section></article></journal>`, id)
	case 1: // missing algorithm child
		return fmt.Sprintf(`<journal><article id=%q><section>
  <paragraph>XML streaming text</paragraph></section></article></journal>`, id)
	default: // missing the query terms
		return fmt.Sprintf(`<journal><article id=%q><section><algorithm>y</algorithm>
  <paragraph>unrelated prose</paragraph></section></article></journal>`, id)
	}
}

const corpusQuery = `//article[./section[./paragraph and .contains("XML" and "streaming")]]`

func standardCorpus() map[string]string {
	docs := map[string]string{}
	for i := 0; i < 6; i++ {
		docs[fmt.Sprintf("doc%d.xml", i)] = corpusDoc(fmt.Sprintf("d%d", i), i)
	}
	return docs
}

func mustAdd(t *testing.T, c *flexpath.Collection, name, xml string) {
	t.Helper()
	doc, err := flexpath.LoadString(xml)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(name, doc); err != nil {
		t.Fatal(err)
	}
}

func sortedNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// routerFixture is a 3-shard fleet plus a single-node collection over
// the union corpus (each side parses its own copy of the XML).
type routerFixture struct {
	rt     *router
	srv    *httptest.Server
	shards []*testShard
	union  *flexpath.Collection
}

// startRouter splits docs across 3 shards (doc i on shard i%3, names in
// sorted order) and builds a router over them plus the single-node
// reference collection.
func startRouter(t *testing.T, cfg routerConfig, docs map[string]string) *routerFixture {
	t.Helper()
	f := &routerFixture{union: flexpath.NewCollection()}
	var urls []string
	for i := 0; i < 3; i++ {
		sh := &testShard{coll: flexpath.NewCollection()}
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		f.shards = append(f.shards, sh)
		urls = append(urls, srv.URL)
	}
	for i, name := range sortedNames(docs) {
		mustAdd(t, f.shards[i%3].coll, name, docs[name])
		mustAdd(t, f.union, name, docs[name])
	}
	rt, err := newRouter(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.srv = httptest.NewServer(rt)
	t.Cleanup(f.srv.Close)
	return f
}

func getJSON(t *testing.T, url string, v interface{}) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, body)
		}
	}
	return resp, body
}

func escape(s string) string { return url.QueryEscape(s) }

// The distributed invariant: a router response over a sharded corpus is
// byte-identical (answer for answer) to a single-node Collection.Search
// over the union corpus, across k, offset, scheme, why and snippet.
func TestRouterMatchesSingleNode(t *testing.T) {
	f := startRouter(t, routerConfig{shardTimeout: 10 * time.Second}, standardCorpus())
	for _, tc := range []struct {
		k, offset int
		scheme    string
		why       bool
		snippet   int
	}{
		{1, 0, "", false, 0},
		{3, 0, "", true, 0},
		{5, 2, "", false, 64},
		{10, 0, "keyword-first", true, 0},
		{10, 3, "combined", false, 0},
		{100, 0, "", true, 32},
		{2, 7, "", false, 0},
		{4, 1000, "", false, 0}, // offset past the end: both sides empty
	} {
		q := flexpath.MustParseQuery(corpusQuery)
		scheme := flexpath.StructureFirst
		if tc.scheme != "" {
			var err error
			if scheme, err = flexpath.ParseScheme(tc.scheme); err != nil {
				t.Fatal(err)
			}
		}
		want, err := f.union.Search(q, flexpath.SearchOptions{
			K: tc.k, Offset: tc.offset, Scheme: scheme,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, _ := json.Marshal(encodeAnswers(want, tc.why, tc.snippet))

		u := f.srv.URL + "/search?q=" + escape(corpusQuery) +
			"&k=" + strconv.Itoa(tc.k) + "&offset=" + strconv.Itoa(tc.offset)
		if tc.scheme != "" {
			u += "&scheme=" + tc.scheme
		}
		if tc.why {
			u += "&why=1"
		}
		if tc.snippet > 0 {
			u += "&snippet=" + strconv.Itoa(tc.snippet)
		}
		var out routerResponse
		resp, body := getJSON(t, u, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d o=%d: status %d: %s", tc.k, tc.offset, resp.StatusCode, body)
		}
		if out.ShardsOK != 3 || out.ShardsTotal != 3 || out.Partial {
			t.Fatalf("k=%d o=%d: shards %d/%d partial=%v, want full 3/3",
				tc.k, tc.offset, out.ShardsOK, out.ShardsTotal, out.Partial)
		}
		gotJSON, _ := json.Marshal(out.Answers)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("k=%d o=%d scheme=%q: router merge diverged from single node\n got %s\nwant %s",
				tc.k, tc.offset, tc.scheme, gotJSON, wantJSON)
		}
	}
}

// Regression (comparator extraction): answers that tie exactly on score
// but live on different shards must merge in document-name order —
// byte-identically to the single-node merge.
func TestRouterTieBreakAcrossShardBoundaries(t *testing.T) {
	// Six identical documents => six exactly tying top answers; the
	// round-robin split puts a,b,c (and d,e,f) on three different shards.
	docs := map[string]string{}
	for _, name := range []string{"a.xml", "b.xml", "c.xml", "d.xml", "e.xml", "f.xml"} {
		docs[name] = corpusDoc("tie", 0)
	}
	f := startRouter(t, routerConfig{shardTimeout: 10 * time.Second}, docs)

	var out routerResponse
	resp, body := getJSON(t, f.srv.URL+"/search?q="+escape(corpusQuery)+"&k=50", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if len(out.Answers) < 6 {
		t.Fatalf("got %d answers, want >= 6: %s", len(out.Answers), body)
	}
	// The leading tie group (same scores as rank 1) must list documents in
	// non-decreasing name order and cover all six documents.
	top := out.Answers[0]
	group := []string{}
	for _, a := range out.Answers {
		if a.Structural != top.Structural || a.Keyword != top.Keyword {
			break
		}
		group = append(group, a.Doc)
	}
	if !sort.StringsAreSorted(group) {
		t.Errorf("tie group not in document-name order: %v", group)
	}
	distinct := map[string]bool{}
	for _, d := range group {
		distinct[d] = true
	}
	if len(distinct) != 6 {
		t.Errorf("tie group covers %d documents, want all 6: %v", len(distinct), group)
	}

	// And the whole ranking is still byte-identical to a single node.
	q := flexpath.MustParseQuery(corpusQuery)
	want, err := f.union.Search(q, flexpath.SearchOptions{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(encodeAnswers(want, false, 0))
	gotJSON, _ := json.Marshal(out.Answers)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("tie merge diverged from single node\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// The router must forward K+Offset (never the offset itself) to shards
// and apply the offset exactly once post-merge: page(o,k) through the
// router equals window [o:o+k] of the router's unpaged ranking.
func TestRouterKOffsetPropagation(t *testing.T) {
	f := startRouter(t, routerConfig{shardTimeout: 10 * time.Second}, standardCorpus())

	var unpaged routerResponse
	resp, _ := getJSON(t, f.srv.URL+"/search?q="+escape(corpusQuery)+"&k=9", &unpaged)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("unpaged query failed")
	}
	const k, offset = 3, 1
	var page routerResponse
	resp, body := getJSON(t, f.srv.URL+"/search?q="+escape(corpusQuery)+
		"&k="+strconv.Itoa(k)+"&offset="+strconv.Itoa(offset), &page)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// page(o,k) == unpaged(K=o+k)[o:o+k], modulo rank renumbering.
	if len(unpaged.Answers) < offset+k {
		t.Fatalf("fixture too small: unpaged ranking has %d answers, need %d", len(unpaged.Answers), offset+k)
	}
	want := unpaged.Answers[offset : offset+k]
	if len(page.Answers) != k {
		t.Fatalf("page has %d answers, want %d", len(page.Answers), k)
	}
	for i := range page.Answers {
		got, exp := page.Answers[i], want[i]
		if got.Rank != i+1 {
			t.Errorf("page rank %d, want %d (ranks renumber within the page)", got.Rank, i+1)
		}
		got.Rank, exp.Rank = 0, 0
		gj, _ := json.Marshal(got)
		ej, _ := json.Marshal(exp)
		if !bytes.Equal(gj, ej) {
			t.Errorf("page answer %d = %s, want %s", i, gj, ej)
		}
	}

	// Every shard saw k=o+k and no offset parameter.
	for si, sh := range f.shards {
		reqs := sh.requests()
		if len(reqs) == 0 {
			t.Fatalf("shard %d received no requests", si)
		}
		last := reqs[len(reqs)-1]
		if got := last.Get("k"); got != strconv.Itoa(k+offset) {
			t.Errorf("shard %d got k=%s, want %d (K+Offset)", si, got, k+offset)
		}
		if last.Get("offset") != "" {
			t.Errorf("shard %d was sent offset=%s; the offset must be applied once, post-merge", si, last.Get("offset"))
		}
	}
}

// A failed shard must degrade the response, not the request: HTTP 200,
// shards_ok < shards_total, and a deterministic merge of the surviving
// shards (equal to a single node over the surviving documents).
func TestRouterPartialResultOnFailedShard(t *testing.T) {
	docs := standardCorpus()
	names := sortedNames(docs)

	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "shard exploded"})
	}))
	defer failing.Close()
	good0 := &testShard{coll: flexpath.NewCollection()}
	good2 := &testShard{coll: flexpath.NewCollection()}
	surviving := flexpath.NewCollection()
	for i, name := range names {
		switch i % 3 {
		case 0:
			mustAdd(t, good0.coll, name, docs[name])
			mustAdd(t, surviving, name, docs[name])
		case 2:
			mustAdd(t, good2.coll, name, docs[name])
			mustAdd(t, surviving, name, docs[name])
		}
	}
	s0, s2 := httptest.NewServer(good0), httptest.NewServer(good2)
	defer s0.Close()
	defer s2.Close()
	rt, err := newRouter([]string{s0.URL, failing.URL, s2.URL}, routerConfig{shardTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	defer srv.Close()

	var out routerResponse
	resp, body := getJSON(t, srv.URL+"/search?q="+escape(corpusQuery)+"&k=10", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with partial results: %s", resp.StatusCode, body)
	}
	if out.ShardsOK != 2 || out.ShardsTotal != 3 || !out.Partial {
		t.Fatalf("shards_ok=%d shards_total=%d partial=%v, want 2/3 partial", out.ShardsOK, out.ShardsTotal, out.Partial)
	}
	if len(out.ShardErrors) != 1 || !strings.Contains(out.ShardErrors[0], "shard exploded") {
		t.Errorf("shard_errors = %v, want the failing shard's message", out.ShardErrors)
	}
	// Deterministic partial merge: byte-identical to a single node over
	// the surviving documents.
	q := flexpath.MustParseQuery(corpusQuery)
	want, err := surviving.Search(q, flexpath.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(encodeAnswers(want, false, 0))
	gotJSON, _ := json.Marshal(out.Answers)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("partial merge diverged from single node over survivors\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// Metrics reflect the degradation.
	resp, body = getJSON(t, srv.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("metrics failed")
	}
	text := string(body)
	for _, wantLine := range []string{
		`flexpath_router_queries_total{status="partial"} 1`,
		`flexpath_router_partial_results_total 1`,
		fmt.Sprintf("flexpath_router_shard_errors_total{shard=%q} 1", failing.URL),
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("router exposition invalid: %v", err)
	}
}

// A shard slower than the per-shard deadline is dropped from the merge
// (partial result) instead of stalling the whole query, and deadline
// hits are not retried.
func TestRouterShardDeadline(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
			return
		}
		writeJSON(w, http.StatusOK, shardResponse{Answers: []shardAnswer{}})
	}))
	defer slow.Close()
	good := &testShard{coll: flexpath.NewCollection()}
	mustAdd(t, good.coll, "doc0.xml", corpusDoc("d0", 0))
	gs := httptest.NewServer(good)
	defer gs.Close()

	rt, err := newRouter([]string{gs.URL, slow.URL}, routerConfig{shardTimeout: 100 * time.Millisecond, retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	defer srv.Close()

	start := time.Now()
	var out routerResponse
	resp, body := getJSON(t, srv.URL+"/search?q="+escape(corpusQuery)+"&k=5", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("query took %v; the 100ms shard deadline did not bound it", elapsed)
	}
	if out.ShardsOK != 1 || out.ShardsTotal != 2 || !out.Partial {
		t.Fatalf("shards_ok=%d/%d partial=%v, want 1/2 partial", out.ShardsOK, out.ShardsTotal, out.Partial)
	}
	if len(out.Answers) != 1 || out.Answers[0].Doc != "doc0.xml" {
		t.Errorf("answers = %+v, want doc0.xml only", out.Answers)
	}
	if got := rt.met.shards[1].timeouts.Load(); got != 1 {
		t.Errorf("slow shard timeouts counter = %d, want 1", got)
	}
	if got := rt.met.shards[1].retries.Load(); got != 0 {
		t.Errorf("deadline hits must not be retried; retries counter = %d", got)
	}
}

// Connection errors are retried with bounded attempts, then surface as a
// partial result.
func TestRouterRetriesConnectionErrors(t *testing.T) {
	good := &testShard{coll: flexpath.NewCollection()}
	mustAdd(t, good.coll, "doc0.xml", corpusDoc("d0", 0))
	gs := httptest.NewServer(good)
	defer gs.Close()
	// A server that is closed immediately: connecting to its (now free)
	// port fails fast.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt, err := newRouter([]string{gs.URL, deadURL}, routerConfig{shardTimeout: 10 * time.Second, retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	defer srv.Close()

	var out routerResponse
	resp, body := getJSON(t, srv.URL+"/search?q="+escape(corpusQuery)+"&k=5", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.ShardsOK != 1 || out.ShardsTotal != 2 || !out.Partial {
		t.Fatalf("shards_ok=%d/%d partial=%v, want 1/2 partial", out.ShardsOK, out.ShardsTotal, out.Partial)
	}
	if got := rt.met.shards[1].retries.Load(); got != 2 {
		t.Errorf("retries counter = %d, want 2 (bounded by -retries)", got)
	}
	if got := rt.met.shards[1].errors.Load(); got != 3 {
		t.Errorf("errors counter = %d, want 3 (initial attempt + 2 retries)", got)
	}
	if len(out.ShardErrors) != 1 || !strings.Contains(out.ShardErrors[0], "after 3 attempts") {
		t.Errorf("shard_errors = %v, want a bounded-attempts error", out.ShardErrors)
	}
}

// All shards down is an error, not an empty ranking.
func TestRouterAllShardsDownIs502(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt, err := newRouter([]string{deadURL}, routerConfig{shardTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	defer srv.Close()
	resp, body := getJSON(t, srv.URL+"/search?q="+escape(corpusQuery), nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", resp.StatusCode, body)
	}
	if got := rt.met.failed.Load(); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
}

// Corpus mutations route to the consistent-hash owner of the name, so
// repeated operations on one document always land on the same shard.
func TestRouterAdminRoutesByOwner(t *testing.T) {
	type hit struct{ path, name string }
	hits := make([][]hit, 3)
	var mu sync.Mutex
	var urls []string
	for i := 0; i < 3; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[i] = append(hits[i], hit{r.URL.Path, r.URL.Query().Get("name")})
			mu.Unlock()
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		}))
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	rt, err := newRouter(urls, routerConfig{shardTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	defer srv.Close()

	for d := 0; d < 12; d++ {
		name := fmt.Sprintf("doc-%d.xml", d)
		resp, err := http.Post(srv.URL+"/admin/add?name="+escape(name), "application/xml",
			strings.NewReader("<r/>"))
		if err != nil {
			t.Fatal(err)
		}
		owner := rt.ring.Owner(name)
		if got := resp.Header.Get("X-Flexpath-Shard"); got != owner {
			t.Errorf("%s: X-Flexpath-Shard %q, want owner %q", name, got, owner)
		}
		resp.Body.Close()
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for i, u := range urls {
		for _, h := range hits[i] {
			total++
			if h.path != "/admin/add" {
				t.Errorf("shard %d saw path %q, want /admin/add", i, h.path)
			}
			if owner := rt.ring.Owner(h.name); owner != u {
				t.Errorf("%s landed on %s, its owner is %s", h.name, u, owner)
			}
		}
	}
	if total != 12 {
		t.Errorf("%d admin requests reached shards, want 12 (exactly one per mutation)", total)
	}
	// GET is rejected without touching shards.
	resp, _ := getJSON(t, srv.URL+"/admin/add?name=x.xml", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/add status %d, want 405", resp.StatusCode)
	}
}

// Invalid requests are rejected by the router itself: 400, zero shard
// traffic, bad_request counter.
func TestRouterBadRequestsDoNotTouchShards(t *testing.T) {
	f := startRouter(t, routerConfig{shardTimeout: 10 * time.Second}, standardCorpus())
	bad := []string{
		"/search",                           // missing q
		"/search?q=" + escape("//article["), // parse error
		"/search?q=" + escape("//article") + "&k=0",
		"/search?q=" + escape("//article") + "&k=1001",
		"/search?q=" + escape("//article") + "&offset=-1",
		"/search?q=" + escape("//article") + "&algo=bogus",
		"/search?q=" + escape("//article") + "&scheme=none",
	}
	for _, b := range bad {
		resp, body := getJSON(t, f.srv.URL+b, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", b, resp.StatusCode, body)
		}
	}
	for i, sh := range f.shards {
		if n := len(sh.requests()); n != 0 {
			t.Errorf("shard %d saw %d requests from invalid router input", i, n)
		}
	}
	if got := f.rt.met.badRequest.Load(); got != uint64(len(bad)) {
		t.Errorf("bad_request counter = %d, want %d", got, len(bad))
	}
}

// /stats aggregates shard corpus sizes and flags unreachable shards
// without failing the endpoint.
func TestRouterStats(t *testing.T) {
	statsSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stats" {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"documents": 4, "elements": 40})
	}))
	defer statsSrv.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt, err := newRouter([]string{statsSrv.URL, deadURL}, routerConfig{shardTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt)
	defer srv.Close()

	var out routerStatsResponse
	resp, body := getJSON(t, srv.URL+"/stats", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.ShardsTotal != 2 || out.ShardsOK != 1 {
		t.Errorf("shards %d/%d, want 1/2", out.ShardsOK, out.ShardsTotal)
	}
	if out.Documents != 4 || out.Elements != 40 {
		t.Errorf("aggregated corpus %d docs / %d elements, want 4/40", out.Documents, out.Elements)
	}
	if len(out.Shards) != 2 || !out.Shards[0].OK || out.Shards[1].OK || out.Shards[1].Error == "" {
		t.Errorf("per-shard rows wrong: %+v", out.Shards)
	}
}

// The router's exposition is valid and announces every
// flexpath_router_* family even before any traffic.
func TestRouterMetricsExposition(t *testing.T) {
	f := startRouter(t, routerConfig{shardTimeout: 10 * time.Second}, standardCorpus())
	resp, body := getJSON(t, f.srv.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("metrics failed")
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	text := string(body)
	for _, fam := range []string{
		"flexpath_router_shards",
		"flexpath_router_queries_total",
		"flexpath_router_partial_results_total",
		"flexpath_router_panics_total",
		"flexpath_router_shard_request_duration_seconds",
		"flexpath_router_shard_errors_total",
		"flexpath_router_shard_timeouts_total",
		"flexpath_router_shard_retries_total",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("metrics missing family %s", fam)
		}
	}
}

func TestParseShards(t *testing.T) {
	if _, err := parseShards(""); err == nil {
		t.Error("empty -shards accepted")
	}
	if _, err := parseShards("127.0.0.1:9001"); err == nil {
		t.Error("schemeless shard accepted")
	}
	if _, err := parseShards("http://a,http://a/"); err == nil {
		t.Error("duplicate shard accepted")
	}
	got, err := parseShards(" http://a/ ,http://b")
	if err != nil || len(got) != 2 || got[0] != "http://a" || got[1] != "http://b" {
		t.Errorf("parseShards = %v, %v", got, err)
	}
}
