// Command flexrouter is the scatter-gather front-end of a sharded
// flexserve deployment: documents are placed on shards by consistent
// hashing, every query fans out to all shards with the per-shard
// K+Offset trick, and shard rankings are merged with the exact comparator
// Collection.Search uses (internal/merge) — so a router response is
// byte-identical to a single flexserve over the union corpus.
//
// Usage:
//
//	flexserve -shard -addr :9001 &
//	flexserve -shard -addr :9002 &
//	flexserve -shard -addr :9003 &
//	flexrouter -addr :8080 -shards http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//
// Endpoints:
//
//	GET  /search?q=QUERY&k=10&offset=0&algo=auto&scheme=structure-first&why=1&snippet=200
//	GET  /stats            shard health, per-shard and total corpus sizes
//	GET  /metrics          flexpath_router_* Prometheus families
//	GET  /healthz
//	POST /admin/add?name=NAME      forwarded to the shard owning NAME
//	POST /admin/remove?name=NAME
//	POST /admin/replace?name=NAME
//
// Degradation is graceful: each shard request gets its own deadline
// (-shardtimeout) and bounded jittered retries on connection errors
// (-retries); when some shards fail the response is still HTTP 200 with
// the surviving shards' merged answers plus "shards_ok"/"shards_total"
// (and "partial": true) so callers can tell a complete ranking from a
// degraded one. Only when every shard fails does /search return 502.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flexpath/internal/serveutil"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shardsFlag := flag.String("shards", "", "comma-separated shard base URLs (required), e.g. http://127.0.0.1:9001,http://127.0.0.1:9002")
	shardTimeout := flag.Duration("shardtimeout", 5*time.Second, "per-shard request deadline (each retry attempt gets a fresh deadline)")
	retries := flag.Int("retries", 2, "max retries per shard on connection errors, with jittered exponential backoff")
	drain := flag.Duration("drain", 10*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flexrouter: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	rt, err := newRouter(shards, routerConfig{
		shardTimeout: *shardTimeout,
		retries:      *retries,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing over %d shards on %s (shardtimeout=%v, retries=%d): %s",
		len(shards), *addr, *shardTimeout, *retries, strings.Join(shards, ", "))

	srv := &http.Server{
		Handler:           rt,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := serveutil.Serve("flexrouter", srv, ln, sig, *drain); err != nil {
		log.Fatal(err)
	}
}

// parseShards splits and normalizes the -shards list: absolute http(s)
// URLs, no trailing slash, no duplicates.
func parseShards(s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -shards")
	}
	var shards []string
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		u := strings.TrimRight(strings.TrimSpace(part), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("shard %q: must be an absolute http(s) URL", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("duplicate shard %q", u)
		}
		seen[u] = true
		shards = append(shards, u)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("missing -shards")
	}
	return shards, nil
}
