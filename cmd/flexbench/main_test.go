package main

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"flexpath"
	"flexpath/internal/xmark"
)

// tinyHarness builds a harness with a pre-seeded small document so figure
// runners execute quickly.
func tinyHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{runs: 1, seed: 42, docs: map[int64]*flexpath.Document{}}
	// Pre-seed every size the scaled sweeps would build with one tiny
	// document, so runners never construct multi-MB data in tests.
	tree, err := xmark.Build(xmark.Config{TargetBytes: 64 << 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	doc := flexpath.NewDocument(tree)
	for _, mb := range append(h.sizesMB(), 1, h.mediumMB(), h.largeMB()) {
		h.docs[int64(mb*float64(1<<20))] = doc
	}
	return h
}

// TestFigureRunners executes each paper-figure runner on a tiny document:
// they must complete without error and print rows.
func TestFigureRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runners skipped in -short mode")
	}
	h := tinyHarness(t)
	// Redirect stdout noise away from the test log is unnecessary; the
	// runners print tables, which is fine.
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err == nil {
		os.Stdout = devNull
		defer func() {
			os.Stdout = old
			devNull.Close()
		}()
	}
	h.fig9()
	h.fig13()
	h.fig17()
	h.fig18()
	h.figCache()
}

// TestJSONCapture checks the -json sidecar: rows are captured against the
// most recent header and written with run metadata.
func TestJSONCapture(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	h := tinyHarness(t)
	h.jsonPath = path
	h.figName = "unit"
	h.row("algo", "cold_ms", "speedup")
	h.row("dpo", 12*time.Millisecond, 3.5)
	h.writeJSON()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Runs    int                      `json:"runs"`
		Records []map[string]interface{} `json:"records"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
	if out.Runs != 1 || len(out.Records) != 1 {
		t.Fatalf("json sidecar: %+v", out)
	}
	rec := out.Records[0]
	if rec["figure"] != "unit" || rec["algo"] != "dpo" {
		t.Errorf("record: %+v", rec)
	}
	if ms, ok := rec["cold_ms"].(float64); !ok || ms != 12 {
		t.Errorf("duration not converted to ms: %v", rec["cold_ms"])
	}
}

func TestHarnessSizes(t *testing.T) {
	h := &harness{}
	if h.mediumMB() != 10 {
		t.Errorf("medium = %f", h.mediumMB())
	}
	if h.largeMB() != 25 {
		t.Errorf("large (scaled) = %f", h.largeMB())
	}
	h.full = true
	if h.largeMB() != 100 {
		t.Errorf("large (full) = %f", h.largeMB())
	}
	if got := h.sizesMB(); got[len(got)-1] != 100 {
		t.Errorf("full sizes = %v", got)
	}
	if len(h.kSweep()) != 7 {
		t.Errorf("k sweep = %v", h.kSweep())
	}
}
