// Command flexbench regenerates the FleXPath paper's experiments
// (§6, Figures 9-16): DPO vs SSO vs Hybrid across document sizes, K, and
// number of relaxations, on XMark-style data with the paper's three
// workload queries.
//
// Usage:
//
//	flexbench                 # all figures at scaled-down sizes
//	flexbench -fig 10         # one figure
//	flexbench -full           # the paper's sizes (1-100 MB, K to 600); slow
//	flexbench -runs 5         # median of N timed runs
//	flexbench -csv            # machine-readable output
//
// Absolute times are not comparable to the paper's 2004 testbed; the
// claims under test are shape claims (who wins and how gaps grow).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"flexpath"
	"flexpath/internal/exec"
	"flexpath/internal/inex"
	"flexpath/internal/obs"
	"flexpath/internal/xmark"
	"flexpath/internal/xmltree"
)

type workload struct {
	name  string
	query string
}

// The paper's experiment queries (§6, "Dataset and Queries").
var (
	xq1 = workload{"XQ1", `//item[./description/parlist]`}
	xq2 = workload{"XQ2", `//item[./description/parlist and ./mailbox/mail/text]`}
	xq3 = workload{"XQ3", `//item[./description/parlist/listitem and ` +
		`./mailbox/mail/text[./bold and ./keyword and ./emph] and ./name and ./incategory]`}
)

type harness struct {
	full bool
	runs int
	csv  bool
	seed int64
	docs map[int64]*flexpath.Document

	// JSON capture: every figure's header row names the columns of the
	// data rows that follow; with -json set, rows accumulate as records
	// and are written out at exit.
	jsonPath string
	figName  string
	cols     []string
	records  []map[string]any
}

func (h *harness) doc(mb float64) *flexpath.Document {
	bytes := int64(mb * float64(1<<20))
	if d, ok := h.docs[bytes]; ok {
		return d
	}
	fmt.Fprintf(os.Stderr, "building %.2g MB document...\n", mb)
	tree, err := xmark.Build(xmark.Config{TargetBytes: bytes, Seed: h.seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	d := flexpath.NewDocument(tree)
	h.docs[bytes] = d
	return d
}

// measure times one search, median over h.runs, after one warm-up run
// that also builds the (cached) relaxation chain so that timing covers
// top-K evaluation, as in the paper. It also returns the work counters of
// one run — the noise-free signal behind the timings.
func (h *harness) measure(d *flexpath.Document, w workload, algo flexpath.Algorithm, k int) (time.Duration, flexpath.Metrics) {
	q, err := flexpath.ParseQuery(w.query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	var m flexpath.Metrics
	opts := flexpath.SearchOptions{K: k, Algorithm: algo, Metrics: &m}
	if _, err := d.Search(q, opts); err != nil { // warm-up
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	times := make([]time.Duration, h.runs)
	for i := range times {
		runtime.GC()
		start := time.Now()
		if _, err := d.Search(q, opts); err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], m
}

func (h *harness) sizesMB() []float64 {
	if h.full {
		return []float64{1, 10, 25, 50, 100}
	}
	return []float64{1, 2, 4, 8, 16}
}

func (h *harness) kSweep() []int {
	return []int{50, 100, 200, 300, 400, 500, 600}
}

func (h *harness) mediumMB() float64 { return 10 }

func (h *harness) largeMB() float64 {
	if h.full {
		return 100
	}
	return 25
}

func (h *harness) row(cols ...interface{}) {
	h.capture(cols)
	if h.csv {
		for i, c := range cols {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(c)
		}
		fmt.Println()
		return
	}
	for _, c := range cols {
		switch v := c.(type) {
		case string:
			fmt.Printf("%-10s", v)
		case int:
			fmt.Printf("%-10d", v)
		case float64:
			fmt.Printf("%-10.2f", v)
		case time.Duration:
			fmt.Printf("%-12s", v.Round(10*time.Microsecond))
		default:
			fmt.Printf("%-10v", v)
		}
	}
	fmt.Println()
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// capture records a row for -json output. A row whose columns are all
// strings is a header naming the columns; any other row is data zipped
// against the current header.
func (h *harness) capture(cols []interface{}) {
	if h.jsonPath == "" {
		return
	}
	allStrings := true
	for _, c := range cols {
		if _, ok := c.(string); !ok {
			allStrings = false
			break
		}
	}
	if allStrings {
		h.cols = make([]string, len(cols))
		for i, c := range cols {
			h.cols[i] = c.(string)
		}
		return
	}
	rec := map[string]any{"figure": h.figName}
	for i, c := range cols {
		name := "col" + strconv.Itoa(i)
		if i < len(h.cols) {
			name = h.cols[i]
		}
		if d, ok := c.(time.Duration); ok {
			c = ms(d)
		}
		rec[name] = c
	}
	h.records = append(h.records, rec)
}

// writeJSON dumps the captured benchmark records.
func (h *harness) writeJSON() {
	if h.jsonPath == "" {
		return
	}
	out := map[string]any{
		"generated_unix": time.Now().Unix(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"go_version":     runtime.Version(),
		"full":           h.full,
		"runs":           h.runs,
		"seed":           h.seed,
		"records":        h.records,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(h.jsonPath, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(h.records), h.jsonPath)
}

func (h *harness) header(fig int, title string) {
	h.figName = "fig" + strconv.Itoa(fig)
	fmt.Printf("\n# Figure %d — %s\n", fig, title)
}

// fig9: DPO vs SSO varying the number of relaxations (1 MB, K=50).
func (h *harness) fig9() {
	mb := 1.0
	h.header(9, fmt.Sprintf("varying number of relaxations (doc=%gMB, K=50)", mb))
	d := h.doc(mb)
	h.row("query", "DPO_ms", "SSO_ms", "speedup", "DPO_lvls", "SSO_enc")
	for _, w := range []workload{xq1, xq2, xq3} {
		dpo, md := h.measure(d, w, flexpath.DPO, 50)
		sso, ms2 := h.measure(d, w, flexpath.SSO, 50)
		h.row(w.name, ms(dpo), ms(sso), ms(dpo)/ms(sso), md.QueriesEvaluated, ms2.RelaxationsEncoded)
	}
}

// fig10: DPO vs SSO varying K (medium doc, XQ3).
func (h *harness) fig10() {
	mb := h.mediumMB()
	h.header(10, fmt.Sprintf("varying K (doc=%gMB, XQ3)", mb))
	d := h.doc(mb)
	h.row("K", "DPO_ms", "SSO_ms", "speedup", "DPO_lvls", "SSO_enc")
	for _, k := range h.kSweep() {
		dpo, md := h.measure(d, xq3, flexpath.DPO, k)
		sso, ms2 := h.measure(d, xq3, flexpath.SSO, k)
		h.row(k, ms(dpo), ms(sso), ms(dpo)/ms(sso), md.QueriesEvaluated, ms2.RelaxationsEncoded)
	}
}

func (h *harness) sizeSweep(fig int, w workload, k int, a, b flexpath.Algorithm, an, bn string) {
	h.header(fig, fmt.Sprintf("varying document size (%s, K=%d): %s vs %s", w.name, k, an, bn))
	h.row("MB", an+"_ms", bn+"_ms", "speedup", an+"_tup", bn+"_tup")
	for _, mb := range h.sizesMB() {
		d := h.doc(mb)
		ta, ma := h.measure(d, w, a, k)
		tb, mb2 := h.measure(d, w, b, k)
		h.row(mb, ms(ta), ms(tb), ms(ta)/ms(tb), ma.TuplesGenerated, mb2.TuplesGenerated)
	}
}

// fig11/12: DPO vs SSO varying document size at small and large K (XQ2).
func (h *harness) fig11() { h.sizeSweep(11, xq2, 12, flexpath.DPO, flexpath.SSO, "DPO", "SSO") }
func (h *harness) fig12() { h.sizeSweep(12, xq2, 500, flexpath.DPO, flexpath.SSO, "DPO", "SSO") }

// fig13: SSO vs Hybrid varying the number of relaxations (medium doc,
// K=500).
func (h *harness) fig13() {
	mb := h.mediumMB()
	h.header(13, fmt.Sprintf("varying number of relaxations (doc=%gMB, K=500): SSO vs Hybrid", mb))
	d := h.doc(mb)
	h.row("query", "SSO_ms", "Hybrid_ms", "speedup", "sorted", "buckets")
	for _, w := range []workload{xq1, xq2, xq3} {
		sso, ms2 := h.measure(d, w, flexpath.SSO, 500)
		hyb, mh := h.measure(d, w, flexpath.Hybrid, 500)
		h.row(w.name, ms(sso), ms(hyb), ms(sso)/ms(hyb), ms2.SortedTuples, mh.Buckets)
	}
}

// fig14: SSO vs Hybrid varying document size (XQ3, K=500).
func (h *harness) fig14() {
	h.sizeSweep(14, xq3, 500, flexpath.SSO, flexpath.Hybrid, "SSO", "Hybrid")
}

func (h *harness) kSweepFig(fig int, mb float64) {
	h.header(fig, fmt.Sprintf("varying K (doc=%gMB, XQ3): SSO vs Hybrid", mb))
	d := h.doc(mb)
	h.row("K", "SSO_ms", "Hybrid_ms", "speedup", "sorted", "buckets")
	for _, k := range h.kSweep() {
		sso, ms2 := h.measure(d, xq3, flexpath.SSO, k)
		hyb, mh := h.measure(d, xq3, flexpath.Hybrid, k)
		h.row(k, ms(sso), ms(hyb), ms(sso)/ms(hyb), ms2.SortedTuples, mh.Buckets)
	}
}

// fig15/16: SSO vs Hybrid varying K on the medium and large documents.
func (h *harness) fig15() { h.kSweepFig(15, h.mediumMB()) }
func (h *harness) fig16() { h.kSweepFig(16, h.largeMB()) }

// fig17 is NOT a figure of the paper: it compares the three evaluation
// strategies the paper's §7 surveys — rewriting (DPO), plan-based
// (Hybrid) and data relaxation (APPROXML-style shortcut-edge closure) —
// showing why the paper dismissed data relaxation at scale.
func (h *harness) fig17() {
	h.header(17, "extra: evaluation strategies (XQ2, K=100) incl. data relaxation")
	h.row("MB", "DPO_ms", "Hybrid_ms", "DataRelax_ms", "pairs")
	q, err := flexpath.ParseQuery(xq2.query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	for _, mb := range h.sizesMB() {
		d := h.doc(mb)
		dpo, _ := h.measure(d, xq2, flexpath.DPO, 100)
		hyb, _ := h.measure(d, xq2, flexpath.Hybrid, 100)
		var m flexpath.Metrics
		start := time.Now()
		_, err := d.Search(q, flexpath.SearchOptions{
			K: 100, Algorithm: flexpath.DataRelaxation, Metrics: &m,
		})
		dr := time.Since(start)
		if err != nil {
			h.row(mb, ms(dpo), ms(hyb), "FAILED", err.Error())
			continue
		}
		h.row(mb, ms(dpo), ms(hyb), ms(dr), m.PairsMaterialized)
	}
}

// fig18 is NOT a figure of the paper: it quantifies the utility argument
// of the paper's introduction on an INEX-like heterogeneous article
// corpus. Ground truth = articles containing the query topics anywhere
// (what a patient reader would call relevant). A strict interpretation of
// the structured query misses most of them ("the user is penalized for
// providing context"); FleXPath's flexible interpretation recovers them,
// ranked by structural faithfulness.
func (h *harness) fig18() {
	h.header(18, "extra: strict vs flexible recall on a heterogeneous article corpus")
	tree, err := inex.Build(inex.Config{Articles: 500, Seed: 42})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	d := flexpath.NewDocument(tree)
	q, err := flexpath.ParseQuery(
		`//article[./section[./algorithm and ./paragraph[.contains("xml" and "streaming")]]]`)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	// Ground truth: articles whose text contains both topics anywhere.
	truth, err := flexpath.ParseQuery(`//article[.contains("xml" and "streaming")]`)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	relevant := map[string]bool{}
	ans, err := d.Search(truth, flexpath.SearchOptions{K: 1 << 20})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	for _, a := range ans {
		if a.Relaxations == 0 {
			relevant[a.ID] = true
		}
	}
	flexAll, err := d.Search(q, flexpath.SearchOptions{K: 1 << 20})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	strict := 0
	for _, a := range flexAll {
		if a.Relaxations == 0 && relevant[a.ID] {
			strict++
		}
	}
	h.row("K", "strict_recall", "flexpath_recall")
	for _, k := range []int{25, 50, 100, 200, len(relevant)} {
		hits := 0
		for i, a := range flexAll {
			if i >= k {
				break
			}
			if relevant[a.ID] {
				hits++
			}
		}
		sr := float64(min(strict, k)) / float64(len(relevant))
		fr := float64(hits) / float64(len(relevant))
		h.row(k, sr, fr)
	}
	fmt.Printf("(relevant articles: %d; exact structural matches: %d)\n", len(relevant), strict)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mustParse parses a workload query or dies.
func mustParse(src string) *flexpath.Query {
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	return q
}

// countAllocs reports heap allocations per call of fn, averaged over
// runs calls. It is the flexbench analogue of testing.B's allocs/op:
// machine-independent, so the perf gate can compare it raw across
// hardware (see cmd/benchdiff).
func countAllocs(runs int, fn func()) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// best times fn h.runs times and returns the minimum. The CI gate rows
// use it instead of the median: under spiky container load the minimum
// of N runs is far more stable (interference only ever adds time), and a
// genuine regression still raises the floor.
func (h *harness) best(fn func()) time.Duration {
	var best time.Duration
	for i := 0; i < h.runs; i++ {
		runtime.GC()
		start := time.Now()
		fn()
		if t := time.Since(start); i == 0 || t < best {
			best = t
		}
	}
	return best
}

// median times fn h.runs times and returns the median.
func (h *harness) median(fn func()) time.Duration {
	times := make([]time.Duration, h.runs)
	for i := range times {
		runtime.GC()
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// renderAnswers serializes a ranking for byte-identity comparison.
func renderAnswers(answers []flexpath.CollectionAnswer) string {
	out := ""
	for i, a := range answers {
		out += fmt.Sprintf("%d|%s|%s|%.9f|%.9f|%d\n",
			i, a.DocName, a.Path, a.Structural, a.Keyword, a.Relaxations)
	}
	return out
}

func renderDocAnswers(answers []flexpath.Answer) string {
	out := ""
	for i, a := range answers {
		out += fmt.Sprintf("%d|%s|%.9f|%.9f|%d\n",
			i, a.Path, a.Structural, a.Keyword, a.Relaxations)
	}
	return out
}

// figCache is NOT a figure of the paper: it measures the serving-layer
// query-result cache on the repeated-query workload. Cold times bypass
// the cache (NoCache); warm times hit it. The cached ranking must be
// byte-identical to a cold evaluation for every algorithm.
func (h *harness) figCache() {
	mb := 1.0
	h.header(19, fmt.Sprintf("extra: repeated queries, cold vs warm result cache (doc=%gMB, XQ2, K=50)", mb))
	h.figName = "cache"
	d := h.doc(mb)
	d.SetCache(256)
	q := mustParse(xq2.query)
	h.row("algo", "cold_ms", "warm_ms", "speedup", "identical")
	for _, algo := range []flexpath.Algorithm{flexpath.Hybrid, flexpath.SSO, flexpath.DPO} {
		opts := flexpath.SearchOptions{K: 50, Algorithm: algo}
		cold := opts
		cold.NoCache = true
		coldAns, err := d.Search(q, cold) // also warms the chain cache
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		coldT := h.median(func() {
			if _, err := d.Search(q, cold); err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		})
		warmAns, err := d.Search(q, opts) // prime the cache (miss)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		warmT := h.median(func() {
			var err error
			warmAns, err = d.Search(q, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		})
		identical := renderDocAnswers(coldAns) == renderDocAnswers(warmAns)
		h.row(algo.String(), ms(coldT), ms(warmT), ms(coldT)/ms(warmT), identical)
	}
	if cs, ok := d.CacheStats(); ok {
		fmt.Printf("(cache: %d hits, %d misses, %d entries)\n", cs.Hits, cs.Misses, cs.Entries)
	}
}

// figPlanCache is NOT a figure of the paper: it measures the
// plan-template cache on the repeated-query-shape workload. Cold times
// run with the cache disabled (every search rebuilds the relaxation
// chain, enumerates levels and constructs its join plans); hit times
// reuse a warmed template. Both sides bypass the result cache, so the
// difference is pure template work. Rankings must be byte-identical.
func (h *harness) figPlanCache() {
	mb := 1.0
	h.header(24, fmt.Sprintf("extra: repeated query shapes, cold vs warm plan-template cache (doc=%gMB, XQ2, K=50)", mb))
	h.figName = "plancache"
	d := h.doc(mb)
	q := mustParse(xq2.query)
	h.row("algo", "cold_ms", "hit_ms", "speedup", "identical")
	for _, algo := range []flexpath.Algorithm{flexpath.Hybrid, flexpath.SSO, flexpath.DPO, flexpath.Auto} {
		opts := flexpath.SearchOptions{K: 50, Algorithm: algo, NoCache: true}
		d.SetPlanCache(0)
		coldAns, err := d.Search(q, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		coldT := h.median(func() {
			var err error
			coldAns, err = d.Search(q, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		})
		d.SetPlanCache(256)
		hitAns, err := d.Search(q, opts) // prime the template (miss)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		hitT := h.median(func() {
			var err error
			hitAns, err = d.Search(q, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		})
		identical := renderDocAnswers(coldAns) == renderDocAnswers(hitAns)
		h.row(algo.String(), ms(coldT), ms(hitT), ms(coldT)/ms(hitT), identical)
	}
	if ps, ok := d.PlanCacheStats(); ok {
		fmt.Printf("(plan cache: %d hits, %d misses, %d entries)\n", ps.Hits, ps.Misses, ps.Entries)
	}
	d.SetPlanCache(flexpath.DefaultPlanCacheCapacity)
}

// figParallel is NOT a figure of the paper: it measures parallel
// Collection.Search against sequential evaluation of the same corpus.
// The merged rankings must be byte-identical.
func (h *harness) figParallel() {
	const nDocs = 8
	mb := 0.5
	if h.full {
		mb = 2
	}
	h.header(20, fmt.Sprintf("extra: collection search, sequential vs %d workers (%d docs x %gMB, XQ2, K=50)",
		runtime.GOMAXPROCS(0), nDocs, mb))
	h.figName = "parallel"
	coll := flexpath.NewCollection()
	for i := 0; i < nDocs; i++ {
		fmt.Fprintf(os.Stderr, "building document %d/%d...\n", i+1, nDocs)
		tree, err := xmark.Build(xmark.Config{
			TargetBytes: int64(mb * float64(1<<20)), Seed: h.seed + int64(i),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		if err := coll.Add(fmt.Sprintf("doc%02d.xml", i), flexpath.NewDocument(tree)); err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
	}
	q := mustParse(xq2.query)
	seqOpts := flexpath.SearchOptions{K: 50, Workers: 1, NoCache: true}
	parOpts := flexpath.SearchOptions{K: 50, NoCache: true} // Workers: GOMAXPROCS
	seqAns, err := coll.Search(q, seqOpts)                  // warm chains
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	parAns, err := coll.Search(q, parOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	seqT := h.median(func() {
		var err error
		seqAns, err = coll.Search(q, seqOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
	})
	parT := h.median(func() {
		var err error
		parAns, err = coll.Search(q, parOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
	})
	identical := renderAnswers(seqAns) == renderAnswers(parAns)
	h.row("docs", "seq_ms", "par_ms", "speedup", "workers", "identical")
	h.row(nDocs, ms(seqT), ms(parT), ms(seqT)/ms(parT), runtime.GOMAXPROCS(0), identical)
}

// figObs is NOT a figure of the paper: it measures the cost of the
// observability layer by running the same searches bare and with an
// active span recording per-stage latency into a registry. Each timed
// sample batches several searches so the clock resolution and scheduler
// noise don't swamp the per-query delta; the acceptance bar for the
// serving layer is overhead below 5%.
func (h *harness) figObs() {
	mb := 1.0
	const batch = 20
	h.header(21, fmt.Sprintf("extra: observability overhead (doc=%gMB, XQ2, K=50, %d searches/sample)", mb, batch))
	h.figName = "obs"
	d := h.doc(mb)
	q := mustParse(xq2.query)
	reg := obs.NewRegistry(128, 0)
	h.row("algo", "bare_ms", "instr_ms", "overhead_pct")
	for _, algo := range []flexpath.Algorithm{flexpath.Hybrid, flexpath.SSO, flexpath.DPO} {
		opts := flexpath.SearchOptions{K: 50, Algorithm: algo, NoCache: true}
		if _, err := d.Search(q, opts); err != nil { // warm the chain cache
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		bare := h.median(func() {
			for i := 0; i < batch; i++ {
				if _, err := d.SearchContext(context.Background(), q, opts); err != nil {
					fmt.Fprintln(os.Stderr, "flexbench:", err)
					os.Exit(1)
				}
			}
		})
		instr := h.median(func() {
			for i := 0; i < batch; i++ {
				span := reg.StartSpan(xq2.query, algo.String(), "structure-first", 50)
				ctx := obs.WithSpan(context.Background(), span)
				_, err := d.SearchContext(ctx, q, opts)
				if err != nil {
					fmt.Fprintln(os.Stderr, "flexbench:", err)
					os.Exit(1)
				}
				span.Finish("ok")
			}
		})
		h.row(algo.String(), ms(bare)/batch, ms(instr)/batch,
			100*(float64(instr)-float64(bare))/float64(bare))
	}
}

// figAuto is NOT a figure of the paper: it evaluates the cost-based
// planner (Algorithm Auto, the default) against every hand-picked
// algorithm. For each workload query and K it times DPO, SSO, Hybrid
// and Auto, then reports the ratio of Auto to the best fixed choice and
// which algorithm the planner picked. The acceptance bar is Auto within
// ~10% of the best fixed algorithm on every row (ratio <= 1.10, modulo
// timing noise: Auto adds one planner pass per query).
func (h *harness) figAuto() {
	mb := h.mediumMB()
	h.header(22, fmt.Sprintf("extra: cost-based algorithm selection (doc=%gMB)", mb))
	h.figName = "auto"
	d := h.doc(mb)
	h.row("query", "K", "DPO_ms", "SSO_ms", "Hybrid_ms", "Auto_ms", "best_ms", "ratio", "chosen")
	for _, w := range []workload{xq1, xq2, xq3} {
		for _, k := range []int{50, 200, 600} {
			dpo, _ := h.measure(d, w, flexpath.DPO, k)
			sso, _ := h.measure(d, w, flexpath.SSO, k)
			hyb, _ := h.measure(d, w, flexpath.Hybrid, k)
			auto, ma := h.measure(d, w, flexpath.Auto, k)
			best := dpo
			if sso < best {
				best = sso
			}
			if hyb < best {
				best = hyb
			}
			h.row(w.name, k, ms(dpo), ms(sso), ms(hyb), ms(auto),
				ms(best), ms(auto)/ms(best), ma.Algorithm)
		}
	}
}

// figGate is NOT a figure of the paper: it is the pinned workload the CI
// perf-regression gate times (see cmd/benchdiff and bench_baseline.json).
// Small document, short K sweep, every algorithm including Auto — fast
// enough for CI yet covering each execution strategy the planner can
// dispatch to.
func (h *harness) figGate() {
	// 2 MB and K >= 100 keep every row above ~0.5 ms: sub-0.2 ms rows
	// are dominated by scheduler noise and would flap the gate.
	mb := 2.0
	h.header(23, fmt.Sprintf("extra: CI perf gate workload (doc=%gMB)", mb))
	h.figName = "gate"
	d := h.doc(mb)
	algos := []flexpath.Algorithm{flexpath.DPO, flexpath.SSO, flexpath.Hybrid, flexpath.Auto}
	h.row("query", "K", "DPO_ms", "SSO_ms", "Hybrid_ms", "Auto_ms",
		"DPO_allocs", "SSO_allocs", "Hybrid_allocs", "Auto_allocs")
	for _, w := range []workload{xq1, xq2} {
		q := mustParse(w.query)
		for _, k := range []int{100, 400} {
			times := make([]float64, len(algos))
			allocs := make([]float64, len(algos))
			for i, algo := range algos {
				opts := flexpath.SearchOptions{K: k, Algorithm: algo}
				run := func() {
					if _, err := d.Search(q, opts); err != nil {
						fmt.Fprintln(os.Stderr, "flexbench:", err)
						os.Exit(1)
					}
				}
				run() // warm-up: builds the cached relaxation chain
				times[i] = ms(h.best(run))
				allocs[i] = countAllocs(h.runs, run)
			}
			h.row(w.name, k, times[0], times[1], times[2], times[3],
				allocs[0], allocs[1], allocs[2], allocs[3])
		}
	}
	// Template-hit rows: the XQ2 workload with the plan cache disabled
	// (cold: chain + level + plan construction every search) vs warmed.
	// Gating both keeps the cache's win from silently eroding. Only the
	// key columns (query, K), *_ms and *_allocs columns may appear here:
	// benchdiff folds every other column into the record key.
	// The columnar core pushed warm-template searches under a millisecond,
	// where single-search samples flap the gate on scheduler noise; the
	// hit rows therefore batch several searches per timed sample (reported
	// per search), as figObs does. Cold rows stay unbatched: they run
	// multiple milliseconds, and batching their heavy allocation would
	// pull GC pauses into the timed region.
	const batch = 8
	h.row("query", "K", "cold_ms", "hit_ms", "cold_allocs", "hit_allocs")
	q := mustParse(xq2.query)
	for _, k := range []int{100, 400} {
		opts := flexpath.SearchOptions{K: k, Algorithm: flexpath.Hybrid, NoCache: true}
		run := func() {
			if _, err := d.Search(q, opts); err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		}
		d.SetPlanCache(0)
		run() // warm-up
		cold := h.best(run)
		coldAllocs := countAllocs(h.runs, run)
		d.SetPlanCache(256)
		run() // prime the template
		hit := h.best(func() {
			for i := 0; i < batch; i++ {
				run()
			}
		})
		hitAllocs := countAllocs(h.runs, run)
		h.row("XQ2-plancache", k, ms(cold), ms(hit)/batch, coldAllocs, hitAllocs)
	}
	d.SetPlanCache(flexpath.DefaultPlanCacheCapacity)
}

// figJoins is NOT a figure of the paper: it profiles the columnar
// block-at-a-time join kernels against their allocating wrappers on real
// XMark tag lists, then shows what the scratch arena buys a template-hit
// search end to end. The arena rows should report ~0 allocs/op once the
// arena chunk is warm; the search rows isolate the execution-dominated
// regime (plan template warmed, result cache bypassed) where the
// columnar core is the whole story.
func (h *harness) figJoins() {
	h.header(25, "extra: columnar join kernels, allocating wrapper vs arena (2MB XMark tag lists)")
	h.figName = "joins"
	tree, err := xmark.Build(xmark.Config{TargetBytes: 2 << 20, Seed: h.seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	items := tree.NodesWithTag("item")
	descs := tree.NodesWithTag("description")
	keywords := tree.NodesWithTag("keyword")
	kernels := []struct {
		name         string
		batch        func(*xmltree.Document, []xmltree.NodeID, []xmltree.NodeID) []xmltree.NodeID
		into         func(*exec.Arena, []xmltree.NodeID, *xmltree.Document, []xmltree.NodeID, []xmltree.NodeID) []xmltree.NodeID
		outer, inner []xmltree.NodeID
	}{
		{"HasDescendant", exec.SemiJoinHasDescendant, exec.SemiJoinHasDescendantInto, items, keywords},
		{"HasChild", exec.SemiJoinHasChild, exec.SemiJoinHasChildInto, items, descs},
		{"DescendantOf", exec.SemiJoinDescendantOf, exec.SemiJoinDescendantOfInto, keywords, items},
		{"ChildOf", exec.SemiJoinChildOf, exec.SemiJoinChildOfInto, descs, items},
	}
	const reps = 50 // calls per timed sample; kernels run in microseconds
	usPer := func(d time.Duration) float64 { return float64(d) / float64(reps) / 1e3 }
	a := exec.NewArena()
	h.row("kernel", "alloc_us", "arena_us", "speedup", "alloc_allocs", "arena_allocs")
	for _, kc := range kernels {
		kc := kc
		allocRun := func() {
			for i := 0; i < reps; i++ {
				kc.batch(tree, kc.outer, kc.inner)
			}
		}
		arenaRun := func() {
			for i := 0; i < reps; i++ {
				a.Reset()
				kc.into(a, a.Nodes(len(kc.outer)), tree, kc.outer, kc.inner)
			}
		}
		allocRun() // warm-up
		arenaRun() // ...and warm the arena chunk
		at := h.median(allocRun)
		bt := h.median(arenaRun)
		aAllocs := countAllocs(200, func() { kc.batch(tree, kc.outer, kc.inner) })
		bAllocs := countAllocs(200, func() {
			a.Reset()
			kc.into(a, a.Nodes(len(kc.outer)), tree, kc.outer, kc.inner)
		})
		h.row(kc.name, usPer(at), usPer(bt), float64(at)/float64(bt), aAllocs, bAllocs)
	}
	// Template-hit searches on the same document: the plan template is
	// warmed and the result cache bypassed, so both time and allocations
	// are dominated by the join kernels and the per-search arena.
	d := flexpath.NewDocument(tree)
	h.row("query", "K", "hit_ms", "hit_allocs")
	for _, w := range []workload{xq1, xq2} {
		q := mustParse(w.query)
		for _, k := range []int{100, 400} {
			opts := flexpath.SearchOptions{K: k, Algorithm: flexpath.Hybrid, NoCache: true}
			run := func() {
				if _, err := d.Search(q, opts); err != nil {
					fmt.Fprintln(os.Stderr, "flexbench:", err)
					os.Exit(1)
				}
			}
			run() // prime the plan template
			t := h.median(run)
			h.row(w.name, k, ms(t), countAllocs(h.runs, run))
		}
	}
}

// figMmap is NOT a figure of the paper: it profiles the FXP3 mmap-backed
// snapshot path against the FXP2 streamed snapshot. "open" is the cold
// cost flexserve pays per document at startup (map the file, verify the
// header, decode the meta section — no tree, stats or index work);
// "fault" is the full decode paid when a search first touches a cold
// document. The faulted document's ranking must be byte-identical to a
// search over the document built in memory.
func (h *harness) figMmap() {
	h.header(26, "extra: snapshot load paths, FXP2 stream decode vs FXP3 mmap (XQ2, K=50)")
	h.figName = "mmap"
	dir, err := os.MkdirTemp("", "flexbench-mmap")
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	q := mustParse(xq2.query)
	h.row("MB", "fxp2_load_ms", "fxp3_open_ms", "fxp3_fault_ms", "identical")
	for _, mb := range h.sizesMB() {
		d := h.doc(mb)
		p2 := filepath.Join(dir, fmt.Sprintf("doc-%g.fxp2", mb))
		p3 := filepath.Join(dir, fmt.Sprintf("doc-%g.fxp3", mb))
		if err := d.SaveIndexedSnapshotFile(p2); err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		if err := d.SaveFXP3SnapshotFile(p3); err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		loadT := h.median(func() {
			if _, err := flexpath.LoadIndexedSnapshotFile(p2); err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		})
		openT := h.median(func() {
			if _, err := flexpath.ReadFXP3Meta(p3); err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		})
		var cold *flexpath.Document
		faultT := h.median(func() {
			if cold != nil {
				cold.Close() //nolint:errcheck
			}
			var err error
			cold, err = flexpath.LoadFXP3SnapshotFile(p3)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flexbench:", err)
				os.Exit(1)
			}
		})
		memAns, err := d.Search(q, flexpath.SearchOptions{K: 50, NoCache: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		coldAns, err := cold.Search(q, flexpath.SearchOptions{K: 50, NoCache: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		identical := renderDocAnswers(memAns) == renderDocAnswers(coldAns)
		h.row(mb, ms(loadT), ms(openT), ms(faultT), identical)
		cold.Close() //nolint:errcheck
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to run: 9..18, cache, plancache, parallel, obs, auto, gate, joins, mmap, or all")
	full := flag.Bool("full", false, "use the paper's document sizes (1-100 MB); slow")
	runs := flag.Int("runs", 3, "timed runs per point (median reported)")
	csv := flag.Bool("csv", false, "CSV output")
	seed := flag.Int64("seed", 42, "data generator seed")
	jsonOut := flag.String("json", "", "also write results as JSON to this file")
	flag.Parse()

	h := &harness{full: *full, runs: *runs, csv: *csv, seed: *seed,
		jsonPath: *jsonOut, docs: make(map[int64]*flexpath.Document)}

	figs := map[int]func(){
		9: h.fig9, 10: h.fig10, 11: h.fig11, 12: h.fig12,
		13: h.fig13, 14: h.fig14, 15: h.fig15, 16: h.fig16,
		17: h.fig17, 18: h.fig18,
	}
	named := map[string]func(){
		"cache":     h.figCache,
		"plancache": h.figPlanCache,
		"parallel":  h.figParallel,
		"obs":       h.figObs,
		"auto":      h.figAuto,
		"gate":      h.figGate,
		"joins":     h.figJoins,
		"mmap":      h.figMmap,
	}
	switch {
	case *fig == "all":
		for i := 9; i <= 18; i++ {
			figs[i]()
		}
		h.figCache()
		h.figPlanCache()
		h.figParallel()
		h.figObs()
		h.figAuto()
		h.figJoins()
		h.figMmap()
	case named[*fig] != nil:
		named[*fig]()
	default:
		n, err := strconv.Atoi(*fig)
		if err != nil || figs[n] == nil {
			fmt.Fprintf(os.Stderr,
				"flexbench: unknown figure %q (want 9..18, cache, plancache, parallel, obs, auto, gate, joins, mmap, or all)\n", *fig)
			os.Exit(2)
		}
		figs[n]()
	}
	h.writeJSON()
}
