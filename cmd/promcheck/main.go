// Command promcheck validates Prometheus text exposition format 0.0.4
// read from stdin or from a file argument, exiting nonzero on the first
// violation. CI pipes a scraped /metrics body through it so a malformed
// metric family fails the build instead of silently breaking scrapes.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck
//	promcheck metrics.txt
package main

import (
	"fmt"
	"io"
	"os"

	"flexpath/internal/obs"
)

func main() {
	var (
		body []byte
		err  error
		src  = "stdin"
	)
	switch len(os.Args) {
	case 1:
		body, err = io.ReadAll(os.Stdin)
	case 2:
		src = os.Args[1]
		body, err = os.ReadFile(src)
	default:
		fmt.Fprintln(os.Stderr, "usage: promcheck [file]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	if err := obs.ValidateExposition(body); err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: ok (%d bytes)\n", src, len(body))
}
