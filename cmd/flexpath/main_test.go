package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"flexpath"
)

const testXML = `<lib>
  <book id="b1"><chapter><para>xml streaming engines</para></chapter></book>
  <book id="b2"><chapter><title>xml streaming</title><para>other</para></chapter></book>
</lib>`

func testSession(t *testing.T) (*session, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	doc, err := flexpath.LoadString(testXML)
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	return &session{
		doc: doc, k: 5, algo: flexpath.Hybrid, scheme: flexpath.StructureFirst,
		out: &out, errOut: &errOut,
	}, &out, &errOut
}

const testQuery = `//book[./chapter/para[.contains("xml" and "streaming")]]`

func TestSearchOutput(t *testing.T) {
	s, out, _ := testSession(t)
	if err := s.search(testQuery); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "id=b1") {
		t.Errorf("output missing exact answer: %s", text)
	}
	if !strings.Contains(text, "relax=") {
		t.Errorf("output missing relaxation column: %s", text)
	}
}

func TestSearchJSON(t *testing.T) {
	s, out, _ := testSession(t)
	s.jsonOut = true
	s.metrics = true
	s.snippet = 40
	if err := s.search(testQuery); err != nil {
		t.Fatal(err)
	}
	var res jsonResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(res.Answers) == 0 || res.Answers[0].ID != "b1" {
		t.Errorf("JSON answers wrong: %+v", res.Answers)
	}
	if res.Metrics == nil {
		t.Error("metrics missing from JSON")
	}
	if res.Answers[0].Snippet == "" {
		t.Error("snippet missing from JSON")
	}
	if res.Algorithm != "Hybrid" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
}

func TestExplainAndPlan(t *testing.T) {
	s, out, _ := testSession(t)
	if err := s.explain(testQuery); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "relaxation chain") {
		t.Errorf("explain output: %s", out.String())
	}
	out.Reset()
	if err := s.plan(testQuery); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "relaxations encoded") {
		t.Errorf("plan output: %s", out.String())
	}
	if err := s.search("((("); err == nil {
		t.Error("bad query accepted")
	}
}

func TestREPL(t *testing.T) {
	s, out, errOut := testSession(t)
	input := strings.Join([]string{
		`\h`,
		`\k 2`,
		`\algo dpo`,
		`\scheme combined`,
		testQuery,
		`\metrics`,
		`\json`,
		testQuery,
		`\explain ` + testQuery,
		`\plan ` + testQuery,
		`\k bogus`,
		`\algo bogus`,
		`\scheme bogus`,
		`\nonsense`,
		`not a query`,
		`\q`,
		`after quit is ignored`,
	}, "\n")
	done := make(chan struct{})
	go func() {
		s.repl(strings.NewReader(input))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("repl did not terminate")
	}
	if s.k != 2 || s.algo != flexpath.DPO || s.scheme != flexpath.Combined {
		t.Errorf("repl state: k=%d algo=%v scheme=%v", s.k, s.algo, s.scheme)
	}
	if !strings.Contains(out.String(), "id=b1") {
		t.Error("repl search produced no results")
	}
	e := errOut.String()
	for _, want := range []string{"usage:", "unknown algorithm", "unknown command"} {
		if !strings.Contains(e, want) {
			t.Errorf("repl error output missing %q", want)
		}
	}
}

func TestAnalyzeCommand(t *testing.T) {
	s, out, _ := testSession(t)
	if err := s.analyze(testQuery); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tuples-out") {
		t.Errorf("analyze output: %s", out.String())
	}
	if err := s.analyze("((("); err == nil {
		t.Error("bad query accepted")
	}
}
