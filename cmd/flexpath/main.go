// Command flexpath runs flexible top-K queries over an XML document from
// the command line.
//
// Usage:
//
//	flexpath -doc data.xml -query '//item[./description/parlist]' -k 10
//	flexpath -doc data.xml -query '...' -algo dpo -scheme combined -metrics
//	flexpath -doc data.xml -query '...' -explain      # relaxation chain
//	flexpath -doc data.xml -query '...' -plan         # evaluation plan
//	flexpath -doc data.xml -query '...' -json         # machine-readable
//	flexpath -doc data.xml -i                         # interactive shell
//
// -doc accepts XML files and binary snapshots produced by xmarkgen
// -snapshot or Document.SaveSnapshot (detected by magic).
//
// -save-fxp3 PATH converts the loaded document into an FXP3 snapshot —
// the mmap-friendly layout flexserve can serve cold — and exits:
//
//	flexpath -doc data.xml -save-fxp3 data.fxp3
//
// The interactive shell accepts a query per line plus commands:
//
//	\k N           set top-K
//	\algo NAME     auto | dpo | sso | hybrid | datarelax
//	\scheme NAME   structure-first | keyword-first | combined
//	\explain Q     print the relaxation chain of Q
//	\plan Q        print the evaluation plan of Q
//	\q             quit
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"flexpath"
)

type session struct {
	doc     *flexpath.Document
	k       int
	algo    flexpath.Algorithm
	scheme  flexpath.Scheme
	snippet int
	why     bool
	jsonOut bool
	metrics bool
	out     io.Writer
	errOut  io.Writer
}

func main() {
	docPath := flag.String("doc", "", "XML document to query (required)")
	queryStr := flag.String("query", "", "tree pattern query")
	k := flag.Int("k", 10, "number of answers")
	algoStr := flag.String("algo", "auto", "algorithm: auto (cost-based), dpo, sso, hybrid, or datarelax")
	schemeStr := flag.String("scheme", "structure-first", "ranking scheme: structure-first, keyword-first, combined")
	explain := flag.Bool("explain", false, "print the relaxation chain instead of searching")
	plan := flag.Bool("plan", false, "print the evaluation plan instead of searching")
	analyze := flag.Bool("analyze", false, "execute the plan and print a per-step trace")
	metrics := flag.Bool("metrics", false, "print evaluation work counters")
	snippet := flag.Int("snippet", 0, "print up to N characters of each answer's text")
	jsonOut := flag.Bool("json", false, "emit answers as JSON")
	why := flag.Bool("why", false, "explain which relaxations each answer needed")
	minimize := flag.Bool("minimize", false, "print the minimal equivalent query and exit (no document needed)")
	saveFXP3 := flag.String("save-fxp3", "", "write the loaded document as an FXP3 snapshot to this path and exit")
	interactive := flag.Bool("i", false, "interactive query shell")
	flag.Parse()

	if *minimize {
		if *queryStr == "" {
			flag.Usage()
			os.Exit(2)
		}
		q, err := flexpath.ParseQuery(*queryStr)
		dieIf(err)
		m, err := q.Minimize()
		dieIf(err)
		fmt.Println(m)
		return
	}

	if *docPath == "" || (*queryStr == "" && !*interactive && *saveFXP3 == "") {
		flag.Usage()
		os.Exit(2)
	}
	algo, err := flexpath.ParseAlgorithm(*algoStr)
	dieIf(err)
	scheme, err := flexpath.ParseScheme(*schemeStr)
	dieIf(err)

	start := time.Now()
	doc, err := flexpath.LoadAuto(*docPath)
	dieIf(err)
	fmt.Fprintf(os.Stderr, "loaded %d elements in %v\n", doc.Nodes(), time.Since(start).Round(time.Millisecond))

	if *saveFXP3 != "" {
		start = time.Now()
		dieIf(doc.SaveFXP3SnapshotFile(*saveFXP3))
		fi, err := os.Stat(*saveFXP3)
		dieIf(err)
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes) in %v\n", *saveFXP3, fi.Size(), time.Since(start).Round(time.Millisecond))
		if *queryStr == "" && !*interactive {
			return
		}
	}

	s := &session{
		doc: doc, k: *k, algo: algo, scheme: scheme,
		snippet: *snippet, why: *why, jsonOut: *jsonOut, metrics: *metrics,
		out: os.Stdout, errOut: os.Stderr,
	}

	if *interactive {
		s.repl(os.Stdin)
		return
	}

	switch {
	case *analyze:
		dieIf(s.analyze(*queryStr))
	case *plan:
		dieIf(s.plan(*queryStr))
	case *explain:
		dieIf(s.explain(*queryStr))
	default:
		dieIf(s.search(*queryStr))
	}
}

func (s *session) search(src string) error {
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		return err
	}
	var m flexpath.Metrics
	opts := flexpath.SearchOptions{
		K: s.k, Algorithm: s.algo, Scheme: s.scheme, Metrics: &m,
	}
	start := time.Now()
	answers, err := s.doc.Search(q, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if s.jsonOut {
		return s.printJSON(answers, elapsed, m)
	}
	for i, a := range answers {
		fmt.Fprintf(s.out, "%3d. %-40s ss=%.3f ks=%.3f relax=%d", i+1, a.Path, a.Structural, a.Keyword, a.Relaxations)
		if a.ID != "" {
			fmt.Fprintf(s.out, " id=%s", a.ID)
		}
		fmt.Fprintln(s.out)
		if s.why {
			for _, why := range a.Relaxed {
				fmt.Fprintf(s.out, "     relaxed: %s\n", why)
			}
		}
		if s.snippet > 0 {
			fmt.Fprintf(s.out, "     %s\n", a.Snippet(s.snippet))
		}
	}
	algoName := s.algo.String()
	if s.algo == flexpath.Auto && m.Algorithm != "" {
		algoName = "auto→" + m.Algorithm
	}
	fmt.Fprintf(s.errOut, "%d answers in %v (%s, %s)\n", len(answers), elapsed.Round(time.Microsecond), algoName, s.scheme)
	if s.metrics {
		fmt.Fprintf(s.errOut, "metrics: %+v\n", m)
	}
	return nil
}

// jsonAnswer is the machine-readable answer shape.
type jsonAnswer struct {
	Rank        int      `json:"rank"`
	Path        string   `json:"path"`
	ID          string   `json:"id,omitempty"`
	Structural  float64  `json:"structural"`
	Keyword     float64  `json:"keyword"`
	Relaxations int      `json:"relaxations"`
	Relaxed     []string `json:"relaxed,omitempty"`
	Snippet     string   `json:"snippet,omitempty"`
}

type jsonResult struct {
	Answers   []jsonAnswer      `json:"answers"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Algorithm string            `json:"algorithm"`
	Scheme    string            `json:"scheme"`
	Metrics   *flexpath.Metrics `json:"metrics,omitempty"`
}

func (s *session) printJSON(answers []flexpath.Answer, elapsed time.Duration, m flexpath.Metrics) error {
	res := jsonResult{
		ElapsedMS: float64(elapsed) / 1e6,
		Algorithm: s.algo.String(),
		Scheme:    s.scheme.String(),
	}
	if s.algo == flexpath.Auto && m.Algorithm != "" {
		// Name the algorithm the planner actually dispatched to.
		res.Algorithm = m.Algorithm
	}
	if s.metrics {
		res.Metrics = &m
	}
	for i, a := range answers {
		ja := jsonAnswer{
			Rank: i + 1, Path: a.Path, ID: a.ID,
			Structural: a.Structural, Keyword: a.Keyword,
			Relaxations: a.Relaxations, Relaxed: a.Relaxed,
		}
		if s.snippet > 0 {
			ja.Snippet = a.Snippet(s.snippet)
		}
		res.Answers = append(res.Answers, ja)
	}
	enc := json.NewEncoder(s.out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func (s *session) explain(src string) error {
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		return err
	}
	steps, err := s.doc.Relaxations(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "relaxation chain for %s\n", q)
	for _, st := range steps {
		fmt.Fprintf(s.out, "%3d. %-50s penalty=%.4f score=%.4f\n", st.Level, st.Description, st.Penalty, st.Score)
		fmt.Fprintf(s.out, "     %s\n", st.Query)
	}
	return nil
}

func (s *session) plan(src string) error {
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		return err
	}
	out, err := s.doc.ExplainPlan(q, flexpath.SearchOptions{K: s.k, Algorithm: s.algo, Scheme: s.scheme})
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, out)
	return nil
}

func (s *session) analyze(src string) error {
	q, err := flexpath.ParseQuery(src)
	if err != nil {
		return err
	}
	out, err := s.doc.AnalyzePlan(q, flexpath.SearchOptions{K: s.k, Scheme: s.scheme})
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, out)
	return nil
}

// repl runs the interactive shell, reading one query or \command per
// line.
func (s *session) repl(in io.Reader) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintf(s.errOut, "flexpath shell — enter a query, \\h for help\n")
	prompt := func() { fmt.Fprintf(s.errOut, "flexpath[k=%d %s %s]> ", s.k, s.algo, s.scheme) }
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`, line == `\quit`:
			return
		case line == `\h`, line == `\help`:
			fmt.Fprintln(s.out, `commands: \k N, \algo NAME, \scheme NAME, \explain Q, \plan Q, \metrics, \json, \q`)
		case line == `\metrics`:
			s.metrics = !s.metrics
			fmt.Fprintf(s.errOut, "metrics %v\n", s.metrics)
		case line == `\json`:
			s.jsonOut = !s.jsonOut
			fmt.Fprintf(s.errOut, "json %v\n", s.jsonOut)
		case strings.HasPrefix(line, `\k `):
			if n, err := strconv.Atoi(strings.TrimSpace(line[3:])); err == nil && n > 0 {
				s.k = n
			} else {
				fmt.Fprintln(s.errOut, "usage: \\k N")
			}
		case strings.HasPrefix(line, `\algo `):
			if a, err := flexpath.ParseAlgorithm(strings.TrimSpace(line[6:])); err == nil {
				s.algo = a
			} else {
				fmt.Fprintln(s.errOut, err)
			}
		case strings.HasPrefix(line, `\scheme `):
			if sc2, err := flexpath.ParseScheme(strings.TrimSpace(line[8:])); err == nil {
				s.scheme = sc2
			} else {
				fmt.Fprintln(s.errOut, err)
			}
		case strings.HasPrefix(line, `\explain `):
			if err := s.explain(strings.TrimSpace(line[9:])); err != nil {
				fmt.Fprintln(s.errOut, err)
			}
		case strings.HasPrefix(line, `\plan `):
			if err := s.plan(strings.TrimSpace(line[6:])); err != nil {
				fmt.Fprintln(s.errOut, err)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Fprintf(s.errOut, "unknown command %s (\\h for help)\n", line)
		default:
			if err := s.search(line); err != nil {
				fmt.Fprintln(s.errOut, err)
			}
		}
		prompt()
	}
}

func dieIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexpath:", err)
		os.Exit(1)
	}
}
