// Command xmarkgen generates XMark-style auction XML documents, the
// dataset of the FleXPath paper's experiments.
//
// Usage:
//
//	xmarkgen -size 10MB -seed 42 -o auction.xml
//
// Sizes accept B/KB/MB/GB suffixes (powers of two).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flexpath"
	"flexpath/internal/xmark"
)

func main() {
	size := flag.String("size", "1MB", "approximate document size (e.g. 512KB, 10MB)")
	seed := flag.Int64("seed", 42, "generator seed; equal seeds give identical documents")
	out := flag.String("o", "", "output file (default stdout)")
	snapshot := flag.Bool("snapshot", false, "emit a binary document snapshot instead of XML (loads much faster)")
	indexed := flag.Bool("indexed", false, "emit an indexed snapshot (tree + inverted index + statistics; fastest loads)")
	flag.Parse()

	bytes, err := parseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	cfg := xmark.Config{TargetBytes: bytes, Seed: *seed}
	if *indexed {
		tree, err := xmark.Build(cfg)
		if err == nil {
			err = flexpath.NewDocument(tree).SaveIndexedSnapshot(w)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		return
	}
	if *snapshot {
		tree, err := xmark.Build(cfg)
		if err == nil {
			err = tree.WriteBinary(w)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := xmark.Generate(w, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, s[:len(s)-2]
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, s[:len(s)-2]
	case strings.HasSuffix(s, "B"):
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return int64(n * float64(mult)), nil
}
