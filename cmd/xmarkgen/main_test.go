package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"1MB", 1 << 20, true},
		{"10MB", 10 << 20, true},
		{"512KB", 512 << 10, true},
		{"1GB", 1 << 30, true},
		{"2048B", 2048, true},
		{"4096", 4096, true},
		{"1.5MB", 1 << 20 * 3 / 2, true},
		{" 2 MB ", 2 << 20, true},
		{"10mb", 10 << 20, true},
		{"", 0, false},
		{"abc", 0, false},
		{"-3MB", 0, false},
		{"0", 0, false},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseSize(%q) succeeded with %d", c.in, got)
		}
	}
}
