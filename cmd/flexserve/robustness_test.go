package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"flexpath"
	"flexpath/internal/obs"
)

func testColl(t *testing.T) *flexpath.Collection {
	t.Helper()
	doc, err := flexpath.LoadString(serveXML)
	if err != nil {
		t.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("lib.xml", doc); err != nil {
		t.Fatal(err)
	}
	return coll
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	b := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(buf.String())
}

const adminXML = `<lib>
  <book id="b3"><chapter><para>xml streaming additions</para></chapter></book>
</lib>`

// A request beyond the max-in-flight limit is shed immediately with
// 503 + Retry-After — never queued, never a hang — and the shed shows up
// in the flexpath_server_* metric families.
func TestShedBeyondMaxInFlight(t *testing.T) {
	hh, _ := newHandlerConfig(testColl(t), handlerConfig{maxInFlight: 1})
	h := hh.(*handler)
	srv := httptest.NewServer(hh)
	defer srv.Close()

	// Deterministically occupy the only admission slot.
	h.sem <- struct{}{}
	resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 response missing Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("shed body: %s", body)
	}
	// Operational endpoints bypass the limiter even while saturated.
	for _, path := range []string{"/healthz", "/metrics", "/stats"} {
		if resp, _ := get(t, srv.URL+path); resp.StatusCode != http.StatusOK {
			t.Errorf("%s under saturation: status %d, want 200", path, resp.StatusCode)
		}
	}
	<-h.sem

	// With the slot free the same request succeeds.
	if resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed search: status %d: %s", resp.StatusCode, body)
	}
	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		"flexpath_server_shed_total 1",
		"flexpath_server_inflight_requests 0",
		"flexpath_server_max_inflight 1",
		"flexpath_server_panics_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// A panicking handler becomes a 500 and a counter increment; the server
// keeps serving.
func TestPanicRecovery(t *testing.T) {
	hh, _ := newHandlerConfig(testColl(t), handlerConfig{})
	h := hh.(*handler)
	h.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(hh)
	defer srv.Close()

	resp, body := get(t, srv.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("panic body: %s", body)
	}
	if resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5"); resp.StatusCode != http.StatusOK {
		t.Fatalf("search after panic: status %d: %s", resp.StatusCode, body)
	}
	_, body = get(t, srv.URL+"/metrics")
	if !strings.Contains(string(body), "flexpath_server_panics_total 1") {
		t.Error("panic counter not exported")
	}
}

// The /admin/ endpoints mutate the corpus without a restart.
func TestAdminEndpoints(t *testing.T) {
	hh, _ := newHandlerConfig(testColl(t), handlerConfig{admin: true})
	srv := httptest.NewServer(hh)
	defer srv.Close()

	// Method and parameter validation.
	if resp, _ := get(t, srv.URL+"/admin/add?name=x"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/add: status %d, want 405", resp.StatusCode)
	}
	if resp, _ := post(t, srv.URL+"/admin/add", adminXML); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("add without name: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, srv.URL+"/admin/add?name=bad.xml", "<oops"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("add with bad XML: status %d, want 400", resp.StatusCode)
	}

	// Add a second document and search it.
	resp, body := post(t, srv.URL+"/admin/add?name=extra.xml", adminXML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: status %d: %s", resp.StatusCode, body)
	}
	var ar adminResponse
	if err := json.Unmarshal(body, &ar); err != nil || ar.Documents != 2 {
		t.Fatalf("add response: %s", body)
	}
	resp, body = get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %s", resp.StatusCode, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range sr.Answers {
		seen[a.Doc] = true
	}
	if !seen["extra.xml"] {
		t.Errorf("added document contributes no answers: %s", body)
	}

	// Duplicate adds conflict.
	if resp, _ := post(t, srv.URL+"/admin/add?name=extra.xml", adminXML); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate add: status %d, want 409", resp.StatusCode)
	}

	// Replace swaps content in place.
	repl := `<lib><book id="b9"><chapter><para>xml streaming rewrite</para></chapter></book></lib>`
	if resp, body := post(t, srv.URL+"/admin/replace?name=extra.xml", repl); resp.StatusCode != http.StatusOK {
		t.Fatalf("replace: status %d: %s", resp.StatusCode, body)
	}
	resp, body = get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("search after replace failed")
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for _, a := range sr.Answers {
		if a.Doc == "extra.xml" && a.ID == "b3" {
			t.Errorf("stale answer from replaced document: %+v", a)
		}
	}
	if resp, _ := post(t, srv.URL+"/admin/replace?name=ghost.xml", repl); resp.StatusCode != http.StatusNotFound {
		t.Errorf("replace missing: status %d, want 404", resp.StatusCode)
	}

	// Remove returns the corpus to one document.
	if resp, body := post(t, srv.URL+"/admin/remove?name=extra.xml", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := post(t, srv.URL+"/admin/remove?name=extra.xml", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double remove: status %d, want 404", resp.StatusCode)
	}
	var st statsResponse
	_, body = get(t, srv.URL+"/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Documents != 1 {
		t.Errorf("documents = %d after remove, want 1", st.Documents)
	}
}

// Without -admin the mutation endpoints do not exist.
func TestAdminGating(t *testing.T) {
	srv := httptest.NewServer(newHandler(testColl(t)))
	defer srv.Close()
	for _, path := range []string{"/admin/add?name=x", "/admin/remove?name=x", "/admin/replace?name=x"} {
		if resp, _ := post(t, srv.URL+path, adminXML); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without -admin: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// End-to-end: concurrent searches while the corpus is mutated over HTTP.
// Run under -race, this is the serving-path proof that live mutation is
// safe: every search must return 200 with a coherent body.
func TestAdminMutateWhileSearching(t *testing.T) {
	coll := testColl(t)
	coll.SetCache(64)
	coll.SetDocumentCaches(16)
	hh, _ := newHandlerConfig(coll, handlerConfig{admin: true})
	srv := httptest.NewServer(hh)
	defer srv.Close()

	searchURL := srv.URL + "/search?q=" + escape(serveQuery) + "&k=5"
	var wg sync.WaitGroup
	errc := make(chan error, 128)
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(searchURL)
				if err != nil {
					errc <- err
					return
				}
				var sr searchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("bad search body: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("search status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			name := fmt.Sprintf("mut%d.xml", m)
			for i := 0; i < 20; i++ {
				resp, err := http.Post(srv.URL+"/admin/add?name="+name, "application/xml", strings.NewReader(adminXML))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("add status %d", resp.StatusCode)
					return
				}
				resp, err = http.Post(srv.URL+"/admin/remove?name="+name, "application/xml", nil)
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("remove status %d", resp.StatusCode)
					return
				}
			}
		}(m)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5"); resp.StatusCode != http.StatusOK {
		t.Errorf("search after mutation storm: status %d: %s", resp.StatusCode, body)
	}
}
