package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"flexpath"
	"flexpath/internal/obs"
)

const serveXML = `<lib>
  <book id="b1"><chapter><para>xml streaming engines</para></chapter></book>
  <book id="b2"><chapter><title>xml streaming</title><para>x</para></chapter></book>
</lib>`

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	doc, err := flexpath.LoadString(serveXML)
	if err != nil {
		t.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("lib.xml", doc); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(coll))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	b := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(buf.String())
}

const serveQuery = `//book[./chapter/para[.contains("xml" and "streaming")]]`

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5&why=1&snippet=40")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out searchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out.Answers) != 2 {
		t.Fatalf("answers = %d, want 2", len(out.Answers))
	}
	if out.Answers[0].ID != "b1" || out.Answers[0].Relaxations != 0 {
		t.Errorf("top answer: %+v", out.Answers[0])
	}
	if out.Answers[1].Relaxations == 0 || len(out.Answers[1].Relaxed) == 0 {
		t.Errorf("second answer should be relaxed with explanations: %+v", out.Answers[1])
	}
	if out.Answers[0].Snippet == "" {
		t.Error("snippet missing")
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		"/search",                                       // missing q
		"/search?q=" + escape("((("),                    // bad query
		"/search?q=" + escape("//book") + "&k=0",        // bad k
		"/search?q=" + escape("//book") + "&k=1001",     // k above clamp
		"/search?q=" + escape("//book") + "&k=abc",      // non-numeric k
		"/search?q=" + escape("//book") + "&k=-3",       // negative k
		"/search?q=" + escape("//book") + "&algo=bogus", // bad algo
		"/search?q=" + escape("//book") + "&scheme=huh", // bad scheme
		"/relaxations",                                  // missing q
	}
	for _, path := range cases {
		resp, _ := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// k at the clamp boundary is valid.
	resp, body := get(t, srv.URL+"/search?q="+escape("//book")+"&k=1000")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("k=1000: status %d, want 200: %s", resp.StatusCode, body)
	}
}

func TestStatsCacheCounters(t *testing.T) {
	doc, err := flexpath.LoadString(serveXML)
	if err != nil {
		t.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("lib.xml", doc); err != nil {
		t.Fatal(err)
	}
	coll.SetCache(16)
	coll.SetDocumentCaches(16)
	srv := httptest.NewServer(newHandler(coll))
	defer srv.Close()

	url := srv.URL + "/search?q=" + escape(serveQuery) + "&k=5"
	for i := 0; i < 2; i++ {
		if resp, body := get(t, url); resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := get(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if st.Cache == nil {
		t.Fatalf("stats missing cache counters: %s", body)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss", *st.Cache)
	}
	if st.DocCache == nil {
		t.Errorf("stats missing doc_cache counters: %s", body)
	}
}

func TestSearchTimeoutReturns504(t *testing.T) {
	// A 1ns budget expires before evaluation starts, so the handler's
	// deadline branch is deterministic regardless of machine speed.
	doc, err := flexpath.LoadString(serveXML)
	if err != nil {
		t.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("lib.xml", doc); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandlerTimeout(coll, time.Nanosecond))
	defer srv.Close()
	resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("timeout body: %s", body)
	}
}

func TestRelaxationsAndPlanTimeoutReturns504(t *testing.T) {
	// Regression: /relaxations and /plan used to ignore both the
	// request context and -timeout, holding a worker goroutine for as
	// long as a pathological document's chain build took.
	doc, err := flexpath.LoadString(serveXML)
	if err != nil {
		t.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("lib.xml", doc); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandlerTimeout(coll, time.Nanosecond))
	defer srv.Close()
	for _, path := range []string{"/relaxations", "/plan"} {
		resp, body := get(t, srv.URL+path+"?q="+escape(serveQuery))
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("%s: status %d, want 504: %s", path, resp.StatusCode, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s timeout body: %s", path, body)
		}
	}
}

func TestRelaxationsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/relaxations?q="+escape(serveQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out relaxationsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) != 1 || len(out.Docs[0].Steps) == 0 {
		t.Errorf("relaxations: %+v", out)
	}
}

func TestPlanAndStatsEndpoints(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/plan?q="+escape(serveQuery))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "plan:") {
		t.Errorf("plan endpoint: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Documents != 1 || st.Elements == 0 {
		t.Errorf("stats: %+v", st)
	}
	resp, _ = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Error("healthz failed")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	doc, err := flexpath.LoadString(serveXML)
	if err != nil {
		t.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("lib.xml", doc); err != nil {
		t.Fatal(err)
	}
	coll.SetCache(16)
	coll.SetDocumentCaches(16)
	srv := httptest.NewServer(newHandler(coll))
	defer srv.Close()

	// Two identical searches: one miss, one collection-cache hit. The
	// algorithm is pinned so the expected metric labels are stable (the
	// default Auto mode labels spans "Auto" and chooses per query).
	url := srv.URL + "/search?q=" + escape(serveQuery) + "&k=5&algo=hybrid"
	for i := 0; i < 2; i++ {
		if resp, body := get(t, url); resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		`flexpath_queries_total{algo="Hybrid",scheme="structure-first",status="ok"} 2`,
		"flexpath_inflight_queries 0",
		`flexpath_query_duration_seconds_count{algo="Hybrid"} 2`,
		"flexpath_stage_duration_seconds_bucket",
		`flexpath_cache_hits_total{cache="collection"} 1`,
		`flexpath_cache_misses_total{cache="collection"} 1`,
		"flexpath_documents 1",
		"flexpath_elements",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	srv := testServer(t)
	if resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5&algo=hybrid"); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %s", resp.StatusCode, body)
	}
	resp, body := get(t, srv.URL+"/slowlog?n=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slowlog status %d", resp.StatusCode)
	}
	var out slowlogResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out.Entries) != 1 {
		t.Fatalf("entries = %d, want 1: %s", len(out.Entries), body)
	}
	e := out.Entries[0]
	if e.Query == "" || e.Algo != "Hybrid" || e.Status != "ok" || e.K != 5 {
		t.Errorf("slowlog entry: %+v", e)
	}
	if e.TotalMS <= 0 {
		t.Errorf("total_ms = %v, want > 0", e.TotalMS)
	}
	for _, stage := range obs.StageNames() {
		if _, ok := e.StagesMS[stage]; !ok {
			t.Errorf("stages_ms missing %q: %+v", stage, e.StagesMS)
		}
	}
	if len(out.Latency) != 1 || out.Latency[0].Count != 1 || out.Latency[0].P50MS <= 0 {
		t.Errorf("latency summary: %+v", out.Latency)
	}
}

func TestPprofGating(t *testing.T) {
	doc, err := flexpath.LoadString(serveXML)
	if err != nil {
		t.Fatal(err)
	}
	coll := flexpath.NewCollection()
	if err := coll.Add("lib.xml", doc); err != nil {
		t.Fatal(err)
	}
	off, _ := newHandlerConfig(coll, handlerConfig{})
	on, _ := newHandlerConfig(coll, handlerConfig{pprof: true})
	srvOff := httptest.NewServer(off)
	defer srvOff.Close()
	srvOn := httptest.NewServer(on)
	defer srvOn.Close()

	if resp, _ := get(t, srvOff.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, srvOn.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}

func escape(s string) string {
	r := strings.NewReplacer(
		" ", "%20", `"`, "%22", "[", "%5B", "]", "%5D", "/", "%2F", "<", "%3C", ">", "%3E", "#", "%23", "&", "%26", "+", "%2B",
	)
	return r.Replace(s)
}

// TestPlannerObservability: a default (Auto) search must surface the
// planner's choice in the response, in /stats, and in /metrics.
func TestPlannerObservability(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out searchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	switch out.Algo {
	case "DPO", "SSO", "Hybrid":
	default:
		t.Errorf("search response algo = %q", out.Algo)
	}
	if out.AlgoReason == "" {
		t.Error("search response has no algo_reason")
	}

	resp, body = get(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %s", resp.StatusCode, body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad stats JSON: %v\n%s", err, body)
	}
	if st.Planner.Observations == 0 {
		t.Errorf("planner stats not populated: %+v", st.Planner)
	}
	if st.Planner.Choices[out.Algo] == 0 {
		t.Errorf("planner choices missing %q: %+v", out.Algo, st.Planner.Choices)
	}

	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`flexpath_planner_choices_total{algo="` + out.Algo + `"} 1`,
		`flexpath_planner_observations_total 1`,
		`flexpath_planner_restart_rate`,
		`flexpath_planner_ns_per_unit{algo="` + out.Algo + `"}`,
		`flexpath_planner_calibration_error{algo="` + out.Algo + `"}`,
		`flexpath_queries_total{algo="Auto",scheme="structure-first",status="ok"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

// The offset parameter pages the merged ranking over HTTP with the same
// identity the library guarantees: page(offset=o, k=k) equals the window
// [o:o+k] of the unpaged ranking, with ranks renumbered from 1 within
// the page.
func TestSearchOffsetPagination(t *testing.T) {
	srv := testServer(t)
	// Unpaged reference ranking: a query loose enough to admit several
	// relaxed answers.
	q := escape(`//book[./chapter/para[.contains("xml")]]`)
	_, fullBody := get(t, srv.URL+"/search?q="+q+"&k=10")
	var full searchResponse
	if err := json.Unmarshal(fullBody, &full); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, fullBody)
	}
	if len(full.Answers) < 2 {
		t.Fatalf("need at least 2 answers to observe paging, got %d", len(full.Answers))
	}
	for offset := 0; offset <= len(full.Answers); offset++ {
		resp, body := get(t, srv.URL+"/search?q="+q+"&k=1&offset="+strconv.Itoa(offset))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("offset=%d: status %d: %s", offset, resp.StatusCode, body)
		}
		var page searchResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatalf("offset=%d: bad JSON: %v", offset, err)
		}
		if offset >= len(full.Answers) {
			if len(page.Answers) != 0 {
				t.Errorf("offset=%d past the end: got %d answers", offset, len(page.Answers))
			}
			continue
		}
		if len(page.Answers) != 1 {
			t.Fatalf("offset=%d: got %d answers, want 1", offset, len(page.Answers))
		}
		got, want := page.Answers[0], full.Answers[offset]
		if got.Rank != 1 {
			t.Errorf("offset=%d: rank %d, want 1 (ranks renumber within the page)", offset, got.Rank)
		}
		if got.Doc != want.Doc || got.Path != want.Path || got.ID != want.ID ||
			got.Structural != want.Structural || got.Keyword != want.Keyword {
			t.Errorf("offset=%d: page answer %+v != unpaged rank %d %+v", offset, got, offset+1, want)
		}
	}
	// Out-of-range offsets are rejected, not clamped.
	for _, bad := range []string{"-1", "10001", "x"} {
		resp, _ := get(t, srv.URL+"/search?q="+q+"&k=1&offset="+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("offset=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRelaxationsWeightsForwarded: /relaxations must honor the same
// ws/wc parameters /search does, so the penalties it reports match the
// scores a weighted search ranks by.
func TestRelaxationsWeightsForwarded(t *testing.T) {
	srv := testServer(t)
	fetch := func(params string) relaxationsResponse {
		t.Helper()
		resp, body := get(t, srv.URL+"/relaxations?q="+escape(serveQuery)+params)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out relaxationsResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Docs) != 1 || len(out.Docs[0].Steps) == 0 {
			t.Fatalf("relaxations: %+v", out)
		}
		return out
	}
	uniform := fetch("")
	weighted := fetch("&ws=2&wc=2")
	if len(uniform.Docs[0].Steps) != len(weighted.Docs[0].Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(uniform.Docs[0].Steps), len(weighted.Docs[0].Steps))
	}
	for i, u := range uniform.Docs[0].Steps {
		w := weighted.Docs[0].Steps[i]
		if w.Penalty != 2*u.Penalty {
			t.Errorf("step %d: weighted penalty = %g, want %g", i+1, w.Penalty, 2*u.Penalty)
		}
	}
}

// TestBadWeightParams: malformed or non-positive ws/wc are a 400 on
// every endpoint that accepts them.
func TestBadWeightParams(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{
		"/search?q=" + escape("//book") + "&ws=0",
		"/search?q=" + escape("//book") + "&wc=-1",
		"/search?q=" + escape("//book") + "&ws=abc",
		"/relaxations?q=" + escape("//book") + "&wc=0",
		"/plan?q=" + escape("//book") + "&ws=-2",
	} {
		resp, _ := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
	// Valid weights work end to end.
	resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5&ws=2&wc=3")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("weighted search: status %d: %s", resp.StatusCode, body)
	}
}

// TestPlanCacheObservability: the plan-template cache must surface in
// /stats (plan_cache block) and /metrics (flexpath_plancache_*), and a
// repeated query shape under a different algorithm must register as a
// template hit.
func TestPlanCacheObservability(t *testing.T) {
	srv := testServer(t)
	for _, params := range []string{"&algo=hybrid", "&algo=sso"} {
		if resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=5"+params); resp.StatusCode != http.StatusOK {
			t.Fatalf("search%s: status %d: %s", params, resp.StatusCode, body)
		}
	}
	resp, body := get(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if st.PlanCache == nil {
		t.Fatalf("stats missing plan_cache block: %s", body)
	}
	// Two searches of one shape: one template build, one hit.
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 1 {
		t.Errorf("plan cache counters = %+v, want 1 miss / 1 hit", *st.PlanCache)
	}
	if st.PlanCache.Entries != 1 || st.PlanCache.Capacity <= 0 {
		t.Errorf("plan cache size = %d/%d, want 1 entry and positive capacity", st.PlanCache.Entries, st.PlanCache.Capacity)
	}

	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"flexpath_plancache_hits_total 1",
		"flexpath_plancache_misses_total 1",
		"flexpath_plancache_evictions_total 0",
		"flexpath_plancache_dedups_total 0",
		"flexpath_plancache_entries 1",
		"# TYPE flexpath_plancache_capacity gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
