package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"flexpath"
	"flexpath/internal/obs"
)

// residencyServer serves a collection of n cold FXP3 members under a
// residency cap of 1.
func residencyServer(t *testing.T, n int) (*httptest.Server, *flexpath.Collection) {
	t.Helper()
	dir := t.TempDir()
	coll := flexpath.NewCollection()
	t.Cleanup(func() { coll.Close() }) //nolint:errcheck
	for i := 0; i < n; i++ {
		xml := strings.ReplaceAll(serveXML, `id="b`, fmt.Sprintf(`id="d%d-b`, i))
		doc, err := flexpath.LoadString(xml)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("doc%d.fxp3", i))
		if err := doc.SaveFXP3SnapshotFile(path); err != nil {
			t.Fatal(err)
		}
		if err := coll.AddSnapshotFile(fmt.Sprintf("doc%d", i), path); err != nil {
			t.Fatal(err)
		}
	}
	coll.SetResidency(1)
	srv := httptest.NewServer(newHandler(coll))
	t.Cleanup(srv.Close)
	return srv, coll
}

func TestStatsAndMetricsReportResidency(t *testing.T) {
	srv, _ := residencyServer(t, 3)

	// Before any search: all members cold, and reading stats must not
	// fault them in.
	resp, body := get(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if st.Residency == nil {
		t.Fatalf("residency block missing: %s", body)
	}
	if st.Residency.Cold != 3 || st.Residency.Resident != 0 || st.Residency.Max != 1 {
		t.Fatalf("residency before search: %+v", st.Residency)
	}
	if st.Documents != 3 || len(st.PerDoc) != 3 {
		t.Fatalf("documents %d per_doc %v", st.Documents, st.PerDoc)
	}
	for name, n := range st.PerDoc {
		if n <= 0 {
			t.Fatalf("per_doc[%s] = %d (meta should supply cold node counts)", name, n)
		}
	}

	// A search faults documents in; the cap keeps at most one resident.
	if resp, body := get(t, srv.URL+"/search?q="+escape(serveQuery)+"&k=10&algo=hybrid"); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %s", resp.StatusCode, body)
	}
	_, body = get(t, srv.URL+"/stats")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Residency.Resident > 1 || st.Residency.Faults != 3 || st.Residency.Evictions < 2 {
		t.Fatalf("residency after search: %+v", st.Residency)
	}

	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"flexpath_resident_docs_max 1",
		"flexpath_resident_docs_pinned 0",
		"flexpath_resident_faults_total 3",
		"flexpath_documents 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Gauges whose value moves with the working set are present even
	// when we can't pin the exact number.
	for _, want := range []string{"flexpath_resident_docs ", "flexpath_resident_docs_cold ", "flexpath_resident_evictions_total "} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing family %q", want)
		}
	}
}

// An all-pinned collection (no snapshot members, no cap) reports no
// residency block: the field is for mmap-backed serving only.
func TestStatsOmitResidencyWhenUnused(t *testing.T) {
	srv := testServer(t)
	_, body := get(t, srv.URL+"/stats")
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Residency != nil {
		t.Fatalf("residency reported for an in-memory corpus: %+v", st.Residency)
	}
	_, body = get(t, srv.URL+"/metrics")
	if !strings.Contains(string(body), "flexpath_resident_docs") {
		t.Error("resident metric families should always be exported")
	}
}

func TestSearchServesColdCorpusIdentically(t *testing.T) {
	srv, coll := residencyServer(t, 3)
	url := srv.URL + "/search?q=" + escape(serveQuery) + "&k=10&algo=hybrid&nocache=1"
	// The response is byte-identical across passes except for the
	// timing field.
	stripTiming := func(body []byte) string {
		var lines []string
		for _, l := range strings.Split(string(body), "\n") {
			if !strings.Contains(l, `"elapsed_ms"`) {
				lines = append(lines, l)
			}
		}
		return strings.Join(lines, "\n")
	}
	_, first := get(t, url)
	want := stripTiming(first)
	// Re-searching after evictions (the cap is 1, so every pass evicts)
	// returns identical rankings.
	for i := 0; i < 3; i++ {
		if _, body := get(t, url); stripTiming(body) != want {
			t.Fatalf("response drifted on pass %d:\n%s\nvs\n%s", i, stripTiming(body), want)
		}
	}
	if s := coll.ResidencyStats(); s.Evictions == 0 {
		t.Fatalf("cap never exercised: %+v", s)
	}
}
