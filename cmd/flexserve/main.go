// Command flexserve serves flexible top-K search over one or more XML
// documents as a JSON HTTP API, with Prometheus-style observability.
//
// Usage:
//
//	flexserve -addr :8080 data1.xml data2.xml
//	flexserve -addr :8080 -dir corpus/
//	flexserve -cache 4096 -timeout 10s -slowlog 256 -slowms 100 data.xml
//	flexserve -pprof data.xml   # also expose /debug/pprof/
//
// Endpoints:
//
//	GET /search?q=QUERY&k=10&algo=hybrid&scheme=structure-first&why=1
//	GET /relaxations?q=QUERY
//	GET /plan?q=QUERY&k=10
//	GET /stats
//	GET /metrics       Prometheus text format: query counters by
//	                   algorithm/scheme/status, latency and per-stage
//	                   histograms, cache counters, in-flight gauge
//	GET /slowlog?n=32  slowest recent queries with per-stage timings
//	GET /healthz
//
// Documents may be XML files or binary snapshots (detected by magic).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"flexpath"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "load every .xml file in this directory")
	cache := flag.Int("cache", 1024, "query-result cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request search timeout (0 disables)")
	slowCap := flag.Int("slowlog", 128, "slow-query log capacity in entries")
	slowMS := flag.Int("slowms", 0, "only log queries at least this many milliseconds long (0 logs all)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	coll := flexpath.NewCollection()
	if *dir != "" {
		c, err := flexpath.LoadCollectionDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		coll = c
	}
	for _, path := range flag.Args() {
		doc, err := flexpath.LoadAuto(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := coll.Add(path, doc); err != nil {
			log.Fatal(err)
		}
	}
	if coll.Len() == 0 {
		fmt.Fprintln(os.Stderr, "flexserve: no documents given")
		flag.Usage()
		os.Exit(2)
	}
	if *cache > 0 {
		// The collection cache serves repeated identical requests; the
		// per-document caches additionally let distinct collection
		// requests share per-document work after membership changes.
		coll.SetCache(*cache)
		coll.SetDocumentCaches(*cache)
	}
	h, _ := newHandlerConfig(coll, handlerConfig{
		timeout:       *timeout,
		slowCap:       *slowCap,
		slowThreshold: time.Duration(*slowMS) * time.Millisecond,
		pprof:         *pprofOn,
	})
	log.Printf("serving %d documents (%d elements) on %s (cache=%d, timeout=%v, slowlog=%d@%dms, pprof=%v)",
		coll.Len(), coll.Nodes(), *addr, *cache, *timeout, *slowCap, *slowMS, *pprofOn)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
