// Command flexserve serves flexible top-K search over one or more XML
// documents as a JSON HTTP API, with Prometheus-style observability,
// admission control and graceful shutdown.
//
// Usage:
//
//	flexserve -addr :8080 data1.xml data2.xml
//	flexserve -addr :8080 -dir corpus/
//	flexserve -cache 4096 -timeout 10s -slowlog 256 -slowms 100 data.xml
//	flexserve -maxinflight 64 -drain 15s data.xml   # shed overload, drain on SIGTERM
//	flexserve -admin data.xml                        # expose /admin/ mutation endpoints
//	flexserve -pprof data.xml                        # also expose /debug/pprof/
//	flexserve -shard -addr :9001                     # empty shard behind flexrouter
//	flexserve -wal /var/lib/flexpath data.xml        # durable corpus: WAL + checkpoints
//	flexserve -dir corpus/ -resident-docs 8          # mmap-backed FXP3 corpus, bounded residency
//
// Endpoints:
//
//	GET /search?q=QUERY&k=10&offset=0&algo=hybrid&scheme=structure-first&why=1
//	GET /relaxations?q=QUERY
//	GET /plan?q=QUERY&k=10
//	GET /stats
//	GET /metrics       Prometheus text format: query counters by
//	                   algorithm/scheme/status, latency and per-stage
//	                   histograms, cache counters, in-flight/shed/panic
//	                   server counters
//	GET /slowlog?n=32  slowest recent queries with per-stage timings
//	GET /healthz
//
// With -admin, the corpus can be mutated without a restart:
//
//	POST /admin/add?name=NAME       (XML document in the body)
//	POST /admin/remove?name=NAME
//	POST /admin/replace?name=NAME   (XML document in the body)
//	POST /admin/bulk                (NDJSON mutation batch in the body)
//
// With -wal DIR, every mutation is appended to a write-ahead log in DIR
// and fsync'd before the response is sent, periodic checkpoints persist
// the corpus as indexed snapshots so replay stays bounded, and on
// startup the acknowledged corpus is recovered from DIR (kill -9 safe).
// Bulk batches carry one JSON object per line —
//
//	{"op":"upsert","name":"doc.xml","doc":"<a>...</a>"}
//	{"op":"remove","name":"doc.xml"}
//
// with ops add, replace, upsert and remove (upsert and remove are
// retry-safe). At most -maxbulk batches execute concurrently; excess
// batches are rejected with 429 + Retry-After.
//
// Beyond -maxinflight concurrently executing queries, requests are shed
// with 503 + Retry-After instead of queued. On SIGINT/SIGTERM the server
// stops accepting connections, drains in-flight requests for up to
// -drain, and exits.
//
// Documents may be XML files or binary snapshots (detected by magic).
// FXP3 snapshots (.fxp3, written by flexpath -save-fxp3) are mmap'd and
// served cold: a document is decoded only when a search needs it, and
// -resident-docs bounds how many decoded documents stay hot — evicted
// documents fall back to their file-backed mapping, so a corpus much
// larger than RAM serves from whatever working set fits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"flexpath"
	"flexpath/internal/serveutil"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "load every .xml file in this directory")
	cache := flag.Int("cache", 1024, "query-result cache capacity in entries (0 disables)")
	planCache := flag.Int("plancache", flexpath.DefaultPlanCacheCapacity, "per-document plan-template cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request search timeout (0 disables)")
	slowCap := flag.Int("slowlog", 128, "slow-query log capacity in entries")
	slowMS := flag.Int("slowms", 0, "only log queries at least this many milliseconds long (0 logs all)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrently executing query requests; excess is shed with 503 (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	admin := flag.Bool("admin", false, "expose corpus mutation endpoints under /admin/")
	shard := flag.Bool("shard", false, "run as a shard behind flexrouter: allow starting with an empty corpus and expose the /admin/ mutation endpoints (the router places documents here)")
	walDir := flag.String("wal", "", "write-ahead log directory: mutations are logged and fsync'd before they are acknowledged, checkpoints bound replay time, and startup recovers the acknowledged corpus from this directory (implies -admin)")
	walSync := flag.Duration("walsync", 2*time.Millisecond, "WAL group-commit window: how long an acknowledgment may wait so concurrent mutations share one fsync (0 fsyncs every mutation)")
	ckptEvery := flag.Int("checkpoint-every", 1024, "mutations between automatic WAL checkpoints (negative disables)")
	maxBulk := flag.Int("maxbulk", 4, "max concurrently executing /admin/bulk requests; excess is rejected with 429 (0 = unlimited)")
	residentDocs := flag.Int("resident-docs", 0, "max FXP3 snapshot-backed documents decoded at once; least-recently-searched beyond the cap are evicted back to their mmap (0 = unlimited)")
	flag.Parse()

	// With a WAL, recovery runs before command-line corpus files are
	// seeded: acknowledged mutations (including removals of seeded
	// documents) always win over the seed files.
	var dur *flexpath.DurableCollection
	coll := flexpath.NewCollection()
	if *walDir != "" {
		if *ckptEvery == 0 {
			// Flag semantics differ from the library's: an explicit 0 here
			// reads as "never", not "default".
			*ckptEvery = -1
		}
		d, err := flexpath.OpenDurableCollection(*walDir, flexpath.DurableOptions{
			SyncWindow:      *walSync,
			CheckpointEvery: *ckptEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		dur = d
		coll = d.Collection()
		s := d.Stats()
		log.Printf("flexserve: wal recovery: %d documents (checkpoint lsn %d, %d records replayed, %d torn bytes truncated)",
			coll.Len(), s.CheckpointLSN, s.ReplayedRecords, s.TornBytesTruncated)
	}
	if *dir != "" {
		if dur != nil {
			paths, err := filepath.Glob(filepath.Join(*dir, "*.xml"))
			if err != nil {
				log.Fatal(err)
			}
			sort.Strings(paths)
			for _, path := range paths {
				seedFile(dur, path)
			}
		} else {
			// One pass over the directory: .xml files load eagerly (as
			// LoadCollectionDir would), .fxp3 snapshots join cold —
			// mapped and listed, decoded only when a search needs them.
			entries, err := os.ReadDir(*dir)
			if err != nil {
				log.Fatal(err)
			}
			loaded := 0
			for _, e := range entries {
				if e.IsDir() {
					continue
				}
				path := filepath.Join(*dir, e.Name())
				switch ext := filepath.Ext(e.Name()); {
				case strings.EqualFold(ext, ".xml"):
					if err := coll.AddFile(path); err != nil {
						log.Fatal(err)
					}
					loaded++
				case strings.EqualFold(ext, ".fxp3"):
					if err := coll.AddSnapshotFile(path, path); err != nil {
						log.Fatal(err)
					}
					loaded++
				}
			}
			if loaded == 0 {
				log.Fatalf("flexserve: no .xml or .fxp3 files in %s", *dir)
			}
		}
	}
	for _, path := range flag.Args() {
		if dur != nil {
			seedFile(dur, path)
			continue
		}
		if strings.EqualFold(filepath.Ext(path), ".fxp3") {
			if err := coll.AddSnapshotFile(path, path); err != nil {
				log.Fatal(err)
			}
			continue
		}
		doc, err := flexpath.LoadAuto(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := coll.Add(path, doc); err != nil {
			log.Fatal(err)
		}
	}
	coll.SetResidency(*residentDocs)
	if coll.Len() == 0 && !*shard && dur == nil {
		fmt.Fprintln(os.Stderr, "flexserve: no documents given (use -shard to start empty behind flexrouter, or -wal to serve a durable corpus)")
		flag.Usage()
		os.Exit(2)
	}
	if *cache > 0 {
		// The collection cache serves repeated identical requests; the
		// per-document caches additionally let distinct collection
		// requests share per-document work after membership changes.
		coll.SetCache(*cache)
		coll.SetDocumentCaches(*cache)
	}
	// Always applied (0 disables): plan templates serve every request with
	// a repeated query shape, including ones the result caches miss
	// (different k, offset or snippet over the same pattern).
	coll.SetPlanCaches(*planCache)
	h, _ := newHandlerConfig(coll, handlerConfig{
		timeout:       *timeout,
		slowCap:       *slowCap,
		slowThreshold: time.Duration(*slowMS) * time.Millisecond,
		pprof:         *pprofOn,
		maxInFlight:   *maxInFlight,
		admin:         *admin || *shard || dur != nil,
		durable:       dur,
		maxBulk:       *maxBulk,
	})
	log.Printf("serving %d documents (%d elements) on %s (cache=%d, plancache=%d, timeout=%v, slowlog=%d@%dms, pprof=%v, maxinflight=%d, admin=%v, shard=%v, wal=%q, resident-docs=%d)",
		coll.Len(), coll.Nodes(), *addr, *cache, *planCache, *timeout, *slowCap, *slowMS, *pprofOn, *maxInFlight, *admin || *shard || dur != nil, *shard, *walDir, *residentDocs)

	srv := &http.Server{
		Handler:           h,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	err = serveutil.Serve("flexserve", srv, ln, sig, *drain)
	if dur != nil {
		// After drain: no handler is mid-mutation, so Close only waits for
		// a background checkpoint before sealing the log.
		if cerr := dur.Close(); cerr != nil {
			log.Printf("flexserve: wal close: %v", cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
}

// seedFile durably ingests one command-line corpus file (XML or binary
// snapshot) unless a document of that name already exists — recovered
// state wins over seed files on restart.
func seedFile(dur *flexpath.DurableCollection, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := dur.Seed(path, data); err != nil {
		log.Fatalf("flexserve: seeding %s: %v", path, err)
	}
}
