// Command flexserve serves flexible top-K search over one or more XML
// documents as a JSON HTTP API.
//
// Usage:
//
//	flexserve -addr :8080 data1.xml data2.xml
//	flexserve -addr :8080 -dir corpus/
//
// Endpoints:
//
//	GET /search?q=QUERY&k=10&algo=hybrid&scheme=structure-first&why=1
//	GET /relaxations?q=QUERY
//	GET /plan?q=QUERY&k=10
//	GET /stats
//	GET /healthz
//
// Documents may be XML files or binary snapshots (detected by magic).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"flexpath"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "load every .xml file in this directory")
	flag.Parse()

	coll := flexpath.NewCollection()
	if *dir != "" {
		c, err := flexpath.LoadCollectionDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		coll = c
	}
	for _, path := range flag.Args() {
		doc, err := flexpath.LoadAuto(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := coll.Add(path, doc); err != nil {
			log.Fatal(err)
		}
	}
	if coll.Len() == 0 {
		fmt.Fprintln(os.Stderr, "flexserve: no documents given")
		flag.Usage()
		os.Exit(2)
	}
	log.Printf("serving %d documents (%d elements) on %s", coll.Len(), coll.Nodes(), *addr)

	srv := &http.Server{
		Addr:         *addr,
		Handler:      newHandler(coll),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
