// Command flexserve serves flexible top-K search over one or more XML
// documents as a JSON HTTP API, with Prometheus-style observability,
// admission control and graceful shutdown.
//
// Usage:
//
//	flexserve -addr :8080 data1.xml data2.xml
//	flexserve -addr :8080 -dir corpus/
//	flexserve -cache 4096 -timeout 10s -slowlog 256 -slowms 100 data.xml
//	flexserve -maxinflight 64 -drain 15s data.xml   # shed overload, drain on SIGTERM
//	flexserve -admin data.xml                        # expose /admin/ mutation endpoints
//	flexserve -pprof data.xml                        # also expose /debug/pprof/
//	flexserve -shard -addr :9001                     # empty shard behind flexrouter
//
// Endpoints:
//
//	GET /search?q=QUERY&k=10&offset=0&algo=hybrid&scheme=structure-first&why=1
//	GET /relaxations?q=QUERY
//	GET /plan?q=QUERY&k=10
//	GET /stats
//	GET /metrics       Prometheus text format: query counters by
//	                   algorithm/scheme/status, latency and per-stage
//	                   histograms, cache counters, in-flight/shed/panic
//	                   server counters
//	GET /slowlog?n=32  slowest recent queries with per-stage timings
//	GET /healthz
//
// With -admin, the corpus can be mutated without a restart:
//
//	POST /admin/add?name=NAME       (XML document in the body)
//	POST /admin/remove?name=NAME
//	POST /admin/replace?name=NAME   (XML document in the body)
//
// Beyond -maxinflight concurrently executing queries, requests are shed
// with 503 + Retry-After instead of queued. On SIGINT/SIGTERM the server
// stops accepting connections, drains in-flight requests for up to
// -drain, and exits.
//
// Documents may be XML files or binary snapshots (detected by magic).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexpath"
	"flexpath/internal/serveutil"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "load every .xml file in this directory")
	cache := flag.Int("cache", 1024, "query-result cache capacity in entries (0 disables)")
	planCache := flag.Int("plancache", flexpath.DefaultPlanCacheCapacity, "per-document plan-template cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request search timeout (0 disables)")
	slowCap := flag.Int("slowlog", 128, "slow-query log capacity in entries")
	slowMS := flag.Int("slowms", 0, "only log queries at least this many milliseconds long (0 logs all)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrently executing query requests; excess is shed with 503 (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	admin := flag.Bool("admin", false, "expose corpus mutation endpoints under /admin/")
	shard := flag.Bool("shard", false, "run as a shard behind flexrouter: allow starting with an empty corpus and expose the /admin/ mutation endpoints (the router places documents here)")
	flag.Parse()

	coll := flexpath.NewCollection()
	if *dir != "" {
		c, err := flexpath.LoadCollectionDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		coll = c
	}
	for _, path := range flag.Args() {
		doc, err := flexpath.LoadAuto(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := coll.Add(path, doc); err != nil {
			log.Fatal(err)
		}
	}
	if coll.Len() == 0 && !*shard {
		fmt.Fprintln(os.Stderr, "flexserve: no documents given (use -shard to start empty behind flexrouter)")
		flag.Usage()
		os.Exit(2)
	}
	if *cache > 0 {
		// The collection cache serves repeated identical requests; the
		// per-document caches additionally let distinct collection
		// requests share per-document work after membership changes.
		coll.SetCache(*cache)
		coll.SetDocumentCaches(*cache)
	}
	// Always applied (0 disables): plan templates serve every request with
	// a repeated query shape, including ones the result caches miss
	// (different k, offset or snippet over the same pattern).
	coll.SetPlanCaches(*planCache)
	h, _ := newHandlerConfig(coll, handlerConfig{
		timeout:       *timeout,
		slowCap:       *slowCap,
		slowThreshold: time.Duration(*slowMS) * time.Millisecond,
		pprof:         *pprofOn,
		maxInFlight:   *maxInFlight,
		admin:         *admin || *shard,
	})
	log.Printf("serving %d documents (%d elements) on %s (cache=%d, plancache=%d, timeout=%v, slowlog=%d@%dms, pprof=%v, maxinflight=%d, admin=%v, shard=%v)",
		coll.Len(), coll.Nodes(), *addr, *cache, *planCache, *timeout, *slowCap, *slowMS, *pprofOn, *maxInFlight, *admin || *shard, *shard)

	srv := &http.Server{
		Handler:           h,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := serveutil.Serve("flexserve", srv, ln, sig, *drain); err != nil {
		log.Fatal(err)
	}
}
