// Command flexserve serves flexible top-K search over one or more XML
// documents as a JSON HTTP API.
//
// Usage:
//
//	flexserve -addr :8080 data1.xml data2.xml
//	flexserve -addr :8080 -dir corpus/
//	flexserve -cache 4096 -timeout 10s data.xml
//
// Endpoints:
//
//	GET /search?q=QUERY&k=10&algo=hybrid&scheme=structure-first&why=1
//	GET /relaxations?q=QUERY
//	GET /plan?q=QUERY&k=10
//	GET /stats
//	GET /healthz
//
// Documents may be XML files or binary snapshots (detected by magic).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"flexpath"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "load every .xml file in this directory")
	cache := flag.Int("cache", 1024, "query-result cache capacity in entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request search timeout (0 disables)")
	flag.Parse()

	coll := flexpath.NewCollection()
	if *dir != "" {
		c, err := flexpath.LoadCollectionDir(*dir)
		if err != nil {
			log.Fatal(err)
		}
		coll = c
	}
	for _, path := range flag.Args() {
		doc, err := flexpath.LoadAuto(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := coll.Add(path, doc); err != nil {
			log.Fatal(err)
		}
	}
	if coll.Len() == 0 {
		fmt.Fprintln(os.Stderr, "flexserve: no documents given")
		flag.Usage()
		os.Exit(2)
	}
	if *cache > 0 {
		// The collection cache serves repeated identical requests; the
		// per-document caches additionally let distinct collection
		// requests share per-document work after membership changes.
		coll.SetCache(*cache)
		coll.SetDocumentCaches(*cache)
	}
	log.Printf("serving %d documents (%d elements) on %s (cache=%d, timeout=%v)",
		coll.Len(), coll.Nodes(), *addr, *cache, *timeout)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandlerTimeout(coll, *timeout),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
